package core

import (
	"fmt"

	"causalgc/internal/ids"
	"causalgc/internal/vclock"
)

// EngineImage is the serialisable form of an Engine, used by the
// durability subsystem's snapshots. It may only be taken at a quiescent
// point (empty inbox): the site runtime snapshots after settling, so
// every queued GGD delivery has been processed. Pre-registration
// buffered deliveries (reordered control messages that raced ahead of
// their target's creation) are part of the image.
type EngineImage struct {
	Procs      []ProcImage
	Tombstones map[ids.ClusterID]uint64
	Pending    []PendingImage
	// Asserts is the re-send journal of un-acknowledged edge-asserts:
	// losing it to a crash would silently re-open the hint leak, so it
	// is part of the durable image.
	Asserts []AssertRowImage
	// Legacy holds the retained finalisation destroy bundles of removed
	// processes, in FIFO retention order.
	Legacy []LegacyImage
	Stats  Stats
}

// AssertRowImage is one journaled edge-assert awaiting acknowledgement.
type AssertRowImage struct {
	Holder, Target, Intro ids.ClusterID
	Seq                   uint64
	Stamp                 uint64
}

// LegacyImage is one retained finalisation destroy bundle.
type LegacyImage struct {
	From, To ids.ClusterID
	M        DestroyMsg
}

// ProcImage is one process's state.
type ProcImage struct {
	ID     ids.ClusterID
	Clock  uint64
	Active bool
	Acq    []ids.ClusterID
	Log    vclock.LogImage
}

// PendingImage is one buffered pre-registration delivery.
type PendingImage struct {
	To, From ids.ClusterID
	Kind     int
	Destroy  DestroyMsg
	Prop     Propagation
	Assert   AssertMsg
}

// Export renders the engine as an image sharing no state with it. It
// fails if deliveries are still queued (the caller must Drain first):
// snapshotting mid-cascade would bake a half-processed inbox into the
// image.
func (e *Engine) Export() (EngineImage, error) {
	if len(e.inbox) > 0 {
		return EngineImage{}, fmt.Errorf("core %v: export with %d queued deliveries", e.site, len(e.inbox))
	}
	img := EngineImage{
		Tombstones: make(map[ids.ClusterID]uint64, len(e.tombstone)),
		Stats:      e.stats,
	}
	for _, id := range e.Processes() {
		p := e.procs[id]
		img.Procs = append(img.Procs, ProcImage{
			ID:     p.id,
			Clock:  p.clock,
			Active: p.active,
			Acq:    p.acq.Sorted(),
			Log:    p.log.Export(),
		})
	}
	for cl, clock := range e.tombstone {
		img.Tombstones[cl] = clock
	}
	var pendingTo []ids.ClusterID
	for to := range e.pending {
		pendingTo = append(pendingTo, to)
	}
	ids.SortClusters(pendingTo)
	for _, to := range pendingTo {
		for _, d := range e.pending[to] {
			img.Pending = append(img.Pending, PendingImage{
				To: d.to, From: d.from, Kind: int(d.kind),
				Destroy: cloneDestroy(d.destroy), Prop: cloneProp(d.prop), Assert: d.assert,
			})
		}
	}
	rows := make([]assertRow, 0, len(e.asserts))
	for row := range e.asserts {
		rows = append(rows, row)
	}
	sortAssertRows(rows)
	for _, row := range rows {
		img.Asserts = append(img.Asserts, AssertRowImage{
			Holder: row.holder, Target: row.target, Intro: row.intro,
			Seq: row.seq, Stamp: e.asserts[row],
		})
	}
	for _, l := range e.legacy.Items() {
		img.Legacy = append(img.Legacy, LegacyImage{From: l.from, To: l.to, M: cloneDestroy(l.m)})
	}
	return img, nil
}

// Restore rebuilds an engine from an image. The callbacks mirror New;
// the image is not retained.
func Restore(site ids.SiteID, send Sender, onRemove func(ids.ClusterID), opts Options, img EngineImage) (*Engine, error) {
	e := New(site, send, onRemove, opts)
	e.stats = img.Stats
	for _, pi := range img.Procs {
		if pi.ID.Site != site {
			return nil, fmt.Errorf("core %v: restore foreign process %v", site, pi.ID)
		}
		e.procs[pi.ID] = &process{
			id:     pi.ID,
			clock:  pi.Clock,
			active: pi.Active,
			log:    vclock.RestoreLog(pi.ID, pi.Log),
			acq:    ids.NewClusterSet(pi.Acq...),
		}
	}
	for cl, clock := range img.Tombstones {
		e.tombstone[cl] = clock
	}
	for _, di := range img.Pending {
		e.pending[di.To] = append(e.pending[di.To], delivery{
			to: di.To, from: di.From, kind: deliveryKind(di.Kind),
			destroy: cloneDestroy(di.Destroy), prop: cloneProp(di.Prop), assert: di.Assert,
		})
	}
	for _, ai := range img.Asserts {
		e.asserts[assertRow{holder: ai.Holder, target: ai.Target, intro: ai.Intro, seq: ai.Seq}] = ai.Stamp
	}
	for _, li := range img.Legacy {
		e.legacy.Push(legacyDestroy{from: li.From, to: li.To, m: cloneDestroy(li.M)})
	}
	return e, nil
}

func cloneDestroy(m DestroyMsg) DestroyMsg {
	return DestroyMsg{Auth: cloneVec(m.Auth), Hints: cloneVec(m.Hints), Processed: cloneVec(m.Processed)}
}

func cloneVec(v vclock.Vector) vclock.Vector {
	if v == nil {
		return nil
	}
	return v.Clone()
}
