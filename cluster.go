package causalgc

import (
	"fmt"
	"path/filepath"
	"time"

	"causalgc/internal/sim"
	"causalgc/internal/site"
	"causalgc/monitor"
	"causalgc/transport"
)

// Cluster assembles n nodes (site IDs 1..n) over one shared transport:
// the standard way to run a whole system in a single process. Without
// WithTransport the cluster runs over the deterministic in-memory
// simulator, so runs are reproducible; pass transport.NewDeterministic
// with a fault plan to inject loss, duplication, partitions or
// reordering, or transport.NewAsync for real in-process concurrency.
//
// A cluster over the deterministic default must be driven from a single
// goroutine (the simulator is single-threaded by design); over the
// async or TCP backends, concurrent use is safe.
//
// For multi-process systems build each Node separately over
// transport/tcp; Cluster is the single-process assembly.
type Cluster struct {
	tr    transport.Transport
	det   *transport.Deterministic // non-nil for the deterministic substrate
	ownTr bool
	nodes []*Node
	msrv  *monitor.Server // one server covering every node (WithMetricsAddr)
}

// NewCluster builds n nodes over a shared transport. The options are
// applied to every node; a WithTransport option supplies the shared
// substrate (and leaves its ownership with the caller). With
// WithPersistence(dir) each node journals under dir/site-<id> — fresh
// directories start journaling, existing ones are recovered — and
// NewCluster panics on a persistence I/O error (build nodes with
// Recover directly to handle errors).
func NewCluster(n int, opts ...Option) *Cluster {
	cfg := newConfig(opts)
	if err := cfg.validate(); err != nil {
		// The wrapped error value keeps the panic errors.Is-matchable.
		panic(fmt.Errorf("causalgc: NewCluster: %w", err))
	}
	ownTr := false
	if cfg.tr == nil {
		cfg.tr = transport.NewDeterministic(transport.Faults{Seed: 1})
		ownTr = true
	}
	c := &Cluster{tr: cfg.tr, ownTr: ownTr}
	c.det, _ = cfg.tr.(*transport.Deterministic)
	// Monitoring is per node: with WithMetricsAddr or WithMonitor each
	// site gets its own monitor (the caller's monitor serves site 1, the
	// rest are fresh), and one cluster-owned server covers them all.
	monitored := cfg.metricsAddr != "" || cfg.monitor != nil
	if cfg.metricsAddr != "" {
		srv, err := monitor.NewServer(cfg.metricsAddr)
		if err != nil {
			closeOwnedTransport(ownTr, cfg.tr, nil)
			panic(fmt.Sprintf("causalgc: NewCluster: %v", err))
		}
		c.msrv = srv
	}
	for i := 1; i <= n; i++ {
		id := SiteID(i)
		var mon *monitor.Monitor
		if monitored {
			if mon = cfg.monitor; i > 1 || mon == nil {
				mon = monitor.New(0)
			}
		}
		if cfg.persistDir == "" {
			nodeCfg := cfg.site // per-node copy: the observer slot diverges
			if mon != nil {
				nodeCfg.Observer = site.Fanout(mon, cfg.site.Observer)
			}
			node := &Node{
				rt:  site.New(id, cfg.tr, nodeCfg),
				tr:  cfg.tr,
				mon: mon,
			}
			if mon != nil {
				attachMonitor(mon, node.rt, nil, cfg.tr)
			}
			c.nodes = append(c.nodes, node)
		} else {
			// One construction path for persistent nodes: Recover, with the
			// per-site subdirectory, shared transport, per-node monitor and
			// a cleared metrics address (the cluster serves) appended so
			// they override whatever the caller's options carried.
			node, err := Recover(id, append(append([]Option{}, opts...),
				WithTransport(cfg.tr),
				WithPersistence(filepath.Join(cfg.persistDir, fmt.Sprintf("site-%d", i))),
				WithMonitor(mon),
				WithMetricsAddr(""),
			)...)
			if err != nil {
				c.Close()
				panic(fmt.Sprintf("causalgc: NewCluster site %v: %v", id, err))
			}
			c.nodes = append(c.nodes, node)
		}
		if c.msrv != nil {
			c.msrv.Attach(mon)
		}
	}
	return c
}

// Node returns the node of site id (IDs start at 1), or nil when the
// cluster hosts no such site.
func (c *Cluster) Node(id SiteID) *Node {
	if id < 1 || int(id) > len(c.nodes) {
		return nil
	}
	return c.nodes[int(id)-1]
}

// Nodes returns all nodes in site order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Transport returns the shared transport (statistics, fault control).
func (c *Cluster) Transport() transport.Transport { return c.tr }

// MetricsAddr returns the bound address of the cluster's metrics server
// (WithMetricsAddr, with any ephemeral port resolved), or "" when the
// cluster serves none. The one server covers every node: /metrics
// exposes all sites, distinguished by the site label.
func (c *Cluster) MetricsAddr() string {
	if c.msrv == nil {
		return ""
	}
	return c.msrv.Addr()
}

// Close releases the cluster's resources: every node is closed (which
// closes its persistence journal, if any), and the transport is closed
// if the cluster owns it (deterministic default: a no-op beyond
// bookkeeping; async: joins the delivery goroutines).
func (c *Cluster) Close() error {
	var first error
	if c.msrv != nil {
		first = c.msrv.Close()
		c.msrv = nil
	}
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return closeOwnedTransport(c.ownTr, c.tr, first)
}

// drainTimeout bounds one Cluster.Run delivery pass over a transport
// that advertises the Drain capability but cannot prove global
// quiescence (e.g. TCP): Drain returns as soon as the local queues
// flush, so the timeout is only paid when traffic genuinely keeps
// flowing.
const drainTimeout = 2 * time.Second

// Run delivers in-flight messages: on the deterministic substrate it
// drains the queues (reproducibly, seeded); on a concurrent in-memory
// substrate it quiesces; on a transport with the Drain capability
// (transport.Drainer — the TCP backend implements it) it flushes the
// transport's local queues, bounded by a timeout; on any other
// substrate it yields briefly to let deliveries proceed.
func (c *Cluster) Run() error {
	if c.det != nil {
		if _, err := c.det.Run(sim.DefaultStepBudget); err != nil {
			return fmt.Errorf("causalgc: %w", err)
		}
		return nil
	}
	if q, ok := c.tr.(interface{ Quiesce() }); ok {
		q.Quiesce()
		return nil
	}
	if d, ok := c.tr.(transport.Drainer); ok {
		// Best-effort: frames already handed to the OS or in flight to a
		// peer process are invisible here; Settle's repeated stable
		// rounds absorb those stragglers.
		d.Drain(drainTimeout)
		return nil
	}
	time.Sleep(20 * time.Millisecond)
	return nil
}

// Step delivers at most one message on the deterministic substrate and
// reports whether it did; on concurrent substrates delivery is
// continuous and Step reports false.
func (c *Cluster) Step() bool {
	if c.det != nil {
		return c.det.Step()
	}
	return false
}

// CollectAll runs one local collection on every node, then delivers the
// resulting traffic.
func (c *Cluster) CollectAll() error {
	for _, n := range c.nodes {
		if _, err := n.Collect(); err != nil {
			return err
		}
	}
	return c.Run()
}

// RefreshAll runs one GGD refresh round on every node, then delivers:
// the recovery mechanism for residual garbage after message loss.
func (c *Cluster) RefreshAll() error {
	for _, n := range c.nodes {
		if err := n.Refresh(); err != nil {
			return err
		}
	}
	return c.Run()
}

// Settle drives the system to a stable state: deliver everything,
// collect everywhere, repeat until a full round changes nothing. On
// concurrent substrates stability is demanded for two consecutive
// rounds, since quiescence observations are momentary.
func (c *Cluster) Settle() error {
	if err := c.Run(); err != nil {
		return err
	}
	stable := 0
	for round := 0; round < sim.DefaultSettleRounds; round++ {
		before := c.TotalObjects()
		if err := c.CollectAll(); err != nil {
			return err
		}
		if c.TotalObjects() != before || (c.det != nil && c.det.Pending() > 0) {
			stable = 0
			continue
		}
		stable++
		if c.det != nil || stable >= 2 {
			return nil
		}
	}
	return nil
}

// TotalObjects returns the live object count across all nodes.
func (c *Cluster) TotalObjects() int {
	total := 0
	for _, n := range c.nodes {
		total += n.NumObjects()
	}
	return total
}

// Check runs the global reachability oracle over all nodes.
func (c *Cluster) Check() Report { return Check(c.nodes...) }
