package causalgc

import (
	"errors"
	"sync"
	"testing"

	"causalgc/transport"
)

// TestBatchQuickstart exercises the public Batch surface: deferred
// chaining, lifting, commit, and post-commit resolution.
func TestBatchQuickstart(t *testing.T) {
	cl := NewCluster(2)
	n1, n2 := cl.Node(1), cl.Node(2)

	b := n1.Batch()
	a := b.NewLocal(b.Root())
	bb := b.NewLocal(a)
	c := b.NewRemote(b.Root(), n2.ID())
	b.SendRef(a, c, bb)
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if a.Ref() != NilRef {
		t.Fatal("deferred ref resolved before Commit")
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.Ref() == NilRef || bb.Ref() == NilRef || c.Ref() == NilRef {
		t.Fatalf("refs unresolved after Commit: %v %v %v", a.Ref(), bb.Ref(), c.Ref())
	}
	if !n1.HasObject(a.Obj()) || !n1.HasObject(bb.Obj()) {
		t.Fatal("local objects missing")
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !n2.HasObject(c.Obj()) {
		t.Fatal("remote object missing after Run")
	}
	if err := b.Commit(); !errors.Is(err, ErrBatchCommitted) {
		t.Fatalf("second Commit: %v, want ErrBatchCommitted", err)
	}

	// A later batch lifts the committed refs and tears the graph down.
	b2 := n1.Batch()
	b2.DropRefs(b2.Root(), b2.Ref(a.Ref()))
	b2.DropRefs(b2.Root(), b2.Ref(c.Ref()))
	if err := b2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Settle(); err != nil {
		t.Fatal(err)
	}
	if rep := cl.Check(); !rep.Clean() {
		t.Fatalf("not clean after batched teardown: %v", rep)
	}
}

// TestBatchStagingErrors: staging failures reject the whole batch with
// the familiar sentinels; cross-batch refs are caught.
func TestBatchStagingErrors(t *testing.T) {
	n := NewNode(1)
	defer n.Close()

	b := n.Batch()
	b.NewLocal(b.Ref(Ref{Obj: ObjectID{Site: 1, Seq: 999}, Cluster: ClusterID{Site: 1, Seq: 999}}))
	if err := b.Commit(); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unknown holder: %v, want ErrNoSuchObject", err)
	}
	if n.NumObjects() != 1 {
		t.Fatalf("rejected batch mutated the node: %d objects", n.NumObjects())
	}

	// A BatchRef from another batch poisons the using batch.
	b1, b2 := n.Batch(), n.Batch()
	foreign := b1.Root()
	b2.NewLocal(foreign)
	if err := b2.Commit(); !errors.Is(err, ErrBatchRef) {
		t.Fatalf("foreign BatchRef: %v, want ErrBatchRef", err)
	}
	b3 := n.Batch()
	b3.NewLocal(nil)
	if err := b3.Commit(); !errors.Is(err, ErrBatchRef) {
		t.Fatalf("nil BatchRef: %v, want ErrBatchRef", err)
	}

	// The zero target site is rejected identically on both paths: the
	// creation could never be delivered.
	if _, err := n.NewRemote(n.Root().Obj, 0); !errors.Is(err, ErrNoSite) {
		t.Fatalf("singleton NewRemote(0): %v, want ErrNoSite", err)
	}
	b4 := n.Batch()
	x := b4.NewRemote(b4.Root(), 0)
	b4.AddRef(b4.Root(), x)
	if err := b4.Commit(); !errors.Is(err, ErrNoSite) {
		t.Fatalf("batched NewRemote(0): %v, want ErrNoSite", err)
	}

	// Empty batch commits trivially; closed node gates Commit.
	if err := n.Batch().Commit(); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	nb := n.Batch()
	nb.NewLocal(nb.Root())
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nb.Commit(); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("commit after close: %v, want ErrNodeClosed", err)
	}
}

// TestBatchConcurrentCommit drives concurrent multi-op commits from
// several goroutines per node over the async transport (run under
// -race in CI), then checks the converged system against the oracle.
func TestBatchConcurrentCommit(t *testing.T) {
	tr := transport.NewAsync(transport.Faults{})
	cl := NewCluster(3, WithTransport(tr))
	defer func() {
		cl.Close()
		tr.Close()
	}()

	const workers, commits = 4, 8
	var wg sync.WaitGroup
	for _, n := range cl.Nodes() {
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(n *Node, wkr int) {
				defer wg.Done()
				other := SiteID(1 + (int(n.ID())+wkr)%3)
				if other == n.ID() {
					other = SiteID(1 + int(other)%3)
				}
				for c := 0; c < commits; c++ {
					b := n.Batch()
					a := b.NewLocal(b.Root())
					bb := b.NewLocal(a)
					r := b.NewRemote(b.Root(), other)
					b.SendRef(a, r, bb)
					keep := c%2 == 0
					if !keep {
						b.DropRefs(b.Root(), a)
						b.DropRefs(b.Root(), r)
					}
					if err := b.Commit(); err != nil {
						t.Errorf("node %v worker %d commit %d: %v", n.ID(), wkr, c, err)
						return
					}
				}
			}(n, wkr)
		}
	}
	wg.Wait()
	if err := cl.Settle(); err != nil {
		t.Fatal(err)
	}
	rep := cl.Check()
	if !rep.Safe() {
		t.Fatalf("SAFETY VIOLATION under concurrent commits: %v", rep)
	}
	if len(rep.Garbage) != 0 {
		t.Fatalf("residual garbage after settle: %v", rep)
	}
	// Half the commits kept their subgraph: 3 nodes × 4 workers × 4 kept
	// commits × 3 objects, plus the 3 roots.
	want := 3 + 3*workers*(commits/2)*3
	if rep.Live != want {
		t.Fatalf("live = %d, want %d", rep.Live, want)
	}
}

// TestOptionValidation: nonsensical option values are rejected loudly
// with ErrBadOption — returned by Recover, panicking in NewNode.
func TestOptionValidation(t *testing.T) {
	if _, err := Recover(1, WithPersistence(t.TempDir()), WithSnapshotEvery(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative WithSnapshotEvery: %v, want ErrBadOption", err)
	}
	if _, err := Recover(1, WithPersistence(t.TempDir()), WithGroupCommit(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative WithGroupCommit: %v, want ErrBadOption", err)
	}
	if _, err := Recover(1, WithPersistence(t.TempDir()), WithResendBackoff(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative WithResendBackoff: %v, want ErrBadOption", err)
	}
	if _, err := Recover(1, WithPersistence(t.TempDir()), WithMaxBatchFrames(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative WithMaxBatchFrames: %v, want ErrBadOption", err)
	}
	func() {
		defer func() {
			err, ok := recover().(error)
			if !ok || !errors.Is(err, ErrBadOption) {
				t.Fatalf("NewNode panic = %v, want ErrBadOption error", err)
			}
		}()
		NewNode(1, WithSnapshotEvery(-2))
	}()
	func() {
		defer func() {
			err, ok := recover().(error)
			if !ok || !errors.Is(err, ErrBadOption) {
				t.Fatalf("NewCluster panic = %v, want ErrBadOption error", err)
			}
		}()
		NewCluster(2, WithGroupCommit(-2))
	}()
	// Valid configurations still construct.
	n := NewNode(1, WithMaxBatchFrames(8), WithResendBackoff(4))
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
