package determcheck_test

import (
	"testing"

	"causalgc/internal/analysis/analysistest"
	"causalgc/internal/analysis/determcheck"
)

// TestDetermCheck proves the wall-clock, global-rand and
// map-iteration-output rules fire on seeded violations (including an
// aliased time import), spare the seeded-rand and collect-and-sort
// idioms and every directive form, and ignore packages outside the
// determinism contract.
func TestDetermCheck(t *testing.T) {
	a := determcheck.New(determcheck.Config{Packages: []string{"determpkg"}})
	analysistest.Run(t, "testdata", a, "determpkg", "freepkg")
}
