package sendcheck_test

import (
	"testing"

	"causalgc/internal/analysis/analysistest"
	"causalgc/internal/analysis/sendcheck"
)

// TestSendCheck proves the funnel rule fires on direct sends (plain
// and closure-wrapped), spares the funnel functions and the directive
// form, and ignores packages outside its scope.
func TestSendCheck(t *testing.T) {
	a := sendcheck.New(sendcheck.Config{
		Packages: []string{"sendpkg"},
		AllowIn:  []string{"emitLocked", "flushCoalesceLocked"},
	})
	analysistest.Run(t, "testdata", a, "sendpkg", "freepkg")
}
