package tracing_test

import (
	"testing"

	"causalgc/internal/baseline/tracing"
	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

// newWorld builds a world for tracing over the same heaps the causal GGD
// manages; the tracer's verdicts are compared with the oracle's, so the
// real GGD running alongside is harmless.
func newWorld(n int) *sim.World {
	opts := site.DefaultOptions()
	return sim.NewWorld(n, netsim.Faults{Seed: 1}, opts)
}

func TestTracingFindsDistributedCycle(t *testing.T) {
	w := newWorld(4)
	sc, err := mutator.BuildPaperScenario(w)
	if err != nil {
		t.Fatal(err)
	}
	col := tracing.New(w.Sites(), w.Net())
	drive := func() {
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
	}

	// Everything live: no garbage.
	if g := col.RunEpoch(drive); len(g) != 0 {
		t.Fatalf("epoch found %d garbage in a fully live graph", len(g))
	}

	// Disable the causal GGD's own cascade so tracing does the finding:
	// simply compare against the oracle after the drop *before* any local
	// collection has swept (AutoCollect still runs; so instead assert the
	// tracer agrees with the oracle's garbage set).
	if err := sc.DropRootEdge(); err != nil {
		t.Fatal(err)
	}
	drive()
	rep := w.Check()
	g := col.RunEpoch(drive)
	if len(g) != len(rep.Garbage) {
		t.Fatalf("tracing found %d garbage, oracle says %d", len(g), len(rep.Garbage))
	}
}

// TestTracingConsensusCost asserts the §2.4 critique quantitatively: every
// epoch costs at least 2N control messages even when nothing is garbage,
// and mark traffic scales with the number of LIVE remote references.
func TestTracingConsensusCost(t *testing.T) {
	w := newWorld(6)
	s1 := w.Site(1)
	// Build live remote chains: root(1) → o_i on sites 2..6.
	for i := 0; i < 20; i++ {
		if _, err := s1.NewRemote(s1.Root().Obj, ids.SiteID(2+i%5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	col := tracing.New(w.Sites(), w.Net())
	drive := func() {
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Net().Stats()
	st.Reset()
	if g := col.RunEpoch(drive); len(g) != 0 {
		t.Fatalf("no garbage expected, got %d", len(g))
	}
	starts := st.Sent("trace.start")
	acks := st.Sent("trace.ack")
	marks := st.Sent("trace.mark")
	if starts != 6 || acks != 6 {
		t.Errorf("consensus control = %d starts + %d acks, want 6+6", starts, acks)
	}
	// 20 live remote references → 20 mark messages even though there is
	// nothing to collect.
	if marks != 20 {
		t.Errorf("marks = %d, want 20 (∝ live remote refs)", marks)
	}
}
