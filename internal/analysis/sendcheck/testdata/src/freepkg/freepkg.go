// Package freepkg is outside the sendcheck scope: direct sends here
// are not diagnosed.
package freepkg

type network struct{}

func (network) Send(from, to int, p interface{}) {}

func anywhere(n network, p interface{}) {
	n.Send(0, 1, p)
}
