package causalgc_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"causalgc"
	"causalgc/transport"
	"causalgc/transport/tcp"
)

// TestErrNodeClosed: after Close, mutator and collect operations fail
// with the sentinel instead of racing freed state.
func TestErrNodeClosed(t *testing.T) {
	n := causalgc.NewNode(1)
	root := n.Root()
	a, err := n.NewLocal(root.Obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := n.NewLocal(root.Obj); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("NewLocal after Close: want ErrNodeClosed, got %v", err)
	}
	if _, err := n.NewRemote(root.Obj, 2); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("NewRemote after Close: want ErrNodeClosed, got %v", err)
	}
	if _, err := n.NewClusterID(); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("NewClusterID after Close: want ErrNodeClosed, got %v", err)
	}
	if err := n.SendRef(root.Obj, root, a); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("SendRef after Close: want ErrNodeClosed, got %v", err)
	}
	if err := n.AddRef(root.Obj, a); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("AddRef after Close: want ErrNodeClosed, got %v", err)
	}
	if err := n.DropRefs(root.Obj, a); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("DropRefs after Close: want ErrNodeClosed, got %v", err)
	}
	if err := n.ClearSlot(root.Obj, 0); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("ClearSlot after Close: want ErrNodeClosed, got %v", err)
	}
	if _, err := n.Collect(); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("Collect after Close: want ErrNodeClosed, got %v", err)
	}
	if err := n.Refresh(); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("Refresh after Close: want ErrNodeClosed, got %v", err)
	}
	if err := n.Checkpoint(); !errors.Is(err, causalgc.ErrNodeClosed) {
		t.Errorf("Checkpoint after Close: want ErrNodeClosed, got %v", err)
	}
	// Introspection keeps answering from the frozen state.
	if n.NumObjects() != 2 {
		t.Errorf("NumObjects after Close = %d, want 2", n.NumObjects())
	}
	if !n.HasObject(a.Obj) {
		t.Error("HasObject after Close lost the object")
	}
}

// TestClosedNodeFrozenOnSharedTransport: after Close, frames still
// arriving over a shared transport are dropped instead of mutating the
// node — the "frozen state" contract holds for volatile nodes too.
func TestClosedNodeFrozenOnSharedTransport(t *testing.T) {
	c := causalgc.NewCluster(2, causalgc.WithTransport(transport.NewDeterministic(transport.Faults{Seed: 9})))
	defer c.Close()
	n1, n2 := c.Node(1), c.Node(2)
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}
	before := n1.NumObjects()
	if _, err := n2.NewRemote(n2.Root().Obj, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n1.NumObjects(); got != before {
		t.Fatalf("closed node mutated by shared-transport delivery: %d -> %d objects", before, got)
	}
}

// TestErrNodeClosedConcurrent hammers Close against in-flight mutator
// operations; run with -race to prove the gate serialises them.
func TestErrNodeClosedConcurrent(t *testing.T) {
	n := causalgc.NewNode(1)
	root := n.Root().Obj
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			if _, err := n.NewLocal(root); err != nil {
				if !errors.Is(err, causalgc.ErrNodeClosed) {
					t.Errorf("unexpected error: %v", err)
				}
				return
			}
		}
	}()
	time.Sleep(time.Millisecond)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestRecoverRequiresPersistence: Recover without WithPersistence is an
// error, not a silent volatile node.
func TestRecoverRequiresPersistence(t *testing.T) {
	if _, err := causalgc.Recover(1); err == nil {
		t.Fatal("Recover without WithPersistence succeeded")
	}
}

// TestNodeRecoverFresh: Recover on an empty directory is the persistent
// constructor.
func TestNodeRecoverFresh(t *testing.T) {
	dir := t.TempDir()
	n, err := causalgc.Recover(1, causalgc.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewLocal(n.Root().Obj); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := causalgc.Recover(1, causalgc.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.NumObjects(); got != 2 {
		t.Fatalf("recovered %d objects, want 2", got)
	}
}

// TestNodeGroupCommitRecovers: a node journaling under WithGroupCommit
// loses nothing across a close/recover cycle — the batched fsync is a
// throughput knob, not a durability downgrade for process crashes.
func TestNodeGroupCommitRecovers(t *testing.T) {
	dir := t.TempDir()
	n, err := causalgc.Recover(1,
		causalgc.WithPersistence(dir),
		causalgc.WithGroupCommit(50*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := n.NewLocal(n.Root().Obj); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := causalgc.Recover(1, causalgc.WithPersistence(dir), causalgc.WithGroupCommit(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.NumObjects(); got != 9 {
		t.Fatalf("recovered %d objects, want 9", got)
	}
}

// TestNodeCheckpointTruncates: an explicit checkpoint snapshots and
// truncates, and recovery replays nothing.
func TestNodeCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	n, err := causalgc.Recover(1, causalgc.WithPersistence(dir), causalgc.WithSnapshotEvery(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := n.NewLocal(n.Root().Obj); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	n.Close()

	r, err := causalgc.Recover(1, causalgc.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.NumObjects(); got != 11 {
		t.Fatalf("recovered %d objects, want 11", got)
	}
}

// TestDurableClusterQuickstart runs the quickstart over a persistent
// cluster: every node journals, the cluster is closed mid-protocol
// (crash-equivalent: no final snapshot) and reopened over the same
// directories, and GGD still reclaims the distributed cycle.
func TestDurableClusterQuickstart(t *testing.T) {
	dir := t.TempDir()
	mk := func() *causalgc.Cluster {
		return causalgc.NewCluster(3,
			causalgc.WithPersistence(dir),
			causalgc.WithNoSync(),
			causalgc.WithTransport(transport.NewDeterministic(transport.Faults{Seed: 5})),
		)
	}
	c := mk()
	n1 := c.Node(1)
	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	b, err := c.Node(2).NewRemote(a.Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(2).SendRef(a.Obj, b, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n1.DropRefs(n1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	// Kill the whole cluster before detection runs (messages in the old
	// transport's queues are lost — tolerated).
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := mk()
	defer r.Close()
	if err := r.Settle(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4 && r.TotalObjects() > 3; i++ {
		if err := r.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		if err := r.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	rep := r.Check()
	if !rep.Clean() {
		t.Fatalf("recovered cluster not clean: %v", rep)
	}
	if r.TotalObjects() != 3 {
		t.Fatalf("cycle not reclaimed after recovery: %d objects", r.TotalObjects())
	}
}

// TestNodeRecoverOverTCP is the in-process version of the acceptance
// scenario: three sites over real sockets, the site holding the cycle's
// head is killed (its process state discarded, its journal files closed
// with no final snapshot) after a third-party transfer and before cycle
// collection, then recovered on a fresh transport bound to the same
// address — and the cluster still reclaims the distributed cycle.
func TestNodeRecoverOverTCP(t *testing.T) {
	dir := t.TempDir()

	// Process A hosts sites 1 and 3; process B hosts site 2 (durable).
	netA, err := tcp.New(tcp.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer netA.Close()
	netB, err := tcp.New(tcp.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := netA.Addr().String(), netB.Addr().String()
	netA.SetPeer(2, addrB)
	netB.SetPeer(1, addrA)
	netB.SetPeer(3, addrA)

	n1 := causalgc.NewNode(1, causalgc.WithTransport(netA))
	n3 := causalgc.NewNode(3, causalgc.WithTransport(netA))
	n2, err := causalgc.Recover(2,
		causalgc.WithTransport(netB),
		causalgc.WithPersistence(dir),
		causalgc.WithSnapshotEvery(4),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Build the cycle: a on site 2, b on site 3, c on site 1; c→b is a
	// genuine third-party transfer (site 2 introduces site 1's c to
	// site 3's b), b→a closes the cycle.
	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return n2.NumObjects() == 2 })
	b, err := n2.NewRemote(a.Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := n2.NewRemote(a.Obj, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.SendRef(a.Obj, c, b); err != nil {
		t.Fatal(err)
	}
	if err := n2.SendRef(a.Obj, b, a); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return n1.NumObjects() == 2 && n3.NumObjects() == 2
	})

	// Kill process B: transport down, journal closed mid-protocol.
	if err := netB.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}

	// The mutator meanwhile drops the only root reference: {a,b,c} is
	// now a distributed garbage cycle whose head lives on the dead site.
	if err := n1.DropRefs(n1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}

	// Restart B from its persistence dir on the same address.
	netB2, err := tcp.New(tcp.Config{Listen: addrB})
	if err != nil {
		t.Fatal(err)
	}
	defer netB2.Close()
	netB2.SetPeer(1, addrA)
	netB2.SetPeer(3, addrA)
	r2, err := causalgc.Recover(2,
		causalgc.WithTransport(netB2),
		causalgc.WithPersistence(dir),
		causalgc.WithSnapshotEvery(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.NumObjects(); got != 2 {
		t.Fatalf("recovered site 2 has %d objects, want 2 (root + a)", got)
	}

	// Drive all three sites until the cycle is gone everywhere.
	deadline := time.Now().Add(20 * time.Second)
	nodes := []*causalgc.Node{n1, r2, n3}
	for time.Now().Before(deadline) {
		done := true
		for _, n := range nodes {
			if n.NumObjects() != 1 {
				done = false
			}
		}
		if done {
			break
		}
		for _, n := range nodes {
			if _, err := n.Collect(); err != nil {
				t.Fatal(err)
			}
			if err := n.Refresh(); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, n := range nodes {
		if got := n.NumObjects(); got != 1 {
			t.Fatalf("site %v: %d objects remain after recovery (cycle not reclaimed)", n.ID(), got)
		}
	}
	if rep := causalgc.Check(nodes...); !rep.Clean() {
		t.Fatalf("oracle not clean after recovery: %v", rep)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("condition not reached within %v", timeout))
}
