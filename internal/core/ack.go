package core

import (
	"causalgc/internal/ids"
)

// Stream identifies one acknowledged-retirement stream between a pair of
// sites (DESIGN.md §3.2). Every re-sendable frame a site ships carries a
// sequence number drawn from the per-(destination, stream) counter of its
// sender; the receiver acknowledges cumulatively per (sender-site,
// stream) with a FrameAck watermark, and the sender retires the retained
// state covered by the watermark — outbox frames, assert-journal rows,
// destroyed-edge bundles and legacy finalisation bundles stop being
// re-shipped exactly, instead of being re-sent forever or silently
// evicted.
type Stream uint8

// The four retirement streams. Stream zero means "untracked": local
// deliveries, pre-v3 frames, and frames from senders that retain nothing.
const (
	// StreamMut covers the retained outbound mutator frames of the site
	// outbox (Create, RefTransfer).
	StreamMut Stream = iota + 1
	// StreamAssert covers journaled edge-asserts (positive and negative).
	StreamAssert
	// StreamDestroy covers edge-destruction bundles held in on-behalf
	// rows (own column Ē), re-shipped by Refresh until acknowledged.
	StreamDestroy
	// StreamLegacy covers the retained finalisation bundles of removed
	// processes.
	StreamLegacy
)

// String names the stream for diagnostics and observer callbacks.
func (s Stream) String() string {
	switch s {
	case StreamMut:
		return "mut"
	case StreamAssert:
		return "assert"
	case StreamDestroy:
		return "destroy"
	case StreamLegacy:
		return "legacy"
	}
	return "untracked"
}

// DefaultResendBackoffCap is the default ceiling, in refresh rounds, of
// the exponential re-send damper (Options.ResendBackoffCap).
const DefaultResendBackoffCap = 64

// Backoff is the per-retained-item re-send damper: an unacknowledged
// item is re-shipped on the first refresh round after it was sent, then
// at exponentially growing round intervals (1, 2, 4, ... up to the
// configured cap), so long-lived systems stop re-shipping the same rows
// every round while a genuinely lost frame is still retried promptly.
// The damper is deliberately not persisted: recovery resets it, so a
// restarted site re-ships everything once and the peers re-converge.
// Exported for the site runtime's outbox, which dampers its mutator
// frames on the same schedule as the engine's retained rows.
type Backoff struct {
	attempts uint8
	due      uint64 // first refresh round the next re-send is due
}

// Ready reports whether a re-send is due at the given refresh round.
func (b *Backoff) Ready(round uint64) bool { return round >= b.due }

// Bump schedules the next re-send after a send at the given round. cap
// is the maximal interval in rounds (≥ 1).
func (b *Backoff) Bump(round uint64, cap uint64) {
	interval := uint64(1)
	if b.attempts < 62 {
		b.attempts++
	}
	if b.attempts > 1 {
		interval = uint64(1) << (b.attempts - 1)
	}
	if interval > cap {
		interval = cap
	}
	b.due = round + interval
}

// Reset re-arms the item for immediate re-send (topology change, peer
// restart).
func (b *Backoff) Reset() { *b = Backoff{} }

// EffectiveBackoffCap resolves the configured damper ceiling.
func EffectiveBackoffCap(configured int) uint64 {
	if configured <= 0 {
		return DefaultResendBackoffCap
	}
	return uint64(configured)
}

// edgeKey identifies a destroyed edge whose Ē bundle is re-shipped until
// the target site acknowledges it.
type edgeKey struct {
	holder, target ids.ClusterID
}

// destroyState tracks the retirement of one destroyed remote edge's
// bundle: the stream sequence its frame carries (stable across re-sends,
// so a re-send fills the same receiver-side gap), whether the target
// site has acknowledged it, and the re-send damper.
type destroyState struct {
	seq   uint64
	acked bool
	bo    Backoff
}

// assertState is the value of one assert-journal row: the asserted stamp
// (zero for negative asserts), the row's stream sequence, and the
// re-send damper.
type assertState struct {
	stamp uint64
	seq   uint64
	bo    Backoff
}
