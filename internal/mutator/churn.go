package mutator

import (
	"math/rand"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
)

// ChurnConfig tunes the randomised workload driver.
type ChurnConfig struct {
	// Seed drives the operation choice (independent of the network seed).
	Seed int64
	// Ops is the number of mutator operations to perform.
	Ops int
	// StepsBetweenOps delivers up to this many random messages between
	// operations, interleaving mutation with GGD traffic. Zero delivers
	// nothing (maximum raciness is exercised by the network's own seed).
	StepsBetweenOps int
	// PCreate, PShare, PDrop weight the operation mix; they are
	// normalised internally. Defaults (when all zero): 4/4/3.
	PCreate, PShare, PDrop int
}

// ChurnStats reports what the driver did.
type ChurnStats struct {
	Creates, Shares, Drops, Skipped int
}

// Churn runs a randomised but always-legal mutator workload over the
// world: objects are created (locally or remotely) from holders the
// driver tracks, references are copied between holders (first-party and
// third-party transfers), and slots are dropped — including root slots,
// which is what manufactures distributed garbage, cycles included.
//
// The driver mirrors which references each object holds so it only issues
// legal operations; transfers still in flight can invalidate the mirror,
// in which case the operation is skipped (counted in Skipped).
func Churn(w World, cfg ChurnConfig) (ChurnStats, error) {
	if cfg.PCreate == 0 && cfg.PShare == 0 && cfg.PDrop == 0 {
		cfg.PCreate, cfg.PShare, cfg.PDrop = 4, 4, 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var stats ChurnStats

	nsites := len(w.Sites())
	// holdings mirrors object slots: holdings[o] lists refs o holds.
	holdings := make(map[ids.ObjectID][]heap.Ref)
	var holders []ids.ObjectID // objects that appeared as holders, unique
	inHolders := make(map[ids.ObjectID]struct{})
	refOf := make(map[ids.ObjectID]heap.Ref)

	addHolding := func(o ids.ObjectID, ref heap.Ref) {
		if _, ok := inHolders[o]; !ok {
			inHolders[o] = struct{}{}
			holders = append(holders, o)
		}
		holdings[o] = append(holdings[o], ref)
	}
	for _, s := range w.Sites() {
		root := s.Root()
		refOf[root.Obj] = root
	}

	total := cfg.PCreate + cfg.PShare + cfg.PDrop
	randomHolder := func() (ids.ObjectID, bool) {
		if len(holders) == 0 {
			return ids.NoObject, false
		}
		return holders[rng.Intn(len(holders))], true
	}

	for i := 0; i < cfg.Ops; i++ {
		roll := rng.Intn(total)
		switch {
		case roll < cfg.PCreate:
			// Create from a random root or known object.
			var holder ids.ObjectID
			if len(holders) == 0 || rng.Intn(3) == 0 {
				holder = w.Site(ids.SiteID(1 + rng.Intn(nsites))).Root().Obj
			} else if h, ok := randomHolder(); ok {
				holder = h
			}
			hs := w.Site(holder.Site)
			target := ids.SiteID(1 + rng.Intn(nsites))
			var ref heap.Ref
			var err error
			if target == holder.Site {
				ref, err = hs.NewLocal(holder)
			} else {
				ref, err = hs.NewRemote(holder, target)
			}
			if err != nil {
				// The holder may have been collected since it was learned;
				// the operation is simply not performable any more.
				stats.Skipped++
				continue
			}
			refOf[ref.Obj] = ref
			addHolding(holder, ref)
			stats.Creates++

		case roll < cfg.PCreate+cfg.PShare:
			// Copy a held reference to a random destination object.
			h, ok := randomHolder()
			if !ok {
				stats.Skipped++
				continue
			}
			held := holdings[h]
			if len(held) == 0 {
				stats.Skipped++
				continue
			}
			target := held[rng.Intn(len(held))]
			var destRef heap.Ref
			// Destination: random known object or a root.
			if len(holders) > 0 && rng.Intn(3) != 0 {
				d := holders[rng.Intn(len(holders))]
				destRef = refOf[d]
			}
			if !destRef.Valid() {
				destRef = w.Site(ids.SiteID(1 + rng.Intn(nsites))).Root()
			}
			if err := w.Site(h.Site).SendRef(h, destRef, target); err != nil {
				stats.Skipped++
				continue
			}
			addHolding(destRef.Obj, target)
			stats.Shares++

		default:
			// Drop all slots of one held ref, possibly from a root.
			h, ok := randomHolder()
			if !ok {
				stats.Skipped++
				continue
			}
			held := holdings[h]
			if len(held) == 0 {
				stats.Skipped++
				continue
			}
			idx := rng.Intn(len(held))
			target := held[idx]
			if err := w.Site(h.Site).DropRefs(h, target); err != nil {
				stats.Skipped++
				continue
			}
			// Remove every mirror entry for target at h (DropRefs drops
			// all slots).
			kept := held[:0]
			for _, r := range held {
				if r.Obj != target.Obj {
					kept = append(kept, r)
				}
			}
			holdings[h] = kept
			stats.Drops++
		}

		for s := 0; s < cfg.StepsBetweenOps; s++ {
			if !w.Step() {
				break
			}
		}
	}
	return stats, nil
}
