package site_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/oracle"
	"causalgc/internal/site"
	"causalgc/internal/wire"
	"causalgc/persist"
)

// openPersist opens a journal for one site under the test's temp dir.
func openPersist(t *testing.T, dir string, every int) *site.Persist {
	t.Helper()
	p, err := site.OpenPersist(dir, site.PersistOptions{SnapshotEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// recoverSite runs site.Recover, failing the test on error.
func recoverSite(t *testing.T, id ids.SiteID, net netsim.Network, p *site.Persist) *site.Runtime {
	t.Helper()
	s, err := site.Recover(id, net, site.DefaultOptions(), p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRecoverFreshDirectory: a journaled site over an empty directory
// behaves like site.New.
func TestRecoverFreshDirectory(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openPersist(t, t.TempDir(), 4)
	s1 := recoverSite(t, 1, net, p)
	ref, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.HasObject(ref.Obj) {
		t.Fatal("object missing")
	}
	if p.Store().Stats().Appends == 0 {
		t.Error("journal recorded nothing")
	}
}

// buildState drives a site through a representative mix of journaled
// operations: local and remote creates, a transfer, a drop, a collect.
func buildState(t *testing.T, net *netsim.Sim, s1 *site.Runtime) (kept heap.Ref) {
	t.Helper()
	a, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if err := s1.SendRef(s1.Root().Obj, b, a); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if err := s1.DropRefs(s1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if _, err := s1.Collect(); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	return b
}

// crash simulates a kill: close the journal's files with no final
// snapshot, drop the in-flight control messages addressed to the site,
// and forget the runtime.
func crash(t *testing.T, net *netsim.Sim, id ids.SiteID, p *site.Persist) {
	t.Helper()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	net.Unregister(id)
	net.DropPendingTo(id)
}

// TestRecoverReplaysState: kill site 1 at various snapshot cadences and
// check the reconstructed state matches what the live site had.
func TestRecoverReplaysState(t *testing.T) {
	for _, every := range []int{1, 3, 1000} {
		net := netsim.NewSim(netsim.Faults{Seed: 1})
		dir := t.TempDir()
		p := openPersist(t, dir, every)
		s1 := recoverSite(t, 1, net, p)
		s2 := site.New(2, net, site.DefaultOptions())
		b := buildState(t, net, s1)

		wantObjects := s1.NumObjects()
		wantClock := s1.Clock(b.Cluster)
		crash(t, net, 1, p)

		p2 := openPersist(t, dir, every)
		r1 := recoverSite(t, 1, net, p2)
		run(t, net)
		if got := r1.NumObjects(); got != wantObjects {
			t.Errorf("every=%d: recovered %d objects, want %d", every, got, wantObjects)
		}
		// The holder's slots must have survived: root still holds b.
		if !r1.HasObject(r1.Root().Obj) {
			t.Errorf("every=%d: root object lost", every)
		}
		if got := r1.Clock(b.Cluster); got != wantClock {
			t.Errorf("every=%d: recovered clock %d, want %d", every, got, wantClock)
		}
		if rep := oracle.Check(r1, s2); !rep.Safe() {
			t.Errorf("every=%d: unsafe after recovery: %v", every, rep)
		}
		p2.Close()
	}
}

// TestRecoveryResumesDetection: a distributed cycle is built, the
// holding site is killed before GGD finishes, and after recovery the
// cycle is still reclaimed — the end-to-end durability property.
func TestRecoveryResumesDetection(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 7})
	dir := t.TempDir()
	p := openPersist(t, dir, 5)
	s1 := recoverSite(t, 1, net, p)
	s2 := site.New(2, net, site.DefaultOptions())
	s3 := site.New(3, net, site.DefaultOptions())

	// Cycle a(s1) → b(s2) → c(s3) → a, held by s1's root.
	a, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s1.NewRemote(a.Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	c, err := s2.NewRemote(b.Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if err := s1.SendRef(s1.Root().Obj, c, a); err != nil { // c → a closes the cycle
		t.Fatal(err)
	}
	run(t, net)

	// Drop the root edge: the cycle {a,b,c} is garbage. Kill site 1
	// right after the drop, before detection converges.
	if err := s1.DropRefs(s1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	crash(t, net, 1, p)

	p2 := openPersist(t, dir, 5)
	r1 := recoverSite(t, 1, net, p2)
	defer p2.Close()
	run(t, net)
	for i := 0; i < 8; i++ {
		if _, err := r1.Collect(); err != nil {
			t.Fatal(err)
		}
		s2.Collect()
		s3.Collect()
		if err := r1.Refresh(); err != nil {
			t.Fatal(err)
		}
		s2.Refresh()
		s3.Refresh()
		run(t, net)
	}
	rep := oracle.Check(r1, s2, s3)
	if !rep.Safe() {
		t.Fatalf("unsafe after recovery: %v", rep)
	}
	if len(rep.Garbage) != 0 {
		t.Fatalf("cycle not reclaimed after recovery: %v", rep)
	}
	if r1.NumObjects() != 1 || s2.NumObjects() != 1 || s3.NumObjects() != 1 {
		t.Fatalf("objects remain: %d %d %d", r1.NumObjects(), s2.NumObjects(), s3.NumObjects())
	}
}

// TestRecoverDedupsResentTransfers: a transfer the receiver already
// processed is re-sent by the sender's recovery; the receiver must not
// grow a second slot.
func TestRecoverDedupsResentTransfers(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 3})
	dir1, dir2 := t.TempDir(), t.TempDir()
	p1 := openPersist(t, dir1, 1000)
	p2 := openPersist(t, dir2, 1000)
	s1 := recoverSite(t, 1, net, p1)
	s2 := recoverSite(t, 2, net, p2)

	a, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if err := s1.SendRef(s1.Root().Obj, b, a); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	_, snap := s2.Snapshot()
	slotsBefore := countSlots(snap, b.Obj)

	// Sender crashes and recovers: its outbox re-sends the transfer.
	crash(t, net, 1, p1)
	p1b := openPersist(t, dir1, 1000)
	r1 := recoverSite(t, 1, net, p1b)
	defer p1b.Close()
	defer p2.Close()
	run(t, net)

	_, snap = s2.Snapshot()
	if got := countSlots(snap, b.Obj); got != slotsBefore {
		t.Fatalf("duplicate transfer applied: %d slots, want %d", got, slotsBefore)
	}
	if rep := oracle.Check(r1, s2); !rep.Safe() {
		t.Fatalf("unsafe: %v", rep)
	}
}

func countSlots(snap []site.ObjectSnapshot, obj ids.ObjectID) int {
	for _, o := range snap {
		if o.ID == obj {
			n := 0
			for _, s := range o.Slots {
				if s.Valid() {
					n++
				}
			}
			return n
		}
	}
	return -1
}

// TestRecoveredWALCountsTowardSnapshot: a crash-looping site must not
// grow its WAL without bound — records replayed at recovery count
// toward the snapshot threshold, so the first post-recovery checkpoint
// truncates.
func TestRecoveredWALCountsTowardSnapshot(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	dir := t.TempDir()
	p := openPersist(t, dir, 1_000_000) // no snapshot during the first life
	s1 := recoverSite(t, 1, net, p)
	for i := 0; i < 10; i++ {
		if _, err := s1.NewLocal(s1.Root().Obj); err != nil {
			t.Fatal(err)
		}
	}
	if p.Store().Stats().Snapshots != 0 {
		t.Fatal("premature snapshot")
	}
	crash(t, net, 1, p)

	// Second life with a small threshold: the 10 replayed records
	// exceed it, so recovery's own journaled refresh triggers the
	// snapshot and truncates the log.
	p2 := openPersist(t, dir, 4)
	r1 := recoverSite(t, 1, net, p2)
	if got := p2.Store().Stats().Snapshots; got == 0 {
		t.Fatal("recovered WAL records did not count toward the snapshot threshold")
	}
	crash(t, net, 1, p2)

	// Third life must replay from the snapshot, not the full history.
	p3 := openPersist(t, dir, 4)
	r1 = recoverSite(t, 1, net, p3)
	defer p3.Close()
	if got := p3.Store().Stats().RecoveredRecords; got > 4 {
		t.Fatalf("replayed %d records after snapshot, want <= 4", got)
	}
	if got := r1.NumObjects(); got != 11 {
		t.Fatalf("recovered %d objects, want 11", got)
	}
}

// TestCheckpointUnwedgesJournal: a checkpoint failure is sticky only
// until a later checkpoint succeeds.
func TestCheckpointUnwedgesJournal(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openPersist(t, t.TempDir(), 1_000_000)
	s1 := recoverSite(t, 1, net, p)
	if _, err := s1.NewLocal(s1.Root().Obj); err != nil {
		t.Fatal(err)
	}
	// Sabotage one checkpoint: a build failure wedges the journal...
	buildErr := fmt.Errorf("synthetic image failure")
	if err := p.ForceCheckpoint(func() (*wire.SiteImage, error) { return nil, buildErr }); err == nil {
		t.Fatal("sabotaged checkpoint succeeded")
	}
	if _, err := s1.NewLocal(s1.Root().Obj); err == nil {
		t.Fatal("append succeeded under sticky checkpoint failure")
	}
	// ...until a checkpoint succeeds, after which ops flow again.
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("recovering checkpoint failed: %v", err)
	}
	if _, err := s1.NewLocal(s1.Root().Obj); err != nil {
		t.Fatalf("append still failing after successful checkpoint: %v", err)
	}
	p.Close()
}

// TestJournalFailureFailsOps: once the journal cannot append, mutator
// operations fail instead of silently diverging from the durable
// history.
func TestJournalFailureFailsOps(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openPersist(t, t.TempDir(), 1000)
	s1 := recoverSite(t, 1, net, p)
	if _, err := s1.NewLocal(s1.Root().Obj); err != nil {
		t.Fatal(err)
	}
	p.Close() // underlying store closed: appends must fail
	if _, err := s1.NewLocal(s1.Root().Obj); err == nil {
		t.Fatal("op succeeded with a dead journal")
	}
	if _, err := s1.Collect(); err == nil {
		t.Fatal("collect succeeded with a dead journal")
	}
}

// TestRecoverV2SnapshotMigration: a site whose latest snapshot predates
// the acknowledged-retirement protocol (version 2: no stream counters,
// no watermarks, no frame seqs) recovers under the v3 codec and resumes
// the full protocol — the zeroed retirement state is exactly a fresh
// upgrade, so streams build up from live traffic and detection still
// converges.
func TestRecoverV2SnapshotMigration(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewSim(netsim.Faults{Seed: 9})
	p := openPersist(t, dir, 1024)
	s1 := recoverSite(t, 1, net, p)
	s2 := site.New(2, net, site.DefaultOptions())
	kept, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	rem, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Downgrade the snapshot on disk to version 2: strip every v3 field,
	// exactly what a pre-upgrade binary would have written.
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := wire.DecodeSnapshot(st.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	img.Version = 2
	img.Epoch = 0
	img.SendStreams, img.RecvStreams, img.PeerEpochs = nil, nil, nil
	img.Frames = wire.FrameStatsImage{}
	for i := range img.Outbox {
		img.Outbox[i].Seq = 0
		switch pl := img.Outbox[i].Payload.(type) {
		case wire.Create:
			pl.Seq = 0
			img.Outbox[i].Payload = pl
		case wire.RefTransfer:
			pl.Seq = 0
			img.Outbox[i].Payload = pl
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover over the v2 image: state intact, protocol functional.
	p2 := openPersist(t, dir, 1024)
	s1b := recoverSite(t, 1, net, p2)
	defer p2.Close()
	run(t, net)
	if !s1b.HasObject(kept.Obj) {
		t.Fatal("migrated recovery lost an object")
	}
	// New traffic opens fresh streams from zero on both sides; a full
	// drop/refresh cycle must still converge and retire its rows.
	if err := s1b.DropRefs(s1b.Root().Obj, rem); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if _, err := s2.Collect(); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if err := s1b.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Refresh(); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if s2.HasObject(rem.Obj) {
		t.Fatal("dropped remote object not reclaimed after migration")
	}
	rep := oracle.Check(s1b, s2)
	if !rep.Safe() || len(rep.Garbage) != 0 {
		t.Fatalf("not clean after v2 migration: %v", rep)
	}
}
