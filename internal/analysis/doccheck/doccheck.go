// Package doccheck enforces the documentation contract on the public
// API and the load-bearing internals: every exported identifier in the
// lint set must carry a doc comment, so `go doc` tells the protocol
// story end to end. It is the analyzer port of the repository's
// original doclint_test.go go/ast walker; the docs-lint CI step now
// runs it as `causalgc-vet -doccheck ./...`.
package doccheck

import (
	"go/ast"
	"go/token"
	"strings"

	"causalgc/internal/analysis"
)

// Config scopes the analyzer to the packages whose exported surface
// must be fully documented.
type Config struct {
	// Packages are the import paths in the lint set.
	Packages []string
}

// Analyzer is the doccheck instance run by causalgc-vet: the public
// packages plus the internals that carry the protocol's design
// documentation.
var Analyzer = New(Config{Packages: []string{
	"causalgc",
	"causalgc/monitor",
	"causalgc/transport",
	"causalgc/transport/tcp",
	"causalgc/persist",
	"causalgc/eval",
	"causalgc/internal/core",
	"causalgc/internal/site",
	"causalgc/internal/vclock",
	"causalgc/internal/wire",
	"causalgc/internal/analysis",
}})

// New returns a doccheck analyzer for the given lint set.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "doccheck",
		Doc:         "exported identifiers in the lint set must carry doc comments",
		NonTestOnly: true,
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	applies := false
	for _, p := range cfg.Packages {
		if pass.PkgPath == p {
			applies = true
		}
	}
	if !applies {
		return nil
	}
	hasPkgDoc := false
	for _, f := range pass.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		pass.Reportf(pass.Files[0].Package, "package %s has no package doc comment", pass.PkgName)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				if d.Doc == nil || len(strings.TrimSpace(d.Doc.Text())) == 0 {
					pass.Reportf(d.Pos(), "exported %s lacks a doc comment", funcLabel(d))
				}
			case *ast.GenDecl:
				checkGenDecl(pass, d)
			}
		}
	}
	return nil
}

// checkGenDecl checks type/var/const declarations: each exported spec
// needs a doc comment on the spec or on its enclosing group.
func checkGenDecl(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Tok == token.IMPORT {
		return
	}
	groupDoc := d.Doc != nil && len(strings.TrimSpace(d.Doc.Text())) > 0
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && (s.Doc == nil || len(strings.TrimSpace(s.Doc.Text())) == 0) {
				pass.Reportf(s.Pos(), "exported type %s lacks a doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if !n.IsExported() {
					continue
				}
				if !groupDoc && (s.Doc == nil || len(strings.TrimSpace(s.Doc.Text())) == 0) &&
					(s.Comment == nil || len(strings.TrimSpace(s.Comment.Text())) == 0) {
					pass.Reportf(s.Pos(), "exported %s %s lacks a doc comment", d.Tok, n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is
// exported (functions have no receiver and always count).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcLabel names a func or method for the diagnostic.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}
