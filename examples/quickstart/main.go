// Quickstart: three sites share objects, a distributed cycle becomes
// garbage, and Global Garbage Detection collects it — no stop-the-world,
// no global consensus. Programs against the public causalgc API only.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"causalgc"
	"causalgc/transport"
)

func main() {
	// A cluster of three nodes over the deterministic in-memory
	// transport: the run is reproducible for a given seed.
	c := causalgc.NewCluster(3, causalgc.WithTransport(
		transport.NewDeterministic(transport.Faults{Seed: 42})))
	n1 := c.Node(1)

	// Site 1's root creates an object on site 2, which creates one on
	// site 3, which is handed a reference back to the site-2 object:
	// a cycle spanning two sites, reachable from site 1.
	a, err := n1.NewRemote(n1.Root().Obj, 2)
	check(err)
	check(c.Run())
	b, err := c.Node(2).NewRemote(a.Obj, 3)
	check(err)
	check(c.Run())
	check(c.Node(2).SendRef(a.Obj, b, a)) // b → a: the cycle closes
	check(c.Run())

	fmt.Printf("before drop: %d objects, oracle: %v\n", c.TotalObjects(), c.Check())

	// Drop the only root reference: {a, b} become a distributed garbage
	// cycle that no per-site collector can see.
	check(n1.DropRefs(n1.Root().Obj, a))
	check(c.Settle())

	rep := c.Check()
	fmt.Printf("after drop:  %d objects, oracle: %v\n", c.TotalObjects(), rep)
	fmt.Printf("cycle collected: %v (a removed=%v, b removed=%v)\n",
		rep.Clean(), c.Node(2).ClusterRemoved(a.Cluster), c.Node(3).ClusterRemoved(b.Cluster))
	fmt.Printf("\nGGD traffic:\n%s", c.Transport().Stats())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
