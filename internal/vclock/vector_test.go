package vclock

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"causalgc/internal/ids"
)

var (
	r1 = ids.ClusterID{Site: 1, Seq: 1, Root: true}
	c2 = ids.ClusterID{Site: 2, Seq: 1}
	c3 = ids.ClusterID{Site: 3, Seq: 1}
	c4 = ids.ClusterID{Site: 4, Seq: 1}
)

// genVector builds a small random vector over {r1, c2, c3, c4}.
func genVector(r *rand.Rand) Vector {
	cols := []ids.ClusterID{r1, c2, c3, c4}
	v := NewVector()
	for _, q := range cols {
		switch r.Intn(4) {
		case 0: // absent
		case 1:
			v.Set(q, At(uint64(1+r.Intn(4))))
		case 2:
			v.Set(q, Eps(uint64(1+r.Intn(4))))
		case 3:
			v.Set(q, At(uint64(1+r.Intn(2))))
		}
	}
	return v
}

type qvec struct{ V Vector }

func (qvec) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qvec{V: genVector(r)})
}

func TestVectorSetGet(t *testing.T) {
	v := NewVector()
	if got := v.Get(c2); got != Zero {
		t.Errorf("Get on empty = %v, want zero", got)
	}
	v.Set(c2, At(3))
	if got := v.Get(c2); got != At(3) {
		t.Errorf("Get = %v, want 3", got)
	}
	v.Set(c2, Zero)
	if _, ok := v[c2]; ok {
		t.Error("Set(Zero) must delete the entry (canonical form)")
	}
}

func TestVectorMergeEntry(t *testing.T) {
	v := NewVector()
	if !v.MergeEntry(c2, At(1)) {
		t.Error("MergeEntry new entry should report change")
	}
	if v.MergeEntry(c2, At(1)) {
		t.Error("MergeEntry same stamp should not report change")
	}
	if !v.MergeEntry(c2, Eps(1)) {
		t.Error("MergeEntry Ē1 over 1 should supersede")
	}
	if got := v.Get(c2); got != Eps(1) {
		t.Errorf("entry = %v, want Ē1", got)
	}
}

func TestVectorJoinPathEntry(t *testing.T) {
	v := NewVector()
	v.Set(c2, Eps(9))
	if !v.JoinPathEntry(c2, At(1)) {
		t.Error("JoinPathEntry live-over-dead should change")
	}
	if got := v.Get(c2); got != At(1) {
		t.Errorf("entry = %v, want 1 (live path wins)", got)
	}
}

func TestVectorMergeAllIdempotentCommutativeMonotone(t *testing.T) {
	idempotent := func(a qvec) bool {
		v := a.V.Clone()
		v.MergeAll(a.V)
		return v.Equal(a.V)
	}
	commutative := func(a, b qvec) bool {
		x := a.V.Clone()
		x.MergeAll(b.V)
		y := b.V.Clone()
		y.MergeAll(a.V)
		return x.Equal(y)
	}
	upperBound := func(a, b qvec) bool {
		x := a.V.Clone()
		x.MergeAll(b.V)
		return a.V.LEq(x) && b.V.LEq(x)
	}
	for name, f := range map[string]interface{}{
		"idempotent": idempotent, "commutative": commutative, "upperBound": upperBound,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("MergeAll %s: %v", name, err)
		}
	}
}

func TestVectorPartialOrder(t *testing.T) {
	a := Vector{r1: At(1), c2: At(1), c3: At(2), c4: At(2)} // V(e4,2)
	b := Vector{r1: At(1), c2: At(2), c3: At(2), c4: At(2)} // V(e2,2)
	// Paper §3.2: V(e4,2) < V(e2,2), i.e. (1,1,2,2) < (1,2,2,2).
	if !a.Before(b) {
		t.Errorf("want %v < %v (paper §3.2 example)", a, b)
	}
	if b.Before(a) {
		t.Errorf("want !(%v < %v)", b, a)
	}
	if !a.LEq(a) || a.Before(a) {
		t.Error("LEq must be reflexive, Before irreflexive")
	}

	x := Vector{c2: At(3)}
	y := Vector{c3: At(1)}
	if !x.Concurrent(y) {
		t.Errorf("want %v || %v", x, y)
	}
}

func TestVectorPartialOrderProperties(t *testing.T) {
	antisymmetric := func(a, b qvec) bool {
		if a.V.LEq(b.V) && b.V.LEq(a.V) {
			return a.V.Equal(b.V)
		}
		return true
	}
	transitive := func(a, b, c qvec) bool {
		if a.V.LEq(b.V) && b.V.LEq(c.V) {
			return a.V.LEq(c.V)
		}
		return true
	}
	for name, f := range map[string]interface{}{
		"antisymmetric": antisymmetric, "transitive": transitive,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("LEq %s: %v", name, err)
		}
	}
}

func TestVectorHasLiveRoot(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want bool
	}{
		{"empty", NewVector(), false},
		{"live root", Vector{r1: At(1)}, true},
		{"dead root", Vector{r1: Eps(1)}, false},
		{"live non-root only", Vector{c2: At(5), c3: At(1)}, false},
		{"mixed", Vector{r1: Eps(2), c2: At(5)}, false},
		{"root among others", Vector{r1: At(2), c2: Eps(5)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.HasLiveRoot(); got != tt.want {
				t.Errorf("HasLiveRoot(%v) = %t, want %t", tt.v, got, tt.want)
			}
		})
	}
}

func TestVectorLiveColumns(t *testing.T) {
	v := Vector{r1: Eps(1), c2: At(1), c4: At(2)}
	got := v.LiveColumns()
	want := []ids.ClusterID{c2, c4}
	if len(got) != len(want) {
		t.Fatalf("LiveColumns = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LiveColumns = %v, want %v", got, want)
		}
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{c2: At(1)}
	w := v.Clone()
	w.Set(c2, At(9))
	w.Set(c3, At(1))
	if v.Get(c2) != At(1) || v.Get(c3) != Zero {
		t.Error("Clone is not independent")
	}
}

func TestVectorRender(t *testing.T) {
	order := []ids.ClusterID{r1, c2, c3, c4}
	v := Vector{r1: Eps(1), c2: At(3), c3: At(2), c4: At(2)}
	if got, want := v.Render(order), "(Ē1,3,2,2)"; got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
	if got, want := NewVector().Render(order), "(0,0,0,0)"; got != want {
		t.Errorf("Render empty = %q, want %q", got, want)
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{c2: At(3), r1: At(1)}
	if got, want := v.String(), "{s1/R1:1 s2/c1:3}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestVectorEqualSemantics(t *testing.T) {
	a := Vector{c2: At(1)}
	b := Vector{c2: At(1)}
	if !a.Equal(b) {
		t.Error("identical vectors must be Equal")
	}
	// Non-canonical: an explicit zero entry must compare equal to absence.
	c := Vector{c2: At(1), c3: Zero}
	if !a.Equal(c) || !c.Equal(a) {
		t.Error("zero entry must equal absence")
	}
}
