package heap

import (
	"fmt"
	"sort"

	"causalgc/internal/ids"
)

// Image is the serialisable form of a Heap, used by the durability
// subsystem's snapshots. Export is deterministic (sorted), so snapshot
// bytes are reproducible for a given state.
type Image struct {
	Site        ids.SiteID
	RootCluster ids.ClusterID
	RootObject  ids.ObjectID
	NextObj     uint64
	NextClu     uint64
	Objects     []ObjectImage
	Clusters    []ClusterImage
	Edges       []EdgeImage
}

// ObjectImage is one object's state.
type ObjectImage struct {
	ID      ids.ObjectID
	Cluster ids.ClusterID
	Slots   []Ref
}

// ClusterImage is one cluster's bookkeeping.
type ClusterImage struct {
	ID      ids.ClusterID
	Entries []ids.ObjectID
	Removed bool
}

// EdgeImage is one global-root-graph edge's reference count.
type EdgeImage struct {
	From, To ids.ClusterID
	Count    int
}

// Export renders the heap as an image sharing no state with it. The
// counter fields snapshot the (possibly shared) identity mint: every
// shard of a sharded site exports the same values, and restore
// max-observes them, so the duplication is harmless.
func (h *Heap) Export() Image {
	obj, clu := h.ctr.Snapshot()
	img := Image{
		Site:        h.site,
		RootCluster: h.rootClu,
		RootObject:  h.rootObj,
		NextObj:     obj,
		NextClu:     clu,
	}
	for _, o := range h.Objects() {
		img.Objects = append(img.Objects, ObjectImage{ID: o.id, Cluster: o.cluster, Slots: o.Slots()})
	}
	for _, id := range h.Clusters() {
		c := h.clusters[id]
		img.Clusters = append(img.Clusters, ClusterImage{ID: id, Entries: h.Entries(id), Removed: c.removed})
	}
	for e, n := range h.edges {
		img.Edges = append(img.Edges, EdgeImage{From: e.from, To: e.to, Count: n})
	}
	sortEdges(img.Edges)
	return img
}

// Restore rebuilds a heap from an image without firing any Hooks
// notifications: the image already reflects every edge transition, and
// the engine state restored alongside it reflects the notifications the
// live heap issued.
func Restore(hooks Hooks, img Image) (*Heap, error) {
	return RestoreShard(hooks, img, NewCounters(), true)
}

// RestoreShard rebuilds one shard's heap against a shared identity
// mint. withRoot=false accepts a rootless image (shards 1..N-1 of a
// sharded site). The image's counter fields are max-observed into ctr,
// never overwritten: shards restore in any order.
func RestoreShard(hooks Hooks, img Image, ctr *Counters, withRoot bool) (*Heap, error) {
	if !img.Site.Valid() {
		return nil, fmt.Errorf("heap: restore: incomplete image for site %v", img.Site)
	}
	if withRoot && (!img.RootCluster.Valid() || !img.RootObject.Valid()) {
		return nil, fmt.Errorf("heap: restore: incomplete image for site %v", img.Site)
	}
	ctr.ObserveObj(img.NextObj)
	ctr.ObserveClu(img.NextClu)
	h := &Heap{
		site:     img.Site,
		hooks:    hooks,
		ctr:      ctr,
		objects:  make(map[ids.ObjectID]*Object, len(img.Objects)),
		clusters: make(map[ids.ClusterID]*cluster, len(img.Clusters)),
		edges:    make(map[edge]int, len(img.Edges)),
		rootClu:  img.RootCluster,
		rootObj:  img.RootObject,
	}
	for _, ci := range img.Clusters {
		c := h.addCluster(ci.ID)
		c.removed = ci.Removed
		for _, obj := range ci.Entries {
			c.entries[obj] = struct{}{}
		}
	}
	for _, oi := range img.Objects {
		c, ok := h.clusters[oi.Cluster]
		if !ok {
			return nil, fmt.Errorf("heap: restore: object %v in unknown cluster %v", oi.ID, oi.Cluster)
		}
		o := &Object{id: oi.ID, cluster: oi.Cluster, slots: append([]Ref(nil), oi.Slots...)}
		h.objects[o.id] = o
		c.objects[o.id] = o
	}
	if withRoot && h.objects[h.rootObj] == nil {
		return nil, fmt.Errorf("heap: restore: root object %v missing", h.rootObj)
	}
	for _, ei := range img.Edges {
		h.edges[edge{from: ei.From, to: ei.To}] = ei.Count
	}
	return h, nil
}

// sortEdges uses sort.Slice: edge counts scale with the heap, unlike
// the small per-process sets the ids-package insertion sorts serve.
func sortEdges(es []EdgeImage) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From.Less(es[j].From)
		}
		return es[i].To.Less(es[j].To)
	})
}
