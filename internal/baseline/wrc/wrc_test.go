package wrc

import (
	"testing"

	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

func TestWRCAcyclicCollection(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s1 := New(1, net, nil)
	s2 := New(2, net, nil)

	a := ids.ClusterID{Site: 1, Seq: 1}
	b := ids.ClusterID{Site: 2, Seq: 1}
	refA := s1.NewObject(a, true) // locally rooted holder
	_ = refA
	refB := s2.NewObject(b, false)

	// a holds b.
	if err := s1.Give(a, refB); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if s2.IsDead(b) {
		t.Fatal("live object collected")
	}

	// a drops b: one return message, b collected.
	if err := s1.Drop(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if !s2.IsDead(b) {
		t.Fatal("acyclic garbage not collected")
	}
	if n := net.Stats().Sent("wrc.return"); n != 1 {
		t.Errorf("return messages = %d, want 1", n)
	}
}

func TestWRCCopyNoMessages(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s1 := New(1, net, nil)
	s2 := New(2, net, nil)
	s3 := New(3, net, nil)

	a := ids.ClusterID{Site: 1, Seq: 1}
	b := ids.ClusterID{Site: 2, Seq: 1}
	c := ids.ClusterID{Site: 3, Seq: 1}
	s1.NewObject(a, true)
	refB := s2.NewObject(b, false)
	s3.NewObject(c, true)
	if err := s1.Give(a, refB); err != nil {
		t.Fatal(err)
	}

	// Copying a→c of the reference to b costs zero control messages.
	before := net.Stats().TotalSent()
	cp, err := s1.Copy(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Give(c, cp); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().TotalSent(); got != before {
		t.Errorf("copy cost %d messages, want 0", got-before)
	}

	// Both drops must come home before collection.
	if err := s1.Drop(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if s2.IsDead(b) {
		t.Fatal("collected with outstanding weight (UNSAFE)")
	}
	if err := s3.Drop(c, b); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if !s2.IsDead(b) {
		t.Fatal("not collected after all weight returned")
	}
}

// TestWRCLeaksCycle is the point of Experiment E8's comparison row:
// weighted reference counting cannot collect a detached distributed cycle.
func TestWRCLeaksCycle(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s1 := New(1, net, nil)
	s2 := New(2, net, nil)
	s3 := New(3, net, nil)

	root := ids.ClusterID{Site: 1, Seq: 1}
	a := ids.ClusterID{Site: 2, Seq: 1}
	b := ids.ClusterID{Site: 3, Seq: 1}
	s1.NewObject(root, true)
	refA := s2.NewObject(a, false)
	refB := s3.NewObject(b, false)

	// root → a, a → b, b → a (distributed cycle reachable from root).
	if err := s1.Give(root, refA); err != nil {
		t.Fatal(err)
	}
	if err := s2.Give(a, refB); err != nil {
		t.Fatal(err)
	}
	cpA, err := s1.Copy(root, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Give(b, cpA); err != nil {
		t.Fatal(err)
	}

	// Detach the cycle.
	if err := s1.Drop(root, a); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}

	// The cycle is garbage but WRC can never collect it: a's weight is
	// held by b and vice versa.
	if s2.IsDead(a) || s3.IsDead(b) {
		t.Fatal("WRC collected a cycle?!")
	}
	if s1.Removed()+s2.Removed()+s3.Removed() != 0 {
		t.Fatal("unexpected removals")
	}
}

func TestWRCWeightExhaustion(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s1 := New(1, net, nil)
	a := ids.ClusterID{Site: 1, Seq: 1}
	b := ids.ClusterID{Site: 1, Seq: 2}
	s1.NewObject(a, true)
	refB := s1.NewObject(b, false)
	if err := s1.Give(a, refB); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if _, err := s1.Copy(a, b); err != nil {
			if i < 10 {
				t.Fatalf("weight exhausted after only %d copies", i)
			}
			break
		}
		if i > 1000 {
			t.Fatal("weight never exhausts")
		}
	}
}

func TestWRCUnroot(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s1 := New(1, net, nil)
	a := ids.ClusterID{Site: 1, Seq: 1}
	ref := s1.NewObject(a, true)
	// The minted reference was never given to anyone: return it.
	if err := s1.Give(a, ref); err != nil { // a holds itself
		t.Fatal(err)
	}
	if err := s1.Drop(a, a); err != nil {
		t.Fatal(err)
	}
	if s1.IsDead(a) {
		t.Fatal("rooted object collected")
	}
	s1.Unroot(a)
	if !s1.IsDead(a) {
		t.Fatal("unrooted, fully-returned object not collected")
	}
}
