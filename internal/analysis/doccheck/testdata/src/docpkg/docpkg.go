// Package docpkg seeds doccheck violations and compliant forms.
package docpkg

// Documented is fine.
type Documented struct{}

type Undocumented struct{} // want "exported type Undocumented lacks a doc comment"

// Do is fine.
func Do() {}

func Bare() {} // want "exported func Bare lacks a doc comment"

type widget struct{}

// Spin is a method on an unexported receiver: not part of the lint
// surface even without a doc comment.
func (widget) Spin() {}

func (widget) Whirl() {}

// Exported methods on exported receivers need doc comments.
type Gadget struct{}

// Run is fine.
func (Gadget) Run() {}

func (Gadget) Walk() {} // want "exported method Walk lacks a doc comment"

// V is fine.
var V int

var W int // want "exported var W lacks a doc comment"

// Grouped declarations: a documented group covers its members.
var (
	X int
	Y int
)

const (
	// One is fine.
	One = 1
	Two = 2 // want "exported const Two lacks a doc comment"
)

const Three = 3 // Three carries a trailing line comment, which counts.
