package causalgc

import (
	"fmt"

	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/site"
)

// needNodes guards the workload builders against undersized clusters:
// a remote create aimed at an unhosted site would either panic or mint
// references to objects that can never exist.
func needNodes(c *Cluster, n int, what string) error {
	if len(c.nodes) < n {
		return fmt.Errorf("causalgc: %s needs a cluster of at least %d nodes, got %d", what, n, len(c.nodes))
	}
	return nil
}

// clusterWorld adapts a Cluster to the workload builders' World.
type clusterWorld struct{ c *Cluster }

func (w clusterWorld) Site(id ids.SiteID) site.Instance { return w.c.Node(id).rt }

func (w clusterWorld) Sites() []site.Instance {
	rts := make([]site.Instance, len(w.c.nodes))
	for i, n := range w.c.nodes {
		rts[i] = n.rt
	}
	return rts
}

func (w clusterWorld) Run() error { return w.c.Run() }

func (w clusterWorld) Step() bool { return w.c.Step() }

// Scenario is the paper's Fig 3 object graph built on a cluster of (at
// least) four nodes: root 1 on site 1, objects 2, 3, 4 on their own
// sites, edges 2→3, 2→4, 4→3, 3→4, 4→2.
type Scenario struct {
	inner *mutator.Scenario
	// Obj2, Obj3, Obj4 are the paper's numbered global roots.
	Obj2, Obj3, Obj4 Ref
}

// BuildPaperScenario constructs the Fig 3 graph on the cluster; the
// returned scenario is quiescent.
func BuildPaperScenario(c *Cluster) (*Scenario, error) {
	if err := needNodes(c, 4, "BuildPaperScenario"); err != nil {
		return nil, err
	}
	s, err := mutator.BuildPaperScenario(clusterWorld{c})
	if err != nil {
		return nil, err
	}
	return &Scenario{inner: s, Obj2: s.Obj2, Obj3: s.Obj3, Obj4: s.Obj4}, nil
}

// DropRootEdge performs the paper's e2,3: the root destroys its edge to
// object 2, making the whole cycle {2,3,4} garbage.
func (s *Scenario) DropRootEdge() error { return s.inner.DropRootEdge() }

// List is a distributed linked structure — a doubly-linked list or a
// ring — with each element on its own site, reachable from site 1's root
// until detached.
type List struct {
	inner *mutator.DLL
	// Elems are the list elements in order; element i lives on site i+2.
	Elems []Ref
}

// BuildDLL builds a k-element doubly-linked list (the §4 comparison
// workload) on a cluster of at least k+1 nodes.
func BuildDLL(c *Cluster, k int) (*List, error) {
	if err := needNodes(c, k+1, "BuildDLL"); err != nil {
		return nil, err
	}
	d, err := mutator.BuildDLL(clusterWorld{c}, k)
	if err != nil {
		return nil, err
	}
	return &List{inner: d, Elems: d.Elems}, nil
}

// Detach drops every root reference at once, turning the whole list into
// distributed garbage.
func (l *List) Detach() error { return l.inner.Detach() }

// BuildRing builds a k-element unidirectional ring (a pure distributed
// cycle) on a cluster of at least k+1 nodes, reachable through a single
// root edge.
func BuildRing(c *Cluster, k int) (*List, error) {
	if err := needNodes(c, k+1, "BuildRing"); err != nil {
		return nil, err
	}
	d, err := mutator.BuildRing(clusterWorld{c}, k)
	if err != nil {
		return nil, err
	}
	return &List{inner: d, Elems: d.Elems}, nil
}

// DetachRing drops the single root edge, detaching the ring.
func (l *List) DetachRing() error { return l.inner.DetachRing() }

// ChurnConfig tunes the randomised churn workload.
type ChurnConfig = mutator.ChurnConfig

// ChurnStats reports what the churn driver did.
type ChurnStats = mutator.ChurnStats

// Churn runs a randomised but always-legal mutator workload over the
// cluster: creates (local and remote), reference copies (first-party and
// third-party) and drops, including root drops — which is what
// manufactures distributed garbage, cycles included.
func Churn(c *Cluster, cfg ChurnConfig) (ChurnStats, error) {
	return mutator.Churn(clusterWorld{c}, cfg)
}
