package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// WritePrometheus renders this monitor's current snapshot in the
// Prometheus text exposition format.
func (m *Monitor) WritePrometheus(w io.Writer) error {
	return WriteExposition(w, m.Snapshot())
}

// Server exposes one or more monitors over HTTP:
//
//	GET /metrics       Prometheus text exposition of every monitor
//	GET /metrics.json  JSON array of snapshots
//	GET /trace         JSON array of trace events (?site=s2 filters to
//	                   one site, ?n=100 keeps the most recent n per
//	                   monitor)
//	GET /              plain-text index
//
// The listener binds in NewServer, so an addr ending in ":0" gets its
// ephemeral port immediately (Addr returns it). Close stops the server;
// it does not touch the monitors.
type Server struct {
	mu   sync.Mutex
	mons []*Monitor
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewServer binds addr (host:port; an empty host binds all interfaces,
// port 0 picks an ephemeral one) and serves the given monitors. More
// monitors can join later via Attach.
func NewServer(addr string, mons ...*Monitor) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	s := &Server{mons: append([]*Monitor(nil), mons...), ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleJSON)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/", s.handleIndex)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the server's bound address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Attach adds a monitor to the served set.
func (s *Server) Attach(m *Monitor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mons = append(s.mons, m)
}

// Close stops the HTTP server and joins its goroutine.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

func (s *Server) monitors() []*Monitor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Monitor(nil), s.mons...)
}

func (s *Server) snapshots() []Snapshot {
	mons := s.monitors()
	snaps := make([]Snapshot, 0, len(mons))
	for _, m := range mons {
		snaps = append(snaps, m.Snapshot())
	}
	return snaps
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteExposition(w, s.snapshots()...)
}

func (s *Server) handleJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.snapshots())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	siteFilter := r.URL.Query().Get("site")
	max := 0
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		max = n
	}
	events := make([]Event, 0, 64)
	for _, m := range s.monitors() {
		if siteFilter != "" && m.Site().String() != siteFilter {
			continue
		}
		events = append(events, m.Events(max)...)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(events)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "causalgc monitor: %d site(s)\n/metrics\n/metrics.json\n/trace\n", len(s.monitors()))
}
