// Package sim is the whole-system harness: it assembles N sites over the
// deterministic network simulator, drives workloads, runs the message
// schedule to quiescence, and cross-checks the system against the global
// oracle. Tests and benchmarks program against World.
package sim

import (
	"fmt"
	"path/filepath"

	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/oracle"
	"causalgc/internal/site"
	"causalgc/persist"
)

// DefaultStepBudget bounds one Run: the GGD fixpoint always terminates,
// so hitting the budget indicates a bug (non-monotone propagation).
const DefaultStepBudget = 2_000_000

// DefaultSettleRounds bounds Settle: detection latency is finite once
// the substrate is reliable, so needing more rounds indicates residual
// garbage only a refresh can recover (message loss).
const DefaultSettleRounds = 16

// World is a complete simulated system.
type World struct {
	net   *netsim.Sim
	sites []site.Instance
	opts  site.Options

	// shards is the lock-stripe width of every site (0 = unsharded
	// runtimes, the default).
	shards int

	// durable tracks the journals of a durable world (NewDurableWorld);
	// nil entries mean the site is volatile.
	durable []*durableSite
}

// durableSite is one site's persistence handle.
type durableSite struct {
	dir      string
	every    int
	journal  *site.Persist
	crashed  bool
	restarts int
	replayed int
}

// NewWorld builds n sites (IDs 1..n) over a deterministic simulator.
func NewWorld(n int, faults netsim.Faults, opts site.Options) *World {
	w := &World{net: netsim.NewSim(faults), opts: opts}
	for i := 1; i <= n; i++ {
		w.sites = append(w.sites, site.New(ids.SiteID(i), w.net, opts))
	}
	return w
}

// NewShardedWorld builds n volatile sites whose engines are striped
// over the given number of lock shards (shards < 2 degrades to a
// 1-shard Sharded, still exercising the composition layer).
func NewShardedWorld(n int, faults netsim.Faults, opts site.Options, shards int) *World {
	if shards < 1 {
		shards = 1
	}
	w := &World{net: netsim.NewSim(faults), opts: opts, shards: shards}
	for i := 1; i <= n; i++ {
		w.sites = append(w.sites, site.NewSharded(ids.SiteID(i), w.net, opts, shards))
	}
	return w
}

// NewDurableWorld builds n durable sites journaling under
// dir/site-<id>, snapshotting every `every` records. Sites can then be
// killed and recovered with Crash/Restart — the kill-and-restart fault
// scenario. Journals run unsynced: an in-process "crash" cannot lose
// page-cache contents, so fsync would only slow the schedule search.
func NewDurableWorld(n int, faults netsim.Faults, opts site.Options, dir string, every int) (*World, error) {
	return newDurableWorld(n, faults, opts, dir, every, 0)
}

// NewDurableShardedWorld is NewDurableWorld with every site striped
// over the given number of lock shards; Crash/Restart recover through
// the sharded constructor (the shard count is sticky in the journal).
func NewDurableShardedWorld(n int, faults netsim.Faults, opts site.Options, dir string, every, shards int) (*World, error) {
	if shards < 1 {
		shards = 1
	}
	return newDurableWorld(n, faults, opts, dir, every, shards)
}

func newDurableWorld(n int, faults netsim.Faults, opts site.Options, dir string, every, shards int) (*World, error) {
	w := &World{net: netsim.NewSim(faults), opts: opts, shards: shards}
	for i := 1; i <= n; i++ {
		id := ids.SiteID(i)
		d := &durableSite{dir: filepath.Join(dir, fmt.Sprintf("site-%d", i)), every: every}
		j, err := site.OpenPersist(d.dir, site.PersistOptions{
			SnapshotEvery: every,
			Store:         persist.Options{NoSync: true},
		})
		if err != nil {
			return nil, err
		}
		d.journal = j
		s, err := w.recoverSite(id, j)
		if err != nil {
			return nil, err
		}
		w.sites = append(w.sites, s)
		w.durable = append(w.durable, d)
	}
	return w, nil
}

// recoverSite builds one durable site through the constructor matching
// the world's stripe width.
func (w *World) recoverSite(id ids.SiteID, j *site.Persist) (site.Instance, error) {
	if w.shards > 0 {
		return site.RecoverSharded(id, w.net, w.opts, j, w.shards)
	}
	return site.Recover(id, w.net, w.opts, j)
}

// Crash kills a durable site: its journal's files are closed with no
// final snapshot (exactly what SIGKILL leaves behind), its handler is
// torn down, and the in-flight GGD control messages addressed to it are
// lost. The site's runtime is unusable until Restart.
func (w *World) Crash(id ids.SiteID) error {
	d := w.durableOf(id)
	if d == nil {
		return fmt.Errorf("sim: site %v is not durable", id)
	}
	if d.crashed {
		return fmt.Errorf("sim: site %v already crashed", id)
	}
	if err := d.journal.Close(); err != nil {
		return err
	}
	d.crashed = true
	w.net.Unregister(id)
	w.net.DropPendingTo(id)
	return nil
}

// Restart recovers a crashed durable site from its journal directory
// and re-registers it on the network.
func (w *World) Restart(id ids.SiteID) error {
	d := w.durableOf(id)
	if d == nil {
		return fmt.Errorf("sim: site %v is not durable", id)
	}
	if !d.crashed {
		return fmt.Errorf("sim: site %v is not crashed", id)
	}
	j, err := site.OpenPersist(d.dir, site.PersistOptions{
		SnapshotEvery: d.every,
		Store:         persist.Options{NoSync: true},
	})
	if err != nil {
		return err
	}
	s, err := w.recoverSite(id, j)
	if err != nil {
		j.Close()
		return err
	}
	d.journal = j
	d.crashed = false
	d.restarts++
	d.replayed += j.Store().Stats().RecoveredRecords
	w.sites[int(id)-1] = s
	return nil
}

// ReplayedRecords sums the WAL records replayed by all restarts so far.
func (w *World) ReplayedRecords() int {
	total := 0
	for _, d := range w.durable {
		if d != nil {
			total += d.replayed
		}
	}
	return total
}

// Close closes the journals of a durable world.
func (w *World) Close() error {
	var first error
	for _, d := range w.durable {
		if d != nil && !d.crashed {
			if err := d.journal.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (w *World) durableOf(id ids.SiteID) *durableSite {
	i := int(id) - 1
	if i < 0 || i >= len(w.durable) {
		return nil
	}
	return w.durable[i]
}

// Site returns the site instance of site id (1-based).
func (w *World) Site(id ids.SiteID) site.Instance {
	return w.sites[int(id)-1]
}

// Sites returns all site instances.
func (w *World) Sites() []site.Instance { return w.sites }

// Net exposes the simulator (fault control, stats).
func (w *World) Net() *netsim.Sim { return w.net }

// Step delivers one queued message, if any, and reports whether it did:
// the fine-grained interleaving knob used by randomised workloads.
func (w *World) Step() bool { return w.net.Step() }

// Run delivers queued messages until the network is quiet.
func (w *World) Run() error {
	_, err := w.net.Run(DefaultStepBudget)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// CollectAll runs one local collection on every site, then drains the
// resulting traffic.
func (w *World) CollectAll() error {
	for _, s := range w.sites {
		if _, err := s.Collect(); err != nil {
			return err
		}
	}
	return w.Run()
}

// RefreshAll runs one GGD refresh round on every site, then drains: the
// recovery mechanism for residual garbage after message loss (§5).
func (w *World) RefreshAll() error {
	for _, s := range w.sites {
		if err := s.Refresh(); err != nil {
			return err
		}
	}
	return w.Run()
}

// Settle drives the system to a stable state: deliver everything, collect
// everywhere, and repeat until a full round changes nothing. It bounds the
// number of rounds; detection latency is finite once the network is
// reliable.
func (w *World) Settle() error {
	if err := w.Run(); err != nil {
		return err
	}
	for round := 0; round < DefaultSettleRounds; round++ {
		before := w.totalObjects()
		if err := w.CollectAll(); err != nil {
			return err
		}
		if w.totalObjects() == before && w.net.Pending() == 0 {
			return nil
		}
	}
	return nil
}

func (w *World) totalObjects() int {
	n := 0
	for _, s := range w.sites {
		n += s.NumObjects()
	}
	return n
}

// TotalObjects returns the live object count across all sites.
func (w *World) TotalObjects() int { return w.totalObjects() }

// Check runs the global oracle.
func (w *World) Check() oracle.Report {
	views := make([]oracle.Site, len(w.sites))
	for i, s := range w.sites {
		views[i] = s
	}
	return oracle.Check(views...)
}
