package main

// End-to-end crash-recovery proof over real processes and sockets: the
// process hosting site 2 is SIGKILLed mid-protocol — after the
// third-party transfer, before cycle collection — and restarted from
// its persistence directory; the 3-site cluster must still reclaim the
// distributed cycle.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildNode compiles the causalgc-node binary into the test's temp dir.
func buildNode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "causalgc-node")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral port and releases it for the test's
// processes to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// proc wraps a running causalgc-node with line-scanned stdout.
type proc struct {
	t    *testing.T
	cmd  *exec.Cmd
	name string

	mu      sync.Mutex
	lines   []string
	exited  bool
	exitErr error
	done    chan error
}

func startNode(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{t: t, name: name, done: make(chan error, 1)}
	p.cmd = exec.Command(bin, args...)
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p.cmd.Stdout // interleave; errors surface in waitLine failures
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	go func() {
		// Drain to EOF before calling Wait: Wait closes the pipe, and
		// calling it concurrently with the scanner can discard the
		// process's final burst of output (the exec.Cmd.StdoutPipe
		// contract), losing exactly the lines waitLine asserts on.
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			p.mu.Unlock()
			t.Logf("[%s] %s", name, line)
		}
		p.done <- p.cmd.Wait()
	}()
	return p
}

// waitLine blocks until a stdout line contains substr.
func (p *proc) waitLine(substr string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	seen := 0
	for time.Now().Before(deadline) {
		p.mu.Lock()
		for ; seen < len(p.lines); seen++ {
			if strings.Contains(p.lines[seen], substr) {
				p.mu.Unlock()
				return true
			}
		}
		p.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// waitExit waits for the process to exit, caching the result so it can
// be asked more than once (e.g. a select loop and a deferred kill).
func (p *proc) waitExit(timeout time.Duration) (error, bool) {
	p.mu.Lock()
	if p.exited {
		err := p.exitErr
		p.mu.Unlock()
		return err, true
	}
	p.mu.Unlock()
	select {
	case err := <-p.done:
		p.mu.Lock()
		p.exited, p.exitErr = true, err
		p.mu.Unlock()
		return err, true
	case <-time.After(timeout):
		return nil, false
	}
}

func (p *proc) kill9() {
	p.cmd.Process.Signal(syscall.SIGKILL)
	if _, ok := p.waitExit(10 * time.Second); !ok {
		p.t.Errorf("%s did not exit after SIGKILL", p.name)
	}
}

func (p *proc) dump() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// TestE2ECrashRecovery is the acceptance scenario. It builds the real
// binary and drives two OS processes:
//
//	A hosts sites 1 and 3 and runs the demo driver;
//	B hosts site 2 durably, builds the cycle (remote creates, a genuine
//	  third-party transfer c→b across three sites, the closing edge
//	  b→a), and is SIGKILLed right after — before cycle collection.
//
// B restarts from its persistence directory in serve mode; A's demo
// must still complete (sites 1 and 3 reclaim b and c), and B's status
// line must reach objects=1 (site 2 reclaimed a).
func TestE2ECrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real processes")
	}
	bin := buildNode(t)
	addrA, addrB := freePort(t), freePort(t)
	persistDir := filepath.Join(t.TempDir(), "site2-durability")

	procA := startNode(t, "A", bin,
		"-sites", "1,3",
		"-listen", addrA,
		"-peers", "2="+addrB,
		"-demo", "-timeout", "90s",
	)
	defer func() { procA.kill9() }()

	procB1 := startNode(t, "B1", bin,
		"-sites", "2",
		"-listen", addrB,
		"-peers", fmt.Sprintf("1=%s,3=%s", addrA, addrA),
		"-demo", "-timeout", "90s",
		"-persist", persistDir,
		"-snapshot-every", "4",
	)
	// The kill point: the third-party transfer has been issued, cycle
	// collection has not run.
	if !procB1.waitLine("built cycle", 30*time.Second) {
		procB1.kill9()
		t.Fatalf("B never built the cycle:\n%s", procB1.dump())
	}
	procB1.kill9()
	t.Log("SIGKILLed site-2 process after the third-party transfer")

	// Restart from the same persistence directory, serve mode, with the
	// metrics endpoint enabled.
	metricsAddr := freePort(t)
	procB2 := startNode(t, "B2", bin,
		"-sites", "2",
		"-listen", addrB,
		"-peers", fmt.Sprintf("1=%s,3=%s", addrA, addrA),
		"-persist", persistDir,
		"-snapshot-every", "4",
		"-metrics-addr", metricsAddr,
	)
	defer func() { procB2.kill9() }()
	if !procB2.waitLine("recovered from", 15*time.Second) {
		t.Fatalf("B2 did not recover:\n%s", procB2.dump())
	}

	// A's demo completes only when sites 1 and 3 are reclaimed down to
	// their roots — which requires site 2's recovered state to finish
	// the GGD episode across the cycle.
	err, exited := procA.waitExit(90 * time.Second)
	if !exited {
		t.Fatalf("driver never completed\nA:\n%s\nB2:\n%s", procA.dump(), procB2.dump())
	}
	if err != nil {
		t.Fatalf("driver process failed: %v\nA:\n%s\nB2:\n%s", err, procA.dump(), procB2.dump())
	}
	if !procA.waitLine("demo complete", time.Second) {
		t.Fatalf("driver exited without completing the demo:\n%s", procA.dump())
	}

	// And site 2 itself reclaims a: its status line reaches objects=1.
	if !procB2.waitLine("status objects=1 ", 30*time.Second) {
		t.Fatalf("recovered site 2 never reclaimed the cycle head:\n%s", procB2.dump())
	}

	// The metrics endpoint serves the same state over HTTP: site 2 is
	// back to its root alone, the WAL replayed on recovery, and GGD's
	// removal counter advanced during this node session.
	if !procB2.waitLine("metrics on", 5*time.Second) {
		t.Fatalf("B2 never announced its metrics endpoint:\n%s", procB2.dump())
	}
	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape B2 metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`causalgc_objects{site="s2"} 1`,
		`causalgc_wal_recovered_records{site="s2"}`,
		`causalgc_clusters_removed_total{site="s2"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("B2 /metrics missing %q:\n%s", want, metrics)
		}
	}
}
