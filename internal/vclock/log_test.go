package vclock

import (
	"strings"
	"testing"

	"causalgc/internal/ids"
)

func TestLogBasics(t *testing.T) {
	l := NewLog(c2)
	if l.Owner() != c2 {
		t.Fatalf("Owner = %v, want %v", l.Owner(), c2)
	}
	if l.PeekVRow(c3) != nil || l.PeekOB(c3) != nil {
		t.Error("Peek must not create rows")
	}
	r := l.VRow(c3)
	if r == nil || r.Confirmed {
		t.Fatal("VRow must create an unconfirmed row")
	}
	if l.PeekVRow(c3) != r {
		t.Error("VRow must be cached")
	}
	ob := l.OB(c4)
	ob.Auth.Set(c2, At(1))
	if got := l.PeekOB(c4).Auth.Get(c2); got != At(1) {
		t.Errorf("OB entry = %v, want 1", got)
	}
	procs := l.Processes()
	if len(procs) != 3 { // owner + c3 + c4
		t.Errorf("Processes = %v, want 3 entries", procs)
	}
}

func TestLogMergeVRow(t *testing.T) {
	l := NewLog(c2)
	v := Vector{c3: At(2), r1: At(1)}
	if !l.MergeVRow(c3, v, nil, true, false) {
		t.Error("first merge must report change")
	}
	if l.Confirmed(c3) {
		t.Error("unconfirmed merge must not confirm")
	}
	if l.MergeVRow(c3, v, nil, true, false) {
		t.Error("idempotent merge must not report change")
	}
	if !l.MergeVRow(c3, v, nil, true, true) {
		t.Error("confirming merge must report change")
	}
	if !l.Confirmed(c3) {
		t.Error("row must be confirmed")
	}
	// Stale values must not regress entries.
	if l.MergeVRow(c3, Vector{c3: At(1)}, nil, true, true) {
		t.Error("stale merge must not report change")
	}
	if got := l.PeekVRow(c3).Auth.Get(c3); got != At(2) {
		t.Errorf("entry regressed to %v", got)
	}
}

// Scenario of the paper, Figs 3–5: a cycle {2,3,4} loses its root edge.
// This drives the log of process 2 by hand and checks the closure.
func TestLogClosureCycleScenario(t *testing.T) {
	l := NewLog(c2)

	// Lazy log-keeping at 2: incoming edge from root 1 (creation), later
	// destroyed; incoming edge from 4 (2 sent its own reference to 4).
	l.Own().Set(r1, Eps(1))
	l.Own().Set(c4, At(1))

	// Before any GGD circulation, 4's ancestry is unknown: the closure
	// must be incomplete and must not certify garbage.
	res := l.Closure(3)
	if res.Complete {
		t.Fatal("closure with unconfirmed live predecessor must be incomplete")
	}
	if res.Garbage() {
		t.Fatal("incomplete closure must never certify garbage")
	}
	if res.V.Get(r1) != Eps(1) {
		t.Errorf("V[r1] = %v, want Ē1", res.V.Get(r1))
	}

	// GGD circulation confirms the cycle's rows: no root anywhere.
	l.MergeVRow(c4, Vector{c4: At(2), c2: At(1), c3: At(1)}, nil, true, true)
	l.MergeVRow(c3, Vector{c3: At(2), c2: At(1), c4: At(1)}, nil, true, true)
	res = l.Closure(3)
	if !res.Complete {
		t.Fatalf("closure must be complete once all live rows are confirmed:\n%v", l)
	}
	if !res.Garbage() {
		t.Fatalf("cycle with destroyed root edge must be garbage; V=%v", res.V)
	}
	if res.V.Get(c3) == Zero {
		t.Error("closure must pick up transitive predecessor 3 via 4's row")
	}
}

func TestLogClosureLiveRootThroughCycle(t *testing.T) {
	// 1 → 4 → 2 and a destroyed 1 → 2: 2 is live via 4 even though its
	// own direct root edge is destroyed (JoinPath).
	l := NewLog(c2)
	l.Own().Set(r1, Eps(1))
	l.Own().Set(c4, At(1))
	l.MergeVRow(c4, Vector{c4: At(2), r1: At(2), c2: At(1)}, nil, true, true)

	res := l.Closure(4)
	if !res.Complete {
		t.Fatal("closure should be complete")
	}
	if res.Garbage() {
		t.Fatal("2 must not be garbage: live root path via 4")
	}
	if got := res.V.Get(r1); !got.Live() {
		t.Errorf("V[r1] = %v, want live (JoinPath)", got)
	}
}

func TestLogClosureRootColumnTerminal(t *testing.T) {
	// A live actual-root column needs no confirmed row: roots are alive by
	// fiat.
	l := NewLog(c2)
	l.Own().Set(r1, At(1))
	res := l.Closure(1)
	if !res.Complete {
		t.Fatal("root columns are terminal; closure must be complete")
	}
	if res.Garbage() {
		t.Fatal("live root edge must keep the owner alive")
	}
}

func TestLogClosureSelfColumnNotOverridden(t *testing.T) {
	l := NewLog(c2)
	l.Own().Set(c3, At(1))
	// 3's row claims something about 2 (a stale relayed value); the
	// closure must keep the owner's clock.
	l.MergeVRow(c3, Vector{c3: At(1), c2: At(99)}, nil, true, true)
	res := l.Closure(5)
	if got := res.V.Get(c2); got != At(5) {
		t.Errorf("V[self] = %v, want own clock 5", got)
	}
}

func TestLogClosureExpandOnceTerminates(t *testing.T) {
	// Mutual recursion 2 ⇄ 3 must terminate and stay live while a root
	// path exists anywhere in the strongly connected set.
	l := NewLog(c2)
	l.Own().Set(c3, At(1))
	l.MergeVRow(c3, Vector{c3: At(1), c2: At(1), r1: At(1)}, nil, true, true)
	res := l.Closure(2)
	if res.Garbage() {
		t.Fatal("root path via 3 must keep 2 alive")
	}
	if !res.Expanded.Has(c3) {
		t.Error("3 must have been expanded")
	}
}

func TestLogClosureDeadEdgeNotExpanded(t *testing.T) {
	// An Ē stamp cuts off expansion: 3's row would claim a root path, but
	// the edge 3→2 is destroyed.
	l := NewLog(c2)
	l.Own().Set(c3, Eps(2))
	l.MergeVRow(c3, Vector{c3: At(1), r1: At(1)}, nil, true, true)
	res := l.Closure(2)
	if !res.Complete {
		t.Fatal("closure must be complete: no live columns at all")
	}
	if !res.Garbage() {
		t.Fatalf("destroyed edge must not transmit root liveness; V=%v", res.V)
	}
}

func TestLogClosureOnBehalfEntriesExpand(t *testing.T) {
	// On-behalf entries participate in expansion: 2 brokered edge 3→4, so
	// its closure must count 3 among 4's ancestry when expanding 4.
	l := NewLog(c2)
	l.Own().Set(c4, At(1))
	l.OB(c4).Hints.Set(c3, At(1)) // 2 sent a ref-to-4 to 3
	l.MergeVRow(c4, Vector{c4: At(1)}, nil, true, true)
	l.MergeVRow(c3, Vector{c3: At(1), r1: At(1)}, nil, true, true)
	res := l.Closure(2)
	if got := res.V.Get(c3); !got.Live() {
		t.Fatalf("V[c3] = %v, want live via on-behalf entry", got)
	}
	if got := res.V.Get(r1); !got.Live() {
		t.Fatal("root liveness must flow through the on-behalf edge")
	}
	if res.Garbage() {
		t.Fatal("must not be garbage")
	}
}

func TestLogClosureLateLiveReexpansion(t *testing.T) {
	// A column first seen dead via one row and later live via another must
	// still be expanded.
	l := NewLog(c2)
	l.Own().Set(c4, Eps(7))
	l.Own().Set(c3, At(1))
	l.MergeVRow(c3, Vector{c3: At(1), c4: At(1)}, nil, true, true)
	l.MergeVRow(c4, Vector{c4: At(1), r1: At(1)}, nil, true, true)
	res := l.Closure(3)
	if got := res.V.Get(r1); !got.Live() {
		t.Fatalf("root liveness must flow through the live 4-path; V=%v", res.V)
	}
	if res.Garbage() {
		t.Fatal("must not be garbage")
	}
}

func TestLogRender(t *testing.T) {
	l := NewLog(c2)
	l.Own().Set(r1, At(1))
	l.VRow(c3).Auth.Set(c3, At(1))
	l.OB(c4).Hints.Set(c2, At(2))
	out := l.Render([]ids.ClusterID{r1, c2, c3, c4})
	for _, want := range []string{
		"DV[s2/c1]! = (1,0,0,0)",
		"DV[s3/c1]  = (0,0,1,0)",
		"ob[s4/c1]  = (0,0,0,0) fwd (0,2,0,0)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if s := l.String(); !strings.Contains(s, "s1/R1:1") {
		t.Errorf("String = %q", s)
	}
}

func TestLogCloneIndependence(t *testing.T) {
	l := NewLog(c2)
	l.Own().Set(r1, At(1))
	l.MergeVRow(c3, Vector{c3: At(1)}, nil, true, true)
	l.OB(c4).Hints.Set(c2, At(1))
	cp := l.Clone()
	cp.Own().Set(r1, Eps(2))
	cp.VRow(c3).Auth.Set(c3, At(9))
	cp.OB(c4).Hints.Set(c2, At(9))
	if l.Own().Get(r1) != At(1) {
		t.Error("Clone must not share the own vector")
	}
	if l.PeekVRow(c3).Auth.Get(c3) != At(1) {
		t.Error("Clone must not share vector rows")
	}
	if l.PeekOB(c4).Hints.Get(c2) != At(1) {
		t.Error("Clone must not share on-behalf vectors")
	}
	if !cp.Confirmed(c3) || !l.Confirmed(c3) {
		t.Error("confirmation must be copied")
	}
}

func TestClosureResultGarbage(t *testing.T) {
	tests := []struct {
		name string
		res  ClosureResult
		want bool
	}{
		{"incomplete", ClosureResult{Complete: false}, false},
		{"complete no root", ClosureResult{Complete: true}, true},
		{"complete live root", ClosureResult{Complete: true, LiveRoot: true}, false},
		{"incomplete live root", ClosureResult{LiveRoot: true}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.res.Garbage(); got != tt.want {
				t.Errorf("Garbage() = %t, want %t", got, tt.want)
			}
		})
	}
}
