package vclock

import (
	"strings"

	"causalgc/internal/ids"
)

// HintSet tracks pending edge-introduction hints: col → introducer → the
// introducer's latest forwarding sequence number, stored as a live stamp.
//
// A hint (col, intro, seq) means: "process intro, at its event seq,
// forwarded a reference such that the edge col→owner may exist or be about
// to exist". Hints are the lazy third-party entries of §3.4 made sound:
// they are conservative liveness (they block a garbage verdict) until the
// edge's source resolves them authoritatively — via an edge-assert issued
// after the forwarded reference arrived, or via the destruction bundle's
// processed-introductions record.
//
// Resolution is per (col, intro) pair and sequence-bounded: clearing up to
// seq n removes pending hints with seq ≤ n and suppresses stale re-arms
// (old gossip), while a genuinely new forwarding (seq > n) re-arms. This
// is what closes the re-creation race: an Ē stamp can never silently mask
// a newer in-flight introduction.
//
// Hints are stamped: the sequence number stored per (col, intro) IS the
// introducer's event stamp for the forwarding, drawn from the
// introducer's totally-ordered clock. That stamp is what makes the two
// resolution paths provably causally ordered:
//
//   - Clear — the edge's source speaks. An edge-assert or a destruction
//     bundle from col carries (intro, seq) records the source consumed,
//     issued causally after the forwarded reference arrived.
//   - Expire — the introduction is provably dead. The forwarded
//     reference was delivered to col's site and discarded there without
//     an edge ever forming (holder object already collected, cluster
//     tombstoned), so no event of col can ever consume it. col's site
//     reports this with a stampless (negative) assert for exactly
//     (intro, seq); anything col's edge did do — form earlier, form
//     later under a fresher forwarding — carries its own stamp or its
//     own seq and is unaffected by the expiry bound.
//
// Both record the same resolution bound, so stale gossip can re-arm
// neither a resolved nor an expired introduction.
type HintSet struct {
	pending map[ids.ClusterID]Vector // col → intro → seq
	cleared map[ids.ClusterID]Vector // col → intro → resolved-up-to seq
}

// NewHintSet returns an empty hint set.
func NewHintSet() *HintSet {
	return &HintSet{
		pending: make(map[ids.ClusterID]Vector),
		cleared: make(map[ids.ClusterID]Vector),
	}
}

// Arm records hint (col, intro, seq) unless it was already resolved up to
// seq. It reports whether the pending set changed.
func (h *HintSet) Arm(col, intro ids.ClusterID, seq uint64) bool {
	if seq == 0 {
		return false
	}
	if c := h.cleared[col]; c != nil && c.Get(intro).Seq >= seq {
		return false
	}
	p := h.pending[col]
	if p == nil {
		p = NewVector()
		h.pending[col] = p
	}
	return p.MergeEntry(intro, At(seq))
}

// Clear resolves hints (col, intro, ≤ seq) and remembers the resolution
// bound. It reports whether anything changed.
func (h *HintSet) Clear(col, intro ids.ClusterID, seq uint64) bool {
	c := h.cleared[col]
	if c == nil {
		c = NewVector()
		h.cleared[col] = c
	}
	changed := c.MergeEntry(intro, At(seq))
	if p := h.pending[col]; p != nil {
		if s := p.Get(intro); s != Zero && s.Seq <= seq {
			delete(p, intro)
			changed = true
			if len(p) == 0 {
				delete(h.pending, col)
			}
		}
	}
	return changed
}

// Expire is the hint-expiry rule: it clears hints (col, intro, ≤ seq)
// whose introduction is provably stale — the forwarded reference reached
// col's site and was discarded without the edge ever forming, so no word
// of col will ever consume it. The mechanism is the shared resolution
// bound (an expired introduction must suppress stale re-arms exactly
// like a consumed one); the rule — who may invoke it, and on what
// evidence — is the caller's obligation: only col's own site, for a
// delivered forwarding it discarded. It reports whether anything
// changed.
func (h *HintSet) Expire(col, intro ids.ClusterID, seq uint64) bool {
	return h.Clear(col, intro, seq)
}

// ResolvedThrough returns the resolution bound recorded for (col,
// intro): the highest forwarding sequence known consumed or expired
// (zero if none).
func (h *HintSet) ResolvedThrough(col, intro ids.ClusterID) uint64 {
	if c := h.cleared[col]; c != nil {
		return c.Get(intro).Seq
	}
	return 0
}

// Has reports whether any hint is pending for col.
func (h *HintSet) Has(col ids.ClusterID) bool {
	return len(h.pending[col]) > 0
}

// Pending returns the pending introducer vector for col (nil if none).
func (h *HintSet) Pending(col ids.ClusterID) Vector { return h.pending[col] }

// Cols returns the columns with pending hints, sorted.
func (h *HintSet) Cols() []ids.ClusterID {
	out := make([]ids.ClusterID, 0, len(h.pending))
	for col := range h.pending {
		out = append(out, col)
	}
	ids.SortClusters(out)
	return out
}

// Empty reports whether no hints are pending.
func (h *HintSet) Empty() bool { return len(h.pending) == 0 }

// Clone returns a deep copy.
func (h *HintSet) Clone() *HintSet {
	out := NewHintSet()
	for col, v := range h.pending {
		out.pending[col] = v.Clone()
	}
	for col, v := range h.cleared {
		out.cleared[col] = v.Clone()
	}
	return out
}

// String renders pending hints deterministically: "c3<-{c2:5}".
func (h *HintSet) String() string {
	if h.Empty() {
		return "{}"
	}
	var b strings.Builder
	for i, col := range h.Cols() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(col.String())
		b.WriteString("<-")
		b.WriteString(h.pending[col].String())
	}
	return b.String()
}
