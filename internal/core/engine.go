package core

import (
	"fmt"
	"sort"

	"causalgc/internal/ids"
	"causalgc/internal/vclock"
)

// Propagation is the payload of a dependency-vector propagation (§3.3
// step 3): the sender's first-hand incoming-edge state and clock, relayed
// copies of other processes' first-hand rows, and the sender's own
// on-behalf entries. Everything merges per edge at the receiver, so
// propagations are idempotent and tolerate loss, duplication and
// reordering (§5).
type Propagation struct {
	Clock    uint64
	Auth     vclock.Vector
	HintCols []ids.ClusterID
	Rows     map[ids.ClusterID]RowGossip
	OBs      map[ids.ClusterID]OBGossip
}

// RowGossip is a relayed copy of a process's first-hand state.
type RowGossip struct {
	Auth     vclock.Vector
	HintCols []ids.ClusterID
}

// OBGossip is the sender's first-hand on-behalf entries for one process.
type OBGossip struct {
	Auth  vclock.Vector
	Hints vclock.Vector
}

// DestroyMsg is the §3.4 edge-destruction control message: the sender's
// authoritative stamps for the target's incoming edges (its own column
// replaced by Ē), the forwarding hints it brokered — "multiple
// edge-creation control messages bundled with an edge-destruction control
// message in one atomic delivery" — and the introductions it processed
// for its own edge, which resolve the corresponding hints at the target.
type DestroyMsg struct {
	Auth      vclock.Vector
	Hints     vclock.Vector
	Processed vclock.Vector
}

// AssertMsg is the edge-assert: the source's authoritative live stamp for
// its edge to the target, resolving the introduction (Intro, IntroSeq).
// A zero Stamp is a negative assert: it carries no liveness claim and
// only expires the introduction (see ResolveIntroduction).
type AssertMsg struct {
	Stamp    uint64
	Intro    ids.ClusterID
	IntroSeq uint64
}

// AckMsg is the legacy per-row acknowledgement of one edge-assert
// (wire.HintAck, superseded by the cumulative FrameAck protocol of
// DESIGN.md §3.2). It is still decoded and honoured so pre-v3 journals
// replay identically.
type AckMsg struct {
	Intro    ids.ClusterID
	IntroSeq uint64
	Stamp    uint64
}

// Sender transmits GGD control messages to other sites and assigns the
// retirement-stream sequence numbers of DESIGN.md §3.2. The site runtime
// implements it on top of the network; local deliveries never touch it.
//
// SendDestroy, SendLegacy and SendAssert take the frame's stream
// sequence: zero means "assign a fresh one" (first send); non-zero means
// "re-send under the same sequence", so a re-sent frame fills the same
// receiver-side gap instead of opening a new one. Both return the
// sequence the frame was shipped with.
type Sender interface {
	// SendDestroy ships an edge-destruction bundle in StreamDestroy.
	SendDestroy(from, to ids.ClusterID, m DestroyMsg, seq uint64) uint64
	// SendLegacy ships a retained finalisation bundle in StreamLegacy.
	SendLegacy(from, to ids.ClusterID, m DestroyMsg, seq uint64) uint64
	// SendAssert ships an edge-assert in StreamAssert.
	SendAssert(from, to ids.ClusterID, m AssertMsg, seq uint64) uint64
	// SendPropagate ships a dependency-vector propagation (untracked:
	// propagations are regenerated each round, never retained).
	SendPropagate(from, to ids.ClusterID, m Propagation)
	// SettleFrame reports that a tracked frame from peer reached a final,
	// replayable disposition (merged, durably buffered, or dropped as
	// addressed to a tombstone). The site runtime advances the receive
	// watermark and acknowledges cumulatively.
	SettleFrame(peer ids.SiteID, stream Stream, seq uint64)
}

// Stats counts engine activity for the experiment harness.
type Stats struct {
	// Removed counts clusters detected as garbage and removed.
	Removed int
	// Evaluations counts closure computations.
	Evaluations int
	// PropagationsSent counts dependency vectors sent (local and remote).
	PropagationsSent int
	// DestroysSent counts edge-destruction messages sent (local and
	// remote), including finalisation destroys and refresh re-sends.
	DestroysSent int
	// AssertsSent counts edge-assert messages sent (first sends, negative
	// asserts included).
	AssertsSent int
	// AssertResends counts journaled edge-asserts re-sent by Refresh.
	AssertResends int
	// DestroyResends counts destroyed-edge bundles re-sent by Refresh
	// from on-behalf rows (subset of DestroysSent).
	DestroyResends int
	// LegacyResends counts retained finalisation bundles re-sent by
	// Refresh (subset of DestroysSent).
	LegacyResends int
	// ResendsSuppressed counts re-sends the exponential damper held back
	// (the row stays retained; it is re-shipped when its interval lapses).
	ResendsSuppressed int
	// RowsRetired counts retained rows (asserts, destroyed-edge bundles,
	// legacy bundles) retired by cumulative frame acknowledgements.
	RowsRetired int
	// AssertRowsDropped counts journal rows lost to the maxAssertRows
	// bound (dropped new positives plus evicted victims): tolerated loss,
	// surfaced so operators can see the backstop fire.
	AssertRowsDropped int
	// LegacyEvicted counts retained finalisation bundles lost to the
	// maxLegacy bound before acknowledgement: tolerated loss.
	LegacyEvicted int
	// HintsExpired counts introduction hints expired as provably stale
	// (negative asserts processed, local expiries included).
	HintsExpired int
	// StaleDeliveries counts messages addressed to removed or unknown
	// processes (harmless; dropped).
	StaleDeliveries int
}

// Options tune the engine.
type Options struct {
	// UnsafeSkipConfirmation disables the row-confirmation guard
	// (DESIGN.md interpretation #4). A2 ablation only.
	UnsafeSkipConfirmation bool
	// UnsafeNoHints disables introduction hints and edge-asserts,
	// reproducing the paper's raw max-merge of counts and Ē stamps. A2
	// ablation only: exhibits the introduction race.
	UnsafeNoHints bool
	// ResendBackoffCap caps the exponential re-send damper's interval,
	// in refresh rounds (DESIGN.md §3.2). Zero means
	// DefaultResendBackoffCap; one re-sends every round (damping off).
	ResendBackoffCap int
	// RemoveObserver, when non-nil, is called with the process's final log
	// just before removal (diagnostics and the trace tooling).
	RemoveObserver func(id ids.ClusterID, log *vclock.Log, clock uint64)
	// Owns, when non-nil, narrows this engine's notion of "local": a
	// cluster is handled in-engine only when Owns reports true, and
	// every other cluster — including same-site clusters owned by a
	// sibling shard — is reached through the Sender like a remote peer
	// (DESIGN.md §3.4). Nil means site equality (the unsharded engine).
	Owns func(ids.ClusterID) bool
}

// Engine is one site's GGD runtime. It is not safe for concurrent use;
// the site runtime serialises access.
type Engine struct {
	site     ids.SiteID
	send     Sender
	onRemove func(ids.ClusterID)
	opts     Options
	boCap    uint64

	procs     map[ids.ClusterID]*process
	tombstone map[ids.ClusterID]uint64 // removed cluster → final clock

	inbox    []delivery
	draining bool
	// pending buffers control messages that raced ahead of their target's
	// creation message (reordered channels): replayed on Register. Bounded
	// per cluster; overflow falls back to dropping (loss-equivalent, safe).
	pending map[ids.ClusterID][]delivery

	// asserts is the re-send journal: every un-acknowledged edge-assert,
	// keyed by (holder, target, introducer, forwarding-seq). Rows are
	// retired exactly by the owner site's cumulative FrameAck (AckAsserts),
	// by the edge's destruction (the destroy bundle takes over
	// resolution), or by the holder's removal; Refresh re-sends whatever
	// remains, damped. Bounded: past maxAssertRows new rows are dropped
	// (loss-equivalent — deterministic, so replay agrees — and counted in
	// Stats.AssertRowsDropped).
	asserts map[assertRow]*assertState
	// destroys tracks the Ē bundle of every destroyed remote edge whose
	// on-behalf row Refresh would re-ship: its stream sequence (stable
	// across re-sends), whether the target site acknowledged it, and the
	// damper. An entry is deleted when the edge re-forms (the fresh live
	// stamp supersedes) and when its holder is removed (the finalisation
	// path takes over).
	destroys map[edgeKey]*destroyState
	// legacy retains the finalisation destroy bundles of removed
	// processes until the target site acknowledges them: once the process
	// is gone its on-behalf rows can no longer re-ship them, yet they
	// carry the records that resolve the successors' hints. Bounded by
	// maxLegacy as a backstop (eviction is tolerated loss, counted).
	legacy []*legacyDestroy
	// round counts Refresh invocations: the damper's time base.
	round uint64

	stats Stats
}

// assertRow identifies one journaled edge-assert.
type assertRow struct {
	holder, target, intro ids.ClusterID
	seq                   uint64
}

// legacyDestroy is one retained finalisation destroy bundle.
type legacyDestroy struct {
	from, to ids.ClusterID
	m        DestroyMsg
	seq      uint64
	bo       Backoff
}

const (
	// maxAssertRows bounds the assert re-send journal.
	maxAssertRows = 4096
	// maxLegacy bounds the retained finalisation bundles.
	maxLegacy = 1024
)

// process is the per-global-root state: the paper's "each global root
// appears as a process" (§3.1).
type process struct {
	id    ids.ClusterID
	clock uint64
	log   *vclock.Log
	// acq is the paper's Acquaintances_i: the targets of the process's
	// live out-edges in the global root graph, i.e. its remote successors.
	acq ids.ClusterSet
	// active marks participation in a GGD episode: set when a destroy or
	// a propagation arrives (§3.6: "GGD is only triggered when the edge
	// ... is removed"). Edge-asserts received by inactive processes are
	// plain bookkeeping and do not start propagation rounds, keeping pure
	// mutation free of GGD fan-out.
	active bool
}

// delivery is one queued control-message delivery. seq and stream carry
// the frame's retirement-stream identity (zero for local or untracked
// frames); a delivery that reaches a final disposition is settled back
// to the sender's site through Sender.SettleFrame.
type delivery struct {
	to, from ids.ClusterID
	kind     deliveryKind
	destroy  DestroyMsg
	prop     Propagation
	assert   AssertMsg
	seq      uint64
	stream   Stream
	// settled marks a buffered delivery whose settlement was already
	// reported: its sender may have retired the re-send state behind it,
	// so it must never be evicted from the pending buffer (nothing would
	// ever re-derive it).
	settled bool
}

type deliveryKind int

const (
	deliverDestroy deliveryKind = iota + 1
	deliverPropagate
	deliverAssert
)

// New creates an engine. send must not be nil; onRemove is invoked for
// every cluster the engine removes (the site runtime clears the heap's
// entry table there) and may be nil.
func New(site ids.SiteID, send Sender, onRemove func(ids.ClusterID), opts Options) *Engine {
	return &Engine{
		site:      site,
		send:      send,
		onRemove:  onRemove,
		opts:      opts,
		boCap:     EffectiveBackoffCap(opts.ResendBackoffCap),
		procs:     make(map[ids.ClusterID]*process),
		tombstone: make(map[ids.ClusterID]uint64),
		pending:   make(map[ids.ClusterID][]delivery),
		asserts:   make(map[assertRow]*assertState),
		destroys:  make(map[edgeKey]*destroyState),
	}
}

// Stats returns a copy of the activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// owns reports whether cl is handled by this engine instance (as
// opposed to a peer engine reached through the Sender — a remote site,
// or a sibling shard of the same site).
func (e *Engine) owns(cl ids.ClusterID) bool {
	if e.opts.Owns != nil {
		return e.opts.Owns(cl)
	}
	return cl.Site == e.site
}

// Retained reports the sizes of the engine's retained-state tables: the
// depth gauges a monitor watches to confirm the metadata stays bounded
// (the paper's §4 scalability argument made operational). DestroyRows
// includes acknowledged Ē bundles that are kept until their holder is
// removed or the edge re-forms, so it settles to the number of
// destroyed-but-remembered edges rather than zero.
type Retained struct {
	// AssertRows is the number of un-acknowledged edge-asserts in the
	// re-send journal.
	AssertRows int
	// DestroyRows is the number of tracked destroyed-edge Ē bundles.
	DestroyRows int
	// LegacyBundles is the number of retained finalisation destroy
	// bundles of removed clusters.
	LegacyBundles int
	// PendingDeliveries is the number of buffered control messages that
	// raced ahead of their target's registration.
	PendingDeliveries int
}

// Retained returns the current retained-state table sizes.
func (e *Engine) Retained() Retained {
	pend := 0
	for _, q := range e.pending {
		pend += len(q)
	}
	return Retained{
		AssertRows:        len(e.asserts),
		DestroyRows:       len(e.destroys),
		LegacyBundles:     len(e.legacy),
		PendingDeliveries: pend,
	}
}

// Register creates the process for a local cluster. Registering an
// existing or tombstoned process is a no-op (idempotent).
func (e *Engine) Register(cl ids.ClusterID) {
	if cl.Site != e.site {
		panic(fmt.Sprintf("core %v: register foreign cluster %v", e.site, cl))
	}
	if _, ok := e.procs[cl]; ok {
		return
	}
	if _, dead := e.tombstone[cl]; dead {
		return
	}
	e.procs[cl] = &process{
		id:  cl,
		log: vclock.NewLog(cl),
		acq: ids.NewClusterSet(),
	}
	if buffered := e.pending[cl]; len(buffered) > 0 {
		delete(e.pending, cl)
		e.inbox = append(e.inbox, buffered...)
	}
}

// Registered reports whether cl has a live process.
func (e *Engine) Registered(cl ids.ClusterID) bool {
	_, ok := e.procs[cl]
	return ok
}

// Removed reports whether cl was detected as garbage and removed.
func (e *Engine) Removed(cl ids.ClusterID) bool {
	_, dead := e.tombstone[cl]
	return dead
}

// Clock returns the process's current event counter (final counter for
// removed processes).
func (e *Engine) Clock(cl ids.ClusterID) uint64 {
	if p := e.procs[cl]; p != nil {
		return p.clock
	}
	return e.tombstone[cl]
}

// LogSnapshot returns a deep copy of the process's log (trace tooling), or
// nil for removed/unknown processes.
func (e *Engine) LogSnapshot(cl ids.ClusterID) *vclock.Log {
	if p := e.procs[cl]; p != nil {
		return p.log.Clone()
	}
	return nil
}

// Acquaintances returns the process's current successors, sorted.
func (e *Engine) Acquaintances(cl ids.ClusterID) []ids.ClusterID {
	if p := e.procs[cl]; p != nil {
		return p.acq.Sorted()
	}
	return nil
}

// Processes returns the live local processes, sorted.
func (e *Engine) Processes() []ids.ClusterID {
	out := make([]ids.ClusterID, 0, len(e.procs))
	for id := range e.procs {
		out = append(out, id)
	}
	ids.SortClusters(out)
	return out
}

// --- Lazy log-keeping (§3.4) -------------------------------------------

// EdgeUp records the creation (or re-assertion) of the global-root-graph
// edge holder→target, stamped in the holder's clock space. intro and
// introSeq identify the introduction being consumed (the cluster whose
// forwarded reference created the edge, and its forwarding sequence
// number); they are zero for locally originated references.
//
// For a local target everything is written directly (same site, atomic).
// For a remote target the holder records its authoritative stamp on
// behalf of the target and, on a 0→1 transition, sends one deferred
// idempotent edge-assert so the target can resolve the introduction.
func (e *Engine) EdgeUp(holder, target ids.ClusterID, first bool, intro ids.ClusterID, introSeq uint64) {
	if holder == target {
		return
	}
	p, ok := e.procs[holder]
	if !ok {
		e.stats.StaleDeliveries++
		return
	}
	p.clock++
	stamp := vclock.At(p.clock)
	if first {
		p.acq.Add(target)
	}
	// The edge re-formed: any earlier Ē bundle is superseded by the fresh
	// live stamp, so its retirement tracking is moot.
	delete(e.destroys, edgeKey{holder, target})
	if e.owns(target) {
		if t, tok := e.procs[target]; tok {
			t.log.Own().MergeEntry(holder, stamp)
			if intro.Valid() && introSeq > 0 && introSeq != ids.CreationSeq {
				t.log.Hints().Clear(holder, intro, introSeq)
			}
		} else if _, dead := e.tombstone[target]; !dead {
			// The target's creation message has not arrived yet
			// (reordered channels): the authoritative stamp and the hint
			// resolution must not be lost — route them through the
			// pre-registration pending buffer as a self-delivered
			// assert, replayed on Register. Dropping the Clear here
			// would lose the resolution bound: the introducer's bundle
			// later arms the hint with no carrier left to resolve it,
			// pinning the target forever (local edges have no assert
			// journal and no Processed record to re-derive from).
			m := AssertMsg{Stamp: p.clock}
			if intro.Valid() && introSeq > 0 && introSeq != ids.CreationSeq {
				m.Intro, m.IntroSeq = intro, introSeq
			}
			e.inbox = append(e.inbox, delivery{to: target, from: holder, kind: deliverAssert, assert: m})
		}
		return
	}
	ob := p.log.OB(target)
	ob.Auth.MergeEntry(holder, stamp)
	creation := introSeq == ids.CreationSeq
	if intro.Valid() && introSeq > 0 && !creation {
		ob.Processed.MergeEntry(intro, vclock.At(introSeq))
	}
	// A creation needs no assert: the creation message itself carries the
	// authoritative stamp to the new cluster.
	if first && !creation && !e.opts.UnsafeNoHints {
		m := AssertMsg{Stamp: p.clock, Intro: intro, IntroSeq: introSeq}
		e.sendJournaledAssert(assertRow{holder: holder, target: target, intro: intro, seq: introSeq}, m)
	}
}

// sendJournaledAssert journals the assert row (if the journal bound
// admits it) and ships the assert under the row's stable stream
// sequence.
func (e *Engine) sendJournaledAssert(row assertRow, m AssertMsg) {
	st := e.journalAssert(row, m.Stamp)
	e.stats.AssertsSent++
	var seq uint64
	if st != nil {
		seq = st.seq
	}
	seq = e.send.SendAssert(row.holder, row.target, m, seq)
	if st != nil {
		st.seq = seq
	}
}

// journalAssert records an un-acknowledged assert for Refresh re-send
// and returns its state (nil when the bound dropped it). At the bound, a
// new positive row is dropped (loss-equivalent: its introduction sits in
// the on-behalf Processed vector, so the edge's eventual destroy bundle
// still resolves the hint), while a new negative row evicts an existing
// one — an expired introduction appears in no bundle, so dropping the
// freshly-sent row would pin the owner's hint on a single message loss.
// The victim is a positive row when one exists, else the
// deterministically-first negative row (the oldest in re-send order,
// which has had the most delivery attempts). All choices are
// deterministic, so WAL replay reconstructs the journal.
func (e *Engine) journalAssert(row assertRow, stamp uint64) *assertState {
	if st, ok := e.asserts[row]; ok {
		st.stamp = stamp
		return st
	}
	if len(e.asserts) >= maxAssertRows {
		if stamp > 0 {
			e.stats.AssertRowsDropped++
			return nil
		}
		e.evictAssertRow()
	}
	st := &assertState{stamp: stamp}
	e.asserts[row] = st
	return st
}

// evictAssertRow removes the deterministically-first positive journal
// row, falling back to the deterministically-first negative row when
// the journal holds no positive ones.
func (e *Engine) evictAssertRow() {
	var posVictim, negVictim assertRow
	posFound, negFound := false, false
	for row, st := range e.asserts {
		if st.stamp > 0 {
			if !posFound || assertRowLess(row, posVictim) {
				posVictim, posFound = row, true
			}
		} else if !negFound || assertRowLess(row, negVictim) {
			negVictim, negFound = row, true
		}
	}
	switch {
	case posFound:
		delete(e.asserts, posVictim)
		e.stats.AssertRowsDropped++
	case negFound:
		delete(e.asserts, negVictim)
		e.stats.AssertRowsDropped++
	}
}

// retireAsserts drops the positive journal rows for edge holder→target:
// their introductions were recorded in the on-behalf Processed vector
// when consumed, so the edge's destruction bundle (itself re-sent by
// Refresh while the Ē stamp sits in the on-behalf row) takes over
// resolving the hints. Negative rows (stamp zero) must survive — their
// expired introductions appear in no bundle, so only the owner's ack
// may ever retire them.
func (e *Engine) retireAsserts(holder, target ids.ClusterID) {
	for row, st := range e.asserts {
		if st.stamp > 0 && row.holder == holder && row.target == target {
			delete(e.asserts, row)
		}
	}
}

// SentRef records that the holder forwarded a reference denoting target
// to the cluster dest — the paper's DV_i[k][j]++ (third party) and
// DV_i[i][j]++ (own reference) — and returns the forwarding sequence
// number to embed in the mutator message.
func (e *Engine) SentRef(holder, target, dest ids.ClusterID) uint64 {
	if target == dest {
		return 0
	}
	p, ok := e.procs[holder]
	if !ok {
		e.stats.StaleDeliveries++
		return 0
	}
	p.clock++
	seq := p.clock
	if target == holder {
		// Sending one's own reference: the pending edge dest→holder is a
		// self-introduced hint on the holder's own vector, resolved when
		// dest's assert or destruction bundle arrives.
		if !e.opts.UnsafeNoHints {
			p.log.Hints().Arm(dest, holder, seq)
		}
		return seq
	}
	if e.owns(target) {
		// Local target: arm its hint directly (same site, atomic).
		if e.opts.UnsafeNoHints {
			return seq
		}
		if t, tok := e.procs[target]; tok {
			t.log.Hints().Arm(dest, holder, seq)
		} else if _, dead := e.tombstone[target]; !dead {
			// Pre-registration target: the conservative arm must not be
			// lost (it is what blocks a verdict while the forwarded
			// reference is in flight). A minimal hints-only destroy
			// delivery through the pending buffer arms it on Register;
			// its empty Auth vector merges nothing and bumps no clock.
			e.inbox = append(e.inbox, delivery{
				to: target, from: holder, kind: deliverDestroy,
				destroy: DestroyMsg{Hints: vclock.Vector{dest: vclock.At(seq)}},
			})
		}
		return seq
	}
	p.log.OB(target).Hints.MergeEntry(dest, vclock.At(seq))
	return seq
}

// EdgeDown records the destruction of the last reference behind the edge
// holder→target and emits the edge-destruction control message (§3.4):
// the authoritative stamps with the holder's column replaced by Ē, the
// bundled forwarding hints, and the processed-introduction record. The
// delivery is queued; callers run Drain at a safe point.
func (e *Engine) EdgeDown(holder, target ids.ClusterID) {
	if holder == target {
		return
	}
	p, ok := e.procs[holder]
	if !ok {
		e.stats.StaleDeliveries++
		return
	}
	p.clock++
	p.acq.Remove(target)
	e.retireAsserts(holder, target)
	if e.owns(target) {
		// Local destruction: deliver a minimal destroy so the receive path
		// merges, evaluates and propagates uniformly. Hints and processed
		// records were already written directly at forward/acquire time.
		e.queueLocalDestroy(holder, target, DestroyMsg{
			Auth: vclock.Vector{holder: vclock.Eps(p.clock)},
		})
		return
	}
	ob := p.log.OB(target)
	ob.Auth.MergeEntry(holder, vclock.Eps(p.clock))
	// A fresh destruction gets a fresh tracked bundle: any older entry
	// for the edge was deleted when the edge re-formed (EdgeUp), so the
	// new Ē cannot inherit a stale acknowledgement.
	e.sendEdgeDestroy(holder, target, DestroyMsg{
		Auth:      ob.Auth.Clone(),
		Hints:     ob.Hints.Clone(),
		Processed: ob.Processed.Clone(),
	})
}

// RemoteCreationStamp returns the holder's current clock, the stamp to
// piggyback on a creation message. Callers perform the heap write (whose
// EdgeUp hook bumps the clock for the creation event) before sending.
func (e *Engine) RemoteCreationStamp(holder ids.ClusterID) uint64 {
	return e.Clock(holder)
}

// HandleCreate registers the process for a cluster created on behalf of a
// remote creator and records the incoming edge with the piggybacked stamp
// (the one log-keeping datum the physical creation message carries).
func (e *Engine) HandleCreate(cl, creator ids.ClusterID, stamp uint64) {
	e.Register(cl)
	p, ok := e.procs[cl]
	if !ok {
		e.stats.StaleDeliveries++
		return
	}
	p.log.Own().MergeEntry(creator, vclock.At(stamp))
}

// --- GGD message handling (§3.3, Fig 6) ---------------------------------

// HandleDestroy processes an untracked edge-destruction control message
// (tests and pre-v3 replays; live traffic uses HandleDestroyFrame).
func (e *Engine) HandleDestroy(to, from ids.ClusterID, m DestroyMsg) {
	e.HandleDestroyFrame(to, from, m, 0, false)
}

// HandleDestroyFrame processes an incoming edge-destruction control
// message carrying its retirement-stream identity: seq is the frame's
// sequence in the sender site's destroy (or, with legacy set, legacy)
// stream — zero for untracked frames.
func (e *Engine) HandleDestroyFrame(to, from ids.ClusterID, m DestroyMsg, seq uint64, legacy bool) {
	stream := StreamDestroy
	if legacy {
		stream = StreamLegacy
	}
	e.inbox = append(e.inbox, delivery{to: to, from: from, kind: deliverDestroy, destroy: m, seq: seq, stream: stream})
	e.Drain()
}

// HandlePropagate processes an incoming dependency-vector propagation.
func (e *Engine) HandlePropagate(to, from ids.ClusterID, m Propagation) {
	e.inbox = append(e.inbox, delivery{to: to, from: from, kind: deliverPropagate, prop: m})
	e.Drain()
}

// HandleAssert processes an untracked incoming edge-assert (tests and
// pre-v3 replays; live traffic uses HandleAssertFrame).
func (e *Engine) HandleAssert(to, from ids.ClusterID, m AssertMsg) {
	e.HandleAssertFrame(to, from, m, 0)
}

// HandleAssertFrame processes an incoming edge-assert carrying its
// sequence in the sender site's assert stream (zero for untracked).
func (e *Engine) HandleAssertFrame(to, from ids.ClusterID, m AssertMsg, seq uint64) {
	e.inbox = append(e.inbox, delivery{to: to, from: from, kind: deliverAssert, assert: m, seq: seq, stream: StreamAssert})
	e.Drain()
}

// HandleAck processes a legacy per-row HintAck: the hint owner (from) has
// resolved the echoed introduction, so the matching journal row of the
// asserting process (to) is retired. Idempotent; unknown rows (already
// retired, or re-acked after an edge re-formed under a fresher
// forwarding) are ignored. Live traffic retires rows through the
// cumulative AckAsserts instead; this path keeps pre-v3 journals
// replaying identically.
func (e *Engine) HandleAck(to, from ids.ClusterID, m AckMsg) {
	delete(e.asserts, assertRow{holder: to, target: from, intro: m.Intro, seq: m.IntroSeq})
}

// --- Cumulative frame retirement (DESIGN.md §3.2) ------------------------

// AckAsserts retires every journaled edge-assert addressed to peer whose
// stream sequence the cumulative watermark covers, and reports how many.
// Negative rows retire too: the watermark proves the owner's site
// durably processed the expiry.
func (e *Engine) AckAsserts(peer ids.SiteID, watermark uint64) int {
	n := 0
	for row, st := range e.asserts {
		if row.target.Site == peer && st.seq != 0 && st.seq <= watermark {
			delete(e.asserts, row)
			n++
		}
	}
	e.stats.RowsRetired += n
	return n
}

// AckDestroys marks every tracked destroyed-edge bundle addressed to
// peer and covered by the watermark as acknowledged: Refresh stops
// re-shipping it. The Ē stamp itself stays in the on-behalf row — it is
// authoritative log state, not re-send state.
func (e *Engine) AckDestroys(peer ids.SiteID, watermark uint64) int {
	n := 0
	for ek, st := range e.destroys {
		if ek.target.Site == peer && !st.acked && st.seq != 0 && st.seq <= watermark {
			st.acked = true
			n++
		}
	}
	e.stats.RowsRetired += n
	return n
}

// AckLegacy retires every retained finalisation bundle addressed to peer
// and covered by the watermark.
func (e *Engine) AckLegacy(peer ids.SiteID, watermark uint64) int {
	kept := e.legacy[:0]
	n := 0
	for _, l := range e.legacy {
		if l.to.Site == peer && l.seq != 0 && l.seq <= watermark {
			n++
			continue
		}
		kept = append(kept, l)
	}
	for i := len(kept); i < len(e.legacy); i++ {
		e.legacy[i] = nil
	}
	e.legacy = kept
	e.stats.RowsRetired += n
	return n
}

// ResetPeerBackoff re-arms the re-send damper of every retained row
// addressed to peer: called when the peer's epoch changes (it restarted
// and may have lost undurable state), so the next refresh round re-ships
// everything it might be missing without waiting out the backoff.
func (e *Engine) ResetPeerBackoff(peer ids.SiteID) {
	for row, st := range e.asserts {
		if row.target.Site == peer {
			st.bo.Reset()
		}
	}
	for ek, st := range e.destroys {
		if ek.target.Site == peer {
			st.bo.Reset()
		}
	}
	for _, l := range e.legacy {
		if l.to.Site == peer {
			l.bo.Reset()
		}
	}
}

// RetainedFloor returns the smallest stream sequence still retained for
// (peer, stream) and whether any tracked row is retained at all. The
// site runtime uses it to advance receivers past sequences that will
// never be re-sent (rows retired through another path, evicted at a
// bound), keeping cumulative watermarks from stalling on dead gaps.
func (e *Engine) RetainedFloor(peer ids.SiteID, s Stream) (uint64, bool) {
	var floor uint64
	found := false
	take := func(seq uint64) {
		if seq == 0 {
			return
		}
		if !found || seq < floor {
			floor, found = seq, true
		}
	}
	switch s {
	case StreamAssert:
		for row, st := range e.asserts {
			if row.target.Site == peer {
				take(st.seq)
			}
		}
	case StreamDestroy:
		for ek, st := range e.destroys {
			if ek.target.Site == peer && !st.acked {
				take(st.seq)
			}
		}
	case StreamLegacy:
		for _, l := range e.legacy {
			if l.to.Site == peer {
				take(l.seq)
			}
		}
	}
	return floor, found
}

// Drain processes queued deliveries until quiescence. Safe to call at any
// time; reentrant calls (hooks firing inside Drain) queue work for the
// outer invocation.
func (e *Engine) Drain() {
	if e.draining {
		return
	}
	e.draining = true
	defer func() { e.draining = false }()
	for len(e.inbox) > 0 {
		d := e.inbox[0]
		e.inbox = e.inbox[1:]
		e.receive(d)
	}
}

// settle reports a tracked remote frame's final disposition to the site
// runtime, which advances the cumulative receive watermark for the
// sender's stream, and reports whether it did. Local and untracked
// deliveries settle nothing.
func (e *Engine) settle(d delivery) bool {
	if d.seq == 0 || d.stream == 0 || e.owns(d.from) {
		return false
	}
	e.send.SettleFrame(d.from.Site, d.stream, d.seq)
	return true
}

// receive is the paper's Receive procedure (Fig 6).
func (e *Engine) receive(d delivery) {
	p, ok := e.procs[d.to]
	if !ok {
		if _, dead := e.tombstone[d.to]; !dead && e.owns(d.to) {
			// The target's creation message has not arrived yet
			// (reordered channels): buffer and replay on Register.
			if len(e.pending[d.to]) < 64 {
				// The buffered delivery is part of the durable image and
				// replays on Register: a final, replayable disposition,
				// so it settles now — and is marked so the overflow
				// eviction below never picks it (the sender may already
				// have retired the state that would re-derive it).
				d.settled = e.settle(d)
				e.pending[d.to] = append(e.pending[d.to], d)
				return
			}
			if e.admitExpiry(d) {
				return
			}
			// Overflow drop: genuine loss. Deliberately NOT settled — the
			// sender's re-send journal exists to retry exactly this.
			e.stats.StaleDeliveries++
			return
		}
		if _, dead := e.tombstone[d.to]; dead {
			// The target's word is final: the frame's purpose is moot, and
			// without settlement the sender would re-ship it forever.
			e.settle(d)
		}
		// Stale traffic to a removed or unknown process: dropped. Message
		// loss never compromises safety (§5), so neither does this.
		e.stats.StaleDeliveries++
		return
	}
	changed := false
	if d.kind != deliverAssert {
		p.active = true
	}
	switch d.kind {
	case deliverDestroy:
		own := p.log.Own()
		prior := own.Get(d.from)
		if prior.Merge(d.destroy.Auth.Get(d.from)) != prior {
			// A genuine (non-duplicate) destruction is a log-keeping
			// event: bump the clock (§3.1).
			p.clock++
			changed = true
		}
		if own.MergeAll(d.destroy.Auth) {
			changed = true
		}
		// The bundled third-party introductions (§3.4): arm hints with
		// the sender as introducer; the introductions the sender already
		// processed for its own edge resolve the matching hints.
		if !e.opts.UnsafeNoHints {
			for col, s := range d.destroy.Hints {
				if p.log.Hints().Arm(col, d.from, s.Seq) {
					changed = true
				}
			}
			for intro, s := range d.destroy.Processed {
				if p.log.Hints().Clear(d.from, intro, s.Seq) {
					changed = true
				}
			}
		}

	case deliverAssert:
		if d.assert.Stamp > 0 && p.log.Own().MergeEntry(d.from, vclock.At(d.assert.Stamp)) {
			changed = true
		}
		if d.assert.Intro.Valid() && d.assert.IntroSeq > 0 {
			if d.assert.Stamp == 0 {
				// Negative assert: the introduction is provably dead at
				// the source's site — expire it.
				if p.log.Hints().Expire(d.from, d.assert.Intro, d.assert.IntroSeq) {
					e.stats.HintsExpired++
					changed = true
				}
			} else if p.log.Hints().Clear(d.from, d.assert.Intro, d.assert.IntroSeq) {
				changed = true
			}
		}

	case deliverPropagate:
		m := d.prop
		// Record the sender's first-hand vector as its confirmed row, and
		// refresh the own vector's column for the sender: the propagation
		// travelled the live edge sender→me, re-asserting it with the
		// sender's current clock.
		if p.log.MergeVRow(d.from, m.Auth, m.HintCols, true, true) {
			changed = true
		}
		if p.log.Own().MergeEntry(d.from, vclock.At(m.Clock)) {
			changed = true
		}
		for owner, row := range m.Rows {
			if owner == d.to {
				continue // relayed copies of my own vector are subsets
			}
			if p.log.MergeVRow(owner, row.Auth, row.HintCols, false, true) {
				changed = true
			}
		}
		for target, ob := range m.OBs {
			if target == d.to {
				// First-hand on-behalf entries about me: authoritative
				// stamps merge into the own vector; forwarding hints arm
				// with the sender as introducer.
				if p.log.Own().MergeAll(ob.Auth) {
					changed = true
				}
				if !e.opts.UnsafeNoHints {
					for col, s := range ob.Hints {
						if p.log.Hints().Arm(col, d.from, s.Seq) {
							changed = true
						}
					}
				}
				continue
			}
			// Knowledge about a third process folds into its row as
			// relayed, attribution-free data: authoritative stamps by
			// value, hints as conservative live columns.
			hintCols := make([]ids.ClusterID, 0, len(ob.Hints))
			for col, s := range ob.Hints {
				if s.Live() {
					hintCols = append(hintCols, col)
				}
			}
			if p.log.MergeVRow(target, ob.Auth, hintCols, false, false) {
				changed = true
			}
		}
	}
	e.settle(d)
	e.evaluate(p, changed)
}

// admitExpiry makes room in a full pre-registration pending buffer for
// a self-delivered local assert — a hint expiry (ResolveIntroduction's
// local-owner path) or a local-edge stamp/resolution (EdgeUp's
// pre-registration path) — reporting whether it was admitted. These
// deliveries are the one buffered kind with no other carrier: the
// transfer that produced them is dedup-recorded and never re-arrives,
// and local edges have no re-send journal, while an un-settled buffered
// delivery is re-derivable (destroys via on-behalf/legacy re-send,
// propagations via refresh, remote asserts via the sender's journal).
// A delivery that already settled is NOT re-derivable — its sender may
// have retired the journal row or bundle behind it on the resulting
// acknowledgement — so settled entries are never eviction victims. The
// oldest re-derivable delivery is evicted; if the buffer holds only
// sole-carrier asserts and settled frames, the new one is dropped —
// the bound is the bound.
func (e *Engine) admitExpiry(d delivery) bool {
	if d.kind != deliverAssert || !e.owns(d.from) {
		return false
	}
	q := e.pending[d.to]
	for i, old := range q {
		if old.settled || (old.kind == deliverAssert && e.owns(old.from)) {
			continue
		}
		copy(q[i:], q[i+1:])
		q[len(q)-1] = d
		return true
	}
	return false
}

// ResolveIntroduction resolves introduction (intro, seq) of the edge
// holder→target when the forwarded reference was delivered to this site
// and discarded without a slot write — the holder object is provably
// dead (collected, or its cluster tombstoned). Exactly one of three
// things is true, and each yields a causally-safe resolution:
//
//   - holder's cluster still holds the edge (another object's
//     reference): the introduction is consumed on the cluster's behalf
//     with a genuine re-assert — the edge exists, so the fresh live
//     stamp is truthful (DESIGN.md interpretation #2).
//   - holder's cluster holds no such edge: any earlier edge was
//     destroyed (its Ē-stamped bundle, re-sent by Refresh, supersedes),
//     and no event of the cluster can ever consume this forwarding — a
//     negative assert expires the hint at the owner.
//   - the owner is local: the hint is expired directly.
//
// All emitted asserts are journaled and re-sent until acknowledged.
func (e *Engine) ResolveIntroduction(holder, target, intro ids.ClusterID, seq uint64) {
	if e.opts.UnsafeNoHints || seq == 0 || seq == ids.CreationSeq || !intro.Valid() {
		return
	}
	if e.owns(target) {
		if t, ok := e.procs[target]; ok {
			if t.log.Hints().Expire(holder, intro, seq) {
				e.stats.HintsExpired++
				e.evaluate(t, true)
				e.Drain()
			}
		} else if _, dead := e.tombstone[target]; !dead {
			// The owner's creation message has not arrived yet: route
			// the expiry through the pre-registration pending buffer as
			// a self-delivered negative assert, replayed on Register.
			// Dropping it instead would pin the owner forever — the
			// transfer's dedup record means it never re-arrives, so no
			// later event could re-derive the expiry.
			e.inbox = append(e.inbox, delivery{
				to: target, from: holder, kind: deliverAssert,
				assert: AssertMsg{Intro: intro, IntroSeq: seq},
			})
			e.Drain()
		}
		return
	}
	m := AssertMsg{Intro: intro, IntroSeq: seq}
	if p, ok := e.procs[holder]; ok && p.acq.Has(target) {
		p.clock++
		m.Stamp = p.clock
		ob := p.log.OB(target)
		ob.Auth.MergeEntry(holder, vclock.At(p.clock))
		ob.Processed.MergeEntry(intro, vclock.At(seq))
	}
	e.sendJournaledAssert(assertRow{holder: holder, target: target, intro: intro, seq: seq}, m)
}

// evaluate runs ComputeV and acts on the outcome: removal when the
// closure certifies garbage, propagation when the log changed (new
// first-hand or relayed knowledge circulates onward for cycle-wide
// convergence).
func (e *Engine) evaluate(p *process, changed bool) {
	e.stats.Evaluations++
	res := p.log.Closure(p.clock)
	if e.opts.UnsafeSkipConfirmation {
		res.Complete = true
	}
	if res.Garbage() && !p.id.IsRoot() {
		e.remove(p)
		return
	}
	if changed && p.active {
		e.propagate(p, res)
	}
}

// assemble builds the propagation payload: the own first-hand state, the
// confirmed rows of the closure's expanded ancestry, and the first-hand
// on-behalf entries — the "increasingly accurate approximations"
// circulated along the paths of the global root graph (§3.3).
func (e *Engine) assemble(p *process, res vclock.ClosureResult) Propagation {
	m := Propagation{
		Clock:    p.clock,
		Auth:     p.log.Own().Clone(),
		HintCols: p.log.Hints().Cols(),
	}
	for _, q := range res.Expanded.Sorted() {
		if q == p.id || q.IsRoot() {
			continue
		}
		r := p.log.PeekVRow(q)
		if r == nil || !r.Confirmed {
			continue
		}
		if m.Rows == nil {
			m.Rows = make(map[ids.ClusterID]RowGossip)
		}
		m.Rows[q] = RowGossip{Auth: r.Auth.Clone(), HintCols: r.HintCols.Sorted()}
	}
	for _, x := range p.log.Processes() {
		if x == p.id {
			continue
		}
		ob := p.log.PeekOB(x)
		if ob == nil || (len(ob.Auth) == 0 && len(ob.Hints) == 0) {
			continue
		}
		if m.OBs == nil {
			m.OBs = make(map[ids.ClusterID]OBGossip)
		}
		m.OBs[x] = OBGossip{Auth: ob.Auth.Clone(), Hints: ob.Hints.Clone()}
	}
	return m
}

// propagate sends the payload along every out-edge (§3.3 step 3).
func (e *Engine) propagate(p *process, res vclock.ClosureResult) {
	acq := p.acq.Sorted()
	if len(acq) == 0 {
		return
	}
	m := e.assemble(p, res)
	for _, k := range acq {
		e.stats.PropagationsSent++
		if e.owns(k) {
			e.inbox = append(e.inbox, delivery{to: k, from: p.id, kind: deliverPropagate, prop: cloneProp(m)})
		} else {
			e.send.SendPropagate(p.id, k, cloneProp(m))
		}
	}
}

func cloneProp(m Propagation) Propagation {
	out := Propagation{Clock: m.Clock, Auth: m.Auth.Clone()}
	out.HintCols = append(out.HintCols, m.HintCols...)
	if m.Rows != nil {
		out.Rows = make(map[ids.ClusterID]RowGossip, len(m.Rows))
		for k, v := range m.Rows {
			g := RowGossip{Auth: v.Auth.Clone()}
			g.HintCols = append(g.HintCols, v.HintCols...)
			out.Rows[k] = g
		}
	}
	if m.OBs != nil {
		out.OBs = make(map[ids.ClusterID]OBGossip, len(m.OBs))
		for k, v := range m.OBs {
			out.OBs[k] = OBGossip{Auth: v.Auth.Clone(), Hints: v.Hints.Clone()}
		}
	}
	return out
}

// remove finalises a garbage process: the paper's "remove" action plus the
// finalisation destroys to its successors, which is what lets detection
// cascade through cycles and chains.
func (e *Engine) remove(p *process) {
	if e.opts.RemoveObserver != nil {
		e.opts.RemoveObserver(p.id, p.log.Clone(), p.clock)
	}
	delete(e.procs, p.id)
	e.stats.Removed++
	for _, k := range p.acq.Sorted() {
		p.clock++
		e.retireAsserts(p.id, k)
		if e.owns(k) {
			e.queueLocalDestroy(p.id, k, DestroyMsg{
				Auth: vclock.Vector{p.id: vclock.Eps(p.clock)},
			})
			continue
		}
		ob := p.log.OB(k)
		ob.Auth.MergeEntry(p.id, vclock.Eps(p.clock))
		m := DestroyMsg{
			Auth:      ob.Auth.Clone(),
			Hints:     ob.Hints.Clone(),
			Processed: ob.Processed.Clone(),
		}
		// Retain the finalisation bundle: once the process is gone its
		// on-behalf rows can no longer re-ship it, yet it carries the
		// records resolving the successor's hints. Refresh re-sends the
		// un-acknowledged remainder under the same stream sequence.
		e.stats.DestroysSent++
		seq := e.send.SendLegacy(p.id, k, m, 0)
		e.pushLegacy(&legacyDestroy{from: p.id, to: k, m: cloneDestroy(m), seq: seq})
	}
	// The process's on-behalf re-send loop is gone with it: drop the
	// tracked destroyed-edge bundles it owned (pre-existing behavior —
	// the finalisation path above takes over for its live edges).
	for ek := range e.destroys {
		if ek.holder == p.id {
			delete(e.destroys, ek)
		}
	}
	e.tombstone[p.id] = p.clock
	if e.onRemove != nil {
		e.onRemove(p.id)
	}
}

// pushLegacy retains one finalisation bundle, evicting the oldest at the
// hard cap (tolerated loss, counted).
func (e *Engine) pushLegacy(l *legacyDestroy) {
	if len(e.legacy) >= maxLegacy {
		e.stats.LegacyEvicted++
		copy(e.legacy, e.legacy[1:])
		e.legacy[len(e.legacy)-1] = nil
		e.legacy = e.legacy[:len(e.legacy)-1]
	}
	e.legacy = append(e.legacy, l)
}

// queueLocalDestroy delivers an edge-destruction to a same-site process
// through the inbox (no wire frame, no retirement tracking).
func (e *Engine) queueLocalDestroy(from, to ids.ClusterID, m DestroyMsg) {
	e.stats.DestroysSent++
	e.inbox = append(e.inbox, delivery{to: to, from: from, kind: deliverDestroy, destroy: m})
}

// sendEdgeDestroy ships the Ē bundle for the destroyed remote edge
// from→to in the destroy retirement stream, creating the edge's tracked
// state on first use and keeping its stream sequence stable across
// re-sends.
func (e *Engine) sendEdgeDestroy(from, to ids.ClusterID, m DestroyMsg) *destroyState {
	st := e.destroys[edgeKey{holder: from, target: to}]
	if st == nil {
		st = &destroyState{}
		e.destroys[edgeKey{holder: from, target: to}] = st
	}
	e.stats.DestroysSent++
	st.seq = e.send.SendDestroy(from, to, m, st.seq)
	return st
}

// --- Recovery (§5: residual garbage) ------------------------------------

// Refresh re-evaluates every local process, re-propagates its current
// state unconditionally, and re-ships the three kinds of retained
// re-send state that have not been acknowledged (DESIGN.md §3.2):
// the edge-destruction bundles of destroyed edges (on-behalf rows whose
// own column carries Ē), the journaled edge-asserts, and the retained
// finalisation bundles of removed processes. Each retained row is
// damped by an exponential per-row backoff; acknowledged rows are never
// re-shipped, so a quiescent, fault-free system's refresh rounds carry
// propagations only.
//
// GGD messages are idempotent, so a refresh is always safe; it
// re-detects residual garbage whose original detection traffic was
// lost — including a lost destroy message itself, which propagation
// alone can never recover: once the edge is gone the destroyer no
// longer propagates towards its former target, so the Ē is marooned in
// the on-behalf row until a refresh re-ships it (the crash-recovery
// path depends on this, and E8's healing rounds improve with it).
func (e *Engine) Refresh() {
	e.round++
	for _, id := range e.Processes() {
		p, ok := e.procs[id]
		if !ok {
			continue // removed by an earlier iteration's cascade
		}
		e.stats.Evaluations++
		res := p.log.Closure(p.clock)
		if e.opts.UnsafeSkipConfirmation {
			res.Complete = true
		}
		if res.Garbage() {
			e.remove(p)
			e.Drain()
			continue
		}
		p.active = true
		e.propagate(p, res)
		for _, k := range p.log.Processes() {
			if k == p.id || p.acq.Has(k) {
				continue
			}
			ob := p.log.PeekOB(k)
			if ob == nil || !ob.Auth.Get(p.id).Eps {
				continue
			}
			// The edge p→k was destroyed and not re-created: re-send the
			// destruction bundle unless the target site has acknowledged
			// it. Receivers merge it idempotently (a re-created edge's
			// fresher live stamp supersedes the Ē), and stale copies to
			// removed targets are dropped there.
			m := DestroyMsg{
				Auth:      ob.Auth.Clone(),
				Hints:     ob.Hints.Clone(),
				Processed: ob.Processed.Clone(),
			}
			if e.owns(k) {
				e.queueLocalDestroy(p.id, k, m)
				continue
			}
			st := e.destroys[edgeKey{holder: p.id, target: k}]
			if st != nil && st.acked {
				continue
			}
			if st != nil && !st.bo.Ready(e.round) {
				e.stats.ResendsSuppressed++
				continue
			}
			st = e.sendEdgeDestroy(p.id, k, m)
			st.bo.Bump(e.round, e.boCap)
			e.stats.DestroyResends++
		}
		e.Drain()
	}
	// Re-ship the un-acknowledged edge-asserts and the retained
	// finalisation bundles of removed processes: the resolution half of
	// the refresh round. Both are idempotent; receivers settle the
	// frames (so the journal drains through cumulative acks) and merge
	// bundles by stamp order.
	rows := make([]assertRow, 0, len(e.asserts))
	for row := range e.asserts {
		rows = append(rows, row)
	}
	sortAssertRows(rows)
	for _, row := range rows {
		st := e.asserts[row]
		if !st.bo.Ready(e.round) {
			e.stats.ResendsSuppressed++
			continue
		}
		e.stats.AssertResends++
		st.seq = e.send.SendAssert(row.holder, row.target, AssertMsg{
			Stamp: st.stamp, Intro: row.intro, IntroSeq: row.seq,
		}, st.seq)
		st.bo.Bump(e.round, e.boCap)
	}
	for _, l := range e.legacy {
		if !l.bo.Ready(e.round) {
			e.stats.ResendsSuppressed++
			continue
		}
		e.stats.DestroysSent++
		e.stats.LegacyResends++
		l.seq = e.send.SendLegacy(l.from, l.to, cloneDestroy(l.m), l.seq)
		l.bo.Bump(e.round, e.boCap)
	}
	e.Drain()
}

// sortAssertRows orders journal rows deterministically for re-send.
func sortAssertRows(rows []assertRow) {
	sort.Slice(rows, func(i, j int) bool { return assertRowLess(rows[i], rows[j]) })
}

// assertRowLess is the total order over journal rows.
func assertRowLess(a, b assertRow) bool {
	if a.holder != b.holder {
		return a.holder.Less(b.holder)
	}
	if a.target != b.target {
		return a.target.Less(b.target)
	}
	if a.intro != b.intro {
		return a.intro.Less(b.intro)
	}
	return a.seq < b.seq
}

// Evaluate forces one evaluation of a single process (test hook).
func (e *Engine) Evaluate(cl ids.ClusterID) {
	if p, ok := e.procs[cl]; ok {
		e.evaluate(p, false)
		e.Drain()
	}
}
