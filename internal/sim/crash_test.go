package sim

import (
	"math/rand"
	"testing"

	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
)

// TestCrashRestartCycleRecovered is the deterministic core scenario:
// a distributed cycle is made garbage, the site holding its head is
// killed before detection converges, and the recovered site still
// drives the cycle to reclamation.
func TestCrashRestartCycleRecovered(t *testing.T) {
	w, err := NewDurableWorld(3, netsim.Faults{Seed: 11}, site.DefaultOptions(), t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s1 := w.Site(1)

	a, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s1.NewRemote(a.Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	c, err := w.Site(2).NewRemote(b.Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s1.SendRef(s1.Root().Obj, c, a); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s1.DropRefs(s1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	// Kill site 1 immediately after the drop: the destruction message
	// may or may not have left; either way recovery must finish the job.
	if err := w.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Restart(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4 && w.TotalObjects() > 3; r++ {
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		if err := w.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	rep := w.Check()
	if !rep.Safe() {
		t.Fatalf("unsafe after crash recovery: %v", rep)
	}
	if len(rep.Garbage) != 0 || w.TotalObjects() != 3 {
		t.Fatalf("cycle not reclaimed after crash recovery: %v (%d objects)", rep, w.TotalObjects())
	}
}

// TestCrashRestartFuzz is the seeded kill-and-restart fault scenario:
// random churn interleaved with crashes and recoveries of random sites
// at random points, cross-checked against the reachability oracle. The
// invariant is unconditional safety — the oracle must never observe a
// live object reclaimed (a dangling reference), no matter where the
// crashes land. Liveness after healing is checked best-effort: crashes
// legitimately lose control traffic, and refresh rounds must win it
// back.
func TestCrashRestartFuzz(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		w, err := NewDurableWorld(4, netsim.Faults{Seed: seed, Reorder: true}, site.DefaultOptions(), t.TempDir(), 16)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 101))
		for round := 0; round < 6; round++ {
			if _, err := mutator.Churn(w, mutator.ChurnConfig{
				Seed: seed*1000 + int64(round), Ops: 40, StepsBetweenOps: 3,
			}); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			// Deliver a random fraction of the backlog, then kill a random
			// site mid-flight and bring it back.
			for i := rng.Intn(40); i > 0 && w.Step(); i-- {
			}
			victim := ids.SiteID(1 + rng.Intn(4))
			if err := w.Crash(victim); err != nil {
				t.Fatalf("seed %d round %d: crash %v: %v", seed, round, victim, err)
			}
			if err := w.Restart(victim); err != nil {
				t.Fatalf("seed %d round %d: restart %v: %v", seed, round, victim, err)
			}
			if err := w.Run(); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if rep := w.Check(); !rep.Safe() {
				t.Fatalf("seed %d round %d: SAFETY VIOLATION after crash/restart of %v: %v",
					seed, round, victim, rep)
			}
		}
		// Heal: settle and refresh until quiescent, then re-check safety.
		if err := w.Settle(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 6; r++ {
			if err := w.RefreshAll(); err != nil {
				t.Fatal(err)
			}
			if err := w.Settle(); err != nil {
				t.Fatal(err)
			}
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY VIOLATION after healing: %v", seed, rep)
		}
		t.Logf("seed %d: healed with %d live, %d residual garbage", seed, rep.Live, len(rep.Garbage))
		w.Close()
	}
}

// TestCrashAtEveryPoint kills and recovers one site after every single
// mutator operation of a short scripted workload, checking safety at
// each crash point: the systematic sweep over crash instants.
func TestCrashAtEveryPoint(t *testing.T) {
	// The scripted workload has 6 operations; crash after each.
	for point := 0; point < 6; point++ {
		w, err := NewDurableWorld(3, netsim.Faults{Seed: int64(point + 1)}, site.DefaultOptions(), t.TempDir(), 4)
		if err != nil {
			t.Fatal(err)
		}
		step := 0
		maybeCrash := func(victim ids.SiteID) {
			if step == point {
				if err := w.Crash(victim); err != nil {
					t.Fatal(err)
				}
				if err := w.Restart(victim); err != nil {
					t.Fatal(err)
				}
			}
			step++
		}
		s1 := w.Site(1)
		a, err := s1.NewLocal(s1.Root().Obj)
		if err != nil {
			t.Fatal(err)
		}
		maybeCrash(1)
		s1 = w.Site(1)
		b, err := s1.NewRemote(a.Obj, 2)
		if err == nil {
			maybeCrash(1)
		} else {
			step++
		}
		w.Run()
		s1 = w.Site(1)
		if err := s1.SendRef(a.Obj, b, a); err == nil {
			maybeCrash(2)
		} else {
			step++
		}
		w.Run()
		maybeCrash(1)
		s1 = w.Site(1)
		_ = s1.DropRefs(s1.Root().Obj, a)
		maybeCrash(2)
		w.Run()
		maybeCrash(1)

		if err := w.Settle(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4; r++ {
			if err := w.RefreshAll(); err != nil {
				t.Fatal(err)
			}
			if err := w.Settle(); err != nil {
				t.Fatal(err)
			}
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("crash point %d: unsafe: %v", point, rep)
		}
		w.Close()
	}
}
