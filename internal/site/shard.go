package site

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/vclock"
	"causalgc/internal/wire"
)

// This file implements the lock-striped sharded site (DESIGN.md §3.4).
// A Sharded composes N full Runtimes — each owning a partition of the
// site's clusters under its own mutex — behind the same public API as
// an unsharded Runtime. The shards share the site identity, the
// identity mint (heap.Counters plus the remote-creation mint), the
// retirement-stream table (streams), and one Persist journal; they
// interact only through the ordered cross-shard handoff queues, where
// a sibling shard is addressed exactly like a reliable remote peer:
// frames are journaled before they enter a queue, retained in the
// sending shard's outbox, and retired by the ordinary FrameAck path.
//
// Routing rule: a local cluster belongs to the shard recorded at its
// placement (round-robin for clusters minted under the root cluster,
// the executing shard otherwise); the site's root cluster belongs to
// shard 0; an unknown local cluster hashes deterministically. Objects
// follow their cluster and never migrate.
//
// Lock order: ckptMu → shards[0].mu → … → shards[N-1].mu → st.mu /
// Persist.mu / handoff listMu (leaves). A single operation holds ONE
// shard lock; only the stop-the-world checkpoint holds them all, in
// ascending index order.

// Instance is the site abstraction the Node layer drives: implemented
// by both the unsharded *Runtime and the lock-striped *Sharded.
type Instance interface {
	ID() ids.SiteID
	Root() heap.Ref
	Close()

	NewLocal(holder ids.ObjectID) (heap.Ref, error)
	NewLocalIn(holder ids.ObjectID, cl ids.ClusterID) (heap.Ref, error)
	NewCluster() (ids.ClusterID, error)
	NewRemote(holder ids.ObjectID, target ids.SiteID) (heap.Ref, error)
	SendRef(fromObj ids.ObjectID, to heap.Ref, target heap.Ref) error
	AddRef(holder ids.ObjectID, target heap.Ref) error
	DropRefs(holder ids.ObjectID, target heap.Ref) error
	ClearSlot(holder ids.ObjectID, slot int) error
	ApplyBatch(ops []wire.BatchOp) ([]heap.Ref, error)

	Collect() (heap.CollectStats, error)
	Refresh() error
	Checkpoint() error

	NumObjects() int
	HasObject(obj ids.ObjectID) bool
	ClusterRemoved(cl ids.ClusterID) bool
	EngineStats() core.Stats
	FrameStats() FrameStats
	Depths() Depths
	LogSnapshot(cl ids.ClusterID) *vclock.Log
	Clock(cl ids.ClusterID) uint64
	Snapshot() (ids.ObjectID, []ObjectSnapshot)
}

var (
	_ Instance = (*Runtime)(nil)
	_ Instance = (*Sharded)(nil)
)

// handoffQueue is the ordered cross-shard delivery queue of one
// destination shard. listMu guards the item list and is a leaf lock
// (enqueues happen under the sending shard's mutex); deliverMu
// serialises drainers so the destination shard processes its queue in
// FIFO order — the "ordered handoff" of the tentpole: within one
// queue, frames are delivered in the order the causal stamps were
// assigned by their senders.
type handoffQueue struct {
	listMu    sync.Mutex
	items     []netsim.Payload
	deliverMu sync.Mutex
}

func (q *handoffQueue) push(p netsim.Payload) {
	q.listMu.Lock()
	q.items = append(q.items, p)
	q.listMu.Unlock()
}

func (q *handoffQueue) pop() (netsim.Payload, bool) {
	q.listMu.Lock()
	defer q.listMu.Unlock()
	if len(q.items) == 0 {
		return nil, false
	}
	p := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return p, true
}

func (q *handoffQueue) depth() int {
	q.listMu.Lock()
	defer q.listMu.Unlock()
	return len(q.items)
}

// Sharded is a lock-striped site: N shard Runtimes behind one site
// identity. See the file comment for the architecture.
type Sharded struct {
	id   ids.SiteID
	net  netsim.Network
	opts Options
	n    int

	shards []*Runtime
	st     *streams
	ctr    *heap.Counters
	queues []*handoffQueue

	// journal is the single shared Persist (nil for a volatile site).
	// Shards append to it directly; snapshots go through the
	// stop-the-world checkpoint below, never through a single shard.
	journal *Persist

	// objMap routes objects to shards (ids.ObjectID → int), maintained
	// by each shard heap's object tracker. cluMap routes local clusters
	// (ids.ClusterID → int), appended at placement time and never
	// shrunk: a removed cluster keeps routing to the shard holding its
	// tombstone, so zombie-drop and stale-delivery logic fire on the
	// right engine.
	objMap sync.Map
	cluMap sync.Map

	// rr is the round-robin placement cursor for clusters minted under
	// the root cluster (persisted as SiteImage.PlaceRR).
	rr atomic.Uint64

	// ckptMu serialises stop-the-world checkpoints; cycleMu serialises
	// the site-wide Collect/Refresh cycles (their journal records must
	// not interleave with each other's shard sweeps).
	ckptMu  sync.Mutex
	cycleMu sync.Mutex

	// replaying mirrors the shards' flags during RecoverSharded.
	replaying bool
}

// NewSharded creates a volatile sharded site with n shards (n < 1 is
// clamped to 1) and registers it on the network. For a durable site
// use RecoverSharded.
func NewSharded(id ids.SiteID, net netsim.Network, opts Options, n int) *Sharded {
	s := buildSharded(id, net, opts, n)
	for i := 0; i < s.n; i++ {
		s.shards[i] = newShardRuntime(id, net, opts, s.st, s.ctr, s.hooksFor(i))
		s.installTracker(i)
	}
	s.objMap.Store(s.shards[0].heap.RootObject(), 0)
	net.Register(id, s.handleNet)
	return s
}

func buildSharded(id ids.SiteID, net netsim.Network, opts Options, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{
		id:     id,
		net:    net,
		opts:   opts,
		n:      n,
		shards: make([]*Runtime, n),
		st:     newStreams(),
		ctr:    heap.NewCounters(),
		queues: make([]*handoffQueue, n),
	}
	for i := range s.queues {
		s.queues[i] = &handoffQueue{}
	}
	return s
}

// hooksFor builds the sharding callbacks binding shard i to this
// composition.
func (s *Sharded) hooksFor(i int) *shardHooks {
	return &shardHooks{
		index: i,
		owns: func(cl ids.ClusterID) bool {
			return cl.Site == s.id && s.clusterShardIdx(cl) == i
		},
		place: func(newClu, holderClu ids.ClusterID, pin bool) int {
			return s.placeCluster(newClu, holderClu, i, pin)
		},
		clusterShard: s.clusterShardIdx,
		placed: func(cl ids.ClusterID, place int) {
			s.cluMap.Store(cl, place-1)
		},
		route: s.enqueue,
	}
}

// installTracker wires shard i's heap into the object routing map.
func (s *Sharded) installTracker(i int) {
	idx := i
	s.shards[i].heap.SetObjectTracker(func(obj ids.ObjectID, alive bool) {
		if alive {
			s.objMap.Store(obj, idx)
		} else {
			s.objMap.Delete(obj)
		}
	})
}

// clusterShardIdx answers the routing shard of a same-site cluster:
// the root cluster is shard 0's, placed clusters route by the
// placement map, anything else (a cluster minted remotely on this
// site's behalf, a pre-shard legacy identity) hashes deterministically
// so every shard — and every recovery — agrees without coordination.
func (s *Sharded) clusterShardIdx(cl ids.ClusterID) int {
	if s.n == 1 {
		return 0
	}
	if cl.Root {
		return 0
	}
	if v, ok := s.cluMap.Load(cl); ok {
		return v.(int)
	}
	return int(hashCluster(cl) % uint64(s.n))
}

// hashCluster is a fixed splitmix64-style mix: the fallback routing
// hash must be identical across runs and across recoveries.
func hashCluster(cl ids.ClusterID) uint64 {
	x := cl.Seq ^ (uint64(cl.Site) << 32) ^ 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// placeCluster decides and records the placement of a freshly minted
// local cluster. Clusters minted under the root cluster spread
// round-robin (they are the anchors parallel mutators fan out from);
// everything else stays with the executing shard for locality. pin
// forces the executing shard (multi-op batches).
func (s *Sharded) placeCluster(newClu, holderClu ids.ClusterID, executing int, pin bool) int {
	idx := executing
	if !pin && holderClu.Root {
		idx = int(s.rr.Add(1)-1) % s.n
	}
	s.cluMap.Store(newClu, idx)
	return idx + 1
}

// enqueue routes one self-addressed frame into the handoff queues.
// Acknowledgement frames fan out to every shard — the shared stream
// watermark is cumulative across shards, and retirement is idempotent,
// so each shard retires its own covered rows. Called under the sending
// shard's mutex (listMu is a leaf).
func (s *Sharded) enqueue(p netsim.Payload) {
	switch p.(type) {
	case wire.FrameAck, wire.StreamAdvance:
		for _, q := range s.queues {
			q.push(p)
		}
	default:
		s.queues[s.frameShardIdx(p)].push(p)
	}
}

// frameShardIdx answers the destination shard of one frame by its
// destination cluster (mutator frames by the target object's cluster,
// GGD control frames by the To cluster).
func (s *Sharded) frameShardIdx(p netsim.Payload) int {
	switch m := p.(type) {
	case wire.Create:
		return s.clusterShardIdx(m.Cluster)
	case wire.RefTransfer:
		if m.ToCluster.Valid() {
			return s.clusterShardIdx(m.ToCluster)
		}
		if v, ok := s.objMap.Load(m.ToObj); ok {
			return v.(int)
		}
		return 0
	case wire.Destroy:
		return s.clusterShardIdx(m.To)
	case wire.Assert:
		return s.clusterShardIdx(m.To)
	case wire.Propagate:
		return s.clusterShardIdx(m.To)
	case wire.HintAck:
		return s.clusterShardIdx(m.To)
	}
	return 0
}

// drainHandoffs delivers queued cross-shard frames until every queue
// is empty. Each queue drains under its deliverMu with no other lock
// held, so two drainers never deadlock: a drainer blocks only on one
// deliverMu or one shard mutex at a time, and frame delivery never
// acquires a deliverMu. Cascades terminate — delivering an ack emits
// nothing, and mutator/control cascades bottom out in the engines.
func (s *Sharded) drainHandoffs() {
	for {
		idle := true
		for i, q := range s.queues {
			if s.drainQueue(i, q) {
				idle = false
			}
		}
		if idle {
			return
		}
	}
}

func (s *Sharded) drainQueue(i int, q *handoffQueue) bool {
	q.deliverMu.Lock()
	defer q.deliverMu.Unlock()
	drained := false
	for {
		p, ok := q.pop()
		if !ok {
			return drained
		}
		drained = true
		s.shards[i].handle(s.id, p)
	}
}

// afterEvent runs after every public operation and network delivery,
// outside all shard locks: flush the cross-shard handoffs, then take a
// snapshot if the shared journal says one is due.
func (s *Sharded) afterEvent() {
	s.drainHandoffs()
	s.maybeCheckpoint()
}

// --- Checkpointing -------------------------------------------------------

// shardJournal is the Journal each shard sees: appends pass through to
// the shared Persist; per-shard checkpoint offers are refused — one
// shard's state is not the site's, so only the stop-the-world path
// below may snapshot (and truncate the shared WAL).
type shardJournal struct {
	p *Persist
}

func (j *shardJournal) Append(rec *wire.WALRecord) error { return j.p.Append(rec) }

func (j *shardJournal) Checkpoint(func() (*wire.SiteImage, error)) error { return nil }

var _ Journal = (*shardJournal)(nil)

func (s *Sharded) maybeCheckpoint() {
	if s.journal == nil || s.replaying || !s.journal.Due() {
		return
	}
	// Failures are sticky inside Persist (the next Append surfaces
	// them), same as the unsharded checkpointLocked contract.
	_ = s.checkpointAll(true)
}

// checkpointAll is the stop-the-world snapshot: acquire every shard
// mutex in ascending order, drain the handoff queues by direct
// dispatch under the held locks (a snapshot must not strand in-flight
// cross-shard frames in a volatile queue), export the composite image,
// and write it while still holding everything — Persist truncates the
// WAL on snapshot, so no shard may append between build and write.
// onlyIfDue re-checks Due under ckptMu: two drainers racing past
// maybeCheckpoint's unlocked Due check serialise here, and the loser
// — whose snapshot the winner just took, resetting the record count —
// skips a redundant back-to-back stop-the-world pass.
//
// A concurrent drainer holding a deliverMu may have popped a frame and
// be blocked on a shard mutex we hold: that frame is in neither the
// queues nor the image, which is safe — its journal record lands after
// the truncation once the drainer resumes, exactly like any
// post-snapshot delivery.
func (s *Sharded) checkpointAll(onlyIfDue bool) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if onlyIfDue && !s.journal.Due() {
		return nil
	}
	for _, r := range s.shards {
		r.mu.Lock()
	}
	defer func() {
		for _, r := range s.shards {
			r.mu.Unlock()
		}
	}()
	s.drainAllLocked()
	img, err := s.exportImageAllLocked()
	if err != nil {
		return err
	}
	return s.journal.ForceCheckpoint(func() (*wire.SiteImage, error) { return img, nil })
}

// drainAllLocked empties the handoff queues by direct dispatch while
// every shard mutex is held (deliverMu is NOT taken: item order with a
// concurrently blocked drainer is already commutative — the protocol
// tolerates reordering; FIFO determinism is only promised for
// single-threaded schedules, where no concurrent drainer exists).
func (s *Sharded) drainAllLocked() {
	for {
		idle := true
		for i, q := range s.queues {
			for {
				p, ok := q.pop()
				if !ok {
					break
				}
				idle = false
				s.shards[i].deliverShardLocked(s.id, p)
			}
		}
		if idle {
			return
		}
	}
}

// exportImageAllLocked renders the composite v4 image: shard 0 in the
// legacy top-level fields (plus the shared stream table), shards
// 1..N-1 in ShardExtra. Caller holds every shard mutex with the
// engines drained and the handoff queues empty.
func (s *Sharded) exportImageAllLocked() (*wire.SiteImage, error) {
	img, err := s.shards[0].exportImageLocked()
	if err != nil {
		return nil, err
	}
	img.Shards = s.n
	img.PlaceRR = s.rr.Load()
	for _, r := range s.shards[1:] {
		ss, err := r.exportShardStateLocked()
		if err != nil {
			return nil, err
		}
		img.ShardExtra = append(img.ShardExtra, ss)
	}
	return img, nil
}

// Checkpoint forces a snapshot now. A no-op without a journal.
func (s *Sharded) Checkpoint() error {
	if s.journal == nil {
		return nil
	}
	return s.checkpointAll(false)
}

// --- Network delivery ----------------------------------------------------

// handleNet is the transport entry point: split and route the frames
// to their destination shards, then settle cross-shard effects.
func (s *Sharded) handleNet(from ids.SiteID, p netsim.Payload) {
	s.deliverNet(from, p)
	s.afterEvent()
}

// deliverNet routes one inbound payload. An envelope splits into one
// sub-envelope per destination shard (inner order preserved within
// each shard — the only order the receiver's streams depend on); acks
// and floor advisories fan out to every shard, like on the handoff
// path.
func (s *Sharded) deliverNet(from ids.SiteID, p netsim.Payload) {
	if env, ok := p.(wire.Envelope); ok && s.n > 1 {
		parts := make([][]netsim.Payload, s.n)
		for _, f := range env.Frames {
			switch f.(type) {
			case wire.FrameAck, wire.StreamAdvance:
				for i := range parts {
					parts[i] = append(parts[i], f)
				}
			default:
				i := s.frameShardIdx(f)
				parts[i] = append(parts[i], f)
			}
		}
		for i, frames := range parts {
			switch len(frames) {
			case 0:
			case 1:
				s.shards[i].handle(from, frames[0])
			default:
				s.shards[i].handle(from, wire.Envelope{Frames: frames})
			}
		}
		return
	}
	switch p.(type) {
	case wire.FrameAck, wire.StreamAdvance:
		for _, r := range s.shards {
			r.handle(from, p)
		}
	default:
		s.shards[s.frameShardIdx(p)].handle(from, p)
	}
}

// --- Mutator API ----------------------------------------------------------

// shardFor routes an operation to the shard owning the given object
// (shard 0 for unknown objects, whose operations fail there with the
// same ErrNoSuchObject any shard would report).
func (s *Sharded) shardFor(obj ids.ObjectID) *Runtime {
	if v, ok := s.objMap.Load(obj); ok {
		return s.shards[v.(int)]
	}
	return s.shards[0]
}

// ID returns the site identifier.
func (s *Sharded) ID() ids.SiteID { return s.id }

// Root returns a reference to the site's root object (owned by shard 0).
func (s *Sharded) Root() heap.Ref { return s.shards[0].Root() }

// ShardCount returns the number of shards.
func (s *Sharded) ShardCount() int { return s.n }

// Close freezes every shard.
func (s *Sharded) Close() {
	for _, r := range s.shards {
		r.Close()
	}
}

// NewLocal creates an object in a fresh cluster, executing on the
// holder's shard; the placement policy may put the new cluster on a
// sibling shard, reached through the handoff queue.
func (s *Sharded) NewLocal(holder ids.ObjectID) (heap.Ref, error) {
	ref, err := s.shardFor(holder).NewLocal(holder)
	s.afterEvent()
	return ref, err
}

// NewLocalIn creates an object in an existing local cluster.
func (s *Sharded) NewLocalIn(holder ids.ObjectID, cl ids.ClusterID) (heap.Ref, error) {
	ref, err := s.shardFor(holder).NewLocalIn(holder, cl)
	s.afterEvent()
	return ref, err
}

// NewCluster mints a fresh local cluster, rotating the executing (and
// owning — bare clusters pin to their executing shard) shard.
func (s *Sharded) NewCluster() (ids.ClusterID, error) {
	idx := int(s.rr.Add(1)-1) % s.n
	cl, err := s.shards[idx].NewCluster()
	s.afterEvent()
	return cl, err
}

// NewRemote creates an object on another site, executing on the
// holder's shard.
func (s *Sharded) NewRemote(holder ids.ObjectID, target ids.SiteID) (heap.Ref, error) {
	ref, err := s.shardFor(holder).NewRemote(holder, target)
	s.afterEvent()
	return ref, err
}

// SendRef copies a reference, executing on the sender's shard.
func (s *Sharded) SendRef(fromObj ids.ObjectID, to heap.Ref, target heap.Ref) error {
	err := s.shardFor(fromObj).SendRef(fromObj, to, target)
	s.afterEvent()
	return err
}

// AddRef stores target into a new slot of holder.
func (s *Sharded) AddRef(holder ids.ObjectID, target heap.Ref) error {
	err := s.shardFor(holder).AddRef(holder, target)
	s.afterEvent()
	return err
}

// DropRefs clears every slot of holder referencing target.Obj.
func (s *Sharded) DropRefs(holder ids.ObjectID, target heap.Ref) error {
	err := s.shardFor(holder).DropRefs(holder, target)
	s.afterEvent()
	return err
}

// ClearSlot drops one slot of holder.
func (s *Sharded) ClearSlot(holder ids.ObjectID, slot int) error {
	err := s.shardFor(holder).ClearSlot(holder, slot)
	s.afterEvent()
	return err
}

// ApplyBatch commits a batch on the shard owning its first concrete
// holder (batch staging requires every concrete holder to live there;
// fresh clusters minted by a multi-op batch pin to that shard, so the
// whole group stays local — see premintBatchLocked).
func (s *Sharded) ApplyBatch(ops []wire.BatchOp) ([]heap.Ref, error) {
	r := s.shards[0]
	for _, bop := range ops {
		if bop.HolderFrom == 0 && bop.Op.Holder.Valid() {
			r = s.shardFor(bop.Op.Holder)
			break
		}
	}
	refs, err := r.ApplyBatch(ops)
	s.afterEvent()
	return refs, err
}

// --- GGD cycles -----------------------------------------------------------

// Collect runs the collection cycle on every shard. One site-wide
// OpCollect is journaled through shard 0 (replay intercepts it and
// re-runs the site-wide cycle); cross-shard cascades settle through
// the handoff queues between shard sweeps.
func (s *Sharded) Collect() (heap.CollectStats, error) {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	var total heap.CollectStats
	var firstErr error
	for i, r := range s.shards {
		r.mu.Lock()
		stats, err := r.collectShardLocked(i == 0)
		r.mu.Unlock()
		total.Marked += stats.Marked
		total.Swept += stats.Swept
		total.Roots += stats.Roots
		if err != nil && firstErr == nil {
			firstErr = err
		}
		s.drainHandoffs()
	}
	s.maybeCheckpoint()
	return total, firstErr
}

// Refresh runs the recovery round on every shard: one site-wide
// OpRefresh journaled through shard 0, one damper round bump for the
// whole site, per-shard re-sends, then ONE merged floor-advisory pass
// — a stream's floor is the minimum over every shard's retained floor,
// computed here because no single shard knows what its siblings still
// retain (emitting a floor past a sibling's retained row would let the
// peer retire it undelivered).
func (s *Sharded) Refresh() error {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	s.st.mu.Lock()
	s.st.refreshRound++
	s.st.mu.Unlock()
	var firstErr error
	for i, r := range s.shards {
		r.mu.Lock()
		err := r.refreshShardLocked(i == 0, false)
		r.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		s.drainHandoffs()
	}
	if !s.replaying {
		s.advanceMergedFloors()
		s.drainHandoffs()
	}
	s.maybeCheckpoint()
	return firstErr
}

// advanceMergedFloors is the sharded counterpart of
// advanceFloorsLocked: per-(peer, stream) floors merged by minimum
// across shards, advisories emitted through shard 0. A sequence
// assigned concurrently with the merge is always above the snapshotted
// nextSeq, hence above any floor emitted here — the advisory can never
// cover it.
func (s *Sharded) advanceMergedFloors() {
	st := s.st
	st.mu.Lock()
	keys := make([]streamKey, 0, len(st.send))
	for k := range st.send {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	type snap struct{ nextSeq, ackedTo uint64 }
	snaps := make(map[streamKey]snap, len(keys))
	for _, k := range keys {
		ss := st.send[k]
		snaps[k] = snap{nextSeq: ss.nextSeq, ackedTo: ss.ackedTo}
	}
	st.mu.Unlock()
	floors := make(map[streamKey]uint64, len(keys))
	for _, r := range s.shards {
		r.mu.Lock()
		for _, k := range keys {
			f := r.retainedFloorLocked(k.peer, k.kind)
			if f != 0 && (floors[k] == 0 || f < floors[k]) {
				floors[k] = f
			}
		}
		r.mu.Unlock()
	}
	r0 := s.shards[0]
	r0.mu.Lock()
	advances := 0
	for _, k := range keys {
		sn := snaps[k]
		if sn.nextSeq == 0 {
			continue
		}
		floor := floors[k]
		if floor == 0 {
			floor = sn.nextSeq + 1
		}
		if floor-1 <= sn.ackedTo {
			continue
		}
		advances++
		r0.emitLocked(k.peer, wire.StreamAdvance{Stream: k.kind, Floor: floor})
	}
	r0.mu.Unlock()
	if advances > 0 {
		st.mu.Lock()
		st.fstats.AdvancesSent += advances
		st.mu.Unlock()
	}
}

// --- Recovery -------------------------------------------------------------

// RecoverSharded reconstructs a sharded site from its journal, exactly
// as Recover does for an unsharded one. The shard count is sticky per
// data directory: an existing snapshot's count wins over the argument
// (WAL shard tags must keep routing to the partition that wrote them);
// a journal with no snapshot yet sizes to cover the highest shard tag
// in the WAL. Replay routes each record to the shard that journaled
// it; site-wide OpCollect/OpRefresh records (always tagged shard 0)
// re-run the site-wide cycle. Self-addressed frames are NOT re-routed
// during replay — the destination shard's own Deliver records carry
// them — and a crash between the sender's journal append and the
// receiver's is healed like any lost frame: outbox re-send, refresh.
func RecoverSharded(id ids.SiteID, net netsim.Network, opts Options, j *Persist, shards int) (*Sharded, error) {
	img, recs, err := j.Load()
	if err != nil {
		return nil, fmt.Errorf("site %v: recover sharded: %w", id, err)
	}
	n := shards
	if img != nil {
		if img.Site != id {
			return nil, fmt.Errorf("site %v: recover sharded: journal belongs to site %v", id, img.Site)
		}
		n = img.Shards
		if n < 1 {
			n = 1 // v2/v3 (or 1-shard v4) image: the whole site is shard 0
		}
	}
	for _, rec := range recs {
		if rec.Shard >= n {
			n = rec.Shard + 1
		}
	}
	s := buildSharded(id, net, opts, n)
	s.journal = j
	if img == nil {
		for i := 0; i < s.n; i++ {
			s.shards[i] = newShardRuntime(id, net, opts, s.st, s.ctr, s.hooksFor(i))
		}
	} else {
		restoreStreams(s.st, img)
		s.rr.Store(img.PlaceRR)
		if want := s.n - 1; len(img.ShardExtra) != want && img.Shards > 1 {
			return nil, fmt.Errorf("site %v: recover sharded: image has %d extra shard states, want %d", id, len(img.ShardExtra), want)
		}
		states := make([]wire.ShardState, s.n)
		states[0] = wire.ShardState{
			Heap:        img.Heap,
			Engine:      img.Engine,
			Removals:    img.Removals,
			PendingRefs: img.PendingRefs,
			SeenIntro:   img.SeenIntro,
			Outbox:      img.Outbox,
		}
		copy(states[1:], img.ShardExtra)
		// Routing maps first: restoring a shard engine installs the owns
		// predicate, which consults them immediately.
		for i, ss := range states {
			s.seedRouting(i, ss)
		}
		for i, ss := range states {
			s.shards[i], err = s.restoreShardRuntime(i, ss)
			if err != nil {
				return nil, fmt.Errorf("site %v: recover sharded: shard %d: %w", id, i, err)
			}
		}
	}
	for i := 0; i < s.n; i++ {
		s.installTracker(i)
		s.shards[i].journal = &shardJournal{p: j}
		s.shards[i].replaying = true
	}
	s.objMap.Store(s.shards[0].heap.RootObject(), 0)
	if img != nil {
		// Rebuild the object routing of restored heaps (the tracker only
		// sees live mutations).
		for i, r := range s.shards {
			for _, o := range r.heap.Objects() {
				s.objMap.Store(o.ID(), i)
			}
		}
	}
	s.replaying = true
	// Register before replay: frames from already-running peers buffer
	// per shard in recoverBuf instead of being dropped.
	net.Register(id, s.handleNet)
	for _, rec := range recs {
		s.applyShardRecord(rec)
	}
	// End of replay: flip the flags, process the buffered live traffic,
	// re-send every shard's unconfirmed outbox.
	s.replaying = false
	for _, r := range s.shards {
		r.mu.Lock()
		r.replaying = false
		buffered := r.recoverBuf
		r.recoverBuf = nil
		resend := make([]outboundFrame, len(r.outbox))
		copy(resend, r.outbox)
		r.mu.Unlock()
		for _, d := range buffered {
			r.handle(d.from, d.p)
		}
		r.mu.Lock()
		opened := r.beginCoalesceLocked()
		for _, f := range resend {
			r.emitLocked(f.to, f.p)
		}
		if opened {
			r.flushCoalesceLocked()
		}
		r.mu.Unlock()
		s.drainHandoffs()
	}
	if err := s.Refresh(); err != nil {
		return nil, fmt.Errorf("site %v: recover sharded: %w", id, err)
	}
	if img != nil {
		// Make the bumped recovery epoch durable immediately (see
		// Recover) and bound the next replay.
		if err := s.checkpointAll(false); err != nil {
			return nil, fmt.Errorf("site %v: recover sharded: checkpoint: %w", id, err)
		}
	}
	return s, nil
}

// seedRouting pre-populates the routing maps from one shard's durable
// image: live clusters, engine processes, and tombstones (a removed
// cluster must keep routing to the shard holding its tombstone).
func (s *Sharded) seedRouting(i int, ss wire.ShardState) {
	for _, ci := range ss.Heap.Clusters {
		if ci.ID.Site == s.id && !ci.ID.Root {
			s.cluMap.Store(ci.ID, i)
		}
	}
	for _, pi := range ss.Engine.Procs {
		if pi.ID.Site == s.id && !pi.ID.Root {
			s.cluMap.Store(pi.ID, i)
		}
	}
	for cl := range ss.Engine.Tombstones {
		if cl.Site == s.id && !cl.Root {
			s.cluMap.Store(cl, i)
		}
	}
}

// restoreShardRuntime rebuilds shard i from its durable state block.
func (s *Sharded) restoreShardRuntime(i int, ss wire.ShardState) (*Runtime, error) {
	sh := s.hooksFor(i)
	opts := s.opts
	opts.Engine.Owns = sh.owns
	r := &Runtime{
		id:          s.id,
		net:         s.net,
		opts:        opts,
		st:          s.st,
		sh:          sh,
		pendingRefs: make(map[ids.ObjectID][]pendingRef),
		seenIntro:   make(map[introKey]struct{}, len(ss.SeenIntro)),
		removals:    ss.Removals,
	}
	var err error
	r.engine, err = core.Restore(s.id, (*sender)(r), r.onRemove, opts.Engine, ss.Engine)
	if err != nil {
		return nil, err
	}
	r.heap, err = heap.RestoreShard((*hooks)(r), ss.Heap, s.ctr, i == 0)
	if err != nil {
		return nil, err
	}
	r.restoreShardState(ss.PendingRefs, ss.SeenIntro, ss.Outbox)
	return r, nil
}

// applyShardRecord replays one WAL record on the shard that journaled
// it. Site-wide cycle records re-run the site-wide cycle (journaling
// is suppressed while replaying, so nothing is re-recorded).
func (s *Sharded) applyShardRecord(rec *wire.WALRecord) {
	if rec.Op != nil {
		switch rec.Op.Kind {
		case wire.OpCollect:
			_, _ = s.Collect()
			return
		case wire.OpRefresh:
			_ = s.Refresh()
			return
		}
	}
	idx := rec.Shard
	if idx < 0 || idx >= s.n {
		idx = 0
	}
	s.shards[idx].applyRecord(rec)
	s.drainHandoffs()
}

// --- Introspection --------------------------------------------------------

// NumObjects sums the live objects across shards (each object lives in
// exactly one shard heap).
func (s *Sharded) NumObjects() int {
	total := 0
	for _, r := range s.shards {
		total += r.NumObjects()
	}
	return total
}

// HasObject reports whether the object exists on any shard.
func (s *Sharded) HasObject(obj ids.ObjectID) bool {
	if v, ok := s.objMap.Load(obj); ok {
		return s.shards[v.(int)].HasObject(obj)
	}
	// The routing entry may lag a restore or a sweep: scan every shard
	// before concluding absence (a false negative would misreport a
	// live object; the scan is a read-only query off the hot path).
	for _, r := range s.shards {
		if r.HasObject(obj) {
			return true
		}
	}
	return false
}

// ClusterRemoved asks the shard owning the cluster.
func (s *Sharded) ClusterRemoved(cl ids.ClusterID) bool {
	return s.shards[s.clusterShardIdx(cl)].ClusterRemoved(cl)
}

// LogSnapshot asks the shard owning the cluster.
func (s *Sharded) LogSnapshot(cl ids.ClusterID) *vclock.Log {
	return s.shards[s.clusterShardIdx(cl)].LogSnapshot(cl)
}

// Clock asks the shard owning the cluster.
func (s *Sharded) Clock(cl ids.ClusterID) uint64 {
	return s.shards[s.clusterShardIdx(cl)].Clock(cl)
}

// EngineStats sums the per-shard GGD engine counters.
func (s *Sharded) EngineStats() core.Stats {
	var total core.Stats
	for _, r := range s.shards {
		addStats(&total, r.EngineStats())
	}
	return total
}

// ShardEngineStats returns one shard's engine counters (monitor depth
// gauges are per shard as well as aggregate).
func (s *Sharded) ShardEngineStats(i int) core.Stats {
	return s.shards[i].EngineStats()
}

// FrameStats returns the shared retirement counters with the outbox
// gauge summed across shards.
func (s *Sharded) FrameStats() FrameStats {
	s.st.mu.Lock()
	fs := s.st.fstats
	s.st.mu.Unlock()
	fs.OutboxRetained = 0
	for _, r := range s.shards {
		r.mu.Lock()
		fs.OutboxRetained += len(r.outbox)
		r.mu.Unlock()
	}
	return fs
}

// ShardOutboxDepth returns one shard's unacknowledged outbound frame
// count.
func (s *Sharded) ShardOutboxDepth(i int) int {
	r := s.shards[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.outbox)
}

// Depths sums the retained-state table sizes across shards (aggregate
// monitor gauges; per-shard gauges come from ShardDepths).
func (s *Sharded) Depths() Depths {
	var total Depths
	for i := range s.shards {
		addDepths(&total, s.ShardDepths(i))
	}
	return total
}

// ShardDepths returns one shard's retained-state table sizes.
func (s *Sharded) ShardDepths(i int) Depths {
	return s.shards[i].Depths()
}

func addDepths(total *Depths, d Depths) {
	total.Outbox += d.Outbox
	total.AssertRows += d.AssertRows
	total.DestroyRows += d.DestroyRows
	total.LegacyBundles += d.LegacyBundles
	total.PendingRefs += d.PendingRefs
	total.PendingDeliveries += d.PendingDeliveries
}

// HandoffDepth returns the number of queued cross-shard frames (zero
// at quiescence: afterEvent drains before returning).
func (s *Sharded) HandoffDepth() int {
	total := 0
	for _, q := range s.queues {
		total += q.depth()
	}
	return total
}

// Snapshot merges the per-shard object snapshots (sorted by ID) under
// shard 0's root.
func (s *Sharded) Snapshot() (ids.ObjectID, []ObjectSnapshot) {
	root, objs := s.shards[0].Snapshot()
	for _, r := range s.shards[1:] {
		_, more := r.Snapshot()
		objs = append(objs, more...)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID.Less(objs[j].ID) })
	return root, objs
}

// addStats accumulates engine counters field-wise.
func addStats(total *core.Stats, s core.Stats) {
	total.Removed += s.Removed
	total.Evaluations += s.Evaluations
	total.PropagationsSent += s.PropagationsSent
	total.DestroysSent += s.DestroysSent
	total.AssertsSent += s.AssertsSent
	total.AssertResends += s.AssertResends
	total.DestroyResends += s.DestroyResends
	total.LegacyResends += s.LegacyResends
	total.ResendsSuppressed += s.ResendsSuppressed
	total.RowsRetired += s.RowsRetired
	total.AssertRowsDropped += s.AssertRowsDropped
	total.LegacyEvicted += s.LegacyEvicted
	total.HintsExpired += s.HintsExpired
	total.StaleDeliveries += s.StaleDeliveries
}
