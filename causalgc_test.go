package causalgc_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"causalgc"
	"causalgc/transport"
)

// ExampleCluster is the quickstart: three sites share objects, a
// distributed cycle becomes garbage, and GGD collects it.
func ExampleCluster() {
	c := causalgc.NewCluster(3)
	defer c.Close()
	n1 := c.Node(1)

	// Site 1's root creates an object on site 2, which creates one on
	// site 3, which is handed a reference back to the site-2 object: a
	// cycle spanning two sites, reachable only from site 1.
	a, _ := n1.NewRemote(n1.Root().Obj, 2)
	c.Run()
	b, _ := c.Node(2).NewRemote(a.Obj, 3)
	c.Run()
	c.Node(2).SendRef(a.Obj, b, a) // b → a: the cycle closes
	c.Run()
	fmt.Println("before drop:", c.TotalObjects(), "objects")

	// Drop the only root reference: {a, b} become a distributed garbage
	// cycle no per-site collector can see.
	n1.DropRefs(n1.Root().Obj, a)
	c.Settle()
	fmt.Println("after drop: ", c.TotalObjects(), "objects, clean:", c.Check().Clean())
	// Output:
	// before drop: 5 objects
	// after drop:  3 objects, clean: true
}

// TestClusterQuickstart is the example with assertions: remote create,
// third-party state, drop, cycle reclamation, oracle verdicts.
func TestClusterQuickstart(t *testing.T) {
	c := causalgc.NewCluster(3, causalgc.WithTransport(transport.NewDeterministic(transport.Faults{Seed: 42})))
	defer c.Close()
	n1 := c.Node(1)

	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	b, err := c.Node(2).NewRemote(a.Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(2).SendRef(a.Obj, b, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if rep := c.Check(); !rep.Clean() || rep.Live != 5 {
		t.Fatalf("before drop: want 5 live clean, got %v", rep)
	}

	if err := n1.DropRefs(n1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	rep := c.Check()
	if !rep.Clean() {
		t.Fatalf("after drop: not clean: %v", rep)
	}
	if !c.Node(2).ClusterRemoved(a.Cluster) || !c.Node(3).ClusterRemoved(b.Cluster) {
		t.Fatalf("cycle not removed: a=%v b=%v",
			c.Node(2).ClusterRemoved(a.Cluster), c.Node(3).ClusterRemoved(b.Cluster))
	}
	if c.Node(2).HasObject(a.Obj) || c.Node(3).HasObject(b.Obj) {
		t.Fatal("cycle objects not reclaimed")
	}
}

// TestSentinelErrors checks that illegal mutator operations surface the
// typed sentinels through errors.Is.
func TestSentinelErrors(t *testing.T) {
	c := causalgc.NewCluster(2)
	defer c.Close()
	n1, n2 := c.Node(1), c.Node(2)

	bogus := causalgc.ObjectID{Site: 1, Seq: 999}
	if _, err := n1.NewLocal(bogus); !errors.Is(err, causalgc.ErrNoSuchObject) {
		t.Errorf("NewLocal(bogus): want ErrNoSuchObject, got %v", err)
	}
	if _, err := n1.NewRemote(n1.Root().Obj, 1); !errors.Is(err, causalgc.ErrRemoteSelf) {
		t.Errorf("NewRemote(self): want ErrRemoteSelf, got %v", err)
	}
	if _, err := n1.NewLocalIn(n1.Root().Obj, n2.Root().Cluster); !errors.Is(err, causalgc.ErrForeignCluster) {
		t.Errorf("NewLocalIn(foreign): want ErrForeignCluster, got %v", err)
	}
	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Root 2 never held a: copying it from there is illegal.
	if err := n2.SendRef(n2.Root().Obj, n1.Root(), a); !errors.Is(err, causalgc.ErrNotHolder) {
		t.Errorf("SendRef(not held): want ErrNotHolder, got %v", err)
	}
}

// countingObserver records removal and collection callbacks.
type countingObserver struct {
	mu       sync.Mutex
	removed  []causalgc.ClusterID
	collects int
}

func (o *countingObserver) ClusterRemoved(_ causalgc.SiteID, cl causalgc.ClusterID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.removed = append(o.removed, cl)
}

func (o *countingObserver) Collected(_ causalgc.SiteID, _ causalgc.CollectStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.collects++
}

// TestObserver checks that WithObserver reports GGD removals and local
// collections.
func TestObserver(t *testing.T) {
	obs := &countingObserver{}
	c := causalgc.NewCluster(3, causalgc.WithObserver(obs))
	defer c.Close()
	n1 := c.Node(1)

	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n1.DropRefs(n1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	found := false
	for _, cl := range obs.removed {
		if cl == a.Cluster {
			found = true
		}
	}
	if !found {
		t.Errorf("observer missed removal of %v (saw %v)", a.Cluster, obs.removed)
	}
	if obs.collects == 0 {
		t.Error("observer saw no collections")
	}
}

// TestClusterAsyncTransport runs the quickstart over the concurrent
// in-memory transport: same engine, real goroutines.
func TestClusterAsyncTransport(t *testing.T) {
	at := transport.NewAsync(transport.Faults{})
	c := causalgc.NewCluster(3, causalgc.WithTransport(at))
	defer at.Close()
	n1 := c.Node(1)

	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	b, err := c.Node(2).NewRemote(a.Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if err := c.Node(2).SendRef(a.Obj, b, a); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if err := n1.DropRefs(n1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if rep := c.Check(); !rep.Clean() {
		t.Fatalf("async cluster not clean: %v", rep)
	}
}

// TestWorkloads drives the public workload builders end to end.
func TestWorkloads(t *testing.T) {
	t.Run("paper", func(t *testing.T) {
		c := causalgc.NewCluster(4)
		defer c.Close()
		sc, err := causalgc.BuildPaperScenario(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.DropRootEdge(); err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if rep := c.Check(); !rep.Clean() {
			t.Fatalf("paper scenario not clean: %v", rep)
		}
	})
	t.Run("ring", func(t *testing.T) {
		c := causalgc.NewCluster(9)
		defer c.Close()
		ring, err := causalgc.BuildRing(c, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := ring.DetachRing(); err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if rep := c.Check(); !rep.Clean() {
			t.Fatalf("ring not clean: %v", rep)
		}
	})
	t.Run("churn", func(t *testing.T) {
		c := causalgc.NewCluster(5)
		defer c.Close()
		if _, err := causalgc.Churn(c, causalgc.ChurnConfig{Seed: 3, Ops: 200, StepsBetweenOps: 2}); err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if rep := c.Check(); !rep.Safe() {
			t.Fatalf("churn unsafe: %v", rep)
		}
	})
}
