package main

import (
	"testing"

	"causalgc/internal/analysis"
)

// TestModuleInvariantsClean runs the entire analyzer suite over the
// module exactly as CI's vet-invariants job does and fails on any
// diagnostic: the statically enforced invariants hold on every tree
// that passes go test ./..., not only where causalgc-vet is run by
// hand. The working directory of a test binary is its package
// directory, which is inside the module, so pattern expansion resolves
// against the repository root.
func TestModuleInvariantsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	all := make([]*analysis.Analyzer, 0, len(suite))
	for _, s := range suite {
		all = append(all, s.analyzer)
	}
	diags, err := vet([]string{"./..."}, all)
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
