package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
	"causalgc/persist"
)

func testSources() Sources {
	tr := netsim.NewStats()
	return Sources{
		Objects: func() int { return 7 },
		Engine:  func() core.Stats { return core.Stats{Removed: 3, AssertResends: 2} },
		Frames:  func() site.FrameStats { return site.FrameStats{OutboxRetained: 1, OutboxResends: 4} },
		Depths:  func() site.Depths { return site.Depths{Outbox: 1, AssertRows: 5} },
		Persist: func() persist.Stats {
			return persist.Stats{Appends: 10, Syncs: 2, SyncNanos: 3000, SyncMaxNanos: 2000}
		},
		Transport: tr,
	}
}

func TestSnapshotReadsSources(t *testing.T) {
	m := New(0)
	m.Attach(2, testSources())
	s := m.Snapshot()
	if s.Site != 2 || s.Objects != 7 || s.Engine.Removed != 3 || s.Frames.OutboxResends != 4 {
		t.Fatalf("snapshot did not read sources: %+v", s)
	}
	if s.Depths.AssertRows != 5 {
		t.Errorf("Depths.AssertRows = %d, want 5", s.Depths.AssertRows)
	}
	if s.Persist == nil || s.Persist.SyncMaxNanos != 2000 {
		t.Errorf("Persist surface missing or wrong: %+v", s.Persist)
	}
	if s.Residual != nil {
		t.Errorf("Residual set before SetResidual: %v", *s.Residual)
	}
	m.SetResidual(0)
	if s = m.Snapshot(); s.Residual == nil || *s.Residual != 0 {
		t.Errorf("Residual after SetResidual(0): %v", s.Residual)
	}
}

func TestEventRingBoundsAndOrder(t *testing.T) {
	m := New(4)
	m.Attach(1, Sources{})
	for i := 0; i < 10; i++ {
		m.ClusterRemoved(1, ids.ClusterID{Site: 1, Seq: uint64(i)})
	}
	evs := m.Events(0)
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d: seq %d, want %d (oldest-first order)", i, e.Seq, want)
		}
		if e.Kind != EventRemoval || e.Time.IsZero() {
			t.Errorf("event %d malformed: %+v", i, e)
		}
	}
	if evs = m.Events(2); len(evs) != 2 || evs[1].Seq != 10 {
		t.Errorf("Events(2) = %+v, want the 2 most recent", evs)
	}
	st := m.Snapshot().Trace
	if st.Recorded != 10 || st.Dropped != 6 || st.Depth != 4 {
		t.Errorf("trace stats = %+v, want recorded=10 dropped=6 depth=4", st)
	}
}

func TestObserverHooksRecordKinds(t *testing.T) {
	m := New(16)
	m.Attach(3, Sources{})
	m.Collected(3, heap.CollectStats{Marked: 5, Swept: 2, Roots: 4})
	m.Collected(3, heap.CollectStats{Marked: 1, Swept: 1, Roots: 1})
	m.FrameRetired(3, 1, core.StreamMut, 6)
	m.FrameEvicted(3, 2, core.StreamAssert, 1)
	evs := m.Events(0)
	kinds := make([]string, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	want := []string{EventCollection, EventCollection, EventFrameRetired, EventFrameEvicted}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	if evs[2].Peer != 1 || evs[2].Frames != 6 || evs[2].Stream == "" {
		t.Errorf("frame_retired event malformed: %+v", evs[2])
	}
	if c := m.Snapshot().Collect; c.Collections != 2 || c.Marked != 6 || c.Swept != 3 {
		t.Errorf("collect totals = %+v", c)
	}
}

func TestWriteExposition(t *testing.T) {
	m := New(0)
	src := testSources()
	var p netsim.Payload = fakePayload{}
	src.Transport.RecordSent(p)
	src.Transport.RecordDelivered(p)
	m.Attach(2, src)
	m.SetResidual(0)

	var b strings.Builder
	if err := WriteExposition(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`causalgc_objects{site="s2"} 7`,
		`causalgc_clusters_removed_total{site="s2"} 3`,
		`causalgc_resends_total{site="s2",stream="assert"} 2`,
		`causalgc_resends_total{site="s2",stream="outbox"} 4`,
		`causalgc_assert_journal_depth{site="s2"} 5`,
		`causalgc_wal_fsync_seconds_total{site="s2"} 3e-06`,
		`causalgc_wal_fsync_max_seconds{site="s2"} 2e-06`,
		`causalgc_net_sent_total{site="s2",kind="fake"} 1`,
		`causalgc_residual_garbage{site="s2"} 0`,
		"# TYPE causalgc_outbox_depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per metric.
	if n := strings.Count(out, "# TYPE causalgc_objects "); n != 1 {
		t.Errorf("TYPE causalgc_objects appears %d times", n)
	}
}

func TestExpositionOmitsAbsentSurfaces(t *testing.T) {
	m := New(0)
	m.Attach(1, Sources{Objects: func() int { return 1 }})
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, absent := range []string{"causalgc_wal_", "causalgc_net_", "causalgc_residual_garbage"} {
		if strings.Contains(out, absent) {
			t.Errorf("exposition contains %q for a volatile, oracle-less node\n%s", absent, out)
		}
	}
}

type fakePayload struct{}

func (fakePayload) Kind() string    { return "fake" }
func (fakePayload) ApproxSize() int { return 10 }

func TestServerEndpoints(t *testing.T) {
	m1 := New(8)
	m1.Attach(1, testSources())
	m2 := New(8)
	m2.Attach(2, Sources{Objects: func() int { return 42 }})
	m2.ClusterRemoved(2, ids.ClusterID{Site: 2, Seq: 9})

	srv, err := NewServer("127.0.0.1:0", m1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Attach(m2)

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, `causalgc_objects{site="s1"} 7`) ||
		!strings.Contains(body, `causalgc_objects{site="s2"} 42`) {
		t.Errorf("/metrics: code=%d body:\n%s", code, body)
	}

	code, body := get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: code=%d", code)
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("/metrics.json did not parse: %v", err)
	}
	if len(snaps) != 2 || snaps[0].Site != 1 || snaps[1].Objects != 42 {
		t.Errorf("/metrics.json snapshots = %+v", snaps)
	}

	code, body = get("/trace?site=s2")
	if code != 200 {
		t.Fatalf("/trace: code=%d", code)
	}
	var evs []Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/trace did not parse: %v", err)
	}
	if len(evs) != 1 || evs[0].Kind != EventRemoval || evs[0].Cluster != "s2/c9" {
		t.Errorf("/trace?site=s2 = %+v", evs)
	}

	if code, _ := get("/trace?n=bogus"); code != 400 {
		t.Errorf("/trace?n=bogus: code=%d, want 400", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code=%d body=%q", code, body)
	}
}
