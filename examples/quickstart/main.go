// Quickstart: three sites share objects, a distributed cycle becomes
// garbage, and Global Garbage Detection collects it — no stop-the-world,
// no global consensus.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

func main() {
	// A world of three sites over the deterministic in-memory network.
	w := sim.NewWorld(3, netsim.Faults{Seed: 42}, site.DefaultOptions())
	s1 := w.Site(1)

	// Site 1's root creates an object on site 2, which creates one on
	// site 3, which is handed a reference back to the site-2 object:
	// a cycle spanning two sites, reachable from site 1.
	a, err := s1.NewRemote(s1.Root().Obj, 2)
	check(err)
	check(w.Run())
	b, err := w.Site(2).NewRemote(a.Obj, 3)
	check(err)
	check(w.Run())
	check(w.Site(2).SendRef(a.Obj, b, a)) // b → a: the cycle closes
	check(w.Run())

	fmt.Printf("before drop: %d objects, oracle: %v\n", w.TotalObjects(), w.Check())

	// Drop the only root reference: {a, b} become a distributed garbage
	// cycle that no per-site collector can see.
	check(s1.DropRefs(s1.Root().Obj, a))
	check(w.Settle())

	rep := w.Check()
	fmt.Printf("after drop:  %d objects, oracle: %v\n", w.TotalObjects(), rep)
	fmt.Printf("cycle collected: %v (a removed=%v, b removed=%v)\n",
		rep.Clean(), w.Site(2).ClusterRemoved(a.Cluster), w.Site(3).ClusterRemoved(b.Cluster))
	fmt.Printf("\nGGD traffic:\n%s", w.Net().Stats())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
