package oracle_test

import (
	"strings"
	"testing"

	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

func TestOracleEmptyWorld(t *testing.T) {
	w := sim.NewWorld(3, netsim.Faults{Seed: 1}, site.DefaultOptions())
	rep := w.Check()
	if rep.Live != 3 { // one root object per site
		t.Errorf("Live = %d, want 3", rep.Live)
	}
	if !rep.Clean() || !rep.Safe() {
		t.Errorf("report = %v", rep)
	}
}

func TestOracleFindsGarbageWithoutCollection(t *testing.T) {
	opts := site.DefaultOptions()
	opts.AutoCollect = false
	w := sim.NewWorld(2, netsim.Faults{Seed: 1}, opts)
	s1 := w.Site(1)
	ref, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s1.DropRefs(s1.Root().Obj, ref); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// The engine removed the cluster but no sweep ran: the object is
	// unreachable and still present — the oracle reports it as garbage.
	rep := w.Check()
	if len(rep.Garbage) != 1 || rep.Garbage[0] != ref.Obj {
		t.Errorf("Garbage = %v, want [%v]", rep.Garbage, ref.Obj)
	}
	if rep.Clean() {
		t.Error("Clean() with garbage present")
	}
	if !rep.Safe() {
		t.Error("garbage is not a safety violation")
	}
	if !strings.Contains(rep.String(), "garbage=1") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestOracleCrossSiteReachability(t *testing.T) {
	w := sim.NewWorld(3, netsim.Faults{Seed: 1}, site.DefaultOptions())
	s1 := w.Site(1)
	a, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	b, err := w.Site(2).NewRemote(a.Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	rep := w.Check()
	if rep.Live != 5 { // 3 roots + a + b
		t.Errorf("Live = %d, want 5", rep.Live)
	}
	_ = b
}
