package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Result is the machine-readable outcome of one experiment: the verdict
// plus the headline numbers behind the printed table, keyed by stable
// metric names. CI lanes and the soak harness assert on these instead of
// scraping stdout.
type Result struct {
	// Experiment is the identifier (E5, E6, E7, E8, E9, A2).
	Experiment string `json:"experiment"`
	// Pass reports whether the experiment met its expectation.
	Pass bool `json:"pass"`
	// Metrics are the experiment's headline numbers. Counts are exact;
	// flags are 0/1.
	Metrics map[string]float64 `json:"metrics"`
}

// RunResults executes experiments like Run — one identifier or "all" —
// writing the human tables to w and returning the structured results in
// execution order, plus the overall verdict. An unknown identifier
// returns no results and false.
func RunResults(w io.Writer, which string) ([]Result, bool) {
	which = strings.ToUpper(which)
	any := which == "ALL"
	var results []Result
	ok := true
	for _, exp := range []struct {
		name string
		run  func(io.Writer) Result
	}{
		{"E5", e5}, {"E6", e6}, {"E7", e7}, {"E8", e8}, {"E9", e9}, {"A2", a2},
	} {
		if !any && which != exp.name {
			continue
		}
		r := exp.run(w)
		results = append(results, r)
		ok = ok && r.Pass
	}
	if len(results) == 0 {
		fmt.Fprintf(w, "unknown experiment %q (want E5, E6, E7, E8, E9, A2 or all)\n", which)
		return nil, false
	}
	return results, ok
}

// WriteJSON renders results as an indented JSON array: the artifact
// format cmd/causalgc-bench -json emits.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
