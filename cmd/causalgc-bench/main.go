// causalgc-bench regenerates the experiment tables of EXPERIMENTS.md
// (E5–E9, A2) as plain text. Each experiment corresponds to a figure,
// claim or comparison in the paper; see DESIGN.md §4 for the index. The
// experiment logic lives in the causalgc/eval package; `go test -bench=.`
// at the repository root reports the same quantities as benchmarks.
//
// Usage:
//
//	causalgc-bench            # all experiments
//	causalgc-bench -exp E6    # one experiment
package main

import (
	"flag"
	"os"

	"causalgc/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: E5 E6 E7 E8 E9 A2 or all")
	flag.Parse()
	if !eval.Run(os.Stdout, *exp) {
		os.Exit(1)
	}
}
