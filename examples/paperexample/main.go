// paperexample reproduces the paper's worked example end to end, on the
// public causalgc API:
//
//   - Fig 3: the evolution of the global root graph (root 1 creates 2;
//     2 creates 3 and 4; third-party transfers build edges 4→3, 3→4, 4→2;
//     the root edge 1→2 is destroyed).
//
//   - Fig 4/5: the log-keeping events with their dependency-vector state,
//     printed per event.
//
//   - Fig 7: lazy log-keeping — the transfers send no control messages
//     (only the deferred edge-asserts this reproduction adds; see
//     DESIGN.md).
//
//   - Fig 8: the evolution of each global root's log during GGD, ending
//     with the whole cycle {2,3,4} detected and reclaimed.
//
//     go run ./examples/paperexample
package main

import (
	"fmt"
	"log"

	"causalgc"
	"causalgc/transport"
)

func main() {
	// Print each global root's final log as GGD removes it: the bottom
	// rows of Fig 8. RemoveObserver hands out the log just before
	// removal.
	var order []causalgc.ClusterID
	names := map[causalgc.ClusterID]string{}
	engine := causalgc.EngineOptions{
		RemoveObserver: func(id causalgc.ClusterID, l *causalgc.Log, clock uint64) {
			fmt.Printf("  GGD removes %s (clock %d); final log:\n", names[id], clock)
			for _, line := range splitLines(l.Render(order)) {
				fmt.Printf("    %s\n", line)
			}
		},
	}
	c := causalgc.NewCluster(4,
		causalgc.WithTransport(transport.NewDeterministic(transport.Faults{Seed: 1})),
		causalgc.WithEngineOptions(engine))
	n1, n2 := c.Node(1), c.Node(2)

	fmt.Println("== Fig 3: building the global root graph ==")
	obj2 := step(c, "e2,1: root 1 creates 2", func() (causalgc.Ref, error) {
		return n1.NewRemote(n1.Root().Obj, 2)
	})
	obj3 := step(c, "e3,1: 2 creates 3", func() (causalgc.Ref, error) {
		return n2.NewRemote(obj2.Obj, 3)
	})
	obj4 := step(c, "e4,1: 2 creates 4", func() (causalgc.Ref, error) {
		return n2.NewRemote(obj2.Obj, 4)
	})
	check(n2.SendRef(obj2.Obj, obj4, obj3))
	fmt.Println("e3,2: 2 sends 4 a reference to 3   (edge 4→3)")
	check(n2.SendRef(obj2.Obj, obj3, obj4))
	fmt.Println("e4,2: 2 sends 3 a reference to 4   (edge 3→4)")
	check(n2.SendRef(obj2.Obj, obj4, obj2))
	fmt.Println("e2,2: 2 sends its own reference to 4 (edge 4→2)")
	check(c.Run())

	order = []causalgc.ClusterID{n1.Root().Cluster, obj2.Cluster, obj3.Cluster, obj4.Cluster}
	names[n1.Root().Cluster] = "1(root)"
	names[obj2.Cluster] = "2"
	names[obj3.Cluster] = "3"
	names[obj4.Cluster] = "4"

	fmt.Println("\n== Fig 5: logs after the mutator phase (columns 1,2,3,4) ==")
	for _, ref := range []causalgc.Ref{obj2, obj3, obj4} {
		l := c.Node(ref.Obj.Site).LogSnapshot(ref.Cluster)
		if l == nil {
			fmt.Printf("  %s: (removed)\n", names[ref.Cluster])
			continue
		}
		fmt.Printf("  log of %s:\n", names[ref.Cluster])
		for _, line := range splitLines(l.Render(order)) {
			fmt.Printf("    %s\n", line)
		}
	}

	fmt.Println("\n== Fig 7: lazy log-keeping traffic so far ==")
	st := c.Transport().Stats()
	fmt.Printf("  mutator messages: create=%d ref=%d\n", st.Sent("mut.create"), st.Sent("mut.ref"))
	fmt.Printf("  GGD rounds:       destroy=%d propagate=%d (deferred asserts: %d)\n",
		st.Sent("ggd.destroy"), st.Sent("ggd.prop"), st.Sent("ggd.assert"))

	fmt.Println("\n== Fig 8: e2,3 — the root destroys edge 1→2; GGD runs ==")
	// Observe each removal with its final log (the bottom rows of Fig 8).
	check(n1.DropRefs(n1.Root().Obj, obj2))
	check(c.Settle())

	rep := c.Check()
	fmt.Printf("\nafter GGD: oracle %v\n", rep)
	fmt.Printf("cluster 2 removed: %v\n", c.Node(2).ClusterRemoved(obj2.Cluster))
	fmt.Printf("cluster 3 removed: %v\n", c.Node(3).ClusterRemoved(obj3.Cluster))
	fmt.Printf("cluster 4 removed: %v\n", c.Node(4).ClusterRemoved(obj4.Cluster))
	fmt.Printf("\ntotal traffic:\n%s", st)
}

func step(c *causalgc.Cluster, label string, f func() (causalgc.Ref, error)) causalgc.Ref {
	ref, err := f()
	check(err)
	check(c.Run())
	fmt.Printf("%s → %v\n", label, ref)
	return ref
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
