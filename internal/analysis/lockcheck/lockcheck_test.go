package lockcheck_test

import (
	"testing"

	"causalgc/internal/analysis/analysistest"
	"causalgc/internal/analysis/lockcheck"
)

// TestLockCheck proves every lockcheck rule fires on its seeded
// violation and stays quiet on the compliant and directive forms.
func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.New(), "lockpkg", "shardpkg")
}
