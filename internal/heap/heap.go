// Package heap implements the per-site object heap of the paper's model
// (§2): objects are contiguous containers of references; the object graph
// is partitioned over sites; references may cross site boundaries.
//
// Vertices of the global root graph are clusters (§3.5): at the finest
// granularity every object is its own cluster, reproducing the paper's
// per-global-root model exactly; coarser policies group objects to shrink
// vectors and logs. Every inter-cluster reference — remote or same-site —
// is an edge of the global root graph and is reference-counted per
// (holder-cluster, target-cluster) pair. Transitions of those counts are
// reported through Hooks to the GGD engine (package core): 0→1 and
// re-additions drive lazy log-keeping stamps, 1→0 drives edge-destruction
// messages ("when the proxy for that remote object is collected", §3.4).
//
// Each cluster keeps an entry table: its objects that have (ever) been
// referenced from outside the cluster. Entries are the paper's global
// roots (Fig 1): they serve as local-GC roots until Global Garbage
// Detection removes the whole cluster, at which point the entry table is
// cleared and per-site mark-sweep reclaims the objects.
package heap

import (
	"fmt"
	"sync/atomic"

	"causalgc/internal/ids"
)

// Counters is a site's identity mint: the object and cluster sequence
// counters every heap of the site draws from. An unsharded site owns a
// private instance; the shards of a sharded site share one, so the
// identities a sharded run mints are exactly those the 1-shard run
// would (DESIGN.md §3.4). Atomic, because shards mint concurrently.
type Counters struct {
	obj atomic.Uint64
	clu atomic.Uint64
}

// NewCounters returns a zeroed identity mint.
func NewCounters() *Counters { return &Counters{} }

// MintObj draws the next object sequence. Exported so the sharded
// runtime can pre-mint at stage time and journal the drawn value.
func (c *Counters) MintObj() uint64 { return c.obj.Add(1) }

// MintClu draws the next cluster sequence.
func (c *Counters) MintClu() uint64 { return c.clu.Add(1) }

// ObserveObj raises the object counter to at least seq (replay and
// snapshot restore: recorded mints must never be re-drawn).
func (c *Counters) ObserveObj(seq uint64) { observeMax(&c.obj, seq) }

// ObserveClu raises the cluster counter to at least seq.
func (c *Counters) ObserveClu(seq uint64) { observeMax(&c.clu, seq) }

// Snapshot reads both counters.
func (c *Counters) Snapshot() (obj, clu uint64) { return c.obj.Load(), c.clu.Load() }

func observeMax(a *atomic.Uint64, seq uint64) {
	for {
		cur := a.Load()
		if seq <= cur || a.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Ref names a reference target: the object and the cluster it belongs to.
// Remote references carry the cluster so the holder's site can do edge
// accounting without contacting the target's site.
type Ref struct {
	Obj     ids.ObjectID
	Cluster ids.ClusterID
}

// NilRef is the empty reference (an unset slot).
var NilRef Ref

// Valid reports whether the reference is set.
func (r Ref) Valid() bool { return r.Obj.Valid() }

// String renders "s2/o5@s2/c3" or "nil".
func (r Ref) String() string {
	if !r.Valid() {
		return "nil"
	}
	return r.Obj.String() + "@" + r.Cluster.String()
}

// Hooks receives the global-root-graph edge transitions. The GGD engine
// implements it; tests may use recording fakes.
type Hooks interface {
	// EdgeUp is called on every addition of an inter-cluster reference,
	// including re-additions while the edge already exists (the receiver
	// re-stamps on every receipt; see DESIGN.md interpretation #2). first
	// reports a 0→1 transition of the edge's reference count. intro and
	// introSeq identify the introduction that carried the reference (zero
	// values for locally originated references).
	EdgeUp(holder, target ids.ClusterID, first bool, intro ids.ClusterID, introSeq uint64)
	// EdgeDown is called when an edge's reference count drops to zero:
	// the local collector (or the mutator) destroyed the last reference
	// from holder's cluster to target's cluster.
	EdgeDown(holder, target ids.ClusterID)
}

// NopHooks discards all notifications.
type NopHooks struct{}

// EdgeUp implements Hooks.
func (NopHooks) EdgeUp(_, _ ids.ClusterID, _ bool, _ ids.ClusterID, _ uint64) {}

// EdgeDown implements Hooks.
func (NopHooks) EdgeDown(_, _ ids.ClusterID) {}

var _ Hooks = NopHooks{}

// Object is a vertex of the object graph: an ordered set of reference
// slots. Objects are owned by exactly one cluster and never migrate.
type Object struct {
	id      ids.ObjectID
	cluster ids.ClusterID
	slots   []Ref
	marked  bool // local GC mark bit
}

// ID returns the object identifier.
func (o *Object) ID() ids.ObjectID { return o.id }

// Cluster returns the owning cluster.
func (o *Object) Cluster() ids.ClusterID { return o.cluster }

// NumSlots returns the number of reference slots.
func (o *Object) NumSlots() int { return len(o.slots) }

// Slot returns the reference in slot i (NilRef when out of range).
func (o *Object) Slot(i int) Ref {
	if i < 0 || i >= len(o.slots) {
		return NilRef
	}
	return o.slots[i]
}

// Slots returns a copy of the slot array.
func (o *Object) Slots() []Ref {
	out := make([]Ref, len(o.slots))
	copy(out, o.slots)
	return out
}

// cluster is the per-cluster bookkeeping.
type cluster struct {
	id      ids.ClusterID
	objects map[ids.ObjectID]*Object
	// entries are the cluster's global roots: objects that have (ever)
	// been referenced from outside the cluster. Conservative until the
	// cluster is removed by GGD (§2.1: "until proven otherwise").
	entries map[ids.ObjectID]struct{}
	removed bool
}

// edge identifies a global-root-graph edge.
type edge struct {
	from, to ids.ClusterID
}

// Heap is one site's portion of the distributed object graph — or, on
// a sharded site, one shard's partition of it.
type Heap struct {
	site     ids.SiteID
	hooks    Hooks
	ctr      *Counters
	track    func(ids.ObjectID, bool)
	objects  map[ids.ObjectID]*Object
	clusters map[ids.ClusterID]*cluster
	edges    map[edge]int
	rootClu  ids.ClusterID // zero on rootless shard heaps
	rootObj  ids.ObjectID
}

// New creates the heap for a site, including its root cluster and root
// object (the site's local root set, Fig 1). hooks must not be nil.
func New(site ids.SiteID, hooks Hooks) *Heap {
	return NewShard(site, hooks, NewCounters(), true)
}

// NewShard creates a heap drawing identities from a shared mint.
// withRoot=false builds a rootless partition: only shard 0 of a
// sharded site owns the local root set; the other shards hold clusters
// whose roots are entry tables alone.
func NewShard(site ids.SiteID, hooks Hooks, ctr *Counters, withRoot bool) *Heap {
	h := &Heap{
		site:     site,
		hooks:    hooks,
		ctr:      ctr,
		objects:  make(map[ids.ObjectID]*Object),
		clusters: make(map[ids.ClusterID]*cluster),
		edges:    make(map[edge]int),
	}
	if withRoot {
		h.rootClu = ids.ClusterID{Site: site, Seq: h.ctr.MintClu(), Root: true}
		h.addCluster(h.rootClu)
		root := h.allocate(h.rootClu)
		h.rootObj = root.id
	}
	return h
}

// Counters returns the identity mint this heap draws from.
func (h *Heap) Counters() *Counters { return h.ctr }

// SetObjectTracker registers fn, called with (id, true) when an object
// materialises in this heap and (id, false) when the sweep reclaims
// it. The sharded runtime uses it to maintain the object→shard routing
// table; nil (the default) disables tracking.
func (h *Heap) SetObjectTracker(fn func(ids.ObjectID, bool)) { h.track = fn }

// Site returns the heap's site.
func (h *Heap) Site() ids.SiteID { return h.site }

// RootCluster returns the site's local-root cluster (an actual root).
func (h *Heap) RootCluster() ids.ClusterID { return h.rootClu }

// RootObject returns the designated local root object; its slots model the
// mutator's named references (stacks, globals).
func (h *Heap) RootObject() ids.ObjectID { return h.rootObj }

// RootRef returns a reference to the root object.
func (h *Heap) RootRef() Ref { return Ref{Obj: h.rootObj, Cluster: h.rootClu} }

func (h *Heap) addCluster(id ids.ClusterID) *cluster {
	c := &cluster{
		id:      id,
		objects: make(map[ids.ObjectID]*Object),
		entries: make(map[ids.ObjectID]struct{}),
	}
	h.clusters[id] = c
	return c
}

func (h *Heap) allocate(cl ids.ClusterID) *Object {
	c, ok := h.clusters[cl]
	if !ok {
		c = h.addCluster(cl)
	}
	o := &Object{
		id:      ids.ObjectID{Site: h.site, Seq: h.ctr.MintObj()},
		cluster: cl,
	}
	h.objects[o.id] = o
	c.objects[o.id] = o
	if h.track != nil {
		h.track(o.id, true)
	}
	return o
}

// NewCluster mints a fresh non-root cluster identifier on this site.
func (h *Heap) NewCluster() ids.ClusterID {
	return ids.ClusterID{Site: h.site, Seq: h.ctr.MintClu()}
}

// NewObject allocates an object in the given cluster (minting a new
// cluster when cl is the zero value). The object starts unreferenced;
// callers must attach it (AddRef) before the next collection, or it is
// garbage by definition.
func (h *Heap) NewObject(cl ids.ClusterID) *Object {
	if !cl.Valid() {
		cl = h.NewCluster()
	}
	if cl.Site != h.site {
		panic(fmt.Sprintf("heap %v: NewObject in foreign cluster %v", h.site, cl))
	}
	return h.allocate(cl)
}

// NewObjectAt allocates an object with a pre-minted identity, used when a
// remote site created the object (paper: object 1 creates object 2 on
// another site). The creator mints both IDs so creation needs no
// round-trip.
func (h *Heap) NewObjectAt(id ids.ObjectID, cl ids.ClusterID) (*Object, error) {
	if id.Site != h.site || cl.Site != h.site {
		return nil, fmt.Errorf("heap %v: identity %v/%v: %w", h.site, id, cl, ErrForeignCluster)
	}
	if _, ok := h.objects[id]; ok {
		return nil, fmt.Errorf("heap %v: %v: %w", h.site, id, ErrDuplicateObject)
	}
	c, ok := h.clusters[cl]
	if !ok {
		c = h.addCluster(cl)
	}
	o := &Object{id: id, cluster: cl}
	h.objects[id] = o
	c.objects[id] = o
	if h.track != nil {
		h.track(id, true)
	}
	return o, nil
}

// Object returns the object with the given ID, or nil.
func (h *Heap) Object(id ids.ObjectID) *Object { return h.objects[id] }

// NumObjects returns the number of live (unswept) objects, including the
// root object.
func (h *Heap) NumObjects() int { return len(h.objects) }

// Objects returns the live objects sorted by ID (snapshot for the global
// oracle and the trace tooling).
func (h *Heap) Objects() []*Object {
	out := make([]*Object, 0, len(h.objects))
	for _, o := range h.objects {
		out = append(out, o)
	}
	sortObjectsByID(out)
	return out
}

// Clusters returns the IDs of all clusters that still hold objects or
// entries, sorted.
func (h *Heap) Clusters() []ids.ClusterID {
	out := make([]ids.ClusterID, 0, len(h.clusters))
	for id := range h.clusters {
		out = append(out, id)
	}
	ids.SortClusters(out)
	return out
}

// ClusterRemoved reports whether GGD has removed the cluster.
func (h *Heap) ClusterRemoved(cl ids.ClusterID) bool {
	c, ok := h.clusters[cl]
	return ok && c.removed
}

// MarkEntry records that obj is referenced from outside its cluster: it
// becomes a global root and a local-GC root until its cluster is removed.
func (h *Heap) MarkEntry(obj ids.ObjectID) error {
	o, ok := h.objects[obj]
	if !ok {
		return fmt.Errorf("heap %v: MarkEntry %v: %w", h.site, obj, ErrNoSuchObject)
	}
	c := h.clusters[o.cluster]
	if c.removed {
		return fmt.Errorf("heap %v: MarkEntry on %v: %w", h.site, o.cluster, ErrClusterRemoved)
	}
	c.entries[obj] = struct{}{}
	return nil
}

// Entries returns the entry objects (global roots) of a cluster, sorted.
func (h *Heap) Entries(cl ids.ClusterID) []ids.ObjectID {
	c, ok := h.clusters[cl]
	if !ok {
		return nil
	}
	out := make([]ids.ObjectID, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	ids.SortObjects(out)
	return out
}

// AddRef appends ref to holder's slots and performs edge accounting,
// returning the slot index. Inter-cluster additions notify Hooks.EdgeUp.
func (h *Heap) AddRef(holder ids.ObjectID, ref Ref) (int, error) {
	return h.AddRefIntro(holder, ref, ids.NoCluster, 0)
}

// AddRefIntro is AddRef with the introduction identity (the cluster whose
// forwarded reference is being stored, and its forwarding sequence
// number) passed through to Hooks.EdgeUp.
func (h *Heap) AddRefIntro(holder ids.ObjectID, ref Ref, intro ids.ClusterID, introSeq uint64) (int, error) {
	o, ok := h.objects[holder]
	if !ok {
		return 0, fmt.Errorf("heap %v: AddRef holder %v: %w", h.site, holder, ErrNoSuchObject)
	}
	if !ref.Valid() {
		return 0, fmt.Errorf("heap %v: AddRef: %w", h.site, ErrNilRef)
	}
	o.slots = append(o.slots, ref)
	h.refAdded(o, ref, intro, introSeq)
	return len(o.slots) - 1, nil
}

// SetSlot overwrites slot i of holder (growing the slot array as needed),
// dropping the previous reference. ref may be NilRef to clear.
func (h *Heap) SetSlot(holder ids.ObjectID, i int, ref Ref) error {
	o, ok := h.objects[holder]
	if !ok {
		return fmt.Errorf("heap %v: SetSlot holder %v: %w", h.site, holder, ErrNoSuchObject)
	}
	if i < 0 {
		return fmt.Errorf("heap %v: SetSlot index %d: %w", h.site, i, ErrBadSlot)
	}
	for len(o.slots) <= i {
		o.slots = append(o.slots, NilRef)
	}
	old := o.slots[i]
	o.slots[i] = ref
	if old.Valid() {
		h.refDropped(o, old)
	}
	if ref.Valid() {
		h.refAdded(o, ref, ids.NoCluster, 0)
	}
	return nil
}

// ClearSlot drops the reference in slot i of holder.
func (h *Heap) ClearSlot(holder ids.ObjectID, i int) error {
	return h.SetSlot(holder, i, NilRef)
}

// DropRefs drops every slot of holder that references target (mutator
// convenience: "destroy the edge to that object").
func (h *Heap) DropRefs(holder, target ids.ObjectID) error {
	o, ok := h.objects[holder]
	if !ok {
		return fmt.Errorf("heap %v: DropRefs holder %v: %w", h.site, holder, ErrNoSuchObject)
	}
	for i, r := range o.slots {
		if r.Obj == target {
			o.slots[i] = NilRef
			h.refDropped(o, r)
		}
	}
	return nil
}

func (h *Heap) refAdded(o *Object, ref Ref, intro ids.ClusterID, introSeq uint64) {
	if ref.Cluster == o.cluster {
		return
	}
	e := edge{from: o.cluster, to: ref.Cluster}
	n := h.edges[e]
	h.edges[e] = n + 1
	if c := h.clusters[o.cluster]; c != nil && c.removed {
		// Edges of a removed cluster were force-destroyed at removal; do
		// not resurrect them (the objects are about to be swept).
		return
	}
	// A reference into another local cluster makes its target a global
	// root of that cluster.
	if ref.Cluster.Site == h.site {
		if t, ok := h.objects[ref.Obj]; ok {
			if tc := h.clusters[t.cluster]; tc != nil && !tc.removed {
				tc.entries[t.id] = struct{}{}
			}
		}
	}
	h.hooks.EdgeUp(o.cluster, ref.Cluster, n == 0, intro, introSeq)
}

func (h *Heap) refDropped(o *Object, ref Ref) {
	if ref.Cluster == o.cluster {
		return
	}
	e := edge{from: o.cluster, to: ref.Cluster}
	n := h.edges[e]
	if n <= 0 {
		// Removal already zeroed this cluster's edges.
		return
	}
	h.edges[e] = n - 1
	if n-1 == 0 {
		delete(h.edges, e)
	}
	if c := h.clusters[o.cluster]; c != nil && c.removed {
		return
	}
	if n-1 == 0 {
		h.hooks.EdgeDown(o.cluster, ref.Cluster)
	}
}

// EdgeCount returns the reference count of the (from, to) edge.
func (h *Heap) EdgeCount(from, to ids.ClusterID) int {
	return h.edges[edge{from: from, to: to}]
}

// OutEdges returns the targets of cluster from's live edges, sorted.
func (h *Heap) OutEdges(from ids.ClusterID) []ids.ClusterID {
	var out []ids.ClusterID
	for e, n := range h.edges {
		if e.from == from && n > 0 {
			out = append(out, e.to)
		}
	}
	ids.SortClusters(out)
	return out
}

// RemoveCluster implements the GGD verdict: the cluster's entry table is
// cleared (its global roots are discarded from the root set, §2.2) and its
// remaining out-edges are zeroed without further Hooks notifications — the
// caller (the GGD engine) has already shipped the bundled edge-destruction
// messages. The objects themselves are reclaimed by the next local
// collection.
func (h *Heap) RemoveCluster(cl ids.ClusterID) error {
	c, ok := h.clusters[cl]
	if !ok {
		return fmt.Errorf("heap %v: RemoveCluster %v: %w", h.site, cl, ErrNoSuchCluster)
	}
	if cl == h.rootClu {
		return fmt.Errorf("heap %v: RemoveCluster: %w", h.site, ErrRootCluster)
	}
	if c.removed {
		return nil
	}
	c.removed = true
	c.entries = make(map[ids.ObjectID]struct{})
	for e := range h.edges {
		if e.from == cl {
			delete(h.edges, e)
		}
	}
	return nil
}
