// dll reproduces the causal side of the paper's §4 comparison: messages
// to collect a detached doubly-linked list of k elements under the
// paper's literal removal guard (which reproduces the O(k) claim) and
// under the sound guard (which pays O(k²) for all-pairs knowledge inside
// the subcycles). Programs against the public causalgc API only; the
// three-way comparison including Schelvis's eager timestamp packets is
// produced by `causalgc-bench -exp E6` (package causalgc/eval).
//
//	go run ./examples/dll
package main

import (
	"fmt"
	"log"

	"causalgc"
	"causalgc/transport"
)

func main() {
	fmt.Println("§4: messages to collect a detached k-element doubly-linked list")
	fmt.Printf("%6s %22s %14s\n", "k", "causal(paper-guard)", "causal(sound)")
	for _, k := range []int{4, 8, 16, 32, 64} {
		fmt.Printf("%6d %22d %14d\n", k, causal(k, true), causal(k, false))
	}
	fmt.Println("\npaper-guard reproduces the O(k) claim; the sound guard pays O(k²)")
	fmt.Println("for all-pairs knowledge inside the subcycles. Schelvis is O(k²)")
	fmt.Println("with a larger growth rate: run `causalgc-bench -exp E6` for the")
	fmt.Println("three-way table (see EXPERIMENTS.md, E6).")
}

func causal(k int, paperGuard bool) int {
	c := causalgc.NewCluster(k+1,
		causalgc.WithTransport(transport.NewDeterministic(transport.Faults{Seed: 1})),
		causalgc.WithEngineOptions(causalgc.EngineOptions{UnsafeSkipConfirmation: paperGuard}))
	dll, err := causalgc.BuildDLL(c, k)
	if err != nil {
		log.Fatal(err)
	}
	base := c.Transport().Stats().TotalSent()
	if err := dll.Detach(); err != nil {
		log.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		log.Fatal(err)
	}
	if rep := c.Check(); !rep.Clean() {
		log.Fatalf("k=%d not clean: %v", k, rep)
	}
	return c.Transport().Stats().TotalSent() - base
}
