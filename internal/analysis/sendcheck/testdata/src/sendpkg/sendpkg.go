// Package sendpkg seeds sendcheck violations and compliant forms.
package sendpkg

type network struct{}

func (network) Send(from, to int, p interface{}) {}

type runtime struct {
	net      network
	coalesce []interface{}
}

// emitLocked is the sanctioned funnel: direct sends are allowed here.
func (r *runtime) emitLocked(to int, p interface{}) {
	r.net.Send(0, to, p)
}

// flushCoalesceLocked is the funnel's flush path.
func (r *runtime) flushCoalesceLocked() {
	for _, p := range r.coalesce {
		r.net.Send(0, 1, p)
	}
	r.coalesce = nil
}

// rogue ships a frame around the coalescer.
func (r *runtime) rogue(p interface{}) {
	r.net.Send(0, 2, p) // want "direct r.net.Send in rogue bypasses the emitLocked coalescer"
}

// rogueClosure hides the bypass inside a closure; it is attributed to
// the enclosing declaration.
func (r *runtime) rogueClosure(p interface{}) {
	fn := func() {
		r.net.Send(0, 2, p) // want "direct r.net.Send in rogueClosure bypasses the emitLocked coalescer"
	}
	fn()
}

// audited is exempt: the directive marks an audited direct send.
func (r *runtime) audited(p interface{}) {
	r.net.Send(0, 2, p) //causalgc:allow-direct-send handshake preamble, carries no protocol frame
}

// viaFunnel is compliant: it routes through the coalescer.
func (r *runtime) viaFunnel(p interface{}) {
	r.coalesce = append(r.coalesce, p)
	r.flushCoalesceLocked()
}
