// causalgc-soak is the long-haul steady-state harness: a multi-site
// durable cluster run for a configurable duration under randomised
// mutator churn, network partitions and a kill-restart, with every node
// exporting its monitor through one metrics endpoint the harness
// scrapes over HTTP while the run is live.
//
// When the duration elapses the harness heals all faults, drives
// collection and refresh rounds until the acknowledged-retirement
// protocol reaches steady state, and asserts the invariants a healthy
// long-lived deployment must show:
//
//   - refresh converges: two consecutive rounds re-ship zero retained
//     rows and suppress nothing (also proven from two Prometheus
//     scrapes straddling an extra refresh round);
//   - the global reachability oracle finds zero residual garbage and
//     zero dangling references;
//   - the outbox, assert-journal and legacy-bundle depth gauges are
//     back to zero and no hard-cap backstop ever fired — on a sharded
//     run (-shards) per shard and in aggregate, with every cross-shard
//     handoff queue empty;
//   - every WAL fsync stayed within the latency budget.
//
// Any violation dumps the per-site structured event traces and exits
// non-zero.
//
// Usage:
//
//	causalgc-soak -duration 2m -sites 4                  # acceptance run
//	causalgc-soak -duration 30s -seed 7 -json soak.json  # CI lane
//	causalgc-soak -duration 20s -sites 3 -shards 4       # lock-striped lane
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"causalgc"
	"causalgc/monitor"
	"causalgc/transport"
)

func main() {
	cfg := soakConfig{}
	flag.DurationVar(&cfg.duration, "duration", 2*time.Minute, "churn phase length; quiescence checks run after it")
	flag.IntVar(&cfg.sites, "sites", 4, "number of sites in the cluster (>= 2)")
	flag.IntVar(&cfg.shards, "shards", 0, "lock-stripe width of every site (0 = classic unsharded runtime)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "127.0.0.1:0", "address the cluster-wide metrics endpoint binds")
	flag.StringVar(&cfg.persistDir, "persist", "", "root directory for per-site durability; empty = a fresh temp dir, removed on success")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for the churn, partition and fault randomness")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the machine-readable run summary to this path ('-' for stdout)")
	flag.DurationVar(&cfg.fsyncBudget, "fsync-budget", time.Second, "maximum tolerated single WAL fsync latency")
	flag.BoolVar(&cfg.verbose, "v", false, "print periodic progress lines during the churn phase")
	flag.Parse()

	if cfg.sites < 2 {
		fmt.Fprintln(os.Stderr, "causalgc-soak: -sites must be >= 2")
		os.Exit(2)
	}
	sum, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "causalgc-soak:", err)
		os.Exit(1)
	}
	if cfg.jsonPath != "" {
		if err := writeSummary(cfg.jsonPath, sum); err != nil {
			fmt.Fprintln(os.Stderr, "causalgc-soak:", err)
			os.Exit(1)
		}
	}
	if !sum.Pass {
		os.Exit(1)
	}
}

type soakConfig struct {
	duration    time.Duration
	sites       int
	shards      int
	metricsAddr string
	persistDir  string
	seed        int64
	jsonPath    string
	fsyncBudget time.Duration
	verbose     bool
}

// summary is the machine-readable outcome of one soak run (-json).
type summary struct {
	Pass            bool     `json:"pass"`
	DurationSeconds float64  `json:"duration_seconds"`
	Sites           int      `json:"sites"`
	Shards          int      `json:"shards,omitempty"`
	Seed            int64    `json:"seed"`
	Ops             int      `json:"ops"`
	Creates         int      `json:"creates"`
	Shares          int      `json:"shares"`
	Drops           int      `json:"drops"`
	Skipped         int      `json:"skipped"`
	Partitions      int      `json:"partitions"`
	Restarts        int      `json:"restarts"`
	Scrapes         int64    `json:"scrapes"`
	ScrapeErrors    int64    `json:"scrape_errors"`
	QuiesceRounds   int      `json:"quiesce_rounds"`
	Live            int      `json:"live"`
	Residual        int      `json:"residual"`
	Dangling        int      `json:"dangling"`
	Violations      []string `json:"violations"`
}

// soak holds the running cluster and the churn driver's bookkeeping.
type soak struct {
	cfg   soakConfig
	tr    *transport.Async
	nodes []*causalgc.Node   // nodes[i] hosts site i+1
	mons  []*monitor.Monitor // mons[i] watches site i+1
	msrv  *monitor.Server
	rng   *rand.Rand
	cut   atomic.Int64 // site currently partitioned off (0 = none)

	// Mutator mirror, in the style of the internal churn driver: only
	// legal operations are issued; in-flight races surface as skips.
	holdings map[causalgc.ObjectID][]causalgc.Ref
	holders  []causalgc.ObjectID
	inSet    map[causalgc.ObjectID]struct{}
	refOf    map[causalgc.ObjectID]causalgc.Ref

	sum        summary
	violations []string
}

func run(cfg soakConfig) (summary, error) {
	s := &soak{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.seed)),
		holdings: map[causalgc.ObjectID][]causalgc.Ref{},
		inSet:    map[causalgc.ObjectID]struct{}{},
		refOf:    map[causalgc.ObjectID]causalgc.Ref{},
	}
	s.sum.Sites = cfg.sites
	s.sum.Shards = cfg.shards
	s.sum.Seed = cfg.seed
	s.sum.DurationSeconds = cfg.duration.Seconds()

	root := cfg.persistDir
	if root == "" {
		dir, err := os.MkdirTemp("", "causalgc-soak-*")
		if err != nil {
			return s.sum, err
		}
		defer func() {
			if s.sum.Pass {
				os.RemoveAll(dir)
			} else {
				fmt.Printf("durability state kept at %s\n", dir)
			}
		}()
		root = dir
	}

	// The partition predicate reads the atomic victim so the driver can
	// cut and heal mid-run; mutator traffic is exempt by the transport's
	// fault contract, so only GGD control traffic is lost.
	s.tr = transport.NewAsync(transport.Faults{
		Seed: cfg.seed,
		Partitioned: func(from, to causalgc.SiteID) bool {
			c := causalgc.SiteID(s.cut.Load())
			return c != 0 && (from == c || to == c)
		},
	})
	defer s.tr.Close()

	for i := 1; i <= cfg.sites; i++ {
		mon := monitor.New(0)
		n, err := causalgc.Recover(causalgc.SiteID(i), s.nodeOpts(root, i, mon)...)
		if err != nil {
			return s.sum, fmt.Errorf("start site %d: %w", i, err)
		}
		s.mons = append(s.mons, mon)
		s.nodes = append(s.nodes, n)
		s.refOf[n.Root().Obj] = n.Root()
	}
	defer func() {
		for _, n := range s.nodes {
			n.Close()
		}
	}()

	msrv, err := monitor.NewServer(cfg.metricsAddr, s.mons...)
	if err != nil {
		return s.sum, fmt.Errorf("metrics endpoint: %w", err)
	}
	defer msrv.Close()
	s.msrv = msrv
	fmt.Printf("soak: %d sites, %v churn, seed %d, metrics on %v, persistence under %s\n",
		cfg.sites, cfg.duration, cfg.seed, msrv.Addr(), root)

	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		s.scrapeLoop(stopScrape)
	}()
	stopScraping := func() {
		select {
		case <-stopScrape:
		default:
			close(stopScrape)
		}
		<-scrapeDone
	}
	defer stopScraping()

	if err := s.churnPhase(root); err != nil {
		return s.sum, err
	}
	s.quiescePhase()
	s.finalScrapeChecks()
	stopScraping() // join before the summary copies the scrape counters

	s.sum.Violations = s.violations
	s.sum.Pass = len(s.violations) == 0
	if s.sum.Pass {
		fmt.Printf("soak PASS: %d ops, %d partitions, %d restart(s), %d scrapes, steady state in %d round(s)\n",
			s.sum.Ops, s.sum.Partitions, s.sum.Restarts, s.sum.Scrapes, s.sum.QuiesceRounds)
		return s.sum, nil
	}
	fmt.Printf("soak FAIL: %d violation(s)\n", len(s.violations))
	for _, v := range s.violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
	s.dumpTraces()
	return s.sum, nil
}

// nodeOpts are the options every site starts (and restarts) with.
func (s *soak) nodeOpts(root string, site int, mon *monitor.Monitor) []causalgc.Option {
	opts := []causalgc.Option{
		causalgc.WithTransport(s.tr),
		causalgc.WithPersistence(filepath.Join(root, fmt.Sprintf("site-%d", site))),
		causalgc.WithSnapshotEvery(128),
		causalgc.WithGroupCommit(2 * time.Millisecond),
		causalgc.WithMonitor(mon),
	}
	if s.cfg.shards > 0 {
		opts = append(opts, causalgc.WithShards(s.cfg.shards))
	}
	return opts
}

// churnPhase drives randomised mutation, periodic collection and
// refresh, partition windows, and one kill-restart at ~40% of the
// duration, until the configured duration elapses.
func (s *soak) churnPhase(root string) error {
	start := time.Now()
	deadline := start.Add(s.cfg.duration)
	restartAt := start.Add(s.cfg.duration * 2 / 5)
	partitionEvery := s.cfg.duration / 8
	if partitionEvery < 4*time.Second {
		partitionEvery = 4 * time.Second
	}
	const partitionLen = 1500 * time.Millisecond

	var lastCollect, lastRefresh, lastPartition, lastStatus time.Time
	var healAt time.Time
	restarted := false

	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}

		if s.cut.Load() != 0 && now.After(healAt) {
			s.cut.Store(0)
		}
		if s.cut.Load() == 0 && now.Sub(lastPartition) > partitionEvery {
			victim := 1 + s.rng.Intn(s.cfg.sites)
			s.cut.Store(int64(victim))
			healAt = now.Add(partitionLen)
			lastPartition = now
			s.sum.Partitions++
			if s.cfg.verbose {
				fmt.Printf("partition: site %d cut off for %v\n", victim, partitionLen)
			}
		}
		if !restarted && now.After(restartAt) {
			restarted = true
			s.cut.Store(0) // the kill is faulty enough on its own
			victim := 1 + s.rng.Intn(s.cfg.sites)
			if err := s.restart(root, victim); err != nil {
				return err
			}
		}
		if now.Sub(lastCollect) > 500*time.Millisecond {
			lastCollect = now
			for _, n := range s.nodes {
				n.Collect()
			}
		}
		if now.Sub(lastRefresh) > 2*time.Second {
			lastRefresh = now
			for _, n := range s.nodes {
				n.Refresh()
			}
		}
		if s.cfg.verbose && now.Sub(lastStatus) > 5*time.Second {
			lastStatus = now
			objects, removed := 0, 0
			for _, m := range s.mons {
				snap := m.Snapshot()
				objects += snap.Objects
				removed += snap.Engine.Removed
			}
			fmt.Printf("churn: %d ops, %d objects, %d clusters removed\n", s.sum.Ops, objects, removed)
		}

		s.churnOp()
		time.Sleep(5 * time.Millisecond)
	}
	s.cut.Store(0)
	return nil
}

// restart crash-stops one site (Close is crash-equivalent: no final
// snapshot) and recovers it from its WAL on the same transport and
// monitor. Deliveries racing the gap are dropped like network loss; the
// acknowledged-retirement outbox re-ships them on later refreshes.
func (s *soak) restart(root string, victim int) error {
	if err := s.nodes[victim-1].Close(); err != nil {
		return fmt.Errorf("kill site %d: %w", victim, err)
	}
	n, err := causalgc.Recover(causalgc.SiteID(victim), s.nodeOpts(root, victim, s.mons[victim-1])...)
	if err != nil {
		return fmt.Errorf("restart site %d: %w", victim, err)
	}
	s.nodes[victim-1] = n
	s.sum.Restarts++
	fmt.Printf("kill-restart: site %d recovered (%d objects)\n", victim, n.NumObjects())
	return nil
}

// churnOp performs one randomised, always-legal mutator operation
// (create 4 : share 4 : drop 3, mirroring the simulator's churn mix).
func (s *soak) churnOp() {
	s.sum.Ops++
	addHolding := func(o causalgc.ObjectID, ref causalgc.Ref) {
		if _, ok := s.inSet[o]; !ok {
			s.inSet[o] = struct{}{}
			s.holders = append(s.holders, o)
		}
		s.holdings[o] = append(s.holdings[o], ref)
	}
	randomHolder := func() (causalgc.ObjectID, bool) {
		if len(s.holders) == 0 {
			return causalgc.ObjectID{}, false
		}
		return s.holders[s.rng.Intn(len(s.holders))], true
	}
	node := func(id causalgc.SiteID) *causalgc.Node { return s.nodes[int(id)-1] }

	switch roll := s.rng.Intn(11); {
	case roll < 4: // create from a random root or known holder
		var holder causalgc.ObjectID
		if len(s.holders) == 0 || s.rng.Intn(3) == 0 {
			holder = s.nodes[s.rng.Intn(s.cfg.sites)].Root().Obj
		} else if h, ok := randomHolder(); ok {
			holder = h
		}
		hn := node(holder.Site)
		target := causalgc.SiteID(1 + s.rng.Intn(s.cfg.sites))
		var ref causalgc.Ref
		var err error
		if target == holder.Site {
			ref, err = hn.NewLocal(holder)
		} else {
			ref, err = hn.NewRemote(holder, target)
		}
		if err != nil {
			s.sum.Skipped++
			return
		}
		s.refOf[ref.Obj] = ref
		addHolding(holder, ref)
		s.sum.Creates++

	case roll < 8: // copy a held reference to a random destination
		h, ok := randomHolder()
		if !ok || len(s.holdings[h]) == 0 {
			s.sum.Skipped++
			return
		}
		held := s.holdings[h]
		target := held[s.rng.Intn(len(held))]
		var dest causalgc.Ref
		if len(s.holders) > 0 && s.rng.Intn(3) != 0 {
			dest = s.refOf[s.holders[s.rng.Intn(len(s.holders))]]
		}
		if !dest.Valid() {
			dest = s.nodes[s.rng.Intn(s.cfg.sites)].Root()
		}
		if err := node(h.Site).SendRef(h, dest, target); err != nil {
			s.sum.Skipped++
			return
		}
		addHolding(dest.Obj, target)
		s.sum.Shares++

	default: // drop all slots of one held reference (roots included)
		h, ok := randomHolder()
		if !ok || len(s.holdings[h]) == 0 {
			s.sum.Skipped++
			return
		}
		held := s.holdings[h]
		target := held[s.rng.Intn(len(held))]
		if err := node(h.Site).DropRefs(h, target); err != nil {
			s.sum.Skipped++
			return
		}
		kept := held[:0]
		for _, r := range held {
			if r.Obj != target.Obj {
				kept = append(kept, r)
			}
		}
		s.holdings[h] = kept
		s.sum.Drops++
	}
}

// resendTotals sums every re-ship and damper-suppression counter across
// the cluster: the quantity that must stop growing at steady state.
func (s *soak) resendTotals() int {
	total := 0
	for _, n := range s.nodes {
		es := n.Stats()
		fs := n.FrameStats()
		total += es.AssertResends + es.DestroyResends + es.LegacyResends + es.ResendsSuppressed
		total += fs.OutboxResends + fs.ResendsSuppressed
	}
	return total
}

// quiescePhase heals all faults and drives collect+refresh rounds until
// two consecutive rounds re-ship nothing and the oracle is clean (or
// the round budget runs out), then asserts the steady-state invariants.
func (s *soak) quiescePhase() {
	fmt.Println("quiescing: faults healed, driving refresh rounds to steady state")
	const maxRounds = 60
	prev := s.resendTotals()
	zeroRounds := 0
	converged := false
	var rep causalgc.Report
	for round := 1; round <= maxRounds; round++ {
		s.sum.QuiesceRounds = round
		for _, n := range s.nodes {
			n.Collect()
			n.Refresh()
		}
		if !s.tr.Drain(10 * time.Second) {
			s.violationf("transport failed to drain within 10s on quiesce round %d", round)
			break
		}
		cur := s.resendTotals()
		if cur == prev {
			zeroRounds++
		} else {
			zeroRounds = 0
		}
		prev = cur
		rep = causalgc.Check(s.nodes...)
		if zeroRounds >= 2 && rep.Clean() {
			converged = true
			break
		}
	}
	if !converged {
		s.violationf("no steady state after %d refresh rounds: %v, re-ship counters still moving", s.sum.QuiesceRounds, rep)
	}

	// Feed the oracle's verdict to the residual gauges, then assert it.
	perSite := map[causalgc.SiteID]int{}
	for _, obj := range rep.Garbage {
		perSite[obj.Site]++
	}
	for i, m := range s.mons {
		m.SetResidual(perSite[causalgc.SiteID(i+1)])
	}
	s.sum.Live, s.sum.Residual, s.sum.Dangling = rep.Live, len(rep.Garbage), len(rep.Dangling)
	if len(rep.Dangling) > 0 {
		s.violationf("SAFETY: %d dangling reference(s): %v", len(rep.Dangling), rep.Dangling)
	}
	if len(rep.Garbage) > 0 {
		s.violationf("%d residual garbage object(s) after quiescent refresh: %v", len(rep.Garbage), rep.Garbage)
	}

	for i, m := range s.mons {
		site := i + 1
		snap := m.Snapshot()
		if d := snap.Depths; d.Outbox != 0 || d.AssertRows != 0 || d.LegacyBundles != 0 {
			s.violationf("site %d retained state not drained: outbox=%d assertRows=%d legacyBundles=%d",
				site, d.Outbox, d.AssertRows, d.LegacyBundles)
		}
		// On a sharded run the aggregate gauge must decompose into
		// per-shard zeros — a shard hiding retained state behind a
		// sibling's negative accounting would be a monitor bug — and
		// nothing may sit in a cross-shard handoff queue at quiescence.
		if s.cfg.shards > 0 {
			if snap.Shards != s.cfg.shards {
				s.violationf("site %d reports %d shards, configured %d", site, snap.Shards, s.cfg.shards)
			}
			shardOutbox, shardAsserts := 0, 0
			for si, d := range snap.ShardDepths {
				shardOutbox += d.Outbox
				shardAsserts += d.AssertRows
				if d.Outbox != 0 || d.AssertRows != 0 || d.LegacyBundles != 0 {
					s.violationf("site %d shard %d retained state not drained: outbox=%d assertRows=%d legacyBundles=%d",
						site, si, d.Outbox, d.AssertRows, d.LegacyBundles)
				}
			}
			if shardOutbox != snap.Depths.Outbox || shardAsserts != snap.Depths.AssertRows {
				s.violationf("site %d per-shard depths do not sum to the aggregate: outbox %d vs %d, assertRows %d vs %d",
					site, shardOutbox, snap.Depths.Outbox, shardAsserts, snap.Depths.AssertRows)
			}
			if snap.Handoff != 0 {
				s.violationf("site %d handoff queues hold %d frame(s) at quiescence", site, snap.Handoff)
			}
		}
		if snap.Engine.AssertRowsDropped != 0 || snap.Engine.LegacyEvicted != 0 || snap.Frames.OutboxEvicted != 0 {
			s.violationf("site %d backstop fired: assertRowsDropped=%d legacyEvicted=%d outboxEvicted=%d",
				site, snap.Engine.AssertRowsDropped, snap.Engine.LegacyEvicted, snap.Frames.OutboxEvicted)
		}
		if snap.Persist == nil {
			s.violationf("site %d exports no persistence stats on a durable run", site)
		} else if snap.Persist.SyncMaxNanos > s.cfg.fsyncBudget.Nanoseconds() {
			s.violationf("site %d max fsync %v exceeds budget %v",
				site, time.Duration(snap.Persist.SyncMaxNanos), s.cfg.fsyncBudget)
		}
	}
}

// finalScrapeChecks proves the steady state from the outside: two
// Prometheus scrapes straddling one more refresh round must show the
// re-ship counters frozen, every depth gauge at zero and every residual
// gauge at zero.
func (s *soak) finalScrapeChecks() {
	before, err := s.fetch("/metrics")
	if err != nil {
		s.violationf("final scrape: %v", err)
		return
	}
	for _, n := range s.nodes {
		n.Refresh()
	}
	s.tr.Drain(10 * time.Second)
	after, err := s.fetch("/metrics")
	if err != nil {
		s.violationf("final scrape: %v", err)
		return
	}

	rb, _ := sumMetric(before, "causalgc_resends_total")
	ra, _ := sumMetric(after, "causalgc_resends_total")
	if ra != rb {
		s.violationf("scraped causalgc_resends_total moved across a quiescent refresh: %v -> %v", rb, ra)
	}
	for _, gauge := range []string{"causalgc_outbox_depth", "causalgc_assert_journal_depth", "causalgc_legacy_bundles_depth", "causalgc_residual_garbage"} {
		total, n := sumMetric(after, gauge)
		if n != s.cfg.sites {
			s.violationf("scrape exports %d %s samples, want %d", n, gauge, s.cfg.sites)
		}
		if total != 0 {
			s.violationf("scraped %s sums to %v at quiescence, want 0", gauge, total)
		}
	}
	if s.cfg.shards > 0 {
		for _, gauge := range []string{"causalgc_shard_outbox_depth", "causalgc_shard_assert_journal_depth", "causalgc_handoff_depth"} {
			samples := s.cfg.sites
			if gauge != "causalgc_handoff_depth" {
				samples *= s.cfg.shards
			}
			total, n := sumMetric(after, gauge)
			if n != samples {
				s.violationf("scrape exports %d %s samples, want %d", n, gauge, samples)
			}
			if total != 0 {
				s.violationf("scraped %s sums to %v at quiescence, want 0", gauge, total)
			}
		}
	}
}

// scrapeLoop polls the metrics endpoint for the whole run, the way an
// external Prometheus would, verifying each response parses.
func (s *soak) scrapeLoop(stop <-chan struct{}) {
	t := time.NewTicker(2 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		body, err := s.fetch("/metrics")
		if err != nil || !strings.Contains(body, "causalgc_objects") {
			atomic.AddInt64(&s.sum.ScrapeErrors, 1)
			continue
		}
		atomic.AddInt64(&s.sum.Scrapes, 1)
	}
}

func (s *soak) fetch(path string) (string, error) {
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + s.msrv.Addr() + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// sumMetric adds up every sample of one metric in a Prometheus text
// body, returning the sum and the sample count.
func sumMetric(body, name string) (float64, int) {
	total, count := 0.0, 0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		total += v
		count++
	}
	return total, count
}

func (s *soak) violationf(format string, args ...any) {
	s.violations = append(s.violations, fmt.Sprintf(format, args...))
}

// dumpTraces prints the tail of every site's structured event trace:
// the diagnostic context around a violated invariant.
func (s *soak) dumpTraces() {
	for i, m := range s.mons {
		events := m.Events(30)
		fmt.Printf("-- site %d event trace (last %d of %d recorded) --\n", i+1, len(events), m.Snapshot().Trace.Recorded)
		for _, e := range events {
			b, _ := json.Marshal(e)
			fmt.Printf("  %s\n", b)
		}
	}
}

// writeSummary writes the JSON run summary to path, or stdout for "-".
func writeSummary(path string, sum summary) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}
