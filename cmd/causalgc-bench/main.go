// causalgc-bench regenerates the experiment tables of EXPERIMENTS.md
// (E5–E8, A2) as plain text. Each experiment corresponds to a figure,
// claim or comparison in the paper; see DESIGN.md §4 for the index.
//
// Usage:
//
//	causalgc-bench            # all experiments
//	causalgc-bench -exp E6    # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"causalgc/internal/baseline/schelvis"
	"causalgc/internal/baseline/tracing"
	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: E5 E6 E7 E8 A2 or all")
	flag.Parse()
	which := strings.ToUpper(*exp)
	any := which == "ALL"
	ok := true
	if any || which == "E5" {
		ok = e5() && ok
	}
	if any || which == "E6" {
		ok = e6() && ok
	}
	if any || which == "E7" {
		ok = e7() && ok
	}
	if any || which == "E8" {
		ok = e8() && ok
	}
	if any || which == "A2" {
		ok = a2() && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func e5() bool {
	fmt.Println("== E5: Fig 3/8 — collecting the distributed cycle {2,3,4} ==")
	w := sim.NewWorld(4, netsim.Faults{Seed: 1}, site.DefaultOptions())
	sc, err := mutator.BuildPaperScenario(w)
	if err != nil {
		fmt.Println("error:", err)
		return false
	}
	st := w.Net().Stats()
	base := st.TotalSent()
	if err := sc.DropRootEdge(); err != nil {
		fmt.Println("error:", err)
		return false
	}
	if err := w.Settle(); err != nil {
		fmt.Println("error:", err)
		return false
	}
	rep := w.Check()
	fmt.Printf("cycle collected: %v; GGD messages: %d (destroy=%d prop=%d)\n\n",
		rep.Clean(), st.TotalSent()-base, st.Sent("ggd.destroy"), st.Sent("ggd.prop"))
	return rep.Clean()
}

func e6() bool {
	fmt.Println("== E6: §4 — messages to collect a detached doubly-linked list ==")
	fmt.Printf("%6s %20s %14s %10s\n", "k", "causal(paper-guard)", "causal(sound)", "schelvis")
	ok := true
	for _, k := range []int{4, 8, 16, 32} {
		a, ok1 := causalDLL(k, true)
		b, ok2 := causalDLL(k, false)
		c := schelvisDLL(k)
		ok = ok && ok1 && ok2
		fmt.Printf("%6d %20d %14d %10d\n", k, a, b, c)
	}
	fmt.Println("shape: paper-guard O(k); sound O(k²) (smaller constant); schelvis O(k²)")
	fmt.Println()
	return ok
}

func causalDLL(k int, paperGuard bool) (int, bool) {
	opts := site.DefaultOptions()
	opts.Engine.UnsafeSkipConfirmation = paperGuard
	w := sim.NewWorld(k+1, netsim.Faults{Seed: 1}, opts)
	dll, err := mutator.BuildDLL(w, k)
	if err != nil {
		return 0, false
	}
	base := w.Net().Stats().TotalSent()
	if err := dll.Detach(); err != nil {
		return 0, false
	}
	if err := w.Settle(); err != nil {
		return 0, false
	}
	return w.Net().Stats().TotalSent() - base, w.Check().Clean()
}

func schelvisDLL(k int) int {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	dets := make([]*schelvis.Detector, k+1)
	for j := 0; j <= k; j++ {
		dets[j] = schelvis.New(ids.SiteID(j+1), net, k+2, nil)
	}
	root := ids.ClusterID{Site: 1, Seq: 1, Root: true}
	dets[0].AddVertex(root)
	elems := make([]ids.ClusterID, k)
	for j := 0; j < k; j++ {
		elems[j] = ids.ClusterID{Site: ids.SiteID(j + 2), Seq: 1}
		dets[j+1].AddVertex(elems[j])
		dets[0].CreateEdge(root, elems[j])
	}
	for j := 0; j+1 < k; j++ {
		dets[j+1].CreateEdge(elems[j], elems[j+1])
		dets[j+2].CreateEdge(elems[j+1], elems[j])
	}
	net.Run(0)
	for _, d := range dets {
		d.Kick()
	}
	net.Run(0)
	base := net.Stats().TotalSent()
	for _, e := range elems {
		dets[0].DestroyEdge(root, e)
	}
	net.Run(0)
	return net.Stats().TotalSent() - base
}

func e7() bool {
	fmt.Println("== E7: §1/§2.4 — tracing pays per live object; causal pays per garbage ==")
	fmt.Printf("%22s %14s %14s\n", "workload", "tracing msgs", "causal msgs")
	for _, sh := range []struct{ live, garbage int }{
		{50, 5}, {100, 5}, {200, 5}, {50, 50},
	} {
		tr := e7Tracing(sh.live, sh.garbage)
		ca := e7Causal(sh.live, sh.garbage)
		fmt.Printf("  live=%4d garbage=%3d %14d %14d\n", sh.live, sh.garbage, tr, ca)
	}
	fmt.Println("shape: tracing grows with live count; causal is constant in it")
	fmt.Println()
	return true
}

func buildE7(live, garbage int, opts site.Options) (*sim.World, func() error) {
	w := sim.NewWorld(6, netsim.Faults{Seed: 1}, opts)
	s1 := w.Site(1)
	for i := 0; i < live; i++ {
		if _, err := s1.NewRemote(s1.Root().Obj, ids.SiteID(2+i%5)); err != nil {
			panic(err)
		}
	}
	prevObj := s1.Root().Obj
	prevSite := s1
	drop := func() error { return nil }
	for i := 0; i < garbage; i++ {
		ref, err := prevSite.NewRemote(prevObj, ids.SiteID(2+i%5))
		if err != nil {
			panic(err)
		}
		if i == 0 {
			r := ref
			drop = func() error { return s1.DropRefs(s1.Root().Obj, r) }
		}
		if err := w.Run(); err != nil {
			panic(err)
		}
		prevObj = ref.Obj
		prevSite = w.Site(ref.Obj.Site)
	}
	w.Run()
	return w, drop
}

func e7Tracing(live, garbage int) int {
	w, drop := buildE7(live, garbage, site.Options{AutoCollect: false})
	col := tracing.New(w.Sites(), w.Net())
	st := w.Net().Stats()
	drop()
	w.Run()
	col.RunEpoch(func() { w.Run() })
	return st.Sent("trace.mark") + st.Sent("trace.start") + st.Sent("trace.ack")
}

func e7Causal(live, garbage int) int {
	w, drop := buildE7(live, garbage, site.DefaultOptions())
	st := w.Net().Stats()
	base := st.TotalSent()
	drop()
	w.Settle()
	return st.TotalSent() - base
}

func e8() bool {
	fmt.Println("== E8: §1/§5 — robustness under control-message loss ==")
	fmt.Printf("%10s %10s %14s %10s\n", "drop", "residual", "afterRefresh", "dangling")
	ok := true
	for _, drop := range []float64{0, 0.1, 0.3} {
		res, rec, dang := e8Run(drop)
		fmt.Printf("%10.1f %10d %14d %10d\n", drop, res, rec, dang)
		ok = ok && dang == 0
	}
	fmt.Println("safety is unconditional (dangling always 0); loss costs only latency/residual")
	fmt.Println()
	return ok
}

func e8Run(drop float64) (residual, recovered, dangling int) {
	for seed := int64(1); seed <= 5; seed++ {
		w := sim.NewWorld(5, netsim.Faults{Seed: seed, DropProb: drop, Reorder: true}, site.DefaultOptions())
		mutator.Churn(w, mutator.ChurnConfig{Seed: seed * 17, Ops: 150, StepsBetweenOps: 2})
		w.Settle()
		rep := w.Check()
		residual += len(rep.Garbage)
		dangling += len(rep.Dangling)
		w.Net().SetDropProb(0)
		for i := 0; i < 4; i++ {
			w.RefreshAll()
			w.Settle()
		}
		rep = w.Check()
		recovered += len(rep.Garbage)
		dangling += len(rep.Dangling)
	}
	return residual, recovered, dangling
}

func a2() bool {
	fmt.Println("== A2: ablation — the paper's literal removal guard is unsound ==")
	sound := a2Run(false)
	unsafe := a2Run(true)
	fmt.Printf("dangling references over 10 churn seeds: sound=%d paper-guard=%d\n", sound, unsafe)
	fmt.Println("(the row-confirmation guard and introduction hints close the race)")
	fmt.Println()
	return sound == 0
}

func a2Run(unsafeGuard bool) int {
	opts := site.DefaultOptions()
	opts.Engine.UnsafeSkipConfirmation = unsafeGuard
	opts.Engine.UnsafeNoHints = unsafeGuard
	dangling := 0
	for seed := int64(1); seed <= 10; seed++ {
		w := sim.NewWorld(6, netsim.Faults{Seed: seed}, opts)
		mutator.Churn(w, mutator.ChurnConfig{Seed: seed * 7, Ops: 150, StepsBetweenOps: 3})
		w.Settle()
		dangling += len(w.Check().Dangling)
	}
	return dangling
}
