package netsim

import (
	"sync"
	"testing"

	"causalgc/internal/ids"
)

// ping is a trivial test payload.
type ping struct {
	n int
}

func (p ping) Kind() string    { return "ping" }
func (p ping) ApproxSize() int { return 8 }

func TestSimDeliversFIFOPerChannel(t *testing.T) {
	s := NewSim(Faults{Seed: 1})
	var got []int
	s.Register(2, func(from ids.SiteID, p Payload) {
		got = append(got, p.(ping).n)
	})
	for i := 0; i < 10; i++ {
		s.Send(1, 2, ping{n: i})
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
	if s.Deliveries() != 10 {
		t.Errorf("Deliveries = %d, want 10", s.Deliveries())
	}
}

func TestSimReorder(t *testing.T) {
	// With reordering enabled and many messages, delivery order must
	// differ from send order for at least one seed (probabilistic but
	// deterministic given the seed).
	s := NewSim(Faults{Seed: 42, Reorder: true})
	var got []int
	s.Register(2, func(from ids.SiteID, p Payload) {
		got = append(got, p.(ping).n)
	})
	for i := 0; i < 50; i++ {
		s.Send(1, 2, ping{n: i})
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	inOrder := true
	for i, v := range got {
		if v != i {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("reordering produced a perfectly ordered run; suspicious")
	}
	if len(got) != 50 {
		t.Errorf("delivered %d, want 50", len(got))
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []int {
		s := NewSim(Faults{Seed: 7, Reorder: true, DropProb: 0.2, DupProb: 0.2})
		var got []int
		for site := ids.SiteID(2); site <= 4; site++ {
			site := site
			s.Register(site, func(from ids.SiteID, p Payload) {
				got = append(got, int(site)*1000+p.(ping).n)
			})
		}
		for i := 0; i < 30; i++ {
			s.Send(1, ids.SiteID(2+i%3), ping{n: i})
		}
		if _, err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSimDrop(t *testing.T) {
	s := NewSim(Faults{Seed: 3, DropProb: 1.0})
	delivered := 0
	s.Register(2, func(from ids.SiteID, p Payload) { delivered++ })
	for i := 0; i < 5; i++ {
		s.Send(1, 2, ping{n: i})
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Errorf("delivered %d with DropProb=1, want 0", delivered)
	}
	sent, del, dropped, _, _ := s.Stats().Kind("ping")
	if sent != 5 || del != 0 || dropped != 5 {
		t.Errorf("stats sent=%d delivered=%d dropped=%d, want 5/0/5", sent, del, dropped)
	}
}

func TestSimDuplicate(t *testing.T) {
	s := NewSim(Faults{Seed: 3, DupProb: 1.0})
	delivered := 0
	s.Register(2, func(from ids.SiteID, p Payload) { delivered++ })
	s.Send(1, 2, ping{n: 1})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Errorf("delivered %d with DupProb=1, want 2", delivered)
	}
}

func TestSimPartition(t *testing.T) {
	s := NewSim(Faults{Seed: 3})
	s.SetPartition(func(from, to ids.SiteID) bool { return to == 2 })
	d2, d3 := 0, 0
	s.Register(2, func(ids.SiteID, Payload) { d2++ })
	s.Register(3, func(ids.SiteID, Payload) { d3++ })
	s.Send(1, 2, ping{})
	s.Send(1, 3, ping{})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if d2 != 0 || d3 != 1 {
		t.Errorf("partition: d2=%d d3=%d, want 0,1", d2, d3)
	}
	s.SetPartition(nil)
	s.Send(1, 2, ping{})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if d2 != 1 {
		t.Errorf("healed partition: d2=%d, want 1", d2)
	}
}

func TestSimHandlerMaySend(t *testing.T) {
	// A handler that sends during delivery (the GGD propagation pattern)
	// must not deadlock or be lost.
	s := NewSim(Faults{Seed: 1})
	hops := 0
	s.Register(1, func(from ids.SiteID, p Payload) {
		hops++
		if n := p.(ping).n; n > 0 {
			s.Send(1, 2, ping{n: n - 1})
		}
	})
	s.Register(2, func(from ids.SiteID, p Payload) {
		hops++
		s.Send(2, 1, p)
	})
	s.Send(2, 1, ping{n: 4})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	// 1 receives 4,3,2,1,0 (5 deliveries), 2 receives 4,3,2,1 (4).
	if hops != 9 {
		t.Errorf("hops = %d, want 9", hops)
	}
}

func TestSimRunBudget(t *testing.T) {
	s := NewSim(Faults{Seed: 1})
	// Infinite ping-pong: the budget must trip.
	s.Register(1, func(from ids.SiteID, p Payload) { s.Send(1, 2, p) })
	s.Register(2, func(from ids.SiteID, p Payload) { s.Send(2, 1, p) })
	s.Send(1, 2, ping{})
	if _, err := s.Run(100); err == nil {
		t.Fatal("Run must report an exhausted budget with messages pending")
	}
}

func TestSimUnregisteredDestination(t *testing.T) {
	s := NewSim(Faults{Seed: 1})
	s.Send(1, 9, ping{})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	_, _, dropped, _, _ := s.Stats().Kind("ping")
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1 (straggler to unknown site)", dropped)
	}
}

func TestStatsAccounting(t *testing.T) {
	st := NewStats()
	st.RecordSent(ping{})
	st.RecordSent(ping{})
	st.RecordDelivered(ping{})
	st.RecordDropped(ping{})
	st.RecordDuplicated(ping{})
	sent, del, drop, dup, bytes := st.Kind("ping")
	if sent != 2 || del != 1 || drop != 1 || dup != 1 || bytes != 16 {
		t.Errorf("got %d/%d/%d/%d/%d", sent, del, drop, dup, bytes)
	}
	if st.TotalSent() != 2 {
		t.Errorf("TotalSent = %d", st.TotalSent())
	}
	if st.TotalBytes() != 16 {
		t.Errorf("TotalBytes = %d", st.TotalBytes())
	}
	if st.Sent("ping") != 2 || st.Delivered("ping") != 1 {
		t.Error("Sent/Delivered accessors wrong")
	}
	if st.String() == "" {
		t.Error("String should render something")
	}
	st.Reset()
	if st.TotalSent() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestAsyncDelivery(t *testing.T) {
	n := NewAsync(Faults{Seed: 1})
	defer n.Close()

	var mu sync.Mutex
	got := make(map[int]bool)
	done := make(chan struct{})
	n.Register(2, func(from ids.SiteID, p Payload) {
		mu.Lock()
		got[p.(ping).n] = true
		full := len(got) == 20
		mu.Unlock()
		if full {
			close(done)
		}
	})
	for i := 0; i < 20; i++ {
		n.Send(1, 2, ping{n: i})
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 20; i++ {
		if !got[i] {
			t.Fatalf("message %d not delivered", i)
		}
	}
}

func TestAsyncHandlerMaySend(t *testing.T) {
	n := NewAsync(Faults{Seed: 1})
	defer n.Close()

	done := make(chan struct{})
	n.Register(1, func(from ids.SiteID, p Payload) {
		if v := p.(ping).n; v > 0 {
			n.Send(1, 2, ping{n: v - 1})
		} else {
			close(done)
		}
	})
	n.Register(2, func(from ids.SiteID, p Payload) {
		n.Send(2, 1, p)
	})
	n.Send(9, 1, ping{n: 10})
	<-done
}

func TestAsyncQuiesce(t *testing.T) {
	n := NewAsync(Faults{Seed: 1})
	defer n.Close()

	var mu sync.Mutex
	count := 0
	n.Register(1, func(from ids.SiteID, p Payload) {
		if v := p.(ping).n; v > 0 {
			n.Send(1, 1, ping{n: v - 1})
		}
		mu.Lock()
		count++
		mu.Unlock()
	})
	n.Send(9, 1, ping{n: 50})
	n.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if count != 51 {
		t.Errorf("count = %d at quiescence, want 51", count)
	}
}

func TestAsyncCloseIdempotentAndDropsLateSends(t *testing.T) {
	n := NewAsync(Faults{Seed: 1})
	n.Register(1, func(ids.SiteID, Payload) {})
	n.Close()
	n.Close() // must not panic or deadlock
	n.Send(1, 1, ping{})
	_, _, dropped, _, _ := n.Stats().Kind("ping")
	if dropped != 1 {
		t.Errorf("late send dropped = %d, want 1", dropped)
	}
}

func TestAsyncSendToUnknownSiteDropped(t *testing.T) {
	n := NewAsync(Faults{Seed: 1})
	defer n.Close()
	n.Send(1, 42, ping{})
	_, _, dropped, _, _ := n.Stats().Kind("ping")
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}
