package transport_test

import (
	"sync"
	"testing"
	"time"

	"causalgc/internal/wire"
	"causalgc/transport"
)

// wirePayloads is one instance of every wire message the transports
// carry, with the fault-eligibility the protocol's recovery argument
// assumes: mutator traffic (creates, transfers, batch envelopes) is
// reliable, GGD control traffic tolerates loss.
var wirePayloads = []struct {
	name          string
	p             transport.Payload
	faultEligible bool
}{
	{"create", wire.Create{}, false},
	{"ref", wire.RefTransfer{}, false},
	{"destroy", wire.Destroy{}, true},
	{"propagate", wire.Propagate{}, true},
	{"assert", wire.Assert{}, true},
	{"hintack", wire.HintAck{}, true},
	{"frameack", wire.FrameAck{}, true},
	{"advance", wire.StreamAdvance{}, true},
	{"envelope-mut", wire.Envelope{Frames: []transport.Payload{wire.Create{}}}, false},
	{"envelope-ctl", wire.Envelope{Frames: []transport.Payload{wire.FrameAck{}}}, true},
}

// TestPayloadContract pins the Payload interface contract for every wire
// message: a non-empty stable kind, a positive size estimate, and the
// fault-eligibility split between mutator and control planes.
func TestPayloadContract(t *testing.T) {
	seen := map[string]bool{}
	for _, tc := range wirePayloads {
		kind := tc.p.Kind()
		if kind == "" {
			t.Errorf("%s: empty Kind", tc.name)
		}
		if tc.p.ApproxSize() <= 0 {
			t.Errorf("%s: ApproxSize %d, want > 0", tc.name, tc.p.ApproxSize())
		}
		if got := transport.FaultEligible(tc.p); got != tc.faultEligible {
			t.Errorf("%s: FaultEligible = %v, want %v", tc.name, got, tc.faultEligible)
		}
		seen[kind] = true
	}
	// An envelope's size covers its inner frames, not just the framing.
	env := wire.Envelope{Frames: []transport.Payload{wire.Create{}, wire.FrameAck{}}}
	if env.ApproxSize() <= (wire.Create{}).ApproxSize() {
		t.Errorf("envelope ApproxSize %d does not cover inner frames", env.ApproxSize())
	}
}

// TestStatsAccounting exercises the Stats surface through a
// deterministic transport with a fault plan: sends, deliveries, drops
// and duplications must reconcile, per kind and in the snapshot.
func TestStatsAccounting(t *testing.T) {
	tr := transport.NewDeterministic(transport.Faults{Seed: 7, DropProb: 0.3, DupProb: 0.2})
	delivered := 0
	tr.Register(1, func(from transport.SiteID, p transport.Payload) { delivered++ })

	const sends = 200
	for i := 0; i < sends; i++ {
		tr.Send(2, 1, wire.FrameAck{}) // control: fault-eligible
		tr.Send(2, 1, wire.Create{})   // mutator: exempt
	}
	if !tr.Drain(time.Second) {
		t.Fatal("deterministic transport did not drain")
	}

	sent, del, dropped, dup, bytes := tr.Stats().Kind(wire.KindFrameAck)
	if sent != sends {
		t.Errorf("frameack sent = %d, want %d", sent, sends)
	}
	if del+dropped != sent+dup {
		t.Errorf("frameack accounting broken: sent=%d delivered=%d dropped=%d dup=%d", sent, del, dropped, dup)
	}
	if dropped == 0 || dup == 0 {
		t.Errorf("fault plan never fired: dropped=%d dup=%d", dropped, dup)
	}
	if want := sends * (wire.FrameAck{}).ApproxSize(); bytes != want {
		t.Errorf("frameack bytes = %d, want %d", bytes, want)
	}

	// Application traffic is exempt from the same fault plan.
	if _, cdel, cdropped, cdup, _ := tr.Stats().Kind(wire.KindCreate); cdel != sends || cdropped != 0 || cdup != 0 {
		t.Errorf("create traffic faulted: delivered=%d dropped=%d dup=%d", cdel, cdropped, cdup)
	}
	// Delivered already counts duplicated copies (each duplicate is a
	// second enqueue, delivered and recorded like any other message).
	if delivered != del+sends {
		t.Errorf("handler saw %d deliveries, stats say %d", delivered, del+sends)
	}

	// The snapshot mirrors the per-kind accessors and totals.
	snap := tr.Stats().Snapshot()
	ks, ok := snap[wire.KindFrameAck]
	if !ok || ks.Sent != sent || ks.Delivered != del || ks.Dropped != dropped || ks.Duplicated != dup || ks.Bytes != bytes {
		t.Errorf("Snapshot[frameack] = %+v, want sent=%d delivered=%d dropped=%d dup=%d bytes=%d",
			ks, sent, del, dropped, dup, bytes)
	}
	total := 0
	for _, k := range snap {
		total += k.Sent
	}
	if total != tr.Stats().TotalSent() {
		t.Errorf("snapshot total sent %d != TotalSent %d", total, tr.Stats().TotalSent())
	}

	tr.Stats().Reset()
	if tr.Stats().TotalSent() != 0 || len(tr.Stats().Snapshot()) != 0 {
		t.Error("Reset did not clear the counters")
	}
}

// Both in-memory backends advertise the Drain capability.
var (
	_ transport.Drainer = (*transport.Deterministic)(nil)
	_ transport.Drainer = (*transport.Async)(nil)
)

// TestDeterministicDrain: Drain on the simulator delivers everything
// queued, cascades included.
func TestDeterministicDrain(t *testing.T) {
	tr := transport.NewDeterministic(transport.Faults{Seed: 1})
	got := 0
	tr.Register(1, func(from transport.SiteID, p transport.Payload) { got++ })
	tr.Register(2, func(from transport.SiteID, p transport.Payload) {
		// A delivery that sends again: Drain must chase the cascade.
		tr.Send(2, 1, wire.FrameAck{})
	})
	for i := 0; i < 10; i++ {
		tr.Send(1, 2, wire.FrameAck{})
	}
	if !tr.Drain(time.Second) {
		t.Fatal("Drain reported failure on a quiet network")
	}
	if tr.Pending() != 0 || got != 10 {
		t.Errorf("after Drain: pending=%d cascaded deliveries=%d (want 0, 10)", tr.Pending(), got)
	}
}

// TestAsyncDrain: Drain on the concurrent backend waits for queues and
// in-flight handlers, and respects its timeout when a handler wedges.
func TestAsyncDrain(t *testing.T) {
	tr := transport.NewAsync(transport.Faults{})
	defer tr.Close()

	var mu sync.Mutex
	got := 0
	release := make(chan struct{})
	tr.Register(1, func(from transport.SiteID, p transport.Payload) {
		<-release
		mu.Lock()
		got++
		mu.Unlock()
	})

	tr.Send(2, 1, wire.FrameAck{})
	// The handler is blocked: a short Drain must time out, not hang.
	if tr.Drain(20 * time.Millisecond) {
		t.Error("Drain reported idle while a handler was in flight")
	}
	close(release)
	if !tr.Drain(2 * time.Second) {
		t.Fatal("Drain timed out after the handler unblocked")
	}
	mu.Lock()
	defer mu.Unlock()
	if got != 1 {
		t.Errorf("delivered %d, want 1", got)
	}
}
