package eval

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// TestRunResultsE5 runs the cheapest experiment end to end and checks
// the structured result carries the verdict and headline metrics that
// the printed table shows.
func TestRunResultsE5(t *testing.T) {
	var buf bytes.Buffer
	results, ok := RunResults(&buf, "e5")
	if !ok {
		t.Fatalf("E5 failed:\n%s", buf.String())
	}
	if len(results) != 1 || results[0].Experiment != "E5" {
		t.Fatalf("results = %+v, want one E5 entry", results)
	}
	r := results[0]
	if !r.Pass {
		t.Error("E5 result not passing")
	}
	if r.Metrics["cycle_collected"] != 1 {
		t.Errorf("cycle_collected = %v, want 1", r.Metrics["cycle_collected"])
	}
	if r.Metrics["ggd_messages"] <= 0 {
		t.Errorf("ggd_messages = %v, want > 0", r.Metrics["ggd_messages"])
	}
	if buf.Len() == 0 {
		t.Error("RunResults printed no human table")
	}
}

// TestRunResultsUnknown: an unknown identifier yields no results and a
// failing verdict, matching Run's contract.
func TestRunResultsUnknown(t *testing.T) {
	results, ok := RunResults(io.Discard, "E99")
	if ok || results != nil {
		t.Errorf("RunResults(E99) = %v, %v; want nil, false", results, ok)
	}
	if Run(io.Discard, "E99") {
		t.Error("Run(E99) reported success")
	}
}

// TestWriteJSON round-trips the artifact format.
func TestWriteJSON(t *testing.T) {
	in := []Result{
		{Experiment: "E5", Pass: true, Metrics: map[string]float64{"ggd_messages": 12}},
		{Experiment: "A2", Pass: false, Metrics: map[string]float64{"dangling_sound": 0}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Result
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 2 || out[0].Experiment != "E5" || !out[0].Pass ||
		out[0].Metrics["ggd_messages"] != 12 || out[1].Pass {
		t.Errorf("round-trip mismatch: %+v", out)
	}
}
