// churn runs a large randomised workload across sites with injected
// message loss, checks the safety invariant against the global oracle,
// and demonstrates residual-garbage recovery by refresh rounds (§5).
// Programs against the public causalgc API only.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"causalgc"
	"causalgc/transport"
)

func main() {
	det := transport.NewDeterministic(transport.Faults{Seed: 7, DropProb: 0.2, Reorder: true})
	c := causalgc.NewCluster(8, causalgc.WithTransport(det))
	stats, err := causalgc.Churn(c, causalgc.ChurnConfig{Seed: 99, Ops: 1000, StepsBetweenOps: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		log.Fatal(err)
	}
	rep := c.Check()
	fmt.Printf("workload: %+v\n", stats)
	fmt.Printf("after lossy run:  %v  (safety holds: %v)\n", rep, rep.Safe())

	// Heal the network and run recovery refresh rounds.
	det.SetDropProb(0)
	for i := 0; i < 4; i++ {
		if err := c.RefreshAll(); err != nil {
			log.Fatal(err)
		}
		if err := c.Settle(); err != nil {
			log.Fatal(err)
		}
	}
	rep = c.Check()
	fmt.Printf("after recovery:   %v  (safety holds: %v)\n", rep, rep.Safe())
	fmt.Printf("\ntraffic:\n%s", det.Stats())
}
