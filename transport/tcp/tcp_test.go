package tcp_test

import (
	"net"
	"testing"
	"time"

	"causalgc"
	"causalgc/transport/tcp"
)

// dial returns two loopback TCP transports wired to each other, hosting
// site 1 and site 2 respectively, so every inter-site message crosses a
// real socket.
func pair(t *testing.T) (*tcp.Network, *tcp.Network) {
	t.Helper()
	netA, err := tcp.New(tcp.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	netB, err := tcp.New(tcp.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		netA.Close()
		t.Fatal(err)
	}
	netA.SetPeer(2, netB.Addr().String())
	netB.SetPeer(1, netA.Addr().String())
	t.Cleanup(func() {
		netA.Close()
		netB.Close()
	})
	return netA, netB
}

// settle drives both nodes (collect + refresh) until the predicate holds
// or the deadline passes. Refresh rounds make progress independent of
// message arrival order, so the loop converges without a global view.
func settle(t *testing.T, nodes []*causalgc.Node, deadline time.Duration, done func() bool) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if done() {
			return
		}
		for _, n := range nodes {
			n.Collect()
			n.Refresh()
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", deadline)
}

// TestLoopbackCycleReclaimed runs the GGD round trip over real sockets:
// site 1 creates an object on site 2, the remote object is handed a
// reference back (a two-site cycle), the root reference is dropped, and
// the distributed cycle must be detected and reclaimed on both ends.
func TestLoopbackCycleReclaimed(t *testing.T) {
	netA, netB := pair(t)
	n1 := causalgc.NewNode(1, causalgc.WithTransport(netA))
	n2 := causalgc.NewNode(2, causalgc.WithTransport(netB))
	nodes := []*causalgc.Node{n1, n2}

	// Remote create: a lives on site 2, held by site 1's root.
	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	settle(t, nodes, 5*time.Second, func() bool { return n2.HasObject(a.Obj) })

	// Site 2 creates b back on site 1 and closes the cycle a ⇄ b.
	b, err := n2.NewRemote(a.Obj, 1)
	if err != nil {
		t.Fatal(err)
	}
	settle(t, nodes, 5*time.Second, func() bool { return n1.HasObject(b.Obj) })
	if err := n2.SendRef(a.Obj, b, a); err != nil {
		t.Fatal(err)
	}
	// Wait until b actually holds a ref to a (the transfer crossed the
	// socket) before dropping the root edge.
	settle(t, nodes, 5*time.Second, func() bool {
		for _, o := range n1.Objects() {
			if o.Obj == b.Obj {
				return n1.NumObjects() == 2
			}
		}
		return false
	})

	// Drop the only root reference: {a, b} is now a distributed cycle of
	// garbage spanning two processes' worth of transports.
	if err := n1.DropRefs(n1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	settle(t, nodes, 10*time.Second, func() bool {
		return n1.NumObjects() == 1 && n2.NumObjects() == 1
	})

	if !n2.ClusterRemoved(a.Cluster) {
		t.Error("site 2 did not remove a's cluster")
	}
	if !n1.ClusterRemoved(b.Cluster) {
		t.Error("site 1 did not remove b's cluster")
	}
	if rep := causalgc.Check(n1, n2); !rep.Clean() {
		t.Errorf("oracle not clean: %v", rep)
	}

	// The cycle really crossed sockets: both transports carried traffic.
	if netA.Stats().TotalSent() == 0 || netB.Stats().TotalSent() == 0 {
		t.Error("no socket traffic recorded")
	}
}

// TestReconnect checks that a peer that starts late still receives
// frames: the writer redials the known address with backoff instead of
// losing the mutator message.
func TestReconnect(t *testing.T) {
	// Reserve an address for site 2 without a process behind it yet.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := probe.Addr().String()
	probe.Close()

	netA, err := tcp.New(tcp.Config{
		Listen:      "127.0.0.1:0",
		Peers:       map[causalgc.SiteID]string{2: addrB},
		MaxBackoff:  50 * time.Millisecond,
		DialTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netA.Close() })
	n1 := causalgc.NewNode(1, causalgc.WithTransport(netA))

	// Send towards site 2 before its process exists: the frame queues
	// and the writer keeps redialing.
	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let a few dials fail

	// Now site 2 comes up on its announced address.
	netB, err := tcp.New(tcp.Config{
		Listen: addrB,
		Peers:  map[causalgc.SiteID]string{1: netA.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netB.Close() })
	n2 := causalgc.NewNode(2, causalgc.WithTransport(netB))

	deadline := time.Now().Add(10 * time.Second)
	for !n2.HasObject(a.Obj) {
		if time.Now().After(deadline) {
			t.Fatal("creation message never arrived after reconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClosePromptWithDeadPeer: a writer stuck in its dial/backoff loop
// against a dead peer must not hold Close up — the cancelled dial and
// interruptible backoff release the goroutine immediately.
func TestClosePromptWithDeadPeer(t *testing.T) {
	// Reserve a port, then close it: nothing listens there, so every
	// dial fails and the writer lives in its reconnect loop.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	netA, err := tcp.New(tcp.Config{
		Listen:      "127.0.0.1:0",
		Peers:       map[causalgc.SiteID]string{2: deadAddr},
		DialTimeout: 30 * time.Second, // a dial that would block far past the test
		MaxBackoff:  30 * time.Second, // a backoff sleep that would too
	})
	if err != nil {
		t.Fatal(err)
	}
	n1 := causalgc.NewNode(1, causalgc.WithTransport(netA))
	if _, err := n1.NewRemote(n1.Root().Obj, 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the writer enter its loop

	done := make(chan error, 1)
	go func() { done <- netA.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind the reconnect loop")
	}
}
