package mutator_test

import (
	"testing"

	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

func TestBuildPaperScenarioShape(t *testing.T) {
	w := sim.NewWorld(4, netsim.Faults{Seed: 1}, site.DefaultOptions())
	sc, err := mutator.BuildPaperScenario(w)
	if err != nil {
		t.Fatal(err)
	}
	// One object per site 2..4, plus four roots.
	if got := w.TotalObjects(); got != 7 {
		t.Errorf("TotalObjects = %d, want 7", got)
	}
	for _, ref := range []struct {
		name string
		site uint32
	}{{"obj2", 2}, {"obj3", 3}, {"obj4", 4}} {
		_ = ref
	}
	if sc.Obj2.Obj.Site != 2 || sc.Obj3.Obj.Site != 3 || sc.Obj4.Obj.Site != 4 {
		t.Errorf("placement wrong: %v %v %v", sc.Obj2, sc.Obj3, sc.Obj4)
	}
	if rep := w.Check(); !rep.Clean() {
		t.Errorf("fresh scenario not clean: %v", rep)
	}
	// Drop and settle: only the roots remain.
	if err := sc.DropRootEdge(); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := w.TotalObjects(); got != 4 {
		t.Errorf("TotalObjects after drop = %d, want 4", got)
	}
}

func TestBuildDLLShapeAndDetach(t *testing.T) {
	const k = 5
	w := sim.NewWorld(k+1, netsim.Faults{Seed: 1}, site.DefaultOptions())
	dll, err := mutator.BuildDLL(w, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(dll.Elems) != k {
		t.Fatalf("Elems = %d", len(dll.Elems))
	}
	for i, e := range dll.Elems {
		if int(e.Obj.Site) != i+2 {
			t.Errorf("element %d on site %v, want s%d", i, e.Obj.Site, i+2)
		}
	}
	if rep := w.Check(); !rep.Clean() {
		t.Fatalf("built DLL not clean: %v", rep)
	}
	if err := dll.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	rep := w.Check()
	if !rep.Safe() || len(rep.Garbage) != 0 {
		t.Fatalf("after detach: %v", rep)
	}
	if got := w.TotalObjects(); got != k+1 {
		t.Errorf("TotalObjects = %d, want %d roots", got, k+1)
	}
	if _, err := mutator.BuildDLL(w, 0); err == nil {
		t.Error("k=0 must error")
	}
}

func TestBuildRingShapeAndDetach(t *testing.T) {
	const k = 6
	w := sim.NewWorld(k+1, netsim.Faults{Seed: 1}, site.DefaultOptions())
	ring, err := mutator.BuildRing(w, k)
	if err != nil {
		t.Fatal(err)
	}
	// After narrowing, only one root edge remains; everything is live.
	if rep := w.Check(); !rep.Clean() {
		t.Fatalf("built ring not clean: %v", rep)
	}
	if got := w.TotalObjects(); got != 2*k+1 {
		t.Errorf("TotalObjects = %d, want %d", got, 2*k+1)
	}
	if err := ring.DetachRing(); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	rep := w.Check()
	if !rep.Safe() || len(rep.Garbage) != 0 {
		t.Fatalf("after detach: %v", rep)
	}
	if _, err := mutator.BuildRing(w, 0); err == nil {
		t.Error("k=0 must error")
	}
}

func TestChurnLegality(t *testing.T) {
	w := sim.NewWorld(4, netsim.Faults{Seed: 5}, site.DefaultOptions())
	stats, err := mutator.Churn(w, mutator.ChurnConfig{Seed: 9, Ops: 120, StepsBetweenOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Creates == 0 || stats.Shares == 0 || stats.Drops == 0 {
		t.Errorf("degenerate mix: %+v", stats)
	}
	total := stats.Creates + stats.Shares + stats.Drops + stats.Skipped
	if total != 120 {
		t.Errorf("ops accounted = %d, want 120", total)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	if rep := w.Check(); !rep.Safe() {
		t.Fatalf("churn unsafe: %v", rep)
	}
}

func TestChurnCustomWeights(t *testing.T) {
	w := sim.NewWorld(3, netsim.Faults{Seed: 2}, site.DefaultOptions())
	stats, err := mutator.Churn(w, mutator.ChurnConfig{
		Seed: 3, Ops: 50, PCreate: 1, PShare: 0, PDrop: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shares != 0 || stats.Drops != 0 {
		t.Errorf("weights ignored: %+v", stats)
	}
}
