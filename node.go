package causalgc

import (
	"fmt"
	"runtime"
	"time"

	"causalgc/internal/site"
	"causalgc/internal/wire"
	"causalgc/monitor"
	"causalgc/transport"
)

// Option configures a Node (and, when passed to NewCluster, every node
// of the cluster).
type Option func(*config)

type config struct {
	site          site.Options
	tr            transport.Transport
	persistDir    string
	snapshotEvery int
	noSync        bool
	groupCommit   time.Duration
	monitor       *monitor.Monitor
	metricsAddr   string
	shards        int
}

// setupMonitor composes the configured monitor into the node's observer
// slot — creating one when a metrics address was given without a
// monitor — so it records events alongside any user observer. Must run
// before the runtime is built.
func (c *config) setupMonitor() {
	if c.metricsAddr != "" && c.monitor == nil {
		c.monitor = monitor.New(0)
	}
	if c.monitor != nil {
		c.site.Observer = site.Fanout(c.monitor, c.site.Observer)
	}
}

func newConfig(opts []Option) config {
	c := config{site: site.DefaultOptions()}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// validate rejects nonsensical option values with typed errors
// (ErrBadOption): a negative snapshot cadence, group-commit window,
// re-send backoff cap or envelope frame cap has no meaning, and
// accepting one silently would misconfigure the node.
func (c config) validate() error {
	if c.snapshotEvery < 0 {
		return fmt.Errorf("%w: WithSnapshotEvery(%d) must be non-negative", ErrBadOption, c.snapshotEvery)
	}
	if c.groupCommit < 0 {
		return fmt.Errorf("%w: WithGroupCommit(%v) must be non-negative", ErrBadOption, c.groupCommit)
	}
	if c.site.Engine.ResendBackoffCap < 0 {
		return fmt.Errorf("%w: WithResendBackoff(%d) must be non-negative", ErrBadOption, c.site.Engine.ResendBackoffCap)
	}
	if c.site.MaxBatchFrames < 0 {
		return fmt.Errorf("%w: WithMaxBatchFrames(%d) must be non-negative", ErrBadOption, c.site.MaxBatchFrames)
	}
	return nil
}

// WithAutoCollect controls whether a node runs a local collection
// whenever GGD removes one of its clusters, so reclamation cascades
// without explicit Collect calls. Default: on.
func WithAutoCollect(on bool) Option {
	return func(c *config) { c.site.AutoCollect = on }
}

// WithEngineOptions tunes the node's GGD engine: the unsafe ablation
// switches and the removal trace observer.
func WithEngineOptions(e EngineOptions) Option {
	return func(c *config) { c.site.Engine = e }
}

// WithTransport attaches the node to an existing transport instead of a
// private one. The caller keeps ownership: Node.Close will not close it.
func WithTransport(t transport.Transport) Option {
	return func(c *config) { c.tr = t }
}

// WithObserver installs a metrics observer. Callbacks run under the
// node's internal lock and must not call back into the Node. After a
// crash recovery the observer sees replayed events again (removals and
// collections re-fire during the WAL replay).
func WithObserver(o Observer) Option {
	return func(c *config) { c.site.Observer = o }
}

// WithResendBackoff caps the exponential re-send damper of the
// acknowledged-retirement protocol (DESIGN.md §3.2), in refresh
// rounds. Un-acknowledged re-send state — journaled edge-asserts,
// destroyed-edge bundles, retained finalisation bundles, outbox
// mutator frames — is re-shipped on the first refresh round after it
// was sent, then at exponentially growing round intervals (1, 2, 4,
// ...) up to this cap, so long-lived systems stop re-shipping the same
// rows every round while genuinely lost frames are still retried
// promptly. Zero keeps the default cap (64 rounds); 1 re-sends every
// round (damping off). The damper re-arms when a peer restarts (its
// recovery epoch changes) and whenever the underlying row changes.
func WithResendBackoff(capRounds int) Option {
	return func(c *config) { c.site.Engine.ResendBackoffCap = capRounds }
}

// WithPersistence makes the node durable: every relevant mutator and
// GGD event is appended to a write-ahead log under dir before it takes
// effect, and the full site image is snapshotted periodically (the log
// is truncated at each snapshot). A node killed at any instant is
// reconstructed by Recover over the same directory. One directory
// serves exactly one site; NewCluster derives a per-site subdirectory.
//
// Prefer Recover as the constructor for persistent nodes — it both
// starts fresh directories and resumes existing ones, and it reports
// I/O errors instead of panicking.
func WithPersistence(dir string) Option {
	return func(c *config) { c.persistDir = dir }
}

// WithSnapshotEvery tunes how many WAL records accumulate between
// snapshots (default 1024). Smaller values bound recovery replay time;
// larger values reduce snapshot I/O.
func WithSnapshotEvery(records int) Option {
	return func(c *config) { c.snapshotEvery = records }
}

// WithNoSync disables fsync on the persistence layer: much faster, but
// an OS crash may lose the unsynced WAL tail (a process crash may not).
// Reserved for simulation and benchmarks.
func WithNoSync() Option {
	return func(c *config) { c.noSync = true }
}

// WithMaxBatchFrames caps how many wire frames a batch commit (or the
// dispatch of a received envelope) coalesces into one envelope per
// destination; larger groups flush in several envelopes. Zero keeps
// the default (256). See Node.Batch and DESIGN.md §3.3.
func WithMaxBatchFrames(frames int) Option {
	return func(c *config) { c.site.MaxBatchFrames = frames }
}

// WithMonitor attaches a metrics monitor to the node: the monitor's
// event recorder joins the observer slot (composed with any WithObserver
// observer via the event fanout, displacing neither) and its snapshot
// sources are bound to the node's stats surfaces. The caller keeps the
// monitor — serve it with monitor.NewServer, or let WithMetricsAddr do
// so. When passed to NewCluster, the supplied monitor serves site 1 and
// the remaining sites get fresh ones; read them back with Node.Monitor.
// A monitor handed to a recovered node re-attaches: its trace carries
// across the restart while per-session counters restart.
func WithMonitor(m *monitor.Monitor) Option {
	return func(c *config) { c.monitor = m }
}

// WithMetricsAddr serves the node's monitor over HTTP at addr
// (host:port; port 0 picks an ephemeral one, read back with
// Node.MetricsAddr): Prometheus text at /metrics, JSON snapshots at
// /metrics.json, the structured event trace at /trace. A monitor is
// created if WithMonitor supplied none. The node owns the server and
// closes it in Close. On NewCluster the cluster starts one server
// covering every node instead (read its address with
// Cluster.MetricsAddr). An empty addr disables serving.
func WithMetricsAddr(addr string) Option {
	return func(c *config) { c.metricsAddr = addr }
}

// WithShards stripes the node's heap, GGD engine and outbound
// coalescer over n lock shards, keyed by cluster: commits against
// clusters on different shards proceed under different locks, so
// multi-core mutators scale near-linearly (see
// BenchmarkParallelCommit) instead of serialising on one site mutex.
// n < 1 picks runtime.GOMAXPROCS(0). Cross-shard operations ride a
// deterministic ordered handoff queue and reuse the acknowledged-
// retirement machinery, so every protocol invariant — journal-before-
// send included — survives striping (DESIGN.md §3.4).
//
// The stripe width is sticky per persistence directory: a journal
// written with k shards recovers with k shards regardless of the
// option, and a node built without WithShards refuses a multi-shard
// journal. Without this option the node runs the classic single-lock
// runtime.
func WithShards(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = runtime.GOMAXPROCS(0)
		}
		c.shards = n
	}
}

// WithGroupCommit batches the write-ahead log's fsync across the
// mutator's op stream: records are written immediately but synced only
// once per window, cutting the per-operation durability tax an order of
// magnitude for write-heavy workloads (see BenchmarkWALAppend). A
// process crash (kill -9 included) still loses nothing — page-cache
// writes survive it, so kill-and-restart recovery is as strong as with
// per-record fsync. An OS crash (power loss, kernel panic) may lose up
// to one window of the newest records; since operations proceed before
// the deferred sync, messages derived from those records may already
// have reached peers, relaxing the journal-before-send invariant the
// same way WithNoSync does — bounded to one window instead of
// unbounded. Use it where that OS-crash exposure is acceptable. Zero
// keeps per-record fsync; ignored under WithNoSync.
func WithGroupCommit(window time.Duration) Option {
	return func(c *config) { c.groupCommit = window }
}

// Node is one causalgc site: a heap, a local collector and a GGD engine,
// attached to a transport. The node itself serialises its own state, so
// methods are safe for concurrent use whenever the underlying transport
// is: the concurrent in-memory backend (NewNode's default) and the TCP
// backend both are. The deterministic simulator is single-threaded by
// design — a Node or Cluster over it (NewCluster's default) must be
// driven from one goroutine.
//
// The mutator API models an application's reference manipulations. Every
// reference-holding object is identified by its ObjectID; each node has a
// root object (Root) whose slots are the application's named references —
// anything unreachable from the union of all roots is garbage and will be
// detected, distributed cycles included.
//
// After Close, mutator and collection operations return ErrNodeClosed;
// read-only introspection keeps answering from the frozen state.
type Node struct {
	rt    site.Instance
	tr    transport.Transport
	ownTr bool
	pst   *site.Persist
	mon   *monitor.Monitor
	msrv  *monitor.Server // owned metrics server (WithMetricsAddr), or nil

	gate closeGate
}

// attachMonitor binds a monitor's snapshot sources to a freshly built
// runtime (and its persistence store and transport, when present).
func attachMonitor(m *monitor.Monitor, rt site.Instance, pst *site.Persist, tr transport.Transport) {
	src := monitor.Sources{
		Objects: rt.NumObjects,
		Engine:  rt.EngineStats,
		Frames:  rt.FrameStats,
		Depths:  rt.Depths,
	}
	if sh, ok := rt.(*site.Sharded); ok {
		src.Shards = sh.ShardCount
		src.ShardDepths = sh.ShardDepths
		src.Handoff = sh.HandoffDepth
	}
	if pst != nil {
		src.Persist = pst.Store().Stats
	}
	if tr != nil {
		src.Transport = tr.Stats()
	}
	m.Attach(rt.ID(), src)
}

// NewNode creates a node for site id and registers it on its transport.
// Without WithTransport the node runs over a private concurrent
// in-memory transport, which makes a standalone node self-contained;
// multi-site systems share one transport via NewCluster or WithTransport.
//
// With WithPersistence, NewNode delegates to Recover and panics on a
// persistence I/O error; call Recover directly to handle the error.
// NewNode also panics on an invalid option value (ErrBadOption).
func NewNode(id SiteID, opts ...Option) *Node {
	c := newConfig(opts)
	if err := c.validate(); err != nil {
		// Panic with the wrapped error value so a recover() can still
		// match errors.Is(ErrBadOption).
		panic(fmt.Errorf("causalgc: NewNode(%v): %w", id, err))
	}
	if c.persistDir != "" {
		n, err := Recover(id, opts...)
		if err != nil {
			panic(fmt.Sprintf("causalgc: NewNode(%v): %v (use Recover to handle persistence errors)", id, err))
		}
		return n
	}
	ownTr := false
	if c.tr == nil {
		c.tr = transport.NewAsync(transport.Faults{})
		ownTr = true
	}
	c.setupMonitor()
	var rt site.Instance
	if c.shards > 0 {
		rt = site.NewSharded(id, c.tr, c.site, c.shards)
	} else {
		rt = site.New(id, c.tr, c.site)
	}
	n := &Node{rt: rt, tr: c.tr, ownTr: ownTr, mon: c.monitor}
	if n.mon != nil {
		attachMonitor(n.mon, n.rt, nil, n.tr)
	}
	if c.metricsAddr != "" {
		srv, err := monitor.NewServer(c.metricsAddr, n.mon)
		if err != nil {
			n.Close()
			panic(fmt.Sprintf("causalgc: NewNode(%v): %v", id, err))
		}
		n.msrv = srv
	}
	return n
}

// Recover builds a durable node from its WithPersistence directory:
// an empty directory starts a fresh journaled node; an existing one is
// reconstructed — latest snapshot loaded, WAL tail replayed, unconfirmed
// mutator frames re-sent (receivers deduplicate them), and one Refresh
// round run so the cluster re-converges. Recovery needs no new wire
// messages: everything it re-sends is idempotent under the protocol's
// stamp ordering.
func Recover(id SiteID, opts ...Option) (*Node, error) {
	c := newConfig(opts)
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("causalgc: Recover(%v): %w", id, err)
	}
	if c.persistDir == "" {
		return nil, fmt.Errorf("causalgc: Recover(%v): WithPersistence directory required", id)
	}
	ownTr := false
	if c.tr == nil {
		c.tr = transport.NewAsync(transport.Faults{})
		ownTr = true
	}
	c.setupMonitor()
	if c.monitor != nil {
		// Pre-attach with empty sources so events re-fired during the WAL
		// replay below are traced with the right site; the real sources
		// bind once the runtime exists.
		c.monitor.Attach(id, monitor.Sources{})
	}
	pst, err := site.OpenPersist(c.persistDir, site.PersistOptions{
		SnapshotEvery: c.snapshotEvery,
		Store:         persistStoreOptions(c),
	})
	if err != nil {
		if ownTr {
			closeTransport(c.tr)
		}
		return nil, err
	}
	var rt site.Instance
	var err2 error
	if c.shards > 0 {
		rt, err2 = site.RecoverSharded(id, c.tr, c.site, pst, c.shards)
	} else {
		rt, err2 = site.Recover(id, c.tr, c.site, pst)
	}
	if err2 != nil {
		pst.Close()
		if ownTr {
			closeTransport(c.tr)
		}
		return nil, err2
	}
	n := &Node{rt: rt, tr: c.tr, ownTr: ownTr, pst: pst, mon: c.monitor}
	if n.mon != nil {
		attachMonitor(n.mon, n.rt, n.pst, n.tr)
	}
	if c.metricsAddr != "" {
		srv, serr := monitor.NewServer(c.metricsAddr, n.mon)
		if serr != nil {
			n.Close()
			return nil, fmt.Errorf("causalgc: Recover(%v): %w", id, serr)
		}
		n.msrv = srv
	}
	return n, nil
}

// ID returns the node's site identifier.
func (n *Node) ID() SiteID { return n.rt.ID() }

// Shards returns the node's lock-stripe width: 1 for the classic
// single-lock runtime, the WithShards count (or the sticky count
// recovered from the journal) for a sharded node.
func (n *Node) Shards() int {
	if sh, ok := n.rt.(*site.Sharded); ok {
		return sh.ShardCount()
	}
	return 1
}

// Transport returns the transport the node is registered on.
func (n *Node) Transport() transport.Transport { return n.tr }

// Monitor returns the node's attached metrics monitor, or nil when the
// node was built without WithMonitor/WithMetricsAddr.
func (n *Node) Monitor() *monitor.Monitor { return n.mon }

// MetricsAddr returns the bound address of the node's own metrics
// server (WithMetricsAddr, with any ephemeral port resolved), or ""
// when the node serves none.
func (n *Node) MetricsAddr() string {
	if n.msrv == nil {
		return ""
	}
	return n.msrv.Addr()
}

// Close releases the node's resources: the persistence journal is
// closed (crash-equivalent — no final snapshot is forced; call
// Checkpoint first for a trimmed restart), and the private transport is
// closed (goroutines joined) if the node owns one. A node attached via
// WithTransport leaves the shared transport untouched. Operations
// concurrent with Close either complete before it or return
// ErrNodeClosed after it; Close is idempotent.
func (n *Node) Close() error {
	if !n.gate.close() {
		return nil
	}
	var err error
	if n.msrv != nil {
		err = n.msrv.Close() // stop scrapes before the state freezes
	}
	n.rt.Close() // freeze: drop further deliveries from shared transports
	if n.pst != nil {
		if perr := n.pst.Close(); err == nil {
			err = perr
		}
	}
	return closeOwnedTransport(n.ownTr, n.tr, err)
}

// closeTransport closes a transport if it supports closing.
func closeTransport(t transport.Transport) error {
	switch tr := t.(type) {
	case interface{ Close() error }:
		return tr.Close()
	case interface{ Close() }:
		tr.Close()
	}
	return nil
}

// closeOwnedTransport is the shared teardown tail of Node.Close and
// Cluster.Close: close the transport only when owned, folding its
// error behind any earlier one.
func closeOwnedTransport(owned bool, t transport.Transport, first error) error {
	if !owned {
		return first
	}
	if err := closeTransport(t); first == nil {
		first = err
	}
	return first
}

// Root returns the node's root object reference; its slots model the
// application's named references on this site.
func (n *Node) Root() Ref { return n.rt.Root() }

// NewLocal creates an object in a fresh cluster on this node, referenced
// from holder (often the root object). Like every singleton mutator
// method, it commits as a one-element batch (see Node.Batch): group
// several operations into one Batch to pay the lock, journal-fsync and
// transport-framing cost once instead of per call.
func (n *Node) NewLocal(holder ObjectID) (Ref, error) {
	return n.applyOne(wire.OpRecord{Kind: wire.OpNewLocal, Holder: holder})
}

// NewLocalIn creates an object in an existing local cluster, referenced
// from holder: the coarse clustering granularity of the paper's §3.5.
func (n *Node) NewLocalIn(holder ObjectID, cl ClusterID) (Ref, error) {
	return n.applyOne(wire.OpRecord{Kind: wire.OpNewLocalIn, Holder: holder, Clu: cl})
}

// NewClusterID mints a fresh local cluster identity for NewLocalIn.
func (n *Node) NewClusterID() (ClusterID, error) {
	if err := n.gate.enter(); err != nil {
		return ClusterID{}, err
	}
	defer n.gate.exit()
	return n.rt.NewCluster()
}

// NewRemote creates an object on the target site, referenced from
// holder. The caller mints the identities, so no round-trip is needed;
// the returned reference is usable immediately.
func (n *Node) NewRemote(holder ObjectID, target SiteID) (Ref, error) {
	return n.applyOne(wire.OpRecord{Kind: wire.OpNewRemote, Holder: holder, Site: target})
}

// SendRef copies a reference this node's object fromObj holds to the
// object named by to (on any site). target may denote fromObj itself, a
// local object, or a third-party object on yet another site; no
// synchronous control traffic is added in any case (the paper's lazy
// log-keeping).
func (n *Node) SendRef(fromObj ObjectID, to, target Ref) error {
	_, err := n.applyOne(wire.OpRecord{Kind: wire.OpSendRef, Holder: fromObj, To: to, Target: target})
	return err
}

// AddRef stores target into a new slot of holder (a local mutation).
func (n *Node) AddRef(holder ObjectID, target Ref) error {
	_, err := n.applyOne(wire.OpRecord{Kind: wire.OpAddRef, Holder: holder, Target: target})
	return err
}

// DropRefs clears every slot of holder referencing target's object.
func (n *Node) DropRefs(holder ObjectID, target Ref) error {
	_, err := n.applyOne(wire.OpRecord{Kind: wire.OpDropRefs, Holder: holder, Target: target})
	return err
}

// ClearSlot drops one slot of holder.
func (n *Node) ClearSlot(holder ObjectID, slot int) error {
	_, err := n.applyOne(wire.OpRecord{Kind: wire.OpClearSlot, Holder: holder, Slot: slot})
	return err
}

// Collect runs local collections until no further GGD cascade fires, and
// returns the first collection's statistics.
func (n *Node) Collect() (CollectStats, error) {
	if err := n.gate.enter(); err != nil {
		return CollectStats{}, err
	}
	defer n.gate.exit()
	return n.rt.Collect()
}

// Refresh re-propagates the node's dependency vectors: the recovery
// round that re-detects residual garbage after control-message loss.
func (n *Node) Refresh() error {
	if err := n.gate.enter(); err != nil {
		return err
	}
	defer n.gate.exit()
	return n.rt.Refresh()
}

// Checkpoint forces a snapshot of the node's durable state now,
// truncating the write-ahead log. A no-op without WithPersistence.
func (n *Node) Checkpoint() error {
	if err := n.gate.enter(); err != nil {
		return err
	}
	defer n.gate.exit()
	return n.rt.Checkpoint()
}

// NumObjects returns the number of live heap objects on this node
// (including the root object).
func (n *Node) NumObjects() int { return n.rt.NumObjects() }

// HasObject reports whether the object still exists on this node.
func (n *Node) HasObject(obj ObjectID) bool { return n.rt.HasObject(obj) }

// Objects returns a reference to every live object on this node, root
// included, in identifier order.
func (n *Node) Objects() []Ref {
	_, snap := n.rt.Snapshot()
	out := make([]Ref, 0, len(snap))
	for _, o := range snap {
		out = append(out, Ref{Obj: o.ID, Cluster: o.Cluster})
	}
	return out
}

// ClusterRemoved reports whether GGD detected the cluster as garbage and
// removed it.
func (n *Node) ClusterRemoved(cl ClusterID) bool { return n.rt.ClusterRemoved(cl) }

// Stats returns the node's GGD engine counters.
func (n *Node) Stats() EngineStats { return n.rt.EngineStats() }

// FrameStats returns the node's acknowledged-retirement counters: how
// much re-send state is outstanding, how it drains through cumulative
// acks, and whether a hard-cap backstop ever dropped frames.
func (n *Node) FrameStats() FrameStats { return n.rt.FrameStats() }

// LogSnapshot returns a deep copy of a local global root's
// dependency-vector log, or nil if the cluster is unknown or removed.
func (n *Node) LogSnapshot(cl ClusterID) *Log { return n.rt.LogSnapshot(cl) }

// Clock returns a local global root's event counter.
func (n *Node) Clock(cl ClusterID) uint64 { return n.rt.Clock(cl) }
