// Package eval is the experiment harness of the reproduction: it
// regenerates the quantitative content of EXPERIMENTS.md — each
// experiment corresponding to a figure, claim or comparison in the
// paper's evaluation, plus the repo's own durability and retirement
// claims (E9, E9b; see DESIGN.md §4 for the index) — including the
// comparisons against the Schelvis timestamp-packet collector and a
// stop-the-world distributed tracer, whose implementations live under
// internal/baseline.
//
// The cmd/causalgc-bench binary is a thin front-end over this package;
// the root package's go test benchmarks report the same quantities as
// benchmark metrics.
package eval
