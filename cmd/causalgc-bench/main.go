// causalgc-bench regenerates the experiment tables of EXPERIMENTS.md
// (E5–E9, A2) as plain text. Each experiment corresponds to a figure,
// claim or comparison in the paper; see DESIGN.md §4 for the index. The
// experiment logic lives in the causalgc/eval package; `go test -bench=.`
// at the repository root reports the same quantities as benchmarks.
//
// Usage:
//
//	causalgc-bench                              # all experiments
//	causalgc-bench -exp E6                      # one experiment
//	causalgc-bench -json results.json           # also write machine-readable results
//	causalgc-bench -batch-json BENCH_batch.json # batch-vs-singleton throughput point
//	causalgc-bench -parallel-json BENCH_parallel.json # sharded commit scaling point
package main

import (
	"flag"
	"fmt"
	"os"

	"causalgc/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: E5 E6 E7 E8 E9 A2 or all")
	jsonPath := flag.String("json", "", "write the experiments' machine-readable results (eval.Result array) to this path ('-' for stdout) in addition to the tables")
	batchJSON := flag.String("batch-json", "", "measure batched vs singleton commit throughput and write the JSON report to this path ('-' for stdout); skips the experiments")
	parallelJSON := flag.String("parallel-json", "", "measure parallel commit throughput at 1/4/8 lock shards and write the JSON report to this path ('-' for stdout); skips the experiments")
	parallelFloor := flag.Float64("parallel-floor", 3, "minimum 8-shard over 1-shard speedup enforced by -parallel-json on machines with >= 8 cores (0 disables)")
	flag.Parse()
	if *batchJSON != "" {
		if !eval.BatchBench(os.Stdout, *batchJSON) {
			os.Exit(1)
		}
		return
	}
	if *parallelJSON != "" {
		if !eval.ParallelBench(os.Stdout, *parallelJSON, *parallelFloor) {
			os.Exit(1)
		}
		return
	}
	results, ok := eval.RunResults(os.Stdout, *exp)
	if *jsonPath != "" && len(results) > 0 {
		if err := writeResults(*jsonPath, results); err != nil {
			fmt.Fprintln(os.Stderr, "causalgc-bench:", err)
			os.Exit(1)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// writeResults writes the JSON artifact to path, or stdout for "-".
func writeResults(path string, results []eval.Result) error {
	if path == "-" {
		return eval.WriteJSON(os.Stdout, results)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eval.WriteJSON(f, results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
