package causalgc_test

import (
	"testing"

	"causalgc"
)

func TestUndersizedClusterErrors(t *testing.T) {
	c := causalgc.NewCluster(1)
	defer c.Close()
	if _, err := causalgc.BuildPaperScenario(c); err == nil {
		t.Error("BuildPaperScenario on 1-node cluster: want error")
	} else {
		t.Log(err)
	}
	if _, err := causalgc.BuildDLL(c, 8); err == nil {
		t.Error("BuildDLL k=8 on 1-node cluster: want error")
	}
	if causalgc.NewCluster(2).Node(4) != nil {
		t.Error("Node(4) on 2-node cluster: want nil")
	}
}
