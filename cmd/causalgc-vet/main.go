// Command causalgc-vet is the multichecker for the protocol's
// statically enforced invariants: it runs the internal/analysis suite
// (lockcheck, sendcheck, determcheck, errcmpcheck, doccheck) over the
// requested packages and exits non-zero on any diagnostic. CI runs it
// over ./... as the vet-invariants job; the docs-lint step runs just
// the doc checker via -doccheck.
//
// Usage:
//
//	causalgc-vet [-lockcheck] [-sendcheck] [-determcheck] [-errcmpcheck] [-doccheck] packages...
//
// Package patterns are module-relative directories ("./internal/site")
// or the recursive form "./...". Selecting one or more analyzer flags
// runs only those; selecting none runs the whole suite. Audited
// exceptions are annotated in source with //causalgc:allow-<rule>
// comments, never by suppressing the analyzer.
//
// The checker is hermetic: it parses and type-checks from source with
// the standard library only — no go/packages driver, no network, no
// pre-built export data — so it runs identically in CI, locally and in
// sandboxed builds.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"causalgc/internal/analysis"
	"causalgc/internal/analysis/determcheck"
	"causalgc/internal/analysis/doccheck"
	"causalgc/internal/analysis/errcmpcheck"
	"causalgc/internal/analysis/lockcheck"
	"causalgc/internal/analysis/sendcheck"
)

// suite is the full invariant-checker set in the order diagnostics
// are grouped; each entry's flag selects it individually.
var suite = []struct {
	flag     string
	analyzer *analysis.Analyzer
}{
	{"lockcheck", lockcheck.Analyzer},
	{"sendcheck", sendcheck.Analyzer},
	{"determcheck", determcheck.Analyzer},
	{"errcmpcheck", errcmpcheck.Analyzer},
	{"doccheck", doccheck.Analyzer},
}

func main() {
	selected := map[string]*bool{}
	for _, s := range suite {
		selected[s.flag] = flag.Bool(s.flag, false, s.analyzer.Doc)
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: causalgc-vet [analyzer flags] packages...\n\nAnalyzers (none selected = all):\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var analyzers []*analysis.Analyzer
	for _, s := range suite {
		if *selected[s.flag] {
			analyzers = append(analyzers, s.analyzer)
		}
	}
	if len(analyzers) == 0 {
		for _, s := range suite {
			analyzers = append(analyzers, s.analyzer)
		}
	}

	diags, err := vet(flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "causalgc-vet: %v\n", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		w := bufio.NewWriter(os.Stderr)
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
		fmt.Fprintf(w, "causalgc-vet: %d invariant violation(s)\n", len(diags))
		w.Flush()
		os.Exit(1)
	}
}

// vet expands the package patterns, loads each package through one
// shared Loader (so dependencies type-check once) and runs the
// selected analyzers.
func vet(patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	root, modPath, err := findModule()
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}
	loader := analysis.NewLoader(root, modPath)
	var units []*analysis.Unit
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		us, err := loader.LoadDir(dir, pkgPath)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkgPath, err)
		}
		units = append(units, us...)
	}
	return analysis.Run(units, analyzers)
}

// findModule locates go.mod upward from the working directory and
// reads the module path from its first module line.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return dir, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns to directories containing Go files.
// "dir/..." walks recursively, skipping testdata, vendor and hidden
// directories; a plain pattern names one directory.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "all" {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" || pat == "." {
			pat = root
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
