package wire

import (
	"testing"

	"causalgc/internal/core"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/vclock"
)

func TestKinds(t *testing.T) {
	tests := []struct {
		p    netsim.Payload
		kind string
	}{
		{Create{}, KindCreate},
		{RefTransfer{}, KindRef},
		{Destroy{}, KindDestroy},
		{Propagate{}, KindPropagate},
		{Assert{}, KindAssert},
		{HintAck{}, KindAck},
	}
	for _, tt := range tests {
		if got := tt.p.Kind(); got != tt.kind {
			t.Errorf("%T.Kind() = %q, want %q", tt.p, got, tt.kind)
		}
		if tt.p.ApproxSize() <= 0 {
			t.Errorf("%T.ApproxSize() = %d", tt.p, tt.p.ApproxSize())
		}
	}
}

func TestMutatorTrafficIsApplication(t *testing.T) {
	// Creation and reference transfer model reliable application RPC:
	// fault injection must skip them.
	if netsim.FaultEligible(Create{}) {
		t.Error("Create must be fault-exempt")
	}
	if netsim.FaultEligible(RefTransfer{}) {
		t.Error("RefTransfer must be fault-exempt")
	}
	// GGD control traffic is fault-eligible: that is where the paper's
	// robustness claims live. HintAck included — a lost ack only costs a
	// redundant re-send.
	for _, p := range []netsim.Payload{Destroy{}, Propagate{}, Assert{}, HintAck{}} {
		if !netsim.FaultEligible(p) {
			t.Errorf("%T must be fault-eligible", p)
		}
	}
}

func TestApproxSizeGrowsWithContent(t *testing.T) {
	c := ids.ClusterID{Site: 1, Seq: 1}
	small := Propagate{M: core.Propagation{Auth: vclock.Vector{}}}
	big := Propagate{M: core.Propagation{
		Auth: vclock.Vector{c: vclock.At(1)},
		Rows: map[ids.ClusterID]core.RowGossip{
			c: {Auth: vclock.Vector{c: vclock.At(1)}},
		},
		OBs: map[ids.ClusterID]core.OBGossip{
			c: {Auth: vclock.Vector{c: vclock.At(1)}, Hints: vclock.Vector{c: vclock.At(2)}},
		},
	}}
	if big.ApproxSize() <= small.ApproxSize() {
		t.Errorf("size not monotone: %d <= %d", big.ApproxSize(), small.ApproxSize())
	}
	d0 := Destroy{}
	d1 := Destroy{M: core.DestroyMsg{Auth: vclock.Vector{c: vclock.Eps(1)}, Hints: vclock.Vector{c: vclock.At(1)}}}
	if d1.ApproxSize() <= d0.ApproxSize() {
		t.Error("destroy size not monotone")
	}
}
