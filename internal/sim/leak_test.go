package sim

import (
	"testing"

	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
	"causalgc/internal/wire"
)

// TestLeakDeadIntroductionExpired is the "lost assert, live receiver"
// leak scenario: a reference is forwarded to a holder object that was
// collected before the transfer arrives, so the edge never forms and the
// edge-assert that would resolve the introduction hint never exists. The
// receiving site must expire the introduction (negative assert) instead
// of parking the frame forever; without expiry the hint pins the target
// as residual garbage no refresh can recover.
func TestLeakDeadIntroductionExpired(t *testing.T) {
	w := NewWorld(3, netsim.Faults{Seed: 1}, site.DefaultOptions())
	s1 := w.Site(1)
	x, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := s1.NewRemote(s1.Root().Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	// x becomes garbage and is collected on site 2.
	if err := s1.DropRefs(s1.Root().Obj, x); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	if !w.Site(2).ClusterRemoved(x.Cluster) {
		t.Fatal("x not collected")
	}

	// The mutator still holds x's identity and forwards tgt's reference
	// to it: the transfer reaches site 2 only after x's collection — a
	// provably dead introduction.
	if err := s1.SendRef(s1.Root().Obj, x, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	// Drop the root's own reference: tgt is garbage. The destroy bundle
	// arms the introduction hint (x, root1, seq) at tgt; only the expiry
	// bound recorded by site 2's negative assert lets the verdict fire.
	if err := s1.DropRefs(s1.Root().Obj, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	rep := w.Check()
	if !rep.Safe() {
		t.Fatalf("unsafe: %v", rep)
	}
	if len(rep.Garbage) != 0 {
		// One bounded refresh round must finish the job in any case.
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		if err := w.Settle(); err != nil {
			t.Fatal(err)
		}
		rep = w.Check()
		if len(rep.Garbage) != 0 {
			t.Fatalf("dead introduction pinned residual garbage: %v", rep)
		}
	}
	st := w.Site(2).EngineStats()
	if st.AssertsSent == 0 {
		t.Error("no resolution assert issued for the dead introduction")
	}
}

// TestLeakLostAssertCrashedReceiver is the "lost assert, crashed
// receiver" scenario: the hint owner's site is killed while the
// edge-assert is in flight (the crash drops it), and killed again while
// the asserting cluster's finalisation destroy — the other resolution
// carrier — is in flight. Recovery plus one refresh round must still
// drive residual garbage to zero: the journaled re-send and the retained
// finalisation bundle are exactly what survives the crashes.
func TestLeakLostAssertCrashedReceiver(t *testing.T) {
	w, err := NewDurableWorld(3, netsim.Faults{Seed: 7}, site.DefaultOptions(), t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s1 := w.Site(1)
	x, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := s1.NewRemote(s1.Root().Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	// Crash the hint owner's site, then forward tgt's reference to x:
	// the transfer (application traffic) is delivered, x forms the edge
	// x→tgt, and its edge-assert to the dead site is dropped.
	if err := w.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := s1.SendRef(s1.Root().Obj, x, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.Restart(3); err != nil {
		t.Fatal(err)
	}

	// Make x garbage and let site 2 remove it; its finalisation destroy
	// to tgt — carrying the processed-introduction record — is eaten by
	// a second crash of site 3.
	if err := s1.DropRefs(s1.Root().Obj, x); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultStepBudget && !w.Site(2).ClusterRemoved(x.Cluster); i++ {
		if !w.Step() {
			break
		}
	}
	if !w.Site(2).ClusterRemoved(x.Cluster) {
		t.Fatal("x not removed")
	}
	if err := w.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := w.Restart(3); err != nil {
		t.Fatal(err)
	}

	// Now make tgt garbage: the root's destroy bundle arms the hint
	// (x, root1, seq) at tgt, while tgt has no word from x at all.
	if err := s1.DropRefs(s1.Root().Obj, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	rep := w.Check()
	if !rep.Safe() {
		t.Fatalf("unsafe: %v", rep)
	}

	// Bounded recovery: refresh rounds re-ship the retained bundles and
	// journaled asserts until the hint resolves and tgt is reclaimed.
	for i := 0; i < 3 && len(rep.Garbage) > 0; i++ {
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		if err := w.Settle(); err != nil {
			t.Fatal(err)
		}
		rep = w.Check()
	}
	if !rep.Safe() {
		t.Fatalf("unsafe after recovery: %v", rep)
	}
	if len(rep.Garbage) != 0 {
		t.Fatalf("lost assert + crashed receiver pinned residual garbage: %v", rep)
	}
}

// TestChurnLostAssertSchedules is the seeded fuzz lane over lost-assert
// schedules: randomised churn while most edge-asserts (and half the
// acks) are dropped. Safety must hold unconditionally; after healing, a
// bounded number of refresh rounds must reclaim every residual object —
// the assert re-send journal converging despite the lossy ack channel.
func TestChurnLostAssertSchedules(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= seeds; seed++ {
		w := NewWorld(5, netsim.Faults{
			Seed:    seed,
			Reorder: true,
			DropKindProb: map[string]float64{
				wire.KindAssert:   0.8,
				wire.KindFrameAck: 0.5,
			},
		}, site.DefaultOptions())
		if _, err := mutator.Churn(w, mutator.ChurnConfig{
			Seed:            seed * 23,
			Ops:             200,
			StepsBetweenOps: 2,
		}); err != nil {
			t.Fatalf("seed %d: churn: %v", seed, err)
		}
		if err := w.Settle(); err != nil {
			t.Fatalf("seed %d: settle: %v", seed, err)
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation under assert loss: %v", seed, rep)
		}

		// Heal the assert channel and recover.
		w.Net().SetDropKindProb(wire.KindAssert, 0)
		w.Net().SetDropKindProb(wire.KindFrameAck, 0)
		for i := 0; i < 3; i++ {
			if err := w.RefreshAll(); err != nil {
				t.Fatalf("seed %d: refresh: %v", seed, err)
			}
			if err := w.Settle(); err != nil {
				t.Fatalf("seed %d: settle: %v", seed, err)
			}
		}
		rep = w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation after recovery: %v", seed, rep)
		}
		if len(rep.Garbage) != 0 {
			t.Errorf("seed %d: residual garbage after healed refresh rounds: %v", seed, rep)
		}
	}
}

// TestLeakExpiryThenFreshIntroduction pins the safety invariant the
// expiry rule rests on: an expired introduction must never mask a
// genuinely newer one. After a dead introduction of a site-2 edge to
// tgt expires, a fresh site-2 holder receives tgt's reference — the new
// edge must arm and resolve normally, and tgt must stay alive while it
// is held.
func TestLeakExpiryThenFreshIntroduction(t *testing.T) {
	w := NewWorld(3, netsim.Faults{Seed: 3}, site.DefaultOptions())
	s1 := w.Site(1)
	x, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := s1.NewRemote(s1.Root().Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Dead introduction: x collected, then the stale forward arrives.
	if err := s1.DropRefs(s1.Root().Obj, x); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := s1.SendRef(s1.Root().Obj, x, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// A fresh holder on site 2 receives tgt's reference: a genuinely new
	// introduction of a site-2 edge to tgt, with a higher forwarding seq.
	y, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s1.SendRef(s1.Root().Obj, y, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// tgt must stay alive while y holds it, and be reclaimed once the
	// whole chain is dropped.
	if err := s1.DropRefs(s1.Root().Obj, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	rep := w.Check()
	if !rep.Safe() {
		t.Fatalf("unsafe: %v", rep)
	}
	if !w.Site(3).HasObject(tgt.Obj) {
		t.Fatal("tgt collected while y holds a live reference (UNSAFE)")
	}
	if err := s1.DropRefs(s1.Root().Obj, y); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	rep = w.Check()
	if !rep.Safe() || len(rep.Garbage) != 0 {
		t.Fatalf("chain not reclaimed: %v", rep)
	}
}
