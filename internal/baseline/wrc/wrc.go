// Package wrc implements weighted reference counting (Bevan; Watson &
// Watson, PARLE'87), the classic non-comprehensive GGD the paper contrasts
// with (§2.3, §3): cheap, no extra messages for copies, but structurally
// unable to collect cycles — which is exactly the trade-off the paper
// refuses ("comprehensiveness has often been traded off for scalability",
// §3).
//
// Every object carries a total weight; every reference carries a partial
// weight. Copying a reference splits the holder's weight (no message);
// destroying a reference returns its weight to the object (one message);
// an object whose returned weight equals its total has no remote
// references and is collectible if not locally rooted. A cycle's members
// always retain outstanding weight on the cycle's internal references, so
// the cycle leaks — Experiment E8's comparison row.
package wrc

import (
	"fmt"

	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// InitialWeight is the weight minted with each new object (a power of two
// so splits stay integral until the indirection threshold).
const InitialWeight = 1 << 16

// ReturnMsg returns weight to an object after a reference was destroyed.
type ReturnMsg struct {
	To     ids.ClusterID
	Weight int64
}

// Kind implements netsim.Payload.
func (ReturnMsg) Kind() string { return "wrc.return" }

// ApproxSize implements netsim.Payload.
func (ReturnMsg) ApproxSize() int { return 24 }

// WRef is a weighted reference.
type WRef struct {
	Target ids.ClusterID
	Weight int64
}

// object is one collectible unit (per-object cluster granularity).
type object struct {
	id       ids.ClusterID
	total    int64
	returned int64
	// held are the weighted references this object owns, keyed by target
	// with accumulated weight.
	held map[ids.ClusterID]int64
	// rooted marks objects referenced by the site's local root set.
	rooted bool
	dead   bool
}

// Site is one site's weighted-reference-counting state.
type Site struct {
	id       ids.SiteID
	net      netsim.Network
	objects  map[ids.ClusterID]*object
	removed  int
	onRemove func(ids.ClusterID)
}

// New creates a WRC site. onRemove may be nil.
func New(id ids.SiteID, net netsim.Network, onRemove func(ids.ClusterID)) *Site {
	s := &Site{
		id:       id,
		net:      net,
		objects:  make(map[ids.ClusterID]*object),
		onRemove: onRemove,
	}
	net.Register(id, s.handle)
	return s
}

// Removed returns the number of objects collected.
func (s *Site) Removed() int { return s.removed }

// IsDead reports whether the object was collected.
func (s *Site) IsDead(id ids.ClusterID) bool {
	o, ok := s.objects[id]
	return ok && o.dead
}

// NewObject creates a local object and returns the initial reference,
// rooted locally when rooted is set.
func (s *Site) NewObject(id ids.ClusterID, rooted bool) WRef {
	if id.Site != s.id {
		panic(fmt.Sprintf("wrc %v: foreign object %v", s.id, id))
	}
	s.objects[id] = &object{
		id:     id,
		total:  InitialWeight,
		held:   make(map[ids.ClusterID]int64),
		rooted: rooted,
	}
	return WRef{Target: id, Weight: InitialWeight}
}

// Give stores ref into holder's reference table (holder now owns the
// weight).
func (s *Site) Give(holder ids.ClusterID, ref WRef) error {
	h, ok := s.objects[holder]
	if !ok || h.dead {
		return fmt.Errorf("wrc %v: unknown holder %v", s.id, holder)
	}
	h.held[ref.Target] += ref.Weight
	return nil
}

// Copy splits holder's weight on target in half, producing a new reference
// to hand elsewhere — no message, the advertised strength of weighted
// schemes (§2.3). An error is returned when the weight is exhausted
// (real systems add indirection objects; the workloads here stay within
// the budget).
func (s *Site) Copy(holder, target ids.ClusterID) (WRef, error) {
	h, ok := s.objects[holder]
	if !ok || h.dead {
		return WRef{}, fmt.Errorf("wrc %v: unknown holder %v", s.id, holder)
	}
	w := h.held[target]
	if w < 2 {
		return WRef{}, fmt.Errorf("wrc %v: weight exhausted for %v", s.id, target)
	}
	half := w / 2
	h.held[target] = w - half
	return WRef{Target: target, Weight: half}, nil
}

// Drop destroys holder's reference to target, returning the weight to the
// target's object (one message).
func (s *Site) Drop(holder, target ids.ClusterID) error {
	h, ok := s.objects[holder]
	if !ok {
		return fmt.Errorf("wrc %v: unknown holder %v", s.id, holder)
	}
	w := h.held[target]
	if w == 0 {
		return fmt.Errorf("wrc %v: %v holds no weight on %v", s.id, holder, target)
	}
	delete(h.held, target)
	s.returnWeight(target, w)
	return nil
}

// Unroot removes the local-root mark, then re-checks collectibility.
func (s *Site) Unroot(id ids.ClusterID) {
	if o, ok := s.objects[id]; ok {
		o.rooted = false
		s.check(o)
	}
}

func (s *Site) returnWeight(target ids.ClusterID, w int64) {
	if target.Site == s.id {
		if o, ok := s.objects[target]; ok {
			o.returned += w
			s.check(o)
		}
		return
	}
	s.net.Send(s.id, target.Site, ReturnMsg{To: target, Weight: w})
}

func (s *Site) handle(_ ids.SiteID, p netsim.Payload) {
	m, ok := p.(ReturnMsg)
	if !ok {
		return
	}
	o, ok := s.objects[m.To]
	if !ok || o.dead {
		return
	}
	o.returned += m.Weight
	s.check(o)
}

// check collects an object whose whole weight came home: no references to
// it exist anywhere. Cycle members never satisfy this — their internal
// references hold weight forever — so WRC is not comprehensive.
func (s *Site) check(o *object) {
	if o.dead || o.rooted || o.returned < o.total {
		return
	}
	o.dead = true
	s.removed++
	for target, w := range o.held {
		s.returnWeight(target, w)
	}
	o.held = make(map[ids.ClusterID]int64)
	if s.onRemove != nil {
		s.onRemove(o.id)
	}
}
