// causalgc-node runs causalgc sites over real TCP sockets: one process
// per node (a process may host several sites for compact demos), wired
// to its peers by a static address book. It is the multi-process
// counterpart of the in-process Cluster.
//
// With -demo the processes choreograph the quickstart scenario end to
// end without any coordination channel besides causalgc itself: the
// process hosting site 1 creates an object a on site 2 (remote create);
// site 2's process creates b on site 3 and c on site 1 from a, sends c a
// reference to b (a third-party transfer across three sites) and sends b
// a reference back to a (closing a distributed cycle); site 1 then drops
// its only root reference, and every process waits until Global Garbage
// Detection has reclaimed the whole cycle on its sites, printing the
// verdict and traffic statistics.
//
// Two-process demo (three sites, genuine third-party transfer):
//
//	causalgc-node -sites 1,3 -listen 127.0.0.1:7001 -peers 2=127.0.0.1:7002 -demo
//	causalgc-node -sites 2   -listen 127.0.0.1:7002 -peers 1=127.0.0.1:7001,3=127.0.0.1:7001 -demo
//
// Both processes exit 0 once the cycle is gone. Without -demo the
// process just hosts its sites (collecting periodically and printing a
// status line) until killed.
//
// With -persist <dir> every hosted site journals its state under
// <dir>/site-<id> (write-ahead log + snapshots): a process killed at
// any instant — kill -9 included — resumes from the same directory, so
//
//	causalgc-node -sites 2 ... -demo -persist /var/lib/causalgc
//	<kill -9 mid-protocol>
//	causalgc-node -sites 2 ... -persist /var/lib/causalgc
//
// recovers site 2 and the cluster still reclaims its garbage (the e2e
// test exercises exactly this).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"causalgc"
	"causalgc/monitor"
	"causalgc/transport/tcp"
)

func main() {
	sitesFlag := flag.String("sites", "1", "comma-separated site IDs hosted by this process")
	listen := flag.String("listen", "127.0.0.1:7001", "address to accept peer connections on")
	peersFlag := flag.String("peers", "", "remote sites, e.g. 2=127.0.0.1:7002,3=127.0.0.1:7003")
	demo := flag.Bool("demo", false, "run the distributed-cycle demo, then exit")
	timeout := flag.Duration("timeout", 60*time.Second, "demo deadline")
	persistDir := flag.String("persist", "", "directory for per-site durability (WAL + snapshots); empty = volatile")
	snapshotEvery := flag.Int("snapshot-every", 256, "WAL records between snapshots (with -persist)")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "peer connection attempt timeout")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus/JSON metrics and the event trace for all hosted sites on this address (e.g. 127.0.0.1:9090); empty = disabled")
	flag.Parse()

	if err := run(*sitesFlag, *listen, *peersFlag, *demo, *timeout, *persistDir, *snapshotEvery, *dialTimeout, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "causalgc-node:", err)
		os.Exit(1)
	}
}

func run(sitesFlag, listen, peersFlag string, demo bool, timeout time.Duration, persistDir string, snapshotEvery int, dialTimeout time.Duration, metricsAddr string) error {
	siteIDs, err := parseSites(sitesFlag)
	if err != nil {
		return err
	}
	peers, err := parsePeers(peersFlag)
	if err != nil {
		return err
	}

	net, err := tcp.New(tcp.Config{Listen: listen, Peers: peers, DialTimeout: dialTimeout})
	if err != nil {
		return err
	}
	defer net.Close()
	fmt.Printf("listening on %v, hosting sites %v\n", net.Addr(), siteIDs)

	// One monitor per hosted site, whether or not the endpoint is
	// enabled: serve-mode status lines read from the same snapshots a
	// scrape would.
	nodes := make(map[causalgc.SiteID]*causalgc.Node, len(siteIDs))
	mons := make([]*monitor.Monitor, 0, len(siteIDs))
	for _, id := range siteIDs {
		mon := monitor.New(0)
		mons = append(mons, mon)
		if persistDir == "" {
			nodes[id] = causalgc.NewNode(id, causalgc.WithTransport(net), causalgc.WithMonitor(mon))
			continue
		}
		dir := filepath.Join(persistDir, fmt.Sprintf("site-%d", id))
		n, err := causalgc.Recover(id,
			causalgc.WithTransport(net),
			causalgc.WithPersistence(dir),
			causalgc.WithSnapshotEvery(snapshotEvery),
			causalgc.WithMonitor(mon),
		)
		if err != nil {
			return fmt.Errorf("recover site %v from %s: %w", id, dir, err)
		}
		fmt.Printf("site %v: recovered from %s (%d objects)\n", id, dir, n.NumObjects())
		nodes[id] = n
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	if metricsAddr != "" {
		msrv, err := monitor.NewServer(metricsAddr, mons...)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer msrv.Close()
		fmt.Printf("metrics on %v\n", msrv.Addr())
	}

	if !demo {
		return serve(nodes)
	}

	deadline := time.Now().Add(timeout)
	driver, hasDriver := nodes[1]
	responder, hasResponder := nodes[2]
	switch {
	case hasDriver && hasResponder:
		// Single-process demo: the responder choreography runs alongside
		// the driver (the TCP transport and the nodes are concurrency-safe).
		errc := make(chan error, 1)
		go func() { errc <- buildCycle(responder, nodes, peers, deadline) }()
		if err := runDriver(driver, nodes, deadline); err != nil {
			return err
		}
		if err := <-errc; err != nil {
			return err
		}
	case hasDriver:
		if err := runDriver(driver, nodes, deadline); err != nil {
			return err
		}
	case hasResponder:
		if err := buildCycle(responder, nodes, peers, deadline); err != nil {
			return err
		}
		if err := waitReclaimed(nodes, deadline); err != nil {
			return err
		}
	default:
		if err := waitReclaimed(nodes, deadline); err != nil {
			return err
		}
	}
	fmt.Printf("traffic:\n%s", net.Stats())
	return nil
}

// serve hosts the sites until killed: a collection and refresh round
// per second (the §5 recovery round — without it, control messages lost
// to peer restarts would leak residual garbage forever in a long-lived
// node) and a parseable status line for supervisors and the e2e test.
// The line is built from the monitors' snapshots — the same numbers a
// /metrics scrape reports — and keeps `status objects=N` as its stable
// prefix.
func serve(nodes map[causalgc.SiteID]*causalgc.Node) error {
	for {
		time.Sleep(time.Second)
		var objects, removed, collections, retained int
		for _, n := range nodes {
			if _, err := n.Collect(); err != nil {
				return err
			}
			if err := n.Refresh(); err != nil {
				return err
			}
			snap := n.Monitor().Snapshot()
			objects += snap.Objects
			removed += snap.Engine.Removed
			collections += snap.Collect.Collections
			retained += snap.Depths.Outbox + snap.Depths.AssertRows + snap.Depths.LegacyBundles
		}
		fmt.Printf("status objects=%d removed=%d collections=%d retained=%d\n",
			objects, removed, collections, retained)
	}
}

// runDriver is the site-1 side of the demo: remote create, then drop,
// then wait for reclamation everywhere it can see.
func runDriver(n1 *causalgc.Node, nodes map[causalgc.SiteID]*causalgc.Node, deadline time.Time) error {
	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		return err
	}
	fmt.Printf("site 1: created %v on site 2 (remote create)\n", a)

	// Site 2's process now builds the cycle: b and c are created back on
	// the sites this process hosts. Wait until every hosted site grew,
	// then give the in-flight reference transfers a moment to land.
	if err := pollUntil(nodes, deadline, func() bool {
		for _, n := range nodes {
			if n.NumObjects() < 2 {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("waiting for the cycle to be built: %w", err)
	}
	time.Sleep(500 * time.Millisecond)

	if err := n1.DropRefs(n1.Root().Obj, a); err != nil {
		return err
	}
	fmt.Printf("site 1: dropped the only root reference to %v — the cycle is garbage\n", a)
	return waitReclaimed(nodes, deadline)
}

// buildCycle is the site-2 choreography: on the arrival of a it builds
// the distributed cycle {a, b, c} across sites 2, 3 and 1 (or just
// {a, b} across 2 and 1 in a two-site system).
func buildCycle(n2 *causalgc.Node, nodes map[causalgc.SiteID]*causalgc.Node, peers map[causalgc.SiteID]string, deadline time.Time) error {
	var a causalgc.Ref
	if err := pollUntil(nodes, deadline, func() bool {
		for _, o := range n2.Objects() {
			if o.Obj != n2.Root().Obj {
				a = o
				return true
			}
		}
		return false
	}); err != nil {
		return fmt.Errorf("waiting for the remote create: %w", err)
	}
	fmt.Printf("site 2: received %v\n", a)

	_, peer3 := peers[3]
	_, local3 := nodes[3]
	if peer3 || local3 {
		// Three sites: b on site 3, c on site 1, third-party transfer
		// c→b, and the cycle edge b→a.
		b, err := n2.NewRemote(a.Obj, 3)
		if err != nil {
			return err
		}
		c, err := n2.NewRemote(a.Obj, 1)
		if err != nil {
			return err
		}
		if err := n2.SendRef(a.Obj, c, b); err != nil { // third-party: 2 introduces 1's c to 3's b
			return err
		}
		if err := n2.SendRef(a.Obj, b, a); err != nil { // cycle closes: b → a
			return err
		}
		fmt.Printf("site 2: built cycle a=%v → {b=%v, c=%v}, c→b (third-party), b→a\n", a, b, c)
	} else {
		// Two sites: b on site 1 and the cycle a ⇄ b.
		b, err := n2.NewRemote(a.Obj, 1)
		if err != nil {
			return err
		}
		if err := n2.SendRef(a.Obj, b, a); err != nil {
			return err
		}
		fmt.Printf("site 2: built cycle a=%v ⇄ b=%v\n", a, b)
	}
	return nil
}

// waitReclaimed drives the hosted sites (collect + refresh) until each
// is back to its root object alone, i.e. GGD reclaimed everything.
func waitReclaimed(nodes map[causalgc.SiteID]*causalgc.Node, deadline time.Time) error {
	err := pollUntil(nodes, deadline, func() bool {
		for _, n := range nodes {
			if n.NumObjects() != 1 {
				return false
			}
		}
		return true
	})
	if err != nil {
		for id, n := range nodes {
			fmt.Printf("site %v: %d objects remain\n", id, n.NumObjects())
		}
		return fmt.Errorf("distributed cycle not reclaimed: %w", err)
	}
	for id, n := range nodes {
		st := n.Stats()
		fmt.Printf("site %v: reclaimed, %d cluster(s) removed by GGD\n", id, st.Removed)
	}
	fmt.Println("demo complete: distributed cycle detected and reclaimed over TCP")
	return nil
}

// pollUntil runs collection and refresh rounds on every hosted site
// until cond holds or the deadline passes. Refresh is the §5 recovery
// round; repeating it makes progress independent of arrival order.
func pollUntil(nodes map[causalgc.SiteID]*causalgc.Node, deadline time.Time, cond func() bool) error {
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		for _, n := range nodes {
			n.Collect()
			n.Refresh()
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("timed out")
}

func parseSites(s string) ([]causalgc.SiteID, error) {
	var out []causalgc.SiteID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseUint(part, 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad site id %q", part)
		}
		out = append(out, causalgc.SiteID(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sites to host")
	}
	return out, nil
}

func parsePeers(s string) (map[causalgc.SiteID]string, error) {
	peers := make(map[causalgc.SiteID]string)
	if strings.TrimSpace(s) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want site=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad peer site id %q", kv[0])
		}
		peers[causalgc.SiteID(id)] = kv[1]
	}
	return peers, nil
}
