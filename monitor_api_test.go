package causalgc_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"causalgc"
	"causalgc/monitor"
)

// scrape fetches one path from a metrics server and returns the body.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// tallyObserver asserts the fanout: a user observer must keep seeing
// events when a monitor shares the observer slot.
type tallyObserver struct {
	removed, collected int
}

func (o *tallyObserver) ClusterRemoved(causalgc.SiteID, causalgc.ClusterID) { o.removed++ }
func (o *tallyObserver) Collected(causalgc.SiteID, causalgc.CollectStats)   { o.collected++ }

func TestClusterMetricsEndpoint(t *testing.T) {
	user := &tallyObserver{}
	c := causalgc.NewCluster(3,
		causalgc.WithMetricsAddr("127.0.0.1:0"),
		causalgc.WithObserver(user),
	)
	defer c.Close()
	addr := c.MetricsAddr()
	if addr == "" {
		t.Fatal("Cluster.MetricsAddr is empty with WithMetricsAddr set")
	}

	n1 := c.Node(1)
	a, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n1.DropRefs(n1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	body := scrape(t, addr, "/metrics")
	if !strings.Contains(body, `causalgc_clusters_removed_total{site="s2"} 1`) {
		t.Errorf("/metrics missing the site-2 removal:\n%s", body)
	}
	for _, s := range []string{`causalgc_objects{site="s1"}`, `causalgc_objects{site="s2"}`, `causalgc_objects{site="s3"}`} {
		if !strings.Contains(body, s) {
			t.Errorf("/metrics missing %q", s)
		}
	}
	// The transport surface flows through: the remote create sent wire
	// traffic that must appear kind-labelled.
	if !strings.Contains(body, `causalgc_net_sent_total{site="s1",kind=`) {
		t.Errorf("/metrics missing transport counters:\n%s", body)
	}

	// The user observer composed with the monitor instead of being
	// displaced by it.
	if user.removed == 0 || user.collected == 0 {
		t.Errorf("user observer displaced: removed=%d collected=%d", user.removed, user.collected)
	}
	// And the monitor recorded the same events into its trace.
	mon := c.Node(2).Monitor()
	if mon == nil {
		t.Fatal("Node.Monitor is nil on a monitored cluster")
	}
	found := false
	for _, e := range mon.Events(0) {
		if e.Kind == monitor.EventRemoval {
			found = true
		}
	}
	if !found {
		t.Error("site-2 monitor trace has no removal event")
	}

	trace := scrape(t, addr, "/trace?site=s2")
	if !strings.Contains(trace, `"kind": "removal"`) {
		t.Errorf("/trace?site=s2 missing the removal:\n%s", trace)
	}
}

func TestNodeMetricsEndpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	mon := monitor.New(0)
	n, err := causalgc.Recover(1,
		causalgc.WithPersistence(dir),
		causalgc.WithMonitor(mon),
		causalgc.WithMetricsAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if n.Monitor() != mon {
		t.Fatal("Node.Monitor does not return the WithMonitor monitor")
	}
	if _, err := n.NewLocal(n.Root().Obj); err != nil {
		t.Fatal(err)
	}
	body := scrape(t, n.MetricsAddr(), "/metrics")
	if !strings.Contains(body, `causalgc_objects{site="s1"} 2`) {
		t.Errorf("/metrics missing object gauge:\n%s", body)
	}
	if !strings.Contains(body, `causalgc_wal_appends_total{site="s1"}`) {
		t.Errorf("/metrics missing WAL counters on a persistent node:\n%s", body)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	// Same monitor across a crash-equivalent restart: sources re-attach,
	// the endpoint serves again on a fresh port.
	n2, err := causalgc.Recover(1,
		causalgc.WithPersistence(dir),
		causalgc.WithMonitor(mon),
		causalgc.WithMetricsAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	body = scrape(t, n2.MetricsAddr(), "/metrics")
	if !strings.Contains(body, `causalgc_objects{site="s1"} 2`) {
		t.Errorf("post-recovery /metrics wrong object gauge:\n%s", body)
	}
	if !strings.Contains(body, `causalgc_wal_recovered_records{site="s1"}`) {
		t.Errorf("post-recovery /metrics missing recovery counters:\n%s", body)
	}
}

func TestFanoutObserverStacksUserObservers(t *testing.T) {
	a, b := &tallyObserver{}, &tallyObserver{}
	c := causalgc.NewCluster(2, causalgc.WithObserver(causalgc.FanoutObserver(a, b)))
	defer c.Close()
	n1 := c.Node(1)
	r, err := n1.NewRemote(n1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n1.DropRefs(n1.Root().Obj, r); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if a.removed != b.removed || a.removed == 0 {
		t.Errorf("fanout children diverge: a.removed=%d b.removed=%d", a.removed, b.removed)
	}
}
