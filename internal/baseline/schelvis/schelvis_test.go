package schelvis

import (
	"testing"

	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// buildDLL creates a k-element doubly-linked list, one vertex per site,
// rooted at site 1's root vertex, and returns detectors and vertex IDs.
func buildDLL(t *testing.T, k int) (*netsim.Sim, []*Detector, ids.ClusterID, []ids.ClusterID) {
	t.Helper()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	horizon := k + 2
	dets := make([]*Detector, k+1)
	for i := 0; i <= k; i++ {
		dets[i] = New(ids.SiteID(i+1), net, horizon, nil)
	}
	root := ids.ClusterID{Site: 1, Seq: 1, Root: true}
	dets[0].AddVertex(root)
	elems := make([]ids.ClusterID, k)
	for i := 0; i < k; i++ {
		elems[i] = ids.ClusterID{Site: ids.SiteID(i + 2), Seq: 1}
		dets[i+1].AddVertex(elems[i])
	}
	// Root holds every element (as mutator.BuildDLL does), plus the
	// doubly-linked neighbour edges.
	for i := 0; i < k; i++ {
		dets[0].CreateEdge(root, elems[i])
	}
	for i := 0; i+1 < k; i++ {
		dets[i+1].CreateEdge(elems[i], elems[i+1])
		dets[i+2].CreateEdge(elems[i+1], elems[i])
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		d.Kick()
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	return net, dets, root, elems
}

func TestSchelvisKeepsLiveDLL(t *testing.T) {
	_, dets, _, elems := buildDLL(t, 6)
	for i, e := range elems {
		if dets[i+1].IsDead(e) {
			t.Fatalf("live element %v collected", e)
		}
	}
}

func TestSchelvisCollectsDetachedDLL(t *testing.T) {
	net, dets, root, elems := buildDLL(t, 6)
	for _, e := range elems {
		dets[0].DestroyEdge(root, e)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, d := range dets {
		removed += d.Removed()
	}
	if removed != len(elems) {
		t.Fatalf("removed %d of %d detached elements", removed, len(elems))
	}
}

func TestSchelvisCollectsCycle(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	d1 := New(1, net, 8, nil)
	d2 := New(2, net, 8, nil)
	d3 := New(3, net, 8, nil)
	root := ids.ClusterID{Site: 1, Seq: 1, Root: true}
	a := ids.ClusterID{Site: 2, Seq: 1}
	b := ids.ClusterID{Site: 3, Seq: 1}
	d1.AddVertex(root)
	d2.AddVertex(a)
	d3.AddVertex(b)
	d1.CreateEdge(root, a)
	d2.CreateEdge(a, b)
	d3.CreateEdge(b, a)
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	d1.Kick()
	d2.Kick()
	d3.Kick()
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if d2.IsDead(a) || d3.IsDead(b) {
		t.Fatal("live cycle collected")
	}
	d1.DestroyEdge(root, a)
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if !d2.IsDead(a) || !d3.IsDead(b) {
		t.Fatal("detached cycle not collected (Schelvis is comprehensive)")
	}
}

// TestSchelvisQuadraticOnDLL verifies the §4 complexity claim's shape:
// messages to collect a detached k-element doubly-linked list grow
// quadratically (count-to-infinity over the subcycles), so the ratio
// messages(2k)/messages(k) approaches 4.
func TestSchelvisQuadraticOnDLL(t *testing.T) {
	cost := func(k int) int {
		net, dets, root, elems := buildDLL(t, k)
		base := net.Stats().TotalSent()
		for _, e := range elems {
			dets[0].DestroyEdge(root, e)
		}
		if _, err := net.Run(0); err != nil {
			t.Fatal(err)
		}
		return net.Stats().TotalSent() - base
	}
	c16, c32 := cost(16), cost(32)
	ratio := float64(c32) / float64(c16)
	t.Logf("detach cost: k=16 %d msgs, k=32 %d msgs, ratio %.2f", c16, c32, ratio)
	if ratio < 2.8 {
		t.Errorf("expected superlinear (≈4×) growth, got ratio %.2f", ratio)
	}
}
