package sim_test

import (
	"testing"

	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

// partition3v3 blocks traffic between {1,2,3} and {4,5,6}.
func partition3v3(from, to ids.SiteID) bool {
	return (from <= 3) != (to <= 3)
}

// TestChurnReliableNetwork runs randomised workloads over a reliable (but
// arbitrarily interleaved) network across many seeds and checks both
// invariants against the global oracle:
//
//	safety  — no reachable object is ever collected (no dangling refs);
//	liveness — at quiescence every unreachable object has been collected,
//	           distributed cycles included (comprehensiveness, §1).
func TestChurnReliableNetwork(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		w := sim.NewWorld(6, netsim.Faults{Seed: seed}, site.DefaultOptions())
		stats, err := mutator.Churn(w, mutator.ChurnConfig{
			Seed:            seed * 7,
			Ops:             250,
			StepsBetweenOps: 3,
		})
		if err != nil {
			t.Fatalf("seed %d: churn: %v", seed, err)
		}
		if err := w.Settle(); err != nil {
			t.Fatalf("seed %d: settle: %v", seed, err)
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation: %v (churn %+v)", seed, rep, stats)
		}
		if len(rep.Garbage) != 0 {
			t.Errorf("seed %d: liveness: %d residual garbage objects on a reliable network: %v (churn %+v)",
				seed, len(rep.Garbage), rep.Garbage, stats)
		}
	}
}

// TestChurnReorderedNetwork repeats the exercise with arbitrary per-channel
// reordering: idempotent, stamp-ordered GGD messages must keep both
// invariants.
func TestChurnReorderedNetwork(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		w := sim.NewWorld(5, netsim.Faults{Seed: seed, Reorder: true}, site.DefaultOptions())
		if _, err := mutator.Churn(w, mutator.ChurnConfig{
			Seed:            seed * 13,
			Ops:             200,
			StepsBetweenOps: 2,
		}); err != nil {
			t.Fatalf("seed %d: churn: %v", seed, err)
		}
		if err := w.Settle(); err != nil {
			t.Fatalf("seed %d: settle: %v", seed, err)
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation under reordering: %v", seed, rep)
		}
		if len(rep.Garbage) != 0 {
			t.Errorf("seed %d: residual garbage under reordering: %v", seed, rep)
		}
	}
}

// TestChurnDuplicatedMessages: duplication must be entirely harmless (§5:
// GGD messages are idempotent).
func TestChurnDuplicatedMessages(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		w := sim.NewWorld(5, netsim.Faults{Seed: seed, DupProb: 0.3, Reorder: true}, site.DefaultOptions())
		if _, err := mutator.Churn(w, mutator.ChurnConfig{
			Seed:            seed * 31,
			Ops:             200,
			StepsBetweenOps: 2,
		}); err != nil {
			t.Fatalf("seed %d: churn: %v", seed, err)
		}
		if err := w.Settle(); err != nil {
			t.Fatalf("seed %d: settle: %v", seed, err)
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation under duplication: %v", seed, rep)
		}
		// Duplicated relays can leave stale conservative hints; with the
		// hint-expiry protocol a single refresh round resolves them
		// (safety is unconditional, §5), and residual garbage after it
		// is a regression.
		if len(rep.Garbage) != 0 {
			if err := w.RefreshAll(); err != nil {
				t.Fatalf("seed %d: refresh: %v", seed, err)
			}
			if err := w.Settle(); err != nil {
				t.Fatalf("seed %d: settle: %v", seed, err)
			}
			rep = w.Check()
			if !rep.Safe() {
				t.Fatalf("seed %d: SAFETY violation after dup recovery: %v", seed, rep)
			}
			if len(rep.Garbage) != 0 {
				t.Fatalf("seed %d: residual garbage under duplication after one refresh round: %v", seed, rep)
			}
		}
	}
}

// TestChurnLossyNetwork drops GGD control traffic at random. Safety must
// hold unconditionally; loss may only cause residual garbage (§1: "loss of
// messages cannot cause erroneous identification of live objects as being
// garbage... can only cause residual garbage to remain undetected").
func TestChurnLossyNetwork(t *testing.T) {
	residualRuns := 0
	for seed := int64(1); seed <= 25; seed++ {
		w := sim.NewWorld(5, netsim.Faults{Seed: seed, DropProb: 0.15, Reorder: true}, site.DefaultOptions())
		if _, err := mutator.Churn(w, mutator.ChurnConfig{
			Seed:            seed * 17,
			Ops:             200,
			StepsBetweenOps: 2,
		}); err != nil {
			t.Fatalf("seed %d: churn: %v", seed, err)
		}
		if err := w.Settle(); err != nil {
			t.Fatalf("seed %d: settle: %v", seed, err)
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation under loss: %v", seed, rep)
		}
		if len(rep.Garbage) > 0 {
			residualRuns++
		}

		// Heal the network and run recovery refresh rounds: residual
		// garbage shrinks (idempotent re-propagation); safety persists.
		w.Net().SetDropProb(0)
		before := len(rep.Garbage)
		for i := 0; i < 4; i++ {
			if err := w.RefreshAll(); err != nil {
				t.Fatalf("seed %d: refresh: %v", seed, err)
			}
			if err := w.Settle(); err != nil {
				t.Fatalf("seed %d: settle after refresh: %v", seed, err)
			}
		}
		rep = w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation after recovery: %v", seed, rep)
		}
		if got := len(rep.Garbage); got > before {
			t.Errorf("seed %d: recovery increased residual garbage: %d -> %d", seed, before, got)
		}
	}
	t.Logf("runs with residual garbage before recovery: %d/25", residualRuns)
}

// TestChurnPartition: messages across a partition are lost; after healing
// and refreshing, the system recovers without ever violating safety.
func TestChurnPartition(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		w := sim.NewWorld(6, netsim.Faults{Seed: seed}, site.DefaultOptions())
		// Partition sites {1,2,3} from {4,5,6} mid-workload.
		if _, err := mutator.Churn(w, mutator.ChurnConfig{Seed: seed, Ops: 100, StepsBetweenOps: 2}); err != nil {
			t.Fatalf("seed %d: churn: %v", seed, err)
		}
		w.Net().SetPartition(partition3v3)
		if _, err := mutator.Churn(w, mutator.ChurnConfig{Seed: seed * 3, Ops: 100, StepsBetweenOps: 2}); err != nil {
			t.Fatalf("seed %d: churn under partition: %v", seed, err)
		}
		if err := w.Settle(); err != nil {
			t.Fatalf("seed %d: settle: %v", seed, err)
		}
		if rep := w.Check(); !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation under partition: %v", seed, rep)
		}

		w.Net().SetPartition(nil)
		for i := 0; i < 4; i++ {
			if err := w.RefreshAll(); err != nil {
				t.Fatalf("seed %d: refresh: %v", seed, err)
			}
			if err := w.Settle(); err != nil {
				t.Fatalf("seed %d: settle: %v", seed, err)
			}
		}
		if rep := w.Check(); !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation after heal: %v", seed, rep)
		}
	}
}
