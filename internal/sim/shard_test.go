package sim

import (
	"sync"
	"testing"

	"causalgc/internal/heap"
	"causalgc/internal/netsim"
	"causalgc/internal/oracle"
	"causalgc/internal/site"
)

// This file is the multi-shard equivalence lane: the lock-striped
// engine must be indistinguishable from the classic single-lock runtime
// under every fault the harness can throw. Two batteries:
//
//   - TestShardedEquivalenceFuzz replays the seeded symbolic op stream
//     of the batch lane against a 4-shard world and an unsharded
//     reference world — drops, duplication, reordering and a
//     kill-and-restart included — and demands identical minted
//     references and identical clean oracle verdicts.
//   - TestShardedConcurrentCommitters is the true-concurrency safety
//     battery (run under -race): committers pinned to distinct shards
//     mutate one site simultaneously, with cross-shard SendRef chains
//     and a concurrent collector, then everything is dropped and the
//     site must collect down to its root.

// TestShardedEquivalenceFuzz: same plan, same seed, same faults —
// striped and unsharded executions may not diverge in anything the
// mutator or the oracle can observe.
func TestShardedEquivalenceFuzz(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	const sites, rounds, shards = 4, 30, 4
	for _, seed := range seeds {
		plan := makeBatchPlan(seed, sites, rounds)
		wRef, poolRef := execPlanSharded(t, plan, seed, sites, t.TempDir(), false, 0)
		wSh, poolSh := execPlanSharded(t, plan, seed, sites, t.TempDir(), false, shards)
		if len(poolRef) != len(poolSh) {
			t.Fatalf("seed %d: pool sizes diverge: unsharded %d, %d-shard %d", seed, len(poolRef), shards, len(poolSh))
		}
		for i := range poolRef {
			if poolRef[i] != poolSh[i] {
				t.Fatalf("seed %d: minted ref %d diverges: unsharded %v, %d-shard %v", seed, i, poolRef[i], shards, poolSh[i])
			}
		}
		repRef, repSh := wRef.Check(), wSh.Check()
		if !repRef.Clean() || !repSh.Clean() {
			t.Fatalf("seed %d: verdicts diverge from clean: unsharded %v, %d-shard %v", seed, repRef, shards, repSh)
		}
		if repRef.Live != repSh.Live {
			t.Fatalf("seed %d: live counts diverge: unsharded %d, %d-shard %d", seed, repRef.Live, shards, repSh.Live)
		}
		t.Logf("seed %d: both widths clean with %d live objects", seed, repRef.Live)
		wRef.Close()
		wSh.Close()
	}
}

// TestShardedConcurrentCommitters exercises genuine multi-core
// interleavings on one 4-shard site: four committers, each anchored to
// its own shard, extend private chains, periodically hand references
// across the shard boundary, and race a collector goroutine. At the
// end the anchors are dropped and the whole graph — cross-shard cycles
// included — must be reclaimed.
func TestShardedConcurrentCommitters(t *testing.T) {
	const (
		workers = 4
		iters   = 300
	)
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s := site.NewSharded(1, net, site.DefaultOptions(), workers)
	root := s.Root().Obj

	// Anchors are created sequentially so round-robin placement pins
	// committer i to shard i.
	anchors := make([]heap.Ref, workers)
	for i := range anchors {
		ref, err := s.NewLocal(root)
		if err != nil {
			t.Fatal(err)
		}
		anchors[i] = ref
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			anchor := anchors[i]
			cur := anchor.Obj
			var last heap.Ref
			for n := 0; n < iters; n++ {
				switch n % 8 {
				case 3:
					// Cross-shard handoff: give the next committer's
					// anchor the newest link of our chain.
					if last != heap.NilRef {
						to := anchors[(i+1)%workers]
						if err := s.SendRef(anchor.Obj, to, last); err != nil {
							t.Error(err)
							return
						}
					}
				case 6:
					// Drop our own edge to the newest link (it may
					// survive through the neighbour's anchor).
					if last != heap.NilRef {
						if err := s.DropRefs(anchor.Obj, last); err != nil {
							t.Error(err)
							return
						}
						last = heap.NilRef
					}
				default:
					ref, err := s.NewLocalIn(cur, anchor.Cluster)
					if err != nil {
						t.Error(err)
						return
					}
					cur = ref.Obj
					// Keep the chain reachable from the anchor directly
					// too, so SendRef below always holds its target.
					if err := s.AddRef(anchor.Obj, ref); err != nil {
						t.Error(err)
						return
					}
					last = ref
				}
			}
		}(i)
	}
	// A collector races the committers: cycle-level operations hold the
	// cycle lock, not the world.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 20; n++ {
			if _, err := s.Collect(); err != nil {
				t.Error(err)
				return
			}
			if err := s.Refresh(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	if rep := oracle.Check(s); !rep.Safe() {
		t.Fatalf("safety violation at quiescence: %v", rep)
	}

	// Tear down: drop every anchor; everything else hangs off them.
	for _, a := range anchors {
		if err := s.DropRefs(root, a); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 24 && s.NumObjects() > 1; round++ {
		if _, err := s.Collect(); err != nil {
			t.Fatal(err)
		}
		if err := s.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.NumObjects(); got != 1 {
		rep := oracle.Check(s)
		t.Fatalf("NumObjects = %d after dropping all anchors, want 1 (oracle: %v)", got, rep)
	}
	if d := s.HandoffDepth(); d != 0 {
		t.Errorf("handoff depth = %d at quiescence, want 0", d)
	}
	if rep := oracle.Check(s); !rep.Clean() {
		t.Errorf("not clean at quiescence: %v", rep)
	}
}
