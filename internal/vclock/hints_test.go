package vclock

import (
	"strings"
	"testing"
)

func TestHintSetArmAndClear(t *testing.T) {
	h := NewHintSet()
	if h.Has(c3) || !h.Empty() {
		t.Fatal("new set not empty")
	}
	if !h.Arm(c3, c2, 5) {
		t.Fatal("Arm must report change")
	}
	if h.Arm(c3, c2, 5) {
		t.Error("re-arming same seq must be a no-op")
	}
	if !h.Has(c3) || h.Empty() {
		t.Error("hint not pending")
	}
	if got := h.Pending(c3).Get(c2); got != At(5) {
		t.Errorf("pending = %v", got)
	}

	// Clearing below the armed seq leaves it pending.
	if !h.Clear(c3, c2, 4) {
		t.Error("Clear must record the bound")
	}
	if !h.Has(c3) {
		t.Error("hint wrongly cleared by a lower bound")
	}
	// Clearing at the seq resolves it.
	h.Clear(c3, c2, 5)
	if h.Has(c3) {
		t.Error("hint not cleared")
	}
	// Stale re-arm suppressed by the resolution bound.
	if h.Arm(c3, c2, 5) || h.Has(c3) {
		t.Error("stale re-arm not suppressed")
	}
	// A genuinely newer introduction re-arms.
	if !h.Arm(c3, c2, 6) || !h.Has(c3) {
		t.Error("newer introduction must re-arm")
	}
}

func TestHintSetZeroSeqIgnored(t *testing.T) {
	h := NewHintSet()
	if h.Arm(c3, c2, 0) {
		t.Error("zero seq must not arm")
	}
}

func TestHintSetPerIntroducer(t *testing.T) {
	h := NewHintSet()
	h.Arm(c3, c2, 5)
	h.Arm(c3, c4, 2)
	h.Clear(c3, c2, 5)
	if !h.Has(c3) {
		t.Error("clearing one introducer must not resolve the other's hint")
	}
	h.Clear(c3, c4, 2)
	if h.Has(c3) {
		t.Error("all introducers resolved; hint must be gone")
	}
}

func TestHintSetColsSortedAndString(t *testing.T) {
	h := NewHintSet()
	h.Arm(c4, c2, 1)
	h.Arm(c3, c2, 1)
	cols := h.Cols()
	if len(cols) != 2 || !cols[0].Less(cols[1]) {
		t.Errorf("Cols = %v", cols)
	}
	if s := h.String(); !strings.Contains(s, "s3/c1<-") {
		t.Errorf("String = %q", s)
	}
	if NewHintSet().String() != "{}" {
		t.Error("empty String")
	}
}

func TestHintSetExpire(t *testing.T) {
	h := NewHintSet()
	h.Arm(c3, c2, 5)
	if !h.Expire(c3, c2, 5) {
		t.Fatal("Expire must report change")
	}
	if h.Has(c3) {
		t.Error("expired hint still pending")
	}
	if got := h.ResolvedThrough(c3, c2); got != 5 {
		t.Errorf("ResolvedThrough = %d, want 5", got)
	}
	// The expiry bound suppresses stale re-arms exactly like Clear.
	if h.Arm(c3, c2, 4) || h.Has(c3) {
		t.Error("stale re-arm not suppressed by the expiry bound")
	}
	// A fresher forwarding (a new introduction of the same pair) is not
	// covered by the bound and arms again.
	if !h.Arm(c3, c2, 6) || !h.Has(c3) {
		t.Error("fresher forwarding wrongly expired")
	}
}

func TestHintSetExpireBeforeArm(t *testing.T) {
	// The expiry may race ahead of the arming (the negative assert is
	// issued the moment the dead transfer is delivered, the arming bundle
	// can arrive later): the bound must already suppress it.
	h := NewHintSet()
	if h.ResolvedThrough(c3, c2) != 0 {
		t.Fatal("fresh set has a bound")
	}
	h.Expire(c3, c2, 5)
	if h.Arm(c3, c2, 5) || h.Has(c3) {
		t.Error("arming after expiry not suppressed")
	}
}

func TestHintSetClone(t *testing.T) {
	h := NewHintSet()
	h.Arm(c3, c2, 5)
	h.Clear(c4, c2, 9)
	cp := h.Clone()
	cp.Clear(c3, c2, 5)
	cp.Arm(c4, c2, 10)
	if !h.Has(c3) {
		t.Error("Clone shares pending state")
	}
	if h.Has(c4) {
		t.Error("Clone shares cleared state")
	}
}
