// Package determcheck enforces determinism of the replayable packages:
// the engine, heap, vector-clock, wire and simulator code must produce
// identical behaviour for identical inputs, because WAL replay
// (DESIGN.md §5) and the seeded simulator lanes depend on it. Three
// nondeterminism sources are forbidden there:
//
//   - wall-clock reads (time.Now, time.Since),
//   - the global math/rand source (argless rand.Int etc. — a seeded
//     *rand.Rand constructed via rand.New(rand.NewSource(seed)) is
//     deterministic and allowed),
//   - wire output performed directly inside a map iteration, whose
//     order varies run to run (collect the keys and sort first, as
//     flushCoalesceLocked does).
//
// Audited sites carry //causalgc:allow-wallclock,
// //causalgc:allow-rand or //causalgc:allow-maporder with a
// justification.
package determcheck

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"causalgc/internal/analysis"
)

// Config scopes the analyzer to the packages that must stay
// deterministic.
type Config struct {
	// Packages are the import paths under the determinism contract.
	Packages []string
}

// Analyzer is the determcheck instance run by causalgc-vet, covering
// the replay- and simulation-critical packages.
var Analyzer = New(Config{Packages: []string{
	"causalgc/internal/core",
	"causalgc/internal/heap",
	"causalgc/internal/vclock",
	"causalgc/internal/wire",
	"causalgc/internal/netsim",
}})

// wallclockFuncs are the time package functions that read the clock.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand functions that construct an
// explicitly seeded generator rather than drawing from the global one.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// New returns a determcheck analyzer for the given scope.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "determcheck",
		Doc:         "deterministic packages must not read the wall clock, draw from the global rand source, or emit in map-iteration order",
		NonTestOnly: true,
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	applies := false
	for _, p := range cfg.Packages {
		if pass.PkgPath == p {
			applies = true
		}
	}
	if !applies {
		return nil
	}
	for _, f := range pass.Files {
		timeNames, randNames := packageNames(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, timeNames, randNames)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// packageNames resolves the file-local identifiers the time and
// math/rand packages are imported under (handling aliases), so the
// check survives renames without needing type information.
func packageNames(f *ast.File) (timeNames, randNames map[string]bool) {
	timeNames = map[string]bool{}
	randNames = map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "time":
			if name == "" {
				name = "time"
			}
			timeNames[name] = true
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randNames[name] = true
		}
	}
	return timeNames, randNames
}

// checkCall flags wall-clock reads and global-source rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, timeNames, randNames map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	switch {
	case timeNames[pkg.Name] && wallclockFuncs[sel.Sel.Name]:
		if pass.Allowed(call.Pos(), "wallclock") {
			return
		}
		pass.Reportf(call.Pos(), "wall-clock read %s.%s in a deterministic package breaks replay; audited sites need //causalgc:allow-wallclock", pkg.Name, sel.Sel.Name)
	case randNames[pkg.Name] && !seededRandFuncs[sel.Sel.Name]:
		if pass.Allowed(call.Pos(), "rand") {
			return
		}
		pass.Reportf(call.Pos(), "%s.%s draws from the global rand source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) or annotate //causalgc:allow-rand", pkg.Name, sel.Sel.Name)
	}
}

// checkMapRange flags wire output performed directly inside a range
// over a map: iteration order varies between runs, so the emitted
// frame order would too. Requires type information to know the ranged
// expression is a map; without it the check is skipped.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if pass.TypesInfo == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if !emitsOutput(name) {
			return true
		}
		if pass.Allowed(call.Pos(), "maporder") {
			return true
		}
		pass.Reportf(call.Pos(), "%s inside a map iteration emits in nondeterministic order; collect the keys, sort, then emit (or annotate //causalgc:allow-maporder)", name)
		return true
	})
}

// emitsOutput reports whether a callee name looks like wire output:
// the transport Send and the runtime's emit family.
func emitsOutput(name string) bool {
	return name == "Send" || strings.HasPrefix(name, "emit") || strings.HasPrefix(name, "Emit")
}
