package site

import (
	"sort"
	"sync"

	"causalgc/internal/core"
	"causalgc/internal/ids"
	"causalgc/internal/wire"
)

// This file implements the site half of the acknowledged-retirement
// protocol (DESIGN.md §3.2). The engine decides *what* is retained and
// re-sent; the site owns the wire-level bookkeeping: per-(peer, stream)
// sequence counters on the send side, cumulative watermarks on the
// receive side, FrameAck emission, StreamAdvance floor advisories, and
// the outbox of unacknowledged mutator frames.
//
// The stream state lives in a streams table shared by every shard of a
// sharded site (DESIGN.md §3.4): a remote peer tracks ONE cumulative
// watermark per stream from this site, so two shards drawing sequences
// toward the same peer must draw from the same counter — per-shard
// counters would collide at the peer and silently retire undelivered
// frames. An unsharded runtime owns a private table; the code path is
// identical.

// FrameStats counts the site-level retirement activity: the operator's
// view of how much re-send state is outstanding, how it drains, and —
// crucially — whether the hard-capped backstops ever dropped state
// (tolerated loss that used to be silent).
type FrameStats struct {
	// OutboxRetained is the current number of unacknowledged outbound
	// mutator frames (gauge).
	OutboxRetained int
	// OutboxEvicted counts frames dropped at the outbox hard cap before
	// acknowledgement: tolerated loss, surfaced here and through the
	// optional AckObserver.
	OutboxEvicted int
	// OutboxResends counts outbox frames re-shipped by Refresh.
	OutboxResends int
	// ResendsSuppressed counts outbox re-sends the damper held back.
	ResendsSuppressed int
	// AcksSent and AcksReceived count FrameAck traffic.
	AcksSent, AcksReceived int
	// FramesRetired counts outbox frames retired by cumulative acks
	// (engine-side rows are counted in EngineStats.RowsRetired).
	FramesRetired int
	// AdvancesSent counts StreamAdvance floor advisories.
	AdvancesSent int
}

// AckObserver is an optional extension of Observer: implementations
// that also satisfy it receive retirement events. Like Observer
// callbacks, these run with the runtime's mutex held and must not call
// back into the Runtime.
type AckObserver interface {
	// FrameEvicted fires when the outbox hard cap drops an
	// unacknowledged mutator frame bound for peer: tolerated loss.
	FrameEvicted(site ids.SiteID, peer ids.SiteID, stream core.Stream, frames int)
	// FrameRetired fires when a cumulative FrameAck from peer retires
	// outbox frames exactly.
	FrameRetired(site ids.SiteID, peer ids.SiteID, stream core.Stream, frames int)
}

// streamKey names one retirement stream between this site and a peer.
type streamKey struct {
	peer ids.SiteID
	kind core.Stream
}

// streamKeyLess orders stream keys deterministically (ack flushes and
// floor advisories must send in a reproducible order under the
// deterministic simulator).
func streamKeyLess(a, b streamKey) bool {
	if a.peer != b.peer {
		return a.peer < b.peer
	}
	return a.kind < b.kind
}

// sendStream is the sender side of one stream: the sequence counter and
// the peer's highest cumulative acknowledgement.
type sendStream struct {
	nextSeq uint64
	ackedTo uint64
}

// maxRecvPending bounds the out-of-order set of one receive tracker; a
// mark past the bound is dropped (the frame is re-sent later and marks
// again once the gap below it narrows).
const maxRecvPending = 1 << 15

// recvTracker is the receiver side of one stream: the cumulative
// watermark (every sequence ≤ watermark settled) plus the settled
// sequences above it still waiting for a gap to fill.
type recvTracker struct {
	watermark uint64
	pending   map[uint64]struct{}
}

// mark records one settled sequence and advances the watermark over any
// now-contiguous prefix.
func (t *recvTracker) mark(seq uint64) {
	if seq <= t.watermark {
		return
	}
	if t.pending == nil {
		t.pending = make(map[uint64]struct{})
	}
	if _, ok := t.pending[seq]; !ok && len(t.pending) >= maxRecvPending {
		return
	}
	t.pending[seq] = struct{}{}
	for {
		if _, ok := t.pending[t.watermark+1]; !ok {
			return
		}
		t.watermark++
		delete(t.pending, t.watermark)
	}
}

// advance raises the watermark to floor-1 (a StreamAdvance advisory:
// everything below floor is acknowledged-or-abandoned at the sender)
// and prunes the out-of-order set.
func (t *recvTracker) advance(floor uint64) bool {
	if floor == 0 || floor-1 <= t.watermark {
		return false
	}
	t.watermark = floor - 1
	for seq := range t.pending {
		if seq <= t.watermark {
			delete(t.pending, seq)
		}
	}
	// The advance may have made pending sequences contiguous.
	for {
		if _, ok := t.pending[t.watermark+1]; !ok {
			return true
		}
		t.watermark++
		delete(t.pending, t.watermark)
	}
}

// streams is the shared per-site retirement-stream state: one instance
// per site, shared by every shard. Its mutex is a leaf in the lock
// order (shard r.mu → st.mu): nothing is called while holding it, so
// shards contend only for the few loads/stores below.
type streams struct {
	mu sync.Mutex
	// send and recv are the per-(peer, stream) retirement-stream states:
	// sequence counters and acknowledged watermarks on the send side,
	// cumulative settle watermarks on the receive side (DESIGN.md §3.2).
	send map[streamKey]*sendStream
	recv map[streamKey]*recvTracker
	// peerEpoch is the last seen recovery epoch per peer; a change
	// re-arms the re-send dampers for that peer.
	peerEpoch map[ids.SiteID]uint64
	// epoch counts this site's recoveries, piggybacked on FrameAcks.
	epoch uint64
	// refreshRound is the damper time base for outbox re-sends.
	refreshRound uint64
	// mint numbers identities created by this site on behalf of others.
	mint uint64
	// fstats counts the retirement activity.
	fstats FrameStats
}

func newStreams() *streams {
	return &streams{
		send:      make(map[streamKey]*sendStream),
		recv:      make(map[streamKey]*recvTracker),
		peerEpoch: make(map[ids.SiteID]uint64),
	}
}

// sendStream returns (creating if needed) the send-side stream state.
// Caller holds st.mu.
func (st *streams) sendStream(peer ids.SiteID, kind core.Stream) *sendStream {
	k := streamKey{peer: peer, kind: kind}
	s := st.send[k]
	if s == nil {
		s = &sendStream{}
		st.send[k] = s
	}
	return s
}

// assignSeqLocked returns seq unchanged when non-zero (a re-send under
// its original sequence) and otherwise assigns the next sequence of the
// (peer, kind) stream. Caller holds r.mu.
func (r *Runtime) assignSeqLocked(peer ids.SiteID, kind core.Stream, seq uint64) uint64 {
	if seq != 0 {
		return seq
	}
	st := r.st
	st.mu.Lock()
	s := st.sendStream(peer, kind)
	s.nextSeq++
	seq = s.nextSeq
	st.mu.Unlock()
	return seq
}

// observeSeqLocked raises the (peer, kind) send counter to at least
// seq: applying a record that carries a pre-drawn sequence (OpRecord
// .MutSeq) must keep the shared counter ahead of every recorded draw,
// or a post-replay draw would re-issue a sequence the peer already
// settled. Caller holds r.mu.
func (r *Runtime) observeSeqLocked(peer ids.SiteID, kind core.Stream, seq uint64) {
	st := r.st
	st.mu.Lock()
	s := st.sendStream(peer, kind)
	if s.nextSeq < seq {
		s.nextSeq = seq
	}
	st.mu.Unlock()
}

// markRecvLocked records the settlement of one tracked inbound frame
// and schedules a FrameAck flush for its stream — also on duplicates,
// which re-sends the unchanged watermark and heals a lost ack. Caller
// holds r.mu.
func (r *Runtime) markRecvLocked(peer ids.SiteID, kind core.Stream, seq uint64) {
	if seq == 0 || kind == 0 {
		return
	}
	k := streamKey{peer: peer, kind: kind}
	st := r.st
	st.mu.Lock()
	t := st.recv[k]
	if t == nil {
		t = &recvTracker{}
		st.recv[k] = t
	}
	t.mark(seq)
	st.mu.Unlock()
	if r.dirtyAcks == nil {
		r.dirtyAcks = make(map[streamKey]struct{})
	}
	r.dirtyAcks[k] = struct{}{}
}

// flushAcksLocked emits one FrameAck per dirty stream, in deterministic
// order. The dirty set is per shard — the shard that settled a frame
// acknowledges it — while the watermarks are shared, so an ack emitted
// here may also cover settlements a sibling shard just made: harmless,
// acks are cumulative and receivers ignore stale ones. Caller holds
// r.mu.
func (r *Runtime) flushAcksLocked() {
	if len(r.dirtyAcks) == 0 {
		return
	}
	keys := make([]streamKey, 0, len(r.dirtyAcks))
	for k := range r.dirtyAcks {
		keys = append(keys, k)
	}
	r.dirtyAcks = nil
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	st := r.st
	for _, k := range keys {
		st.mu.Lock()
		t := st.recv[k]
		var ack wire.FrameAck
		ok := t != nil
		if ok {
			st.fstats.AcksSent++
			ack = wire.FrameAck{Stream: k.kind, Seq: t.watermark, Epoch: st.epoch}
		}
		st.mu.Unlock()
		if ok {
			r.emitLocked(k.peer, ack)
		}
	}
}

// handleFrameAckLocked processes a cumulative acknowledgement from
// peer: epoch changes re-arm the re-send dampers (the peer restarted
// and may have lost undurable state), and the watermark retires the
// covered retained state of THIS shard exactly. The shared ackedTo
// floor only ever rises; retirement itself is idempotent, so on a
// sharded site the same ack fans out to every shard and each retires
// its own rows. Caller holds r.mu.
func (r *Runtime) handleFrameAckLocked(peer ids.SiteID, m wire.FrameAck) {
	st := r.st
	st.mu.Lock()
	if r.shardIndex() == 0 {
		// fstats is shared and the ack fans out to every shard: count
		// the network delivery once, not once per shard.
		st.fstats.AcksReceived++
	}
	restart := false
	if last, ok := st.peerEpoch[peer]; !ok || last != m.Epoch {
		st.peerEpoch[peer] = m.Epoch
		// A genuine restart (not first contact): re-arm everything
		// bound for the peer.
		restart = ok
	}
	s := st.sendStream(peer, m.Stream)
	if m.Seq > s.ackedTo {
		s.ackedTo = m.Seq
	}
	st.mu.Unlock()
	if restart {
		r.engine.ResetPeerBackoff(peer)
		for i := range r.outbox {
			if r.outbox[i].to == peer {
				r.outbox[i].bo.Reset()
			}
		}
	}
	switch m.Stream {
	case core.StreamMut:
		r.retireOutboxLocked(peer, m.Seq)
	case core.StreamAssert:
		r.engine.AckAsserts(peer, m.Seq)
	case core.StreamDestroy:
		r.engine.AckDestroys(peer, m.Seq)
	case core.StreamLegacy:
		r.engine.AckLegacy(peer, m.Seq)
	}
}

// handleAdvanceLocked processes a sender's floor advisory: sequences
// below the floor will never be (re-)sent, so the watermark skips the
// dead gap, and the refreshed watermark is acknowledged back. Caller
// holds r.mu.
func (r *Runtime) handleAdvanceLocked(peer ids.SiteID, m wire.StreamAdvance) {
	if m.Stream == 0 || m.Floor == 0 {
		return
	}
	k := streamKey{peer: peer, kind: m.Stream}
	st := r.st
	st.mu.Lock()
	t := st.recv[k]
	if t == nil {
		t = &recvTracker{}
		st.recv[k] = t
	}
	t.advance(m.Floor)
	st.mu.Unlock()
	if r.dirtyAcks == nil {
		r.dirtyAcks = make(map[streamKey]struct{})
	}
	r.dirtyAcks[k] = struct{}{}
}

// retireOutboxLocked drops every outbox frame bound for peer covered by
// the watermark. Caller holds r.mu.
func (r *Runtime) retireOutboxLocked(peer ids.SiteID, watermark uint64) {
	kept := r.outbox[:0]
	n := 0
	for _, f := range r.outbox {
		if f.to == peer && f.seq <= watermark {
			n++
			continue
		}
		kept = append(kept, f)
	}
	for i := len(kept); i < len(r.outbox); i++ {
		r.outbox[i] = outboundFrame{}
	}
	r.outbox = kept
	if n > 0 {
		r.st.mu.Lock()
		r.st.fstats.FramesRetired += n
		r.st.mu.Unlock()
		if ao, ok := r.opts.Observer.(AckObserver); ok {
			ao.FrameRetired(r.id, peer, core.StreamMut, n)
		}
	}
}

// resendOutboxLocked re-ships the unacknowledged, damper-due outbox
// frames during a refresh round. Caller holds r.mu.
func (r *Runtime) resendOutboxLocked() {
	r.st.mu.Lock()
	round := r.st.refreshRound
	r.st.mu.Unlock()
	resent, suppressed := 0, 0
	for i := range r.outbox {
		f := &r.outbox[i]
		if !f.bo.Ready(round) {
			suppressed++
			continue
		}
		resent++
		r.emitLocked(f.to, f.p)
		f.bo.Bump(round, core.EffectiveBackoffCap(r.opts.Engine.ResendBackoffCap))
	}
	if resent+suppressed > 0 {
		r.st.mu.Lock()
		r.st.fstats.OutboxResends += resent
		r.st.fstats.ResendsSuppressed += suppressed
		r.st.mu.Unlock()
	}
}

// retainedFloorLocked reports the smallest sequence this shard still
// retains on the (peer, kind) stream, or 0 when it retains nothing
// there. Caller holds r.mu.
func (r *Runtime) retainedFloorLocked(peer ids.SiteID, kind core.Stream) uint64 {
	if kind == core.StreamMut {
		var floor uint64
		for _, f := range r.outbox {
			if f.to == peer && (floor == 0 || f.seq < floor) {
				floor = f.seq
			}
		}
		return floor
	}
	if f, any := r.engine.RetainedFloor(peer, kind); any {
		return f
	}
	return 0
}

// advanceFloorsLocked emits StreamAdvance advisories for every send
// stream whose acknowledged watermark trails the smallest sequence the
// site still retains: the gap below the floor is acknowledged-or-
// abandoned and would otherwise stall the peer's cumulative watermark
// forever. Unsharded path only — one shard's view of "retained" is not
// the site's, so a sharded site merges per-shard floors in
// Sharded.Refresh instead (emitting a floor past a sibling shard's
// retained row would let the peer retire it undelivered). Caller holds
// r.mu.
func (r *Runtime) advanceFloorsLocked() {
	st := r.st
	st.mu.Lock()
	keys := make([]streamKey, 0, len(st.send))
	for k := range st.send {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	type snap struct{ nextSeq, ackedTo uint64 }
	snaps := make(map[streamKey]snap, len(keys))
	for _, k := range keys {
		s := st.send[k]
		snaps[k] = snap{nextSeq: s.nextSeq, ackedTo: s.ackedTo}
	}
	st.mu.Unlock()
	advances := 0
	for _, k := range keys {
		s := snaps[k]
		if s.nextSeq == 0 {
			continue
		}
		floor := r.retainedFloorLocked(k.peer, k.kind)
		if floor == 0 {
			floor = s.nextSeq + 1
		}
		if floor-1 <= s.ackedTo {
			continue
		}
		advances++
		r.emitLocked(k.peer, wire.StreamAdvance{Stream: k.kind, Floor: floor})
	}
	if advances > 0 {
		st.mu.Lock()
		st.fstats.AdvancesSent += advances
		st.mu.Unlock()
	}
}

// FrameStats returns a copy of the site-level retirement counters.
func (r *Runtime) FrameStats() FrameStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.st.mu.Lock()
	st := r.st.fstats
	r.st.mu.Unlock()
	st.OutboxRetained = len(r.outbox)
	return st
}
