// Snapshot and WAL record types of the durability subsystem: the typed
// layer between the site runtime and the byte-oriented persist.Store.
//
// A SiteImage is the full durable image of one site — heap, engine,
// runtime bookkeeping and the bounded outbox of unconfirmed mutator
// frames. A WALRecord is one relevant event appended between
// snapshots: either a mutator operation (OpRecord) or an incoming
// message delivery (DeliverRecord). Replaying the records against the
// image deterministically reconstructs the site (see internal/site and
// DESIGN.md §5).
//
// Encoding is gob: the same codec the TCP backend uses for frames, so
// a snapshot can embed any payload a transport can carry.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// SnapshotVersion is bumped when SiteImage changes incompatibly; a
// recovery over a mismatching version fails rather than misdecodes.
// Version 2 added the hint-resolution protocol's durable state (the
// engine's assert re-send journal and retained finalisation bundles,
// RefTransfer.ToCluster inside stored frames). Version 3 added the
// acknowledged-retirement protocol's durable state: per-peer stream
// counters and receive watermarks, the recovery epoch, frame-level
// statistics, and stream sequences on retained rows. Version 4 added
// the lock-striped shard partition (DESIGN.md §3.4): the shard count,
// per-shard state blocks for shards 1..N-1 (shard 0 keeps the legacy
// top-level fields, so a 1-shard image is byte-compatible with v3
// modulo the version number), the round-robin placement cursor, and
// minted identities and pre-drawn stream sequences recorded on
// OpRecords. Older images migrate
// forward losslessly — every new field starts zero, which decodes as
// "one shard, identities re-minted from counters", exactly the
// pre-shard behaviour — so DecodeSnapshot accepts v2 and v3 too.
const SnapshotVersion = 4

// minSnapshotVersion is the oldest snapshot version DecodeSnapshot
// still migrates forward.
const minSnapshotVersion = 2

// SiteImage is the full durable state of one site at a quiescent point.
type SiteImage struct {
	Version int
	Site    ids.SiteID
	// Mint numbers identities created on behalf of other sites.
	Mint uint64
	// Removals counts GGD removals since the last collection (non-zero
	// only when AutoCollect is off).
	Removals int
	Heap     heap.Image
	Engine   core.EngineImage
	// PendingRefs are buffered reference transfers awaiting their
	// holder's creation message.
	PendingRefs []PendingRefImage
	// SeenIntro is the receiver-side dedup record of processed reference
	// transfers, keyed by (introducing cluster, forwarding seq): what
	// makes re-sent mutator frames idempotent after a crash.
	SeenIntro []IntroImage
	// Outbox holds the unacknowledged outbound mutator frames (bounded
	// backstop); recovery and refresh rounds re-send them until the
	// receiver's cumulative FrameAck retires them, and receivers dedup
	// via their own SeenIntro state.
	Outbox []FrameImage
	// Epoch counts this site's recoveries; FrameAcks carry it so peers
	// detect the restart and re-arm their re-send dampers.
	Epoch uint64
	// SendStreams are the per-(peer, stream) sequence counters and
	// acknowledged watermarks of the sender side. Losing a counter to a
	// crash would let a recovered site re-use sequences the peer already
	// settled, silently retiring un-delivered state — so they are
	// durable.
	SendStreams []SendStreamImage
	// RecvStreams are the receiver-side cumulative watermarks (plus any
	// out-of-order sequences above them). Losing one would make this
	// site re-acknowledge from zero, never again covering the peer's
	// outstanding rows.
	RecvStreams []RecvStreamImage
	// PeerEpochs are the last seen recovery epochs per peer.
	PeerEpochs []PeerEpochImage
	// Frames are the site-level retirement statistics.
	Frames FrameStatsImage
	// Shards is the shard count the image was exported with (0 and 1
	// both mean the unsharded runtime — 0 is what v2/v3 images decode
	// to). The count is sticky per data directory: recovery always
	// rebuilds the partition the image records.
	Shards int
	// ShardExtra holds the per-shard state of shards 1..Shards-1; shard
	// 0 lives in the legacy top-level fields above. Shared state (mint
	// counters, stream watermarks, epoch) stays top-level: it is shared
	// across shards at runtime too.
	ShardExtra []ShardState
	// PlaceRR is the round-robin placement cursor for clusters minted
	// under the root cluster (the shard-spreading policy).
	PlaceRR uint64
}

// ShardState is the durable state owned by one non-zero shard.
type ShardState struct {
	Heap        heap.Image
	Engine      core.EngineImage
	Removals    int
	PendingRefs []PendingRefImage
	SeenIntro   []IntroImage
	Outbox      []FrameImage
}

// SendStreamImage is one sender-side retirement stream.
type SendStreamImage struct {
	Peer ids.SiteID
	Kind core.Stream
	// NextSeq is the last assigned sequence.
	NextSeq uint64
	// AckedTo is the highest cumulative watermark received from Peer.
	AckedTo uint64
}

// RecvStreamImage is one receiver-side retirement stream.
type RecvStreamImage struct {
	Peer ids.SiteID
	Kind core.Stream
	// Watermark is the cumulative settled prefix.
	Watermark uint64
	// Pending are settled sequences above the watermark (gaps below them
	// are still outstanding), sorted.
	Pending []uint64
}

// PeerEpochImage is the last seen recovery epoch of one peer.
type PeerEpochImage struct {
	Peer  ids.SiteID
	Epoch uint64
}

// FrameStatsImage persists the site-level frame/retirement counters.
type FrameStatsImage struct {
	AcksSent, AcksReceived, FramesRetired int
	OutboxResends, OutboxEvicted          int
	ResendsSuppressed, AdvancesSent       int
}

// PendingRefImage is one buffered reference transfer.
type PendingRefImage struct {
	Holder   ids.ObjectID
	Target   heap.Ref
	Intro    ids.ClusterID
	IntroSeq uint64
}

// IntroImage identifies one processed introduction.
type IntroImage struct {
	Intro ids.ClusterID
	Seq   uint64
}

// FrameImage is one outbound frame: destination site, the frame's
// sequence in the mutator retirement stream to that site, and the
// payload (which carries the same sequence on the wire).
type FrameImage struct {
	To      ids.SiteID
	Payload netsim.Payload
	Seq     uint64
}

// WALRecord is one durable event. Exactly one field is set.
type WALRecord struct {
	Op      *OpRecord
	Deliver *DeliverRecord
	// Batch is a group of mutator operations committed atomically by the
	// batched mutator API (DESIGN.md §3.3): one record, one append, one
	// fsync (or group-commit window) for the whole group. Pre-batch WALs
	// never carry it, so old logs decode and replay unchanged.
	Batch *BatchRecord
	// Shard tags the record with the shard that journaled it (the
	// executing shard for ops, the destination shard for deliveries).
	// Replay routes by this tag, making recovery independent of the
	// live routing-table state. Zero on pre-shard WALs and on 1-shard
	// runtimes, where shard 0 is the whole site.
	Shard int
}

// BatchRecord is the journaled form of one committed mutator batch.
// Replay applies the ops in order through the same code path as the
// live commit, resolving deferred references from the results of
// earlier ops of the same batch, so a recovered site re-mints the same
// identities the original commit did.
type BatchRecord struct {
	Ops []BatchOp
}

// BatchOp is one staged mutator operation of a batch. The Op field
// carries the concrete arguments; the *From fields, when non-zero,
// defer an argument to the Ref minted by an earlier create op of the
// same batch (1-based: From==k means the result of batch op k-1), in
// which case the corresponding OpRecord field is ignored. Deferral is
// what lets a batch chain ops onto objects that do not exist until the
// batch commits, without journaling identities that have not been
// minted yet.
type BatchOp struct {
	Op OpRecord
	// HolderFrom defers Op.Holder to an earlier result's object.
	HolderFrom int
	// ToFrom defers Op.To (SendRef destination) to an earlier result.
	ToFrom int
	// TargetFrom defers Op.Target to an earlier result.
	TargetFrom int
}

// OpKind enumerates journalled mutator operations.
type OpKind uint8

// The journalled mutator operations. Collect and Refresh are included
// because both bump engine clocks (sweep-triggered edge destructions,
// removal cascades): every clock-advancing entry point must be in the
// WAL or replay would re-issue already-used stamps for new events.
const (
	OpNewLocal OpKind = iota + 1
	OpNewLocalIn
	OpNewCluster
	OpNewRemote
	OpSendRef
	OpAddRef
	OpDropRefs
	OpClearSlot
	OpCollect
	OpRefresh
)

// String names the op kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpNewLocal:
		return "NewLocal"
	case OpNewLocalIn:
		return "NewLocalIn"
	case OpNewCluster:
		return "NewCluster"
	case OpNewRemote:
		return "NewRemote"
	case OpSendRef:
		return "SendRef"
	case OpAddRef:
		return "AddRef"
	case OpDropRefs:
		return "DropRefs"
	case OpClearSlot:
		return "ClearSlot"
	case OpCollect:
		return "Collect"
	case OpRefresh:
		return "Refresh"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// OpRecord is one mutator operation with its arguments. On the
// unsharded runtime, results (minted identities) are deterministic
// functions of the restored counters, so replay re-mints them
// identically with the Mint* fields left zero. Sharded runtimes
// journal concurrently, so WAL order no longer equals mint order: the
// executing shard pre-mints at stage time and records the drawn
// counter values (MintObj/MintClu), the placement decision (Place) and
// the drawn mutator-stream sequence (MutSeq) so replay reproduces the
// exact identities, routing and frame sequences regardless of
// interleaving. Zero values mean "mint from the counter" — legacy
// records replay unchanged.
type OpRecord struct {
	Kind   OpKind
	Holder ids.ObjectID  // NewLocal, NewLocalIn, NewRemote, SendRef (sender), AddRef, DropRefs, ClearSlot
	Site   ids.SiteID    // NewRemote target site
	Clu    ids.ClusterID // NewLocalIn cluster
	To     heap.Ref      // SendRef destination
	Target heap.Ref      // SendRef, AddRef, DropRefs target
	Slot   int           // ClearSlot index
	// MintObj is the pre-minted object counter value (creates), MintClu
	// the pre-minted cluster counter value (NewLocal), and Place the
	// 1-based shard the minted cluster was placed on (NewLocal under the
	// root cluster). Zero = draw from the live counter / route live.
	MintObj uint64
	MintClu uint64
	Place   int
	// MutSeq is the pre-drawn mutator-stream sequence of the frame this
	// op emits (NewRemote's Create toward Site, a cross-shard create
	// toward the own site, SendRef's sequenced RefTransfer toward To's
	// site). Like the Mint* fields it is recorded by sharded sites only:
	// seqs are drawn from the shared per-(peer, stream) counter, so with
	// concurrent shards WAL order need not match draw order, and a
	// replay that re-drew in WAL order would bind different sequences to
	// the rebuilt outbox frames than the live run sent — a journaled
	// FrameAck would then retire a frame the peer never received. Zero =
	// draw at apply time (unsharded runtimes, frameless ops).
	MutSeq uint64
}

// DeliverRecord is one incoming message delivery.
type DeliverRecord struct {
	From    ids.SiteID
	Payload netsim.Payload
}

func init() {
	// The concrete payload types carried behind netsim.Payload fields.
	// gob.Register tolerates re-registration of identical types, so this
	// coexists with transport/tcp's registrations.
	gob.Register(Create{})
	gob.Register(RefTransfer{})
	gob.Register(Destroy{})
	gob.Register(Assert{})
	gob.Register(HintAck{})
	gob.Register(FrameAck{})
	gob.Register(StreamAdvance{})
	gob.Register(Propagate{})
	gob.Register(Envelope{})
}

// EncodeSnapshot renders a SiteImage for persist.Store.WriteSnapshot.
func EncodeSnapshot(img *SiteImage) ([]byte, error) {
	img.Version = SnapshotVersion
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("wire: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses a snapshot body.
func DecodeSnapshot(data []byte) (*SiteImage, error) {
	var img SiteImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("wire: decode snapshot: %w", err)
	}
	if img.Version < minSnapshotVersion || img.Version > SnapshotVersion {
		return nil, fmt.Errorf("wire: snapshot version %d, want %d..%d", img.Version, minSnapshotVersion, SnapshotVersion)
	}
	// Pre-v3 images migrate forward in place: the retirement protocol's
	// fields are zero, meaning "nothing assigned, nothing acknowledged",
	// which the protocol treats exactly like a freshly upgraded site.
	img.Version = SnapshotVersion
	return &img, nil
}

// recordArity counts the set fields of a WALRecord (exactly one must
// be).
func recordArity(rec *WALRecord) int {
	n := 0
	if rec.Op != nil {
		n++
	}
	if rec.Deliver != nil {
		n++
	}
	if rec.Batch != nil {
		n++
	}
	return n
}

// EncodeRecord renders a WALRecord for persist.Store.Append.
func EncodeRecord(rec *WALRecord) ([]byte, error) {
	if recordArity(rec) != 1 {
		return nil, fmt.Errorf("wire: record must set exactly one of Op/Deliver/Batch")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("wire: encode record: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRecord parses one WAL record.
func DecodeRecord(data []byte) (*WALRecord, error) {
	var rec WALRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("wire: decode record: %w", err)
	}
	if recordArity(&rec) != 1 {
		return nil, fmt.Errorf("wire: record must set exactly one of Op/Deliver/Batch")
	}
	return &rec, nil
}
