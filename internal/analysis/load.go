package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Unit is one type-checked body of syntax handed to analyzers: a
// package's sources, or a directory's external _test package.
type Unit struct {
	// Path is the unit's import path (directory base name for
	// packages loaded outside a module, e.g. analysistest testdata).
	Path string
	// Name is the declared package name.
	Name string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are all parsed files in the unit, test files included.
	Files []*ast.File
	// Types is the type-checked package; nil if checking failed hard.
	Types *types.Package
	// Info carries resolution results (possibly partial under type
	// errors). Never nil.
	Info *types.Info
	// TypeErrors collects soft type-check errors; analysis proceeds
	// on the partial information.
	TypeErrors []error
}

// Filename returns the name of the file f belongs to.
func (u *Unit) Filename(f *ast.File) string {
	return u.Fset.Position(f.Package).Filename
}

// Loader parses and type-checks packages without the go command:
// module-internal imports resolve against the module root, standard
// library imports through go/importer's source importer. One Loader
// caches every package it checks, so loading ./... type-checks each
// dependency once.
type Loader struct {
	// Fset is shared by every unit the loader produces.
	Fset *token.FileSet

	moduleRoot string
	modulePath string
	std        types.Importer
	cache      map[string]*types.Package
	loading    map[string]bool
}

// NewLoader returns a Loader rooted at moduleRoot (the directory
// holding go.mod) for the given module path. Both may be empty for
// loading self-contained directories such as analyzer testdata.
func NewLoader(moduleRoot, modulePath string) *Loader {
	// The source importer type-checks the standard library from
	// GOROOT sources; with cgo enabled go/build would select cgo
	// variants (net, os/user) that cannot be type-checked without
	// running the cgo tool, so force the pure-Go file sets.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
		loading:    map[string]bool{},
	}
}

// Import resolves an import path for the type checker. Module-internal
// paths are type-checked from source under the module root (non-test
// files only, matching what an importer of the package sees);
// everything else is delegated to the standard-library source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		if l.loading[path] {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath)))
		files, err := l.parseDir(dir, func(name string) bool {
			return !strings.HasSuffix(name, "_test.go")
		})
		if err != nil {
			return nil, err
		}
		pkg, _, _ := l.check(path, files)
		if pkg == nil {
			return nil, fmt.Errorf("type-checking %q failed", path)
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks every .go file in dir and returns the
// analysis units: the package itself (in-package test files included)
// and, when present, the external _test package. pkgPath is the import
// path to record on the units.
func (l *Loader) LoadDir(dir, pkgPath string) ([]*Unit, error) {
	all, err := l.parseDir(dir, func(string) bool { return true })
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	// Split the directory into the primary package and the external
	// test package (package foo_test).
	names := map[string]bool{}
	for _, f := range all {
		names[f.Name.Name] = true
	}
	primaryName := ""
	for n := range names {
		if !strings.HasSuffix(n, "_test") || !names[strings.TrimSuffix(n, "_test")] {
			if primaryName == "" || n < primaryName {
				primaryName = n
			}
		}
	}
	var primary, external []*ast.File
	for _, f := range all {
		if f.Name.Name == primaryName {
			primary = append(primary, f)
		} else {
			external = append(external, f)
		}
	}
	var units []*Unit
	if len(primary) > 0 {
		pkg, info, errs := l.check(pkgPath, primary)
		units = append(units, &Unit{
			Path: pkgPath, Name: primaryName, Fset: l.Fset,
			Files: primary, Types: pkg, Info: info, TypeErrors: errs,
		})
	}
	if len(external) > 0 {
		pkg, info, errs := l.check(pkgPath+"_test", external)
		units = append(units, &Unit{
			Path: pkgPath + "_test", Name: external[0].Name.Name, Fset: l.Fset,
			Files: external, Types: pkg, Info: info, TypeErrors: errs,
		})
	}
	return units, nil
}

// parseDir parses the .go files in dir accepted by keep, sorted by
// file name for deterministic diagnostics.
func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if keep(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as one package, collecting (not failing on)
// type errors so analyzers can run on partial information.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && pkg == nil {
		errs = append(errs, err)
	}
	return pkg, info, errs
}
