package netsim_test

import (
	"testing"

	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/wire"
)

// TestFaultEligibleExemptsApplicationPayloads checks the classification
// directly: mutator RPC (Create, RefTransfer) is exempt from fault
// injection, GGD control traffic (Destroy, Propagate, Assert) is not.
func TestFaultEligibleExemptsApplicationPayloads(t *testing.T) {
	app := []netsim.Payload{wire.Create{}, wire.RefTransfer{}}
	for _, p := range app {
		if netsim.FaultEligible(p) {
			t.Errorf("%T: application payload must be exempt from faults", p)
		}
	}
	control := []netsim.Payload{wire.Destroy{}, wire.Propagate{}, wire.Assert{}}
	for _, p := range control {
		if !netsim.FaultEligible(p) {
			t.Errorf("%T: control payload must be fault-eligible", p)
		}
	}
}

// TestSimDropsOnlyControlPayloads sends application and control payloads
// through a simulator that drops everything it may: the application
// payloads must all arrive, the control payloads must all be lost.
func TestSimDropsOnlyControlPayloads(t *testing.T) {
	sim := netsim.NewSim(netsim.Faults{Seed: 3, DropProb: 1})
	var apps, controls int
	sim.Register(2, func(_ ids.SiteID, p netsim.Payload) {
		if netsim.FaultEligible(p) {
			controls++
		} else {
			apps++
		}
	})
	const n = 20
	for i := 0; i < n; i++ {
		sim.Send(1, 2, wire.Create{})
		sim.Send(1, 2, wire.Propagate{})
	}
	if _, err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if apps != n {
		t.Errorf("delivered %d of %d application payloads under DropProb=1", apps, n)
	}
	if controls != 0 {
		t.Errorf("delivered %d control payloads under DropProb=1, want 0", controls)
	}
	if got := sim.Stats().Delivered(wire.KindCreate); got != n {
		t.Errorf("stats: %d creates delivered, want %d", got, n)
	}
	if _, _, dropped, _, _ := sim.Stats().Kind(wire.KindPropagate); dropped != n {
		t.Errorf("stats: %d propagates dropped, want %d", dropped, n)
	}
}
