package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sentinel errors. Match with errors.Is.
var (
	// ErrCorrupt: a snapshot or a non-tail WAL record failed its CRC or
	// framing check. The store refuses to guess at the missing state.
	ErrCorrupt = errors.New("persist: corrupt store")
	// ErrClosed: the store was closed.
	ErrClosed = errors.New("persist: store closed")
)

// Options tune a Store.
type Options struct {
	// SegmentBytes rotates the WAL to a new segment once the current one
	// exceeds this size. Zero means 4 MiB.
	SegmentBytes int64
	// NoSync disables fsync on appends and snapshots. Throughput rises;
	// an OS crash (not a process crash) may then lose the unsynced tail,
	// which weakens the "nothing sent before durable" invariant the
	// recovery argument rests on. Reserved for benchmarks and simulation.
	NoSync bool
	// GroupCommit batches fsync across the append stream: Append writes
	// every record immediately but syncs only when this window has
	// elapsed since the last sync; a background flusher, Close, Flush,
	// WriteSnapshot and segment rotation drain the remainder. A
	// *process* crash (kill -9 included) cannot lose page-cache writes,
	// so it keeps full write-ahead semantics. An *OS* crash may lose up
	// to one window of the newest records — and because the caller acts
	// on Append before the deferred sync, messages derived from those
	// records may already have escaped, weakening the write-ahead
	// invariant exactly as NoSync does, just bounded to a window
	// instead of unbounded. The trade buys an order of magnitude on the
	// per-record durability tax (see BenchmarkWALAppend); reserve it
	// for deployments that accept the OS-crash exposure. Zero keeps
	// per-record fsync; ignored when NoSync is set.
	GroupCommit time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

const (
	walMagic  = "CGCW"
	snapMagic = "CGCS"
	version   = uint32(1)
	headerLen = 8 // 4 magic + 4 version
	frameLen  = 8 // 4 length + 4 crc
	// maxRecord bounds one WAL record / snapshot body; larger frames
	// indicate corruption.
	maxRecord = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Stats counts store activity.
type Stats struct {
	// Appends counts records appended in this session.
	Appends int
	// Syncs counts WAL fsyncs in this session; with group commit it
	// trails Appends, quantifying the batching.
	Syncs int
	// SyncNanos is the total wall-clock time spent in WAL fsyncs this
	// session, in nanoseconds; SyncNanos/Syncs is the mean fsync latency
	// the durability tax the store is paying per sync.
	SyncNanos int64
	// SyncMaxNanos is the slowest single WAL fsync of the session, in
	// nanoseconds — the tail a latency budget is asserted against.
	SyncMaxNanos int64
	// Snapshots counts snapshots written in this session.
	Snapshots int
	// RecoveredRecords counts WAL records recovered at Open.
	RecoveredRecords int
	// DiscardedTailBytes counts bytes of torn tail discarded at Open.
	DiscardedTailBytes int64
}

// Store is one site's durable state: the latest snapshot plus the WAL
// segments appended since. Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	gen     uint64 // generation of the live snapshot (0: none yet)
	seq     uint64 // last segment sequence number in this generation
	seg     *os.File
	segSize int64
	closed  bool
	// failed poisons the store after a write error that could not be
	// rolled back (truncate failed): continuing could leave a torn
	// record mid-segment ahead of durable ones, which recovery would
	// then discard or reject.
	failed error

	// dirty marks group-commit-deferred writes awaiting fsync; lastSync
	// is when the segment was last synced (group-commit mode only).
	dirty    bool
	lastSync time.Time
	// flushQuit stops the background flusher that bounds how long an
	// idle store's deferred tail stays unsynced (group-commit mode).
	flushQuit chan struct{}

	snapshot []byte   // recovered snapshot body (nil if none)
	wal      [][]byte // recovered WAL records of the live generation
	stats    Stats
}

// Open opens (or creates) a store directory and performs recovery:
// after Open, Snapshot/WAL return the durable state and Append
// continues the log in a fresh segment.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if opts.GroupCommit > 0 && !opts.NoSync {
		// Without this, a burst followed by idleness would leave the
		// deferred tail unsynced indefinitely — the documented exposure
		// is one *window*, by wall clock, not one quiet period.
		s.flushQuit = make(chan struct{})
		go s.flushLoop(s.flushQuit)
	}
	return s, nil
}

// flushLoop fsyncs group-commit-deferred writes once per window while
// the store is idle. Stopped by Close.
func (s *Store) flushLoop(quit <-chan struct{}) {
	t := time.NewTicker(s.opts.GroupCommit)
	defer t.Stop()
	for {
		select {
		case <-quit:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.failed == nil {
				_ = s.flushLocked() // a failure poisons; the next Append surfaces it
			}
			s.mu.Unlock()
		}
	}
}

// Snapshot returns the recovered snapshot body, or nil when the store
// has none (a fresh directory). The slice is owned by the caller.
func (s *Store) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshot
}

// WAL returns the recovered WAL records of the live generation, in
// append order. The slices are owned by the caller.
func (s *Store) WAL() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal
}

// Stats returns a copy of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Append durably appends one WAL record. The record is synced to disk
// before Append returns (unless Options.NoSync), so a caller may act on
// it — send messages, mutate state — the moment Append succeeds.
func (s *Store) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxRecord {
		return fmt.Errorf("persist: append of %d bytes", len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	if s.seg == nil || s.segSize >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, frameLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameLen:], payload)
	if _, err := s.seg.Write(frame); err != nil {
		s.rollbackTornWriteLocked()
		return fmt.Errorf("persist: append: %w", err)
	}
	switch {
	case s.opts.NoSync:
	case s.opts.GroupCommit > 0:
		// Group commit: defer the fsync until the window elapses. The
		// record is written (a process crash keeps it); only an OS crash
		// can lose the unsynced window.
		s.dirty = true
		if time.Since(s.lastSync) >= s.opts.GroupCommit {
			if err := s.flushLocked(); err != nil {
				// This frame's Append reports failure, so it must not
				// survive into recovery: roll it back (earlier frames of
				// the batch reported success and stay; the poisoned
				// store refuses further appends either way).
				s.rollbackTornWriteLocked()
				return err
			}
		}
	default:
		if err := s.syncSegLocked(); err != nil {
			// The frame is in the file but not provably durable: roll it
			// back so the caller's "append failed ⇒ event never happened"
			// contract holds.
			s.rollbackTornWriteLocked()
			return fmt.Errorf("persist: sync: %w", err)
		}
	}
	s.segSize += int64(len(frame))
	s.stats.Appends++
	return nil
}

// flushLocked fsyncs group-commit-deferred writes. A failed flush
// poisons the store: the batch cannot be rolled back record-by-record,
// and continuing past unprovable durability would break the write-ahead
// argument. A later successful snapshot supersedes and un-poisons.
func (s *Store) flushLocked() error {
	if !s.dirty || s.seg == nil {
		s.dirty = false
		return nil
	}
	if err := s.syncSegLocked(); err != nil {
		s.failed = fmt.Errorf("persist: group-commit flush failed: %w", err)
		return s.failed
	}
	s.dirty = false
	s.lastSync = time.Now()
	return nil
}

// syncSegLocked fsyncs the live segment, timing the call and folding the
// latency into the stats on success. Every WAL fsync — per-record and
// group-commit — funnels through here so the latency aggregation covers
// both modes.
func (s *Store) syncSegLocked() error {
	start := time.Now()
	if err := s.seg.Sync(); err != nil {
		return err
	}
	d := time.Since(start).Nanoseconds()
	s.stats.Syncs++
	s.stats.SyncNanos += d
	if d > s.stats.SyncMaxNanos {
		s.stats.SyncMaxNanos = d
	}
	return nil
}

// Flush forces any group-commit-deferred fsync now. A no-op in the
// per-record and NoSync modes.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	return s.flushLocked()
}

// rollbackTornWriteLocked removes a possibly-partial frame from the
// segment tail after a failed write or sync, restoring the segment to
// its pre-append state. A record left torn mid-segment would make a
// later successful append un-recoverable: recovery stops at (last
// segment) or rejects (earlier segment) the first bad frame, taking
// every durable record after it down too. If the rollback itself fails
// the store is poisoned: further appends refuse rather than risk that.
func (s *Store) rollbackTornWriteLocked() {
	if err := s.seg.Truncate(s.segSize); err == nil {
		if _, err = s.seg.Seek(s.segSize, 0); err == nil {
			return
		}
	}
	s.seg.Close()
	s.seg = nil
	s.failed = fmt.Errorf("%w: segment tail rollback failed", ErrCorrupt)
}

// WriteSnapshot atomically replaces the store's durable state with the
// given full-state snapshot and starts a new WAL generation. Earlier
// segments and snapshots are deleted only after the new snapshot is
// durable (tmp + fsync + rename + directory fsync).
func (s *Store) WriteSnapshot(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxRecord {
		return fmt.Errorf("persist: snapshot of %d bytes", len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	newGen := s.gen + 1
	final := filepath.Join(s.dir, snapName(newGen))
	tmp := final + ".tmp"
	buf := make([]byte, headerLen+frameLen+len(payload))
	copy(buf[0:4], snapMagic)
	binary.BigEndian.PutUint32(buf[4:8], version)
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[12:16], crc32.Checksum(payload, crcTable))
	copy(buf[headerLen+frameLen:], payload)
	if err := writeFileSync(tmp, buf, !s.opts.NoSync); err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("persist: snapshot commit: %w", err)
	}
	if !s.opts.NoSync {
		syncDir(s.dir)
	}
	// The snapshot is the commit point; everything below is cleanup. Any
	// group-commit-deferred writes belong to the superseded generation.
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.dirty = false
	oldGen := s.gen
	s.gen = newGen
	s.seq = 0
	s.segSize = 0
	// A successful snapshot supersedes the whole previous generation,
	// torn tails included: un-poison the store.
	s.failed = nil
	s.removeGenerationsThrough(oldGen)
	s.stats.Snapshots++
	return nil
}

// Close closes the store's file handles. Close does not snapshot: a
// closed store is indistinguishable from a crashed one, which is
// exactly the property the recovery path is built for.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.flushQuit != nil {
		close(s.flushQuit)
	}
	if s.seg != nil {
		// Flush group-commit-deferred writes so a clean Close loses
		// nothing even to an OS crash right after.
		ferr := s.flushLocked()
		err := s.seg.Close()
		s.seg = nil
		if err == nil {
			err = ferr
		}
		return err
	}
	return nil
}

// --- internals -----------------------------------------------------------

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d.snap", gen) }

func segName(gen, seq uint64) string {
	return fmt.Sprintf("wal-%016d-%016d.log", gen, seq)
}

// rotateLocked opens the next WAL segment of the current generation.
func (s *Store) rotateLocked() error {
	if s.seg != nil {
		// A rotated-away segment is no longer the generation's tail, so
		// recovery reads it strictly: group-commit-deferred writes must
		// be durable before it is sealed.
		if err := s.flushLocked(); err != nil {
			return err
		}
		if err := s.seg.Close(); err != nil {
			return fmt.Errorf("persist: rotate: %w", err)
		}
		s.seg = nil
	}
	s.seq++
	name := filepath.Join(s.dir, segName(s.gen, s.seq))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("persist: rotate: %w", err)
	}
	hdr := make([]byte, headerLen)
	copy(hdr[0:4], walMagic)
	binary.BigEndian.PutUint32(hdr[4:8], version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("persist: rotate: %w", err)
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: rotate: %w", err)
		}
		syncDir(s.dir)
	}
	s.seg = f
	s.segSize = headerLen
	return nil
}

// recover scans the directory, loads the latest valid snapshot and the
// WAL records of its generation, and positions the store to append.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	type segRef struct {
		gen, seq uint64
		name     string
	}
	var segs []segRef
	var snapGens []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An uncommitted snapshot: a crash mid-write. Remove.
			os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			var gen uint64
			if _, err := fmt.Sscanf(name, "snap-%016d.snap", &gen); err == nil {
				snapGens = append(snapGens, gen)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			var gen, seq uint64
			if _, err := fmt.Sscanf(name, "wal-%016d-%016d.log", &gen, &seq); err == nil {
				segs = append(segs, segRef{gen: gen, seq: seq, name: name})
			}
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	if len(snapGens) > 0 {
		s.gen = snapGens[len(snapGens)-1]
		body, err := readSnapshot(filepath.Join(s.dir, snapName(s.gen)))
		if err != nil {
			// The committed snapshot is damaged. Falling back to an older
			// generation would roll the site back past messages it already
			// sent, which is unsafe; refuse instead.
			return err
		}
		s.snapshot = body
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].gen != segs[j].gen {
			return segs[i].gen < segs[j].gen
		}
		return segs[i].seq < segs[j].seq
	})
	var live []segRef
	for _, sg := range segs {
		if sg.gen == s.gen {
			live = append(live, sg)
		}
	}
	for i, sg := range live {
		last := i == len(live)-1
		path := filepath.Join(s.dir, sg.name)
		recs, discarded, err := readSegment(path, last)
		if err != nil {
			return err
		}
		s.wal = append(s.wal, recs...)
		s.stats.DiscardedTailBytes += discarded
		if discarded > 0 {
			// Physically remove the torn tail now: appends after recovery
			// go to a fresh segment, so this one will no longer be "last"
			// — a later recovery would treat the leftover torn bytes as
			// interior corruption and permanently refuse the store.
			if err := truncateTornTail(path, discarded); err != nil {
				return err
			}
		}
		if sg.seq > s.seq {
			s.seq = sg.seq
		}
	}
	s.stats.RecoveredRecords = len(s.wal)
	// Garbage-collect superseded generations left by a crash between a
	// snapshot commit and its cleanup.
	if s.gen > 0 {
		s.removeGenerationsThrough(s.gen - 1)
	}
	return nil
}

// removeGenerationsThrough best-effort deletes snapshots and segments
// with generation <= gen (the live snapshot of generation s.gen stays).
func (s *Store) removeGenerationsThrough(gen uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		var g, q uint64
		if _, err := fmt.Sscanf(name, "snap-%016d.snap", &g); err == nil && g <= gen {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if _, err := fmt.Sscanf(name, "wal-%016d-%016d.log", &g, &q); err == nil && g <= gen {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// truncateTornTail cuts the trailing `discarded` bytes off a recovered
// segment; a segment left without even a full header is deleted. A
// failure here fails recovery: continuing would brick the store on the
// restart after next.
func truncateTornTail(path string, discarded int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("persist: trim torn tail: %w", err)
	}
	valid := fi.Size() - discarded
	if valid <= headerLen {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("persist: remove torn segment: %w", err)
		}
		return nil
	}
	if err := os.Truncate(path, valid); err != nil {
		return fmt.Errorf("persist: trim torn tail: %w", err)
	}
	return nil
}

// readSnapshot validates and returns a snapshot file's body.
func readSnapshot(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if len(buf) < headerLen+frameLen || string(buf[0:4]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot %s: bad header", ErrCorrupt, filepath.Base(path))
	}
	if v := binary.BigEndian.Uint32(buf[4:8]); v != version {
		return nil, fmt.Errorf("%w: snapshot %s: version %d", ErrCorrupt, filepath.Base(path), v)
	}
	size := binary.BigEndian.Uint32(buf[8:12])
	sum := binary.BigEndian.Uint32(buf[12:16])
	body := buf[headerLen+frameLen:]
	if uint32(len(body)) != size || crc32.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("%w: snapshot %s: crc/length mismatch", ErrCorrupt, filepath.Base(path))
	}
	return body, nil
}

// readSegment reads the records of one WAL segment. When tolerateTail
// is true (last segment of the generation), a short or CRC-failing
// trailing record is discarded as a torn write; otherwise it is
// ErrCorrupt.
func readSegment(path string, tolerateTail bool) (recs [][]byte, discarded int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: %w", err)
	}
	base := filepath.Base(path)
	if len(buf) < headerLen || string(buf[0:4]) != walMagic {
		if tolerateTail && len(buf) < headerLen {
			// A crash immediately after segment creation.
			return nil, int64(len(buf)), nil
		}
		return nil, 0, fmt.Errorf("%w: segment %s: bad header", ErrCorrupt, base)
	}
	if v := binary.BigEndian.Uint32(buf[4:8]); v != version {
		return nil, 0, fmt.Errorf("%w: segment %s: version %d", ErrCorrupt, base, v)
	}
	off := int64(headerLen)
	data := buf[headerLen:]
	for len(data) > 0 {
		bad := ""
		var rec []byte
		if len(data) < frameLen {
			bad = "short frame"
		} else {
			size := binary.BigEndian.Uint32(data[0:4])
			sum := binary.BigEndian.Uint32(data[4:8])
			switch {
			case size == 0 || size > maxRecord:
				bad = fmt.Sprintf("bad record size %d", size)
			case int(size) > len(data)-frameLen:
				bad = "truncated record"
			default:
				rec = data[frameLen : frameLen+int(size)]
				if crc32.Checksum(rec, crcTable) != sum {
					bad = "crc mismatch"
				}
			}
		}
		if bad != "" {
			if tolerateTail {
				return recs, int64(len(data)), nil
			}
			return nil, 0, fmt.Errorf("%w: segment %s at offset %d: %s", ErrCorrupt, base, off, bad)
		}
		recs = append(recs, rec)
		step := int64(frameLen + len(rec))
		off += step
		data = data[step:]
	}
	return recs, 0, nil
}

// writeFileSync writes a file and optionally fsyncs it before close.
func writeFileSync(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates are durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
