package site_test

import (
	"errors"
	"path/filepath"
	"testing"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
	"causalgc/internal/wire"
	"causalgc/persist"
)

// TestBatchEnvelopeCoalescing: a multi-op batch bound for one peer
// ships one mut.envelope instead of one frame per op, and the peer
// materialises every object from it.
func TestBatchEnvelopeCoalescing(t *testing.T) {
	net, s1, s2 := twoSites(t)
	root := s1.Root().Obj
	ops := []wire.BatchOp{
		{Op: wire.OpRecord{Kind: wire.OpNewRemote, Holder: root, Site: 2}},
		{Op: wire.OpRecord{Kind: wire.OpNewRemote, Holder: root, Site: 2}},
		{Op: wire.OpRecord{Kind: wire.OpNewRemote, Holder: root, Site: 2}},
	}
	refs, err := s1.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().Sent(wire.KindEnvelope); got != 1 {
		t.Fatalf("envelopes sent = %d, want 1", got)
	}
	if got := net.Stats().Sent(wire.KindCreate); got != 0 {
		t.Fatalf("bare creates sent = %d, want 0 (coalesced)", got)
	}
	run(t, net)
	for i, ref := range refs {
		if !s2.HasObject(ref.Obj) {
			t.Fatalf("op %d: object %v missing on site 2", i, ref.Obj)
		}
	}
}

// TestBatchDeferredChain: later ops chain onto objects earlier ops of
// the same batch create (deferred Ref resolution), including a
// same-batch SendRef whose holdership only exists in the staged view.
func TestBatchDeferredChain(t *testing.T) {
	net, s1, s2 := twoSites(t)
	root := s1.Root().Obj
	ops := []wire.BatchOp{
		// a = NewLocal(root); b = NewLocal(a); c = NewRemote(root, 2);
		// SendRef(from=a, to=c, target=b) — a's hold on b exists only in
		// the staged view until the batch commits.
		{Op: wire.OpRecord{Kind: wire.OpNewLocal, Holder: root}},
		{Op: wire.OpRecord{Kind: wire.OpNewLocal}, HolderFrom: 1},
		{Op: wire.OpRecord{Kind: wire.OpNewRemote, Holder: root, Site: 2}},
		{Op: wire.OpRecord{Kind: wire.OpSendRef}, HolderFrom: 1, ToFrom: 3, TargetFrom: 2},
	}
	refs, err := s1.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if refs[0].Obj == refs[1].Obj || !s1.HasObject(refs[0].Obj) || !s1.HasObject(refs[1].Obj) {
		t.Fatalf("deferred chain misresolved: %v", refs)
	}
	if refs[1].Cluster == refs[0].Cluster {
		t.Fatal("NewLocal must mint distinct clusters")
	}
	run(t, net)
	if !s2.HasObject(refs[2].Obj) {
		t.Fatal("remote object missing")
	}
	// The transferred reference landed: c on site 2 now holds b.
	_, objs := s2.Snapshot()
	held := false
	for _, o := range objs {
		if o.ID == refs[2].Obj {
			for _, sl := range o.Slots {
				if sl == refs[1] {
					held = true
				}
			}
		}
	}
	if !held {
		t.Fatal("remote object does not hold the transferred reference")
	}
	// A SendRef whose holdership is NOT staged anywhere must be rejected
	// at staging (root never holds b).
	bad := []wire.BatchOp{
		{Op: wire.OpRecord{Kind: wire.OpNewLocal, Holder: root}},
		{Op: wire.OpRecord{Kind: wire.OpNewLocal}, HolderFrom: 1},
		{Op: wire.OpRecord{Kind: wire.OpSendRef, Holder: root, To: refs[2]}, TargetFrom: 2},
	}
	if _, err := s1.ApplyBatch(bad); !errors.Is(err, site.ErrNotHolder) {
		t.Fatalf("unheld staged SendRef: err = %v, want ErrNotHolder", err)
	}
}

// TestBatchStagingRejectsWithoutJournal: a staging failure rejects the
// whole batch before anything is journaled or applied.
func TestBatchStagingRejectsWithoutJournal(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	j, err := site.OpenPersist(filepath.Join(dir, "site-1"), site.PersistOptions{Store: persist.Options{NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s1, err := site.Recover(1, net, site.DefaultOptions(), j)
	if err != nil {
		t.Fatal(err)
	}
	base := j.Store().Stats().Appends
	ops := []wire.BatchOp{
		{Op: wire.OpRecord{Kind: wire.OpNewLocal, Holder: s1.Root().Obj}},
		{Op: wire.OpRecord{Kind: wire.OpNewLocal, Holder: ids.ObjectID{Site: 1, Seq: 999}}},
	}
	if _, err := s1.ApplyBatch(ops); !errors.Is(err, heap.ErrNoSuchObject) {
		t.Fatalf("err = %v, want ErrNoSuchObject", err)
	}
	if got := j.Store().Stats().Appends; got != base {
		t.Fatalf("staging failure appended %d records", got-base)
	}
	if s1.NumObjects() != 1 {
		t.Fatalf("staging failure applied ops: %d objects", s1.NumObjects())
	}
	// Bad deferred index: structural rejection.
	bad := []wire.BatchOp{{Op: wire.OpRecord{Kind: wire.OpNewLocal}, HolderFrom: 5}}
	if _, err := s1.ApplyBatch(bad); !errors.Is(err, site.ErrBatchRef) {
		t.Fatalf("err = %v, want ErrBatchRef", err)
	}
}

// TestBatchJournalGroupAppend: a committed batch is one WAL append
// regardless of size, and recovery replays it into the same state.
func TestBatchJournalGroupAppend(t *testing.T) {
	dir := t.TempDir()
	popts := site.PersistOptions{SnapshotEvery: 1 << 30, Store: persist.Options{NoSync: true}}
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	j, err := site.OpenPersist(filepath.Join(dir, "site-1"), popts)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := site.Recover(1, net, site.DefaultOptions(), j)
	if err != nil {
		t.Fatal(err)
	}
	root := s1.Root().Obj
	ops := []wire.BatchOp{
		{Op: wire.OpRecord{Kind: wire.OpNewLocal, Holder: root}},
		{Op: wire.OpRecord{Kind: wire.OpNewLocal}, HolderFrom: 1},
		{Op: wire.OpRecord{Kind: wire.OpAddRef, Holder: root}, TargetFrom: 2},
		{Op: wire.OpRecord{Kind: wire.OpDropRefs, Holder: root}, TargetFrom: 1},
	}
	base := j.Store().Stats().Appends
	refs, err := s1.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Store().Stats().Appends - base; got != 1 {
		t.Fatalf("batch appended %d records, want 1", got)
	}
	wantObjects := s1.NumObjects()
	liveHas := make(map[ids.ObjectID]bool, len(refs))
	for _, ref := range refs {
		if ref.Obj != (ids.ObjectID{}) {
			liveHas[ref.Obj] = s1.HasObject(ref.Obj)
		}
	}
	// Crash (no snapshot) and recover: the batch record replays through
	// the group path and re-mints identical identities.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	net.Unregister(1)
	j2, err := site.OpenPersist(filepath.Join(dir, "site-1"), popts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s1b, err := site.Recover(1, netsim.NewSim(netsim.Faults{Seed: 2}), site.DefaultOptions(), j2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s1b.NumObjects(); got != wantObjects {
		t.Fatalf("recovered %d objects, want %d", got, wantObjects)
	}
	for obj, want := range liveHas {
		if got := s1b.HasObject(obj); got != want {
			t.Fatalf("recovered site: HasObject(%v) = %v, live had %v", obj, got, want)
		}
	}
}

// TestReplayAppliesLegacyZeroSiteNewRemote: the new ErrNoSite staging
// check must not run during WAL replay — a log written before the
// check can hold a journaled zero-site NewRemote whose application
// bumped the mint counter, and skipping it would shift every later
// minted identity.
func TestReplayAppliesLegacyZeroSiteNewRemote(t *testing.T) {
	dir := t.TempDir()
	popts := site.PersistOptions{SnapshotEvery: 1 << 30, Store: persist.Options{NoSync: true}}
	j, err := site.OpenPersist(filepath.Join(dir, "site-1"), popts)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := site.Recover(1, netsim.NewSim(netsim.Faults{Seed: 1}), site.DefaultOptions(), j)
	if err != nil {
		t.Fatal(err)
	}
	root := s1.Root().Obj
	// A live zero-site NewRemote is rejected pre-journal on both paths.
	if _, err := s1.NewRemote(root, 0); !errors.Is(err, site.ErrNoSite) {
		t.Fatalf("live NewRemote(0): %v, want ErrNoSite", err)
	}
	// Forge the legacy record an old release would have journaled, as
	// if the op had been applied before the check existed.
	if err := j.Append(&wire.WALRecord{Op: &wire.OpRecord{Kind: wire.OpNewRemote, Holder: root, Site: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := site.OpenPersist(filepath.Join(dir, "site-1"), popts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s1b, err := site.Recover(1, netsim.NewSim(netsim.Faults{Seed: 2}), site.DefaultOptions(), j2)
	if err != nil {
		t.Fatal(err)
	}
	// The replayed legacy op must have bumped the mint counter: the
	// next remote creation mints seq (1<<32)|2, not (1<<32)|1.
	ref, err := s1b.NewRemote(s1b.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1)<<32 | 2; ref.Obj.Seq != want {
		t.Fatalf("minted seq %#x, want %#x (legacy zero-site op not replayed)", ref.Obj.Seq, want)
	}
}

// TestEnvelopeDispatchSingleAckFlush: dispatching a received envelope
// settles all inner mutator frames but emits at most one FrameAck per
// stream (coalesced into the response), not one per frame.
func TestEnvelopeDispatchSingleAckFlush(t *testing.T) {
	dir := t.TempDir()
	popts := site.PersistOptions{Store: persist.Options{NoSync: true}}
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	j1, err := site.OpenPersist(filepath.Join(dir, "site-1"), popts)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()
	s1, err := site.Recover(1, net, site.DefaultOptions(), j1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := site.OpenPersist(filepath.Join(dir, "site-2"), popts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2, err := site.Recover(2, net, site.DefaultOptions(), j2)
	if err != nil {
		t.Fatal(err)
	}
	_ = s2
	root := s1.Root().Obj
	ops := make([]wire.BatchOp, 8)
	for i := range ops {
		ops[i] = wire.BatchOp{Op: wire.OpRecord{Kind: wire.OpNewRemote, Holder: root, Site: 2}}
	}
	if _, err := s1.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	// The 8 creates arrived in one envelope; site 2's mutator-stream ack
	// for them flushed once (plus any later re-acks on subsequent
	// frames) — far fewer than one per create.
	acks := s2.FrameStats().AcksSent
	if acks == 0 || acks >= 8 {
		t.Fatalf("acks sent = %d, want coalesced (0 < acks < 8)", acks)
	}
	st := s1.FrameStats()
	if st.OutboxRetained != 0 {
		t.Fatalf("outbox retained = %d after acks, want 0", st.OutboxRetained)
	}
}
