package ids

import (
	"testing"
	"testing/quick"
)

func TestSiteIDString(t *testing.T) {
	tests := []struct {
		in   SiteID
		want string
	}{
		{NoSite, "s0"},
		{SiteID(1), "s1"},
		{SiteID(42), "s42"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("SiteID(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSiteIDValid(t *testing.T) {
	if NoSite.Valid() {
		t.Error("NoSite.Valid() = true, want false")
	}
	if !SiteID(1).Valid() {
		t.Error("SiteID(1).Valid() = false, want true")
	}
}

func TestClusterIDString(t *testing.T) {
	tests := []struct {
		in   ClusterID
		want string
	}{
		{ClusterID{Site: 2, Seq: 7}, "s2/c7"},
		{ClusterID{Site: 2, Seq: 1, Root: true}, "s2/R1"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestClusterIDOrdering(t *testing.T) {
	a := ClusterID{Site: 1, Seq: 1}
	b := ClusterID{Site: 1, Seq: 2}
	c := ClusterID{Site: 2, Seq: 1}
	r := ClusterID{Site: 1, Seq: 1, Root: true}

	if !a.Less(b) || b.Less(a) {
		t.Errorf("want %v < %v", a, b)
	}
	if !b.Less(c) || c.Less(b) {
		t.Errorf("want %v < %v", b, c)
	}
	if !r.Less(a) || a.Less(r) {
		t.Errorf("want root %v < plain %v", r, a)
	}
	if a.Less(a) {
		t.Errorf("Less must be irreflexive")
	}
	if got := a.Compare(b); got != -1 {
		t.Errorf("a.Compare(b) = %d, want -1", got)
	}
	if got := b.Compare(a); got != 1 {
		t.Errorf("b.Compare(a) = %d, want 1", got)
	}
	if got := a.Compare(a); got != 0 {
		t.Errorf("a.Compare(a) = %d, want 0", got)
	}
}

func TestClusterIDLessTotalOrder(t *testing.T) {
	// Less must be a strict weak ordering: exactly one of a<b, b<a, a==b.
	f := func(s1, s2 uint8, q1, q2 uint8, r1, r2 bool) bool {
		a := ClusterID{Site: SiteID(s1), Seq: uint64(q1), Root: r1}
		b := ClusterID{Site: SiteID(s2), Seq: uint64(q2), Root: r2}
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObjectID(t *testing.T) {
	o := ObjectID{Site: 3, Seq: 42}
	if got, want := o.String(), "s3/o42"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if NoObject.Valid() {
		t.Error("NoObject.Valid() = true, want false")
	}
	if !o.Valid() {
		t.Error("o.Valid() = false, want true")
	}
	p := ObjectID{Site: 3, Seq: 43}
	if !o.Less(p) || p.Less(o) {
		t.Errorf("want %v < %v", o, p)
	}
	q := ObjectID{Site: 4, Seq: 1}
	if !p.Less(q) {
		t.Errorf("want %v < %v", p, q)
	}
}

func TestClusterSet(t *testing.T) {
	a := ClusterID{Site: 1, Seq: 1}
	b := ClusterID{Site: 1, Seq: 2}
	c := ClusterID{Site: 2, Seq: 1}

	s := NewClusterSet(b, a)
	if !s.Has(a) || !s.Has(b) || s.Has(c) {
		t.Fatalf("membership wrong after NewClusterSet: %v", s)
	}
	if !s.Add(c) {
		t.Error("Add(c) = false for new member")
	}
	if s.Add(c) {
		t.Error("Add(c) = true for existing member")
	}
	if !s.Remove(b) {
		t.Error("Remove(b) = false for existing member")
	}
	if s.Remove(b) {
		t.Error("Remove(b) = true for absent member")
	}
	got := s.Sorted()
	want := []ClusterID{a, c}
	if len(got) != len(want) {
		t.Fatalf("Sorted() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted() = %v, want %v", got, want)
		}
	}

	cl := s.Clone()
	cl.Add(b)
	if s.Has(b) {
		t.Error("Clone is not independent of the original")
	}
}

func TestSortClusters(t *testing.T) {
	in := []ClusterID{
		{Site: 2, Seq: 1},
		{Site: 1, Seq: 2},
		{Site: 1, Seq: 1, Root: true},
		{Site: 1, Seq: 1},
	}
	SortClusters(in)
	for i := 1; i < len(in); i++ {
		if in[i].Less(in[i-1]) {
			t.Fatalf("not sorted at %d: %v", i, in)
		}
	}
}

func TestSortObjects(t *testing.T) {
	in := []ObjectID{{Site: 2, Seq: 1}, {Site: 1, Seq: 9}, {Site: 1, Seq: 3}}
	SortObjects(in)
	for i := 1; i < len(in); i++ {
		if in[i].Less(in[i-1]) {
			t.Fatalf("not sorted at %d: %v", i, in)
		}
	}
}
