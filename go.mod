module causalgc

go 1.24
