package site

import (
	"sort"

	"causalgc/internal/core"
	"causalgc/internal/ids"
	"causalgc/internal/wire"
)

// This file implements the site half of the acknowledged-retirement
// protocol (DESIGN.md §3.2). The engine decides *what* is retained and
// re-sent; the site owns the wire-level bookkeeping: per-(peer, stream)
// sequence counters on the send side, cumulative watermarks on the
// receive side, FrameAck emission, StreamAdvance floor advisories, and
// the outbox of unacknowledged mutator frames.

// FrameStats counts the site-level retirement activity: the operator's
// view of how much re-send state is outstanding, how it drains, and —
// crucially — whether the hard-capped backstops ever dropped state
// (tolerated loss that used to be silent).
type FrameStats struct {
	// OutboxRetained is the current number of unacknowledged outbound
	// mutator frames (gauge).
	OutboxRetained int
	// OutboxEvicted counts frames dropped at the outbox hard cap before
	// acknowledgement: tolerated loss, surfaced here and through the
	// optional AckObserver.
	OutboxEvicted int
	// OutboxResends counts outbox frames re-shipped by Refresh.
	OutboxResends int
	// ResendsSuppressed counts outbox re-sends the damper held back.
	ResendsSuppressed int
	// AcksSent and AcksReceived count FrameAck traffic.
	AcksSent, AcksReceived int
	// FramesRetired counts outbox frames retired by cumulative acks
	// (engine-side rows are counted in EngineStats.RowsRetired).
	FramesRetired int
	// AdvancesSent counts StreamAdvance floor advisories.
	AdvancesSent int
}

// AckObserver is an optional extension of Observer: implementations
// that also satisfy it receive retirement events. Like Observer
// callbacks, these run with the runtime's mutex held and must not call
// back into the Runtime.
type AckObserver interface {
	// FrameEvicted fires when the outbox hard cap drops an
	// unacknowledged mutator frame bound for peer: tolerated loss.
	FrameEvicted(site ids.SiteID, peer ids.SiteID, stream core.Stream, frames int)
	// FrameRetired fires when a cumulative FrameAck from peer retires
	// outbox frames exactly.
	FrameRetired(site ids.SiteID, peer ids.SiteID, stream core.Stream, frames int)
}

// streamKey names one retirement stream between this site and a peer.
type streamKey struct {
	peer ids.SiteID
	kind core.Stream
}

// streamKeyLess orders stream keys deterministically (ack flushes and
// floor advisories must send in a reproducible order under the
// deterministic simulator).
func streamKeyLess(a, b streamKey) bool {
	if a.peer != b.peer {
		return a.peer < b.peer
	}
	return a.kind < b.kind
}

// sendStream is the sender side of one stream: the sequence counter and
// the peer's highest cumulative acknowledgement.
type sendStream struct {
	nextSeq uint64
	ackedTo uint64
}

// maxRecvPending bounds the out-of-order set of one receive tracker; a
// mark past the bound is dropped (the frame is re-sent later and marks
// again once the gap below it narrows).
const maxRecvPending = 1 << 15

// recvTracker is the receiver side of one stream: the cumulative
// watermark (every sequence ≤ watermark settled) plus the settled
// sequences above it still waiting for a gap to fill.
type recvTracker struct {
	watermark uint64
	pending   map[uint64]struct{}
}

// mark records one settled sequence and advances the watermark over any
// now-contiguous prefix.
func (t *recvTracker) mark(seq uint64) {
	if seq <= t.watermark {
		return
	}
	if t.pending == nil {
		t.pending = make(map[uint64]struct{})
	}
	if _, ok := t.pending[seq]; !ok && len(t.pending) >= maxRecvPending {
		return
	}
	t.pending[seq] = struct{}{}
	for {
		if _, ok := t.pending[t.watermark+1]; !ok {
			return
		}
		t.watermark++
		delete(t.pending, t.watermark)
	}
}

// advance raises the watermark to floor-1 (a StreamAdvance advisory:
// everything below floor is acknowledged-or-abandoned at the sender)
// and prunes the out-of-order set.
func (t *recvTracker) advance(floor uint64) bool {
	if floor == 0 || floor-1 <= t.watermark {
		return false
	}
	t.watermark = floor - 1
	for seq := range t.pending {
		if seq <= t.watermark {
			delete(t.pending, seq)
		}
	}
	// The advance may have made pending sequences contiguous.
	for {
		if _, ok := t.pending[t.watermark+1]; !ok {
			return true
		}
		t.watermark++
		delete(t.pending, t.watermark)
	}
}

// sendStreamLocked returns (creating if needed) the send-side stream
// state. Caller holds r.mu.
func (r *Runtime) sendStreamLocked(peer ids.SiteID, kind core.Stream) *sendStream {
	k := streamKey{peer: peer, kind: kind}
	st := r.send[k]
	if st == nil {
		st = &sendStream{}
		r.send[k] = st
	}
	return st
}

// assignSeqLocked returns seq unchanged when non-zero (a re-send under
// its original sequence) and otherwise assigns the next sequence of the
// (peer, kind) stream. Caller holds r.mu.
func (r *Runtime) assignSeqLocked(peer ids.SiteID, kind core.Stream, seq uint64) uint64 {
	if seq != 0 {
		return seq
	}
	st := r.sendStreamLocked(peer, kind)
	st.nextSeq++
	return st.nextSeq
}

// markRecvLocked records the settlement of one tracked inbound frame
// and schedules a FrameAck flush for its stream — also on duplicates,
// which re-sends the unchanged watermark and heals a lost ack. Caller
// holds r.mu.
func (r *Runtime) markRecvLocked(peer ids.SiteID, kind core.Stream, seq uint64) {
	if seq == 0 || kind == 0 {
		return
	}
	k := streamKey{peer: peer, kind: kind}
	t := r.recv[k]
	if t == nil {
		t = &recvTracker{}
		r.recv[k] = t
	}
	t.mark(seq)
	if r.dirtyAcks == nil {
		r.dirtyAcks = make(map[streamKey]struct{})
	}
	r.dirtyAcks[k] = struct{}{}
}

// flushAcksLocked emits one FrameAck per dirty stream, in deterministic
// order. Caller holds r.mu.
func (r *Runtime) flushAcksLocked() {
	if len(r.dirtyAcks) == 0 {
		return
	}
	keys := make([]streamKey, 0, len(r.dirtyAcks))
	for k := range r.dirtyAcks {
		keys = append(keys, k)
	}
	r.dirtyAcks = nil
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		t := r.recv[k]
		if t == nil {
			continue
		}
		r.fstats.AcksSent++
		r.emitLocked(k.peer, wire.FrameAck{Stream: k.kind, Seq: t.watermark, Epoch: r.epoch})
	}
}

// handleFrameAckLocked processes a cumulative acknowledgement from
// peer: epoch changes re-arm the re-send dampers (the peer restarted
// and may have lost undurable state), and a watermark advance retires
// the covered retained state exactly. Caller holds r.mu.
func (r *Runtime) handleFrameAckLocked(peer ids.SiteID, m wire.FrameAck) {
	r.fstats.AcksReceived++
	if last, ok := r.peerEpoch[peer]; !ok || last != m.Epoch {
		r.peerEpoch[peer] = m.Epoch
		if ok {
			// A genuine restart (not first contact): re-arm everything
			// bound for the peer.
			r.engine.ResetPeerBackoff(peer)
			for i := range r.outbox {
				if r.outbox[i].to == peer {
					r.outbox[i].bo.Reset()
				}
			}
		}
	}
	st := r.sendStreamLocked(peer, m.Stream)
	if m.Seq <= st.ackedTo {
		return
	}
	st.ackedTo = m.Seq
	switch m.Stream {
	case core.StreamMut:
		r.retireOutboxLocked(peer, m.Seq)
	case core.StreamAssert:
		r.engine.AckAsserts(peer, m.Seq)
	case core.StreamDestroy:
		r.engine.AckDestroys(peer, m.Seq)
	case core.StreamLegacy:
		r.engine.AckLegacy(peer, m.Seq)
	}
}

// handleAdvanceLocked processes a sender's floor advisory: sequences
// below the floor will never be (re-)sent, so the watermark skips the
// dead gap, and the refreshed watermark is acknowledged back. Caller
// holds r.mu.
func (r *Runtime) handleAdvanceLocked(peer ids.SiteID, m wire.StreamAdvance) {
	if m.Stream == 0 || m.Floor == 0 {
		return
	}
	k := streamKey{peer: peer, kind: m.Stream}
	t := r.recv[k]
	if t == nil {
		t = &recvTracker{}
		r.recv[k] = t
	}
	t.advance(m.Floor)
	if r.dirtyAcks == nil {
		r.dirtyAcks = make(map[streamKey]struct{})
	}
	r.dirtyAcks[k] = struct{}{}
}

// retireOutboxLocked drops every outbox frame bound for peer covered by
// the watermark. Caller holds r.mu.
func (r *Runtime) retireOutboxLocked(peer ids.SiteID, watermark uint64) {
	kept := r.outbox[:0]
	n := 0
	for _, f := range r.outbox {
		if f.to == peer && f.seq <= watermark {
			n++
			continue
		}
		kept = append(kept, f)
	}
	for i := len(kept); i < len(r.outbox); i++ {
		r.outbox[i] = outboundFrame{}
	}
	r.outbox = kept
	if n > 0 {
		r.fstats.FramesRetired += n
		if ao, ok := r.opts.Observer.(AckObserver); ok {
			ao.FrameRetired(r.id, peer, core.StreamMut, n)
		}
	}
}

// resendOutboxLocked re-ships the unacknowledged, damper-due outbox
// frames during a refresh round. Caller holds r.mu.
func (r *Runtime) resendOutboxLocked() {
	for i := range r.outbox {
		f := &r.outbox[i]
		if !f.bo.Ready(r.refreshRound) {
			r.fstats.ResendsSuppressed++
			continue
		}
		r.fstats.OutboxResends++
		r.emitLocked(f.to, f.p)
		f.bo.Bump(r.refreshRound, core.EffectiveBackoffCap(r.opts.Engine.ResendBackoffCap))
	}
}

// advanceFloorsLocked emits StreamAdvance advisories for every send
// stream whose acknowledged watermark trails the smallest sequence the
// site still retains: the gap below the floor is acknowledged-or-
// abandoned and would otherwise stall the peer's cumulative watermark
// forever. Caller holds r.mu.
func (r *Runtime) advanceFloorsLocked() {
	keys := make([]streamKey, 0, len(r.send))
	for k := range r.send {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		st := r.send[k]
		if st.nextSeq == 0 {
			continue
		}
		var floor uint64
		switch k.kind {
		case core.StreamMut:
			floor = st.nextSeq + 1
			for _, f := range r.outbox {
				if f.to == k.peer && f.seq < floor {
					floor = f.seq
				}
			}
		default:
			if f, any := r.engine.RetainedFloor(k.peer, k.kind); any {
				floor = f
			} else {
				floor = st.nextSeq + 1
			}
		}
		if floor == 0 || floor-1 <= st.ackedTo {
			continue
		}
		r.fstats.AdvancesSent++
		r.emitLocked(k.peer, wire.StreamAdvance{Stream: k.kind, Floor: floor})
	}
}

// FrameStats returns a copy of the site-level retirement counters.
func (r *Runtime) FrameStats() FrameStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.fstats
	st.OutboxRetained = len(r.outbox)
	return st
}
