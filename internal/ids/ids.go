// Package ids defines the identifier types shared by every subsystem of
// causalgc: sites, clusters (the vertices of the global root graph) and
// heap objects.
//
// Identifiers are small comparable structs so they can key maps directly.
// A ClusterID carries an immutable "actual root" flag: the paper's root(·)
// predicate (§3.3) must be evaluable locally at any site, and encoding
// rootness in the identity avoids a naming service or consensus round.
package ids

import (
	"fmt"
	"strconv"
)

// CreationSeq is the introduction-sequence sentinel marking an object
// creation: the creation message itself carries the authoritative stamp,
// so the acquiring side sends no edge-assert.
const CreationSeq = ^uint64(0)

// SiteID identifies one site (an independent address space in §2 of the
// paper). Site numbering starts at 1; the zero value is "no site".
type SiteID uint32

// NoSite is the zero SiteID, used when an identifier is unassigned.
const NoSite SiteID = 0

// String returns "s<n>" for diagnostics.
func (s SiteID) String() string {
	return "s" + strconv.FormatUint(uint64(s), 10)
}

// Valid reports whether the site identifier is assigned.
func (s SiteID) Valid() bool { return s != NoSite }

// ClusterID identifies a vertex of the global root graph: a global root at
// per-object granularity, or an object cluster at coarser granularity
// (§3.5). The Root flag marks actual roots — vertices that are alive by
// fiat (local root sets, named persistent roots).
type ClusterID struct {
	Site SiteID
	Seq  uint64
	Root bool
}

// NoCluster is the zero ClusterID.
var NoCluster ClusterID

// String renders e.g. "s2/c7" or "s2/R1" for an actual root.
func (c ClusterID) String() string {
	if c.Root {
		return fmt.Sprintf("%s/R%d", c.Site, c.Seq)
	}
	return fmt.Sprintf("%s/c%d", c.Site, c.Seq)
}

// Valid reports whether the cluster identifier is assigned.
func (c ClusterID) Valid() bool { return c.Site.Valid() }

// IsRoot reports whether the cluster is an actual root (paper: a root of
// the global root graph that is a root of the object graph).
func (c ClusterID) IsRoot() bool { return c.Root }

// Less imposes a total order used for deterministic iteration: by site,
// then sequence, with actual roots ordering before plain clusters of the
// same (site, seq).
func (c ClusterID) Less(o ClusterID) bool {
	if c.Site != o.Site {
		return c.Site < o.Site
	}
	if c.Seq != o.Seq {
		return c.Seq < o.Seq
	}
	return c.Root && !o.Root
}

// Compare returns -1, 0 or +1 following the Less ordering.
func (c ClusterID) Compare(o ClusterID) int {
	switch {
	case c == o:
		return 0
	case c.Less(o):
		return -1
	default:
		return 1
	}
}

// ObjectID identifies a heap object within the whole system. Objects are
// allocated by a site and never migrate in this reproduction (the paper
// does not evaluate migration).
type ObjectID struct {
	Site SiteID
	Seq  uint64
}

// NoObject is the zero ObjectID.
var NoObject ObjectID

// String renders e.g. "s3/o42".
func (o ObjectID) String() string {
	return fmt.Sprintf("%s/o%d", o.Site, o.Seq)
}

// Valid reports whether the object identifier is assigned.
func (o ObjectID) Valid() bool { return o.Site.Valid() }

// Less imposes a total order for deterministic iteration.
func (o ObjectID) Less(p ObjectID) bool {
	if o.Site != p.Site {
		return o.Site < p.Site
	}
	return o.Seq < p.Seq
}

// ClusterSet is a set of cluster identifiers with deterministic snapshots.
type ClusterSet map[ClusterID]struct{}

// NewClusterSet builds a set from the given members.
func NewClusterSet(members ...ClusterID) ClusterSet {
	s := make(ClusterSet, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Add inserts id and reports whether it was absent.
func (s ClusterSet) Add(id ClusterID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// Remove deletes id and reports whether it was present.
func (s ClusterSet) Remove(id ClusterID) bool {
	if _, ok := s[id]; !ok {
		return false
	}
	delete(s, id)
	return true
}

// Has reports membership.
func (s ClusterSet) Has(id ClusterID) bool {
	_, ok := s[id]
	return ok
}

// Sorted returns the members in Less order.
func (s ClusterSet) Sorted() []ClusterID {
	out := make([]ClusterID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sortClusters(out)
	return out
}

// Clone returns an independent copy of the set.
func (s ClusterSet) Clone() ClusterSet {
	out := make(ClusterSet, len(s))
	for id := range s {
		out[id] = struct{}{}
	}
	return out
}

func sortClusters(cs []ClusterID) {
	// Insertion sort: sets are small (acquaintance lists); avoids pulling
	// sort's interface boxing into hot paths and keeps allocation at zero.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Less(cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// SortClusters sorts a slice of cluster IDs in Less order, in place.
func SortClusters(cs []ClusterID) { sortClusters(cs) }

// SortObjects sorts a slice of object IDs in Less order, in place.
func SortObjects(os []ObjectID) {
	for i := 1; i < len(os); i++ {
		for j := i; j > 0 && os[j].Less(os[j-1]); j-- {
			os[j], os[j-1] = os[j-1], os[j]
		}
	}
}
