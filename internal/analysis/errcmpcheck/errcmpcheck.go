// Package errcmpcheck enforces errors.Is discipline for the module's
// sentinel errors: every sentinel (the Err* variables in errors.go,
// internal/heap/errors.go and internal/site/errors.go) is routinely
// wrapped with %w as it crosses package boundaries, so a direct == or
// != against one silently misses the wrapped form. Comparisons must go
// through errors.Is; == is only meaningful against nil.
//
// The analyzer flags ==/!= where either operand resolves to a
// package-level error variable named Err*, and the same pattern as
// switch cases. Audited sites (none are expected) would carry
// //causalgc:allow-errcmp.
package errcmpcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"causalgc/internal/analysis"
)

// Analyzer is the errcmpcheck instance run by causalgc-vet.
var Analyzer = New()

// sentinelName matches the sentinel-error naming convention.
var sentinelName = regexp.MustCompile(`^Err[A-Z0-9]`)

// New returns the errcmpcheck analyzer. It applies to every package:
// sentinel misuse is as wrong in tests as in shipped code.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "errcmpcheck",
		Doc:  "sentinel errors must be compared with errors.Is, never == or !=",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					operand, other := pair[0], pair[1]
					if name, ok := sentinel(pass, operand); ok && !isNil(other) {
						if !pass.Allowed(n.Pos(), "errcmp") {
							pass.Reportf(n.Pos(), "sentinel error %s compared with %s; wrapped errors make this miss — use errors.Is", name, n.Op)
						}
						break
					}
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSwitch flags `switch err { case ErrFoo: }`, which compares with
// == just as silently as the operator form.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if name, ok := sentinel(pass, expr); ok && !pass.Allowed(expr.Pos(), "errcmp") {
				pass.Reportf(expr.Pos(), "sentinel error %s as a switch case compares with ==; wrapped errors make this miss — use errors.Is", name)
			}
		}
	}
}

// sentinel reports whether expr denotes a sentinel error variable: an
// identifier (possibly package-qualified) matching Err[A-Z...] that,
// when type information is available, resolves to a package-level
// variable of error type. Without type information the naming
// convention alone decides, so the check degrades gracefully on
// partially checked code.
func sentinel(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	display := ""
	switch x := expr.(type) {
	case *ast.Ident:
		id, display = x, x.Name
	case *ast.SelectorExpr:
		if pkg, ok := x.X.(*ast.Ident); ok {
			id, display = x.Sel, pkg.Name+"."+x.Sel.Name
		}
	}
	if id == nil || !sentinelName.MatchString(id.Name) {
		return "", false
	}
	if pass.TypesInfo != nil {
		if obj, ok := pass.TypesInfo.Uses[id]; ok {
			v, isVar := obj.(*types.Var)
			if !isVar || v.Parent() == nil || v.Parent().Parent() != types.Universe || !isErrorType(v.Type()) {
				return "", false
			}
		}
	}
	return display, true
}

// isErrorType reports whether t is or implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// isNil reports whether expr is the predeclared nil.
func isNil(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "nil"
}
