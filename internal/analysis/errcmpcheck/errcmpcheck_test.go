package errcmpcheck_test

import (
	"testing"

	"causalgc/internal/analysis/analysistest"
	"causalgc/internal/analysis/errcmpcheck"
)

// TestErrCmpCheck proves ==, != and switch-case sentinel comparisons
// are flagged while errors.Is, nil probes, non-error Err* names,
// local shadows and the directive form stay quiet.
func TestErrCmpCheck(t *testing.T) {
	analysistest.Run(t, "testdata", errcmpcheck.New(), "errcmppkg")
}
