// Package vclock implements the timestamp machinery of the paper:
// per-process event stamps, sparse dependency vectors (DDVs), the Ē
// ("epsilon") destruction stamps of §3.1–§3.2, the Λ predicate, vector
// comparison in the Schwarz–Mattern partial order, and the two-dimensional
// per-root logs (DV_i) of §3.3 with the merge operations used by the GGD
// Receive/ComputeV procedures.
//
// # Stamp spaces
//
// Every global root (cluster) numbers its log-keeping events with a
// monotonically increasing counter. A stamp in column q of any vector
// is, conceptually, an event index of process q. Lazy log-keeping
// (§3.4) lets senders record conservative lower bounds ("counts") in
// columns they do not own; receivers re-stamp columns they own with
// their real clock, which is what makes destruction stamps Ē(clock)
// supersede every creation stamp of the edges they cancel (see
// DESIGN.md §2).
//
// # The pieces
//
//   - Stamp: one edge-keyed record — a sequence in the source's clock
//     space plus the Ē bit — with the two merge operators of DESIGN.md
//     interpretation #3 (Merge supersedes within an edge; JoinPath lets
//     a live path win across edges).
//   - Vector: a sparse column map of stamps with per-entry merging.
//   - HintSet: the pending introduction hints and their sequence-bounded
//     resolution records (Clear/Expire), the soundness repair for the
//     paper's raw sender-side counts (DESIGN.md §2, §3.1). The recorded
//     bound is what suppresses stale gossip re-arms, so hint resolution
//     survives reordering and duplication without re-send.
//   - Log: one process's two-dimensional log — its own first-hand
//     vector and hints, relayed rows of other processes (with the
//     Confirmed flag of interpretation #4), and the lazily created
//     on-behalf rows — plus the Closure computation behind the removal
//     guard.
//
// Everything here is single-threaded by design; the site runtime
// serialises access, and LogImage/Export/RestoreLog provide the durable
// image round-trip used by the persistence subsystem.
package vclock
