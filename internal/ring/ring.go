// Package ring provides the fixed-capacity FIFO ring buffer shared by
// the bounded retention sets of the runtime: the site's outbox of
// re-sendable mutator frames and the engine's retained finalisation
// bundles. Push overwrites the oldest element once the ring is full —
// O(1) per append, no front-shift copies — and Items returns the
// elements oldest-first, so image round-trips preserve FIFO order.
package ring

// Ring is a fixed-capacity overwrite-oldest FIFO. Not safe for
// concurrent use; callers serialise access.
type Ring[T any] struct {
	buf   []T
	start int // index of the oldest element once full
	max   int
}

// New returns an empty ring holding at most capacity elements.
// capacity must be positive.
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	return &Ring[T]{max: capacity}
}

// Push appends v, evicting the oldest element at capacity.
func (r *Ring[T]) Push(v T) {
	if len(r.buf) < r.max {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % r.max
}

// Len returns the number of retained elements.
func (r *Ring[T]) Len() int { return len(r.buf) }

// Items returns the retained elements, oldest first.
func (r *Ring[T]) Items() []T {
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}
