// Package wire defines the physical messages exchanged between sites
// and the durable snapshot/WAL record types of the persistence layer.
//
// # Message families
//
// The mutator messages (Create, RefTransfer) carry no vector piggyback
// beyond the single creation stamp: this is the paper's lazy
// log-keeping (§3.4) — reference exchange requires no additional
// control messages, even for third-party references. The GGD messages
// (Destroy, Propagate, Assert) carry at most one dependency vector
// each; Destroy additionally bundles the delayed third-party
// edge-creation entries ("multiple edge-creation control messages can
// be bundled with an edge-destruction control message in one atomic
// delivery", §3.4).
//
// # Retirement streams
//
// Every frame whose sender retains re-send state — mutator frames of a
// durable site's outbox, edge-asserts, edge-destruction bundles, legacy
// finalisation bundles — carries a Seq: its position in the sender
// site's per-(destination, stream) retirement stream (DESIGN.md §3.2).
// Receivers acknowledge cumulatively with FrameAck once a frame reaches
// a final, replayable disposition, letting the sender retire the
// retained state exactly; StreamAdvance advisories let receivers skip
// gaps that will never fill (rows retired through another path, frames
// evicted at a hard cap). Both are GGD-plane traffic: idempotent and
// loss-tolerant. HintAck, the per-row predecessor, is retained for
// decode compatibility with pre-v3 journals only.
//
// # Durable images
//
// A SiteImage (SnapshotVersion 3) is the full durable state of one
// site, including the retirement streams' counters and watermarks;
// version-2 images migrate forward losslessly on decode. WALRecord is
// one journaled event — a mutator operation or an inbound delivery —
// replayed against the image to reconstruct the site (DESIGN.md §5).
package wire
