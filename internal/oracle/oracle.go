// Package oracle computes ground truth over the whole distributed object
// graph: which objects are reachable from the union of all sites' local
// roots. The oracle sees everything at once — exactly what no site in the
// system can do (§1: no "up-to-date, consistent, and comprehensive view")
// — which is what makes it the arbiter for the safety and liveness
// invariants of the test suite:
//
//   - Safety: no reachable object may ever be missing (a dangling
//     reference proves the collector reclaimed a live object).
//   - Liveness: at quiescence, no unreachable object may remain (all
//     garbage, including distributed cycles, was detected).
package oracle

import (
	"fmt"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/site"
)

// Report is the outcome of one global reachability analysis.
type Report struct {
	// Live counts reachable objects (including root objects).
	Live int
	// Garbage lists objects that exist but are unreachable from every
	// root: undetected garbage (benign residual under message loss).
	Garbage []ids.ObjectID
	// Dangling lists references held by reachable objects whose targets
	// no longer exist: safety violations.
	Dangling []heap.Ref
}

// Safe reports the absence of safety violations.
func (r Report) Safe() bool { return len(r.Dangling) == 0 }

// Clean reports full collection: no residual garbage and no violations.
func (r Report) Clean() bool { return r.Safe() && len(r.Garbage) == 0 }

// String summarises the report.
func (r Report) String() string {
	return fmt.Sprintf("live=%d garbage=%d dangling=%d", r.Live, len(r.Garbage), len(r.Dangling))
}

// Site is the view the oracle needs of one site: a consistent dump of
// its live objects. Both site.Runtime and the lock-striped site.Sharded
// satisfy it.
type Site interface {
	Snapshot() (ids.ObjectID, []site.ObjectSnapshot)
}

// Check analyses the composite graph of the given sites.
func Check(sites ...Site) Report {
	objs := make(map[ids.ObjectID]site.ObjectSnapshot)
	var roots []ids.ObjectID
	for _, s := range sites {
		root, snap := s.Snapshot()
		roots = append(roots, root)
		for _, o := range snap {
			objs[o.ID] = o
		}
	}

	reachable := make(map[ids.ObjectID]struct{})
	var stack []ids.ObjectID
	push := func(id ids.ObjectID) {
		if _, ok := reachable[id]; ok {
			return
		}
		if _, ok := objs[id]; !ok {
			return
		}
		reachable[id] = struct{}{}
		stack = append(stack, id)
	}
	for _, root := range roots {
		push(root)
	}

	var report Report
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		report.Live++
		for _, ref := range objs[id].Slots {
			if !ref.Valid() {
				continue
			}
			if _, ok := objs[ref.Obj]; !ok {
				report.Dangling = append(report.Dangling, ref)
				continue
			}
			push(ref.Obj)
		}
	}

	for id := range objs {
		if _, ok := reachable[id]; !ok {
			report.Garbage = append(report.Garbage, id)
		}
	}
	ids.SortObjects(report.Garbage)
	return report
}
