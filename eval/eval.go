package eval

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"causalgc/internal/baseline/schelvis"
	"causalgc/internal/baseline/tracing"
	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

// Run executes one experiment by identifier (E5, E6, E7, E8, E9, A2) or
// all of them ("all", case-insensitive), writing tables to w. It
// reports whether every executed experiment met its expectation; an
// unknown identifier runs nothing and reports failure. RunResults is the
// structured-output form.
func Run(w io.Writer, which string) bool {
	_, ok := RunResults(w, which)
	return ok
}

// fail finishes an experiment's Result after an unexpected error.
func fail(w io.Writer, r Result, err error) Result {
	fmt.Fprintln(w, "error:", err)
	r.Pass = false
	return r
}

// E5 regenerates Fig 3/8: collecting the paper's distributed cycle
// {2,3,4}. It reports success iff the cycle is fully reclaimed.
func E5(w io.Writer) bool { return e5(w).Pass }

func e5(w io.Writer) Result {
	r := Result{Experiment: "E5", Metrics: map[string]float64{}}
	fmt.Fprintln(w, "== E5: Fig 3/8 — collecting the distributed cycle {2,3,4} ==")
	wd := sim.NewWorld(4, netsim.Faults{Seed: 1}, site.DefaultOptions())
	sc, err := mutator.BuildPaperScenario(wd)
	if err != nil {
		return fail(w, r, err)
	}
	st := wd.Net().Stats()
	base := st.TotalSent()
	if err := sc.DropRootEdge(); err != nil {
		return fail(w, r, err)
	}
	if err := wd.Settle(); err != nil {
		return fail(w, r, err)
	}
	rep := wd.Check()
	fmt.Fprintf(w, "cycle collected: %v; GGD messages: %d (destroy=%d prop=%d)\n\n",
		rep.Clean(), st.TotalSent()-base, st.Sent("ggd.destroy"), st.Sent("ggd.prop"))
	r.Pass = rep.Clean()
	r.Metrics["cycle_collected"] = b2f(rep.Clean())
	r.Metrics["ggd_messages"] = float64(st.TotalSent() - base)
	r.Metrics["destroy_msgs"] = float64(st.Sent("ggd.destroy"))
	r.Metrics["prop_msgs"] = float64(st.Sent("ggd.prop"))
	return r
}

// b2f renders a verdict as a 0/1 metric.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// E6 regenerates the §4 comparison: messages to collect a detached
// doubly-linked list, for the causal algorithm under the paper's literal
// guard and the sound guard, versus Schelvis's eager timestamp packets.
func E6(w io.Writer) bool { return e6(w).Pass }

func e6(w io.Writer) Result {
	r := Result{Experiment: "E6", Metrics: map[string]float64{}}
	fmt.Fprintln(w, "== E6: §4 — messages to collect a detached doubly-linked list ==")
	fmt.Fprintf(w, "%6s %20s %14s %10s\n", "k", "causal(paper-guard)", "causal(sound)", "schelvis")
	ok := true
	for _, k := range []int{4, 8, 16, 32} {
		a, ok1 := DLLCausalCost(k, true)
		b, ok2 := DLLCausalCost(k, false)
		c := DLLSchelvisCost(k)
		ok = ok && ok1 && ok2
		fmt.Fprintf(w, "%6d %20d %14d %10d\n", k, a, b, c)
		r.Metrics[fmt.Sprintf("causal_paper_k%d", k)] = float64(a)
		r.Metrics[fmt.Sprintf("causal_sound_k%d", k)] = float64(b)
		r.Metrics[fmt.Sprintf("schelvis_k%d", k)] = float64(c)
	}
	fmt.Fprintln(w, "shape: paper-guard O(k); sound O(k²) (smaller constant); schelvis O(k²)")
	fmt.Fprintln(w)
	r.Pass = ok
	return r
}

// DLLCausalCost returns the number of messages the causal algorithm
// sends to collect a detached k-element doubly-linked list, and whether
// collection completed. With paperGuard the paper's literal removal test
// (no row confirmation) is used.
func DLLCausalCost(k int, paperGuard bool) (int, bool) {
	opts := site.DefaultOptions()
	opts.Engine.UnsafeSkipConfirmation = paperGuard
	wd := sim.NewWorld(k+1, netsim.Faults{Seed: 1}, opts)
	dll, err := mutator.BuildDLL(wd, k)
	if err != nil {
		return 0, false
	}
	base := wd.Net().Stats().TotalSent()
	if err := dll.Detach(); err != nil {
		return 0, false
	}
	if err := wd.Settle(); err != nil {
		return 0, false
	}
	return wd.Net().Stats().TotalSent() - base, wd.Check().Clean()
}

// DLLSchelvisCost returns the number of messages Schelvis's algorithm
// sends on the same workload.
func DLLSchelvisCost(k int) int {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	dets := make([]*schelvis.Detector, k+1)
	for j := 0; j <= k; j++ {
		dets[j] = schelvis.New(ids.SiteID(j+1), net, k+2, nil)
	}
	root := ids.ClusterID{Site: 1, Seq: 1, Root: true}
	dets[0].AddVertex(root)
	elems := make([]ids.ClusterID, k)
	for j := 0; j < k; j++ {
		elems[j] = ids.ClusterID{Site: ids.SiteID(j + 2), Seq: 1}
		dets[j+1].AddVertex(elems[j])
		dets[0].CreateEdge(root, elems[j])
	}
	for j := 0; j+1 < k; j++ {
		dets[j+1].CreateEdge(elems[j], elems[j+1])
		dets[j+2].CreateEdge(elems[j+1], elems[j])
	}
	net.Run(0)
	for _, d := range dets {
		d.Kick()
	}
	net.Run(0)
	base := net.Stats().TotalSent()
	for _, e := range elems {
		dets[0].DestroyEdge(root, e)
	}
	net.Run(0)
	return net.Stats().TotalSent() - base
}

// E7 regenerates the §1/§2.4 contrast: distributed tracing pays per live
// object each epoch, the causal GGD pays per garbage object.
func E7(w io.Writer) bool { return e7(w).Pass }

func e7(w io.Writer) Result {
	r := Result{Experiment: "E7", Metrics: map[string]float64{}}
	fmt.Fprintln(w, "== E7: §1/§2.4 — tracing pays per live object; causal pays per garbage ==")
	fmt.Fprintf(w, "%22s %14s %14s\n", "workload", "tracing msgs", "causal msgs")
	for _, sh := range []struct{ live, garbage int }{
		{50, 5}, {100, 5}, {200, 5}, {50, 50},
	} {
		tr := e7Tracing(sh.live, sh.garbage)
		ca := e7Causal(sh.live, sh.garbage)
		fmt.Fprintf(w, "  live=%4d garbage=%3d %14d %14d\n", sh.live, sh.garbage, tr, ca)
		r.Metrics[fmt.Sprintf("tracing_l%d_g%d", sh.live, sh.garbage)] = float64(tr)
		r.Metrics[fmt.Sprintf("causal_l%d_g%d", sh.live, sh.garbage)] = float64(ca)
	}
	fmt.Fprintln(w, "shape: tracing grows with live count; causal is constant in it")
	fmt.Fprintln(w)
	r.Pass = true
	return r
}

func buildE7(live, garbage int, opts site.Options) (*sim.World, func() error) {
	wd := sim.NewWorld(6, netsim.Faults{Seed: 1}, opts)
	s1 := wd.Site(1)
	for i := 0; i < live; i++ {
		if _, err := s1.NewRemote(s1.Root().Obj, ids.SiteID(2+i%5)); err != nil {
			panic(err)
		}
	}
	prevObj := s1.Root().Obj
	prevSite := s1
	drop := func() error { return nil }
	for i := 0; i < garbage; i++ {
		ref, err := prevSite.NewRemote(prevObj, ids.SiteID(2+i%5))
		if err != nil {
			panic(err)
		}
		if i == 0 {
			r := ref
			drop = func() error { return s1.DropRefs(s1.Root().Obj, r) }
		}
		if err := wd.Run(); err != nil {
			panic(err)
		}
		prevObj = ref.Obj
		prevSite = wd.Site(ref.Obj.Site)
	}
	wd.Run()
	return wd, drop
}

func e7Tracing(live, garbage int) int {
	wd, drop := buildE7(live, garbage, site.Options{AutoCollect: false})
	col := tracing.New(wd.Sites(), wd.Net())
	st := wd.Net().Stats()
	drop()
	wd.Run()
	col.RunEpoch(func() { wd.Run() })
	return st.Sent("trace.mark") + st.Sent("trace.start") + st.Sent("trace.ack")
}

func e7Causal(live, garbage int) int {
	wd, drop := buildE7(live, garbage, site.DefaultOptions())
	st := wd.Net().Stats()
	base := st.TotalSent()
	drop()
	wd.Settle()
	return st.TotalSent() - base
}

// E8 regenerates the §1/§5 robustness claims: message loss never
// violates safety; it only leaves residual garbage that refresh rounds
// recover once the network heals.
func E8(w io.Writer) bool { return e8(w).Pass }

func e8(w io.Writer) Result {
	r := Result{Experiment: "E8", Metrics: map[string]float64{}}
	fmt.Fprintln(w, "== E8: §1/§5 — robustness under control-message loss ==")
	fmt.Fprintf(w, "%10s %10s %14s %10s\n", "drop", "residual", "afterRefresh", "dangling")
	ok := true
	for _, drop := range []float64{0, 0.1, 0.3} {
		res, rec, dang := e8Run(drop)
		fmt.Fprintf(w, "%10.1f %10d %14d %10d\n", drop, res, rec, dang)
		ok = ok && dang == 0
		key := fmt.Sprintf("drop%02.0f", drop*100)
		r.Metrics[key+"_residual"] = float64(res)
		r.Metrics[key+"_after_refresh"] = float64(rec)
		r.Metrics[key+"_dangling"] = float64(dang)
	}
	fmt.Fprintln(w, "safety is unconditional (dangling always 0); loss costs only latency/residual")
	fmt.Fprintln(w)
	r.Pass = ok
	return r
}

func e8Run(drop float64) (residual, recovered, dangling int) {
	for seed := int64(1); seed <= 5; seed++ {
		wd := sim.NewWorld(5, netsim.Faults{Seed: seed, DropProb: drop, Reorder: true}, site.DefaultOptions())
		mutator.Churn(wd, mutator.ChurnConfig{Seed: seed * 17, Ops: 150, StepsBetweenOps: 2})
		wd.Settle()
		rep := wd.Check()
		residual += len(rep.Garbage)
		dangling += len(rep.Dangling)
		wd.Net().SetDropProb(0)
		for i := 0; i < 4; i++ {
			wd.RefreshAll()
			wd.Settle()
		}
		rep = wd.Check()
		recovered += len(rep.Garbage)
		dangling += len(rep.Dangling)
	}
	return residual, recovered, dangling
}

// E9 exercises the durability subsystem's crash-recovery guarantee and
// the hint-resolution protocol's convergence-to-zero claim: randomised
// churn over durable sites (write-ahead log + snapshots, DESIGN.md §5)
// interleaved with process kills and recoveries at random points, plus
// the two deterministic hint-leak scenarios (a lost edge-assert with a
// live receiver — the edge never forms because the holder died — and a
// lost assert with a crashed receiver). Safety must be unconditional —
// the oracle may never observe a live object reclaimed, no matter where
// the crashes land — AND residual garbage must reach zero after bounded
// refresh rounds: with assert re-send, hint expiry and retained
// finalisation bundles, a crash or loss costs rounds, never a leak.
func E9(w io.Writer) bool { return e9(w).Pass }

func e9(w io.Writer) Result {
	r := Result{Experiment: "E9", Metrics: map[string]float64{}}
	fmt.Fprintln(w, "== E9: durability & hint resolution — safety unconditional, residual → 0 ==")
	ok := true
	for _, sc := range []struct {
		name, key string
		run       func() (before, after, dangling int, err error)
	}{
		{"lost assert, live receiver (dead introduction)", "leak_live", e9LeakLiveReceiver},
		{"lost assert, crashed receiver", "leak_crashed", e9LeakCrashedReceiver},
	} {
		before, after, dangling, err := sc.run()
		if err != nil {
			return fail(w, r, err)
		}
		fmt.Fprintf(w, "%-46s residual=%d afterRefresh=%d dangling=%d\n", sc.name, before, after, dangling)
		ok = ok && after == 0 && dangling == 0
		r.Metrics[sc.key+"_residual"] = float64(before)
		r.Metrics[sc.key+"_after_refresh"] = float64(after)
		r.Metrics[sc.key+"_dangling"] = float64(dangling)
	}
	fmt.Fprintf(w, "%6s %8s %10s %10s %14s %10s\n", "seed", "crashes", "replayed", "residual", "afterRefresh", "dangling")
	var crashes, replayed, residual, afterRefresh, dangling int
	for seed := int64(1); seed <= 5; seed++ {
		sr, err := e9Run(seed)
		if err != nil {
			return fail(w, r, err)
		}
		fmt.Fprintf(w, "%6d %8d %10d %10d %14d %10d\n",
			seed, sr.crashes, sr.replayed, sr.residual, sr.afterRefresh, sr.dangling)
		ok = ok && sr.dangling == 0 && sr.afterRefresh == 0
		crashes += sr.crashes
		replayed += sr.replayed
		residual += sr.residual
		afterRefresh += sr.afterRefresh
		dangling += sr.dangling
	}
	r.Metrics["churn_crashes"] = float64(crashes)
	r.Metrics["churn_replayed"] = float64(replayed)
	r.Metrics["churn_residual"] = float64(residual)
	r.Metrics["churn_after_refresh"] = float64(afterRefresh)
	r.Metrics["churn_dangling"] = float64(dangling)
	fmt.Fprintln(w, "safety is unconditional (dangling always 0); refresh rounds drive residual to 0")
	fmt.Fprintln(w)
	lastRows, lastBytes, steady := e9SteadyState(w)
	r.Metrics["e9b_last_reshipped"] = float64(lastRows)
	r.Metrics["e9b_last_ctl_bytes"] = float64(lastBytes)
	r.Pass = ok && steady
	return r
}

// e9SteadyState measures the steady-state cost of refresh rounds under
// the acknowledged-retirement protocol (DESIGN.md §3.2): after a
// fault-free workload settles and its FrameAcks drain, each further
// refresh round must re-ship ZERO retained rows — journaled asserts,
// destroyed-edge bundles, legacy finalisation bundles, outbox frames —
// and its destroy/assert wire traffic must be zero bytes. Before the
// protocol every round re-shipped the full journal and bundle set, so
// steady-state refresh traffic grew with history; now it converges. It
// returns the final round's re-shipped row count and control bytes
// (both must be zero) and whether they were.
func e9SteadyState(w io.Writer) (lastRows, lastBytes int, ok bool) {
	fmt.Fprintln(w, "-- E9b: steady-state refresh traffic (re-shipped state → 0 after quiescence) --")
	dir, err := os.MkdirTemp("", "causalgc-e9b-*")
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return -1, -1, false
	}
	defer os.RemoveAll(dir)
	wd, err := sim.NewDurableWorld(4, netsim.Faults{Seed: 3}, site.DefaultOptions(), dir, 64)
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return -1, -1, false
	}
	defer wd.Close()
	if _, err := mutator.Churn(wd, mutator.ChurnConfig{Seed: 19, Ops: 150, StepsBetweenOps: 2}); err != nil {
		fmt.Fprintln(w, "error:", err)
		return -1, -1, false
	}
	if err := wd.Settle(); err != nil {
		fmt.Fprintln(w, "error:", err)
		return -1, -1, false
	}
	reshipped := func() int {
		n := 0
		for _, s := range wd.Sites() {
			es := s.EngineStats()
			n += es.AssertResends + es.DestroyResends + es.LegacyResends
			n += s.FrameStats().OutboxResends
		}
		return n
	}
	st := wd.Net().Stats()
	ctlBytes := func() int {
		_, _, _, _, d := st.Kind("ggd.destroy")
		_, _, _, _, a := st.Kind("ggd.assert")
		return d + a
	}
	fmt.Fprintf(w, "%8s %12s %16s\n", "round", "reshipped", "destroy+assert B")
	for round := 1; round <= 5; round++ {
		rowsBefore, bytesBefore := reshipped(), ctlBytes()
		if err := wd.RefreshAll(); err != nil {
			fmt.Fprintln(w, "error:", err)
			return -1, -1, false
		}
		if err := wd.Settle(); err != nil {
			fmt.Fprintln(w, "error:", err)
			return -1, -1, false
		}
		lastRows, lastBytes = reshipped()-rowsBefore, ctlBytes()-bytesBefore
		fmt.Fprintf(w, "%8d %12d %16d\n", round, lastRows, lastBytes)
	}
	ok = lastRows == 0 && lastBytes == 0
	fmt.Fprintf(w, "steady-state refresh re-ships nothing: %v\n\n", ok)
	return lastRows, lastBytes, ok
}

// e9LeakLiveReceiver reproduces the dead-introduction leak: a reference
// forwarded to a holder object that was collected before the transfer
// arrives. The edge never forms, so no edge-assert ever resolves the
// introduction hint armed at the target — only the expiry protocol can.
func e9LeakLiveReceiver() (before, after, dangling int, err error) {
	wd := sim.NewWorld(3, netsim.Faults{Seed: 1}, site.DefaultOptions())
	s1 := wd.Site(1)
	x, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		return 0, 0, 0, err
	}
	tgt, err := s1.NewRemote(s1.Root().Obj, 3)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Run(); err != nil {
		return 0, 0, 0, err
	}
	if err := s1.DropRefs(s1.Root().Obj, x); err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Settle(); err != nil {
		return 0, 0, 0, err
	}
	// The stale forward reaches site 2 after x's collection.
	if err := s1.SendRef(s1.Root().Obj, x, tgt); err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Run(); err != nil {
		return 0, 0, 0, err
	}
	if err := s1.DropRefs(s1.Root().Obj, tgt); err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Settle(); err != nil {
		return 0, 0, 0, err
	}
	rep := wd.Check()
	before, dangling = len(rep.Garbage), len(rep.Dangling)
	if err := wd.RefreshAll(); err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Settle(); err != nil {
		return 0, 0, 0, err
	}
	rep = wd.Check()
	return before, len(rep.Garbage), dangling + len(rep.Dangling), nil
}

// e9LeakCrashedReceiver reproduces the crashed-receiver leak: the hint
// owner's site is killed while the edge-assert is in flight, and again
// while the asserting cluster's finalisation destroy is in flight —
// both resolution carriers lost. Bounded refresh rounds must still
// reclaim the pinned target.
func e9LeakCrashedReceiver() (before, after, dangling int, err error) {
	dir, err := os.MkdirTemp("", "causalgc-e9-leak-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	wd, err := sim.NewDurableWorld(3, netsim.Faults{Seed: 7}, site.DefaultOptions(), dir, 8)
	if err != nil {
		return 0, 0, 0, err
	}
	defer wd.Close()
	s1 := wd.Site(1)
	x, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		return 0, 0, 0, err
	}
	tgt, err := s1.NewRemote(s1.Root().Obj, 3)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Run(); err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Crash(3); err != nil {
		return 0, 0, 0, err
	}
	if err := s1.SendRef(s1.Root().Obj, x, tgt); err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Run(); err != nil { // x forms the edge; its assert is eaten
		return 0, 0, 0, err
	}
	if err := wd.Restart(3); err != nil {
		return 0, 0, 0, err
	}
	if err := s1.DropRefs(s1.Root().Obj, x); err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < sim.DefaultStepBudget && !wd.Site(2).ClusterRemoved(x.Cluster); i++ {
		if !wd.Step() {
			break
		}
	}
	if err := wd.Crash(3); err != nil { // eats x's finalisation destroy
		return 0, 0, 0, err
	}
	if err := wd.Restart(3); err != nil {
		return 0, 0, 0, err
	}
	if err := s1.DropRefs(s1.Root().Obj, tgt); err != nil {
		return 0, 0, 0, err
	}
	if err := wd.Settle(); err != nil {
		return 0, 0, 0, err
	}
	rep := wd.Check()
	before, dangling = len(rep.Garbage), len(rep.Dangling)
	for i := 0; i < 3 && len(rep.Garbage) > 0; i++ {
		if err := wd.RefreshAll(); err != nil {
			return 0, 0, 0, err
		}
		if err := wd.Settle(); err != nil {
			return 0, 0, 0, err
		}
		rep = wd.Check()
	}
	return before, len(rep.Garbage), dangling + len(rep.Dangling), nil
}

type e9Result struct {
	crashes, replayed, residual, afterRefresh, dangling int
}

func e9Run(seed int64) (r e9Result, err error) {
	dir, err := os.MkdirTemp("", "causalgc-e9-*")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)
	wd, err := sim.NewDurableWorld(4, netsim.Faults{Seed: seed, Reorder: true}, site.DefaultOptions(), dir, 16)
	if err != nil {
		return r, err
	}
	defer wd.Close()
	rng := rand.New(rand.NewSource(seed * 31))
	for round := 0; round < 5; round++ {
		if _, err := mutator.Churn(wd, mutator.ChurnConfig{
			Seed: seed*100 + int64(round), Ops: 40, StepsBetweenOps: 3,
		}); err != nil {
			return r, err
		}
		for i := rng.Intn(30); i > 0 && wd.Step(); i-- {
		}
		victim := ids.SiteID(1 + rng.Intn(4))
		if err := wd.Crash(victim); err != nil {
			return r, err
		}
		if err := wd.Restart(victim); err != nil {
			return r, err
		}
		r.crashes++
		if err := wd.Run(); err != nil {
			return r, err
		}
		r.dangling += len(wd.Check().Dangling)
	}
	if err := wd.Settle(); err != nil {
		return r, err
	}
	rep := wd.Check()
	r.residual = len(rep.Garbage)
	r.dangling += len(rep.Dangling)
	for i := 0; i < 6; i++ {
		if err := wd.RefreshAll(); err != nil {
			return r, err
		}
		if err := wd.Settle(); err != nil {
			return r, err
		}
	}
	rep = wd.Check()
	r.afterRefresh = len(rep.Garbage)
	r.dangling += len(rep.Dangling)
	r.replayed = wd.ReplayedRecords()
	return r, nil
}

// A2 regenerates the ablation that motivates the sound removal guard:
// the paper's literal guard produces dangling references on randomised
// churn; the sound configuration never does.
func A2(w io.Writer) bool { return a2(w).Pass }

func a2(w io.Writer) Result {
	r := Result{Experiment: "A2", Metrics: map[string]float64{}}
	fmt.Fprintln(w, "== A2: ablation — the paper's literal removal guard is unsound ==")
	sound := a2Run(false)
	unsafe := a2Run(true)
	fmt.Fprintf(w, "dangling references over 10 churn seeds: sound=%d paper-guard=%d\n", sound, unsafe)
	fmt.Fprintln(w, "(the row-confirmation guard and introduction hints close the race)")
	fmt.Fprintln(w)
	r.Pass = sound == 0
	r.Metrics["dangling_sound"] = float64(sound)
	r.Metrics["dangling_paper_guard"] = float64(unsafe)
	return r
}

func a2Run(unsafeGuard bool) int {
	opts := site.DefaultOptions()
	opts.Engine.UnsafeSkipConfirmation = unsafeGuard
	opts.Engine.UnsafeNoHints = unsafeGuard
	dangling := 0
	for seed := int64(1); seed <= 10; seed++ {
		wd := sim.NewWorld(6, netsim.Faults{Seed: seed}, opts)
		mutator.Churn(wd, mutator.ChurnConfig{Seed: seed * 7, Ops: 150, StepsBetweenOps: 3})
		wd.Settle()
		dangling += len(wd.Check().Dangling)
	}
	return dangling
}
