package site

import (
	"fmt"
	"sync"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/vclock"
	"causalgc/internal/wire"
)

// Options configure a Runtime.
type Options struct {
	// AutoCollect runs a local collection whenever GGD removes a local
	// cluster, so reclamation cascades without explicit Collect calls.
	// Defaults to true via New.
	AutoCollect bool
	// Engine tunes the GGD engine (the unsafe ablation switch).
	Engine core.Options
	// Observer, when non-nil, receives lifecycle notifications. Callbacks
	// run with the runtime's mutex held and must not call back into the
	// Runtime.
	Observer Observer
	// MaxBatchFrames caps the frames coalesced into one wire.Envelope by
	// a batch commit (or an envelope dispatch); a larger group flushes
	// in several envelopes. Zero means DefaultMaxBatchFrames.
	MaxBatchFrames int
}

// DefaultMaxBatchFrames is the default cap on frames per coalesced
// envelope (Options.MaxBatchFrames): large enough that realistic
// batches fit one envelope, small enough that one envelope stays well
// under transport frame limits.
const DefaultMaxBatchFrames = 256

// Observer receives site lifecycle events: the public metrics hook of the
// causalgc API. Implementations must be fast and must not re-enter the
// Runtime (callbacks run under its mutex).
type Observer interface {
	// ClusterRemoved fires when GGD detects a local cluster as global
	// garbage and removes it.
	ClusterRemoved(site ids.SiteID, cluster ids.ClusterID)
	// Collected fires after every local mark-sweep collection, whether
	// requested explicitly or triggered by an AutoCollect cascade.
	Collected(site ids.SiteID, stats heap.CollectStats)
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{AutoCollect: true}
}

// pendingRef is a buffered reference transfer awaiting its holder.
type pendingRef struct {
	target   heap.Ref
	intro    ids.ClusterID
	introSeq uint64
}

// introKey identifies one forwarding of a reference: the introducing
// cluster and its forwarding sequence number. Forwarding seqs are drawn
// from the introducer's event clock, so the pair is globally unique.
type introKey struct {
	intro ids.ClusterID
	seq   uint64
}

// outboundFrame is one sent mutator frame retained until the receiving
// site's cumulative FrameAck retires it (re-sent by crash recovery and
// by damper-due refresh rounds).
type outboundFrame struct {
	to  ids.SiteID
	seq uint64
	p   netsim.Payload
	bo  core.Backoff
}

// maxOutbox is the hard-cap backstop on retained outbound mutator
// frames. Under the acknowledged-retirement protocol the outbox trims
// its acknowledged prefix and stays near-empty in steady state; the cap
// only fires against a peer that never acknowledges (down forever,
// partitioned). Evicting an unacknowledged frame is tolerated loss —
// the GGD plane survives it; an undelivered mutator frame costs at
// worst residual garbage, never safety — and is counted in
// FrameStats.OutboxEvicted and surfaced through AckObserver instead of
// happening silently.
const maxOutbox = 1024

// maxSeenIntro bounds the receiver-side transfer dedup set. Evicting an
// entry can at worst let a re-sent transfer be applied twice, which
// adds a redundant slot — a leak risk, never a safety violation.
const maxSeenIntro = 1 << 16

// bufDelivery is one live delivery buffered while a recovery replay is
// in progress.
type bufDelivery struct {
	from ids.SiteID
	p    netsim.Payload
}

// shardHooks wires one Runtime into a Sharded composition (DESIGN.md
// §3.4). Every callback is set by Sharded before the runtime handles
// its first event and never changes afterwards; nil shardHooks (the sh
// field of an unsharded Runtime) selects the classic single-lock
// behavior everywhere.
type shardHooks struct {
	// index is this shard's position (0-based). Shard 0 owns the site's
	// root cluster.
	index int
	// owns narrows cluster locality below site equality: true only for
	// same-site clusters this shard routes. Installed as the engine's
	// Owns predicate too.
	owns func(ids.ClusterID) bool
	// place picks the placement shard for a freshly minted local cluster
	// and records the routing choice; holderClu is the creating holder's
	// cluster (NoCluster for a bare NewCluster). pin forces the
	// executing shard (multi-op batches, where a cross-shard create
	// would strand the batch's deferred references). Returns the
	// 1-based shard recorded in OpRecord.Place.
	place func(newClu, holderClu ids.ClusterID, pin bool) int
	// clusterShard answers the 0-based routing shard of any same-site
	// cluster (placement map first, deterministic hash otherwise).
	clusterShard func(ids.ClusterID) int
	// placed records an applied placement: the WAL replay path
	// repopulates the routing map through it (premint is skipped during
	// replay; the recorded Place is authoritative).
	placed func(cl ids.ClusterID, place int)
	// route hands a self-addressed frame to the ordered cross-shard
	// handoff queue of its destination shard.
	route func(p netsim.Payload)
}

// Runtime is one site — or, within a Sharded composition, one shard of
// a site: a full runtime owning a partition of the site's clusters,
// sharing the site identity, the identity mint, and the retirement
// stream table with its sibling shards.
type Runtime struct {
	mu     sync.Mutex
	id     ids.SiteID
	heap   *heap.Heap
	engine *core.Engine
	net    netsim.Network
	opts   Options

	// st is the retirement-stream table: private to an unsharded
	// runtime, shared across the shards of a sharded site. Its mutex is
	// a leaf under r.mu.
	st *streams
	// sh holds the sharding callbacks; nil on an unsharded runtime.
	sh *shardHooks

	// pendingRefs buffers reference transfers that arrived before the
	// creation message of their holder object (cross-sender races).
	pendingRefs map[ids.ObjectID][]pendingRef
	// removals counts GGD removals since the last collection.
	removals int

	// journal, when non-nil, receives a durable record of every relevant
	// event before it takes effect (write-ahead; see DESIGN.md §5).
	journal Journal
	// replaying suppresses journaling and buffers live deliveries while
	// Recover replays the WAL.
	replaying  bool
	recoverBuf []bufDelivery
	// seenIntro dedups received reference transfers by (introducer,
	// forwarding-seq), making recovery resends idempotent.
	seenIntro map[introKey]struct{}
	// outbox retains outbound mutator frames (populated only when a
	// journal is attached) until the receiver acknowledges them; oldest
	// first, hard-capped at maxOutbox as a documented backstop.
	outbox []outboundFrame

	// dirtyAcks are the streams whose watermark must be (re-)acked at
	// the end of the current dispatch. Per shard: the shard that settled
	// a frame sends the ack.
	dirtyAcks map[streamKey]struct{}

	// coalescing, when set, buffers outbound frames per destination
	// instead of sending them: open during a batch commit and during
	// the dispatch of a received envelope, flushed as one wire.Envelope
	// per peer (DESIGN.md §3.3). The buffer allocates lazily on the
	// first frame, so frameless windows (most one-op batches) cost
	// nothing.
	coalescing bool
	coalesce   map[ids.SiteID][]netsim.Payload

	// closed freezes the runtime: deliveries are dropped (tolerated
	// loss) so introspection keeps answering from an unchanging state.
	closed bool
}

// New creates a site runtime and registers it on the network. For a
// durable site use Recover, which attaches a journal and replays any
// existing state.
func New(id ids.SiteID, net netsim.Network, opts Options) *Runtime {
	r := newRuntime(id, net, opts)
	net.Register(id, r.handle)
	return r
}

// newRuntime builds a fresh unsharded runtime without registering it.
func newRuntime(id ids.SiteID, net netsim.Network, opts Options) *Runtime {
	r := &Runtime{
		id:          id,
		net:         net,
		opts:        opts,
		st:          newStreams(),
		pendingRefs: make(map[ids.ObjectID][]pendingRef),
		seenIntro:   make(map[introKey]struct{}),
	}
	r.engine = core.New(id, (*sender)(r), r.onRemove, opts.Engine)
	r.heap = heap.New(id, (*hooks)(r))
	r.engine.Register(r.heap.RootCluster())
	return r
}

// newShardRuntime builds one shard of a sharded site: a rootless heap
// partition (except shard 0) drawing identities from the shared mint,
// an engine whose locality predicate is the shard's routing rule, and
// the shared stream table.
func newShardRuntime(id ids.SiteID, net netsim.Network, opts Options, st *streams, ctr *heap.Counters, sh *shardHooks) *Runtime {
	opts.Engine.Owns = sh.owns
	r := &Runtime{
		id:          id,
		net:         net,
		opts:        opts,
		st:          st,
		sh:          sh,
		pendingRefs: make(map[ids.ObjectID][]pendingRef),
		seenIntro:   make(map[introKey]struct{}),
	}
	r.engine = core.New(id, (*sender)(r), r.onRemove, r.opts.Engine)
	r.heap = heap.NewShard(id, (*hooks)(r), ctr, sh.index == 0)
	if sh.index == 0 {
		r.engine.Register(r.heap.RootCluster())
	}
	return r
}

// ID returns the site identifier.
func (r *Runtime) ID() ids.SiteID { return r.id }

// Root returns a reference to the site's root object; its slots model the
// mutator's named references.
func (r *Runtime) Root() heap.Ref {
	return r.heap.RootRef()
}

// owns reports whether this runtime routes cl: plain site equality when
// unsharded, the shard routing rule otherwise.
func (r *Runtime) owns(cl ids.ClusterID) bool {
	if r.sh != nil {
		return r.sh.owns(cl)
	}
	return cl.Site == r.id
}

// shardIndex returns this runtime's shard position (0 when unsharded).
func (r *Runtime) shardIndex() int {
	if r.sh != nil {
		return r.sh.index
	}
	return 0
}

// --- heap.Hooks and core plumbing ---------------------------------------

// hooks adapts Runtime to heap.Hooks without exposing the methods on the
// public API.
type hooks Runtime

func (h *hooks) EdgeUp(holder, target ids.ClusterID, first bool, intro ids.ClusterID, introSeq uint64) {
	(*Runtime)(h).engine.EdgeUp(holder, target, first, intro, introSeq)
}

func (h *hooks) EdgeDown(holder, target ids.ClusterID) {
	(*Runtime)(h).engine.EdgeDown(holder, target)
}

var _ heap.Hooks = (*hooks)(nil)

// sender adapts Runtime to core.Sender: it assigns retirement-stream
// sequences (per destination site and stream) and stamps them onto the
// wire frames, so receivers can acknowledge cumulatively.
//
// The engine only runs inside Runtime methods that hold r.mu, so every
// callback below executes under the lock by construction; the
// interface fixes the method names, so the *Locked suffix cannot carry
// that fact and the calls are annotated as audited lockcheck
// exceptions instead.
type sender Runtime

func (s *sender) SendDestroy(from, to ids.ClusterID, m core.DestroyMsg, seq uint64) uint64 {
	r := (*Runtime)(s)
	seq = r.assignSeqLocked(to.Site, core.StreamDestroy, seq)               //causalgc:allow-locked-call engine callbacks run under r.mu
	r.emitLocked(to.Site, wire.Destroy{From: from, To: to, M: m, Seq: seq}) //causalgc:allow-locked-call engine callbacks run under r.mu
	return seq
}

func (s *sender) SendLegacy(from, to ids.ClusterID, m core.DestroyMsg, seq uint64) uint64 {
	r := (*Runtime)(s)
	seq = r.assignSeqLocked(to.Site, core.StreamLegacy, seq)                              //causalgc:allow-locked-call engine callbacks run under r.mu
	r.emitLocked(to.Site, wire.Destroy{From: from, To: to, M: m, Seq: seq, Legacy: true}) //causalgc:allow-locked-call engine callbacks run under r.mu
	return seq
}

func (s *sender) SendAssert(from, to ids.ClusterID, m core.AssertMsg, seq uint64) uint64 {
	r := (*Runtime)(s)
	seq = r.assignSeqLocked(to.Site, core.StreamAssert, seq)               //causalgc:allow-locked-call engine callbacks run under r.mu
	r.emitLocked(to.Site, wire.Assert{From: from, To: to, M: m, Seq: seq}) //causalgc:allow-locked-call engine callbacks run under r.mu
	return seq
}

func (s *sender) SendPropagate(from, to ids.ClusterID, m core.Propagation) {
	(*Runtime)(s).emitLocked(to.Site, wire.Propagate{From: from, To: to, M: m}) //causalgc:allow-locked-call engine callbacks run under r.mu
}

func (s *sender) SettleFrame(peer ids.SiteID, stream core.Stream, seq uint64) {
	(*Runtime)(s).markRecvLocked(peer, stream, seq) //causalgc:allow-locked-call engine callbacks run under r.mu
}

var _ core.Sender = (*sender)(nil)

// onRemove is the engine's removal callback: discard the cluster's global
// roots from the local root set (§2.2) and schedule reclamation.
func (r *Runtime) onRemove(cl ids.ClusterID) {
	// Errors are impossible here by construction: the engine only removes
	// clusters it registered, which exist in the heap.
	_ = r.heap.RemoveCluster(cl)
	r.removals++
	if r.opts.Observer != nil {
		r.opts.Observer.ClusterRemoved(r.id, cl)
	}
}

// collectLocked runs one local collection and notifies the observer.
func (r *Runtime) collectLocked() heap.CollectStats {
	stats := r.heap.Collect()
	if r.opts.Observer != nil {
		r.opts.Observer.Collected(r.id, stats)
	}
	return stats
}

// Close freezes the runtime: deliveries still arriving from a shared
// transport are dropped (tolerated loss) instead of mutating state, so
// post-Close introspection reads a stable image. Mutator entry points
// are gated by the owning Node.
func (r *Runtime) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
}

// handle is the network delivery entry point.
func (r *Runtime) handle(from ids.SiteID, p netsim.Payload) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replaying {
		// A live delivery racing the recovery replay: buffered, then
		// journaled and processed once the replay completes.
		if !r.closed {
			r.recoverBuf = append(r.recoverBuf, bufDelivery{from: from, p: p})
		}
		return
	}
	r.deliverShardLocked(from, p)
	r.checkpointLocked()
}

// deliverShardLocked journals and dispatches one delivery with r.mu
// already held: the body of handle, also used by the sharded
// stop-the-world checkpoint, which drains the handoff queues while
// holding every shard's lock. Caller holds r.mu (and never a sibling
// shard's lock except on the all-locks checkpoint path).
func (r *Runtime) deliverShardLocked(from ids.SiteID, p netsim.Payload) {
	if r.closed {
		return
	}
	if r.journal != nil {
		if err := r.journal.Append(&wire.WALRecord{Shard: r.shardIndex(), Deliver: &wire.DeliverRecord{From: from, Payload: p}}); err != nil {
			// An unjournalable delivery must not take effect: acting on it
			// would desynchronise the replayable history from the messages
			// this site sends. Dropping is safe — the protocol tolerates
			// loss (§5).
			return
		}
	}
	r.dispatchLocked(from, p)
}

// dispatchLocked applies one delivery, settles the engine, and flushes
// any acknowledgements the delivery earned. A received wire.Envelope is
// applied frame by frame but settled and acknowledged once, and the
// responses it provokes (FrameAcks, asserts, cascade traffic) are
// themselves coalesced into one envelope per peer. Caller holds r.mu.
func (r *Runtime) dispatchLocked(from ids.SiteID, p netsim.Payload) {
	opened := false
	if _, ok := p.(wire.Envelope); ok {
		opened = r.beginCoalesceLocked()
	}
	r.applyFrameLocked(from, p)
	r.settleLocked()
	r.flushAcksLocked()
	if opened {
		r.flushCoalesceLocked()
	}
}

// applyFrameLocked applies one wire frame (an envelope's inner frames
// recursively, in order). Caller holds r.mu.
func (r *Runtime) applyFrameLocked(from ids.SiteID, p netsim.Payload) {
	switch m := p.(type) {
	case wire.Create:
		r.handleCreate(m)
		// Mutator frames settle on any delivery: every disposition
		// (applied, duplicate-dropped, zombie-dropped) is final and
		// replayable.
		r.markRecvLocked(from, core.StreamMut, m.Seq)
	case wire.RefTransfer:
		r.handleRefTransfer(m)
		r.markRecvLocked(from, core.StreamMut, m.Seq)
	case wire.Destroy:
		r.engine.HandleDestroyFrame(m.To, m.From, m.M, m.Seq, m.Legacy)
	case wire.Propagate:
		r.engine.HandlePropagate(m.To, m.From, m.M)
	case wire.Assert:
		r.engine.HandleAssertFrame(m.To, m.From, m.M, m.Seq)
	case wire.HintAck:
		r.engine.HandleAck(m.To, m.From, m.M)
	case wire.FrameAck:
		r.handleFrameAckLocked(from, m)
	case wire.StreamAdvance:
		r.handleAdvanceLocked(from, m)
	case wire.Envelope:
		for _, f := range m.Frames {
			r.applyFrameLocked(from, f)
		}
	}
}

// journalOp durably records a mutator operation before it is applied.
func (r *Runtime) journalOp(op wire.OpRecord) error {
	if r.journal == nil || r.replaying {
		return nil
	}
	if err := r.journal.Append(&wire.WALRecord{Shard: r.shardIndex(), Op: &op}); err != nil {
		return fmt.Errorf("site %v: journal %v: %w", r.id, op.Kind, err)
	}
	return nil
}

// checkpointLocked offers the journal a snapshot opportunity at a
// quiescent point. Checkpoint failures are sticky inside the journal
// (the next Append surfaces them); the completed operation itself is
// already durable in the WAL.
func (r *Runtime) checkpointLocked() {
	if r.journal == nil || r.replaying {
		return
	}
	_ = r.journal.Checkpoint(r.exportImageLocked)
}

// assignMutSeqLocked draws the next mutator-stream sequence for a frame
// bound to target, or zero for volatile sites (no journal → no outbox →
// nothing to acknowledge).
func (r *Runtime) assignMutSeqLocked(target ids.SiteID) uint64 {
	if r.journal == nil {
		return 0
	}
	return r.assignSeqLocked(target, core.StreamMut, 0)
}

// recordOutboundLocked retains a sent mutator frame until the receiver
// acknowledges it, evicting the oldest past the maxOutbox backstop
// (counted tolerated loss).
func (r *Runtime) recordOutboundLocked(to ids.SiteID, seq uint64, p netsim.Payload) {
	if r.journal == nil || seq == 0 {
		return
	}
	if len(r.outbox) >= maxOutbox {
		victim := r.outbox[0]
		copy(r.outbox, r.outbox[1:])
		r.outbox = r.outbox[:len(r.outbox)-1]
		r.st.mu.Lock()
		r.st.fstats.OutboxEvicted++
		r.st.mu.Unlock()
		if ao, ok := r.opts.Observer.(AckObserver); ok {
			ao.FrameEvicted(r.id, victim.to, core.StreamMut, 1)
		}
	}
	r.outbox = append(r.outbox, outboundFrame{to: to, seq: seq, p: p})
}

func (r *Runtime) handleCreate(m wire.Create) {
	if r.engine.Removed(m.Cluster) {
		// A duplicate or recovery-re-sent creation of a cluster GGD has
		// already removed: applying it would resurrect a zombie object —
		// the swept cluster shell is gone, so the heap would rebuild a
		// live-looking cluster and pin the object as an entry root
		// forever, while the tombstoned engine process can never issue a
		// second verdict. Dropping is the idempotent outcome: the first
		// creation was fully processed and reclaimed.
		return
	}
	r.engine.HandleCreate(m.Cluster, m.Creator, m.Stamp)
	o, err := r.heap.NewObjectAt(m.Obj, m.Cluster)
	if err != nil {
		return // duplicate create: idempotent drop
	}
	// The object is referenced from outside this heap partition from
	// birth (a remote site or a sibling shard): it is a global root.
	_ = r.heap.MarkEntry(o.ID())
	for _, pr := range r.pendingRefs[m.Obj] {
		_, _ = r.heap.AddRefIntro(m.Obj, pr.target, pr.intro, pr.introSeq)
	}
	delete(r.pendingRefs, m.Obj)
}

func (r *Runtime) handleRefTransfer(m wire.RefTransfer) {
	// Dedup by (introducer, forwarding-seq): forwarding seqs are unique
	// per introducing cluster, so a re-sent transfer — a crashed sender
	// re-playing its outbox, or a journaled delivery re-arriving after
	// the sender's recovery — is applied exactly once.
	if m.IntroSeq > 0 {
		k := introKey{intro: m.FromCluster, seq: m.IntroSeq}
		if _, dup := r.seenIntro[k]; dup {
			return
		}
		if len(r.seenIntro) >= maxSeenIntro {
			for old := range r.seenIntro {
				delete(r.seenIntro, old)
				break
			}
		}
		r.seenIntro[k] = struct{}{}
	}
	if r.heap.Object(m.ToObj) == nil {
		if m.ToCluster.Valid() && (r.engine.Registered(m.ToCluster) || r.engine.Removed(m.ToCluster)) {
			// The holder's cluster is known here but the object is gone:
			// an object can only be named after its creation was
			// processed (which registers the cluster), so the holder was
			// collected and this introduction can never form its edge.
			// Expire it at the hint's owner instead of parking the frame
			// forever.
			r.engine.ResolveIntroduction(m.ToCluster, m.Target.Cluster, m.FromCluster, m.IntroSeq)
			return
		}
		// The holder's creation message has not arrived yet (different
		// sender): buffer and replay on creation.
		r.pendingRefs[m.ToObj] = append(r.pendingRefs[m.ToObj], pendingRef{
			target: m.Target, intro: m.FromCluster, introSeq: m.IntroSeq,
		})
		return
	}
	// AddRefIntro triggers EdgeUp: the receiver stamps the new edge in
	// its own clock space — the authoritative lazy log-keeping record
	// (§3.4) — and sends the edge-assert resolving the introduction.
	_, _ = r.heap.AddRefIntro(m.ToObj, m.Target, m.FromCluster, m.IntroSeq)
}

// settleLocked drives removal cascades to completion: GGD removals clear
// entry tables, the following collection destroys the last proxies, whose
// destruction messages may remove further local clusters, and so on.
func (r *Runtime) settleLocked() {
	r.engine.Drain()
	if !r.opts.AutoCollect {
		return
	}
	for r.removals > 0 {
		r.removals = 0
		r.collectLocked()
		r.engine.Drain()
	}
}

// --- Mutator API ---------------------------------------------------------

// The singleton mutator entry points all follow one commit sequence —
// stage-check (reject without journaling, mirroring the historical
// pre-journal validation), pre-mint (sharded sites record the drawn
// identities and placement on the OpRecord), write-ahead journal,
// apply, checkpoint — shared with the batch path (ApplyBatch), which
// runs the same stages once per group instead of once per op.

// runOpLocked commits one mutator operation through the singleton
// path. Caller holds r.mu.
func (r *Runtime) runOpLocked(op wire.OpRecord) (heap.Ref, error) {
	if err := r.stageOpLocked(op); err != nil {
		return heap.NilRef, err
	}
	r.premintLocked(&op, false)
	if err := r.journalOp(op); err != nil {
		return heap.NilRef, err
	}
	ref, err := r.applyOpLocked(op)
	r.checkpointLocked()
	return ref, err
}

// premintLocked draws the identities op will mint and records them
// (plus the placement shard for fresh clusters and the mutator-stream
// sequence of any frame the op emits) on the record before it is
// journaled. Only sharded sites pre-mint: with concurrent shards the
// WAL append order need not match the live mint (or seq-draw) order,
// so replaying the counters in WAL order would shift identities and
// rebind frame sequences — the recorded values make replay exact. An
// unsharded runtime replays under one lock, where WAL order IS mint
// order, and keeps its legacy (mint-at-apply) format. During replay
// the recorded values are authoritative and nothing is drawn. pin
// forces fresh clusters onto the executing shard (multi-op batches).
// Caller holds r.mu; the op has passed stageOpLocked. For batch ops
// with deferred arguments the caller passes a copy with the arguments
// resolved against the batch's own predicted mints (premintBatchLocked).
//
// A pre-drawn sequence whose op later fails to apply (or whose journal
// append fails) leaves a gap in the stream, exactly like a pre-minted
// identity that is never materialised: the next Refresh's floor
// advisory walks the peer's watermark over it.
func (r *Runtime) premintLocked(op *wire.OpRecord, pin bool) {
	if r.sh == nil || r.replaying {
		return
	}
	ctr := r.heap.Counters()
	switch op.Kind {
	case wire.OpNewLocal:
		// Draw order matches the solo apply path: cluster, then object.
		op.MintClu = ctr.MintClu()
		op.MintObj = ctr.MintObj()
		holderClu := ids.NoCluster
		if ho := r.heap.Object(op.Holder); ho != nil {
			holderClu = ho.Cluster()
		}
		cl := ids.ClusterID{Site: r.id, Seq: op.MintClu}
		op.Place = r.sh.place(cl, holderClu, pin)
		if op.Place-1 != r.sh.index {
			// Cross-shard placement: the apply emits a Create through the
			// handoff queue, addressed to the own site.
			op.MutSeq = r.assignMutSeqLocked(r.id)
		}
	case wire.OpNewLocalIn:
		op.MintObj = ctr.MintObj()
		op.Place = r.sh.clusterShard(op.Clu) + 1
		if op.Place-1 != r.sh.index {
			op.MutSeq = r.assignMutSeqLocked(r.id)
		}
	case wire.OpNewCluster:
		op.MintClu = ctr.MintClu()
		cl := ids.ClusterID{Site: r.id, Seq: op.MintClu}
		op.Place = r.sh.place(cl, ids.NoCluster, true)
	case wire.OpNewRemote:
		r.st.mu.Lock()
		r.st.mint++
		op.MintObj = r.st.mint
		r.st.mu.Unlock()
		op.MutSeq = r.assignMutSeqLocked(op.Site)
	case wire.OpSendRef:
		op.MutSeq = r.premintSendRefSeqLocked(op.To, op.Target)
	}
}

// premintSendRefSeqLocked pre-draws the mutator-stream sequence of the
// RefTransfer a SendRef will emit, mirroring the apply-time conditions
// exactly (same lock hold, so the state cannot change in between): no
// frame for a destination this partition owns, and no sequence for
// frames SentRef gives no dedup identity (intra-cluster copies, where
// target and destination share a cluster — a staged holder is always
// live, hence its engine process registered). Caller holds r.mu.
func (r *Runtime) premintSendRefSeqLocked(to, target heap.Ref) uint64 {
	if to.Obj.Site == r.id && r.owns(to.Cluster) {
		return 0
	}
	if target.Cluster == to.Cluster {
		return 0
	}
	return r.assignMutSeqLocked(to.Obj.Site)
}

// mutSeqLocked resolves the sequence of one outbound mutator frame:
// the pre-drawn value when the record carries one (sharded commit, or
// a replay of it) — observed into the shared counter so later draws
// stay above it — and a live draw otherwise. Caller holds r.mu.
func (r *Runtime) mutSeqLocked(preminted uint64, target ids.SiteID) uint64 {
	if preminted != 0 {
		r.observeSeqLocked(target, core.StreamMut, preminted)
		return preminted
	}
	return r.assignMutSeqLocked(target)
}

// NewLocal creates an object in a fresh cluster on this site, referenced
// from holder (often the root object). It returns a reference to the new
// object.
func (r *Runtime) NewLocal(holder ids.ObjectID) (heap.Ref, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runOpLocked(wire.OpRecord{Kind: wire.OpNewLocal, Holder: holder})
}

// NewLocalIn creates an object in an existing local cluster, referenced
// from holder. Used by coarse clustering policies (§3.5).
func (r *Runtime) NewLocalIn(holder ids.ObjectID, cl ids.ClusterID) (heap.Ref, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runOpLocked(wire.OpRecord{Kind: wire.OpNewLocalIn, Holder: holder, Clu: cl})
}

// NewCluster mints a fresh local cluster identity (for NewLocalIn).
func (r *Runtime) NewCluster() (ids.ClusterID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ref, err := r.runOpLocked(wire.OpRecord{Kind: wire.OpNewCluster})
	return ref.Cluster, err
}

// NewRemote creates an object in a fresh cluster on the target site,
// referenced from holder: the paper's "a root object 1 creates an object
// 2" (§3.1). The creator mints the identities; the creation message
// carries the creator's stamp — the only piggybacked log-keeping datum.
func (r *Runtime) NewRemote(holder ids.ObjectID, target ids.SiteID) (heap.Ref, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runOpLocked(wire.OpRecord{Kind: wire.OpNewRemote, Holder: holder, Site: target})
}

// SendRef copies a reference the sender holds to a (usually remote)
// object: the mutator messages of Fig 7. fromObj must currently hold
// target in one of its slots; to names the destination object. When the
// destination is local the copy is immediate; otherwise a single mutator
// message is sent — lazy log-keeping adds no control messages even when
// target denotes a third-party object on yet another site (§3.4).
func (r *Runtime) SendRef(fromObj ids.ObjectID, to heap.Ref, target heap.Ref) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.runOpLocked(wire.OpRecord{Kind: wire.OpSendRef, Holder: fromObj, To: to, Target: target})
	return err
}

// AddRef stores target into a new slot of holder (a local mutation).
func (r *Runtime) AddRef(holder ids.ObjectID, target heap.Ref) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.runOpLocked(wire.OpRecord{Kind: wire.OpAddRef, Holder: holder, Target: target})
	return err
}

// DropRefs clears every slot of holder that references target.Obj: the
// mutator destroys its edge(s) to that object.
func (r *Runtime) DropRefs(holder ids.ObjectID, target heap.Ref) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.runOpLocked(wire.OpRecord{Kind: wire.OpDropRefs, Holder: holder, Target: target})
	return err
}

// ClearSlot drops one slot of holder.
func (r *Runtime) ClearSlot(holder ids.ObjectID, slot int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.runOpLocked(wire.OpRecord{Kind: wire.OpClearSlot, Holder: holder, Slot: slot})
	return err
}

// applyOpLocked applies one resolved mutator operation: validation,
// mutation, sends (through emitLocked, so a surrounding batch commit
// coalesces them) and the settle cascade — everything except locking,
// journaling and checkpointing, which the callers own. For OpNewCluster
// the returned Ref carries only the minted cluster. Caller holds r.mu.
func (r *Runtime) applyOpLocked(op wire.OpRecord) (heap.Ref, error) {
	switch op.Kind {
	case wire.OpNewLocal:
		return r.applyNewLocalLocked(op)
	case wire.OpNewLocalIn:
		return r.applyNewLocalInLocked(op)
	case wire.OpNewCluster:
		var cl ids.ClusterID
		if op.MintClu != 0 {
			cl = ids.ClusterID{Site: r.id, Seq: op.MintClu}
			r.heap.Counters().ObserveClu(op.MintClu)
		} else {
			cl = r.heap.NewCluster()
		}
		r.notePlacement(cl, op.Place)
		r.engine.Register(cl)
		return heap.Ref{Cluster: cl}, nil
	case wire.OpNewRemote:
		return r.applyNewRemoteLocked(op)
	case wire.OpSendRef:
		return heap.NilRef, r.applySendRefLocked(op.Holder, op.To, op.Target, op.MutSeq)
	case wire.OpAddRef:
		_, err := r.heap.AddRef(op.Holder, op.Target)
		r.settleLocked()
		return heap.NilRef, err
	case wire.OpDropRefs:
		err := r.heap.DropRefs(op.Holder, op.Target.Obj)
		r.settleLocked()
		return heap.NilRef, err
	case wire.OpClearSlot:
		err := r.heap.ClearSlot(op.Holder, op.Slot)
		r.settleLocked()
		return heap.NilRef, err
	}
	return heap.NilRef, fmt.Errorf("site %v: apply %v: unknown op", r.id, op.Kind)
}

// notePlacement records an applied cluster placement in the shard
// routing map (replay repopulates the map through this path; the live
// path already stored it at pre-mint, and the re-store is idempotent).
func (r *Runtime) notePlacement(cl ids.ClusterID, place int) {
	if r.sh != nil && place != 0 {
		r.sh.placed(cl, place)
	}
}

func (r *Runtime) applyNewLocalLocked(op wire.OpRecord) (heap.Ref, error) {
	holder := op.Holder
	if r.heap.Object(holder) == nil {
		return heap.NilRef, fmt.Errorf("site %v: NewLocal holder %v: %w", r.id, holder, heap.ErrNoSuchObject)
	}
	var cl ids.ClusterID
	var obj ids.ObjectID
	if op.MintClu != 0 {
		// Pre-minted identities (sharded site, live or replay).
		cl = ids.ClusterID{Site: r.id, Seq: op.MintClu}
		obj = ids.ObjectID{Site: r.id, Seq: op.MintObj}
		r.heap.Counters().ObserveClu(op.MintClu)
		r.heap.Counters().ObserveObj(op.MintObj)
	} else {
		cl = r.heap.NewCluster()
	}
	r.notePlacement(cl, op.Place)
	if op.Place != 0 && op.Place-1 != r.shardIndex() {
		// The placement policy put the fresh cluster on a sibling shard:
		// create it there through the self-as-peer handoff path.
		return r.createOnShardLocked(holder, obj, cl, op.MutSeq)
	}
	r.engine.Register(cl)
	var o *heap.Object
	if obj.Valid() {
		var err error
		o, err = r.heap.NewObjectAt(obj, cl)
		if err != nil {
			return heap.NilRef, err
		}
	} else {
		o = r.heap.NewObject(cl)
	}
	ref := heap.Ref{Obj: o.ID(), Cluster: cl}
	if _, err := r.heap.AddRef(holder, ref); err != nil {
		return heap.NilRef, err
	}
	r.settleLocked()
	return ref, nil
}

func (r *Runtime) applyNewLocalInLocked(op wire.OpRecord) (heap.Ref, error) {
	holder, cl := op.Holder, op.Clu
	if cl.Site != r.id {
		return heap.NilRef, fmt.Errorf("site %v: NewLocalIn %v: %w", r.id, cl, heap.ErrForeignCluster)
	}
	if r.heap.Object(holder) == nil {
		return heap.NilRef, fmt.Errorf("site %v: NewLocalIn holder %v: %w", r.id, holder, heap.ErrNoSuchObject)
	}
	var obj ids.ObjectID
	if op.MintObj != 0 {
		obj = ids.ObjectID{Site: r.id, Seq: op.MintObj}
		r.heap.Counters().ObserveObj(op.MintObj)
	}
	if op.Place != 0 && op.Place-1 != r.shardIndex() {
		// The target cluster lives on a sibling shard.
		return r.createOnShardLocked(holder, obj, cl, op.MutSeq)
	}
	r.engine.Register(cl)
	var o *heap.Object
	if obj.Valid() {
		var err error
		o, err = r.heap.NewObjectAt(obj, cl)
		if err != nil {
			return heap.NilRef, err
		}
	} else {
		o = r.heap.NewObject(cl)
	}
	ref := heap.Ref{Obj: o.ID(), Cluster: cl}
	if _, err := r.heap.AddRef(holder, ref); err != nil {
		return heap.NilRef, err
	}
	r.settleLocked()
	return ref, nil
}

// createOnShardLocked creates a pre-minted object whose cluster a
// sibling shard owns: the exact remote-creation flow of
// applyNewRemoteLocked with the own site as target — the creation frame
// travels the ordered handoff queue instead of the network, and every
// invariant (journal-before-send, outbox retention, FrameAck-to-self
// retirement, zombie-drop at the owner) comes along for free. seq is
// the record's pre-drawn stream sequence (op.MutSeq). Caller holds
// r.mu.
func (r *Runtime) createOnShardLocked(holder ids.ObjectID, obj ids.ObjectID, cl ids.ClusterID, seq uint64) (heap.Ref, error) {
	ho := r.heap.Object(holder)
	ref := heap.Ref{Obj: obj, Cluster: cl}
	// Order matters, exactly as in applyNewRemoteLocked: AddRefIntro
	// fires EdgeUp, which bumps the creator's clock for the creation
	// event; the stamp shipped with the frame is that clock.
	if _, err := r.heap.AddRefIntro(holder, ref, ids.NoCluster, ids.CreationSeq); err != nil {
		return heap.NilRef, err
	}
	stamp := r.engine.RemoteCreationStamp(ho.Cluster())
	create := wire.Create{
		Creator: ho.Cluster(),
		Stamp:   stamp,
		Obj:     obj,
		Cluster: cl,
		Seq:     r.mutSeqLocked(seq, r.id),
	}
	r.emitLocked(r.id, create)
	r.recordOutboundLocked(r.id, create.Seq, create)
	r.settleLocked()
	return ref, nil
}

func (r *Runtime) applyNewRemoteLocked(op wire.OpRecord) (heap.Ref, error) {
	holder, target := op.Holder, op.Site
	ho := r.heap.Object(holder)
	if ho == nil {
		return heap.NilRef, fmt.Errorf("site %v: NewRemote holder %v: %w", r.id, holder, heap.ErrNoSuchObject)
	}
	if target == r.id {
		return heap.NilRef, fmt.Errorf("site %v: NewRemote: %w", r.id, ErrRemoteSelf)
	}
	var mint uint64
	if op.MintObj != 0 {
		// Pre-minted (sharded site): the recorded draw is authoritative;
		// keep the shared counter at least that far along.
		mint = op.MintObj
		r.st.mu.Lock()
		if r.st.mint < mint {
			r.st.mint = mint
		}
		r.st.mu.Unlock()
	} else {
		r.st.mu.Lock()
		r.st.mint++
		mint = r.st.mint
		r.st.mu.Unlock()
	}
	obj := ids.ObjectID{Site: target, Seq: uint64(r.id)<<32 | mint}
	cl := ids.ClusterID{Site: target, Seq: uint64(r.id)<<32 | mint}
	ref := heap.Ref{Obj: obj, Cluster: cl}
	// Order matters: AddRefIntro fires EdgeUp, which bumps the creator's
	// clock for the creation event; the stamp shipped with the message is
	// that clock, so the new object's own row records its creator
	// correctly. ids.CreationSeq marks the creation (no edge-assert: the
	// creation message is the assert).
	if _, err := r.heap.AddRefIntro(holder, ref, ids.NoCluster, ids.CreationSeq); err != nil {
		return heap.NilRef, err
	}
	stamp := r.engine.RemoteCreationStamp(ho.Cluster())
	create := wire.Create{
		Creator: ho.Cluster(),
		Stamp:   stamp,
		Obj:     obj,
		Cluster: cl,
		Seq:     r.mutSeqLocked(op.MutSeq, target),
	}
	r.emitLocked(target, create)
	r.recordOutboundLocked(target, create.Seq, create)
	r.settleLocked()
	return ref, nil
}

func (r *Runtime) applySendRefLocked(fromObj ids.ObjectID, to heap.Ref, target heap.Ref, preSeq uint64) error {
	fo := r.heap.Object(fromObj)
	if fo == nil {
		return fmt.Errorf("site %v: SendRef from %v: %w", r.id, fromObj, heap.ErrNoSuchObject)
	}
	if !r.holds(fo, target) {
		return fmt.Errorf("site %v: SendRef: %v of %v: %w", r.id, target, fromObj, ErrNotHolder)
	}
	if to.Obj.Site == r.id && r.owns(to.Cluster) {
		// Destination owned by this heap partition: immediate copy.
		if r.heap.Object(to.Obj) == nil {
			return fmt.Errorf("site %v: SendRef to %v: %w", r.id, to.Obj, heap.ErrNoSuchObject)
		}
		seq := r.engine.SentRef(fo.Cluster(), target.Cluster, to.Cluster)
		_, err := r.heap.AddRefIntro(to.Obj, target, fo.Cluster(), seq)
		r.settleLocked()
		return err
	}
	// Once a reference to a local object crosses the partition boundary
	// (to another site, or to a sibling shard), the object becomes a
	// global root (§2.1): local GC must treat it as a root until GGD
	// removes its cluster. Targets this shard does not own were marked
	// by whichever shard first exported them — the first export of any
	// reference necessarily executes on the owning shard.
	if r.owns(target.Cluster) {
		_ = r.heap.MarkEntry(target.Obj)
	}
	// Sender-side lazy log-keeping: DV_i[k][j]++ (or DV_i[i][j]++ when
	// sending the holder's own cluster reference).
	seq := r.engine.SentRef(fo.Cluster(), target.Cluster, to.Cluster)
	xfer := wire.RefTransfer{
		FromCluster: fo.Cluster(),
		IntroSeq:    seq,
		ToObj:       to.Obj,
		ToCluster:   to.Cluster,
		Target:      target,
	}
	// IntroSeq 0 frames (intra-cluster copies, stale holders) carry no
	// dedup identity, so a re-send would apply them twice; they stay out
	// of the retirement stream and the outbox — losing one to a crash is
	// loss-equivalent, which the protocol tolerates.
	if seq != 0 {
		xfer.Seq = r.mutSeqLocked(preSeq, to.Obj.Site)
	}
	r.emitLocked(to.Obj.Site, xfer)
	r.recordOutboundLocked(to.Obj.Site, xfer.Seq, xfer)
	r.settleLocked()
	return nil
}

func (r *Runtime) holds(o *heap.Object, target heap.Ref) bool {
	for _, s := range o.Slots() {
		if s == target {
			return true
		}
	}
	// The holder may hold a different ref to the same cluster (e.g. its
	// own cluster's reference); sending one's own reference is always
	// legal, mirroring the paper's "sends a reference denoting itself".
	return target.Obj == o.ID()
}

// Collect runs local collections until no further GGD cascade fires.
// Collections are journaled: sweeping the last proxy of a remote
// cluster advances the engine clock and emits destruction messages, so
// replay must reproduce them.
func (r *Runtime) Collect() (heap.CollectStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.collectShardLocked(true)
}

// collectShardLocked is the body of Collect: journal (when this shard
// speaks for the site), collect, settle, checkpoint. Sharded.Collect
// journals one site-wide OpCollect through shard 0 and runs the body on
// every shard. Caller holds r.mu and no other shard's lock.
func (r *Runtime) collectShardLocked(journal bool) (heap.CollectStats, error) {
	if journal {
		if err := r.journalOp(wire.OpRecord{Kind: wire.OpCollect}); err != nil {
			return heap.CollectStats{}, err
		}
	}
	stats := r.collectLocked()
	r.engine.Drain()
	r.settleLocked()
	r.checkpointLocked()
	return stats, nil
}

// Refresh re-propagates every local process's vector and re-ships the
// unacknowledged retained state — the engine's journal rows and bundles
// plus this site's outbox frames, each under its re-send damper — then
// advises peers of any stream floors so cumulative watermarks cannot
// stall on abandoned gaps: the recovery round that re-detects residual
// garbage after message loss (§5, DESIGN.md §3.2).
func (r *Runtime) Refresh() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.st.mu.Lock()
	r.st.refreshRound++
	r.st.mu.Unlock()
	return r.refreshShardLocked(true, true)
}

// refreshShardLocked is the body of Refresh minus the round bump (the
// site bumps once, not once per shard). floors gates the StreamAdvance
// advisories: an unsharded runtime advances its own floors; a sharded
// site suppresses the per-shard pass and emits merged floors from
// Sharded.Refresh instead — one shard's retained floor says nothing
// about a sibling's, and advancing past a sibling's retained row would
// let the peer retire it undelivered. Caller holds r.mu and no other
// shard's lock.
func (r *Runtime) refreshShardLocked(journal, floors bool) error {
	if journal {
		if err := r.journalOp(wire.OpRecord{Kind: wire.OpRefresh}); err != nil {
			return err
		}
	}
	r.engine.Refresh()
	r.resendOutboxLocked()
	if floors {
		r.advanceFloorsLocked()
	}
	r.settleLocked()
	r.flushAcksLocked()
	r.checkpointLocked()
	return nil
}

// --- Introspection -------------------------------------------------------

// NumObjects returns the number of live heap objects (including the root
// object).
func (r *Runtime) NumObjects() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.heap.NumObjects()
}

// HasObject reports whether the object still exists.
func (r *Runtime) HasObject(obj ids.ObjectID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.heap.Object(obj) != nil
}

// ClusterRemoved reports whether GGD removed the cluster.
func (r *Runtime) ClusterRemoved(cl ids.ClusterID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine.Removed(cl)
}

// EngineStats returns the GGD engine counters.
func (r *Runtime) EngineStats() core.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine.Stats()
}

// LogSnapshot returns a deep copy of a local process's log, or nil.
func (r *Runtime) LogSnapshot(cl ids.ClusterID) *vclock.Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine.LogSnapshot(cl)
}

// Clock returns a local process's event counter.
func (r *Runtime) Clock(cl ids.ClusterID) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine.Clock(cl)
}

// ObjectSnapshot is one object's state for the oracle.
type ObjectSnapshot struct {
	ID      ids.ObjectID
	Cluster ids.ClusterID
	Slots   []heap.Ref
}

// Snapshot exports the site's objects and root for the global oracle.
func (r *Runtime) Snapshot() (root ids.ObjectID, objs []ObjectSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	root = r.heap.RootObject()
	for _, o := range r.heap.Objects() {
		objs = append(objs, ObjectSnapshot{ID: o.ID(), Cluster: o.Cluster(), Slots: o.Slots()})
	}
	return root, objs
}
