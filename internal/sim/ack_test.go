package sim

import (
	"sync"
	"testing"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
	"causalgc/internal/wire"
)

// TestChurnAckDropSchedules is the fuzz lane for the acknowledged-
// retirement protocol itself: randomised churn under reordering while
// most FrameAcks and StreamAdvance advisories are dropped. Losing the
// retirement plane must cost only redundant re-sends — never safety,
// and never convergence: after the ack channel heals, bounded refresh
// rounds must reclaim every residual object AND drain the re-send
// state, because the protocol may retire a row only on an ack that
// really covers it.
func TestChurnAckDropSchedules(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= seeds; seed++ {
		w := NewWorld(5, netsim.Faults{
			Seed:    seed,
			Reorder: true,
			DropKindProb: map[string]float64{
				wire.KindFrameAck: 0.8,
				wire.KindAdvance:  0.8,
			},
		}, site.DefaultOptions())
		if _, err := mutator.Churn(w, mutator.ChurnConfig{
			Seed:            seed * 41,
			Ops:             200,
			StepsBetweenOps: 2,
		}); err != nil {
			t.Fatalf("seed %d: churn: %v", seed, err)
		}
		if err := w.Settle(); err != nil {
			t.Fatalf("seed %d: settle: %v", seed, err)
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation under ack loss: %v", seed, rep)
		}

		// Heal the retirement plane and recover.
		w.Net().SetDropKindProb(wire.KindFrameAck, 0)
		w.Net().SetDropKindProb(wire.KindAdvance, 0)
		for i := 0; i < 4; i++ {
			if err := w.RefreshAll(); err != nil {
				t.Fatalf("seed %d: refresh: %v", seed, err)
			}
			if err := w.Settle(); err != nil {
				t.Fatalf("seed %d: settle: %v", seed, err)
			}
		}
		rep = w.Check()
		if !rep.Safe() {
			t.Fatalf("seed %d: SAFETY violation after ack recovery: %v", seed, rep)
		}
		if len(rep.Garbage) != 0 {
			t.Errorf("seed %d: residual garbage after healed refresh rounds: %v", seed, rep)
		}
	}
}

// TestAckDropCannotRetireUndelivered pins the cumulative-watermark
// invariant: dropping every assert AND every ack at once must leave the
// journal rows retained (nothing was settled, so nothing may retire) —
// the rows drain only once the channel heals and a re-send gets
// through.
func TestAckDropCannotRetireUndelivered(t *testing.T) {
	w := NewWorld(3, netsim.Faults{
		Seed: 3,
		DropKindProb: map[string]float64{
			wire.KindAssert:   1,
			wire.KindFrameAck: 1,
			wire.KindAdvance:  1,
		},
	}, site.DefaultOptions())
	s1 := w.Site(1)
	x, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := s1.NewRemote(s1.Root().Obj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// x acquires tgt: the edge-assert resolving the introduction is
	// dropped, and so would any ack be.
	if err := s1.SendRef(s1.Root().Obj, x, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
	}
	// The row must still be journaled: every carrier was dropped.
	if got := w.Site(2).EngineStats().RowsRetired; got != 0 {
		t.Fatalf("rows retired with the entire retirement plane down: %d", got)
	}
	// Heal; one refresh resolves and the acks drain the journal.
	w.Net().SetDropKindProb(wire.KindAssert, 0)
	w.Net().SetDropKindProb(wire.KindFrameAck, 0)
	w.Net().SetDropKindProb(wire.KindAdvance, 0)
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := s1.DropRefs(s1.Root().Obj, x); err != nil {
		t.Fatal(err)
	}
	if err := s1.DropRefs(s1.Root().Obj, tgt); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	rep := w.Check()
	if !rep.Safe() || len(rep.Garbage) != 0 {
		t.Fatalf("not clean after heal: %v", rep)
	}
}

// TestRefreshQuiescentReshipsNothing is the steady-state acceptance
// criterion of the acknowledged-retirement protocol: after a fault-free
// workload settles and its acks drain, further refresh rounds re-ship
// ZERO journal rows, destroyed-edge bundles, legacy bundles and outbox
// frames — refresh traffic no longer grows with history.
func TestRefreshQuiescentReshipsNothing(t *testing.T) {
	w, err := NewDurableWorld(4, netsim.Faults{Seed: 11}, site.DefaultOptions(), t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := mutator.Churn(w, mutator.ChurnConfig{Seed: 77, Ops: 120, StepsBetweenOps: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	// Two refresh+settle rounds let every straggler re-send once and its
	// ack retire the row.
	for i := 0; i < 2; i++ {
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		if err := w.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	type counters struct{ asserts, destroys, legacy, outbox int }
	snap := func() counters {
		var c counters
		for _, s := range w.Sites() {
			es := s.EngineStats()
			c.asserts += es.AssertResends
			c.destroys += es.DestroyResends
			c.legacy += es.LegacyResends
			c.outbox += s.FrameStats().OutboxResends
		}
		return c
	}
	before := snap()
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	after := snap()
	if after != before {
		t.Fatalf("quiescent refresh re-shipped retained state: before=%+v after=%+v", before, after)
	}
	for _, s := range w.Sites() {
		if n := s.FrameStats().OutboxRetained; n != 0 {
			t.Errorf("site %v: %d outbox frames still retained at quiescence", s.ID(), n)
		}
	}
}

// TestOutboxHardCapSurfacesEviction drives a durable site against a
// dead peer until the outbox backstop fires, and checks the eviction is
// counted in FrameStats and delivered to the AckObserver — the loss
// used to be silent.
func TestOutboxHardCapSurfacesEviction(t *testing.T) {
	watcher := &capWatcher{}
	opts := site.DefaultOptions()
	opts.Observer = watcher
	w, err := NewDurableWorld(2, netsim.Faults{Seed: 5}, opts, t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Crash(2); err != nil {
		t.Fatal(err)
	}
	s1 := w.Site(1)
	// Every NewRemote to the dead peer retains a frame; past the cap the
	// oldest is evicted.
	for i := 0; i < 1100; i++ {
		if _, err := s1.NewRemote(s1.Root().Obj, 2); err != nil {
			t.Fatal(err)
		}
	}
	st := s1.FrameStats()
	if st.OutboxEvicted == 0 {
		t.Fatal("outbox hard cap fired without counting evictions")
	}
	if st.OutboxRetained != 1024 {
		t.Errorf("OutboxRetained = %d, want the 1024 cap", st.OutboxRetained)
	}
	watcher.mu.Lock()
	evicted := watcher.evicted
	watcher.mu.Unlock()
	if evicted != st.OutboxEvicted {
		t.Errorf("observer saw %d evictions, stats count %d", evicted, st.OutboxEvicted)
	}
	// The peer recovers: its acks retire what it processes, and the
	// dedup layer keeps the re-sends idempotent.
	if err := w.Restart(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	if rep := w.Check(); !rep.Safe() {
		t.Fatalf("unsafe after backstop + recovery: %v", rep)
	}
}

// capWatcher counts AckObserver events.
type capWatcher struct {
	mu      sync.Mutex
	evicted int
	retired int
}

func (c *capWatcher) ClusterRemoved(ids.SiteID, ids.ClusterID) {}
func (c *capWatcher) Collected(ids.SiteID, heap.CollectStats)  {}

func (c *capWatcher) FrameEvicted(_ ids.SiteID, _ ids.SiteID, _ core.Stream, n int) {
	c.mu.Lock()
	c.evicted += n
	c.mu.Unlock()
}

func (c *capWatcher) FrameRetired(_ ids.SiteID, _ ids.SiteID, _ core.Stream, n int) {
	c.mu.Lock()
	c.retired += n
	c.mu.Unlock()
}

var (
	_ site.Observer    = (*capWatcher)(nil)
	_ site.AckObserver = (*capWatcher)(nil)
)
