// Package mutator builds the workloads of the paper's discussion and
// evaluation: the Fig 3 scenario, the doubly-linked lists of the §4
// complexity comparison, rings (pure distributed cycles), trees, and a
// randomised churn driver used by the safety stress tests.
//
// All builders drive the public site API only, exactly as an application
// would.
package mutator

import (
	"fmt"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/site"
)

// World is the slice of a running system the workload builders need: site
// lookup and message delivery. internal/sim.World implements it for the
// deterministic harness; the public causalgc.Cluster implements it for
// any transport.
type World interface {
	// Site returns the site instance (a plain runtime or a lock-striped
	// sharded one) of the given site.
	Site(ids.SiteID) site.Instance
	// Sites returns every site instance, in site order.
	Sites() []site.Instance
	// Run delivers messages until the substrate is quiet.
	Run() error
	// Step delivers at most one message and reports whether it did.
	// Substrates without single-step delivery (concurrent networks)
	// return false.
	Step() bool
}

// Scenario is the paper's Fig 3 object graph: root 1 on site 1, objects
// 2, 3, 4 on their own sites, edges 2→3, 2→4, 4→3, 3→4, 4→2.
type Scenario struct {
	World World
	// Obj2, Obj3, Obj4 are the paper's numbered global roots.
	Obj2, Obj3, Obj4 heap.Ref
}

// BuildPaperScenario constructs Fig 3 on a fresh 4-site world. Each event
// of Fig 4 happens in order; the returned scenario is quiescent.
func BuildPaperScenario(w World) (*Scenario, error) {
	s1, s2 := w.Site(1), w.Site(2)

	obj2, err := s1.NewRemote(s1.Root().Obj, 2) // e1,1 / e2,1
	if err != nil {
		return nil, fmt.Errorf("create 2: %w", err)
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	obj3, err := s2.NewRemote(obj2.Obj, 3) // e3,1
	if err != nil {
		return nil, fmt.Errorf("create 3: %w", err)
	}
	obj4, err := s2.NewRemote(obj2.Obj, 4) // e4,1
	if err != nil {
		return nil, fmt.Errorf("create 4: %w", err)
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	steps := []struct {
		to, target heap.Ref
		label      string
	}{
		{obj4, obj3, "e3,2: edge 4→3"},
		{obj3, obj4, "e4,2: edge 3→4"},
		{obj4, obj2, "e2,2: edge 4→2"},
	}
	for _, st := range steps {
		if err := s2.SendRef(obj2.Obj, st.to, st.target); err != nil {
			return nil, fmt.Errorf("%s: %w", st.label, err)
		}
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	return &Scenario{World: w, Obj2: obj2, Obj3: obj3, Obj4: obj4}, nil
}

// DropRootEdge performs e2,3: the root destroys its edge to 2, making the
// whole cycle {2,3,4} garbage.
func (s *Scenario) DropRootEdge() error {
	s1 := s.World.Site(1)
	return s1.DropRefs(s1.Root().Obj, s.Obj2)
}

// DLL is a doubly-linked list of k elements, each on its own site,
// initially reachable from site 1's root: the recursive data structure of
// the §4 comparison with Schelvis's algorithm ("double linked lists, or
// any cyclic structure containing subcycles").
type DLL struct {
	World World
	// Elems are the list elements in order; element i lives on site i+2.
	Elems []heap.Ref
}

// BuildDLL builds a k-element doubly-linked list on a world with at least
// k+1 sites. The builder (site 1's root) creates every element, links
// neighbours with forward and backward references (third-party
// transfers), and keeps a direct reference to every element so the list
// is fully reachable until Detach.
func BuildDLL(w World, k int) (*DLL, error) {
	if k < 1 {
		return nil, fmt.Errorf("mutator: DLL needs k >= 1, got %d", k)
	}
	s1 := w.Site(1)
	root := s1.Root().Obj
	elems := make([]heap.Ref, k)
	for i := 0; i < k; i++ {
		ref, err := s1.NewRemote(root, ids.SiteID(i+2))
		if err != nil {
			return nil, fmt.Errorf("create element %d: %w", i, err)
		}
		elems[i] = ref
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	for i := 0; i+1 < k; i++ {
		// Forward i → i+1 and backward i+1 → i: the subcycles of §4.
		if err := s1.SendRef(root, elems[i], elems[i+1]); err != nil {
			return nil, fmt.Errorf("link %d→%d: %w", i, i+1, err)
		}
		if err := s1.SendRef(root, elems[i+1], elems[i]); err != nil {
			return nil, fmt.Errorf("link %d→%d: %w", i+1, i, err)
		}
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	return &DLL{World: w, Elems: elems}, nil
}

// Detach drops every root reference, disconnecting the whole list at
// once: the §4 workload "the k elements of a double linked list that
// becomes disconnected from the object graph".
func (d *DLL) Detach() error {
	s1 := d.World.Site(1)
	for _, e := range d.Elems {
		if err := s1.DropRefs(s1.Root().Obj, e); err != nil {
			return err
		}
	}
	return nil
}

// BuildRing builds a k-element unidirectional ring (a pure distributed
// cycle), each element on its own site, reachable from site 1's root via
// a single edge to element 0.
func BuildRing(w World, k int) (*DLL, error) {
	if k < 1 {
		return nil, fmt.Errorf("mutator: ring needs k >= 1, got %d", k)
	}
	s1 := w.Site(1)
	root := s1.Root().Obj
	elems := make([]heap.Ref, k)
	for i := 0; i < k; i++ {
		ref, err := s1.NewRemote(root, ids.SiteID(i+2))
		if err != nil {
			return nil, fmt.Errorf("create element %d: %w", i, err)
		}
		elems[i] = ref
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		next := elems[(i+1)%k]
		if err := s1.SendRef(root, elems[i], next); err != nil {
			return nil, fmt.Errorf("link ring %d: %w", i, err)
		}
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	// Narrow the root set to a single entry edge, so detaching is one drop.
	for i := 1; i < k; i++ {
		if err := s1.DropRefs(root, elems[i]); err != nil {
			return nil, err
		}
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	return &DLL{World: w, Elems: elems}, nil
}

// DetachRing drops the single root edge to element 0.
func (d *DLL) DetachRing() error {
	s1 := d.World.Site(1)
	return s1.DropRefs(s1.Root().Obj, d.Elems[0])
}
