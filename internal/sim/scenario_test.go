package sim

import (
	"testing"

	"causalgc/internal/heap"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
)

// buildPaperScenario constructs the global root graph of Fig 3: four
// sites, one object per site (so the object graph and the global root
// graph coincide, §3.1). Returns the world and the refs to objects 2,3,4.
//
//	e2,1: root 1 creates 2     e3,1: 2 creates 3     e4,1: 2 creates 4
//	e3,2: 2 sends 4 a ref to 3 (edge 4→3)
//	e4,2: 2 sends 3 a ref to 4 (edge 3→4)
//	e2,2: 2 sends its own ref to 4 (edge 4→2)
func buildPaperScenario(t *testing.T, faults netsim.Faults, opts site.Options) (*World, heap.Ref, heap.Ref, heap.Ref) {
	t.Helper()
	w := NewWorld(4, faults, opts)
	s1, s2 := w.Site(1), w.Site(2)

	root1 := s1.Root()
	obj2, err := s1.NewRemote(root1.Obj, 2)
	if err != nil {
		t.Fatalf("create 2: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	obj3, err := s2.NewRemote(obj2.Obj, 3)
	if err != nil {
		t.Fatalf("create 3: %v", err)
	}
	obj4, err := s2.NewRemote(obj2.Obj, 4)
	if err != nil {
		t.Fatalf("create 4: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	// Third-party exchanges (Fig 7): no extra control messages.
	if err := s2.SendRef(obj2.Obj, obj4, obj3); err != nil { // edge 4→3
		t.Fatalf("send 3 to 4: %v", err)
	}
	if err := s2.SendRef(obj2.Obj, obj3, obj4); err != nil { // edge 3→4
		t.Fatalf("send 4 to 3: %v", err)
	}
	if err := s2.SendRef(obj2.Obj, obj4, obj2); err != nil { // edge 4→2
		t.Fatalf("send 2 to 4: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w, obj2, obj3, obj4
}

func TestPaperScenarioBeforeDrop(t *testing.T) {
	w, obj2, obj3, obj4 := buildPaperScenario(t, netsim.Faults{Seed: 1}, site.DefaultOptions())

	// Everything is live: 4 roots + 3 objects.
	rep := w.Check()
	if !rep.Safe() {
		t.Fatalf("unsafe before drop: %v", rep)
	}
	if len(rep.Garbage) != 0 {
		t.Fatalf("unexpected garbage before drop: %v", rep)
	}
	for _, ref := range []heap.Ref{obj2, obj3, obj4} {
		if !w.Site(ref.Obj.Site).HasObject(ref.Obj) {
			t.Fatalf("object %v missing before drop", ref)
		}
	}
	// Collections must not reclaim anything live.
	if err := w.CollectAll(); err != nil {
		t.Fatal(err)
	}
	if got := w.Check(); !got.Safe() || len(got.Garbage) != 0 {
		t.Fatalf("after collect: %v", got)
	}
}

// TestPaperScenarioCycleCollected is the headline behaviour (§3.6, Fig 8):
// when the root drops its edge to 2, the distributed cycle {2,3,4} —
// spanning three sites, invisible to any per-site collector — is detected
// by GGD and reclaimed, with no global consensus round.
func TestPaperScenarioCycleCollected(t *testing.T) {
	w, obj2, obj3, obj4 := buildPaperScenario(t, netsim.Faults{Seed: 1}, site.DefaultOptions())
	s1 := w.Site(1)

	if err := s1.DropRefs(s1.Root().Obj, obj2); err != nil { // e2,3
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}

	rep := w.Check()
	if !rep.Safe() {
		t.Fatalf("unsafe after settle: %v", rep)
	}
	if len(rep.Garbage) != 0 {
		t.Fatalf("residual garbage after settle: %v", rep)
	}
	for _, ref := range []heap.Ref{obj2, obj3, obj4} {
		if w.Site(ref.Obj.Site).HasObject(ref.Obj) {
			t.Errorf("object %v not collected", ref)
		}
		if !w.Site(ref.Obj.Site).ClusterRemoved(ref.Cluster) {
			t.Errorf("cluster %v not removed", ref.Cluster)
		}
	}
	// 4 root objects remain, one per site.
	if got := w.TotalObjects(); got != 4 {
		t.Errorf("TotalObjects = %d, want 4", got)
	}
}

// TestPaperScenarioLiveThroughCycle keeps the cycle reachable via a second
// root edge (1→4): nothing may be collected even though the 1→2 edge dies.
func TestPaperScenarioLiveThroughCycle(t *testing.T) {
	w, obj2, obj3, obj4 := buildPaperScenario(t, netsim.Faults{Seed: 1}, site.DefaultOptions())
	s1, s2 := w.Site(1), w.Site(2)

	// Root 1 additionally references 4 (2 holds 4's ref and sends it to
	// the root: a third-party transfer to site 1).
	if err := s2.SendRef(obj2.Obj, s1.Root(), obj4); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	if err := s1.DropRefs(s1.Root().Obj, obj2); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}

	rep := w.Check()
	if !rep.Safe() {
		t.Fatalf("unsafe: %v", rep)
	}
	// The whole cycle stays live: 4 → 2 and 4 → 3 and 2,3,4 reachable via
	// 1 → 4.
	for _, ref := range []heap.Ref{obj2, obj3, obj4} {
		if !w.Site(ref.Obj.Site).HasObject(ref.Obj) {
			t.Errorf("live object %v was collected (UNSAFE)", ref)
		}
	}
	if len(rep.Garbage) != 0 {
		t.Errorf("unexpected garbage: %v", rep)
	}

	// Now drop the second root edge too: the cycle must die.
	if err := s1.DropRefs(s1.Root().Obj, obj4); err != nil {
		t.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	rep = w.Check()
	if !rep.Safe() {
		t.Fatalf("unsafe after final drop: %v", rep)
	}
	if len(rep.Garbage) != 0 {
		t.Errorf("residual garbage after final drop: %v", rep)
	}
	if got := w.TotalObjects(); got != 4 {
		t.Errorf("TotalObjects = %d, want 4", got)
	}
}

// TestPaperScenarioReachabilityFacts checks the §3.2 vector-time facts on
// the implementation's logs: object 2 is reachable from 4 after e2,2
// (edge 4→2 exists), visible as a live column for 4 in 2's own row... the
// authoritative record lives at 4 until propagation, so we check 4's log
// holds a live on-behalf stamp for the edge.
func TestPaperScenarioReachabilityFacts(t *testing.T) {
	w, obj2, _, obj4 := buildPaperScenario(t, netsim.Faults{Seed: 1}, site.DefaultOptions())

	log4 := w.Site(4).LogSnapshot(obj4.Cluster)
	if log4 == nil {
		t.Fatal("no log for cluster 4")
	}
	ob2 := log4.PeekOB(obj2.Cluster)
	if ob2 == nil {
		t.Fatal("4 keeps no entries on behalf of 2 despite holding its reference")
	}
	if got := ob2.Auth.Get(obj4.Cluster); !got.Live() {
		t.Errorf("edge 4→2 stamp at 4 = %v, want live", got)
	}

	// 2's own vector knows its creator (edge 1→2) via the piggybacked
	// stamp.
	log2 := w.Site(2).LogSnapshot(obj2.Cluster)
	if log2 == nil {
		t.Fatal("no log for cluster 2")
	}
	rootCl := w.Site(1).Root().Cluster
	if got := log2.Own().Get(rootCl); !got.Live() {
		t.Errorf("edge 1→2 stamp at 2 = %v, want live", got)
	}
	// And 2 knows of edge 4→2: either the pending self-introduction hint
	// (DV_2[2][4]++) or 4's edge-assert already resolved it into an
	// authoritative stamp.
	if !log2.Own().Get(obj4.Cluster).Live() && !log2.Hints().Has(obj4.Cluster) {
		t.Error("2 has neither a live stamp nor a pending hint for edge 4→2")
	}
}

// TestLazyNoControlMessages asserts Fig 7's property: reference exchange,
// including third-party transfers, triggers no synchronous control
// traffic and no GGD rounds — only the deferred idempotent edge-asserts
// this reproduction adds for soundness (one per first acquisition; see
// the core package documentation and DESIGN.md §2).
func TestLazyNoControlMessages(t *testing.T) {
	w, _, _, _ := buildPaperScenario(t, netsim.Faults{Seed: 1}, site.DefaultOptions())
	stats := w.Net().Stats()
	if n := stats.Sent("ggd.destroy"); n != 0 {
		t.Errorf("destroy messages during pure mutation = %d, want 0", n)
	}
	if n := stats.Sent("ggd.prop"); n != 0 {
		t.Errorf("propagation messages during pure mutation = %d, want 0", n)
	}
	// One edge-assert per first remote acquisition via transfer: edges
	// 4→3, 3→4, 4→2.
	if n := stats.Sent("ggd.assert"); n != 3 {
		t.Errorf("assert messages = %d, want 3", n)
	}
	// Mutator traffic: 3 creations + 3 ref transfers.
	if n := stats.Sent("mut.create"); n != 3 {
		t.Errorf("create messages = %d, want 3", n)
	}
	if n := stats.Sent("mut.ref"); n != 3 {
		t.Errorf("ref messages = %d, want 3", n)
	}
}
