package ring

import "testing"

func TestRingBelowCapacityKeepsOrder(t *testing.T) {
	r := New[int](4)
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Items()
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("Items = %v", got)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New[int](3)
	for i := 1; i <= 7; i++ {
		r.Push(i)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Items()
	for i, want := range []int{5, 6, 7} {
		if got[i] != want {
			t.Fatalf("Items = %v, want [5 6 7]", got)
		}
	}
}

func TestRingWrapMidway(t *testing.T) {
	r := New[string](2)
	r.Push("a")
	r.Push("b")
	r.Push("c") // evicts a
	got := r.Items()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("Items = %v, want [b c]", got)
	}
}

func TestRingZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](0)
}
