// Package freepkg is outside the determinism contract: wall-clock
// reads here are not diagnosed.
package freepkg

import "time"

func stamp() time.Time {
	return time.Now()
}
