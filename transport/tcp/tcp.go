package tcp

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"causalgc/internal/ids"
	"causalgc/internal/wire"
	"causalgc/transport"
)

// maxFrame bounds a single encoded message; larger frames indicate a
// corrupted stream and close the connection.
const maxFrame = 16 << 20

// envelope is the on-the-wire frame body: the addressed payload.
type envelope struct {
	From    ids.SiteID
	To      ids.SiteID
	Payload transport.Payload
}

func init() {
	gob.Register(wire.Create{})
	gob.Register(wire.RefTransfer{})
	gob.Register(wire.Destroy{})
	gob.Register(wire.Assert{})
	gob.Register(wire.HintAck{})
	gob.Register(wire.FrameAck{})
	gob.Register(wire.StreamAdvance{})
	gob.Register(wire.Propagate{})
	gob.Register(wire.Envelope{})
}

// RegisterPayload registers a custom payload's concrete type with the
// frame codec. The built-in wire messages are pre-registered; call this
// in both peer processes for any additional payload types.
func RegisterPayload(p transport.Payload) { gob.Register(p) }

// Config configures a process-wide TCP transport.
type Config struct {
	// Listen is the address to accept peer connections on, e.g.
	// "127.0.0.1:7001" or ":0" (any port; see Network.Addr).
	Listen string
	// Peers maps remote site IDs to their processes' listen addresses.
	// Sites hosted by this process need no entry. Several sites may map
	// to the same address (one process hosting many sites); they share
	// one connection.
	Peers map[transport.SiteID]string
	// DialTimeout bounds one connection attempt. Zero means 2s.
	DialTimeout time.Duration
	// MaxBackoff caps the reconnect backoff. Zero means 1s.
	MaxBackoff time.Duration
}

// Network is a Transport over TCP sockets. Safe for concurrent use.
type Network struct {
	cfg   Config
	ln    net.Listener
	stats *transport.Stats
	// ctx is cancelled by Close: it aborts in-flight dials and backoff
	// sleeps promptly, so a dead peer cannot hold a reconnect goroutine
	// past Close.
	ctx    context.Context
	cancel context.CancelFunc

	// activity counts local queue events (enqueues, handler and write
	// completions): Drain uses it to certify that a clean sweep over
	// the queues observed a consistent quiescent cut rather than a
	// moving target.
	activity atomic.Uint64

	mu      sync.Mutex
	peers   map[ids.SiteID]string // site → dial address (from cfg + SetPeer)
	inboxes map[ids.SiteID]*inbox // locally hosted sites
	// early buffers frames that arrive for a site before it registers:
	// the listener is up before the process finishes constructing (or
	// recovering) its sites, and a fast peer can land a frame in that
	// window. Bounded per site; flushed in order on Register.
	early   map[ids.SiteID][]delivery
	writers map[string]*writer    // peer address → connection writer
	conns   map[net.Conn]struct{} // accepted (inbound) connections
	closed  bool
	wg      sync.WaitGroup
}

// maxEarly bounds the frames buffered per not-yet-registered site and
// maxEarlySites the distinct site IDs buffered for; overflow is
// dropped (tolerated loss). The site bound keeps stale routing — a
// peer persistently addressing sites this process never hosts — from
// growing the map without limit.
const (
	maxEarly      = 256
	maxEarlySites = 16
)

var _ transport.Transport = (*Network)(nil)

// New starts a TCP transport: it listens on cfg.Listen immediately and
// dials peers lazily on first send.
func New(cfg Config) (*Network, error) {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Listen, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Network{
		cfg:     cfg,
		ln:      ln,
		stats:   transport.NewStats(),
		ctx:     ctx,
		cancel:  cancel,
		peers:   make(map[ids.SiteID]string, len(cfg.Peers)),
		inboxes: make(map[ids.SiteID]*inbox),
		early:   make(map[ids.SiteID][]delivery),
		writers: make(map[string]*writer),
		conns:   make(map[net.Conn]struct{}),
	}
	for site, addr := range cfg.Peers {
		n.peers[site] = addr
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the transport's bound listen address (useful with ":0").
func (n *Network) Addr() net.Addr { return n.ln.Addr() }

// Stats returns the delivery statistics.
func (n *Network) Stats() *transport.Stats { return n.stats }

// Register installs the handler for a locally hosted site and starts its
// delivery goroutine. Registering after Close is a no-op.
func (n *Network) Register(site ids.SiteID, h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	if in, ok := n.inboxes[site]; ok {
		in.setHandler(h)
		return
	}
	in := newInbox(h, &n.activity)
	n.inboxes[site] = in
	// Flush frames that raced the registration, in arrival order, before
	// any new frame can reach the inbox (both paths hold n.mu).
	for _, d := range n.early[site] {
		in.enqueue(d)
	}
	delete(n.early, site)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		in.pump(n.stats)
	}()
}

// Send queues p for delivery to site `to`: in memory when the site is
// hosted by this process, over the peer connection otherwise. Unroutable
// destinations (no local handler, no Peers entry) count as dropped.
func (n *Network) Send(from, to ids.SiteID, p transport.Payload) {
	n.stats.RecordSent(p)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.stats.RecordDropped(p)
		return
	}
	if in, ok := n.inboxes[to]; ok {
		n.mu.Unlock()
		if !in.enqueue(delivery{from: from, p: p}) {
			n.stats.RecordDropped(p)
		}
		return
	}
	addr, ok := n.peers[to]
	if !ok {
		n.mu.Unlock()
		n.stats.RecordDropped(p)
		return
	}
	w, ok := n.writers[addr]
	if !ok {
		w = newWriter(n, addr)
		n.writers[addr] = w
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			w.run()
		}()
	}
	n.mu.Unlock()

	buf, err := encodeFrame(envelope{From: from, To: to, Payload: p})
	if err != nil {
		n.stats.RecordDropped(p)
		return
	}
	if !w.enqueue(outFrame{buf: buf, p: p}) {
		n.stats.RecordDropped(p)
	}
}

// Close stops the listener, the delivery goroutines and the peer
// connections, and joins them. Queued frames that were not yet written
// are dropped (recorded in Stats); Send after Close drops.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.cancel() // abort in-flight dials and reconnect backoffs
	err := n.ln.Close()
	ins := make([]*inbox, 0, len(n.inboxes))
	for _, in := range n.inboxes {
		ins = append(ins, in)
	}
	ws := make([]*writer, 0, len(n.writers))
	for _, w := range n.writers {
		ws = append(ws, w)
	}
	for c := range n.conns {
		c.Close()
	}
	for site, ds := range n.early {
		for _, d := range ds {
			n.stats.RecordDropped(d.p)
		}
		delete(n.early, site)
	}
	n.mu.Unlock()

	for _, in := range ins {
		in.close()
	}
	for _, w := range ws {
		w.close()
	}
	n.wg.Wait()
	return err
}

// Drain implements transport.Drainer: it blocks until every outbound
// writer queue has been written to its socket and every local inbox is
// empty with no handler running, or the timeout elapses, reporting
// whether it drained. Best-effort by construction — bytes in the OS
// buffers, on the wire, or queued inside a peer process are out of
// reach — but it replaces guessing with observation: dial/reconnect
// backoffs hold frames in the writer queues, and Drain waits those
// flushes out instead of sleeping a fixed interval.
func (n *Network) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	confirmed := false
	poll := 200 * time.Microsecond
	for {
		if n.flushedLocally() {
			// Two consistent flushed cuts separated by a short grace
			// interval: a frame this process wrote to a loopback socket
			// moments ago surfaces as inbox activity during the grace
			// and un-confirms, so same-process traffic settles before
			// Drain reports success. (Frames in flight to another
			// process remain out of reach — best effort.)
			if confirmed {
				return true
			}
			confirmed = true
			poll = 200 * time.Microsecond
		} else {
			confirmed = false
		}
		if time.Now().After(deadline) {
			return false
		}
		// Unflushed polls back off exponentially (200µs → 10ms): a
		// frame stuck behind a dead peer's reconnect backoff should not
		// have the whole timeout busy-spinning over every queue mutex.
		wait := poll
		if confirmed {
			wait = 2 * time.Millisecond
		} else if poll < 10*time.Millisecond {
			poll *= 2
		}
		select {
		case <-n.ctx.Done():
			return false
		case <-time.After(wait):
		}
	}
}

// flushedLocally reports whether all inboxes and writer queues are
// empty and idle as one consistent cut: the sweep only counts if the
// activity counter did not move while it ran — otherwise a handler
// finishing mid-sweep could enqueue into a queue (an already-checked
// writer, or another local site's inbox) and the pass would certify a
// moving target.
func (n *Network) flushedLocally() bool {
	before := n.activity.Load()
	n.mu.Lock()
	ws := make([]*writer, 0, len(n.writers))
	for _, w := range n.writers {
		ws = append(ws, w)
	}
	ins := make([]*inbox, 0, len(n.inboxes))
	for _, in := range n.inboxes {
		ins = append(ins, in)
	}
	n.mu.Unlock()
	for _, in := range ins {
		if !in.idle() {
			return false
		}
	}
	for _, w := range ws {
		if !w.idle() {
			return false
		}
	}
	return n.activity.Load() == before
}

// SetPeer adds or updates the dial address for a remote site at runtime
// (e.g. after a peer bound an ephemeral port). It does not affect frames
// already queued to the old address.
func (n *Network) SetPeer(site ids.SiteID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[site] = addr
}

// --- inbound path --------------------------------------------------------

func (n *Network) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go func() {
			defer n.wg.Done()
			n.readLoop(conn)
		}()
	}
}

func (n *Network) readLoop(conn net.Conn) {
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()
	for {
		env, err := readFrame(conn)
		if err != nil {
			return // EOF, peer reset, or corrupt stream: drop the conn
		}
		n.mu.Lock()
		in := n.inboxes[env.To]
		if in == nil && !n.closed {
			q, known := n.early[env.To]
			if (known || len(n.early) < maxEarlySites) && len(q) < maxEarly {
				// The site has not registered yet (process still starting
				// or recovering): buffer until it does.
				n.early[env.To] = append(q, delivery{from: env.From, p: env.Payload})
				n.mu.Unlock()
				continue
			}
		}
		n.mu.Unlock()
		if in == nil || !in.enqueue(delivery{from: env.From, p: env.Payload}) {
			// Buffer overflow (a site this process never hosts — stale
			// routing) or delivered after Close: lost, which the
			// protocol tolerates.
			n.stats.RecordDropped(env.Payload)
		}
	}
}

// inbox serialises deliveries to one site, decoupling socket reads from
// handler execution (handlers may send, and sites lock themselves while
// handling).
type inbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []delivery
	busy     int // deliveries dequeued whose handler has not returned yet
	h        transport.Handler
	closed   bool
	activity *atomic.Uint64 // the owning Network's Drain counter
}

type delivery struct {
	from ids.SiteID
	p    transport.Payload
}

func newInbox(h transport.Handler, activity *atomic.Uint64) *inbox {
	in := &inbox{h: h, activity: activity}
	in.cond = sync.NewCond(&in.mu)
	return in
}

func (in *inbox) setHandler(h transport.Handler) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.h = h
}

func (in *inbox) enqueue(d delivery) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return false
	}
	in.queue = append(in.queue, d)
	in.activity.Add(1)
	in.cond.Signal()
	return true
}

func (in *inbox) close() {
	in.mu.Lock()
	in.closed = true
	in.cond.Broadcast()
	in.mu.Unlock()
}

func (in *inbox) pump(stats *transport.Stats) {
	for {
		in.mu.Lock()
		for len(in.queue) == 0 && !in.closed {
			in.cond.Wait()
		}
		if len(in.queue) == 0 {
			in.mu.Unlock()
			return
		}
		d := in.queue[0]
		in.queue = in.queue[1:]
		in.busy++
		h := in.h
		in.mu.Unlock()
		stats.RecordDelivered(d.p)
		h(d.from, d.p)
		in.mu.Lock()
		in.busy--
		in.mu.Unlock()
		in.activity.Add(1)
	}
}

// idle reports whether the inbox has nothing queued and no handler
// running.
func (in *inbox) idle() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.queue) == 0 && in.busy == 0
}

// --- outbound path -------------------------------------------------------

// writer owns the single outgoing connection to one peer process: a
// queue, a dial/redial loop with exponential backoff, and in-order
// writes. A frame is retried across reconnects until written or the
// transport closes.
type writer struct {
	net  *Network
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []outFrame
	closed bool

	conn net.Conn // owned by run(); under mu only for close()
}

type outFrame struct {
	buf []byte
	p   transport.Payload // for drop accounting
}

func newWriter(n *Network, addr string) *writer {
	w := &writer{net: n, addr: addr}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// idle reports whether the writer has written every queued frame to
// its socket (the queue head is not popped until written, so an empty
// queue means all handed to the OS).
func (w *writer) idle() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.queue) == 0
}

func (w *writer) enqueue(f outFrame) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.queue = append(w.queue, f)
	w.net.activity.Add(1)
	w.cond.Signal()
	return true
}

func (w *writer) close() {
	w.mu.Lock()
	w.closed = true
	if w.conn != nil {
		w.conn.Close()
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *writer) run() {
	defer func() {
		w.mu.Lock()
		if w.conn != nil {
			w.conn.Close()
			w.conn = nil
		}
		dropped := w.queue
		w.queue = nil
		w.mu.Unlock()
		for _, f := range dropped {
			w.net.stats.RecordDropped(f.p)
		}
	}()
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if w.closed {
			w.mu.Unlock()
			return
		}
		f := w.queue[0]
		w.mu.Unlock()

		if !w.write(f.buf) {
			return // transport closed while (re)dialing
		}

		w.mu.Lock()
		w.queue = w.queue[1:]
		w.mu.Unlock()
		w.net.activity.Add(1)
	}
}

// write sends one frame, dialing and redialing as needed. It returns
// false only when the transport closed.
func (w *writer) write(buf []byte) bool {
	backoff := 20 * time.Millisecond
	for {
		conn := w.ensureConn(&backoff)
		if conn == nil {
			return false
		}
		if _, err := conn.Write(buf); err == nil {
			return true
		}
		w.dropConn(conn)
		// Loop: redial and retransmit the same frame. In-order delivery
		// holds because the queue head is not popped until written.
	}
}

func (w *writer) ensureConn(backoff *time.Duration) net.Conn {
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return nil
		}
		if w.conn != nil {
			conn := w.conn
			w.mu.Unlock()
			return conn
		}
		w.mu.Unlock()

		// DialContext bounds the attempt by the configured dial timeout
		// and aborts it the moment the transport closes.
		dialer := net.Dialer{Timeout: w.net.cfg.DialTimeout}
		conn, err := dialer.DialContext(w.net.ctx, "tcp", w.addr)
		if err != nil {
			if !w.sleep(*backoff) {
				return nil
			}
			if *backoff *= 2; *backoff > w.net.cfg.MaxBackoff {
				*backoff = w.net.cfg.MaxBackoff
			}
			continue
		}
		*backoff = 20 * time.Millisecond
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conn = conn
		w.mu.Unlock()
		return conn
	}
}

// sleep waits out one backoff interval, returning early (false) when
// the transport closes.
func (w *writer) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.net.ctx.Done():
		return false
	}
}

func (w *writer) dropConn(conn net.Conn) {
	conn.Close()
	w.mu.Lock()
	if w.conn == conn {
		w.conn = nil
	}
	w.mu.Unlock()
}

// --- frame codec ---------------------------------------------------------

// encodeFrame renders an envelope as a length-prefixed gob frame: a
// 4-byte big-endian length followed by the gob bytes. Each frame carries
// its own gob stream so a receiver can resynchronise per frame and a
// reconnecting sender needs no codec state.
func encodeFrame(env envelope) ([]byte, error) {
	var body bytes.Buffer
	body.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&body).Encode(&env); err != nil {
		return nil, fmt.Errorf("tcp: encode %T: %w", env.Payload, err)
	}
	buf := body.Bytes()
	if len(buf)-4 > maxFrame {
		// Writing an oversized frame would poison the connection: the
		// receiver rejects it and drops the whole stream, and a retry
		// would re-kill the reconnected connection.
		return nil, fmt.Errorf("tcp: frame for %T is %d bytes, exceeds %d", env.Payload, len(buf)-4, maxFrame)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf, nil
}

// readFrame reads one length-prefixed gob frame.
func readFrame(r io.Reader) (envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return envelope{}, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > maxFrame {
		return envelope{}, fmt.Errorf("tcp: bad frame size %d", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return envelope{}, fmt.Errorf("tcp: decode frame: %w", err)
	}
	return env, nil
}
