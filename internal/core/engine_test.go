package core

import (
	"testing"

	"causalgc/internal/ids"
	"causalgc/internal/vclock"
)

// fakeSender records outgoing control messages and assigns stream
// sequences from one counter per stream (the real site runtime keys its
// counters per destination site as well; a single-peer test does not
// care).
type fakeSender struct {
	destroys []sentDestroy
	legacies []sentDestroy
	props    []sentMsg
	asserts  []sentAssert
	settles  []settledFrame
	seqs     map[Stream]uint64
}

type sentMsg struct {
	from, to ids.ClusterID
}

type sentDestroy struct {
	from, to ids.ClusterID
	m        DestroyMsg
	seq      uint64
}

type sentAssert struct {
	from, to ids.ClusterID
	m        AssertMsg
	seq      uint64
}

type settledFrame struct {
	peer   ids.SiteID
	stream Stream
	seq    uint64
}

func (f *fakeSender) assign(s Stream, seq uint64) uint64 {
	if seq != 0 {
		return seq
	}
	if f.seqs == nil {
		f.seqs = make(map[Stream]uint64)
	}
	f.seqs[s]++
	return f.seqs[s]
}

func (f *fakeSender) SendDestroy(from, to ids.ClusterID, m DestroyMsg, seq uint64) uint64 {
	seq = f.assign(StreamDestroy, seq)
	f.destroys = append(f.destroys, sentDestroy{from, to, m, seq})
	return seq
}

// SendLegacy records into destroys as well: a legacy frame is an
// edge-destruction bundle on the wire, and the assertions below count
// destruction traffic regardless of stream.
func (f *fakeSender) SendLegacy(from, to ids.ClusterID, m DestroyMsg, seq uint64) uint64 {
	seq = f.assign(StreamLegacy, seq)
	f.legacies = append(f.legacies, sentDestroy{from, to, m, seq})
	f.destroys = append(f.destroys, sentDestroy{from, to, m, seq})
	return seq
}

func (f *fakeSender) SendPropagate(from, to ids.ClusterID, _ Propagation) {
	f.props = append(f.props, sentMsg{from, to})
}

func (f *fakeSender) SendAssert(from, to ids.ClusterID, m AssertMsg, seq uint64) uint64 {
	seq = f.assign(StreamAssert, seq)
	f.asserts = append(f.asserts, sentAssert{from, to, m, seq})
	return seq
}

func (f *fakeSender) SettleFrame(peer ids.SiteID, stream Stream, seq uint64) {
	f.settles = append(f.settles, settledFrame{peer, stream, seq})
}

var _ Sender = (*fakeSender)(nil)

var (
	r1  = ids.ClusterID{Site: 1, Seq: 1, Root: true}
	cA  = ids.ClusterID{Site: 1, Seq: 2}
	cB  = ids.ClusterID{Site: 1, Seq: 3}
	rem = ids.ClusterID{Site: 2, Seq: 1}
)

func newEngine(t *testing.T, opts Options) (*Engine, *fakeSender, *[]ids.ClusterID) {
	t.Helper()
	fs := &fakeSender{}
	var removed []ids.ClusterID
	e := New(1, fs, func(cl ids.ClusterID) { removed = append(removed, cl) }, opts)
	return e, fs, &removed
}

func TestEngineRegisterIdempotentAndTombstoned(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	if !e.Registered(cA) {
		t.Fatal("not registered")
	}
	e.Register(cA) // no-op
	if got := len(e.Processes()); got != 1 {
		t.Fatalf("Processes = %d", got)
	}
	// Make it garbage: no edges at all → first delivery removes it.
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{r1: vclock.Eps(1)}})
	if !e.Removed(cA) {
		t.Fatal("unreferenced cluster not removed")
	}
	e.Register(cA)
	if e.Registered(cA) {
		t.Fatal("tombstoned cluster re-registered")
	}
}

func TestEngineRegisterForeignPanics(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Register(rem)
}

func TestEngineLocalEdgeLifecycle(t *testing.T) {
	e, _, removed := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.Drain()
	if e.Removed(cA) {
		t.Fatal("live cluster removed")
	}
	if got := e.Acquaintances(r1); len(got) != 1 || got[0] != cA {
		t.Fatalf("Acquaintances = %v", got)
	}
	// The stamp landed directly in cA's own vector (same site).
	if got := e.LogSnapshot(cA).Own().Get(r1); !got.Live() {
		t.Fatalf("own[r1] = %v, want live", got)
	}
	e.EdgeDown(r1, cA)
	e.Drain()
	if !e.Removed(cA) {
		t.Fatal("dead cluster not removed")
	}
	if len(*removed) != 1 || (*removed)[0] != cA {
		t.Fatalf("onRemove calls = %v", *removed)
	}
	if e.Clock(cA) == 0 {
		t.Error("tombstone clock lost")
	}
}

func TestEngineLocalCascade(t *testing.T) {
	// r1 → A → B: dropping r1→A removes A, whose finalisation removes B.
	e, _, removed := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.Register(cB)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.EdgeUp(cA, cB, true, ids.NoCluster, 0)
	e.Drain()
	e.EdgeDown(r1, cA)
	e.Drain()
	if !e.Removed(cA) || !e.Removed(cB) {
		t.Fatalf("cascade incomplete: removed=%v", *removed)
	}
	st := e.Stats()
	if st.Removed != 2 {
		t.Errorf("Stats.Removed = %d, want 2", st.Removed)
	}
}

func TestEngineRemoteEdgeUpSendsAssert(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	intro := ids.ClusterID{Site: 3, Seq: 9}
	e.EdgeUp(cA, rem, true, intro, 7)
	if len(fs.asserts) != 1 {
		t.Fatalf("asserts = %+v, want 1", fs.asserts)
	}
	a := fs.asserts[0]
	if a.from != cA || a.to != rem || a.m.Intro != intro || a.m.IntroSeq != 7 {
		t.Errorf("assert = %+v", a)
	}
	// Non-first re-add: no assert.
	e.EdgeUp(cA, rem, false, intro, 8)
	if len(fs.asserts) != 1 {
		t.Errorf("re-add sent an assert")
	}
	// Creation sentinel: no assert.
	e.EdgeUp(cA, ids.ClusterID{Site: 2, Seq: 5}, true, ids.NoCluster, ids.CreationSeq)
	if len(fs.asserts) != 1 {
		t.Errorf("creation sent an assert")
	}
}

func TestEngineEdgeDownShipsBundle(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	e.EdgeUp(cA, rem, true, ids.NoCluster, 0)
	seq := e.SentRef(cA, rem, cB) // cA forwards rem's ref to cB
	if seq == 0 {
		t.Fatal("SentRef returned 0")
	}
	ob := e.LogSnapshot(cA).PeekOB(rem)
	if ob == nil || !ob.Hints.Get(cB).Live() {
		t.Fatalf("forward hint not recorded: %+v", ob)
	}
	e.EdgeDown(cA, rem)
	e.Drain()
	if len(fs.destroys) != 1 || fs.destroys[0].to != rem {
		t.Fatalf("destroys = %+v", fs.destroys)
	}
}

func TestEngineHandleAssertResolvesHint(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	// cA hears (via a bundle) that rem may reference it, introduced by cB
	// at seq 5: pending hint blocks a garbage verdict.
	e.HandleDestroy(cA, cB, DestroyMsg{
		Auth:  vclock.Vector{cB: vclock.Eps(3)},
		Hints: vclock.Vector{rem: vclock.At(5)},
	})
	if e.Removed(cA) {
		t.Fatal("removed with a pending introduction hint (UNSAFE)")
	}
	// rem's assert resolves the hint with a live stamp: still alive.
	e.HandleAssert(cA, rem, AssertMsg{Stamp: 9, Intro: cB, IntroSeq: 5})
	if e.Removed(cA) {
		t.Fatal("removed while rem holds a live edge")
	}
	if got := e.LogSnapshot(cA).Own().Get(rem); got != vclock.At(9) {
		t.Fatalf("own[rem] = %v, want 9", got)
	}
	// rem destroys its edge: now cA is garbage.
	e.HandleDestroy(cA, rem, DestroyMsg{Auth: vclock.Vector{rem: vclock.Eps(10)}})
	if !e.Removed(cA) {
		t.Fatal("not removed after all edges destroyed")
	}
}

func TestEngineConfirmationGuardBlocksRemoval(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	// cA's only edge is from the (unconfirmed) remote cluster: a destroy
	// from a root leaves a live non-root predecessor with unknown
	// ancestry — removal must be blocked; a propagation must go out
	// asking the world (via cA's successors, none here).
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{
		r1:  vclock.Eps(4),
		rem: vclock.At(2), // bundled: edge rem→cA exists
	}})
	if e.Removed(cA) {
		t.Fatal("removed with unconfirmed live predecessor (UNSAFE)")
	}
	// rem's propagation confirms its row: rootless → garbage.
	e.HandlePropagate(cA, rem, Propagation{Clock: 3, Auth: vclock.NewVector()})
	if !e.Removed(cA) {
		t.Fatal("not removed after predecessor confirmed rootless")
	}
	_ = fs
}

func TestEngineConfirmedLiveRootKeepsAlive(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{
		r1:  vclock.Eps(4),
		rem: vclock.At(2),
	}})
	// rem's propagation shows rem is itself root-referenced.
	root2 := ids.ClusterID{Site: 2, Seq: 1, Root: true}
	e.HandlePropagate(cA, rem, Propagation{
		Clock: 3,
		Auth:  vclock.Vector{root2: vclock.At(1)},
	})
	if e.Removed(cA) {
		t.Fatal("removed despite a confirmed live root path (UNSAFE)")
	}
}

func TestEngineDuplicateDestroyIdempotent(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.Drain()
	m := DestroyMsg{Auth: vclock.Vector{rem: vclock.Eps(5)}}
	e.HandleDestroy(cA, rem, m)
	clock := e.Clock(cA)
	e.HandleDestroy(cA, rem, m) // duplicate
	if got := e.Clock(cA); got != clock {
		t.Errorf("duplicate destroy bumped the clock: %d -> %d", clock, got)
	}
}

func TestEngineStaleDeliveriesCounted(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	ghost := ids.ClusterID{Site: 2, Seq: 99}
	// Foreign-site target: never buffered, dropped as stale.
	e.HandleDestroy(ghost, r1, DestroyMsg{})
	if got := e.Stats().StaleDeliveries; got != 1 {
		t.Errorf("StaleDeliveries = %d, want 1", got)
	}
	// EdgeUp/SentRef/EdgeDown on unknown holders are stale too.
	e.EdgeUp(cB, rem, true, ids.NoCluster, 0)
	e.SentRef(cB, rem, cA)
	e.EdgeDown(cB, rem)
	if got := e.Stats().StaleDeliveries; got != 4 {
		t.Errorf("StaleDeliveries = %d, want 4", got)
	}
}

func TestEngineEarlyMessageBuffered(t *testing.T) {
	// A destroy racing ahead of the local cluster's creation must be
	// buffered and replayed on Register, not dropped.
	e, _, _ := newEngine(t, Options{})
	e.HandleDestroy(cA, rem, DestroyMsg{Auth: vclock.Vector{rem: vclock.Eps(5)}})
	if e.Stats().StaleDeliveries != 0 {
		t.Fatal("early local-cluster message dropped instead of buffered")
	}
	e.Register(cA)
	e.HandleCreate(cA, rem, 2) // creation arrives late
	e.Drain()
	// The buffered Ē(5) must supersede the creation stamp At(2).
	if e.Registered(cA) {
		if got := e.LogSnapshot(cA).Own().Get(rem); got != vclock.Eps(5) {
			t.Fatalf("own[rem] = %v, want Ē5", got)
		}
	}
}

func TestEngineRootsNeverRemoved(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Refresh()
	e.Evaluate(r1)
	if e.Removed(r1) {
		t.Fatal("actual root removed")
	}
}

func TestEngineSelfRefSendArmsOwnHint(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	seq := e.SentRef(cA, cA, rem) // cA sends its own reference to rem
	if seq == 0 {
		t.Fatal("seq = 0")
	}
	if !e.LogSnapshot(cA).Hints().Has(rem) {
		t.Fatal("self-introduction hint not armed")
	}
	// rem's assert resolves it.
	e.HandleAssert(cA, rem, AssertMsg{Stamp: 4, Intro: cA, IntroSeq: seq})
	if e.LogSnapshot(cA).Hints().Has(rem) {
		t.Fatal("hint not resolved by assert")
	}
}

func TestEngineUnsafeNoHintsSkipsMechanism(t *testing.T) {
	e, fs, _ := newEngine(t, Options{UnsafeNoHints: true})
	e.Register(cA)
	e.EdgeUp(cA, rem, true, cB, 3)
	if len(fs.asserts) != 0 {
		t.Errorf("asserts sent with UnsafeNoHints: %+v", fs.asserts)
	}
	e.SentRef(cA, cA, rem)
	if e.LogSnapshot(cA).Hints() != nil && !e.LogSnapshot(cA).Hints().Empty() {
		t.Error("hints armed with UnsafeNoHints")
	}
}

func TestEngineAssertJournaledAndResentUntilAck(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0) // keep cA alive across refreshes
	e.Drain()
	intro := ids.ClusterID{Site: 3, Seq: 9}
	e.EdgeUp(cA, rem, true, intro, 7)
	if len(fs.asserts) != 1 {
		t.Fatalf("asserts = %+v, want 1", fs.asserts)
	}
	first := fs.asserts[0]
	// The assert was lost: every refresh round re-ships it verbatim.
	for i := 0; i < 2; i++ {
		e.Refresh()
		if got := len(fs.asserts); got != 2+i {
			t.Fatalf("after refresh %d: asserts = %d, want %d", i+1, got, 2+i)
		}
		if re := fs.asserts[len(fs.asserts)-1]; re != first {
			t.Fatalf("re-sent assert %+v != original %+v", re, first)
		}
	}
	if got := e.Stats().AssertResends; got != 2 {
		t.Errorf("AssertResends = %d, want 2", got)
	}
	// The owner's ack retires the journal row: no further re-sends.
	e.HandleAck(cA, rem, AckMsg{Intro: intro, IntroSeq: 7, Stamp: first.m.Stamp})
	n := len(fs.asserts)
	e.Refresh()
	if len(fs.asserts) != n {
		t.Fatalf("re-sent after ack: %+v", fs.asserts[n:])
	}
}

func TestEngineAssertJournalRetiredByEdgeDown(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	e.EdgeUp(cA, rem, true, cB, 3)
	e.EdgeDown(cA, rem)
	e.Drain()
	// The destroy bundle (re-sent by Refresh from the Ē-stamped OB row)
	// now owns resolution; the assert journal must not re-ship.
	n := len(fs.asserts)
	e.Refresh()
	if len(fs.asserts) != n {
		t.Fatalf("assert re-sent after edge destruction: %+v", fs.asserts[n:])
	}
}

func TestEngineAssertToTombstoneSettled(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{r1: vclock.Eps(1)}})
	if !e.Removed(cA) {
		t.Fatal("cA not removed")
	}
	// A (re-sent) assert addressed to the tombstone must still settle —
	// the tombstone's word is final — or the asserter would re-send
	// forever.
	e.HandleAssertFrame(cA, rem, AssertMsg{Stamp: 4, Intro: cB, IntroSeq: 2}, 5)
	if len(fs.settles) != 1 {
		t.Fatalf("settles = %+v, want 1", fs.settles)
	}
	if s := fs.settles[0]; s.peer != rem.Site || s.stream != StreamAssert || s.seq != 5 {
		t.Errorf("settle = %+v", s)
	}
}

func TestEngineAssertProcessingSettles(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	e.HandleAssertFrame(cA, rem, AssertMsg{Stamp: 4, Intro: cB, IntroSeq: 2}, 5)
	if len(fs.settles) != 1 || fs.settles[0].seq != 5 {
		t.Fatalf("settles = %+v, want one for seq 5", fs.settles)
	}
	// Duplicate delivery: idempotent, settled again (the receiver site
	// re-acks the unchanged watermark, healing a lost FrameAck).
	e.HandleAssertFrame(cA, rem, AssertMsg{Stamp: 4, Intro: cB, IntroSeq: 2}, 5)
	if len(fs.settles) != 2 {
		t.Fatalf("duplicate assert not re-settled: %+v", fs.settles)
	}
	// Untracked frames (seq 0) settle nothing.
	e.HandleAssert(cA, rem, AssertMsg{Stamp: 4, Intro: cB, IntroSeq: 2})
	if len(fs.settles) != 2 {
		t.Fatalf("untracked assert settled: %+v", fs.settles)
	}
}

func TestEngineNegativeAssertExpiresHint(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	// A bundle arms hint (rem, cB, 5): rem may be about to reference cA.
	e.HandleDestroy(cA, cB, DestroyMsg{
		Auth:  vclock.Vector{cB: vclock.Eps(3)},
		Hints: vclock.Vector{rem: vclock.At(5)},
	})
	if e.Removed(cA) {
		t.Fatal("removed with a pending hint (UNSAFE)")
	}
	// rem's site reports the introduction dead: stampless assert.
	e.HandleAssert(cA, rem, AssertMsg{Stamp: 0, Intro: cB, IntroSeq: 5})
	if got := e.Stats().HintsExpired; got != 1 {
		t.Errorf("HintsExpired = %d, want 1", got)
	}
	// No liveness was claimed and the hint is gone: cA is garbage now.
	if !e.Removed(cA) {
		t.Fatal("not removed after the pinning hint expired")
	}
}

func TestEngineExpiryBoundSuppressesStaleRearm(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0) // keep cA alive
	e.Drain()
	// Expiry arrives before the (stale, gossiped) arming.
	e.HandleAssert(cA, rem, AssertMsg{Stamp: 0, Intro: cB, IntroSeq: 5})
	e.HandleDestroy(cA, cB, DestroyMsg{
		Auth:  vclock.Vector{cB: vclock.Eps(3)},
		Hints: vclock.Vector{rem: vclock.At(5)},
	})
	if e.LogSnapshot(cA).Hints().Has(rem) {
		t.Fatal("expired introduction re-armed by stale gossip")
	}
	// A genuinely fresher forwarding (seq 6 > bound 5) still arms.
	e.HandleDestroy(cA, cB, DestroyMsg{Hints: vclock.Vector{rem: vclock.At(6)}})
	if !e.LogSnapshot(cA).Hints().Has(rem) {
		t.Fatal("fresh forwarding suppressed by the expiry bound")
	}
}

func TestEngineResolveIntroductionDeadHolder(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	// cA was removed long ago; a forwarded reference addressed to one of
	// its objects arrives — the introduction can never form an edge.
	e.Register(cA)
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{r1: vclock.Eps(1)}})
	if !e.Removed(cA) {
		t.Fatal("cA not removed")
	}
	e.ResolveIntroduction(cA, rem, cB, 4)
	if len(fs.asserts) != 1 {
		t.Fatalf("asserts = %+v, want 1 negative", fs.asserts)
	}
	if a := fs.asserts[0]; a.from != cA || a.to != rem || a.m.Stamp != 0 || a.m.IntroSeq != 4 {
		t.Errorf("negative assert = %+v", a)
	}
	// Journaled: refresh re-sends until acked.
	e.Refresh()
	if len(fs.asserts) != 2 {
		t.Fatalf("negative assert not re-sent: %+v", fs.asserts)
	}
	e.HandleAck(cA, rem, AckMsg{Intro: cB, IntroSeq: 4})
	e.Refresh()
	if len(fs.asserts) != 2 {
		t.Fatalf("negative assert re-sent after ack: %+v", fs.asserts)
	}
}

func TestEngineResolveIntroductionLiveEdgeReasserts(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	e.EdgeUp(cA, rem, true, ids.NoCluster, 0) // sends the edge's own first assert
	clock := e.Clock(cA)
	// The holder object died but the cluster still holds the edge: the
	// introduction is consumed on its behalf with a genuine re-assert.
	e.ResolveIntroduction(cA, rem, cB, 4)
	if len(fs.asserts) != 2 {
		t.Fatalf("asserts = %+v, want 2", fs.asserts)
	}
	a := fs.asserts[1]
	if a.m.Stamp != clock+1 || a.m.Intro != cB || a.m.IntroSeq != 4 {
		t.Errorf("re-assert = %+v, want stamp %d", a, clock+1)
	}
	ob := e.LogSnapshot(cA).PeekOB(rem)
	if ob == nil || ob.Processed.Get(cB) != vclock.At(4) {
		t.Errorf("introduction not recorded as processed: %+v", ob)
	}
}

func TestEngineResolveIntroductionLocalOwner(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.Register(cB)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0) // keep cA alive
	e.Drain()
	// Arm hint (cB, rem, 3) at local cA, then expire it locally: the
	// holder cB's object died before the transfer arrived.
	e.HandleDestroy(cA, rem, DestroyMsg{
		Auth:  vclock.Vector{rem: vclock.Eps(2)},
		Hints: vclock.Vector{cB: vclock.At(3)},
	})
	if !e.LogSnapshot(cA).Hints().Has(cB) {
		t.Fatal("hint not armed")
	}
	e.ResolveIntroduction(cB, cA, rem, 3)
	if e.LogSnapshot(cA).Hints().Has(cB) {
		t.Fatal("local hint not expired")
	}
}

func TestEngineNegativeRowSurvivesEdgeLifecycle(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0) // keep cA alive
	e.Drain()
	// A dead introduction is expired while cA holds no edge to rem: a
	// negative assert row is journaled.
	e.ResolveIntroduction(cA, rem, cB, 4)
	neg := len(fs.asserts)
	if neg == 0 || fs.asserts[neg-1].m.Stamp != 0 {
		t.Fatalf("asserts = %+v, want trailing negative", fs.asserts)
	}
	// cA later forms a genuine edge to rem (different introduction) and
	// destroys it: the destroy bundle covers only the consumed
	// introduction, so the negative row must survive the retirement.
	e.EdgeUp(cA, rem, true, cB, 9)
	e.EdgeDown(cA, rem)
	e.Drain()
	e.Refresh()
	found := false
	for _, a := range fs.asserts[neg:] {
		if a.m.Stamp == 0 && a.m.Intro == cB && a.m.IntroSeq == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("negative assert not re-sent after edge lifecycle: %+v", fs.asserts[neg:])
	}
}

func TestEngineOverflowDropDoesNotSettle(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	// Fill cA's pre-registration pending buffer to its bound.
	for i := 0; i < 64; i++ {
		e.HandleDestroy(cA, rem, DestroyMsg{Auth: vclock.Vector{rem: vclock.Eps(uint64(i + 1))}})
	}
	// An assert past the bound is dropped as loss — it must NOT settle,
	// or the sender would retire a journal row that was never processed.
	e.HandleAssertFrame(cA, rem, AssertMsg{Stamp: 5, Intro: cB, IntroSeq: 2}, 9)
	if len(fs.settles) != 0 {
		t.Fatalf("overflow-dropped assert settled: %+v", fs.settles)
	}
}

func TestEngineBufferedFrameSettles(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	// A tracked destroy racing ahead of its target's creation is buffered
	// durably (part of the engine image) — a final, replayable
	// disposition, so it settles immediately.
	e.HandleDestroyFrame(cA, rem, DestroyMsg{Auth: vclock.Vector{rem: vclock.Eps(1)}}, 3, false)
	if len(fs.settles) != 1 || fs.settles[0] != (settledFrame{rem.Site, StreamDestroy, 3}) {
		t.Fatalf("settles = %+v, want buffered destroy seq 3", fs.settles)
	}
}

func TestEngineJournalFullOfNegativesEvictsOldest(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	// Saturate the journal with negative rows.
	for i := 0; i < maxAssertRows; i++ {
		e.asserts[assertRow{holder: cA, target: rem, intro: cB, seq: uint64(i + 1)}] = &assertState{}
	}
	oldest := assertRow{holder: cA, target: rem, intro: cB, seq: 1}
	fresh := assertRow{holder: cA, target: rem, intro: cB, seq: maxAssertRows + 1}
	e.journalAssert(fresh, 0)
	if len(e.asserts) != maxAssertRows {
		t.Fatalf("journal size = %d, want %d", len(e.asserts), maxAssertRows)
	}
	if _, ok := e.asserts[fresh]; !ok {
		t.Fatal("fresh negative row dropped at the bound (would pin on one loss)")
	}
	if _, ok := e.asserts[oldest]; ok {
		t.Fatal("oldest negative row not the eviction victim")
	}
	// A positive victim is always preferred over a negative one.
	pos := assertRow{holder: cA, target: rem, intro: cB, seq: 2}
	e.asserts[pos] = &assertState{stamp: 7}
	delete(e.asserts, assertRow{holder: cA, target: rem, intro: cB, seq: 3})
	e.journalAssert(assertRow{holder: cA, target: rem, intro: cB, seq: maxAssertRows + 2}, 0)
	e.journalAssert(assertRow{holder: cA, target: rem, intro: cB, seq: maxAssertRows + 3}, 0)
	if _, ok := e.asserts[pos]; ok {
		t.Fatal("positive row survived while negatives were evicted")
	}
	if e.Stats().AssertRowsDropped == 0 {
		t.Error("journal-bound evictions not counted as tolerated loss")
	}
}

func TestEnginePendingOverflowAdmitsLocalExpiry(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cB)
	// Fill cA's pre-registration buffer with (re-derivable) destroys.
	// Each bundles a live root stamp so the replay leaves cA alive.
	for i := 0; i < 64; i++ {
		e.HandleDestroy(cA, rem, DestroyMsg{Auth: vclock.Vector{
			r1:  vclock.At(1),
			rem: vclock.Eps(uint64(i + 1)),
		}})
	}
	// A dead introduction for the not-yet-created local owner cA: the
	// self-delivered expiry must displace a buffered destroy instead of
	// being the thing that is dropped.
	e.ResolveIntroduction(cB, cA, rem, 5)
	e.Register(cA)
	e.HandleCreate(cA, rem, 1)
	e.Drain()
	if !e.Registered(cA) {
		t.Fatal("cA not live after create")
	}
	// The replayed expiry recorded the bound: the introducer's stale
	// arming of hint (cB, rem, 5) is suppressed.
	e.HandleDestroy(cA, rem, DestroyMsg{Hints: vclock.Vector{cB: vclock.At(5)}})
	if e.LogSnapshot(cA).Hints().Has(cB) {
		t.Fatal("expiry lost to pending-buffer overflow: hint armed")
	}
	if got := e.Stats().HintsExpired; got != 1 {
		t.Errorf("HintsExpired = %d, want 1", got)
	}
}

func TestEngineRemoveRetainsFinalBundle(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	e.EdgeUp(cA, rem, true, ids.NoCluster, 0)
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{r1: vclock.Eps(1)}})
	if !e.Removed(cA) {
		t.Fatal("cA not removed")
	}
	if len(fs.destroys) != 1 || fs.destroys[0].to != rem {
		t.Fatalf("destroys = %+v", fs.destroys)
	}
	// The finalisation destroy was lost: the process is gone, but the
	// retained bundle re-ships on refresh.
	e.Refresh()
	if len(fs.destroys) != 2 {
		t.Fatalf("final bundle not re-sent: %+v", fs.destroys)
	}
	if d := fs.destroys[1]; d.from != cA || d.to != rem || !d.m.Auth.Get(cA).Eps {
		t.Errorf("re-sent bundle = %+v", d)
	}
}

func TestEngineRemoveObserver(t *testing.T) {
	var observed []ids.ClusterID
	fs := &fakeSender{}
	e := New(1, fs, nil, Options{
		RemoveObserver: func(id ids.ClusterID, log *vclock.Log, clock uint64) {
			if log == nil {
				t.Error("observer got nil log")
			}
			observed = append(observed, id)
		},
	})
	e.Register(cA)
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{r1: vclock.Eps(1)}})
	if len(observed) != 1 || observed[0] != cA {
		t.Fatalf("observed = %v", observed)
	}
}

// --- Acknowledged retirement (DESIGN.md §3.2) ----------------------------

func TestEngineAckAssertsRetiresCumulatively(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0) // keep cA alive
	e.Drain()
	intro := ids.ClusterID{Site: 3, Seq: 9}
	rem2 := ids.ClusterID{Site: 2, Seq: 4}
	e.EdgeUp(cA, rem, true, intro, 7)  // assert stream seq 1
	e.EdgeUp(cA, rem2, true, intro, 8) // assert stream seq 2
	if len(fs.asserts) != 2 {
		t.Fatalf("asserts = %+v, want 2", fs.asserts)
	}
	// The peer site's cumulative watermark 2 retires both rows at once.
	if n := e.AckAsserts(2, 2); n != 2 {
		t.Fatalf("AckAsserts retired %d rows, want 2", n)
	}
	e.Refresh()
	if got := e.Stats().AssertResends; got != 0 {
		t.Errorf("AssertResends after full ack = %d, want 0", got)
	}
	if got := e.Stats().RowsRetired; got != 2 {
		t.Errorf("RowsRetired = %d, want 2", got)
	}
}

func TestEngineAckDestroysStopsResend(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0) // keep cA alive
	e.EdgeUp(cA, rem, true, ids.NoCluster, 0)
	e.EdgeDown(cA, rem)
	e.Drain()
	if len(fs.destroys) != 1 || fs.destroys[0].seq == 0 {
		t.Fatalf("destroys = %+v, want one tracked bundle", fs.destroys)
	}
	seq := fs.destroys[0].seq
	// Unacknowledged: the first refresh re-ships the Ē bundle.
	e.Refresh()
	if got := e.Stats().DestroyResends; got != 1 {
		t.Fatalf("DestroyResends = %d, want 1", got)
	}
	if re := fs.destroys[len(fs.destroys)-1]; re.seq != seq {
		t.Fatalf("re-send changed the stream seq: %d -> %d (would open a receiver gap)", seq, re.seq)
	}
	// The target site acknowledges: no further re-sends, ever.
	if n := e.AckDestroys(rem.Site, seq); n != 1 {
		t.Fatalf("AckDestroys retired %d, want 1", n)
	}
	n := len(fs.destroys)
	for i := 0; i < 4; i++ {
		e.Refresh()
	}
	if len(fs.destroys) != n {
		t.Fatalf("acked bundle re-sent: %+v", fs.destroys[n:])
	}
}

func TestEngineEdgeReformInvalidatesDestroyAck(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.EdgeUp(cA, rem, true, ids.NoCluster, 0)
	e.EdgeDown(cA, rem)
	e.Drain()
	firstSeq := fs.destroys[0].seq
	// The edge re-forms, then is destroyed again: the second Ē must ship
	// under a fresh stream sequence, and a stale ack of the first frame
	// must not retire it.
	e.EdgeUp(cA, rem, true, cB, 5)
	e.EdgeDown(cA, rem)
	e.Drain()
	second := fs.destroys[len(fs.destroys)-1]
	if second.seq == firstSeq {
		t.Fatalf("re-destroyed edge reused stream seq %d", firstSeq)
	}
	if n := e.AckDestroys(rem.Site, firstSeq); n != 0 {
		t.Fatalf("stale watermark retired the fresh bundle (%d rows)", n)
	}
	e.Refresh()
	if got := e.Stats().DestroyResends; got != 1 {
		t.Errorf("fresh Ē bundle not re-sent after stale ack: resends = %d", got)
	}
}

func TestEngineAckLegacyRetiresBundle(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	e.EdgeUp(cA, rem, true, ids.NoCluster, 0)
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{r1: vclock.Eps(1)}})
	if !e.Removed(cA) {
		t.Fatal("cA not removed")
	}
	if len(fs.legacies) != 1 {
		t.Fatalf("legacies = %+v, want 1", fs.legacies)
	}
	if n := e.AckLegacy(rem.Site, fs.legacies[0].seq); n != 1 {
		t.Fatalf("AckLegacy retired %d, want 1", n)
	}
	e.Refresh()
	if got := e.Stats().LegacyResends; got != 0 {
		t.Errorf("acked legacy bundle re-sent: LegacyResends = %d", got)
	}
}

func TestEngineResendDamperBacksOff(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.Drain()
	e.EdgeUp(cA, rem, true, cB, 7) // one journaled assert, never acked
	base := len(fs.asserts)
	sentAt := []uint64{}
	for round := uint64(1); round <= 16; round++ {
		n := len(fs.asserts)
		e.Refresh()
		if len(fs.asserts) > n {
			sentAt = append(sentAt, round)
		}
	}
	// Exponential schedule: rounds 1, 2, 4, 8, 16.
	want := []uint64{1, 2, 4, 8, 16}
	if len(sentAt) != len(want) {
		t.Fatalf("re-sends at rounds %v, want %v", sentAt, want)
	}
	for i := range want {
		if sentAt[i] != want[i] {
			t.Fatalf("re-sends at rounds %v, want %v", sentAt, want)
		}
	}
	if got := e.Stats().ResendsSuppressed; got != 16-len(want) {
		t.Errorf("ResendsSuppressed = %d, want %d", got, 16-len(want))
	}
	_ = base
}

func TestEngineResendDamperCapOne(t *testing.T) {
	e, fs, _ := newEngine(t, Options{ResendBackoffCap: 1})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.Drain()
	e.EdgeUp(cA, rem, true, cB, 7)
	base := len(fs.asserts)
	for i := 0; i < 5; i++ {
		e.Refresh()
	}
	if got := len(fs.asserts) - base; got != 5 {
		t.Errorf("with cap 1 every round must re-send: got %d of 5", got)
	}
}

func TestEngineResetPeerBackoffReArms(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.Drain()
	e.EdgeUp(cA, rem, true, cB, 7)
	e.Refresh() // round 1: re-send, next due round 2
	e.Refresh() // round 2: re-send, next due round 4
	n := len(fs.asserts)
	// Peer restarted: the damper re-arms and round 3 re-sends at once.
	e.ResetPeerBackoff(rem.Site)
	e.Refresh()
	if len(fs.asserts) != n+1 {
		t.Errorf("reset damper did not re-send on the next round")
	}
}

func TestEngineRetainedFloor(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.Drain()
	rem2 := ids.ClusterID{Site: 2, Seq: 4}
	e.EdgeUp(cA, rem, true, cB, 7)  // assert seq 1
	e.EdgeUp(cA, rem2, true, cB, 8) // assert seq 2
	if floor, any := e.RetainedFloor(2, StreamAssert); !any || floor != 1 {
		t.Fatalf("floor = %d/%v, want 1/true", floor, any)
	}
	// Retiring the older row through another path (edge destruction)
	// moves the floor up: the receiver may skip the dead gap.
	e.EdgeDown(cA, rem)
	e.Drain()
	if floor, any := e.RetainedFloor(2, StreamAssert); !any || floor != 2 {
		t.Fatalf("floor after retire = %d/%v, want 2/true", floor, any)
	}
	if _, any := e.RetainedFloor(3, StreamAssert); any {
		t.Error("floor reported for a peer with nothing retained")
	}
	_ = fs
}

func TestEngineSettledBufferedFrameNotEvicted(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	// A tracked destroy for a pre-registration target settles on
	// buffering: the sender retires its bundle on the resulting ack, so
	// nothing would ever re-derive the frame if it were evicted. Its
	// bundled hint (seq 9, above the expiry bound below) marks whether
	// it survived the buffer.
	e.HandleDestroyFrame(cA, rem, DestroyMsg{
		Auth:  vclock.Vector{r1: vclock.At(1), rem: vclock.Eps(1)},
		Hints: vclock.Vector{cB: vclock.At(9)},
	}, 3, false)
	if len(fs.settles) != 1 {
		t.Fatalf("settles = %+v, want the buffered tracked destroy", fs.settles)
	}
	// Untracked (re-derivable) destroys fill the rest of the buffer.
	for i := 0; i < 63; i++ {
		e.HandleDestroy(cA, rem, DestroyMsg{Auth: vclock.Vector{
			r1:  vclock.At(1),
			rem: vclock.Eps(uint64(i + 2)),
		}})
	}
	// A local sole-carrier expiry needs room: it must displace an
	// UN-settled destroy, never the settled frame.
	e.Register(cB)
	e.ResolveIntroduction(cB, cA, rem, 5)
	e.Register(cA)
	e.HandleCreate(cA, rem, 1)
	e.Drain()
	if !e.Registered(cA) {
		t.Fatal("cA not live after create")
	}
	if got := e.Stats().HintsExpired; got != 1 {
		t.Errorf("expiry lost: HintsExpired = %d, want 1", got)
	}
	if !e.LogSnapshot(cA).Hints().Has(cB) {
		t.Fatal("settled buffered frame evicted: its armed hint is gone (the sender retired the bundle — nothing re-derives it)")
	}
}
