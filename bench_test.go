// Package causalgc's top-level benchmarks regenerate the quantitative
// content of every experiment in EXPERIMENTS.md (one benchmark per table
// or figure of the paper's evaluation material). Message counts — the
// paper's §4 comparison metric — are reported as custom benchmark units:
//
//	go test -bench=. -benchmem
//
// The cmd/causalgc-bench binary prints the same data as tables.
package causalgc

import (
	"fmt"
	"testing"
	"time"

	"causalgc/internal/baseline/schelvis"
	"causalgc/internal/baseline/tracing"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
	"causalgc/internal/wire"
	"causalgc/persist"
)

// BenchmarkE5PaperScenario regenerates Fig 8: building the Fig 3 cycle,
// dropping the root edge, and collecting the three-site garbage cycle.
func BenchmarkE5PaperScenario(b *testing.B) {
	var msgs, destroys, props int
	for i := 0; i < b.N; i++ {
		w := sim.NewWorld(4, netsim.Faults{Seed: 1}, site.DefaultOptions())
		sc, err := mutator.BuildPaperScenario(w)
		if err != nil {
			b.Fatal(err)
		}
		st := w.Net().Stats()
		base := st.TotalSent()
		if err := sc.DropRootEdge(); err != nil {
			b.Fatal(err)
		}
		if err := w.Settle(); err != nil {
			b.Fatal(err)
		}
		if rep := w.Check(); !rep.Clean() {
			b.Fatalf("scenario not clean: %v", rep)
		}
		msgs += st.TotalSent() - base
		destroys += st.Sent("ggd.destroy")
		props += st.Sent("ggd.prop")
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(destroys)/float64(b.N), "destroys/op")
	b.ReportMetric(float64(props)/float64(b.N), "props/op")
}

// benchDLLCausal measures GGD messages to collect a detached k-element
// doubly-linked list. With unsafeGuard the paper's literal removal test is
// used (no row-confirmation requirement): it reproduces the §4 O(k) claim,
// but the A2 ablation shows that guard is unsound under third-party
// introduction races; the sound guard needs all-pairs knowledge inside the
// mutually-cyclic garbage subgraph and costs O(k²) messages on DLLs
// (EXPERIMENTS.md discusses the trade-off).
func benchDLLCausal(b *testing.B, k int, unsafeGuard bool) {
	var msgs int
	for i := 0; i < b.N; i++ {
		opts := site.DefaultOptions()
		opts.Engine.UnsafeSkipConfirmation = unsafeGuard
		w := sim.NewWorld(k+1, netsim.Faults{Seed: 1}, opts)
		dll, err := mutator.BuildDLL(w, k)
		if err != nil {
			b.Fatal(err)
		}
		st := w.Net().Stats()
		base := st.TotalSent()
		if err := dll.Detach(); err != nil {
			b.Fatal(err)
		}
		if err := w.Settle(); err != nil {
			b.Fatal(err)
		}
		if rep := w.Check(); !rep.Clean() {
			b.Fatalf("k=%d not clean: %v", k, rep)
		}
		msgs += st.TotalSent() - base
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(msgs)/float64(b.N)/float64(k), "msgs/elem")
}

// benchDLLSchelvis measures the same workload under the §4 comparison
// algorithm.
func benchDLLSchelvis(b *testing.B, k int) {
	var msgs int
	for i := 0; i < b.N; i++ {
		net := netsim.NewSim(netsim.Faults{Seed: 1})
		dets := make([]*schelvis.Detector, k+1)
		for j := 0; j <= k; j++ {
			dets[j] = schelvis.New(ids.SiteID(j+1), net, k+2, nil)
		}
		root := ids.ClusterID{Site: 1, Seq: 1, Root: true}
		dets[0].AddVertex(root)
		elems := make([]ids.ClusterID, k)
		for j := 0; j < k; j++ {
			elems[j] = ids.ClusterID{Site: ids.SiteID(j + 2), Seq: 1}
			dets[j+1].AddVertex(elems[j])
			dets[0].CreateEdge(root, elems[j])
		}
		for j := 0; j+1 < k; j++ {
			dets[j+1].CreateEdge(elems[j], elems[j+1])
			dets[j+2].CreateEdge(elems[j+1], elems[j])
		}
		if _, err := net.Run(0); err != nil {
			b.Fatal(err)
		}
		for _, d := range dets {
			d.Kick()
		}
		if _, err := net.Run(0); err != nil {
			b.Fatal(err)
		}
		base := net.Stats().TotalSent()
		for _, e := range elems {
			dets[0].DestroyEdge(root, e)
		}
		if _, err := net.Run(0); err != nil {
			b.Fatal(err)
		}
		removed := 0
		for _, d := range dets {
			removed += d.Removed()
		}
		if removed != k {
			b.Fatalf("schelvis collected %d of %d", removed, k)
		}
		msgs += net.Stats().TotalSent() - base
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(msgs)/float64(b.N)/float64(k), "msgs/elem")
}

// BenchmarkE6DLL regenerates the §4 table: messages to collect a detached
// doubly-linked list of k elements — O(k) for the causal algorithm, O(k²)
// for Schelvis. The msgs/elem unit makes the contrast immediate: flat for
// causalgc, growing ∝k for Schelvis.
func BenchmarkE6DLL(b *testing.B) {
	for _, k := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("causal-paper-guard/k=%d", k), func(b *testing.B) { benchDLLCausal(b, k, true) })
		b.Run(fmt.Sprintf("causal-sound/k=%d", k), func(b *testing.B) { benchDLLCausal(b, k, false) })
		b.Run(fmt.Sprintf("schelvis/k=%d", k), func(b *testing.B) { benchDLLSchelvis(b, k) })
	}
}

// BenchmarkE6Ring is the pure-cycle variant: a unidirectional k-ring.
func BenchmarkE6Ring(b *testing.B) {
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("causal/k=%d", k), func(b *testing.B) {
			var msgs int
			for i := 0; i < b.N; i++ {
				w := sim.NewWorld(k+1, netsim.Faults{Seed: 1}, site.DefaultOptions())
				ring, err := mutator.BuildRing(w, k)
				if err != nil {
					b.Fatal(err)
				}
				st := w.Net().Stats()
				base := st.TotalSent()
				if err := ring.DetachRing(); err != nil {
					b.Fatal(err)
				}
				if err := w.Settle(); err != nil {
					b.Fatal(err)
				}
				if rep := w.Check(); !rep.Clean() {
					b.Fatalf("ring k=%d not clean: %v", k, rep)
				}
				msgs += st.TotalSent() - base
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
			b.ReportMetric(float64(msgs)/float64(b.N)/float64(k), "msgs/elem")
		})
	}
}

// BenchmarkE7TracingVsCausal regenerates the §1/§2.4 contrast: graph
// tracing pays per LIVE object every iteration (plus the consensus
// round); the causal GGD pays per GARBAGE object and involves only the
// sites that host it. The workload keeps `live` remote objects alive and
// makes `garbage` remote objects unreachable.
func BenchmarkE7TracingVsCausal(b *testing.B) {
	shapes := []struct{ live, garbage int }{
		{live: 50, garbage: 5},
		{live: 100, garbage: 5},
		{live: 200, garbage: 5},
		{live: 50, garbage: 50},
	}
	for _, sh := range shapes {
		name := fmt.Sprintf("live=%d/garbage=%d", sh.live, sh.garbage)
		b.Run("tracing/"+name, func(b *testing.B) {
			var msgs int
			for i := 0; i < b.N; i++ {
				// Tracing world: the causal GGD never sweeps (AutoCollect
				// off, no Collect calls), so the tracer is the detector.
				w, drop := buildE7World(b, sh.live, sh.garbage, site.Options{AutoCollect: false})
				col := tracing.New(w.Sites(), w.Net())
				st := w.Net().Stats()
				drop()
				drive := func() {
					if err := w.Run(); err != nil {
						b.Fatal(err)
					}
				}
				drive()
				if g := col.RunEpoch(drive); len(g) < sh.garbage {
					b.Fatalf("tracing found %d, want >= %d", len(g), sh.garbage)
				}
				// Only the tracer's own traffic counts.
				msgs += st.Sent("trace.mark") + st.Sent("trace.start") + st.Sent("trace.ack")
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
		})
		b.Run("causal/"+name, func(b *testing.B) {
			var msgs int
			for i := 0; i < b.N; i++ {
				w, drop := buildE7World(b, sh.live, sh.garbage, site.DefaultOptions())
				st := w.Net().Stats()
				base := st.TotalSent()
				drop() // make the garbage subgraph unreachable
				if err := w.Settle(); err != nil {
					b.Fatal(err)
				}
				if rep := w.Check(); !rep.Clean() {
					b.Fatalf("causal not clean: %v", rep)
				}
				msgs += st.TotalSent() - base
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
		})
	}
}

// buildE7World creates 6 sites with `live` remote objects held by roots
// and a `garbage`-sized remote chain behind a single root edge; the
// returned func drops that edge.
func buildE7World(b *testing.B, live, garbage int, opts site.Options) (*sim.World, func()) {
	b.Helper()
	w := sim.NewWorld(6, netsim.Faults{Seed: 1}, opts)
	s1 := w.Site(1)
	for i := 0; i < live; i++ {
		if _, err := s1.NewRemote(s1.Root().Obj, ids.SiteID(2+i%5)); err != nil {
			b.Fatal(err)
		}
	}
	// Garbage chain: root → g0 → g1 → ... across sites, detachable by
	// dropping the single root edge to g0.
	prevObj := s1.Root().Obj
	prevSite := s1
	headDrop := func() {}
	for i := 0; i < garbage; i++ {
		ref, err := prevSite.NewRemote(prevObj, ids.SiteID(2+i%5))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r := ref
			headDrop = func() {
				if err := s1.DropRefs(s1.Root().Obj, r); err != nil {
					b.Fatal(err)
				}
			}
		}
		// Deliver the creation before chaining from the new object.
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
		prevObj = ref.Obj
		prevSite = w.Site(ref.Obj.Site)
	}
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
	return w, headDrop
}

// BenchmarkE8Robustness regenerates the §1/§5 robustness claims: under
// message loss the causal GGD never violates safety; loss only leaves
// residual garbage, which refresh rounds re-detect once the network
// heals. Reported: residual garbage after a lossy run, and after
// recovery.
func BenchmarkE8Robustness(b *testing.B) {
	for _, drop := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("drop=%.1f", drop), func(b *testing.B) {
			var residual, recovered, dangling int
			for i := 0; i < b.N; i++ {
				w := sim.NewWorld(5, netsim.Faults{Seed: int64(i + 1), DropProb: drop, Reorder: true}, site.DefaultOptions())
				if _, err := mutator.Churn(w, mutator.ChurnConfig{Seed: int64(i+1) * 17, Ops: 150, StepsBetweenOps: 2}); err != nil {
					b.Fatal(err)
				}
				if err := w.Settle(); err != nil {
					b.Fatal(err)
				}
				rep := w.Check()
				dangling += len(rep.Dangling)
				residual += len(rep.Garbage)
				w.Net().SetDropProb(0)
				for r := 0; r < 4; r++ {
					if err := w.RefreshAll(); err != nil {
						b.Fatal(err)
					}
					if err := w.Settle(); err != nil {
						b.Fatal(err)
					}
				}
				rep = w.Check()
				dangling += len(rep.Dangling)
				recovered += len(rep.Garbage)
			}
			b.ReportMetric(float64(residual)/float64(b.N), "residual/op")
			b.ReportMetric(float64(recovered)/float64(b.N), "afterRefresh/op")
			b.ReportMetric(float64(dangling)/float64(b.N), "unsafe/op")
		})
	}
}

// BenchmarkWALAppend measures the durability overhead of one journaled
// event: encode a representative WAL record and append it to the
// segmented log — per-record fsync, group-commit windows (the fsync is
// batched across the op stream; see persist.Options.GroupCommit and
// causalgc.WithGroupCommit), and no fsync. This is the per-operation
// price every durable mutator op and delivery pays (DESIGN.md §5);
// group commit recovers most of the nosync throughput while bounding
// the OS-crash exposure to one window.
func BenchmarkWALAppend(b *testing.B) {
	rec := &wire.WALRecord{Op: &wire.OpRecord{
		Kind:   wire.OpSendRef,
		Holder: ids.ObjectID{Site: 1, Seq: 7},
		To:     heap.Ref{Obj: ids.ObjectID{Site: 2, Seq: 3}, Cluster: ids.ClusterID{Site: 2, Seq: 3}},
		Target: heap.Ref{Obj: ids.ObjectID{Site: 3, Seq: 9}, Cluster: ids.ClusterID{Site: 3, Seq: 9}},
	}}
	for _, mode := range []struct {
		name  string
		store persist.Options
	}{
		{"fsync", persist.Options{}},
		{"group=1ms", persist.Options{GroupCommit: time.Millisecond}},
		{"group=10ms", persist.Options{GroupCommit: 10 * time.Millisecond}},
		{"nosync", persist.Options{NoSync: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p, err := site.OpenPersist(b.TempDir(), site.PersistOptions{
				SnapshotEvery: 1 << 30,
				Store:         mode.store,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := p.Store().Stats()
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "syncs/append")
			}
		})
	}
}

// benchNode builds a bench node: durable nodes journal with per-record
// fsync (the default durability contract) and a snapshot cadence large
// enough that the measurement isolates the commit path itself.
func benchNode(b *testing.B, durable bool) *Node {
	b.Helper()
	opts := []Option{}
	if durable {
		opts = append(opts, WithPersistence(b.TempDir()), WithSnapshotEvery(1<<20))
	}
	n := NewNode(1, opts...)
	b.Cleanup(func() { n.Close() })
	return n
}

// benchBatchSize is the group size of the batch benchmarks: half
// creates, half drops, so the heap stays bounded and every iteration
// does identical work.
const benchBatchSize = 64

// BenchmarkBatchCommit measures the batched mutator path: one commit
// of 64 ops (32 NewLocal + 32 DropRefs, deferred refs) per iteration —
// one lock acquisition, one WAL append, one fsync. Compare against
// BenchmarkSingletonOps, which performs the identical op stream one
// commit per op; the durable variants quantify the headline win (the
// per-op fsync collapses into one per group).
func BenchmarkBatchCommit(b *testing.B) {
	for _, mode := range []struct {
		name    string
		durable bool
	}{{"durable", true}, {"inmemory", false}} {
		b.Run(fmt.Sprintf("%s/size=%d", mode.name, benchBatchSize), func(b *testing.B) {
			n := benchNode(b, mode.durable)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt := n.Batch()
				created := make([]*BatchRef, benchBatchSize/2)
				for j := range created {
					created[j] = bt.NewLocal(bt.Root())
				}
				for _, c := range created {
					bt.DropRefs(bt.Root(), c)
				}
				if err := bt.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportOpsPerSec(b, benchBatchSize)
		})
	}
}

// BenchmarkSingletonOps is the per-op baseline of BenchmarkBatchCommit:
// the same 64-op stream issued through the singleton Node methods.
func BenchmarkSingletonOps(b *testing.B) {
	for _, mode := range []struct {
		name    string
		durable bool
	}{{"durable", true}, {"inmemory", false}} {
		b.Run(fmt.Sprintf("%s/size=%d", mode.name, benchBatchSize), func(b *testing.B) {
			n := benchNode(b, mode.durable)
			root := n.Root().Obj
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				created := make([]Ref, benchBatchSize/2)
				for j := range created {
					ref, err := n.NewLocal(root)
					if err != nil {
						b.Fatal(err)
					}
					created[j] = ref
				}
				for _, ref := range created {
					if err := n.DropRefs(root, ref); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			reportOpsPerSec(b, benchBatchSize)
		})
	}
}

// BenchmarkParallelCommit is the lock-striping headline: concurrent
// mutators commit against a single node whose engine is striped over 1,
// 4 and 8 lock shards (WithShards). Each worker anchors its own cluster
// — round-robin placement spreads the anchors across shards — and then
// extends a chain inside that cluster, so every commit is a genuine
// create on the worker's own shard and the only shared state is the
// identity mint. On a multi-core runner throughput scales near-linearly
// with the stripe width; at shards=1 every worker serialises on the one
// site lock (the pre-striping behaviour). cmd/causalgc-bench
// -parallel-json emits the same measurement as BENCH_parallel.json and
// the CI lane enforces the 8-shard ≥ 3x 1-shard floor on 8-core
// runners.
func BenchmarkParallelCommit(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			n := NewNode(1, WithShards(shards))
			defer n.Close()
			root := n.Root().Obj
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				anchor, err := n.NewLocal(root)
				if err != nil {
					b.Error(err)
					return
				}
				cur := anchor.Obj
				for pb.Next() {
					ref, err := n.NewLocalIn(cur, anchor.Cluster)
					if err != nil {
						b.Error(err)
						return
					}
					cur = ref.Obj
				}
			})
			b.StopTimer()
			reportOpsPerSec(b, 1)
		})
	}
}

// reportOpsPerSec reports mutator throughput for a benchmark whose
// iterations each perform opsPerIter operations.
func reportOpsPerSec(b *testing.B, opsPerIter int) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*opsPerIter)/sec, "ops/sec")
	}
}

// BenchmarkRecovery measures crash recovery: reconstruct a site from
// its snapshot-free WAL of k journaled operations (the worst case —
// every record replays).
func BenchmarkRecovery(b *testing.B) {
	for _, k := range []int{256, 1024} {
		b.Run(fmt.Sprintf("records=%d", k), func(b *testing.B) {
			dir := b.TempDir()
			opts := site.DefaultOptions()
			popts := site.PersistOptions{SnapshotEvery: 1 << 30, Store: persist.Options{NoSync: true}}
			p, err := site.OpenPersist(dir, popts)
			if err != nil {
				b.Fatal(err)
			}
			s1, err := site.Recover(1, netsim.NewSim(netsim.Faults{Seed: 1}), opts, p)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if _, err := s1.NewLocal(s1.Root().Obj); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr, err := site.OpenPersist(dir, popts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := site.Recover(1, netsim.NewSim(netsim.Faults{Seed: 1}), opts, pr); err != nil {
					b.Fatal(err)
				}
				pr.Close()
			}
			b.ReportMetric(float64(k), "records/op")
		})
	}
}

// BenchmarkA2UnsafeGuard quantifies why the row-confirmation guard (and
// the hint mechanism) exist: with the paper's literal removal test the
// randomised workloads produce dangling references (live objects
// collected); the sound configuration never does.
func BenchmarkA2UnsafeGuard(b *testing.B) {
	run := func(b *testing.B, opts site.Options) (dangling int) {
		for i := 0; i < b.N; i++ {
			for seed := int64(1); seed <= 10; seed++ {
				w := sim.NewWorld(6, netsim.Faults{Seed: seed}, opts)
				if _, err := mutator.Churn(w, mutator.ChurnConfig{Seed: seed * 7, Ops: 150, StepsBetweenOps: 3}); err != nil {
					b.Fatal(err)
				}
				if err := w.Settle(); err != nil {
					b.Fatal(err)
				}
				dangling += len(w.Check().Dangling)
			}
		}
		return dangling
	}
	b.Run("sound", func(b *testing.B) {
		d := run(b, site.DefaultOptions())
		b.ReportMetric(float64(d)/float64(b.N), "dangling/op")
	})
	b.Run("paper-guard", func(b *testing.B) {
		opts := site.DefaultOptions()
		opts.Engine.UnsafeSkipConfirmation = true
		opts.Engine.UnsafeNoHints = true
		d := run(b, opts)
		b.ReportMetric(float64(d)/float64(b.N), "dangling/op")
	})
}
