// Package determpkg seeds determcheck violations and compliant forms.
package determpkg

import (
	"math/rand"
	"sort"
	"time"

	wall "time"
)

type out struct{}

func (out) Send(p interface{}) {}

func clock() time.Time {
	return time.Now() // want "wall-clock read time.Now in a deterministic package"
}

func auditedClock() time.Time {
	return time.Now() //causalgc:allow-wallclock monitor timestamp, display only — never replayed
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want "wall-clock read time.Since in a deterministic package"
}

func aliasedClock() wall.Time {
	return wall.Now() // want "wall-clock read wall.Now in a deterministic package"
}

func sleepOK() {
	time.Sleep(time.Millisecond)
}

func draw() int {
	return rand.Int() // want "rand.Int draws from the global rand source"
}

func auditedDraw() int {
	return rand.Int() //causalgc:allow-rand jitter for a backoff that feeds no replayed state
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func seededDraw(rng *rand.Rand) int {
	return rng.Intn(10)
}

func fanoutBad(o out, peers map[int]string) {
	for p := range peers {
		o.Send(p) // want "Send inside a map iteration emits in nondeterministic order"
	}
}

func fanoutAudited(o out, peers map[int]string) {
	for p := range peers {
		o.Send(p) //causalgc:allow-maporder receiver is order-insensitive: a counter sink
	}
}

func fanoutGood(o out, peers map[int]string) {
	keys := make([]int, 0, len(peers))
	for k := range peers {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		o.Send(k)
	}
}
