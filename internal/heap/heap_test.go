package heap

import (
	"testing"

	"causalgc/internal/ids"
)

// recorder captures hook invocations.
type recorder struct {
	ups   []edgeEvent
	downs []edgeEvent
}

type edgeEvent struct {
	holder, target ids.ClusterID
	first          bool
}

func (r *recorder) EdgeUp(h, t ids.ClusterID, first bool, _ ids.ClusterID, _ uint64) {
	r.ups = append(r.ups, edgeEvent{holder: h, target: t, first: first})
}

func (r *recorder) EdgeDown(h, t ids.ClusterID) {
	r.downs = append(r.downs, edgeEvent{holder: h, target: t})
}

var _ Hooks = (*recorder)(nil)

func newHeap(t *testing.T) (*Heap, *recorder) {
	t.Helper()
	rec := &recorder{}
	return New(1, rec), rec
}

func TestHeapRootSetup(t *testing.T) {
	h, _ := newHeap(t)
	if !h.RootCluster().IsRoot() {
		t.Error("root cluster must carry the actual-root flag")
	}
	if h.RootObject() == ids.NoObject {
		t.Error("root object must exist")
	}
	if h.NumObjects() != 1 {
		t.Errorf("NumObjects = %d, want 1", h.NumObjects())
	}
	if got := h.RootRef(); got.Obj != h.RootObject() || got.Cluster != h.RootCluster() {
		t.Errorf("RootRef = %v", got)
	}
}

func TestHeapNewObjectAndSlots(t *testing.T) {
	h, _ := newHeap(t)
	o := h.NewObject(h.NewCluster())
	if h.Object(o.ID()) != o {
		t.Fatal("Object lookup failed")
	}
	ref := Ref{Obj: o.ID(), Cluster: o.Cluster()}
	idx, err := h.AddRef(h.RootObject(), ref)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Object(h.RootObject())
	if root.Slot(idx) != ref {
		t.Errorf("Slot(%d) = %v, want %v", idx, root.Slot(idx), ref)
	}
	if root.Slot(99) != NilRef || root.Slot(-1) != NilRef {
		t.Error("out-of-range Slot must be NilRef")
	}
	if root.NumSlots() != 1 {
		t.Errorf("NumSlots = %d", root.NumSlots())
	}
	slots := root.Slots()
	slots[0] = NilRef // must not alias
	if root.Slot(idx) != ref {
		t.Error("Slots() must copy")
	}
}

func TestHeapEdgeAccounting(t *testing.T) {
	h, rec := newHeap(t)
	o := h.NewObject(h.NewCluster())
	ref := Ref{Obj: o.ID(), Cluster: o.Cluster()}
	rootCl := h.RootCluster()

	if _, err := h.AddRef(h.RootObject(), ref); err != nil {
		t.Fatal(err)
	}
	if got := h.EdgeCount(rootCl, o.Cluster()); got != 1 {
		t.Errorf("EdgeCount = %d, want 1", got)
	}
	if len(rec.ups) != 1 || !rec.ups[0].first {
		t.Fatalf("ups = %+v, want one first=true", rec.ups)
	}
	// Second slot: count 2, EdgeUp with first=false.
	if _, err := h.AddRef(h.RootObject(), ref); err != nil {
		t.Fatal(err)
	}
	if got := h.EdgeCount(rootCl, o.Cluster()); got != 2 {
		t.Errorf("EdgeCount = %d, want 2", got)
	}
	if len(rec.ups) != 2 || rec.ups[1].first {
		t.Fatalf("ups = %+v, want second first=false", rec.ups)
	}
	// Drop both: EdgeDown fires once, at the last drop.
	if err := h.DropRefs(h.RootObject(), o.ID()); err != nil {
		t.Fatal(err)
	}
	if got := h.EdgeCount(rootCl, o.Cluster()); got != 0 {
		t.Errorf("EdgeCount = %d, want 0", got)
	}
	if len(rec.downs) != 1 {
		t.Fatalf("downs = %+v, want exactly one", rec.downs)
	}
	out := h.OutEdges(rootCl)
	if len(out) != 0 {
		t.Errorf("OutEdges = %v, want none", out)
	}
}

func TestHeapIntraClusterRefsNotEdges(t *testing.T) {
	h, rec := newHeap(t)
	cl := h.NewCluster()
	a := h.NewObject(cl)
	b := h.NewObject(cl)
	if _, err := h.AddRef(a.ID(), Ref{Obj: b.ID(), Cluster: cl}); err != nil {
		t.Fatal(err)
	}
	if len(rec.ups) != 0 {
		t.Errorf("intra-cluster reference fired EdgeUp: %+v", rec.ups)
	}
	if got := h.EdgeCount(cl, cl); got != 0 {
		t.Errorf("self-edge count = %d", got)
	}
}

func TestHeapLocalInterClusterMarksEntry(t *testing.T) {
	h, _ := newHeap(t)
	cl := h.NewCluster()
	o := h.NewObject(cl)
	// Referencing o from the root cluster makes o a global root of cl.
	if _, err := h.AddRef(h.RootObject(), Ref{Obj: o.ID(), Cluster: cl}); err != nil {
		t.Fatal(err)
	}
	entries := h.Entries(cl)
	if len(entries) != 1 || entries[0] != o.ID() {
		t.Errorf("Entries = %v, want [%v]", entries, o.ID())
	}
}

func TestHeapSetSlotGrowsAndSwaps(t *testing.T) {
	h, rec := newHeap(t)
	a := h.NewObject(h.NewCluster())
	b := h.NewObject(h.NewCluster())
	refA := Ref{Obj: a.ID(), Cluster: a.Cluster()}
	refB := Ref{Obj: b.ID(), Cluster: b.Cluster()}

	if err := h.SetSlot(h.RootObject(), 3, refA); err != nil {
		t.Fatal(err)
	}
	root := h.Object(h.RootObject())
	if root.NumSlots() != 4 {
		t.Errorf("NumSlots = %d, want 4 (grown)", root.NumSlots())
	}
	// Overwrite: drops refA's edge, creates refB's.
	if err := h.SetSlot(h.RootObject(), 3, refB); err != nil {
		t.Fatal(err)
	}
	if h.EdgeCount(h.RootCluster(), a.Cluster()) != 0 {
		t.Error("old edge not dropped")
	}
	if h.EdgeCount(h.RootCluster(), b.Cluster()) != 1 {
		t.Error("new edge not created")
	}
	if len(rec.downs) != 1 {
		t.Errorf("downs = %+v", rec.downs)
	}
	if err := h.ClearSlot(h.RootObject(), 3); err != nil {
		t.Fatal(err)
	}
	if h.EdgeCount(h.RootCluster(), b.Cluster()) != 0 {
		t.Error("ClearSlot did not drop the edge")
	}
	if err := h.SetSlot(h.RootObject(), -1, refA); err == nil {
		t.Error("negative index must error")
	}
}

func TestHeapErrors(t *testing.T) {
	h, _ := newHeap(t)
	ghost := ids.ObjectID{Site: 1, Seq: 999}
	if _, err := h.AddRef(ghost, h.RootRef()); err == nil {
		t.Error("AddRef unknown holder must error")
	}
	if _, err := h.AddRef(h.RootObject(), NilRef); err == nil {
		t.Error("AddRef nil ref must error")
	}
	if err := h.SetSlot(ghost, 0, NilRef); err == nil {
		t.Error("SetSlot unknown holder must error")
	}
	if err := h.DropRefs(ghost, ghost); err == nil {
		t.Error("DropRefs unknown holder must error")
	}
	if err := h.MarkEntry(ghost); err == nil {
		t.Error("MarkEntry unknown object must error")
	}
	foreign := ids.ClusterID{Site: 9, Seq: 1}
	if _, err := h.NewObjectAt(ids.ObjectID{Site: 9, Seq: 1}, foreign); err == nil {
		t.Error("NewObjectAt foreign identity must error")
	}
	if err := h.RemoveCluster(foreign); err == nil {
		t.Error("RemoveCluster unknown cluster must error")
	}
	if err := h.RemoveCluster(h.RootCluster()); err == nil {
		t.Error("RemoveCluster on the root cluster must error")
	}
}

func TestHeapNewObjectAtIdempotence(t *testing.T) {
	h, _ := newHeap(t)
	id := ids.ObjectID{Site: 1, Seq: 500}
	cl := ids.ClusterID{Site: 1, Seq: 500}
	if _, err := h.NewObjectAt(id, cl); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewObjectAt(id, cl); err == nil {
		t.Error("duplicate NewObjectAt must error")
	}
}

func TestCollectSweepsUnreachable(t *testing.T) {
	h, rec := newHeap(t)
	// root → a → b, plus orphan c.
	a := h.NewObject(h.NewCluster())
	b := h.NewObject(h.NewCluster())
	c := h.NewObject(h.NewCluster())
	refA := Ref{Obj: a.ID(), Cluster: a.Cluster()}
	refB := Ref{Obj: b.ID(), Cluster: b.Cluster()}
	if _, err := h.AddRef(h.RootObject(), refA); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddRef(a.ID(), refB); err != nil {
		t.Fatal(err)
	}

	stats := h.Collect()
	if stats.Swept != 1 {
		t.Errorf("Swept = %d, want 1 (orphan c)", stats.Swept)
	}
	if h.Object(c.ID()) != nil {
		t.Error("orphan survived")
	}
	if h.Object(a.ID()) == nil || h.Object(b.ID()) == nil {
		t.Error("reachable object swept")
	}

	// Drop root→a. a and b were marked as entries of their clusters by
	// the inter-cluster references, so the heap alone keeps them: entries
	// are conservative roots until GGD removes the cluster (§2.1).
	if err := h.DropRefs(h.RootObject(), a.ID()); err != nil {
		t.Fatal(err)
	}
	if stats := h.Collect(); stats.Swept != 0 {
		t.Errorf("entries swept without GGD verdict: %+v", stats)
	}

	// GGD removes a's cluster: the sweep reclaims a. The engine already
	// shipped a's edge destructions at removal time, so the sweep
	// suppresses duplicate EdgeDown notifications for the removed
	// cluster's slots.
	if err := h.RemoveCluster(a.Cluster()); err != nil {
		t.Fatal(err)
	}
	rec.downs = nil
	if stats := h.Collect(); stats.Swept != 1 {
		t.Errorf("Swept = %d, want 1 (a)", stats.Swept)
	}
	if len(rec.downs) != 0 {
		t.Errorf("sweep of a removed cluster emitted EdgeDowns: %+v", rec.downs)
	}
	if err := h.RemoveCluster(b.Cluster()); err != nil {
		t.Fatal(err)
	}
	if stats := h.Collect(); stats.Swept != 1 {
		t.Errorf("Swept = %d, want 1 (b)", stats.Swept)
	}
}

func TestCollectEntriesAreRoots(t *testing.T) {
	h, _ := newHeap(t)
	cl := h.NewCluster()
	o := h.NewObject(cl)
	if err := h.MarkEntry(o.ID()); err != nil {
		t.Fatal(err)
	}
	// No local path to o, but it is an entry (remotely referenced).
	if stats := h.Collect(); stats.Swept != 0 {
		t.Errorf("entry object swept: %+v", stats)
	}
	if !h.LocallyReachable(o.ID()) {
		t.Error("entry must be locally reachable (it is a root)")
	}

	// GGD removes the cluster: the entry table is cleared and the next
	// collection reclaims the object.
	if err := h.RemoveCluster(cl); err != nil {
		t.Fatal(err)
	}
	if !h.ClusterRemoved(cl) {
		t.Error("ClusterRemoved = false")
	}
	if stats := h.Collect(); stats.Swept != 1 {
		t.Errorf("Swept = %d, want 1 after removal", stats.Swept)
	}
	if h.Object(o.ID()) != nil {
		t.Error("object survived cluster removal + collect")
	}
}

func TestRemoveClusterSuppressesEdgeEvents(t *testing.T) {
	h, rec := newHeap(t)
	cl := h.NewCluster()
	o := h.NewObject(cl)
	if err := h.MarkEntry(o.ID()); err != nil {
		t.Fatal(err)
	}
	remote := Ref{Obj: ids.ObjectID{Site: 2, Seq: 1}, Cluster: ids.ClusterID{Site: 2, Seq: 1}}
	if _, err := h.AddRef(o.ID(), remote); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveCluster(cl); err != nil {
		t.Fatal(err)
	}
	// Idempotent while the shell exists.
	if err := h.RemoveCluster(cl); err != nil {
		t.Errorf("second RemoveCluster: %v", err)
	}
	rec.downs = nil
	h.Collect()
	// The engine already destroyed the removed cluster's edges; the sweep
	// must not emit duplicate EdgeDowns.
	if len(rec.downs) != 0 {
		t.Errorf("sweep of removed cluster emitted EdgeDowns: %+v", rec.downs)
	}
}

func TestLocallyReachable(t *testing.T) {
	h, _ := newHeap(t)
	a := h.NewObject(h.NewCluster())
	if h.LocallyReachable(a.ID()) {
		t.Error("unattached object reported reachable")
	}
	if _, err := h.AddRef(h.RootObject(), Ref{Obj: a.ID(), Cluster: a.Cluster()}); err != nil {
		t.Fatal(err)
	}
	if !h.LocallyReachable(a.ID()) {
		t.Error("attached object reported unreachable")
	}
}

func TestRefString(t *testing.T) {
	if NilRef.String() != "nil" {
		t.Errorf("NilRef.String() = %q", NilRef.String())
	}
	r := Ref{Obj: ids.ObjectID{Site: 2, Seq: 5}, Cluster: ids.ClusterID{Site: 2, Seq: 3}}
	if got, want := r.String(), "s2/o5@s2/c3"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestObjectsSnapshotSorted(t *testing.T) {
	h, _ := newHeap(t)
	h.NewObject(h.NewCluster())
	h.NewObject(h.NewCluster())
	objs := h.Objects()
	if len(objs) != 3 {
		t.Fatalf("Objects = %d, want 3", len(objs))
	}
	for i := 1; i < len(objs); i++ {
		if objs[i].ID().Less(objs[i-1].ID()) {
			t.Fatal("Objects not sorted")
		}
	}
	cls := h.Clusters()
	if len(cls) != 3 {
		t.Fatalf("Clusters = %v", cls)
	}
}
