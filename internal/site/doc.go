// Package site assembles one site of the distributed system: a heap, a
// local collector, a GGD engine and a network endpoint. Runtime is the
// API surface the public causalgc facade, the examples and the
// simulation harness program against — its methods are the mutator
// operations of the paper's model (§3.1): creating objects locally and
// remotely, copying references across sites (including third-party
// references), and destroying references.
//
// Runtime methods are safe for concurrent use; one mutex serialises the
// mutator, the network handler and the collector, which models the
// paper's per-site single mutator/collector interleaving.
//
// Beyond the mutator surface the runtime owns two protocol planes:
//
//   - Durability (persist.go, DESIGN.md §5): with a Journal attached,
//     every relevant event is written ahead to a WAL and the full site
//     image is snapshotted periodically; Recover reconstructs the site
//     and resumes the protocol.
//   - Acknowledged retirement (ack.go, DESIGN.md §3.2): the site
//     assigns retirement-stream sequences to every re-sendable frame,
//     tracks cumulative receive watermarks, emits FrameAck and
//     StreamAdvance, retains unacknowledged mutator frames in the
//     outbox (hard-capped as a counted backstop), and re-ships
//     damper-due state on Refresh. FrameStats and the optional
//     AckObserver expose the retirement activity — including the
//     tolerated loss the backstops used to swallow silently.
package site
