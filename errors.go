package causalgc

import (
	"errors"

	"causalgc/internal/heap"
	"causalgc/internal/site"
)

// ErrNodeClosed is returned by mutator and collection operations on a
// Node after Close: the node's persistence (if any) is closed and its
// site state is frozen. Match with errors.Is.
var ErrNodeClosed = errors.New("causalgc: node closed")

// ErrBadOption is returned (wrapped, naming the offending option and
// value) by Recover when an option carries a nonsensical value — a
// negative WithSnapshotEvery, WithGroupCommit, WithResendBackoff or
// WithMaxBatchFrames. NewNode and NewCluster panic with the same
// wrapped error value (their signatures predate option validation), so
// a recover() can still match it. Match with errors.Is.
var ErrBadOption = errors.New("causalgc: invalid option")

// ErrBatchCommitted is returned by Batch.Commit when the batch was
// already committed: a Batch is single-shot.
var ErrBatchCommitted = errors.New("causalgc: batch already committed")

// Sentinel errors returned (wrapped with site/object context) by Node
// operations. Match with errors.Is.
var (
	// ErrNoSuchObject: the operation names an object this node does not
	// have — never created here, or already reclaimed.
	ErrNoSuchObject = heap.ErrNoSuchObject
	// ErrNoSuchCluster: the operation names a cluster unknown to this
	// node.
	ErrNoSuchCluster = heap.ErrNoSuchCluster
	// ErrDuplicateObject: a minted identity already exists.
	ErrDuplicateObject = heap.ErrDuplicateObject
	// ErrForeignCluster: the operation requires a cluster owned by this
	// node but was given a remote one.
	ErrForeignCluster = heap.ErrForeignCluster
	// ErrClusterRemoved: the target cluster was already detected as
	// garbage and removed.
	ErrClusterRemoved = heap.ErrClusterRemoved
	// ErrNilRef: the operation was given an unset reference.
	ErrNilRef = heap.ErrNilRef
	// ErrBadSlot: slot index out of range.
	ErrBadSlot = heap.ErrBadSlot
	// ErrRootCluster: the operation is illegal on a node's root cluster.
	ErrRootCluster = heap.ErrRootCluster
	// ErrNotHolder: SendRef was asked to copy a reference the sending
	// object does not hold.
	ErrNotHolder = site.ErrNotHolder
	// ErrRemoteSelf: NewRemote was pointed at the caller's own site.
	ErrRemoteSelf = site.ErrRemoteSelf
	// ErrNoSite: NewRemote was pointed at the zero SiteID ("no site"),
	// which could never receive the creation.
	ErrNoSite = site.ErrNoSite
	// ErrBatchRef: a batch operation was given a nil *BatchRef, a ref
	// from another batch, or a deferred reference that does not name an
	// earlier create op of the same batch.
	ErrBatchRef = site.ErrBatchRef
)
