// Package schelvis implements the comparison algorithm of the paper's §4:
// Schelvis's "Incremental Distribution of Timestamp Packets" (OOPSLA'89),
// the only prior comprehensive GGD not based on whole-graph tracing.
//
// Schelvis's algorithm uses eager log-keeping — every change to the
// global root graph immediately triggers control traffic — and determines,
// for each global root, the potential existence of open paths from actual
// roots by repeatedly propagating time-stamp packets down the paths
// affected by a modification. Packets characterise reachability "via only
// one of the global roots adjacent to it" (§4): information travels one
// edge and one path at a time, with none of the vector merging/bundling of
// the paper's algorithm. The result is the distance-vector dynamics the
// paper criticises: on recursive structures with subcycles (doubly-linked
// lists), detaching k elements costs O(k²) messages, against O(k) for the
// causal-dependency algorithm (Experiment E6).
//
// The reproduction models each global root's reachability metric as a
// bounded hop-count from an actual root (timestamp packets carrying
// "potential path" evidence). Every recomputation that changes a vertex's
// metric eagerly sends one packet per outgoing edge. Vertices whose metric
// reaches the horizon (no potential path from any root) are garbage.
package schelvis

import (
	"fmt"

	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// DefaultHorizon bounds the reachability metric when the caller does not
// provide one: a vertex whose best known distance-to-root reaches the
// horizon has no potential open path and is garbage. The horizon plays
// the role of the timestamp bound in Schelvis's packets; it must exceed
// the longest simple root path, so harnesses set it to the vertex count
// plus one. The count-to-infinity convergence up to this bound is what
// makes detaching a k-element doubly-linked list cost O(k²) messages.
const DefaultHorizon = 1 << 10

// Packet is the timestamp packet: the sender's current metric, pushed
// eagerly along one edge of the global root graph.
type Packet struct {
	From, To ids.ClusterID
	Metric   int
}

// Kind implements netsim.Payload.
func (Packet) Kind() string { return "schelvis.packet" }

// ApproxSize implements netsim.Payload.
func (Packet) ApproxSize() int { return 32 }

// EdgeMsg is the eager log-keeping control message: the creation or
// destruction of an edge is reported to the target immediately (§2.3
// "an eager log-keeping mechanism attempts to immediately update the log
// maintained for the target object").
type EdgeMsg struct {
	From, To ids.ClusterID
	Up       bool
	Metric   int // sender's metric at creation time
}

// Kind implements netsim.Payload.
func (EdgeMsg) Kind() string { return "schelvis.edge" }

// ApproxSize implements netsim.Payload.
func (EdgeMsg) ApproxSize() int { return 33 }

// vertex is one global root's state.
type vertex struct {
	id ids.ClusterID
	// metric is the best known distance to an actual root (0 for roots).
	metric int
	// preds holds the last metric heard from each predecessor.
	preds map[ids.ClusterID]int
	succs ids.ClusterSet
	dead  bool
}

// Detector runs Schelvis-style detection for the vertices of one site.
type Detector struct {
	site     ids.SiteID
	net      netsim.Network
	horizon  int
	vertices map[ids.ClusterID]*vertex
	onRemove func(ids.ClusterID)
	removed  int
}

// New creates the per-site detector. horizon ≤ 0 selects DefaultHorizon;
// onRemove may be nil.
func New(site ids.SiteID, net netsim.Network, horizon int, onRemove func(ids.ClusterID)) *Detector {
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	d := &Detector{
		site:     site,
		net:      net,
		horizon:  horizon,
		vertices: make(map[ids.ClusterID]*vertex),
		onRemove: onRemove,
	}
	net.Register(site, d.handle)
	return d
}

// Removed returns the number of vertices detected as garbage.
func (d *Detector) Removed() int { return d.removed }

// IsDead reports whether the vertex was collected.
func (d *Detector) IsDead(id ids.ClusterID) bool {
	v, ok := d.vertices[id]
	return ok && v.dead
}

// AddVertex registers a local vertex (metric 0 for actual roots).
func (d *Detector) AddVertex(id ids.ClusterID) {
	if id.Site != d.site {
		panic(fmt.Sprintf("schelvis %v: foreign vertex %v", d.site, id))
	}
	if _, ok := d.vertices[id]; ok {
		return
	}
	m := d.horizon
	if id.IsRoot() {
		m = 0
	}
	d.vertices[id] = &vertex{
		id:     id,
		metric: m,
		preds:  make(map[ids.ClusterID]int),
		succs:  ids.NewClusterSet(),
	}
}

// CreateEdge records a new edge from local vertex u to vertex v, eagerly
// notifying v (the §2.3 eager log-keeping message).
func (d *Detector) CreateEdge(u, v ids.ClusterID) {
	vu, ok := d.vertices[u]
	if !ok || vu.dead {
		return
	}
	vu.succs.Add(v)
	d.send(EdgeMsg{From: u, To: v, Up: true, Metric: vu.metric})
}

// DestroyEdge records the destruction of the edge u→v.
func (d *Detector) DestroyEdge(u, v ids.ClusterID) {
	vu, ok := d.vertices[u]
	if !ok {
		return
	}
	vu.succs.Remove(v)
	d.send(EdgeMsg{From: u, To: v, Up: false})
}

func (d *Detector) send(p netsim.Payload) {
	var to ids.SiteID
	switch m := p.(type) {
	case EdgeMsg:
		to = m.To.Site
	case Packet:
		to = m.To.Site
	}
	d.net.Send(d.site, to, p)
}

// handle processes incoming packets and edge messages.
func (d *Detector) handle(_ ids.SiteID, p netsim.Payload) {
	switch m := p.(type) {
	case EdgeMsg:
		v, ok := d.vertices[m.To]
		if !ok || v.dead {
			return
		}
		if m.Up {
			v.preds[m.From] = m.Metric
		} else {
			delete(v.preds, m.From)
		}
		d.recompute(v)
	case Packet:
		v, ok := d.vertices[m.To]
		if !ok || v.dead {
			return
		}
		if _, known := v.preds[m.From]; !known {
			// Stale packet from a dropped edge.
			return
		}
		v.preds[m.From] = m.Metric
		d.recompute(v)
	}
}

// recompute re-derives the vertex's metric from its predecessors and
// eagerly pushes packets down every outgoing edge when it changed: the
// per-path, per-edge propagation that costs O(k²) on lists.
func (d *Detector) recompute(v *vertex) {
	if v.id.IsRoot() {
		return
	}
	best := d.horizon
	for _, m := range v.preds {
		if m+1 < best {
			best = m + 1
		}
	}
	if best == v.metric {
		return
	}
	v.metric = best
	if best >= d.horizon {
		d.remove(v)
		return
	}
	for _, s := range v.succs.Sorted() {
		d.send(Packet{From: v.id, To: s, Metric: v.metric})
	}
}

// remove collects a vertex: its outgoing edges are destroyed eagerly.
func (d *Detector) remove(v *vertex) {
	v.dead = true
	d.removed++
	for _, s := range v.succs.Sorted() {
		d.send(EdgeMsg{From: v.id, To: s, Up: false})
	}
	v.succs = ids.NewClusterSet()
	if d.onRemove != nil {
		d.onRemove(v.id)
	}
}

// Kick re-announces every local vertex's metric along its out-edges
// (used to start detection after building a structure quiescently).
func (d *Detector) Kick() {
	for _, v := range d.vertices {
		if v.dead {
			continue
		}
		for _, s := range v.succs.Sorted() {
			d.send(Packet{From: v.id, To: s, Metric: v.metric})
		}
	}
}
