package vclock

import (
	"sort"
	"strings"

	"causalgc/internal/ids"
)

// Vector is a sparse dependency vector: a map from process (cluster) to
// the stamp of the latest known log-keeping event of that process. Absent
// entries are the zero stamp. Vectors approximate the DDVs of §3.1 and,
// after transitive closure, the full vector times V(e) of §3.2.
type Vector map[ids.ClusterID]Stamp

// NewVector returns an empty vector.
func NewVector() Vector { return make(Vector) }

// Get returns the stamp for process q (Zero if absent).
func (v Vector) Get(q ids.ClusterID) Stamp { return v[q] }

// Set records the stamp for process q, deleting zero stamps to keep the
// representation canonical (so reflect-free equality via Equal works).
func (v Vector) Set(q ids.ClusterID, s Stamp) {
	if s == Zero {
		delete(v, q)
		return
	}
	v[q] = s
}

// MergeEntry merges s into column q with Stamp.Merge and reports whether
// the column changed.
func (v Vector) MergeEntry(q ids.ClusterID, s Stamp) bool {
	old := v[q]
	m := old.Merge(s)
	if m == old {
		return false
	}
	v[q] = m
	return true
}

// JoinPathEntry merges s into column q with Stamp.JoinPath and reports
// whether the column changed.
func (v Vector) JoinPathEntry(q ids.ClusterID, s Stamp) bool {
	old := v[q]
	m := old.JoinPath(s)
	if m == old {
		return false
	}
	v[q] = m
	return true
}

// MergeAll merges every entry of o into v (Stamp.Merge per column) and
// reports whether anything changed. This is the "for all k: DV[m][k] =
// max(DV[m][k], v[k])" loop of the paper's Receive procedure.
func (v Vector) MergeAll(o Vector) bool {
	changed := false
	for q, s := range o {
		if v.MergeEntry(q, s) {
			changed = true
		}
	}
	return changed
}

// Equal reports canonical equality (absent == zero stamp).
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		// Canonical representations never store zero stamps, but be
		// defensive: compare semantically.
		return v.semanticEqual(o)
	}
	for q, s := range v {
		if o[q] != s {
			return false
		}
	}
	return true
}

func (v Vector) semanticEqual(o Vector) bool {
	for q, s := range v {
		if o.Get(q) != s {
			return false
		}
	}
	for q, s := range o {
		if v.Get(q) != s {
			return false
		}
	}
	return true
}

// LEq reports v ≤ o in the Schwarz–Mattern partial order (§3.2), comparing
// stamps with the Less/Merge order per column.
func (v Vector) LEq(o Vector) bool {
	for q, s := range v {
		os := o.Get(q)
		if os.Less(s) {
			return false
		}
	}
	return true
}

// Before reports v < o: v ≤ o and v ≠ o. By Schwarz & Mattern, for events
// a → b (causally related), V(a) < V(b).
func (v Vector) Before(o Vector) bool { return v.LEq(o) && !v.Equal(o) }

// Concurrent reports that neither vector precedes the other.
func (v Vector) Concurrent(o Vector) bool { return !v.LEq(o) && !o.LEq(v) }

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for q, s := range v {
		out[q] = s
	}
	return out
}

// LiveColumns returns the processes with live stamps, sorted.
func (v Vector) LiveColumns() []ids.ClusterID {
	out := make([]ids.ClusterID, 0, len(v))
	for q, s := range v {
		if s.Live() {
			out = append(out, q)
		}
	}
	ids.SortClusters(out)
	return out
}

// HasLiveRoot reports whether any actual root has a live stamp in v: the
// paper's reachability test ∃k: ¬Λ(V[k]) ∧ root(k) (§3.3).
func (v Vector) HasLiveRoot() bool {
	for q, s := range v {
		if q.IsRoot() && s.Live() {
			return true
		}
	}
	return false
}

// Columns returns every process mentioned in v, sorted.
func (v Vector) Columns() []ids.ClusterID {
	out := make([]ids.ClusterID, 0, len(v))
	for q := range v {
		out = append(out, q)
	}
	ids.SortClusters(out)
	return out
}

// String renders the vector deterministically: {s1/R1:Ē1 s2/c1:3}.
func (v Vector) String() string {
	cols := v.Columns()
	var b strings.Builder
	b.WriteByte('{')
	for i, q := range cols {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(q.String())
		b.WriteByte(':')
		b.WriteString(v[q].String())
	}
	b.WriteByte('}')
	return b.String()
}

// Render formats the vector against a fixed column order, printing 0 for
// absent entries: "(Ē1, 3, 2, 2)". Used to reproduce Fig 5 and Fig 8.
func (v Vector) Render(order []ids.ClusterID) string {
	parts := make([]string, len(order))
	for i, q := range order {
		parts[i] = v.Get(q).String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// SortedByString returns the given vectors' String forms sorted; a test
// helper for deterministic golden output.
func SortedByString(vs []Vector) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}
