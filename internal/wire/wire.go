// Package wire defines the physical messages exchanged between sites.
//
// The mutator messages (Create, Ref) carry no vector piggyback beyond the
// single creation stamp: this is the paper's lazy log-keeping (§3.4) —
// reference exchange requires no additional control messages, even for
// third-party references. The GGD messages (Destroy, Propagate) carry one
// dependency vector each; Destroy additionally bundles the delayed
// third-party edge-creation entries ("multiple edge-creation control
// messages can be bundled with an edge-destruction control message in one
// atomic delivery", §3.4).
package wire

import (
	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// Message kinds, used for statistics. The paper's §4 comparison counts
// messages by purpose, so kinds distinguish mutator traffic from GGD
// control traffic.
const (
	KindCreate    = "mut.create"
	KindRef       = "mut.ref"
	KindDestroy   = "ggd.destroy"
	KindPropagate = "ggd.prop"
	KindAssert    = "ggd.assert"
	KindAck       = "ggd.ack"
)

// Create asks the destination site to materialise a new object referenced
// by the creator: the paper's "root object 1 creates an object 2" (§3.1).
// The creator mints the identities, so no reply is needed.
type Create struct {
	// Creator is the holding cluster (source of the new edge).
	Creator ids.ClusterID
	// Stamp is the creator's clock at the send: the only piggybacked
	// log-keeping datum, carried by the creation message itself.
	Stamp uint64
	// Obj and Cluster are the minted identities of the new object.
	Obj     ids.ObjectID
	Cluster ids.ClusterID
}

// Kind implements netsim.Payload.
func (Create) Kind() string { return KindCreate }

// ApplicationTraffic implements netsim.Application: creation is reliable
// mutator RPC.
func (Create) ApplicationTraffic() bool { return true }

// ApproxSize implements netsim.Payload.
func (Create) ApproxSize() int { return 48 }

// RefTransfer carries a copy of a reference from a holder object to a
// remote object: the mutator message of Fig 7 (light grey arrows). Target
// may denote the sender itself, a local object, or a third-party object on
// yet another site — the receiver cannot and need not tell the difference.
type RefTransfer struct {
	// FromCluster is the sending cluster: the introducer of the edge the
	// receiver is about to create.
	FromCluster ids.ClusterID
	// IntroSeq is the sender's forwarding sequence number for this copy
	// (the paper's DV_i[k][j] increment), echoed by the receiver's
	// edge-assert to resolve the introduction hint.
	IntroSeq uint64
	// ToObj is the receiving object; its site is the destination.
	ToObj ids.ObjectID
	// ToCluster is ToObj's cluster, as known to the sender. It lets the
	// destination prove a dead introduction: if the cluster is known
	// there (registered or tombstoned) but the object is gone, the
	// holder was collected and the edge can never form — the receiving
	// site then expires the introduction instead of parking the frame
	// forever (core.Engine.ResolveIntroduction).
	ToCluster ids.ClusterID
	// Target is the reference being copied.
	Target heap.Ref
}

// Kind implements netsim.Payload.
func (RefTransfer) Kind() string { return KindRef }

// ApplicationTraffic implements netsim.Application: reference exchange is
// reliable mutator RPC.
func (RefTransfer) ApplicationTraffic() bool { return true }

// ApproxSize implements netsim.Payload.
func (RefTransfer) ApproxSize() int { return 72 }

// Destroy is the edge-destruction control message (§3.4): sent when the
// last reference from From's cluster to To's cluster is destroyed, and by
// the finalisation of detected garbage (§3.2). It carries the row kept by
// the sender on behalf of To: authoritative stamps with the sender's
// column replaced by Ē(clock), the bundled third-party edge-creation
// hints, and the processed-introduction record.
type Destroy struct {
	From ids.ClusterID
	To   ids.ClusterID
	M    core.DestroyMsg
}

// Kind implements netsim.Payload.
func (Destroy) Kind() string { return KindDestroy }

// ApproxSize implements netsim.Payload.
func (d Destroy) ApproxSize() int {
	return 32 + 24*(len(d.M.Auth)+len(d.M.Hints)+len(d.M.Processed))
}

// Assert is the edge-assert control message: the deferred, idempotent
// acknowledgement a cluster sends when it first acquires a reference to a
// remote cluster, carrying its authoritative live stamp and resolving the
// introduction that created the edge (see package core).
type Assert struct {
	From ids.ClusterID
	To   ids.ClusterID
	M    core.AssertMsg
}

// Kind implements netsim.Payload.
func (Assert) Kind() string { return KindAssert }

// ApproxSize implements netsim.Payload.
func (Assert) ApproxSize() int { return 56 }

// HintAck is the acknowledgement of an edge-assert: the hint's owner
// echoes the assert's identity back to the asserting cluster, which
// retires the matching re-send journal row. Loss-tolerant — a lost ack
// costs one redundant re-send on the next refresh round.
type HintAck struct {
	From ids.ClusterID
	To   ids.ClusterID
	M    core.AckMsg
}

// Kind implements netsim.Payload.
func (HintAck) Kind() string { return KindAck }

// ApproxSize implements netsim.Payload.
func (HintAck) ApproxSize() int { return 56 }

// Propagate circulates increasingly accurate approximations of dependency
// vectors along the out-edges of the global root graph (§3.3, step 3 of
// the algorithm): the sender's first-hand incoming-edge vector and clock,
// the confirmed first-hand vectors of its known ancestry, and its
// on-behalf entries. Everything is edge-keyed, so receivers merge per
// edge and every member of a garbage cycle converges on the same causal
// picture in O(cycle) messages.
type Propagate struct {
	From ids.ClusterID
	To   ids.ClusterID
	M    core.Propagation
}

// Kind implements netsim.Payload.
func (Propagate) Kind() string { return KindPropagate }

// ApproxSize implements netsim.Payload.
func (p Propagate) ApproxSize() int {
	n := 40 + 24*len(p.M.Auth) + 16*len(p.M.HintCols)
	for _, r := range p.M.Rows {
		n += 16 + 24*len(r.Auth) + 16*len(r.HintCols)
	}
	for _, r := range p.M.OBs {
		n += 16 + 24*(len(r.Auth)+len(r.Hints))
	}
	return n
}

// Interface checks.
var (
	_ netsim.Payload     = Create{}
	_ netsim.Payload     = RefTransfer{}
	_ netsim.Payload     = Destroy{}
	_ netsim.Payload     = Propagate{}
	_ netsim.Payload     = Assert{}
	_ netsim.Payload     = HintAck{}
	_ netsim.Application = Create{}
	_ netsim.Application = RefTransfer{}
)
