package site

import (
	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
)

// Fanout composes observers: the returned Observer forwards every
// lifecycle event to each non-nil child, in order, and forwards
// AckObserver retirement events to the children that implement that
// extension. It lets a metrics recorder and a user observer share the
// single Options.Observer slot instead of displacing one another.
// With zero or one non-nil child there is no wrapping: Fanout returns
// nil or the child itself.
func Fanout(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return fanout(kept)
}

// fanout is the multi-child composition built by Fanout. It satisfies
// AckObserver unconditionally, forwarding retirement events only to
// children that implement the extension.
type fanout []Observer

var (
	_ Observer    = fanout(nil)
	_ AckObserver = fanout(nil)
)

// ClusterRemoved forwards the removal event to every child.
func (f fanout) ClusterRemoved(site ids.SiteID, cluster ids.ClusterID) {
	for _, o := range f {
		o.ClusterRemoved(site, cluster)
	}
}

// Collected forwards the collection event to every child.
func (f fanout) Collected(site ids.SiteID, stats heap.CollectStats) {
	for _, o := range f {
		o.Collected(site, stats)
	}
}

// FrameEvicted forwards the eviction event to the children implementing
// AckObserver.
func (f fanout) FrameEvicted(site ids.SiteID, peer ids.SiteID, stream core.Stream, frames int) {
	for _, o := range f {
		if a, ok := o.(AckObserver); ok {
			a.FrameEvicted(site, peer, stream, frames)
		}
	}
}

// FrameRetired forwards the retirement event to the children
// implementing AckObserver.
func (f fanout) FrameRetired(site ids.SiteID, peer ids.SiteID, stream core.Stream, frames int) {
	for _, o := range f {
		if a, ok := o.(AckObserver); ok {
			a.FrameRetired(site, peer, stream, frames)
		}
	}
}

// Depths reports the sizes of a runtime's retained-state tables: the
// gauges a monitor watches to confirm the protocol's metadata stays
// bounded under churn. All but DestroyRows converge to zero at
// quiescence; DestroyRows settles at the number of destroyed edges
// still remembered against re-formation.
type Depths struct {
	// Outbox is the number of sent mutator frames retained awaiting
	// cumulative acknowledgement.
	Outbox int
	// AssertRows is the engine's un-acknowledged edge-assert journal
	// size.
	AssertRows int
	// DestroyRows is the engine's tracked destroyed-edge bundle count.
	DestroyRows int
	// LegacyBundles is the engine's retained finalisation bundle count.
	LegacyBundles int
	// PendingRefs is the number of buffered reference transfers awaiting
	// their holder object.
	PendingRefs int
	// PendingDeliveries is the engine's count of buffered control
	// messages that raced ahead of their target's registration.
	PendingDeliveries int
}

// Depths returns the current retained-state table sizes.
func (r *Runtime) Depths() Depths {
	r.mu.Lock()
	defer r.mu.Unlock()
	ret := r.engine.Retained()
	prefs := 0
	for _, q := range r.pendingRefs {
		prefs += len(q)
	}
	return Depths{
		Outbox:            len(r.outbox),
		AssertRows:        ret.AssertRows,
		DestroyRows:       ret.DestroyRows,
		LegacyBundles:     ret.LegacyBundles,
		PendingRefs:       prefs,
		PendingDeliveries: ret.PendingDeliveries,
	}
}
