package causalgc

import (
	"sync"

	"causalgc/persist"
)

// closeGate serialises Node.Close against in-flight operations:
// operations hold the read side for their duration, Close takes the
// write side exactly once. After close, enter fails with ErrNodeClosed,
// so no operation can race the teardown of the persistence journal.
type closeGate struct {
	mu     sync.RWMutex
	closed bool
}

// enter admits an operation; the caller must exit() when done.
func (g *closeGate) enter() error {
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return ErrNodeClosed
	}
	return nil
}

func (g *closeGate) exit() { g.mu.RUnlock() }

// close marks the gate closed, waiting out in-flight operations. It
// reports whether this call performed the transition.
func (g *closeGate) close() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.closed = true
	return true
}

func persistStoreOptions(c config) persist.Options {
	return persist.Options{NoSync: c.noSync, GroupCommit: c.groupCommit}
}
