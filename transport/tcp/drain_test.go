package tcp_test

import (
	"net"
	"testing"
	"time"

	"causalgc"
	"causalgc/transport"
	"causalgc/transport/tcp"
)

// Compile-time: the TCP backend advertises the Drain capability.
var _ transport.Drainer = (*tcp.Network)(nil)

// TestDrainFlushesQueues: frames queued behind a dial (the peer address
// exists but is slow) are flushed by Drain instead of a blind sleep,
// and a batched commit crosses the socket as one envelope.
func TestDrainFlushesQueues(t *testing.T) {
	netA, netB := pair(t)
	n1 := causalgc.NewNode(1, causalgc.WithTransport(netA))
	n2 := causalgc.NewNode(2, causalgc.WithTransport(netB))
	defer n1.Close()
	defer n2.Close()

	b := n1.Batch()
	refs := make([]*causalgc.BatchRef, 6)
	for i := range refs {
		refs[i] = b.NewRemote(b.Root(), 2)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if !netA.Drain(5 * time.Second) {
		t.Fatal("Drain timed out with a live peer")
	}
	// Drain returned: the envelope was written to the socket. Give the
	// receiving process loop a bounded moment to apply it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok := func() bool {
			for _, r := range refs {
				if !n2.HasObject(r.Obj()) {
					return false
				}
			}
			return true
		}(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batched creates not applied on peer")
		}
		netB.Drain(time.Second)
		time.Sleep(time.Millisecond)
	}
	sent, _, _, _, _ := netA.Stats().Kind("mut.envelope")
	if sent != 1 {
		t.Fatalf("envelopes sent = %d, want 1", sent)
	}
	if creates, _, _, _, _ := netA.Stats().Kind("mut.create"); creates != 0 {
		t.Fatalf("bare creates sent = %d, want 0 (coalesced)", creates)
	}
}

// TestDrainTimesOutOnDeadPeer: with an unreachable peer the writer
// queue cannot flush, and Drain reports failure within its bound
// instead of hanging.
func TestDrainTimesOutOnDeadPeer(t *testing.T) {
	netA, err := tcp.New(tcp.Config{Listen: "127.0.0.1:0", DialTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer netA.Close()
	// A peer address that refuses connections: bind a port, then close
	// it, so every (re)dial fails fast and the frame stays queued.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	netA.SetPeer(2, addr)
	n1 := causalgc.NewNode(1, causalgc.WithTransport(netA))
	defer n1.Close()
	if _, err := n1.NewRemote(n1.Root().Obj, 2); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if netA.Drain(300 * time.Millisecond) {
		t.Fatal("Drain reported success with an unreachable peer")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Drain took %v, want ~300ms", elapsed)
	}
}
