package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"causalgc"
)

// BatchPoint is one measured configuration of the batch-vs-singleton
// throughput comparison (BENCH_batch.json).
type BatchPoint struct {
	// Mode is "durable" (write-ahead journal, per-record fsync on the
	// singleton path) or "inmemory".
	Mode string `json:"mode"`
	// Size is the batch group size (ops per commit).
	Size int `json:"size"`
	// BatchOpsPerSec and SingletonOpsPerSec are mutator throughputs of
	// the two commit paths over the identical op stream.
	BatchOpsPerSec     float64 `json:"batch_ops_per_sec"`
	SingletonOpsPerSec float64 `json:"singleton_ops_per_sec"`
	// Speedup is BatchOpsPerSec / SingletonOpsPerSec.
	Speedup float64 `json:"speedup"`
}

// BatchReport is the JSON document emitted as BENCH_batch.json: the
// first point of the repository's performance trajectory (ISSUE 5).
type BatchReport struct {
	// Benchmark names the measurement for trajectory tooling.
	Benchmark string `json:"benchmark"`
	// Points are the measured configurations.
	Points []BatchPoint `json:"points"`
}

// batchThroughput measures one commit path: groups of size ops (half
// creates, half drops — the heap stays bounded), repeated for at least
// minDur, returning ops/sec.
func batchThroughput(n *causalgc.Node, size int, batched bool, minDur time.Duration) (float64, error) {
	root := n.Root().Obj
	ops := 0
	start := time.Now()
	for time.Since(start) < minDur {
		if batched {
			b := n.Batch()
			created := make([]*causalgc.BatchRef, size/2)
			for j := range created {
				created[j] = b.NewLocal(b.Root())
			}
			for _, c := range created {
				b.DropRefs(b.Root(), c)
			}
			if err := b.Commit(); err != nil {
				return 0, err
			}
		} else {
			created := make([]causalgc.Ref, size/2)
			for j := range created {
				ref, err := n.NewLocal(root)
				if err != nil {
					return 0, err
				}
				created[j] = ref
			}
			for _, ref := range created {
				if err := n.DropRefs(root, ref); err != nil {
					return 0, err
				}
			}
		}
		ops += size
	}
	return float64(ops) / time.Since(start).Seconds(), nil
}

// BatchBench measures batched vs singleton commit throughput (durable
// and in-memory, batch size 64 — the acceptance configuration) and
// writes the JSON report to path ("-" or "" writes to w only). It
// reports success iff the durable speedup reaches 3x.
func BatchBench(w io.Writer, path string) bool {
	const size = 64
	rep := BatchReport{Benchmark: "batch-commit"}
	ok := true
	for _, mode := range []string{"durable", "inmemory"} {
		point := BatchPoint{Mode: mode, Size: size}
		for _, batched := range []bool{true, false} {
			opts := []causalgc.Option{}
			if mode == "durable" {
				dir, err := os.MkdirTemp("", "causalgc-bench-*")
				if err != nil {
					fmt.Fprintf(w, "batch bench: %v\n", err)
					return false
				}
				defer os.RemoveAll(dir)
				opts = append(opts, causalgc.WithPersistence(dir), causalgc.WithSnapshotEvery(1<<20))
			}
			n := causalgc.NewNode(1, opts...)
			tput, err := batchThroughput(n, size, batched, 300*time.Millisecond)
			n.Close()
			if err != nil {
				fmt.Fprintf(w, "batch bench (%s, batched=%v): %v\n", mode, batched, err)
				return false
			}
			if batched {
				point.BatchOpsPerSec = tput
			} else {
				point.SingletonOpsPerSec = tput
			}
		}
		if point.SingletonOpsPerSec > 0 {
			point.Speedup = point.BatchOpsPerSec / point.SingletonOpsPerSec
		}
		rep.Points = append(rep.Points, point)
		fmt.Fprintf(w, "batch-commit %-9s size=%d: batch %.0f ops/sec, singleton %.0f ops/sec, speedup %.1fx\n",
			mode, size, point.BatchOpsPerSec, point.SingletonOpsPerSec, point.Speedup)
		if mode == "durable" && point.Speedup < 3 {
			fmt.Fprintf(w, "FAIL: durable batched commit speedup %.1fx < 3x\n", point.Speedup)
			ok = false
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(w, "batch bench: %v\n", err)
		return false
	}
	data = append(data, '\n')
	if path != "" && path != "-" {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(w, "batch bench: %v\n", err)
			return false
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	} else {
		w.Write(data)
	}
	return ok
}
