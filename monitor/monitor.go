package monitor

import (
	"sync"
	"time"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
	"causalgc/persist"
)

// DefaultTraceDepth is the event-trace ring capacity used when New is
// given a non-positive depth: enough to reconstruct the recent causal
// history around an invariant violation without unbounded growth.
const DefaultTraceDepth = 1024

// Sources are the read-side closures a Monitor snapshots. Each closure
// must be safe to call from any goroutine (the runtime's introspection
// methods are); nil members are simply absent from snapshots. A Node
// fills these in when the monitor is attached via causalgc.WithMonitor.
type Sources struct {
	// Objects returns the live heap object count.
	Objects func() int
	// Engine returns the GGD engine activity counters.
	Engine func() core.Stats
	// Frames returns the site-level retirement counters.
	Frames func() site.FrameStats
	// Depths returns the retained-state table sizes.
	Depths func() site.Depths
	// Persist returns the durable store's counters; nil for a volatile
	// node.
	Persist func() persist.Stats
	// Transport is the shared delivery statistics of the node's
	// transport; nil when the transport exposes none.
	Transport *netsim.Stats
	// Shards returns the lock-stripe width; nil for an unsharded node.
	Shards func() int
	// ShardDepths returns one shard's retained-state table sizes; nil
	// for an unsharded node. Valid indices are 0..Shards()-1.
	ShardDepths func(i int) site.Depths
	// Handoff returns the queued cross-shard frame count; nil for an
	// unsharded node.
	Handoff func() int
}

// Event is one structured trace entry: an Observer or AckObserver
// callback captured with a monitor-assigned sequence number and a
// wall-clock stamp. Only the fields of the event's kind are set.
type Event struct {
	// Seq is the monitor-local sequence number (1-based, never reused).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock capture time.
	Time time.Time `json:"time"`
	// Site is the observed site.
	Site ids.SiteID `json:"site"`
	// Kind discriminates the event: "removal", "collection",
	// "frame_retired" or "frame_evicted".
	Kind string `json:"kind"`
	// Cluster is the removed cluster ("removal" events).
	Cluster string `json:"cluster,omitempty"`
	// Marked, Swept and Roots are the collection's statistics
	// ("collection" events).
	Marked int `json:"marked,omitempty"`
	// Swept counts objects reclaimed ("collection" events).
	Swept int `json:"swept,omitempty"`
	// Roots is the root-set size used ("collection" events).
	Roots int `json:"roots,omitempty"`
	// Peer is the remote site of a retirement-stream event
	// ("frame_retired"/"frame_evicted").
	Peer ids.SiteID `json:"peer,omitempty"`
	// Stream names the retirement stream ("frame_retired"/
	// "frame_evicted").
	Stream string `json:"stream,omitempty"`
	// Frames is the number of outbox frames retired or evicted
	// ("frame_retired"/"frame_evicted").
	Frames int `json:"frames,omitempty"`
}

// Event kinds.
const (
	// EventRemoval records a cluster detected as global garbage and
	// removed.
	EventRemoval = "removal"
	// EventCollection records one local mark-sweep collection.
	EventCollection = "collection"
	// EventFrameRetired records outbox frames retired by a cumulative
	// acknowledgement.
	EventFrameRetired = "frame_retired"
	// EventFrameEvicted records outbox frames dropped at the hard cap:
	// tolerated loss.
	EventFrameEvicted = "frame_evicted"
)

// CollectTotals accumulates local mark-sweep collections observed since
// the monitor attached: heap.CollectStats is per-collection, so the
// running sums live here.
type CollectTotals struct {
	// Collections counts collections observed.
	Collections int `json:"collections"`
	// Marked sums objects found reachable over all collections.
	Marked int `json:"marked"`
	// Swept sums objects reclaimed over all collections.
	Swept int `json:"swept"`
}

// TraceStats describes the event ring's occupancy.
type TraceStats struct {
	// Recorded counts events ever recorded (the latest Seq).
	Recorded uint64 `json:"recorded"`
	// Dropped counts events overwritten after falling off the bounded
	// ring.
	Dropped uint64 `json:"dropped"`
	// Depth is the ring capacity.
	Depth int `json:"depth"`
}

// Snapshot is one consistent-enough read of every stats surface the
// monitor watches, serialisable as JSON and renderable as Prometheus
// text. Counter surfaces are copied from their sources at snapshot
// time; each surface is internally consistent but surfaces are not
// mutually atomic.
type Snapshot struct {
	// Site is the monitored site.
	Site ids.SiteID `json:"site"`
	// Time is the snapshot's wall-clock stamp.
	Time time.Time `json:"time"`
	// UptimeSeconds is the time since the monitor attached.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Objects is the live heap object count.
	Objects int `json:"objects"`
	// Engine is the GGD engine activity counters.
	Engine core.Stats `json:"engine"`
	// Frames is the site-level retirement counters.
	Frames site.FrameStats `json:"frames"`
	// Depths is the retained-state table sizes.
	Depths site.Depths `json:"depths"`
	// Collect accumulates local collections observed via the trace.
	Collect CollectTotals `json:"collect"`
	// Persist is the durable store's counters; nil for a volatile node.
	Persist *persist.Stats `json:"persist,omitempty"`
	// Transport is the per-kind delivery statistics; nil when the node's
	// transport exposes none.
	Transport map[string]netsim.KindStats `json:"transport,omitempty"`
	// Shards is the lock-stripe width; 0 for an unsharded node.
	Shards int `json:"shards,omitempty"`
	// ShardDepths is each shard's retained-state table sizes, in shard
	// order; nil for an unsharded node. The site-wide Depths above is
	// their sum.
	ShardDepths []site.Depths `json:"shard_depths,omitempty"`
	// Handoff is the queued cross-shard frame count (zero at
	// quiescence); 0 for an unsharded node.
	Handoff int `json:"handoff,omitempty"`
	// Residual is the oracle-reported residual garbage object count;
	// nil until SetResidual is called (production deployments have no
	// oracle).
	Residual *int `json:"residual,omitempty"`
	// Trace describes the event ring's occupancy.
	Trace TraceStats `json:"trace"`
}

// Monitor is one node's metrics registry and bounded event trace. It
// implements the causalgc Observer and AckObserver hooks (the callbacks
// only touch the monitor's own state, as the hook contract requires) and
// snapshots the node's stats surfaces on demand through the attached
// Sources. A zero Monitor is not usable; construct with New.
type Monitor struct {
	mu      sync.Mutex
	siteID  ids.SiteID
	start   time.Time
	src     Sources
	seq     uint64
	ring    []Event // fixed capacity; next points at the overwrite slot
	next    int
	filled  bool
	dropped uint64
	collect CollectTotals
	resid   *int
}

// New creates a monitor with the given event-trace depth; a non-positive
// depth selects DefaultTraceDepth. The monitor records nothing until
// attached to a node (causalgc.WithMonitor, or Attach directly).
func New(traceDepth int) *Monitor {
	if traceDepth <= 0 {
		traceDepth = DefaultTraceDepth
	}
	return &Monitor{ring: make([]Event, traceDepth)}
}

// Attach binds the monitor to a site's stats surfaces, resetting the
// uptime clock. A node recovered after a crash re-attaches the same
// monitor: counters from its sources restart (they are per-session), the
// event trace and collection totals carry across the restart.
func (m *Monitor) Attach(siteID ids.SiteID, src Sources) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.siteID = siteID
	m.src = src
	m.start = time.Now()
}

// Site returns the attached site identifier (NoSite before Attach).
func (m *Monitor) Site() ids.SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.siteID
}

// SetResidual records the residual garbage count an external oracle
// (causalgc.Check) measured for this site. Test and soak deployments
// feed it so the residual-garbage gauge exports; production deployments
// never call it and the gauge stays absent.
func (m *Monitor) SetResidual(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := n
	m.resid = &v
}

// record appends one event to the bounded ring.
func (m *Monitor) record(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	e.Seq = m.seq
	e.Time = time.Now()
	e.Site = m.siteID
	if m.filled {
		m.dropped++
	}
	m.ring[m.next] = e
	m.next++
	if m.next == len(m.ring) {
		m.next = 0
		m.filled = true
	}
}

// ClusterRemoved implements the Observer hook: it traces the removal.
func (m *Monitor) ClusterRemoved(siteID ids.SiteID, cluster ids.ClusterID) {
	m.record(Event{Kind: EventRemoval, Cluster: cluster.String()})
}

// Collected implements the Observer hook: it traces the collection and
// folds its statistics into the running totals.
func (m *Monitor) Collected(siteID ids.SiteID, stats heap.CollectStats) {
	m.mu.Lock()
	m.collect.Collections++
	m.collect.Marked += stats.Marked
	m.collect.Swept += stats.Swept
	m.mu.Unlock()
	m.record(Event{Kind: EventCollection, Marked: stats.Marked, Swept: stats.Swept, Roots: stats.Roots})
}

// FrameEvicted implements the AckObserver hook: it traces the backstop
// eviction.
func (m *Monitor) FrameEvicted(siteID ids.SiteID, peer ids.SiteID, stream core.Stream, frames int) {
	m.record(Event{Kind: EventFrameEvicted, Peer: peer, Stream: stream.String(), Frames: frames})
}

// FrameRetired implements the AckObserver hook: it traces the
// acknowledged retirement.
func (m *Monitor) FrameRetired(siteID ids.SiteID, peer ids.SiteID, stream core.Stream, frames int) {
	m.record(Event{Kind: EventFrameRetired, Peer: peer, Stream: stream.String(), Frames: frames})
}

// Events returns up to max recent trace events, oldest first (all of
// them when max is non-positive or exceeds the retained count).
func (m *Monitor) Events(max int) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ordered []Event
	if m.filled {
		ordered = append(ordered, m.ring[m.next:]...)
		ordered = append(ordered, m.ring[:m.next]...)
	} else {
		ordered = append(ordered, m.ring[:m.next]...)
	}
	if max > 0 && len(ordered) > max {
		ordered = ordered[len(ordered)-max:]
	}
	return ordered
}

// Snapshot reads every attached stats surface and the trace counters.
// The source closures are called without the monitor's lock held — they
// take the node's own locks, and the node's hooks call back into the
// monitor — so a snapshot can race an in-flight event; each individual
// surface is still a consistent copy.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	src := m.src
	s := Snapshot{
		Site:    m.siteID,
		Collect: m.collect,
		Trace:   TraceStats{Recorded: m.seq, Dropped: m.dropped, Depth: len(m.ring)},
	}
	if m.resid != nil {
		v := *m.resid
		s.Residual = &v
	}
	start := m.start
	m.mu.Unlock()

	s.Time = time.Now()
	if !start.IsZero() {
		s.UptimeSeconds = s.Time.Sub(start).Seconds()
	}
	if src.Objects != nil {
		s.Objects = src.Objects()
	}
	if src.Engine != nil {
		s.Engine = src.Engine()
	}
	if src.Frames != nil {
		s.Frames = src.Frames()
	}
	if src.Depths != nil {
		s.Depths = src.Depths()
	}
	if src.Shards != nil {
		s.Shards = src.Shards()
		if src.ShardDepths != nil {
			s.ShardDepths = make([]site.Depths, s.Shards)
			for i := range s.ShardDepths {
				s.ShardDepths[i] = src.ShardDepths(i)
			}
		}
	}
	if src.Handoff != nil {
		s.Handoff = src.Handoff()
	}
	if src.Persist != nil {
		ps := src.Persist()
		s.Persist = &ps
	}
	if src.Transport != nil {
		s.Transport = src.Transport.Snapshot()
	}
	return s
}
