package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"causalgc"
)

// ParallelPoint is one stripe width of the parallel-commit scaling
// measurement (BENCH_parallel.json).
type ParallelPoint struct {
	// Shards is the lock-stripe width of the node (WithShards).
	Shards int `json:"shards"`
	// OpsPerSec is the aggregate mutator commit throughput of all
	// workers.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Speedup is OpsPerSec relative to the 1-shard point.
	Speedup float64 `json:"speedup"`
}

// ParallelReport is the JSON document emitted as BENCH_parallel.json:
// the multi-core scaling point of the performance trajectory.
type ParallelReport struct {
	// Benchmark names the measurement for trajectory tooling.
	Benchmark string `json:"benchmark"`
	// Cores is runtime.NumCPU() on the measuring machine; the scaling
	// floor is only meaningful when it covers the largest stripe width.
	Cores int `json:"cores"`
	// Workers is the number of concurrent mutator goroutines (identical
	// for every point, so the comparison isolates the striping).
	Workers int `json:"workers"`
	// Points are the measured stripe widths, ascending.
	Points []ParallelPoint `json:"points"`
}

// parallelThroughput drives `workers` goroutines against one node for
// at least minDur. Each worker anchors its own cluster — round-robin
// placement spreads the anchors across the node's shards — and extends
// a chain inside it, so every op is a commit on the worker's own shard
// and the only cross-shard state is the identity mint.
func parallelThroughput(n *causalgc.Node, workers int, minDur time.Duration) (float64, error) {
	root := n.Root().Obj
	var (
		ops  atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	fail := func(err error) {
		mu.Lock()
		if ferr == nil {
			ferr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			anchor, err := n.NewLocal(root)
			if err != nil {
				fail(err)
				return
			}
			cur := anchor.Obj
			local := int64(0)
			for !stop.Load() {
				ref, err := n.NewLocalIn(cur, anchor.Cluster)
				if err != nil {
					fail(err)
					return
				}
				cur = ref.Obj
				if local++; local%256 == 0 && time.Since(start) >= minDur {
					break
				}
			}
			ops.Add(local)
		}()
	}
	wg.Wait()
	if ferr != nil {
		return 0, ferr
	}
	return float64(ops.Load()) / time.Since(start).Seconds(), nil
}

// ParallelBench measures parallel mutator commit throughput at stripe
// widths 1, 4 and 8 (in-memory nodes — BenchmarkWALAppend prices the
// journal separately) and writes the JSON report to path ("-" or ""
// writes to w only). On a machine with at least 8 cores it reports
// success iff the 8-shard throughput reaches `floor` times the 1-shard
// throughput; on smaller machines the floor is informational only (a
// stripe cannot scale past the core count).
func ParallelBench(w io.Writer, path string, floor float64) bool {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	rep := ParallelReport{Benchmark: "parallel-commit", Cores: runtime.NumCPU(), Workers: workers}
	ok := true
	base := 0.0
	for _, shards := range []int{1, 4, 8} {
		n := causalgc.NewNode(1, causalgc.WithShards(shards))
		tput, err := parallelThroughput(n, workers, 500*time.Millisecond)
		n.Close()
		if err != nil {
			fmt.Fprintf(w, "parallel bench (shards=%d): %v\n", shards, err)
			return false
		}
		point := ParallelPoint{Shards: shards, OpsPerSec: tput}
		if shards == 1 {
			base = tput
		}
		if base > 0 {
			point.Speedup = tput / base
		}
		rep.Points = append(rep.Points, point)
		fmt.Fprintf(w, "parallel-commit shards=%d workers=%d: %.0f ops/sec (%.2fx)\n",
			shards, workers, point.OpsPerSec, point.Speedup)
	}
	last := rep.Points[len(rep.Points)-1]
	if rep.Cores >= last.Shards && floor > 0 && last.Speedup < floor {
		fmt.Fprintf(w, "FAIL: %d-shard speedup %.2fx < %.1fx on a %d-core machine\n",
			last.Shards, last.Speedup, floor, rep.Cores)
		ok = false
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(w, "parallel bench: %v\n", err)
		return false
	}
	data = append(data, '\n')
	if path != "" && path != "-" {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(w, "parallel bench: %v\n", err)
			return false
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	} else {
		w.Write(data)
	}
	return ok
}
