// Package tcp is the real-socket transport backend: causalgc sites in
// different OS processes exchange the same wire messages the in-memory
// backends carry, as length-prefixed gob frames over TCP.
//
// One Network serves one process. It listens on a single address for
// every site the process hosts, and dials one outgoing connection per
// remote peer, lazily, with automatic reconnect and exponential backoff —
// so peer processes may start in any order. Sends to sites registered on
// the same Network short-circuit through an in-memory queue and never
// touch a socket.
//
// Delivery matches the Transport contract: asynchronous with respect to
// Send, serialised per destination site (one delivery goroutine each),
// and at-most-once per send — a frame that cannot be written before Close
// is dropped, which the GGD control plane tolerates by design (§5 of the
// paper; mutator payloads are retried across reconnects until Close).
package tcp
