// Package analysistest is the golden-file test harness for the
// invariant analyzers, a compact analogue of
// golang.org/x/tools/go/analysis/analysistest: each analyzer ships a
// testdata/src/<pkg> package whose sources mark every expected
// diagnostic with a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps allowed). Run loads the package,
// applies the analyzer and fails the test on any diagnostic without a
// matching want, or any want without a matching diagnostic — so every
// rule is proven both to fire on a seeded violation and to stay quiet
// on the compliant and directive-annotated forms.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"causalgc/internal/analysis"
)

// wantRE extracts the expectation list from a // want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE extracts the individual quoted regexps of an expectation
// (double-quoted or backquoted, as in upstream analysistest).
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// expectation is one unmatched want entry at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run loads each testdata/src/<pkg> directory, applies the analyzer
// and matches diagnostics against the // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loader := analysis.NewLoader("", "")
		units, err := loader.LoadDir(dir, pkg)
		if err != nil {
			t.Errorf("%s: load: %v", pkg, err)
			continue
		}
		if len(units) == 0 {
			t.Errorf("%s: no Go files in %s", pkg, dir)
			continue
		}
		wantMarkers := collectWants(t, units)
		stripWantComments(units)
		diags, err := analysis.Run(units, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: run: %v", pkg, err)
			continue
		}
		wants := wantMarkers
		for _, d := range diags {
			if !consume(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
			}
		}
		for _, w := range wants {
			if w.re != nil {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg, filepath.Base(w.file), w.line, w.re)
			}
		}
	}
}

// collectWants parses the // want comments of every loaded file.
func collectWants(t *testing.T, units []*analysis.Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	seen := map[*ast.File]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			if seen[f] {
				continue
			}
			seen[f] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// stripWantComments detaches // want marker groups from the Doc and
// Comment fields of declarations, so a marker placed on the line of a
// seeded missing-doc violation does not itself count as the missing
// documentation. The markers stay in File.Comments for matching.
func stripWantComments(units []*analysis.Unit) {
	seen := map[*ast.File]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			if seen[f] {
				continue
			}
			seen[f] = true
			f.Doc = stripGroup(f.Doc)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GenDecl:
					n.Doc = stripGroup(n.Doc)
				case *ast.FuncDecl:
					n.Doc = stripGroup(n.Doc)
				case *ast.TypeSpec:
					n.Doc, n.Comment = stripGroup(n.Doc), stripGroup(n.Comment)
				case *ast.ValueSpec:
					n.Doc, n.Comment = stripGroup(n.Doc), stripGroup(n.Comment)
				case *ast.Field:
					n.Doc, n.Comment = stripGroup(n.Doc), stripGroup(n.Comment)
				}
				return true
			})
		}
	}
}

// stripGroup nils a comment group consisting solely of want markers.
func stripGroup(cg *ast.CommentGroup) *ast.CommentGroup {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		if !wantRE.MatchString(c.Text) {
			return cg
		}
	}
	return nil
}

// consume matches a diagnostic against the unconsumed wants on its
// line and marks the first match used.
func consume(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.re == nil || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.re = nil
			return true
		}
	}
	return false
}
