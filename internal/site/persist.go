package site

import (
	"fmt"
	"sort"
	"sync"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/wire"
	"causalgc/persist"
)

// Journal is the runtime's durability hook. Append is called
// write-ahead — before the recorded event mutates state or sends
// messages — and must make the record durable before returning, which
// is what guarantees no frame escapes a site before the event that
// caused it can be replayed. Checkpoint is called at quiescent points
// (end of every operation and delivery, under the runtime's mutex); the
// implementation decides whether to materialise a snapshot and must not
// call back into the Runtime.
type Journal interface {
	Append(rec *wire.WALRecord) error
	Checkpoint(build func() (*wire.SiteImage, error)) error
}

// PersistOptions tune a Persist journal.
type PersistOptions struct {
	// SnapshotEvery takes a snapshot (and truncates the WAL) after this
	// many appended records. Zero means 1024.
	SnapshotEvery int
	// Store configures the underlying persist.Store.
	Store persist.Options
}

func (o PersistOptions) withDefaults() PersistOptions {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	return o
}

// Persist is the standard Journal: wire-encoded records over a
// persist.Store, with a snapshot every SnapshotEvery records. Safe for
// concurrent appenders: the shards of a sharded site share one Persist
// (one WAL and one snapshot per site), serialised by the internal
// mutex; an unsharded Runtime additionally serialises under its own
// mutex, as before.
type Persist struct {
	mu       sync.Mutex
	store    *persist.Store
	opts     PersistOptions
	appended int
	// sticky records the first checkpoint failure; subsequent appends
	// surface it so disk trouble degrades loudly instead of silently
	// growing an untruncatable WAL.
	sticky error
}

// OpenPersist opens (or creates) the persistence directory for one
// site and recovers its durable state.
func OpenPersist(dir string, opts PersistOptions) (*Persist, error) {
	st, err := persist.Open(dir, opts.Store)
	if err != nil {
		return nil, err
	}
	// Recovered WAL records count toward the snapshot threshold:
	// otherwise a process that crashes faster than SnapshotEvery fresh
	// appends would never truncate, and each restart would replay an
	// ever-growing log.
	return &Persist{store: st, opts: opts.withDefaults(), appended: len(st.WAL())}, nil
}

// Load decodes the recovered snapshot (nil for a fresh directory) and
// the WAL tail appended after it.
func (p *Persist) Load() (*wire.SiteImage, []*wire.WALRecord, error) {
	var img *wire.SiteImage
	if body := p.store.Snapshot(); body != nil {
		var err error
		img, err = wire.DecodeSnapshot(body)
		if err != nil {
			return nil, nil, err
		}
	}
	raw := p.store.WAL()
	recs := make([]*wire.WALRecord, 0, len(raw))
	for i, data := range raw {
		rec, err := wire.DecodeRecord(data)
		if err != nil {
			// A record the store's CRC accepted but the codec rejects is
			// corruption, not a torn tail.
			return nil, nil, fmt.Errorf("wal record %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	return img, recs, nil
}

// Append implements Journal.
func (p *Persist) Append(rec *wire.WALRecord) error {
	data, err := wire.EncodeRecord(rec)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sticky != nil {
		return p.sticky
	}
	if err := p.store.Append(data); err != nil {
		return err
	}
	p.appended++
	return nil
}

// Checkpoint implements Journal: a snapshot is taken once SnapshotEvery
// records have accumulated since the last one.
func (p *Persist) Checkpoint(build func() (*wire.SiteImage, error)) error {
	if !p.Due() {
		return nil
	}
	return p.ForceCheckpoint(build)
}

// Due reports whether enough records accumulated since the last
// snapshot to warrant one. The sharded runtime polls it outside the
// shard locks and runs the stop-the-world checkpoint when it trips.
func (p *Persist) Due() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.appended >= p.opts.SnapshotEvery
}

// ForceCheckpoint snapshots unconditionally and truncates the WAL. The
// build callback runs outside the Persist mutex (it holds the site's
// own locks); the caller must guarantee no append lands between build
// and the snapshot write — the unsharded runtime holds r.mu across the
// whole call, the sharded runtime holds every shard's lock.
func (p *Persist) ForceCheckpoint(build func() (*wire.SiteImage, error)) error {
	img, err := build()
	var data []byte
	if err == nil {
		data, err = wire.EncodeSnapshot(img)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err == nil {
		err = p.store.WriteSnapshot(data)
	}
	if err != nil {
		if p.sticky == nil {
			p.sticky = fmt.Errorf("site: checkpoint failed: %w", err)
		}
		return err
	}
	// A successful snapshot is a complete, consistent durable image:
	// whatever failed before is superseded, so the journal un-wedges.
	p.sticky = nil
	p.appended = 0
	return nil
}

// Store exposes the underlying store (stats, tests).
func (p *Persist) Store() *persist.Store { return p.store }

// Close closes the underlying store without snapshotting: a closed
// journal is crash-equivalent by design; call ForceCheckpoint first for
// a trimmed restart.
func (p *Persist) Close() error { return p.store.Close() }

var _ Journal = (*Persist)(nil)

// --- Recovery ------------------------------------------------------------

// Recover reconstructs a site from its journal and resumes the
// protocol: load the latest snapshot, replay the WAL tail through the
// regular operation and delivery paths (journaling suppressed — the
// records are already durable), re-send the outbox's mutator frames
// (receivers deduplicate via their introduction records), and run one
// journaled Refresh so peers re-converge. A fresh journal yields a
// fresh site with journaling enabled, so Recover doubles as the
// persistent constructor.
//
// Replay is deterministic: operations re-mint the same identities from
// the restored counters, deliveries re-apply in journaled order, and
// every engine-clock-advancing entry point is itself journaled — which
// is why a recovered site never re-issues an already-used stamp for a
// new event (the unsafety that would let an old Ē mask a live edge).
// Messages re-sent during replay are duplicates of pre-crash traffic:
// GGD control messages are idempotent by merge, creations are dropped
// as duplicates by the receiving heap, and reference transfers are
// deduplicated by (introducer, forwarding-seq).
//
// Live traffic arriving during replay is buffered and processed (and
// journaled) after the replay completes, so the WAL stays a total order
// of the site's events.
//
// Recover rebuilds an unsharded site; a journal written by a sharded
// site (SiteImage.Shards > 1, or shard-tagged WAL records) must go
// through RecoverSharded instead.
func Recover(id ids.SiteID, net netsim.Network, opts Options, j *Persist) (*Runtime, error) {
	img, recs, err := j.Load()
	if err != nil {
		return nil, fmt.Errorf("site %v: recover: %w", id, err)
	}
	// A multi-shard site that crashed before its first checkpoint leaves
	// no snapshot, only shard-tagged WAL records — the snapshot guard
	// below never sees them, so check the tail itself. Replaying such a
	// record into a single runtime would route its cross-shard frames to
	// the site's own network address (no hub intercepts them) and
	// double-apply on delivery.
	for _, rec := range recs {
		if rec.Shard > 0 {
			return nil, fmt.Errorf("site %v: recover: journal written by a sharded site (WAL record for shard %d); use RecoverSharded", id, rec.Shard)
		}
	}
	var r *Runtime
	if img == nil {
		r = newRuntime(id, net, opts)
	} else {
		if img.Site != id {
			return nil, fmt.Errorf("site %v: recover: journal belongs to site %v", id, img.Site)
		}
		if img.Shards > 1 {
			return nil, fmt.Errorf("site %v: recover: journal written by a %d-shard site; use RecoverSharded", id, img.Shards)
		}
		r, err = restoreRuntime(net, opts, img)
		if err != nil {
			return nil, fmt.Errorf("site %v: recover: %w", id, err)
		}
	}
	r.journal = j
	r.replaying = true
	// Register before replay: frames from already-running peers buffer
	// in recoverBuf instead of being dropped by the transport.
	net.Register(id, r.handle)
	for _, rec := range recs {
		r.applyRecord(rec)
	}
	// End of replay: process the deliveries buffered meanwhile through
	// the journaled path.
	r.mu.Lock()
	r.replaying = false
	buffered := r.recoverBuf
	r.recoverBuf = nil
	resend := make([]outboundFrame, len(r.outbox))
	copy(resend, r.outbox)
	r.mu.Unlock()
	for _, d := range buffered {
		r.handle(d.from, d.p)
	}
	// Re-send the unconfirmed mutator frames: at-least-once delivery,
	// deduplicated at the receivers. Routed through the emitLocked
	// coalescer (the only sanctioned send path — sendcheck enforces
	// this) inside one coalescing window, so the recovery burst ships
	// as one envelope per peer instead of a frame per row.
	r.mu.Lock()
	opened := r.beginCoalesceLocked()
	for _, f := range resend {
		r.emitLocked(f.to, f.p)
	}
	if opened {
		r.flushCoalesceLocked()
	}
	r.mu.Unlock()
	// One refresh re-propagates the recovered GGD state so detection
	// resumes without waiting for new mutator activity.
	if err := r.Refresh(); err != nil {
		return nil, fmt.Errorf("site %v: recover: %w", id, err)
	}
	if img != nil {
		// Make the bumped recovery epoch durable immediately: without
		// this, a second crash inside one SnapshotEvery window would
		// restore the same pre-bump snapshot and re-use the epoch, and
		// peers would skip the damper reset for the second restart. The
		// forced snapshot also bounds the next replay.
		if err := r.Checkpoint(); err != nil {
			return nil, fmt.Errorf("site %v: recover: checkpoint: %w", id, err)
		}
	}
	return r, nil
}

// applyRecord replays one WAL record. Errors are ignored: a record that
// failed when first applied fails identically on replay (replay
// determinism), and a delivery can never fail.
func (r *Runtime) applyRecord(rec *wire.WALRecord) {
	switch {
	case rec.Deliver != nil:
		r.replayDeliver(rec.Deliver.From, rec.Deliver.Payload)
	case rec.Batch != nil:
		// A journaled batch replays through the same group-apply path the
		// live commit used: ops in order, deferred refs re-resolved from
		// the re-minted results, outbound frames re-coalesced. Staging is
		// skipped — the batch proved it before the record was appended,
		// and replay determinism reproduces the same verdicts.
		r.mu.Lock()
		_, _ = r.applyBatchLocked(rec.Batch.Ops)
		r.mu.Unlock()
	case rec.Op != nil:
		op := *rec.Op
		switch op.Kind {
		case wire.OpCollect:
			_, _ = r.Collect()
		case wire.OpRefresh:
			_ = r.Refresh()
		default:
			// The full journaled record goes back through the singleton
			// commit sequence (stage → apply; journaling and pre-minting
			// are suppressed while replaying), preserving any recorded
			// mints and placement a sharded site stamped on it.
			r.mu.Lock()
			_, _ = r.runOpLocked(op)
			r.mu.Unlock()
		}
	}
}

// replayDeliver dispatches a journaled delivery, bypassing the
// recoverBuf (which is for *live* traffic racing the replay).
func (r *Runtime) replayDeliver(from ids.SiteID, p netsim.Payload) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dispatchLocked(from, p)
}

// restoreRuntime rebuilds an unsharded runtime from a snapshot image.
// It does not register on the network; Recover does.
func restoreRuntime(net netsim.Network, opts Options, img *wire.SiteImage) (*Runtime, error) {
	r := &Runtime{
		id:          img.Site,
		net:         net,
		opts:        opts,
		st:          newStreams(),
		pendingRefs: make(map[ids.ObjectID][]pendingRef),
		seenIntro:   make(map[introKey]struct{}, len(img.SeenIntro)),
		removals:    img.Removals,
	}
	restoreStreams(r.st, img)
	var err error
	r.engine, err = core.Restore(img.Site, (*sender)(r), r.onRemove, opts.Engine, img.Engine)
	if err != nil {
		return nil, err
	}
	r.heap, err = heap.Restore((*hooks)(r), img.Heap)
	if err != nil {
		return nil, err
	}
	r.restoreShardState(img.PendingRefs, img.SeenIntro, img.Outbox)
	return r, nil
}

// restoreStreams rebuilds the shared stream table from a snapshot
// image. Each recovery opens a new epoch: peers seeing it on the next
// FrameAck re-arm their re-send dampers toward this site.
func restoreStreams(st *streams, img *wire.SiteImage) {
	st.mint = img.Mint
	st.epoch = img.Epoch + 1
	st.fstats = restoreFrameStats(img.Frames)
	for _, s := range img.SendStreams {
		st.send[streamKey{peer: s.Peer, kind: s.Kind}] = &sendStream{nextSeq: s.NextSeq, ackedTo: s.AckedTo}
	}
	for _, s := range img.RecvStreams {
		t := &recvTracker{watermark: s.Watermark}
		if len(s.Pending) > 0 {
			t.pending = make(map[uint64]struct{}, len(s.Pending))
			for _, seq := range s.Pending {
				t.pending[seq] = struct{}{}
			}
		}
		st.recv[streamKey{peer: s.Peer, kind: s.Kind}] = t
	}
	for _, pe := range img.PeerEpochs {
		st.peerEpoch[pe.Peer] = pe.Epoch
	}
}

// restoreShardState fills the per-shard delivery state (pending
// transfers, the transfer dedup set, the outbox) from its images.
// Outbox dampers reset on restore: the recovery re-send covers the
// first attempt, and the first refresh retries promptly.
func (r *Runtime) restoreShardState(pend []wire.PendingRefImage, intro []wire.IntroImage, outbox []wire.FrameImage) {
	for _, pr := range pend {
		r.pendingRefs[pr.Holder] = append(r.pendingRefs[pr.Holder], pendingRef{
			target: pr.Target, intro: pr.Intro, introSeq: pr.IntroSeq,
		})
	}
	for _, in := range intro {
		r.seenIntro[introKey{intro: in.Intro, seq: in.Seq}] = struct{}{}
	}
	for _, f := range outbox {
		r.outbox = append(r.outbox, outboundFrame{to: f.To, seq: f.Seq, p: f.Payload})
	}
}

// restoreFrameStats rebuilds the site counters from their image.
func restoreFrameStats(f wire.FrameStatsImage) FrameStats {
	return FrameStats{
		AcksSent: f.AcksSent, AcksReceived: f.AcksReceived,
		FramesRetired: f.FramesRetired, OutboxResends: f.OutboxResends,
		OutboxEvicted: f.OutboxEvicted, ResendsSuppressed: f.ResendsSuppressed,
		AdvancesSent: f.AdvancesSent,
	}
}

// exportShardStateLocked renders this runtime's partition of the site
// state: heap, engine, and delivery-side buffers — everything except
// the shared stream table. Caller holds r.mu at a quiescent point
// (engine drained).
func (r *Runtime) exportShardStateLocked() (wire.ShardState, error) {
	eng, err := r.engine.Export()
	if err != nil {
		return wire.ShardState{}, err
	}
	ss := wire.ShardState{
		Heap:     r.heap.Export(),
		Engine:   eng,
		Removals: r.removals,
	}
	for _, holder := range sortedObjectKeys(r.pendingRefs) {
		for _, pr := range r.pendingRefs[holder] {
			ss.PendingRefs = append(ss.PendingRefs, wire.PendingRefImage{
				Holder: holder, Target: pr.target, Intro: pr.intro, IntroSeq: pr.introSeq,
			})
		}
	}
	for k := range r.seenIntro {
		ss.SeenIntro = append(ss.SeenIntro, wire.IntroImage{Intro: k.intro, Seq: k.seq})
	}
	sortIntros(ss.SeenIntro)
	for _, f := range r.outbox {
		ss.Outbox = append(ss.Outbox, wire.FrameImage{To: f.to, Payload: f.p, Seq: f.seq})
	}
	return ss, nil
}

// exportStreamsInto renders the shared stream table into the image
// (deterministically ordered). Safe under any shard's r.mu: it takes
// the leaf st.mu itself.
func (st *streams) exportInto(img *wire.SiteImage) {
	st.mu.Lock()
	defer st.mu.Unlock()
	img.Mint = st.mint
	img.Epoch = st.epoch
	img.Frames = wire.FrameStatsImage{
		AcksSent: st.fstats.AcksSent, AcksReceived: st.fstats.AcksReceived,
		FramesRetired: st.fstats.FramesRetired, OutboxResends: st.fstats.OutboxResends,
		OutboxEvicted: st.fstats.OutboxEvicted, ResendsSuppressed: st.fstats.ResendsSuppressed,
		AdvancesSent: st.fstats.AdvancesSent,
	}
	keys := make([]streamKey, 0, len(st.send)+len(st.recv))
	for k := range st.send {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		s := st.send[k]
		img.SendStreams = append(img.SendStreams, wire.SendStreamImage{
			Peer: k.peer, Kind: k.kind, NextSeq: s.nextSeq, AckedTo: s.ackedTo,
		})
	}
	keys = keys[:0]
	for k := range st.recv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		t := st.recv[k]
		ri := wire.RecvStreamImage{Peer: k.peer, Kind: k.kind, Watermark: t.watermark}
		for seq := range t.pending {
			ri.Pending = append(ri.Pending, seq)
		}
		sort.Slice(ri.Pending, func(i, j int) bool { return ri.Pending[i] < ri.Pending[j] })
		img.RecvStreams = append(img.RecvStreams, ri)
	}
	peers := make([]ids.SiteID, 0, len(st.peerEpoch))
	for p := range st.peerEpoch {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, p := range peers {
		img.PeerEpochs = append(img.PeerEpochs, wire.PeerEpochImage{Peer: p, Epoch: st.peerEpoch[p]})
	}
}

// exportImageLocked renders the runtime's full state (an unsharded
// site, or shard 0's slice plus the shared streams — Sharded appends
// the sibling shards' states). Caller holds r.mu at a quiescent point
// (engine drained).
func (r *Runtime) exportImageLocked() (*wire.SiteImage, error) {
	ss, err := r.exportShardStateLocked()
	if err != nil {
		return nil, err
	}
	img := &wire.SiteImage{
		Site:        r.id,
		Removals:    ss.Removals,
		Heap:        ss.Heap,
		Engine:      ss.Engine,
		PendingRefs: ss.PendingRefs,
		SeenIntro:   ss.SeenIntro,
		Outbox:      ss.Outbox,
	}
	r.st.exportInto(img)
	return img, nil
}

// Checkpoint forces a snapshot now (and truncates the WAL). A no-op
// without a journal.
func (r *Runtime) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.journal.(*Persist)
	if !ok || p == nil {
		return nil
	}
	return p.ForceCheckpoint(r.exportImageLocked)
}

func sortedObjectKeys(m map[ids.ObjectID][]pendingRef) []ids.ObjectID {
	out := make([]ids.ObjectID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	ids.SortObjects(out)
	return out
}

// sortIntros uses sort.Slice, not the ids-package insertion sorts:
// seenIntro grows to maxSeenIntro (64k) entries on long-lived sites,
// and this runs under the runtime mutex at every snapshot.
func sortIntros(in []wire.IntroImage) {
	sort.Slice(in, func(i, j int) bool {
		if in[i].Intro != in[j].Intro {
			return in[i].Intro.Less(in[j].Intro)
		}
		return in[i].Seq < in[j].Seq
	})
}
