package wire

import (
	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// Message kinds, used for statistics. The paper's §4 comparison counts
// messages by purpose, so kinds distinguish mutator traffic from GGD
// control traffic.
const (
	KindCreate    = "mut.create"
	KindRef       = "mut.ref"
	KindDestroy   = "ggd.destroy"
	KindPropagate = "ggd.prop"
	KindAssert    = "ggd.assert"
	KindAck       = "ggd.ack"
	KindFrameAck  = "ggd.frameack"
	KindAdvance   = "ggd.advance"
	KindEnvelope  = "mut.envelope"
)

// Create asks the destination site to materialise a new object referenced
// by the creator: the paper's "root object 1 creates an object 2" (§3.1).
// The creator mints the identities, so no reply is needed.
type Create struct {
	// Creator is the holding cluster (source of the new edge).
	Creator ids.ClusterID
	// Stamp is the creator's clock at the send: the only piggybacked
	// log-keeping datum, carried by the creation message itself.
	Stamp uint64
	// Obj and Cluster are the minted identities of the new object.
	Obj     ids.ObjectID
	Cluster ids.ClusterID
	// Seq is the frame's sequence in the creator site's mutator
	// retirement stream to the destination (DESIGN.md §3.2); zero when
	// the sender retains no outbox (volatile sites, pre-v3 frames).
	Seq uint64
}

// Kind implements netsim.Payload.
func (Create) Kind() string { return KindCreate }

// ApplicationTraffic implements netsim.Application: creation is reliable
// mutator RPC.
func (Create) ApplicationTraffic() bool { return true }

// ApproxSize implements netsim.Payload.
func (Create) ApproxSize() int { return 56 }

// RefTransfer carries a copy of a reference from a holder object to a
// remote object: the mutator message of Fig 7 (light grey arrows). Target
// may denote the sender itself, a local object, or a third-party object on
// yet another site — the receiver cannot and need not tell the difference.
type RefTransfer struct {
	// FromCluster is the sending cluster: the introducer of the edge the
	// receiver is about to create.
	FromCluster ids.ClusterID
	// IntroSeq is the sender's forwarding sequence number for this copy
	// (the paper's DV_i[k][j] increment), echoed by the receiver's
	// edge-assert to resolve the introduction hint.
	IntroSeq uint64
	// ToObj is the receiving object; its site is the destination.
	ToObj ids.ObjectID
	// ToCluster is ToObj's cluster, as known to the sender. It lets the
	// destination prove a dead introduction: if the cluster is known
	// there (registered or tombstoned) but the object is gone, the
	// holder was collected and the edge can never form — the receiving
	// site then expires the introduction instead of parking the frame
	// forever (core.Engine.ResolveIntroduction).
	ToCluster ids.ClusterID
	// Target is the reference being copied.
	Target heap.Ref
	// Seq is the frame's sequence in the sender site's mutator
	// retirement stream to the destination (DESIGN.md §3.2); zero when
	// the sender retains no outbox or the transfer carries no dedup
	// identity (IntroSeq zero).
	Seq uint64
}

// Kind implements netsim.Payload.
func (RefTransfer) Kind() string { return KindRef }

// ApplicationTraffic implements netsim.Application: reference exchange is
// reliable mutator RPC.
func (RefTransfer) ApplicationTraffic() bool { return true }

// ApproxSize implements netsim.Payload.
func (RefTransfer) ApproxSize() int { return 80 }

// Destroy is the edge-destruction control message (§3.4): sent when the
// last reference from From's cluster to To's cluster is destroyed, and by
// the finalisation of detected garbage (§3.2). It carries the row kept by
// the sender on behalf of To: authoritative stamps with the sender's
// column replaced by Ē(clock), the bundled third-party edge-creation
// hints, and the processed-introduction record.
type Destroy struct {
	From ids.ClusterID
	To   ids.ClusterID
	M    core.DestroyMsg
	// Seq is the frame's sequence in the sender site's destroy (or,
	// with Legacy set, legacy) retirement stream to the destination
	// (DESIGN.md §3.2); zero for untracked frames.
	Seq uint64
	// Legacy marks a retained finalisation bundle of a removed process.
	Legacy bool
}

// Kind implements netsim.Payload.
func (Destroy) Kind() string { return KindDestroy }

// ApproxSize implements netsim.Payload.
func (d Destroy) ApproxSize() int {
	return 41 + 24*(len(d.M.Auth)+len(d.M.Hints)+len(d.M.Processed))
}

// Assert is the edge-assert control message: the deferred, idempotent
// acknowledgement a cluster sends when it first acquires a reference to a
// remote cluster, carrying its authoritative live stamp and resolving the
// introduction that created the edge (see package core).
type Assert struct {
	From ids.ClusterID
	To   ids.ClusterID
	M    core.AssertMsg
	// Seq is the frame's sequence in the sender site's assert
	// retirement stream to the destination (DESIGN.md §3.2).
	Seq uint64
}

// Kind implements netsim.Payload.
func (Assert) Kind() string { return KindAssert }

// ApproxSize implements netsim.Payload.
func (Assert) ApproxSize() int { return 64 }

// HintAck is the legacy per-row acknowledgement of an edge-assert,
// superseded by the cumulative FrameAck (DESIGN.md §3.2). It is no
// longer sent; the type remains registered so pre-v3 write-ahead logs
// decode and replay identically, retiring the echoed journal row.
type HintAck struct {
	From ids.ClusterID
	To   ids.ClusterID
	M    core.AckMsg
}

// Kind implements netsim.Payload.
func (HintAck) Kind() string { return KindAck }

// ApproxSize implements netsim.Payload.
func (HintAck) ApproxSize() int { return 56 }

// FrameAck is the cumulative acknowledgement of the acknowledged-
// retirement protocol (DESIGN.md §3.2): the sending site has reached a
// final, replayable disposition for every frame of the named stream
// from the destination site with sequence ≤ Seq. The destination
// retires the covered retained state exactly — outbox frames,
// assert-journal rows, destroyed-edge bundles, legacy finalisation
// bundles — instead of re-shipping it every refresh round. Acks are
// GGD-plane traffic: idempotent (watermarks merge by max) and
// loss-tolerant (a re-delivered frame re-sends the current watermark).
type FrameAck struct {
	// Stream names the retirement stream the watermark covers.
	Stream core.Stream
	// Seq is the cumulative watermark: every sequence ≤ Seq is settled.
	Seq uint64
	// Epoch counts the sender's recoveries. A change tells the receiver
	// the peer restarted and re-arms its re-send dampers for that peer.
	Epoch uint64
}

// Kind implements netsim.Payload.
func (FrameAck) Kind() string { return KindFrameAck }

// ApproxSize implements netsim.Payload.
func (FrameAck) ApproxSize() int { return 25 }

// StreamAdvance is the sender-side floor advisory of the retirement
// protocol: every frame of the named stream with sequence < Floor is
// either already acknowledged or permanently abandoned (its retained
// row was retired through another path, or evicted at a hard cap), so
// the receiver may advance its cumulative watermark to Floor-1 and stop
// waiting for gaps that will never fill. Idempotent and loss-tolerant;
// sent during Refresh only while the sender observes its acknowledged
// watermark trailing its floor.
type StreamAdvance struct {
	// Stream names the retirement stream.
	Stream core.Stream
	// Floor is the smallest sequence the sender still retains (or one
	// past its last assigned sequence when it retains nothing).
	Floor uint64
}

// Kind implements netsim.Payload.
func (StreamAdvance) Kind() string { return KindAdvance }

// ApproxSize implements netsim.Payload.
func (StreamAdvance) ApproxSize() int { return 17 }

// Envelope is the wire-level coalescing frame of the batched mutator
// API (DESIGN.md §3.3): every payload a batch commit (or the dispatch
// of a received envelope) produced for one destination site, carried in
// one transport send — one length-prefixed socket write on the TCP
// backend instead of one per frame. The receiver dispatches the inner
// frames in order, journals the whole envelope as a single delivery
// record, and settles/acknowledges once per envelope rather than once
// per frame. Inner frames keep their own retirement-stream sequences,
// so re-sends (always bare frames) fill the same receiver-side gaps.
//
// To netsim's per-kind statistics and per-kind drop faults an envelope
// is one "mut.envelope" payload: inner kinds are not unwrapped
// (counting both would double-book the traffic). The targeted per-kind
// fault lanes drive singleton runtime entry points, which never
// envelope, so their coverage is unaffected; kind-level byte
// measurements of batched runs see envelope totals instead of
// per-inner-kind splits.
type Envelope struct {
	// Frames are the coalesced payloads, in send order. An Envelope
	// never nests another Envelope.
	Frames []netsim.Payload
}

// Kind implements netsim.Payload.
func (Envelope) Kind() string { return KindEnvelope }

// ApproxSize implements netsim.Payload: framing overhead plus the inner
// payload sizes.
func (e Envelope) ApproxSize() int {
	n := 8
	for _, f := range e.Frames {
		n += f.ApproxSize()
	}
	return n
}

// ApplicationTraffic implements netsim.Application dynamically: an
// envelope rides the reliable mutator channel exactly when it carries
// at least one mutator frame (batch commits); control-only envelopes
// (a receiver's coalesced ack/assert responses) stay fault-eligible,
// like the bare frames they replace.
func (e Envelope) ApplicationTraffic() bool {
	for _, f := range e.Frames {
		if !netsim.FaultEligible(f) {
			return true
		}
	}
	return false
}

// Propagate circulates increasingly accurate approximations of dependency
// vectors along the out-edges of the global root graph (§3.3, step 3 of
// the algorithm): the sender's first-hand incoming-edge vector and clock,
// the confirmed first-hand vectors of its known ancestry, and its
// on-behalf entries. Everything is edge-keyed, so receivers merge per
// edge and every member of a garbage cycle converges on the same causal
// picture in O(cycle) messages.
type Propagate struct {
	From ids.ClusterID
	To   ids.ClusterID
	M    core.Propagation
}

// Kind implements netsim.Payload.
func (Propagate) Kind() string { return KindPropagate }

// ApproxSize implements netsim.Payload.
func (p Propagate) ApproxSize() int {
	n := 40 + 24*len(p.M.Auth) + 16*len(p.M.HintCols)
	for _, r := range p.M.Rows {
		n += 16 + 24*len(r.Auth) + 16*len(r.HintCols)
	}
	for _, r := range p.M.OBs {
		n += 16 + 24*(len(r.Auth)+len(r.Hints))
	}
	return n
}

// Interface checks.
var (
	_ netsim.Payload     = Create{}
	_ netsim.Payload     = RefTransfer{}
	_ netsim.Payload     = Destroy{}
	_ netsim.Payload     = Propagate{}
	_ netsim.Payload     = Assert{}
	_ netsim.Payload     = HintAck{}
	_ netsim.Payload     = FrameAck{}
	_ netsim.Payload     = StreamAdvance{}
	_ netsim.Payload     = Envelope{}
	_ netsim.Application = Create{}
	_ netsim.Application = RefTransfer{}
	_ netsim.Application = Envelope{}
)
