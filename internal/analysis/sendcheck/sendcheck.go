// Package sendcheck enforces the emitLocked funnel (DESIGN.md §3.3,
// §5): inside the site runtime every outbound frame must flow through
// the emitLocked coalescer, because that is the single point where
// journal-before-send ordering and per-peer envelope coalescing are
// guaranteed. A direct transport Send anywhere else can ship a frame
// that was never journaled or that escapes an open commit window, so
// new code cannot silently bypass the invariant.
//
// Only the coalescer itself (emitLocked) and its flush path
// (flushCoalesceLocked) may call Send; an audited exception would
// carry //causalgc:allow-direct-send with a justification.
package sendcheck

import (
	"go/ast"

	"causalgc/internal/analysis"
)

// Config scopes the analyzer: which packages the funnel rule applies
// to and which functions are the funnel.
type Config struct {
	// Packages are the import paths where direct sends are forbidden.
	Packages []string
	// AllowIn names the functions that form the sanctioned send path.
	AllowIn []string
}

// Analyzer is the sendcheck instance run by causalgc-vet, scoped to
// the site runtime with emitLocked/flushCoalesceLocked as the funnel.
var Analyzer = New(Config{
	Packages: []string{"causalgc/internal/site"},
	AllowIn:  []string{"emitLocked", "flushCoalesceLocked"},
})

// New returns a sendcheck analyzer for the given scope.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "sendcheck",
		Doc:         "wire output must go through the emitLocked coalescer so journal-before-send and envelope coalescing cannot be bypassed",
		NonTestOnly: true,
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	applies := false
	for _, p := range cfg.Packages {
		if pass.PkgPath == p {
			applies = true
		}
	}
	if !applies {
		return nil
	}
	allowed := map[string]bool{}
	for _, fn := range cfg.AllowIn {
		allowed[fn] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || allowed[fd.Name.Name] {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// checkBody flags transport Send calls in one function, attributing
// calls inside closures to the enclosing declaration.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Send" {
			return true
		}
		if pass.Allowed(call.Pos(), "direct-send") {
			return true
		}
		pass.Reportf(call.Pos(), "direct %s.Send in %s bypasses the emitLocked coalescer (journal-before-send and envelope coalescing are only guaranteed on that path)", exprString(sel.X), fd.Name.Name)
		return true
	})
}

// exprString renders the receiver expression of a selector for the
// diagnostic; it only needs to be recognisable, not exact.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "transport"
}
