package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"causalgc/internal/ids"
)

// Sim is the deterministic network simulator: a single-threaded message
// scheduler with seeded pseudo-random choice of the next channel to
// deliver from. With the same seed, workload and fault plan, a run is
// fully reproducible — which is what lets the test suite check the GGD
// safety invariant over many adversarial schedules.
//
// Sim is not safe for concurrent use; it is driven from one goroutine.
type Sim struct {
	handlers map[ids.SiteID]Handler
	queues   map[channel][]Payload
	order    []channel // sorted keys of non-empty queues
	rng      *rand.Rand
	faults   Faults
	stats    *Stats
	inFlight int
	delivers int
}

type channel struct {
	from, to ids.SiteID
}

func (c channel) less(o channel) bool {
	if c.from != o.from {
		return c.from < o.from
	}
	return c.to < o.to
}

// NewSim creates a simulator with the given fault plan.
func NewSim(f Faults) *Sim {
	return &Sim{
		handlers: make(map[ids.SiteID]Handler),
		queues:   make(map[channel][]Payload),
		rng:      rand.New(rand.NewSource(f.Seed)),
		faults:   f,
		stats:    NewStats(),
	}
}

var _ Network = (*Sim)(nil)

// Register installs the handler for a site.
func (s *Sim) Register(site ids.SiteID, h Handler) {
	s.handlers[site] = h
}

// Stats returns the delivery statistics.
func (s *Sim) Stats() *Stats { return s.stats }

// Send queues p from -> to, applying the fault plan: partition and drop
// lose the message, duplication enqueues it twice.
func (s *Sim) Send(from, to ids.SiteID, p Payload) {
	s.stats.RecordSent(p)
	if FaultEligible(p) {
		if s.faults.Partitioned != nil && s.faults.Partitioned(from, to) {
			s.stats.RecordDropped(p)
			return
		}
		if s.faults.DropProb > 0 && s.rng.Float64() < s.faults.DropProb {
			s.stats.RecordDropped(p)
			return
		}
		if kp := s.faults.DropKindProb[p.Kind()]; kp > 0 && s.rng.Float64() < kp {
			s.stats.RecordDropped(p)
			return
		}
		if s.faults.DupProb > 0 && s.rng.Float64() < s.faults.DupProb {
			s.stats.RecordDuplicated(p)
			s.enqueue(from, to, p)
		}
	}
	s.enqueue(from, to, p)
}

func (s *Sim) enqueue(from, to ids.SiteID, p Payload) {
	ch := channel{from: from, to: to}
	q := s.queues[ch]
	if len(q) == 0 {
		s.insertChannel(ch)
	}
	s.queues[ch] = append(q, p)
	s.inFlight++
}

func (s *Sim) insertChannel(ch channel) {
	i := sort.Search(len(s.order), func(i int) bool { return !s.order[i].less(ch) })
	if i < len(s.order) && s.order[i] == ch {
		return
	}
	s.order = append(s.order, channel{})
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = ch
}

func (s *Sim) removeChannel(ch channel) {
	i := sort.Search(len(s.order), func(i int) bool { return !s.order[i].less(ch) })
	if i < len(s.order) && s.order[i] == ch {
		s.order = append(s.order[:i], s.order[i+1:]...)
	}
}

// Pending returns the number of queued, undelivered messages.
func (s *Sim) Pending() int { return s.inFlight }

// Deliveries returns the number of messages delivered so far.
func (s *Sim) Deliveries() int { return s.delivers }

// Step delivers one message, chosen pseudo-randomly among the non-empty
// channels (FIFO within a channel unless Faults.Reorder). It reports
// whether a message was delivered.
func (s *Sim) Step() bool {
	if len(s.order) == 0 {
		return false
	}
	ch := s.order[s.rng.Intn(len(s.order))]
	q := s.queues[ch]
	idx := 0
	if s.faults.Reorder && len(q) > 1 {
		idx = s.rng.Intn(len(q))
	}
	p := q[idx]
	q = append(q[:idx], q[idx+1:]...)
	if len(q) == 0 {
		delete(s.queues, ch)
		s.removeChannel(ch)
	} else {
		s.queues[ch] = q
	}
	s.inFlight--
	s.delivers++
	h := s.handlers[ch.to]
	if h == nil {
		// Unregistered destination: the message is lost (e.g. a straggler
		// to a site that was torn down). This models the paper's
		// tolerance of loss.
		s.stats.RecordDropped(p)
		return true
	}
	s.stats.RecordDelivered(p)
	h(ch.from, p)
	return true
}

// Run delivers messages until the network is quiet or maxSteps messages
// have been delivered (0 means no limit). It returns the number of
// deliveries and an error if the step budget was exhausted while messages
// were still pending — which in this system indicates a propagation that
// fails to reach a fixpoint.
func (s *Sim) Run(maxSteps int) (int, error) {
	n := 0
	for s.Step() {
		n++
		if maxSteps > 0 && n >= maxSteps && s.inFlight > 0 {
			return n, fmt.Errorf("netsim: %d messages still pending after %d deliveries", s.inFlight, n)
		}
	}
	return n, nil
}

// Drain delivers every queued message (the single-threaded equivalent of
// a transport flush) and reports whether the network is quiet. The
// timeout is accepted for interface compatibility with the public
// transport.Drainer capability; delivery is synchronous, so it is not
// consulted.
func (s *Sim) Drain(timeout time.Duration) bool {
	_ = timeout
	_, err := s.Run(0)
	return err == nil && s.inFlight == 0
}

// Unregister removes a site's handler, modelling a crashed process:
// messages delivered to it afterwards are dropped (tolerated loss)
// until a recovered runtime re-registers.
func (s *Sim) Unregister(site ids.SiteID) {
	delete(s.handlers, site)
}

// DropPendingTo discards the queued GGD control messages addressed to a
// site, modelling the in-flight frames a process crash loses; it
// returns the number dropped. Application payloads (mutator RPC) stay
// queued: the model — like the paper's §3.4 — assumes the application
// retries its own messages until delivered, so they reach the restarted
// site.
func (s *Sim) DropPendingTo(site ids.SiteID) int {
	dropped := 0
	for ch, q := range s.queues {
		if ch.to != site {
			continue
		}
		keep := q[:0]
		for _, p := range q {
			if FaultEligible(p) {
				s.stats.RecordDropped(p)
				s.inFlight--
				dropped++
				continue
			}
			keep = append(keep, p)
		}
		if len(keep) == 0 {
			delete(s.queues, ch)
			s.removeChannel(ch)
		} else {
			s.queues[ch] = keep
		}
	}
	return dropped
}

// Rand exposes the simulator's seeded source so workloads can share it and
// stay reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetPartition replaces the partition predicate at runtime (nil heals).
func (s *Sim) SetPartition(f func(from, to ids.SiteID) bool) {
	s.faults.Partitioned = f
}

// SetDropProb replaces the drop probability at runtime.
func (s *Sim) SetDropProb(p float64) { s.faults.DropProb = p }

// SetDropKindProb replaces the per-kind drop probability for one payload
// kind at runtime (0 heals that kind).
func (s *Sim) SetDropKindProb(kind string, p float64) {
	if s.faults.DropKindProb == nil {
		s.faults.DropKindProb = make(map[string]float64)
	}
	s.faults.DropKindProb[kind] = p
}

// SetDupProb replaces the duplication probability at runtime.
func (s *Sim) SetDupProb(p float64) { s.faults.DupProb = p }
