// Package core implements the paper's contribution: comprehensive Global
// Garbage Detection (GGD) by reconstructing the vector times of the
// mutator's log-keeping events (§3).
//
// One Engine runs per site and hosts one process per local cluster (global
// root). The engine is driven by:
//
//   - lazy log-keeping hooks from the heap (EdgeUp/EdgeDown/SentRef, §3.4);
//   - edge-assert control messages (HandleAssert) — see below;
//   - edge-destruction control messages (HandleDestroy, §3.1);
//   - dependency-vector propagations (HandlePropagate, §3.3 step 3);
//   - explicit refresh rounds (Refresh), the §5 recovery mechanism.
//
// # Realisation of the paper's Fig 6
//
// The scanned pseudo-code is OCR-lossy; this implementation follows the
// reconstruction documented in DESIGN.md §2. Stamps are edge-keyed: the
// value in column q of a process's own vector concerns exactly the edge
// q→process and lives in q's clock space, so merges are totally ordered
// per edge and the logs converge monotonically.
//
// # The introduction race and edge-asserts
//
// The paper's sender-side third-party entries (DV_i[k][j]++, §3.4) are
// counters in the *sender's* number space, while destruction stamps Ē are
// in the *edge source's* clock space. Merging them by magnitude — as the
// paper's max-merge does — lets an old Ē mask a newer in-flight
// introduction of the same edge: process j drops its last reference to k
// (Ē shipped), a third party's forwarded reference re-creates the edge
// j→k, and k, having merged the bigger Ē over the small count, removes
// itself while j holds a live reference. Randomised stress tests readily
// find this race (demonstrated by the A2 ablation experiment).
//
// This implementation therefore keeps the two kinds of knowledge apart:
//
//   - Authoritative stamps: only the edge's source writes them (creation
//     on acquisition, Ē on destruction), totally ordered per edge.
//   - Introduction hints (col, introducer, forwarding-seq): conservative
//     liveness recorded from bundles and gossip; a pending hint blocks a
//     garbage verdict.
//
// A hint is resolved by the source's word issued causally after the
// forwarded reference arrived: the source sends one small idempotent
// edge-assert when it first acquires the reference, and its destruction
// bundles carry the introductions it has processed. Asserts are deferred,
// idempotent, loss-tolerant GGD-plane messages — the mutator's exchange
// itself still carries no synchronous control traffic, preserving the
// substance of the paper's lazy log-keeping claim (the assert count is
// reported separately by every benchmark).
//
// # Hint resolution is guaranteed, not best-effort
//
// A pending hint blocks a garbage verdict, so an introduction that is
// never resolved pins its owner forever — the one leak the engine used
// to tolerate. Three mechanisms close it:
//
//   - Assert re-send: every edge-assert is journaled per (holder,
//     target, introducer, forwarding-seq) until the hint's owner
//     acknowledges it with a HintAck; Refresh re-ships the journal
//     alongside the destroyed-edge bundles. Loss of an assert (or of
//     its ack) costs one refresh round, never the resolution.
//   - Hint expiry: a forwarding whose reference was delivered and
//     discarded without an edge ever forming — the holder object
//     already collected, its cluster tombstoned — can never be consumed
//     by the source's word. The receiving site expires it at the owner
//     with a stampless negative assert for exactly that (introducer,
//     forwarding-seq), journaled and re-sent like any other
//     (ResolveIntroduction). Expiry is causally safe: the negative
//     assert is issued after the delivery that proves no edge resulted,
//     and a fresher forwarding carries a higher seq that the expiry
//     bound does not cover.
//   - Retained finalisation bundles: the destroy bundles a removed
//     process sends carry the processed-introduction records that
//     resolve its hints, but the process is gone — a lost bundle could
//     not be re-shipped from its on-behalf rows. Removal therefore
//     retains the bundles (bounded FIFO) and Refresh re-sends them.
//
// Detection then proceeds exactly as in §3.6: GGD work starts when an
// edge-destruction message arrives, first-hand vectors circulate along
// the edges of the global root graph (with row gossip) until the logs
// reach a fixpoint, and garbage removal cascades through finalisation
// destroys — collecting distributed cycles without any global consensus.
package core

import (
	"fmt"
	"sort"

	"causalgc/internal/ids"
	"causalgc/internal/ring"
	"causalgc/internal/vclock"
)

// Propagation is the payload of a dependency-vector propagation (§3.3
// step 3): the sender's first-hand incoming-edge state and clock, relayed
// copies of other processes' first-hand rows, and the sender's own
// on-behalf entries. Everything merges per edge at the receiver, so
// propagations are idempotent and tolerate loss, duplication and
// reordering (§5).
type Propagation struct {
	Clock    uint64
	Auth     vclock.Vector
	HintCols []ids.ClusterID
	Rows     map[ids.ClusterID]RowGossip
	OBs      map[ids.ClusterID]OBGossip
}

// RowGossip is a relayed copy of a process's first-hand state.
type RowGossip struct {
	Auth     vclock.Vector
	HintCols []ids.ClusterID
}

// OBGossip is the sender's first-hand on-behalf entries for one process.
type OBGossip struct {
	Auth  vclock.Vector
	Hints vclock.Vector
}

// DestroyMsg is the §3.4 edge-destruction control message: the sender's
// authoritative stamps for the target's incoming edges (its own column
// replaced by Ē), the forwarding hints it brokered — "multiple
// edge-creation control messages bundled with an edge-destruction control
// message in one atomic delivery" — and the introductions it processed
// for its own edge, which resolve the corresponding hints at the target.
type DestroyMsg struct {
	Auth      vclock.Vector
	Hints     vclock.Vector
	Processed vclock.Vector
}

// AssertMsg is the edge-assert: the source's authoritative live stamp for
// its edge to the target, resolving the introduction (Intro, IntroSeq).
// A zero Stamp is a negative assert: it carries no liveness claim and
// only expires the introduction (see ResolveIntroduction).
type AssertMsg struct {
	Stamp    uint64
	Intro    ids.ClusterID
	IntroSeq uint64
}

// AckMsg acknowledges one edge-assert: the hint's owner echoes the
// assert's identity back to the asserter, which retires the matching
// re-send journal row. Acks are GGD-plane traffic — idempotent and
// loss-tolerant; a lost ack merely costs one more re-send.
type AckMsg struct {
	Intro    ids.ClusterID
	IntroSeq uint64
	Stamp    uint64
}

// Sender transmits GGD control messages to other sites. The site runtime
// implements it on top of the network; local deliveries never touch it.
type Sender interface {
	SendDestroy(from, to ids.ClusterID, m DestroyMsg)
	SendPropagate(from, to ids.ClusterID, m Propagation)
	SendAssert(from, to ids.ClusterID, m AssertMsg)
	SendAck(from, to ids.ClusterID, m AckMsg)
}

// Stats counts engine activity for the experiment harness.
type Stats struct {
	// Removed counts clusters detected as garbage and removed.
	Removed int
	// Evaluations counts closure computations.
	Evaluations int
	// PropagationsSent counts dependency vectors sent (local and remote).
	PropagationsSent int
	// DestroysSent counts edge-destruction messages sent (local and
	// remote), including finalisation destroys.
	DestroysSent int
	// AssertsSent counts edge-assert messages sent (first sends, negative
	// asserts included).
	AssertsSent int
	// AssertResends counts journaled edge-asserts re-sent by Refresh.
	AssertResends int
	// AcksSent counts HintAck messages sent back to asserters.
	AcksSent int
	// HintsExpired counts introduction hints expired as provably stale
	// (negative asserts processed, local expiries included).
	HintsExpired int
	// StaleDeliveries counts messages addressed to removed or unknown
	// processes (harmless; dropped).
	StaleDeliveries int
}

// Options tune the engine.
type Options struct {
	// UnsafeSkipConfirmation disables the row-confirmation guard
	// (DESIGN.md interpretation #4). A2 ablation only.
	UnsafeSkipConfirmation bool
	// UnsafeNoHints disables introduction hints and edge-asserts,
	// reproducing the paper's raw max-merge of counts and Ē stamps. A2
	// ablation only: exhibits the introduction race.
	UnsafeNoHints bool
	// RemoveObserver, when non-nil, is called with the process's final log
	// just before removal (diagnostics and the trace tooling).
	RemoveObserver func(id ids.ClusterID, log *vclock.Log, clock uint64)
}

// Engine is one site's GGD runtime. It is not safe for concurrent use;
// the site runtime serialises access.
type Engine struct {
	site     ids.SiteID
	send     Sender
	onRemove func(ids.ClusterID)
	opts     Options

	procs     map[ids.ClusterID]*process
	tombstone map[ids.ClusterID]uint64 // removed cluster → final clock

	inbox    []delivery
	draining bool
	// pending buffers control messages that raced ahead of their target's
	// creation message (reordered channels): replayed on Register. Bounded
	// per cluster; overflow falls back to dropping (loss-equivalent, safe).
	pending map[ids.ClusterID][]delivery

	// asserts is the re-send journal: every un-acknowledged edge-assert,
	// keyed by (holder, target, introducer, forwarding-seq), valued with
	// the asserted stamp (zero for negative asserts). Rows are retired by
	// the owner's HintAck, by the edge's destruction (the destroy bundle
	// takes over resolution), or by the holder's removal; Refresh
	// re-sends whatever remains. Bounded: past maxAssertRows new rows are
	// dropped (loss-equivalent — deterministic, so replay agrees).
	asserts map[assertRow]uint64
	// legacy retains the finalisation destroy bundles of removed
	// processes for Refresh re-send: once the process is gone its
	// on-behalf rows can no longer re-ship them, yet they carry the
	// records that resolve the successors' hints. A fixed-capacity
	// ring: eviction overwrites the oldest in place (loss-equivalent).
	legacy *ring.Ring[legacyDestroy]

	stats Stats
}

// assertRow identifies one journaled edge-assert.
type assertRow struct {
	holder, target, intro ids.ClusterID
	seq                   uint64
}

// legacyDestroy is one retained finalisation destroy bundle.
type legacyDestroy struct {
	from, to ids.ClusterID
	m        DestroyMsg
}

const (
	// maxAssertRows bounds the assert re-send journal.
	maxAssertRows = 4096
	// maxLegacy bounds the retained finalisation bundles.
	maxLegacy = 1024
)

// process is the per-global-root state: the paper's "each global root
// appears as a process" (§3.1).
type process struct {
	id    ids.ClusterID
	clock uint64
	log   *vclock.Log
	// acq is the paper's Acquaintances_i: the targets of the process's
	// live out-edges in the global root graph, i.e. its remote successors.
	acq ids.ClusterSet
	// active marks participation in a GGD episode: set when a destroy or
	// a propagation arrives (§3.6: "GGD is only triggered when the edge
	// ... is removed"). Edge-asserts received by inactive processes are
	// plain bookkeeping and do not start propagation rounds, keeping pure
	// mutation free of GGD fan-out.
	active bool
}

type delivery struct {
	to, from ids.ClusterID
	kind     deliveryKind
	destroy  DestroyMsg
	prop     Propagation
	assert   AssertMsg
}

type deliveryKind int

const (
	deliverDestroy deliveryKind = iota + 1
	deliverPropagate
	deliverAssert
)

// New creates an engine. send must not be nil; onRemove is invoked for
// every cluster the engine removes (the site runtime clears the heap's
// entry table there) and may be nil.
func New(site ids.SiteID, send Sender, onRemove func(ids.ClusterID), opts Options) *Engine {
	return &Engine{
		site:      site,
		send:      send,
		onRemove:  onRemove,
		opts:      opts,
		procs:     make(map[ids.ClusterID]*process),
		tombstone: make(map[ids.ClusterID]uint64),
		pending:   make(map[ids.ClusterID][]delivery),
		asserts:   make(map[assertRow]uint64),
		legacy:    ring.New[legacyDestroy](maxLegacy),
	}
}

// Stats returns a copy of the activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Register creates the process for a local cluster. Registering an
// existing or tombstoned process is a no-op (idempotent).
func (e *Engine) Register(cl ids.ClusterID) {
	if cl.Site != e.site {
		panic(fmt.Sprintf("core %v: register foreign cluster %v", e.site, cl))
	}
	if _, ok := e.procs[cl]; ok {
		return
	}
	if _, dead := e.tombstone[cl]; dead {
		return
	}
	e.procs[cl] = &process{
		id:  cl,
		log: vclock.NewLog(cl),
		acq: ids.NewClusterSet(),
	}
	if buffered := e.pending[cl]; len(buffered) > 0 {
		delete(e.pending, cl)
		e.inbox = append(e.inbox, buffered...)
	}
}

// Registered reports whether cl has a live process.
func (e *Engine) Registered(cl ids.ClusterID) bool {
	_, ok := e.procs[cl]
	return ok
}

// Removed reports whether cl was detected as garbage and removed.
func (e *Engine) Removed(cl ids.ClusterID) bool {
	_, dead := e.tombstone[cl]
	return dead
}

// Clock returns the process's current event counter (final counter for
// removed processes).
func (e *Engine) Clock(cl ids.ClusterID) uint64 {
	if p := e.procs[cl]; p != nil {
		return p.clock
	}
	return e.tombstone[cl]
}

// LogSnapshot returns a deep copy of the process's log (trace tooling), or
// nil for removed/unknown processes.
func (e *Engine) LogSnapshot(cl ids.ClusterID) *vclock.Log {
	if p := e.procs[cl]; p != nil {
		return p.log.Clone()
	}
	return nil
}

// Acquaintances returns the process's current successors, sorted.
func (e *Engine) Acquaintances(cl ids.ClusterID) []ids.ClusterID {
	if p := e.procs[cl]; p != nil {
		return p.acq.Sorted()
	}
	return nil
}

// Processes returns the live local processes, sorted.
func (e *Engine) Processes() []ids.ClusterID {
	out := make([]ids.ClusterID, 0, len(e.procs))
	for id := range e.procs {
		out = append(out, id)
	}
	ids.SortClusters(out)
	return out
}

// --- Lazy log-keeping (§3.4) -------------------------------------------

// EdgeUp records the creation (or re-assertion) of the global-root-graph
// edge holder→target, stamped in the holder's clock space. intro and
// introSeq identify the introduction being consumed (the cluster whose
// forwarded reference created the edge, and its forwarding sequence
// number); they are zero for locally originated references.
//
// For a local target everything is written directly (same site, atomic).
// For a remote target the holder records its authoritative stamp on
// behalf of the target and, on a 0→1 transition, sends one deferred
// idempotent edge-assert so the target can resolve the introduction.
func (e *Engine) EdgeUp(holder, target ids.ClusterID, first bool, intro ids.ClusterID, introSeq uint64) {
	if holder == target {
		return
	}
	p, ok := e.procs[holder]
	if !ok {
		e.stats.StaleDeliveries++
		return
	}
	p.clock++
	stamp := vclock.At(p.clock)
	if first {
		p.acq.Add(target)
	}
	if target.Site == e.site {
		if t, tok := e.procs[target]; tok {
			t.log.Own().MergeEntry(holder, stamp)
			if intro.Valid() && introSeq > 0 && introSeq != ids.CreationSeq {
				t.log.Hints().Clear(holder, intro, introSeq)
			}
		}
		return
	}
	ob := p.log.OB(target)
	ob.Auth.MergeEntry(holder, stamp)
	creation := introSeq == ids.CreationSeq
	if intro.Valid() && introSeq > 0 && !creation {
		ob.Processed.MergeEntry(intro, vclock.At(introSeq))
	}
	// A creation needs no assert: the creation message itself carries the
	// authoritative stamp to the new cluster.
	if first && !creation && !e.opts.UnsafeNoHints {
		m := AssertMsg{Stamp: p.clock, Intro: intro, IntroSeq: introSeq}
		e.journalAssert(assertRow{holder: holder, target: target, intro: intro, seq: introSeq}, m.Stamp)
		e.stats.AssertsSent++
		e.send.SendAssert(holder, target, m)
	}
}

// journalAssert records an un-acknowledged assert for Refresh re-send.
// At the bound, a new positive row is dropped (loss-equivalent: its
// introduction sits in the on-behalf Processed vector, so the edge's
// eventual destroy bundle still resolves the hint), while a new
// negative row evicts an existing one — an expired introduction appears
// in no bundle, so dropping the freshly-sent row would pin the owner's
// hint on a single message loss. The victim is a positive row when one
// exists, else the deterministically-first negative row (the oldest in
// re-send order, which has had the most delivery attempts). All choices
// are deterministic, so WAL replay reconstructs the journal.
func (e *Engine) journalAssert(row assertRow, stamp uint64) {
	if _, ok := e.asserts[row]; !ok && len(e.asserts) >= maxAssertRows {
		if stamp > 0 {
			return
		}
		e.evictAssertRow()
	}
	e.asserts[row] = stamp
}

// evictAssertRow removes the deterministically-first positive journal
// row, falling back to the deterministically-first negative row when
// the journal holds no positive ones.
func (e *Engine) evictAssertRow() {
	var posVictim, negVictim assertRow
	posFound, negFound := false, false
	for row, stamp := range e.asserts {
		if stamp > 0 {
			if !posFound || assertRowLess(row, posVictim) {
				posVictim, posFound = row, true
			}
		} else if !negFound || assertRowLess(row, negVictim) {
			negVictim, negFound = row, true
		}
	}
	switch {
	case posFound:
		delete(e.asserts, posVictim)
	case negFound:
		delete(e.asserts, negVictim)
	}
}

// retireAsserts drops the positive journal rows for edge holder→target:
// their introductions were recorded in the on-behalf Processed vector
// when consumed, so the edge's destruction bundle (itself re-sent by
// Refresh while the Ē stamp sits in the on-behalf row) takes over
// resolving the hints. Negative rows (stamp zero) must survive — their
// expired introductions appear in no bundle, so only the owner's ack
// may ever retire them.
func (e *Engine) retireAsserts(holder, target ids.ClusterID) {
	for row, stamp := range e.asserts {
		if stamp > 0 && row.holder == holder && row.target == target {
			delete(e.asserts, row)
		}
	}
}

// SentRef records that the holder forwarded a reference denoting target
// to the cluster dest — the paper's DV_i[k][j]++ (third party) and
// DV_i[i][j]++ (own reference) — and returns the forwarding sequence
// number to embed in the mutator message.
func (e *Engine) SentRef(holder, target, dest ids.ClusterID) uint64 {
	if target == dest {
		return 0
	}
	p, ok := e.procs[holder]
	if !ok {
		e.stats.StaleDeliveries++
		return 0
	}
	p.clock++
	seq := p.clock
	if target == holder {
		// Sending one's own reference: the pending edge dest→holder is a
		// self-introduced hint on the holder's own vector, resolved when
		// dest's assert or destruction bundle arrives.
		if !e.opts.UnsafeNoHints {
			p.log.Hints().Arm(dest, holder, seq)
		}
		return seq
	}
	if target.Site == e.site {
		// Local target: arm its hint directly (same site, atomic).
		if t, tok := e.procs[target]; tok && !e.opts.UnsafeNoHints {
			t.log.Hints().Arm(dest, holder, seq)
		}
		return seq
	}
	p.log.OB(target).Hints.MergeEntry(dest, vclock.At(seq))
	return seq
}

// EdgeDown records the destruction of the last reference behind the edge
// holder→target and emits the edge-destruction control message (§3.4):
// the authoritative stamps with the holder's column replaced by Ē, the
// bundled forwarding hints, and the processed-introduction record. The
// delivery is queued; callers run Drain at a safe point.
func (e *Engine) EdgeDown(holder, target ids.ClusterID) {
	if holder == target {
		return
	}
	p, ok := e.procs[holder]
	if !ok {
		e.stats.StaleDeliveries++
		return
	}
	p.clock++
	p.acq.Remove(target)
	e.retireAsserts(holder, target)
	if target.Site == e.site {
		// Local destruction: deliver a minimal destroy so the receive path
		// merges, evaluates and propagates uniformly. Hints and processed
		// records were already written directly at forward/acquire time.
		e.queueDestroy(holder, target, DestroyMsg{
			Auth: vclock.Vector{holder: vclock.Eps(p.clock)},
		})
		return
	}
	ob := p.log.OB(target)
	ob.Auth.MergeEntry(holder, vclock.Eps(p.clock))
	e.queueDestroy(holder, target, DestroyMsg{
		Auth:      ob.Auth.Clone(),
		Hints:     ob.Hints.Clone(),
		Processed: ob.Processed.Clone(),
	})
}

// RemoteCreationStamp returns the holder's current clock, the stamp to
// piggyback on a creation message. Callers perform the heap write (whose
// EdgeUp hook bumps the clock for the creation event) before sending.
func (e *Engine) RemoteCreationStamp(holder ids.ClusterID) uint64 {
	return e.Clock(holder)
}

// HandleCreate registers the process for a cluster created on behalf of a
// remote creator and records the incoming edge with the piggybacked stamp
// (the one log-keeping datum the physical creation message carries).
func (e *Engine) HandleCreate(cl, creator ids.ClusterID, stamp uint64) {
	e.Register(cl)
	p, ok := e.procs[cl]
	if !ok {
		e.stats.StaleDeliveries++
		return
	}
	p.log.Own().MergeEntry(creator, vclock.At(stamp))
}

// --- GGD message handling (§3.3, Fig 6) ---------------------------------

// HandleDestroy processes an incoming edge-destruction control message.
func (e *Engine) HandleDestroy(to, from ids.ClusterID, m DestroyMsg) {
	e.inbox = append(e.inbox, delivery{to: to, from: from, kind: deliverDestroy, destroy: m})
	e.Drain()
}

// HandlePropagate processes an incoming dependency-vector propagation.
func (e *Engine) HandlePropagate(to, from ids.ClusterID, m Propagation) {
	e.inbox = append(e.inbox, delivery{to: to, from: from, kind: deliverPropagate, prop: m})
	e.Drain()
}

// HandleAssert processes an incoming edge-assert.
func (e *Engine) HandleAssert(to, from ids.ClusterID, m AssertMsg) {
	e.inbox = append(e.inbox, delivery{to: to, from: from, kind: deliverAssert, assert: m})
	e.Drain()
}

// HandleAck processes an incoming HintAck: the hint owner (from) has
// resolved the echoed introduction, so the matching journal row of the
// asserting process (to) is retired. Idempotent; unknown rows (already
// retired, or re-acked after an edge re-formed under a fresher
// forwarding) are ignored.
func (e *Engine) HandleAck(to, from ids.ClusterID, m AckMsg) {
	delete(e.asserts, assertRow{holder: to, target: from, intro: m.Intro, seq: m.IntroSeq})
}

// Drain processes queued deliveries until quiescence. Safe to call at any
// time; reentrant calls (hooks firing inside Drain) queue work for the
// outer invocation.
func (e *Engine) Drain() {
	if e.draining {
		return
	}
	e.draining = true
	defer func() { e.draining = false }()
	for len(e.inbox) > 0 {
		d := e.inbox[0]
		e.inbox = e.inbox[1:]
		e.receive(d)
	}
}

// receive is the paper's Receive procedure (Fig 6).
func (e *Engine) receive(d delivery) {
	p, ok := e.procs[d.to]
	if !ok {
		if _, dead := e.tombstone[d.to]; !dead && d.to.Site == e.site {
			// The target's creation message has not arrived yet
			// (reordered channels): buffer and replay on Register.
			if len(e.pending[d.to]) < 64 {
				e.pending[d.to] = append(e.pending[d.to], d)
				return
			}
			if e.admitExpiry(d) {
				return
			}
		}
		if d.kind == deliverAssert {
			if _, dead := e.tombstone[d.to]; dead {
				// Ack on behalf of a removed process: the tombstone's
				// word is final, and without the ack the asserter would
				// re-send forever. Other drops (pending-buffer overflow,
				// unknown target) stay un-acked — they are genuine loss,
				// and the re-send journal exists to retry them.
				e.ackAssert(d.to, d.from, d.assert)
			}
		}
		// Stale traffic to a removed or unknown process: dropped. Message
		// loss never compromises safety (§5), so neither does this.
		e.stats.StaleDeliveries++
		return
	}
	changed := false
	if d.kind != deliverAssert {
		p.active = true
	}
	switch d.kind {
	case deliverDestroy:
		own := p.log.Own()
		prior := own.Get(d.from)
		if prior.Merge(d.destroy.Auth.Get(d.from)) != prior {
			// A genuine (non-duplicate) destruction is a log-keeping
			// event: bump the clock (§3.1).
			p.clock++
			changed = true
		}
		if own.MergeAll(d.destroy.Auth) {
			changed = true
		}
		// The bundled third-party introductions (§3.4): arm hints with
		// the sender as introducer; the introductions the sender already
		// processed for its own edge resolve the matching hints.
		if !e.opts.UnsafeNoHints {
			for col, s := range d.destroy.Hints {
				if p.log.Hints().Arm(col, d.from, s.Seq) {
					changed = true
				}
			}
			for intro, s := range d.destroy.Processed {
				if p.log.Hints().Clear(d.from, intro, s.Seq) {
					changed = true
				}
			}
		}

	case deliverAssert:
		if d.assert.Stamp > 0 && p.log.Own().MergeEntry(d.from, vclock.At(d.assert.Stamp)) {
			changed = true
		}
		if d.assert.Intro.Valid() && d.assert.IntroSeq > 0 {
			if d.assert.Stamp == 0 {
				// Negative assert: the introduction is provably dead at
				// the source's site — expire it.
				if p.log.Hints().Expire(d.from, d.assert.Intro, d.assert.IntroSeq) {
					e.stats.HintsExpired++
					changed = true
				}
			} else if p.log.Hints().Clear(d.from, d.assert.Intro, d.assert.IntroSeq) {
				changed = true
			}
		}
		e.ackAssert(d.to, d.from, d.assert)

	case deliverPropagate:
		m := d.prop
		// Record the sender's first-hand vector as its confirmed row, and
		// refresh the own vector's column for the sender: the propagation
		// travelled the live edge sender→me, re-asserting it with the
		// sender's current clock.
		if p.log.MergeVRow(d.from, m.Auth, m.HintCols, true, true) {
			changed = true
		}
		if p.log.Own().MergeEntry(d.from, vclock.At(m.Clock)) {
			changed = true
		}
		for owner, row := range m.Rows {
			if owner == d.to {
				continue // relayed copies of my own vector are subsets
			}
			if p.log.MergeVRow(owner, row.Auth, row.HintCols, false, true) {
				changed = true
			}
		}
		for target, ob := range m.OBs {
			if target == d.to {
				// First-hand on-behalf entries about me: authoritative
				// stamps merge into the own vector; forwarding hints arm
				// with the sender as introducer.
				if p.log.Own().MergeAll(ob.Auth) {
					changed = true
				}
				if !e.opts.UnsafeNoHints {
					for col, s := range ob.Hints {
						if p.log.Hints().Arm(col, d.from, s.Seq) {
							changed = true
						}
					}
				}
				continue
			}
			// Knowledge about a third process folds into its row as
			// relayed, attribution-free data: authoritative stamps by
			// value, hints as conservative live columns.
			hintCols := make([]ids.ClusterID, 0, len(ob.Hints))
			for col, s := range ob.Hints {
				if s.Live() {
					hintCols = append(hintCols, col)
				}
			}
			if p.log.MergeVRow(target, ob.Auth, hintCols, false, false) {
				changed = true
			}
		}
	}
	e.evaluate(p, changed)
}

// admitExpiry makes room in a full pre-registration pending buffer for
// a self-delivered hint expiry (ResolveIntroduction's local-owner
// path), reporting whether it was admitted. That delivery is the one
// buffered kind with no other carrier: the dead transfer that proved
// the expiry is dedup-recorded and never re-arrives, while every other
// buffered kind is re-derivable (destroys via on-behalf/legacy re-send,
// propagations via refresh, remote asserts via the sender's journal).
// The oldest such re-derivable delivery is evicted; if the buffer is
// somehow full of expiries, the new one is dropped — the bound is the
// bound.
func (e *Engine) admitExpiry(d delivery) bool {
	if d.kind != deliverAssert || d.assert.Stamp != 0 || d.from.Site != e.site {
		return false
	}
	q := e.pending[d.to]
	for i, old := range q {
		if old.kind == deliverAssert && old.assert.Stamp == 0 && old.from.Site == e.site {
			continue
		}
		copy(q[i:], q[i+1:])
		q[len(q)-1] = d
		return true
	}
	return false
}

// ackAssert acknowledges a processed edge-assert back to its sender.
// owner may be tombstoned. A local asserter (the self-delivered expiry
// of ResolveIntroduction) journals nothing, so it needs no ack.
func (e *Engine) ackAssert(owner, asserter ids.ClusterID, m AssertMsg) {
	if asserter.Site == e.site {
		return
	}
	e.stats.AcksSent++
	e.send.SendAck(owner, asserter, AckMsg{Intro: m.Intro, IntroSeq: m.IntroSeq, Stamp: m.Stamp})
}

// ResolveIntroduction resolves introduction (intro, seq) of the edge
// holder→target when the forwarded reference was delivered to this site
// and discarded without a slot write — the holder object is provably
// dead (collected, or its cluster tombstoned). Exactly one of three
// things is true, and each yields a causally-safe resolution:
//
//   - holder's cluster still holds the edge (another object's
//     reference): the introduction is consumed on the cluster's behalf
//     with a genuine re-assert — the edge exists, so the fresh live
//     stamp is truthful (DESIGN.md interpretation #2).
//   - holder's cluster holds no such edge: any earlier edge was
//     destroyed (its Ē-stamped bundle, re-sent by Refresh, supersedes),
//     and no event of the cluster can ever consume this forwarding — a
//     negative assert expires the hint at the owner.
//   - the owner is local: the hint is expired directly.
//
// All emitted asserts are journaled and re-sent until acknowledged.
func (e *Engine) ResolveIntroduction(holder, target, intro ids.ClusterID, seq uint64) {
	if e.opts.UnsafeNoHints || seq == 0 || seq == ids.CreationSeq || !intro.Valid() {
		return
	}
	if target.Site == e.site {
		if t, ok := e.procs[target]; ok {
			if t.log.Hints().Expire(holder, intro, seq) {
				e.stats.HintsExpired++
				e.evaluate(t, true)
				e.Drain()
			}
		} else if _, dead := e.tombstone[target]; !dead {
			// The owner's creation message has not arrived yet: route
			// the expiry through the pre-registration pending buffer as
			// a self-delivered negative assert, replayed on Register.
			// Dropping it instead would pin the owner forever — the
			// transfer's dedup record means it never re-arrives, so no
			// later event could re-derive the expiry.
			e.inbox = append(e.inbox, delivery{
				to: target, from: holder, kind: deliverAssert,
				assert: AssertMsg{Intro: intro, IntroSeq: seq},
			})
			e.Drain()
		}
		return
	}
	m := AssertMsg{Intro: intro, IntroSeq: seq}
	if p, ok := e.procs[holder]; ok && p.acq.Has(target) {
		p.clock++
		m.Stamp = p.clock
		ob := p.log.OB(target)
		ob.Auth.MergeEntry(holder, vclock.At(p.clock))
		ob.Processed.MergeEntry(intro, vclock.At(seq))
	}
	e.journalAssert(assertRow{holder: holder, target: target, intro: intro, seq: seq}, m.Stamp)
	e.stats.AssertsSent++
	e.send.SendAssert(holder, target, m)
}

// evaluate runs ComputeV and acts on the outcome: removal when the
// closure certifies garbage, propagation when the log changed (new
// first-hand or relayed knowledge circulates onward for cycle-wide
// convergence).
func (e *Engine) evaluate(p *process, changed bool) {
	e.stats.Evaluations++
	res := p.log.Closure(p.clock)
	if e.opts.UnsafeSkipConfirmation {
		res.Complete = true
	}
	if res.Garbage() && !p.id.IsRoot() {
		e.remove(p)
		return
	}
	if changed && p.active {
		e.propagate(p, res)
	}
}

// assemble builds the propagation payload: the own first-hand state, the
// confirmed rows of the closure's expanded ancestry, and the first-hand
// on-behalf entries — the "increasingly accurate approximations"
// circulated along the paths of the global root graph (§3.3).
func (e *Engine) assemble(p *process, res vclock.ClosureResult) Propagation {
	m := Propagation{
		Clock:    p.clock,
		Auth:     p.log.Own().Clone(),
		HintCols: p.log.Hints().Cols(),
	}
	for _, q := range res.Expanded.Sorted() {
		if q == p.id || q.IsRoot() {
			continue
		}
		r := p.log.PeekVRow(q)
		if r == nil || !r.Confirmed {
			continue
		}
		if m.Rows == nil {
			m.Rows = make(map[ids.ClusterID]RowGossip)
		}
		m.Rows[q] = RowGossip{Auth: r.Auth.Clone(), HintCols: r.HintCols.Sorted()}
	}
	for _, x := range p.log.Processes() {
		if x == p.id {
			continue
		}
		ob := p.log.PeekOB(x)
		if ob == nil || (len(ob.Auth) == 0 && len(ob.Hints) == 0) {
			continue
		}
		if m.OBs == nil {
			m.OBs = make(map[ids.ClusterID]OBGossip)
		}
		m.OBs[x] = OBGossip{Auth: ob.Auth.Clone(), Hints: ob.Hints.Clone()}
	}
	return m
}

// propagate sends the payload along every out-edge (§3.3 step 3).
func (e *Engine) propagate(p *process, res vclock.ClosureResult) {
	acq := p.acq.Sorted()
	if len(acq) == 0 {
		return
	}
	m := e.assemble(p, res)
	for _, k := range acq {
		e.stats.PropagationsSent++
		if k.Site == e.site {
			e.inbox = append(e.inbox, delivery{to: k, from: p.id, kind: deliverPropagate, prop: cloneProp(m)})
		} else {
			e.send.SendPropagate(p.id, k, cloneProp(m))
		}
	}
}

func cloneProp(m Propagation) Propagation {
	out := Propagation{Clock: m.Clock, Auth: m.Auth.Clone()}
	out.HintCols = append(out.HintCols, m.HintCols...)
	if m.Rows != nil {
		out.Rows = make(map[ids.ClusterID]RowGossip, len(m.Rows))
		for k, v := range m.Rows {
			g := RowGossip{Auth: v.Auth.Clone()}
			g.HintCols = append(g.HintCols, v.HintCols...)
			out.Rows[k] = g
		}
	}
	if m.OBs != nil {
		out.OBs = make(map[ids.ClusterID]OBGossip, len(m.OBs))
		for k, v := range m.OBs {
			out.OBs[k] = OBGossip{Auth: v.Auth.Clone(), Hints: v.Hints.Clone()}
		}
	}
	return out
}

// remove finalises a garbage process: the paper's "remove" action plus the
// finalisation destroys to its successors, which is what lets detection
// cascade through cycles and chains.
func (e *Engine) remove(p *process) {
	if e.opts.RemoveObserver != nil {
		e.opts.RemoveObserver(p.id, p.log.Clone(), p.clock)
	}
	delete(e.procs, p.id)
	e.stats.Removed++
	for _, k := range p.acq.Sorted() {
		p.clock++
		e.retireAsserts(p.id, k)
		if k.Site == e.site {
			e.queueDestroy(p.id, k, DestroyMsg{
				Auth: vclock.Vector{p.id: vclock.Eps(p.clock)},
			})
			continue
		}
		ob := p.log.OB(k)
		ob.Auth.MergeEntry(p.id, vclock.Eps(p.clock))
		m := DestroyMsg{
			Auth:      ob.Auth.Clone(),
			Hints:     ob.Hints.Clone(),
			Processed: ob.Processed.Clone(),
		}
		// Retain the finalisation bundle: once the process is gone its
		// on-behalf rows can no longer re-ship it, yet it carries the
		// records resolving the successor's hints. Refresh re-sends.
		e.legacy.Push(legacyDestroy{from: p.id, to: k, m: cloneDestroy(m)})
		e.queueDestroy(p.id, k, m)
	}
	e.tombstone[p.id] = p.clock
	if e.onRemove != nil {
		e.onRemove(p.id)
	}
}

func (e *Engine) queueDestroy(from, to ids.ClusterID, m DestroyMsg) {
	e.stats.DestroysSent++
	if to.Site == e.site {
		e.inbox = append(e.inbox, delivery{to: to, from: from, kind: deliverDestroy, destroy: m})
		return
	}
	e.send.SendDestroy(from, to, m)
}

// --- Recovery (§5: residual garbage) ------------------------------------

// Refresh re-evaluates every local process, re-propagates its current
// state unconditionally, re-sends the edge-destruction bundles of
// every edge the process has destroyed (its on-behalf rows whose own
// column carries Ē), and re-ships the un-acknowledged edge-asserts and
// retained finalisation bundles (hint resolution: a lost assert or a
// lost final destroy costs one refresh round, never a pinned hint).
// GGD messages are idempotent, so a refresh is
// always safe; it re-detects residual garbage whose original detection
// traffic was lost — including a lost destroy message itself, which
// propagation alone can never recover: once the edge is gone the
// destroyer no longer propagates towards its former target, so the Ē
// is marooned in the on-behalf row until a refresh re-ships it (the
// crash-recovery path depends on this, and E8's healing rounds improve
// with it).
func (e *Engine) Refresh() {
	for _, id := range e.Processes() {
		p, ok := e.procs[id]
		if !ok {
			continue // removed by an earlier iteration's cascade
		}
		e.stats.Evaluations++
		res := p.log.Closure(p.clock)
		if e.opts.UnsafeSkipConfirmation {
			res.Complete = true
		}
		if res.Garbage() {
			e.remove(p)
			e.Drain()
			continue
		}
		p.active = true
		e.propagate(p, res)
		for _, k := range p.log.Processes() {
			if k == p.id || p.acq.Has(k) {
				continue
			}
			ob := p.log.PeekOB(k)
			if ob == nil || !ob.Auth.Get(p.id).Eps {
				continue
			}
			// The edge p→k was destroyed and not re-created: re-send the
			// destruction bundle. Receivers merge it idempotently (a
			// re-created edge's fresher live stamp supersedes the Ē), and
			// stale copies to removed targets are dropped there.
			e.queueDestroy(p.id, k, DestroyMsg{
				Auth:      ob.Auth.Clone(),
				Hints:     ob.Hints.Clone(),
				Processed: ob.Processed.Clone(),
			})
		}
		e.Drain()
	}
	// Re-ship the un-acknowledged edge-asserts and the retained
	// finalisation bundles of removed processes: the resolution half of
	// the refresh round. Both are idempotent; receivers ack asserts (so
	// the journal drains) and merge bundles by stamp order.
	rows := make([]assertRow, 0, len(e.asserts))
	for row := range e.asserts {
		rows = append(rows, row)
	}
	sortAssertRows(rows)
	for _, row := range rows {
		e.stats.AssertResends++
		e.send.SendAssert(row.holder, row.target, AssertMsg{
			Stamp: e.asserts[row], Intro: row.intro, IntroSeq: row.seq,
		})
	}
	for _, l := range e.legacy.Items() {
		e.queueDestroy(l.from, l.to, cloneDestroy(l.m))
	}
	e.Drain()
}

// sortAssertRows orders journal rows deterministically for re-send.
func sortAssertRows(rows []assertRow) {
	sort.Slice(rows, func(i, j int) bool { return assertRowLess(rows[i], rows[j]) })
}

// assertRowLess is the total order over journal rows.
func assertRowLess(a, b assertRow) bool {
	if a.holder != b.holder {
		return a.holder.Less(b.holder)
	}
	if a.target != b.target {
		return a.target.Less(b.target)
	}
	if a.intro != b.intro {
		return a.intro.Less(b.intro)
	}
	return a.seq < b.seq
}

// Evaluate forces one evaluation of a single process (test hook).
func (e *Engine) Evaluate(cl ids.ClusterID) {
	if p, ok := e.procs[cl]; ok {
		e.evaluate(p, false)
		e.Drain()
	}
}
