// Package persist is the durability substrate of causalgc: a
// generation-numbered store combining an append-only, CRC-checked,
// segmented write-ahead log with atomic full-state snapshots.
//
// The store is deliberately byte-oriented: it knows nothing about the
// GGD protocol. The typed snapshot and WAL records live in
// internal/wire (EncodeSnapshot, EncodeRecord); the site runtime
// composes the two layers (internal/site, causalgc.WithPersistence).
//
// # Layout and invariants
//
// A store directory contains at most one live snapshot and the WAL
// segments written after it:
//
//	snap-0000000000000003.snap    latest snapshot (generation 3)
//	wal-0000000000000003-0000000000000001.log
//	wal-0000000000000003-0000000000000002.log
//
// Every file starts with a magic+version header. WAL records and the
// snapshot body are framed as {uint32 length, uint32 CRC-32C, payload},
// so torn writes and bit rot are detected on read.
//
// Snapshot atomicity: a snapshot is written to a .tmp file, fsynced,
// and renamed into place; the rename is the commit point. Only after
// the rename (and a directory fsync) are the previous generation's
// segments and snapshot deleted, so a crash at any instant leaves
// either the old generation fully intact or the new snapshot durable.
// Recovery replays only segments of the latest snapshot's generation,
// which is what makes the post-rename deletes merely garbage
// collection, never correctness.
//
// Torn tails: a short or CRC-failing record in the *last* segment is
// the expected signature of a crash mid-append — recovery stops there
// and discards the tail. The same damage in an earlier segment (or in
// the snapshot itself) is genuine corruption and fails recovery with
// ErrCorrupt: silently skipping interior records could resurrect a
// state the rest of the cluster has already seen superseded.
//
// After recovery a store never appends to a possibly-torn segment: the
// next Append opens a fresh segment.
package persist
