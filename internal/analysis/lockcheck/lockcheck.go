// Package lockcheck enforces the *Locked naming discipline that guards
// every one-lock batch commit (DESIGN.md §3.3): a function whose name
// ends in "Locked" asserts "the caller holds the owning mutex", so it
// may only be called from another *Locked function or from a function
// that demonstrably acquires a lock in its own body — and it must
// never itself call Lock on the mutex the suffix refers to (the
// receiver's "mu" field by repo convention), which would self-deadlock.
//
// Audited call sites that hold the lock by construction but cannot
// show it syntactically (e.g. adapter methods invoked by the engine
// only under the runtime lock) carry //causalgc:allow-locked-call with
// a justification.
package lockcheck

import (
	"go/ast"
	"strings"

	"causalgc/internal/analysis"
)

// Analyzer is the lockcheck instance run by causalgc-vet.
var Analyzer = New()

// New returns the lockcheck analyzer. It is purely syntactic: the
// conventions it checks are naming conventions.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "lockcheck",
		Doc:  "calls to *Locked functions must come from *Locked functions or lock-acquiring bodies; *Locked functions must not lock their own mutex",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc walks one top-level function, tracking whether any
// enclosing scope is entitled to call *Locked functions.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	locked := strings.HasSuffix(fd.Name.Name, "Locked")
	qualified := locked || acquiresLock(fd.Body)
	if locked {
		checkSelfDeadlock(pass, fd)
	}
	walkCalls(pass, fd.Body, fd.Name.Name, qualified)
}

// walkCalls reports calls to *Locked callees from unqualified scopes.
// Function literals re-evaluate qualification on their own body but
// inherit it from enclosing scopes: a closure created under the lock
// is treated as running under it, which matches how the runtime's
// commit windows use closures.
func walkCalls(pass *analysis.Pass, body ast.Node, funcName string, qualified bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkCalls(pass, n.Body, funcName, qualified || acquiresLock(n.Body))
			return false
		case *ast.CallExpr:
			name := calleeName(n)
			if name == "" || !strings.HasSuffix(name, "Locked") {
				return true
			}
			if qualified || pass.Allowed(n.Pos(), "locked-call") {
				return true
			}
			pass.Reportf(n.Pos(), "call to %s from %s, which neither ends in Locked nor acquires a lock in its body (annotate audited sites with //causalgc:allow-locked-call)", name, funcName)
		}
		return true
	})
}

// checkSelfDeadlock flags <recv>.mu.Lock()/RLock() (or Lock on the
// receiver itself, for embedded mutexes) inside a *Locked method: the
// suffix promises that lock is already held.
func checkSelfDeadlock(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverName(fd)
	if recv == "" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure may run after the locked section returns;
			// locking there is the closure's business.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" && sel.Sel.Name != "TryLock") {
			return true
		}
		if !isOwnMutex(sel.X, recv) {
			return true
		}
		pass.Reportf(call.Pos(), "%s calls %s on the mutex its Locked suffix says is already held (self-deadlock)", fd.Name.Name, sel.Sel.Name)
		return true
	})
}

// isOwnMutex reports whether expr is the receiver's guarding mutex:
// the receiver itself (embedded mutex) or its conventional "mu" field.
// Locking a different field is allowed — the Locked suffix only speaks
// for the owning mutex.
func isOwnMutex(expr ast.Expr, recv string) bool {
	switch x := expr.(type) {
	case *ast.Ident:
		return x.Name == recv
	case *ast.SelectorExpr:
		root, ok := x.X.(*ast.Ident)
		return ok && root.Name == recv && x.Sel.Name == "mu"
	}
	return false
}

// acquiresLock reports whether body (excluding nested function
// literals) contains a call to a Lock/RLock/TryLock method.
func acquiresLock(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock":
				found = true
			}
		}
		return true
	})
	return found
}

// calleeName extracts the called function's bare name, looking through
// selector chains and conversions like (*Runtime)(s).emitLocked(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// receiverName returns the name of fd's receiver variable, if any.
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
