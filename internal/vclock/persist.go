package vclock

import "causalgc/internal/ids"

// LogImage is the serialisable form of a Log, used by the durability
// subsystem's snapshots (see package persist and internal/wire). It
// captures everything Closure consults — the own vector, both halves of
// the hint set (pending *and* resolved bounds: forgetting the cleared
// bounds would let stale gossip re-arm resolved hints after recovery),
// the vector rows with their confirmation bits, and the on-behalf rows.
type LogImage struct {
	Own         Vector
	HintPending map[ids.ClusterID]Vector
	HintCleared map[ids.ClusterID]Vector
	VRows       map[ids.ClusterID]VRowImage
	OBs         map[ids.ClusterID]OBImage
}

// VRowImage is the serialisable form of a VRow.
type VRowImage struct {
	Auth      Vector
	HintCols  []ids.ClusterID
	Confirmed bool
}

// OBImage is the serialisable form of an OBRow.
type OBImage struct {
	Auth      Vector
	Hints     Vector
	Processed Vector
}

// Export renders the log as an image. The image shares no state with
// the log.
func (l *Log) Export() LogImage {
	img := LogImage{
		Own:         l.own.Clone(),
		HintPending: make(map[ids.ClusterID]Vector, len(l.ownHints.pending)),
		HintCleared: make(map[ids.ClusterID]Vector, len(l.ownHints.cleared)),
		VRows:       make(map[ids.ClusterID]VRowImage, len(l.vrows)),
		OBs:         make(map[ids.ClusterID]OBImage, len(l.ob)),
	}
	for col, v := range l.ownHints.pending {
		img.HintPending[col] = v.Clone()
	}
	for col, v := range l.ownHints.cleared {
		img.HintCleared[col] = v.Clone()
	}
	for p, r := range l.vrows {
		img.VRows[p] = VRowImage{Auth: r.Auth.Clone(), HintCols: r.HintCols.Sorted(), Confirmed: r.Confirmed}
	}
	for p, r := range l.ob {
		img.OBs[p] = OBImage{Auth: r.Auth.Clone(), Hints: r.Hints.Clone(), Processed: r.Processed.Clone()}
	}
	return img
}

// RestoreLog rebuilds a Log from an image. The log shares no state with
// the image.
func RestoreLog(owner ids.ClusterID, img LogImage) *Log {
	l := NewLog(owner)
	l.own = cloneOrNew(img.Own)
	for col, v := range img.HintPending {
		l.ownHints.pending[col] = v.Clone()
	}
	for col, v := range img.HintCleared {
		l.ownHints.cleared[col] = v.Clone()
	}
	for p, r := range img.VRows {
		l.vrows[p] = &VRow{Auth: cloneOrNew(r.Auth), HintCols: ids.NewClusterSet(r.HintCols...), Confirmed: r.Confirmed}
	}
	for p, r := range img.OBs {
		l.ob[p] = &OBRow{Auth: cloneOrNew(r.Auth), Hints: cloneOrNew(r.Hints), Processed: cloneOrNew(r.Processed)}
	}
	return l
}

func cloneOrNew(v Vector) Vector {
	if v == nil {
		return NewVector()
	}
	return v.Clone()
}
