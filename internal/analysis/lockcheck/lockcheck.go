// Package lockcheck enforces the *Locked naming discipline that guards
// every one-lock batch commit (DESIGN.md §3.3): a function whose name
// ends in "Locked" asserts "the caller holds the owning mutex", so it
// may only be called from another *Locked function or from a function
// that demonstrably acquires a lock in its own body — and it must
// never itself call Lock on the mutex the suffix refers to (the
// receiver's "mu" field by repo convention), which would self-deadlock.
//
// Audited call sites that hold the lock by construction but cannot
// show it syntactically (e.g. adapter methods invoked by the engine
// only under the runtime lock) carry //causalgc:allow-locked-call with
// a justification.
//
// The sharded engine adds a stricter sub-convention (DESIGN.md §3.4):
// a function whose name ends in "ShardLocked" runs under the owning
// shard's mutex, and shard mutexes are taken one at a time. So a call
// x.fooShardLocked(...) must come from a scope that demonstrably holds
// x.mu — either x.mu.Lock() appears earlier in the scope, or the
// enclosing function is a *Locked method on x itself — and the scope
// must not hold any other tracked "mu" at the call (the deadlock-order
// rule: entering a shard while holding a sibling inverts the ascending
// acquisition order of the stop-the-world paths). Functions ending in
// "AllLocked" are the audited composers that hold every shard's lock
// at once and are exempt; anything else that holds the lock by
// construction carries //causalgc:allow-shard-locked-call.
package lockcheck

import (
	"go/ast"
	"strings"

	"causalgc/internal/analysis"
)

// Analyzer is the lockcheck instance run by causalgc-vet.
var Analyzer = New()

// New returns the lockcheck analyzer. It is purely syntactic: the
// conventions it checks are naming conventions.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "lockcheck",
		Doc:  "calls to *Locked functions must come from *Locked functions or lock-acquiring bodies; *Locked functions must not lock their own mutex; *ShardLocked calls require the owning shard's mutex and no sibling's",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc walks one top-level function, tracking whether any
// enclosing scope is entitled to call *Locked functions.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	locked := strings.HasSuffix(fd.Name.Name, "Locked")
	qualified := locked || acquiresLock(fd.Body)
	if locked {
		checkSelfDeadlock(pass, fd)
	}
	walkCalls(pass, fd.Body, fd.Name.Name, qualified)
	checkShardDiscipline(pass, fd)
}

// checkShardDiscipline enforces the per-shard mutex convention: a call
// x.fooShardLocked(...) needs x's own mutex held — shown by an earlier
// x.mu.Lock() in the scope, or by the enclosing function being a
// *Locked method on x — and must not be made while any other tracked
// "mu" is held (shard locks are taken one at a time; only the
// *AllLocked stop-the-world composers hold several). It is a linear
// abstract walk over the body tracking the set of held "mu" owners:
// Lock adds, Unlock removes, a deferred Unlock keeps the lock held to
// the end of the scope, and a closure inherits the locks of its
// creation site (matching walkCalls' treatment of commit-window
// closures).
func checkShardDiscipline(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	w := &shardWalker{
		pass:      pass,
		funcName:  name,
		recv:      receiverName(fd),
		allLocked: strings.HasSuffix(name, "AllLocked"),
		shardFn:   strings.HasSuffix(name, "ShardLocked"),
	}
	held := map[string]bool{}
	if w.recv != "" && strings.HasSuffix(name, "Locked") {
		// The Locked suffix itself promises the receiver's mutex.
		held[w.recv] = true
	}
	w.walk(fd.Body, held)
}

// shardWalker carries the per-function context of checkShardDiscipline.
type shardWalker struct {
	pass      *analysis.Pass
	funcName  string
	recv      string
	allLocked bool
	shardFn   bool
}

func (w *shardWalker) walk(body ast.Node, held map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inherited := map[string]bool{}
			for k := range held {
				inherited[k] = true
			}
			w.walk(n.Body, inherited)
			return false
		case *ast.DeferStmt:
			// defer x.mu.Unlock() holds the lock to the end of the
			// scope: keep it in the held set.
			if owner, op := muOp(n.Call); owner != "" && (op == "Unlock" || op == "RUnlock") {
				return false
			}
			return true
		case *ast.CallExpr:
			if owner, op := muOp(n); owner != "" {
				switch op {
				case "Lock", "RLock", "TryLock":
					if w.shardFn && owner != w.recv && !w.pass.Allowed(n.Pos(), "shard-locked-call") {
						w.pass.Reportf(n.Pos(), "%s acquires %s.mu while its ShardLocked suffix says the owning shard's lock is held (shard locks are taken one at a time)", w.funcName, owner)
					}
					held[owner] = true
				case "Unlock", "RUnlock":
					delete(held, owner)
				}
				return true
			}
			callee := calleeName(n)
			if callee == "" || !strings.HasSuffix(callee, "ShardLocked") {
				return true
			}
			if w.allLocked || w.pass.Allowed(n.Pos(), "shard-locked-call") {
				return true
			}
			owner := w.recv
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				owner = exprText(sel.X)
			}
			if owner == "" {
				// An unrenderable receiver (call result, etc.) is outside
				// the convention's vocabulary; walkCalls still applies.
				return true
			}
			if !held[owner] {
				w.pass.Reportf(n.Pos(), "call to %s from %s without holding %s.mu: *ShardLocked needs the owning shard's lock (annotate audited sites with //causalgc:allow-shard-locked-call)", callee, w.funcName, owner)
			}
			for h := range held {
				if h != owner {
					w.pass.Reportf(n.Pos(), "call to %s while holding %s.mu: a *ShardLocked method must not be entered while another shard's lock is held (only *AllLocked composers hold several)", callee, h)
				}
			}
		}
		return true
	})
}

// muOp recognizes <owner>.mu.<op>() for the mutex methods the held-set
// tracks and returns the owner's textual form and the operation, or
// ("", "") for any other call.
func muOp(call *ast.CallExpr) (owner, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return "", ""
	}
	if root := exprText(mu.X); root != "" {
		return root, sel.Sel.Name
	}
	return "", ""
}

// exprText renders the simple receiver expressions the shard walker
// compares — identifiers, field selections, and index expressions —
// and returns "" for anything more exotic.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.SelectorExpr:
		if base := exprText(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.IndexExpr:
		base, idx := exprText(x.X), exprText(x.Index)
		if base != "" && idx != "" {
			return base + "[" + idx + "]"
		}
	case *ast.BasicLit:
		return x.Value
	}
	return ""
}

// walkCalls reports calls to *Locked callees from unqualified scopes.
// Function literals re-evaluate qualification on their own body but
// inherit it from enclosing scopes: a closure created under the lock
// is treated as running under it, which matches how the runtime's
// commit windows use closures.
func walkCalls(pass *analysis.Pass, body ast.Node, funcName string, qualified bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkCalls(pass, n.Body, funcName, qualified || acquiresLock(n.Body))
			return false
		case *ast.CallExpr:
			name := calleeName(n)
			if name == "" || !strings.HasSuffix(name, "Locked") {
				return true
			}
			if qualified || pass.Allowed(n.Pos(), "locked-call") {
				return true
			}
			pass.Reportf(n.Pos(), "call to %s from %s, which neither ends in Locked nor acquires a lock in its body (annotate audited sites with //causalgc:allow-locked-call)", name, funcName)
		}
		return true
	})
}

// checkSelfDeadlock flags <recv>.mu.Lock()/RLock() (or Lock on the
// receiver itself, for embedded mutexes) inside a *Locked method: the
// suffix promises that lock is already held.
func checkSelfDeadlock(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverName(fd)
	if recv == "" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure may run after the locked section returns;
			// locking there is the closure's business.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" && sel.Sel.Name != "TryLock") {
			return true
		}
		if !isOwnMutex(sel.X, recv) {
			return true
		}
		pass.Reportf(call.Pos(), "%s calls %s on the mutex its Locked suffix says is already held (self-deadlock)", fd.Name.Name, sel.Sel.Name)
		return true
	})
}

// isOwnMutex reports whether expr is the receiver's guarding mutex:
// the receiver itself (embedded mutex) or its conventional "mu" field.
// Locking a different field is allowed — the Locked suffix only speaks
// for the owning mutex.
func isOwnMutex(expr ast.Expr, recv string) bool {
	switch x := expr.(type) {
	case *ast.Ident:
		return x.Name == recv
	case *ast.SelectorExpr:
		root, ok := x.X.(*ast.Ident)
		return ok && root.Name == recv && x.Sel.Name == "mu"
	}
	return false
}

// acquiresLock reports whether body (excluding nested function
// literals) contains a call to a Lock/RLock/TryLock method.
func acquiresLock(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock":
				found = true
			}
		}
		return true
	})
	return found
}

// calleeName extracts the called function's bare name, looking through
// selector chains and conversions like (*Runtime)(s).emitLocked(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// receiverName returns the name of fd's receiver variable, if any.
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
