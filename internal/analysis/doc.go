// Package analysis is a small, dependency-free static-analysis
// framework in the spirit of golang.org/x/tools/go/analysis, built on
// the standard library's go/ast and go/types only (the build
// environment is hermetic, so the x/tools module is deliberately not a
// dependency). It exists to machine-check the protocol conventions the
// paper's safety argument leans on — journal-before-send, the
// emitLocked coalescer funnel, the *Locked mutex discipline,
// determinism of the replayable packages, and errors.Is sentinel
// comparison — before refactors (lock-striped sharding, async commit)
// rewrite the code those conventions live in.
//
// The shape mirrors go/analysis: an Analyzer bundles a name, doc and a
// Run function over a Pass; a Pass exposes the parsed files, the
// type-checked package and a Report sink. Loader type-checks module
// packages from source with a module-aware importer (standard-library
// imports resolve through go/importer's source importer, so no
// pre-built export data is needed). Audited exceptions are annotated
// in source with //causalgc:allow-<directive> comments rather than by
// weakening an analyzer; Pass.Allowed checks them.
//
// The analyzers themselves live in subpackages (lockcheck, sendcheck,
// determcheck, errcmpcheck, doccheck); cmd/causalgc-vet is the
// multichecker that runs them over ./... in CI, and subpackage
// analysistest is the golden-file test harness.
package analysis
