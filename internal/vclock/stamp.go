package vclock

import (
	"fmt"
	"strconv"
)

// Stamp is one entry of a dependency vector: the index of a log-keeping
// event, plus the Ē marker for edge-destruction events (§3.1). The zero
// Stamp means "no log-keeping message ever received from this process"
// (paper: the value 0).
type Stamp struct {
	// Seq is the event index. Zero means "never".
	Seq uint64
	// Eps marks an Ē stamp: the last log-keeping control message received
	// from the corresponding process was an edge destruction. For
	// reachability purposes an Ē stamp is treated as if the edge had never
	// been created (§3.2), but its Seq still orders it against creation
	// stamps so that a destruction cancels exactly the creations that
	// causally precede it.
	Eps bool
}

// Zero is the never-heard-from stamp.
var Zero Stamp

// At returns a live (creation) stamp with the given sequence number.
func At(seq uint64) Stamp { return Stamp{Seq: seq} }

// Eps returns an Ē stamp with the given sequence number: the paper's
// Ē(c), recorded when an edge-destruction control message stamped c is
// processed.
func Eps(seq uint64) Stamp { return Stamp{Seq: seq, Eps: true} }

// Dead is Λ in the paper (§3.3): true for the zero stamp and for every Ē
// stamp. A dead stamp certifies the absence of a live edge-creation event.
func (s Stamp) Dead() bool { return s.Seq == 0 || s.Eps }

// Live is the negation of Dead.
func (s Stamp) Live() bool { return !s.Dead() }

// Less orders stamps for merging: primarily by sequence number; at equal
// sequence the Ē stamp supersedes the live stamp, because a destruction
// cancels the creations whose stamps do not exceed its own.
func (s Stamp) Less(o Stamp) bool {
	if s.Seq != o.Seq {
		return s.Seq < o.Seq
	}
	return !s.Eps && o.Eps
}

// Merge returns the superseding stamp of the two (the max in Less order).
// Merge is commutative, associative and idempotent, which is what makes
// GGD messages idempotent and loss/duplication safe (§5).
func (s Stamp) Merge(o Stamp) Stamp {
	if s.Less(o) {
		return o
	}
	return s
}

// JoinPath combines stamps for the same column contributed by different
// rows of a log, i.e. by different paths of the global root graph. A live
// stamp on any path proves a (potentially) live path, so live beats Ē
// regardless of sequence; between two live or two dead stamps the
// superseding one wins. See DESIGN.md interpretation #3.
func (s Stamp) JoinPath(o Stamp) Stamp {
	sl, ol := s.Live(), o.Live()
	switch {
	case sl && !ol:
		return s
	case ol && !sl:
		return o
	default:
		return s.Merge(o)
	}
}

// String renders "0", "17" or "Ē17".
func (s Stamp) String() string {
	if s.Eps {
		return "Ē" + strconv.FormatUint(s.Seq, 10)
	}
	return strconv.FormatUint(s.Seq, 10)
}

// GoString makes %#v readable in test failures.
func (s Stamp) GoString() string { return fmt.Sprintf("vclock.Stamp{Seq:%d,Eps:%t}", s.Seq, s.Eps) }
