package causalgc

import (
	"errors"

	"causalgc/internal/heap"
	"causalgc/internal/site"
)

// ErrNodeClosed is returned by mutator and collection operations on a
// Node after Close: the node's persistence (if any) is closed and its
// site state is frozen. Match with errors.Is.
var ErrNodeClosed = errors.New("causalgc: node closed")

// Sentinel errors returned (wrapped with site/object context) by Node
// operations. Match with errors.Is.
var (
	// ErrNoSuchObject: the operation names an object this node does not
	// have — never created here, or already reclaimed.
	ErrNoSuchObject = heap.ErrNoSuchObject
	// ErrNoSuchCluster: the operation names a cluster unknown to this
	// node.
	ErrNoSuchCluster = heap.ErrNoSuchCluster
	// ErrDuplicateObject: a minted identity already exists.
	ErrDuplicateObject = heap.ErrDuplicateObject
	// ErrForeignCluster: the operation requires a cluster owned by this
	// node but was given a remote one.
	ErrForeignCluster = heap.ErrForeignCluster
	// ErrClusterRemoved: the target cluster was already detected as
	// garbage and removed.
	ErrClusterRemoved = heap.ErrClusterRemoved
	// ErrNilRef: the operation was given an unset reference.
	ErrNilRef = heap.ErrNilRef
	// ErrBadSlot: slot index out of range.
	ErrBadSlot = heap.ErrBadSlot
	// ErrRootCluster: the operation is illegal on a node's root cluster.
	ErrRootCluster = heap.ErrRootCluster
	// ErrNotHolder: SendRef was asked to copy a reference the sending
	// object does not hold.
	ErrNotHolder = site.ErrNotHolder
	// ErrRemoteSelf: NewRemote was pointed at the caller's own site.
	ErrRemoteSelf = site.ErrRemoteSelf
)
