// Package lockpkg seeds lockcheck violations and compliant forms.
package lockpkg

import "sync"

type node struct {
	mu    sync.Mutex
	stats sync.Mutex
	n     int
}

// commitLocked requires n.mu held.
func (n *node) commitLocked() { n.n++ }

// Commit is compliant: it acquires the lock in its own body.
func (n *node) Commit() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.commitLocked()
}

// flushLocked is compliant: a *Locked function may call another.
func (n *node) flushLocked() { n.commitLocked() }

// Sneaky neither ends in Locked nor takes the lock.
func (n *node) Sneaky() {
	n.commitLocked() // want "call to commitLocked from Sneaky"
}

// Audited is exempt: the directive marks an audited call site.
func (n *node) Audited() {
	n.commitLocked() //causalgc:allow-locked-call engine invokes this only under the node lock
}

// AuditedAbove is exempt via the comment-above directive form.
func (n *node) AuditedAbove() {
	//causalgc:allow-locked-call engine invokes this only under the node lock
	n.commitLocked()
}

// deadLocked re-acquires the mutex its own suffix says is held.
func (n *node) deadLocked() {
	n.mu.Lock() // want "deadLocked calls Lock on the mutex its Locked suffix says is already held"
	n.commitLocked()
}

// statsLocked locks a different mutex than the one its suffix speaks
// for; that is allowed.
func (n *node) statsLocked() {
	n.stats.Lock()
	n.commitLocked()
	n.stats.Unlock()
}

// Spawn is compliant: the closure acquires the lock before calling in.
func (n *node) Spawn() {
	go func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.commitLocked()
	}()
}

// SpawnRogue leaks a *Locked call into a closure that never locks.
func (n *node) SpawnRogue() {
	go func() {
		n.commitLocked() // want "call to commitLocked from SpawnRogue"
	}()
}

type embedded struct {
	sync.Mutex
	v int
}

// bumpLocked requires the embedded mutex held.
func (e *embedded) bumpLocked() { e.v++ }

// badLocked locks the embedded mutex inside a *Locked method.
func (e *embedded) badLocked() {
	e.Lock() // want "badLocked calls Lock on the mutex"
	e.bumpLocked()
}

// Bump is compliant with an embedded mutex.
func (e *embedded) Bump() {
	e.Lock()
	defer e.Unlock()
	e.bumpLocked()
}
