package site

import (
	"fmt"
	"sort"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/wire"
	"causalgc/persist"
)

// Journal is the runtime's durability hook. Append is called
// write-ahead — before the recorded event mutates state or sends
// messages — and must make the record durable before returning, which
// is what guarantees no frame escapes a site before the event that
// caused it can be replayed. Checkpoint is called at quiescent points
// (end of every operation and delivery, under the runtime's mutex); the
// implementation decides whether to materialise a snapshot and must not
// call back into the Runtime.
type Journal interface {
	Append(rec *wire.WALRecord) error
	Checkpoint(build func() (*wire.SiteImage, error)) error
}

// PersistOptions tune a Persist journal.
type PersistOptions struct {
	// SnapshotEvery takes a snapshot (and truncates the WAL) after this
	// many appended records. Zero means 1024.
	SnapshotEvery int
	// Store configures the underlying persist.Store.
	Store persist.Options
}

func (o PersistOptions) withDefaults() PersistOptions {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	return o
}

// Persist is the standard Journal: wire-encoded records over a
// persist.Store, with a snapshot every SnapshotEvery records. Safe for
// use by one Runtime (the runtime serialises calls under its mutex).
type Persist struct {
	store    *persist.Store
	opts     PersistOptions
	appended int
	// sticky records the first checkpoint failure; subsequent appends
	// surface it so disk trouble degrades loudly instead of silently
	// growing an untruncatable WAL.
	sticky error
}

// OpenPersist opens (or creates) the persistence directory for one
// site and recovers its durable state.
func OpenPersist(dir string, opts PersistOptions) (*Persist, error) {
	st, err := persist.Open(dir, opts.Store)
	if err != nil {
		return nil, err
	}
	// Recovered WAL records count toward the snapshot threshold:
	// otherwise a process that crashes faster than SnapshotEvery fresh
	// appends would never truncate, and each restart would replay an
	// ever-growing log.
	return &Persist{store: st, opts: opts.withDefaults(), appended: len(st.WAL())}, nil
}

// Load decodes the recovered snapshot (nil for a fresh directory) and
// the WAL tail appended after it.
func (p *Persist) Load() (*wire.SiteImage, []*wire.WALRecord, error) {
	var img *wire.SiteImage
	if body := p.store.Snapshot(); body != nil {
		var err error
		img, err = wire.DecodeSnapshot(body)
		if err != nil {
			return nil, nil, err
		}
	}
	raw := p.store.WAL()
	recs := make([]*wire.WALRecord, 0, len(raw))
	for i, data := range raw {
		rec, err := wire.DecodeRecord(data)
		if err != nil {
			// A record the store's CRC accepted but the codec rejects is
			// corruption, not a torn tail.
			return nil, nil, fmt.Errorf("wal record %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	return img, recs, nil
}

// Append implements Journal.
func (p *Persist) Append(rec *wire.WALRecord) error {
	if p.sticky != nil {
		return p.sticky
	}
	data, err := wire.EncodeRecord(rec)
	if err != nil {
		return err
	}
	if err := p.store.Append(data); err != nil {
		return err
	}
	p.appended++
	return nil
}

// Checkpoint implements Journal: a snapshot is taken once SnapshotEvery
// records have accumulated since the last one.
func (p *Persist) Checkpoint(build func() (*wire.SiteImage, error)) error {
	if p.appended < p.opts.SnapshotEvery {
		return nil
	}
	return p.ForceCheckpoint(build)
}

// ForceCheckpoint snapshots unconditionally and truncates the WAL.
func (p *Persist) ForceCheckpoint(build func() (*wire.SiteImage, error)) error {
	img, err := build()
	if err == nil {
		var data []byte
		if data, err = wire.EncodeSnapshot(img); err == nil {
			err = p.store.WriteSnapshot(data)
		}
	}
	if err != nil {
		if p.sticky == nil {
			p.sticky = fmt.Errorf("site: checkpoint failed: %w", err)
		}
		return err
	}
	// A successful snapshot is a complete, consistent durable image:
	// whatever failed before is superseded, so the journal un-wedges.
	p.sticky = nil
	p.appended = 0
	return nil
}

// Store exposes the underlying store (stats, tests).
func (p *Persist) Store() *persist.Store { return p.store }

// Close closes the underlying store without snapshotting: a closed
// journal is crash-equivalent by design; call ForceCheckpoint first for
// a trimmed restart.
func (p *Persist) Close() error { return p.store.Close() }

var _ Journal = (*Persist)(nil)

// --- Recovery ------------------------------------------------------------

// Recover reconstructs a site from its journal and resumes the
// protocol: load the latest snapshot, replay the WAL tail through the
// regular operation and delivery paths (journaling suppressed — the
// records are already durable), re-send the outbox's mutator frames
// (receivers deduplicate via their introduction records), and run one
// journaled Refresh so peers re-converge. A fresh journal yields a
// fresh site with journaling enabled, so Recover doubles as the
// persistent constructor.
//
// Replay is deterministic: operations re-mint the same identities from
// the restored counters, deliveries re-apply in journaled order, and
// every engine-clock-advancing entry point is itself journaled — which
// is why a recovered site never re-issues an already-used stamp for a
// new event (the unsafety that would let an old Ē mask a live edge).
// Messages re-sent during replay are duplicates of pre-crash traffic:
// GGD control messages are idempotent by merge, creations are dropped
// as duplicates by the receiving heap, and reference transfers are
// deduplicated by (introducer, forwarding-seq).
//
// Live traffic arriving during replay is buffered and processed (and
// journaled) after the replay completes, so the WAL stays a total order
// of the site's events.
func Recover(id ids.SiteID, net netsim.Network, opts Options, j *Persist) (*Runtime, error) {
	img, recs, err := j.Load()
	if err != nil {
		return nil, fmt.Errorf("site %v: recover: %w", id, err)
	}
	var r *Runtime
	if img == nil {
		r = newRuntime(id, net, opts)
	} else {
		if img.Site != id {
			return nil, fmt.Errorf("site %v: recover: journal belongs to site %v", id, img.Site)
		}
		r, err = restoreRuntime(net, opts, img)
		if err != nil {
			return nil, fmt.Errorf("site %v: recover: %w", id, err)
		}
	}
	r.journal = j
	r.replaying = true
	// Register before replay: frames from already-running peers buffer
	// in recoverBuf instead of being dropped by the transport.
	net.Register(id, r.handle)
	for _, rec := range recs {
		r.applyRecord(rec)
	}
	// End of replay: process the deliveries buffered meanwhile through
	// the journaled path.
	r.mu.Lock()
	r.replaying = false
	buffered := r.recoverBuf
	r.recoverBuf = nil
	resend := make([]outboundFrame, len(r.outbox))
	copy(resend, r.outbox)
	r.mu.Unlock()
	for _, d := range buffered {
		r.handle(d.from, d.p)
	}
	// Re-send the unconfirmed mutator frames: at-least-once delivery,
	// deduplicated at the receivers. Routed through the emitLocked
	// coalescer (the only sanctioned send path — sendcheck enforces
	// this) inside one coalescing window, so the recovery burst ships
	// as one envelope per peer instead of a frame per row.
	r.mu.Lock()
	opened := r.beginCoalesceLocked()
	for _, f := range resend {
		r.emitLocked(f.to, f.p)
	}
	if opened {
		r.flushCoalesceLocked()
	}
	r.mu.Unlock()
	// One refresh re-propagates the recovered GGD state so detection
	// resumes without waiting for new mutator activity.
	if err := r.Refresh(); err != nil {
		return nil, fmt.Errorf("site %v: recover: %w", id, err)
	}
	if img != nil {
		// Make the bumped recovery epoch durable immediately: without
		// this, a second crash inside one SnapshotEvery window would
		// restore the same pre-bump snapshot and re-use the epoch, and
		// peers would skip the damper reset for the second restart. The
		// forced snapshot also bounds the next replay.
		if err := r.Checkpoint(); err != nil {
			return nil, fmt.Errorf("site %v: recover: checkpoint: %w", id, err)
		}
	}
	return r, nil
}

// applyRecord replays one WAL record. Errors are ignored: a record that
// failed when first applied fails identically on replay (replay
// determinism), and a delivery can never fail.
func (r *Runtime) applyRecord(rec *wire.WALRecord) {
	switch {
	case rec.Deliver != nil:
		r.replayDeliver(rec.Deliver.From, rec.Deliver.Payload)
	case rec.Batch != nil:
		// A journaled batch replays through the same group-apply path the
		// live commit used: ops in order, deferred refs re-resolved from
		// the re-minted results, outbound frames re-coalesced. Staging is
		// skipped — the batch proved it before the record was appended,
		// and replay determinism reproduces the same verdicts.
		r.mu.Lock()
		_, _ = r.applyBatchLocked(rec.Batch.Ops)
		r.mu.Unlock()
	case rec.Op != nil:
		op := rec.Op
		switch op.Kind {
		case wire.OpNewLocal:
			_, _ = r.NewLocal(op.Holder)
		case wire.OpNewLocalIn:
			_, _ = r.NewLocalIn(op.Holder, op.Clu)
		case wire.OpNewCluster:
			_, _ = r.NewCluster()
		case wire.OpNewRemote:
			_, _ = r.NewRemote(op.Holder, op.Site)
		case wire.OpSendRef:
			_ = r.SendRef(op.Holder, op.To, op.Target)
		case wire.OpAddRef:
			_ = r.AddRef(op.Holder, op.Target)
		case wire.OpDropRefs:
			_ = r.DropRefs(op.Holder, op.Target)
		case wire.OpClearSlot:
			_ = r.ClearSlot(op.Holder, op.Slot)
		case wire.OpCollect:
			_, _ = r.Collect()
		case wire.OpRefresh:
			_ = r.Refresh()
		}
	}
}

// replayDeliver dispatches a journaled delivery, bypassing the
// recoverBuf (which is for *live* traffic racing the replay).
func (r *Runtime) replayDeliver(from ids.SiteID, p netsim.Payload) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dispatchLocked(from, p)
}

// restoreRuntime rebuilds a runtime from a snapshot image. It does not
// register on the network; Recover does.
func restoreRuntime(net netsim.Network, opts Options, img *wire.SiteImage) (*Runtime, error) {
	r := &Runtime{
		id:          img.Site,
		net:         net,
		opts:        opts,
		pendingRefs: make(map[ids.ObjectID][]pendingRef),
		seenIntro:   make(map[introKey]struct{}, len(img.SeenIntro)),
		send:        make(map[streamKey]*sendStream, len(img.SendStreams)),
		recv:        make(map[streamKey]*recvTracker, len(img.RecvStreams)),
		peerEpoch:   make(map[ids.SiteID]uint64, len(img.PeerEpochs)),
		mint:        img.Mint,
		removals:    img.Removals,
		// Each recovery opens a new epoch: peers seeing it on the next
		// FrameAck re-arm their re-send dampers toward this site.
		epoch:  img.Epoch + 1,
		fstats: restoreFrameStats(img.Frames),
	}
	var err error
	r.engine, err = core.Restore(img.Site, (*sender)(r), r.onRemove, opts.Engine, img.Engine)
	if err != nil {
		return nil, err
	}
	r.heap, err = heap.Restore((*hooks)(r), img.Heap)
	if err != nil {
		return nil, err
	}
	for _, pr := range img.PendingRefs {
		r.pendingRefs[pr.Holder] = append(r.pendingRefs[pr.Holder], pendingRef{
			target: pr.Target, intro: pr.Intro, introSeq: pr.IntroSeq,
		})
	}
	for _, in := range img.SeenIntro {
		r.seenIntro[introKey{intro: in.Intro, seq: in.Seq}] = struct{}{}
	}
	for _, f := range img.Outbox {
		// Dampers reset on restore: the recovery re-send covers the
		// first attempt, and the first refresh retries promptly.
		r.outbox = append(r.outbox, outboundFrame{to: f.To, seq: f.Seq, p: f.Payload})
	}
	for _, st := range img.SendStreams {
		r.send[streamKey{peer: st.Peer, kind: st.Kind}] = &sendStream{nextSeq: st.NextSeq, ackedTo: st.AckedTo}
	}
	for _, st := range img.RecvStreams {
		t := &recvTracker{watermark: st.Watermark}
		if len(st.Pending) > 0 {
			t.pending = make(map[uint64]struct{}, len(st.Pending))
			for _, seq := range st.Pending {
				t.pending[seq] = struct{}{}
			}
		}
		r.recv[streamKey{peer: st.Peer, kind: st.Kind}] = t
	}
	for _, pe := range img.PeerEpochs {
		r.peerEpoch[pe.Peer] = pe.Epoch
	}
	return r, nil
}

// restoreFrameStats rebuilds the site counters from their image.
func restoreFrameStats(f wire.FrameStatsImage) FrameStats {
	return FrameStats{
		AcksSent: f.AcksSent, AcksReceived: f.AcksReceived,
		FramesRetired: f.FramesRetired, OutboxResends: f.OutboxResends,
		OutboxEvicted: f.OutboxEvicted, ResendsSuppressed: f.ResendsSuppressed,
		AdvancesSent: f.AdvancesSent,
	}
}

// exportImageLocked renders the runtime's full state. Caller holds
// r.mu at a quiescent point (engine drained).
func (r *Runtime) exportImageLocked() (*wire.SiteImage, error) {
	eng, err := r.engine.Export()
	if err != nil {
		return nil, err
	}
	img := &wire.SiteImage{
		Site:     r.id,
		Mint:     r.mint,
		Removals: r.removals,
		Heap:     r.heap.Export(),
		Engine:   eng,
	}
	for _, holder := range sortedObjectKeys(r.pendingRefs) {
		for _, pr := range r.pendingRefs[holder] {
			img.PendingRefs = append(img.PendingRefs, wire.PendingRefImage{
				Holder: holder, Target: pr.target, Intro: pr.intro, IntroSeq: pr.introSeq,
			})
		}
	}
	for k := range r.seenIntro {
		img.SeenIntro = append(img.SeenIntro, wire.IntroImage{Intro: k.intro, Seq: k.seq})
	}
	sortIntros(img.SeenIntro)
	for _, f := range r.outbox {
		img.Outbox = append(img.Outbox, wire.FrameImage{To: f.to, Payload: f.p, Seq: f.seq})
	}
	img.Epoch = r.epoch
	img.Frames = wire.FrameStatsImage{
		AcksSent: r.fstats.AcksSent, AcksReceived: r.fstats.AcksReceived,
		FramesRetired: r.fstats.FramesRetired, OutboxResends: r.fstats.OutboxResends,
		OutboxEvicted: r.fstats.OutboxEvicted, ResendsSuppressed: r.fstats.ResendsSuppressed,
		AdvancesSent: r.fstats.AdvancesSent,
	}
	keys := make([]streamKey, 0, len(r.send)+len(r.recv))
	for k := range r.send {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		st := r.send[k]
		img.SendStreams = append(img.SendStreams, wire.SendStreamImage{
			Peer: k.peer, Kind: k.kind, NextSeq: st.nextSeq, AckedTo: st.ackedTo,
		})
	}
	keys = keys[:0]
	for k := range r.recv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return streamKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		t := r.recv[k]
		ri := wire.RecvStreamImage{Peer: k.peer, Kind: k.kind, Watermark: t.watermark}
		for seq := range t.pending {
			ri.Pending = append(ri.Pending, seq)
		}
		sort.Slice(ri.Pending, func(i, j int) bool { return ri.Pending[i] < ri.Pending[j] })
		img.RecvStreams = append(img.RecvStreams, ri)
	}
	peers := make([]ids.SiteID, 0, len(r.peerEpoch))
	for p := range r.peerEpoch {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, p := range peers {
		img.PeerEpochs = append(img.PeerEpochs, wire.PeerEpochImage{Peer: p, Epoch: r.peerEpoch[p]})
	}
	return img, nil
}

// Checkpoint forces a snapshot now (and truncates the WAL). A no-op
// without a journal.
func (r *Runtime) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.journal.(*Persist)
	if !ok || p == nil {
		return nil
	}
	return p.ForceCheckpoint(r.exportImageLocked)
}

func sortedObjectKeys(m map[ids.ObjectID][]pendingRef) []ids.ObjectID {
	out := make([]ids.ObjectID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	ids.SortObjects(out)
	return out
}

// sortIntros uses sort.Slice, not the ids-package insertion sorts:
// seenIntro grows to maxSeenIntro (64k) entries on long-lived sites,
// and this runs under the runtime mutex at every snapshot.
func sortIntros(in []wire.IntroImage) {
	sort.Slice(in, func(i, j int) bool {
		if in[i].Intro != in[j].Intro {
			return in[i].Intro.Less(in[j].Intro)
		}
		return in[i].Seq < in[j].Seq
	})
}
