package wire

import (
	"reflect"
	"testing"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// TestEnvelopeRoundTrip: an envelope of mixed frames survives the WAL
// record codec (envelopes are journaled whole as delivery records).
func TestEnvelopeRoundTrip(t *testing.T) {
	env := Envelope{Frames: []netsim.Payload{
		Create{
			Creator: ids.ClusterID{Site: 1, Seq: 2},
			Stamp:   7,
			Obj:     ids.ObjectID{Site: 2, Seq: 9},
			Cluster: ids.ClusterID{Site: 2, Seq: 9},
			Seq:     3,
		},
		RefTransfer{
			FromCluster: ids.ClusterID{Site: 1, Seq: 2},
			IntroSeq:    4,
			ToObj:       ids.ObjectID{Site: 2, Seq: 1},
			ToCluster:   ids.ClusterID{Site: 2, Seq: 1},
			Target:      heap.Ref{Obj: ids.ObjectID{Site: 3, Seq: 5}, Cluster: ids.ClusterID{Site: 3, Seq: 5}},
			Seq:         4,
		},
		FrameAck{Stream: 1, Seq: 17, Epoch: 2},
	}}
	rec := &WALRecord{Deliver: &DeliverRecord{From: 1, Payload: env}}
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deliver == nil {
		t.Fatal("deliver record lost")
	}
	genv, ok := got.Deliver.Payload.(Envelope)
	if !ok {
		t.Fatalf("payload decoded as %T, want Envelope", got.Deliver.Payload)
	}
	if !reflect.DeepEqual(genv, env) {
		t.Fatalf("envelope mismatch:\n got %+v\nwant %+v", genv, env)
	}
}

// TestEnvelopeTrafficClass: an envelope is application traffic exactly
// when it carries a mutator frame; control-only envelopes stay
// fault-eligible like the bare frames they replace.
func TestEnvelopeTrafficClass(t *testing.T) {
	mixed := Envelope{Frames: []netsim.Payload{FrameAck{Stream: 1, Seq: 1}, Create{Seq: 1}}}
	if netsim.FaultEligible(mixed) {
		t.Fatal("envelope carrying a Create must be exempt from fault injection")
	}
	control := Envelope{Frames: []netsim.Payload{FrameAck{Stream: 1, Seq: 1}, Assert{Seq: 2}}}
	if !netsim.FaultEligible(control) {
		t.Fatal("control-only envelope must stay fault-eligible")
	}
	if got := mixed.ApproxSize(); got <= (Create{}).ApproxSize() {
		t.Fatalf("envelope size %d must exceed its content", got)
	}
	if mixed.Kind() != KindEnvelope {
		t.Fatalf("kind = %q", mixed.Kind())
	}
}

// TestBatchRecordRoundTrip: a batch WAL record with deferred argument
// indices survives the codec bit-exactly.
func TestBatchRecordRoundTrip(t *testing.T) {
	root := ids.ObjectID{Site: 1, Seq: 1}
	rec := &WALRecord{Batch: &BatchRecord{Ops: []BatchOp{
		{Op: OpRecord{Kind: OpNewLocal, Holder: root}},
		{Op: OpRecord{Kind: OpNewRemote, Site: 2}, HolderFrom: 1},
		{Op: OpRecord{Kind: OpSendRef, Holder: root}, ToFrom: 2, TargetFrom: 1},
		{Op: OpRecord{Kind: OpDropRefs, Holder: root}, TargetFrom: 2},
		{Op: OpRecord{Kind: OpClearSlot, Holder: root, Slot: 3}},
	}}}
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batch == nil {
		t.Fatal("batch record lost")
	}
	if !reflect.DeepEqual(got.Batch, rec.Batch) {
		t.Fatalf("batch mismatch:\n got %+v\nwant %+v", got.Batch, rec.Batch)
	}
}

// TestRecordArity: a record must set exactly one of Op, Deliver and
// Batch — on encode and on decode.
func TestRecordArity(t *testing.T) {
	bad := []*WALRecord{
		{},
		{Op: &OpRecord{Kind: OpCollect}, Batch: &BatchRecord{}},
		{Deliver: &DeliverRecord{From: 1, Payload: Create{}}, Batch: &BatchRecord{}},
		{Op: &OpRecord{Kind: OpCollect}, Deliver: &DeliverRecord{From: 1, Payload: Create{}}, Batch: &BatchRecord{}},
	}
	for i, rec := range bad {
		if _, err := EncodeRecord(rec); err == nil {
			t.Fatalf("case %d: encode accepted arity %d", i, recordArity(rec))
		}
	}
	good := &WALRecord{Batch: &BatchRecord{Ops: []BatchOp{{Op: OpRecord{Kind: OpNewLocal}}}}}
	if _, err := EncodeRecord(good); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRoundTrip: the sharding additions bumped the snapshot
// format to v4 (shard-partitioned state); older images still decode
// (see TestSnapshotV3Migrates in shard_test.go), and re-encoded images
// round-trip.
func TestSnapshotV4Pinned(t *testing.T) {
	if SnapshotVersion != 4 {
		t.Fatalf("SnapshotVersion = %d; sharding pinned the format at v4", SnapshotVersion)
	}
	img := sampleImage()
	data, err := EncodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Site != img.Site || got.Mint != img.Mint {
		t.Fatalf("image mismatch: got site=%v mint=%d", got.Site, got.Mint)
	}
	// An outbox frame stored pre-batch (a bare Create) must still load:
	// re-send state is always bare frames, never envelopes.
	for _, f := range got.Outbox {
		if _, ok := f.Payload.(Envelope); ok {
			t.Fatal("outbox must never retain envelopes")
		}
	}
}

// TestDecodeRecordRejectsGarbage keeps the error path loud.
func TestDecodeRecordRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecord([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded")
	}
}
