package causalgc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docLintPackages are the packages whose exported surface must be fully
// documented: the public API and the load-bearing internals, so that
// `go doc` tells the protocol story end to end. CI runs this test as
// the docs-lint step.
var docLintPackages = []string{
	".",
	"monitor",
	"transport",
	"transport/tcp",
	"persist",
	"eval",
	"internal/core",
	"internal/site",
	"internal/vclock",
	"internal/wire",
}

// TestDocComments fails on any exported identifier in the lint set that
// lacks a doc comment: package clause, top-level types, funcs, methods
// on exported receivers, and var/const declarations (a documented group
// covers its members).
func TestDocComments(t *testing.T) {
	for _, dir := range docLintPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			lintPackage(t, fset, dir, pkg)
		}
	}
}

func lintPackage(t *testing.T, fset *token.FileSet, dir string, pkg *ast.Package) {
	t.Helper()
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		t.Errorf("%s: package %s has no package doc comment", dir, pkg.Name)
	}
	for name, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				if d.Doc == nil || len(strings.TrimSpace(d.Doc.Text())) == 0 {
					t.Errorf("%s: exported %s lacks a doc comment", pos(fset, name, d.Pos()), funcLabel(d))
				}
			case *ast.GenDecl:
				lintGenDecl(t, fset, name, d)
			}
		}
	}
}

// lintGenDecl checks type/var/const declarations: each exported spec
// needs a doc comment on the spec or on its enclosing group.
func lintGenDecl(t *testing.T, fset *token.FileSet, file string, d *ast.GenDecl) {
	t.Helper()
	if d.Tok == token.IMPORT {
		return
	}
	groupDoc := d.Doc != nil && len(strings.TrimSpace(d.Doc.Text())) > 0
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && (s.Doc == nil || len(strings.TrimSpace(s.Doc.Text())) == 0) {
				t.Errorf("%s: exported type %s lacks a doc comment", pos(fset, file, s.Pos()), s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if !n.IsExported() {
					continue
				}
				if !groupDoc && (s.Doc == nil || len(strings.TrimSpace(s.Doc.Text())) == 0) &&
					(s.Comment == nil || len(strings.TrimSpace(s.Comment.Text())) == 0) {
					t.Errorf("%s: exported %s %s lacks a doc comment", pos(fset, file, s.Pos()), d.Tok, n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (functions have no receiver and always count).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcLabel names a func or method for the failure message.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return fmt.Sprintf("method %s", d.Name.Name)
}

// pos renders a file:line reference.
func pos(fset *token.FileSet, _ string, p token.Pos) string {
	return fset.Position(p).String()
}
