// Package errcmppkg seeds errcmpcheck violations and compliant forms.
package errcmppkg

import "errors"

// ErrGone is a sentinel.
var ErrGone = errors.New("gone")

// ErrBusy is a sentinel.
var ErrBusy = errors.New("busy")

// ErrCode is not an error at all; the type filter must spare it.
var ErrCode = 404

func bad(err error) bool {
	return err == ErrGone // want `sentinel error ErrGone compared with ==`
}

func badNeq(err error) bool {
	return ErrBusy != err // want `sentinel error ErrBusy compared with !=`
}

func badSwitch(err error) int {
	switch err {
	case ErrGone: // want `sentinel error ErrGone as a switch case`
		return 1
	case nil:
		return 0
	}
	return 2
}

func good(err error) bool {
	return errors.Is(err, ErrGone)
}

func nilProbe() bool {
	return ErrGone == nil
}

func notAnError(x int) bool {
	return x == ErrCode
}

func audited(err error) bool {
	return err == ErrGone //causalgc:allow-errcmp identity probe for the exact unwrapped value
}

func localShadow() bool {
	// A local variable matching the naming convention is not a
	// package-level sentinel.
	ErrLocal := errors.New("local")
	var err error
	return err == ErrLocal
}
