// Package core implements the paper's contribution: comprehensive Global
// Garbage Detection (GGD) by reconstructing the vector times of the
// mutator's log-keeping events (§3).
//
// One Engine runs per site and hosts one process per local cluster (global
// root). The engine is driven by:
//
//   - lazy log-keeping hooks from the heap (EdgeUp/EdgeDown/SentRef, §3.4);
//   - edge-assert control messages (HandleAssert) — see below;
//   - edge-destruction control messages (HandleDestroy, §3.1);
//   - dependency-vector propagations (HandlePropagate, §3.3 step 3);
//   - explicit refresh rounds (Refresh), the §5 recovery mechanism;
//   - cumulative frame acknowledgements relayed by the site runtime
//     (AckAsserts, AckDestroys, AckLegacy — DESIGN.md §3.2).
//
// # Realisation of the paper's Fig 6
//
// The scanned pseudo-code is OCR-lossy; this implementation follows the
// reconstruction documented in DESIGN.md §2. Stamps are edge-keyed: the
// value in column q of a process's own vector concerns exactly the edge
// q→process and lives in q's clock space, so merges are totally ordered
// per edge and the logs converge monotonically.
//
// # The introduction race and edge-asserts
//
// The paper's sender-side third-party entries (DV_i[k][j]++, §3.4) are
// counters in the *sender's* number space, while destruction stamps Ē are
// in the *edge source's* clock space. Merging them by magnitude — as the
// paper's max-merge does — lets an old Ē mask a newer in-flight
// introduction of the same edge: process j drops its last reference to k
// (Ē shipped), a third party's forwarded reference re-creates the edge
// j→k, and k, having merged the bigger Ē over the small count, removes
// itself while j holds a live reference. Randomised stress tests readily
// find this race (demonstrated by the A2 ablation experiment).
//
// This implementation therefore keeps the two kinds of knowledge apart:
//
//   - Authoritative stamps: only the edge's source writes them (creation
//     on acquisition, Ē on destruction), totally ordered per edge.
//   - Introduction hints (col, introducer, forwarding-seq): conservative
//     liveness recorded from bundles and gossip; a pending hint blocks a
//     garbage verdict.
//
// A hint is resolved by the source's word issued causally after the
// forwarded reference arrived: the source sends one small idempotent
// edge-assert when it first acquires the reference, and its destruction
// bundles carry the introductions it has processed. Asserts are deferred,
// idempotent, loss-tolerant GGD-plane messages — the mutator's exchange
// itself still carries no synchronous control traffic, preserving the
// substance of the paper's lazy log-keeping claim (the assert count is
// reported separately by every benchmark).
//
// # Hint resolution is guaranteed, not best-effort
//
// A pending hint blocks a garbage verdict, so an introduction that is
// never resolved pins its owner forever — the one leak the engine used
// to tolerate. Three mechanisms close it:
//
//   - Assert re-send: every edge-assert is journaled per (holder,
//     target, introducer, forwarding-seq) until the owner's site
//     acknowledges its frame (cumulative FrameAck, DESIGN.md §3.2);
//     Refresh re-ships the journal alongside the destroyed-edge bundles,
//     under the exponential re-send damper. Loss of an assert (or of
//     its ack) costs refresh rounds, never the resolution.
//   - Hint expiry: a forwarding whose reference was delivered and
//     discarded without an edge ever forming — the holder object
//     already collected, its cluster tombstoned — can never be consumed
//     by the source's word. The receiving site expires it at the owner
//     with a stampless negative assert for exactly that (introducer,
//     forwarding-seq), journaled and re-sent like any other
//     (ResolveIntroduction). Expiry is causally safe: the negative
//     assert is issued after the delivery that proves no edge resulted,
//     and a fresher forwarding carries a higher seq that the expiry
//     bound does not cover.
//   - Retained finalisation bundles: the destroy bundles a removed
//     process sends carry the processed-introduction records that
//     resolve its hints, but the process is gone — a lost bundle could
//     not be re-shipped from its on-behalf rows. Removal therefore
//     retains the bundles (bounded, acknowledged retirement) and
//     Refresh re-sends the un-acknowledged remainder.
//
// Detection then proceeds exactly as in §3.6: GGD work starts when an
// edge-destruction message arrives, first-hand vectors circulate along
// the edges of the global root graph (with row gossip) until the logs
// reach a fixpoint, and garbage removal cascades through finalisation
// destroys — collecting distributed cycles without any global consensus.
package core
