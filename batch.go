package causalgc

import (
	"causalgc/internal/wire"
)

// Batch stages a group of mutator operations against a node and
// commits them atomically with respect to cost: one lock acquisition,
// one write-ahead journal append (one fsync, or one group-commit
// window share, composing with WithGroupCommit) and one coalesced
// wire envelope per destination site — instead of paying each of those
// per operation, as the singleton Node methods do. The protocol itself
// is unchanged: every frame of a committed batch keeps its own
// retirement-stream sequence, the journal-before-send invariant holds
// per batch, and replay after a crash reconstructs the batch exactly
// (DESIGN.md §3.3).
//
// Staging returns *BatchRef placeholders, so later operations of the
// same batch can chain onto objects that will not exist until Commit
// (deferred reference resolution); lift pre-existing references in
// with Batch.Ref. After Commit, each placeholder resolves to its
// concrete Ref.
//
// A Batch is not safe for concurrent use (build and commit it on one
// goroutine); distinct batches of one Node may commit concurrently
// whenever the node's transport allows concurrent use. A Batch is
// single-shot: Commit may be called once.
type Batch struct {
	n         *Node
	ops       []wire.BatchOp
	refs      []*BatchRef
	err       error
	committed bool
}

// BatchRef is a reference argument of a Batch: either a concrete Ref
// lifted with Batch.Ref, or the deferred result of one of the batch's
// create operations, resolved when the batch commits.
type BatchRef struct {
	b   *Batch
	idx int // ≥ 0: result of batch op idx; -1: concrete
	ref Ref
}

// Ref returns the concrete reference: immediately for lifted refs, and
// after Commit for deferred ones (the zero Ref before Commit, or when
// the op that mints it failed).
func (br *BatchRef) Ref() Ref { return br.ref }

// Obj returns the concrete reference's object identifier (the zero
// ObjectID before a deferred ref resolves).
func (br *BatchRef) Obj() ObjectID { return br.ref.Obj }

// Batch starts an empty batch on the node. Operations staged on it
// take effect only at Commit.
func (n *Node) Batch() *Batch {
	return &Batch{n: n}
}

// Ref lifts a concrete reference (obtained from earlier commits, the
// root, or another node) into the batch, so it can be passed where a
// *BatchRef is expected.
func (b *Batch) Ref(r Ref) *BatchRef {
	return &BatchRef{b: b, idx: -1, ref: r}
}

// Root lifts the node's root object reference into the batch.
func (b *Batch) Root() *BatchRef { return b.Ref(b.n.Root()) }

// Len reports how many operations are staged.
func (b *Batch) Len() int { return len(b.ops) }

// arg validates a *BatchRef argument and renders it as a (concrete
// Ref, deferred 1-based index) pair; a nil or foreign ref poisons the
// batch (the error surfaces at Commit).
func (b *Batch) arg(br *BatchRef) (Ref, int) {
	if br == nil || br.b != b {
		if b.err == nil {
			b.err = ErrBatchRef
		}
		return NilRef, 0
	}
	if br.idx >= 0 {
		return NilRef, br.idx + 1
	}
	return br.ref, 0
}

// stage appends one op; creates get a deferred result placeholder.
func (b *Batch) stage(op wire.BatchOp, creates bool) *BatchRef {
	b.ops = append(b.ops, op)
	var br *BatchRef
	if creates {
		br = &BatchRef{b: b, idx: len(b.ops) - 1}
	}
	b.refs = append(b.refs, br)
	return br
}

// NewLocal stages the creation of an object in a fresh cluster on this
// node, referenced from holder.
func (b *Batch) NewLocal(holder *BatchRef) *BatchRef {
	ref, from := b.arg(holder)
	return b.stage(wire.BatchOp{
		Op:         wire.OpRecord{Kind: wire.OpNewLocal, Holder: ref.Obj},
		HolderFrom: from,
	}, true)
}

// NewLocalIn stages the creation of an object in an existing local
// cluster, referenced from holder.
func (b *Batch) NewLocalIn(holder *BatchRef, cl ClusterID) *BatchRef {
	ref, from := b.arg(holder)
	return b.stage(wire.BatchOp{
		Op:         wire.OpRecord{Kind: wire.OpNewLocalIn, Holder: ref.Obj, Clu: cl},
		HolderFrom: from,
	}, true)
}

// NewRemote stages the creation of an object on the target site,
// referenced from holder.
func (b *Batch) NewRemote(holder *BatchRef, target SiteID) *BatchRef {
	ref, from := b.arg(holder)
	return b.stage(wire.BatchOp{
		Op:         wire.OpRecord{Kind: wire.OpNewRemote, Holder: ref.Obj, Site: target},
		HolderFrom: from,
	}, true)
}

// SendRef stages copying a reference held by from's object to the
// object named by to (on any site), like Node.SendRef.
func (b *Batch) SendRef(from, to, target *BatchRef) {
	fref, ffrom := b.arg(from)
	tref, tfrom := b.arg(to)
	gref, gfrom := b.arg(target)
	b.stage(wire.BatchOp{
		Op:         wire.OpRecord{Kind: wire.OpSendRef, Holder: fref.Obj, To: tref, Target: gref},
		HolderFrom: ffrom, ToFrom: tfrom, TargetFrom: gfrom,
	}, false)
}

// AddRef stages storing target into a new slot of holder's object.
func (b *Batch) AddRef(holder, target *BatchRef) {
	href, hfrom := b.arg(holder)
	tref, tfrom := b.arg(target)
	b.stage(wire.BatchOp{
		Op:         wire.OpRecord{Kind: wire.OpAddRef, Holder: href.Obj, Target: tref},
		HolderFrom: hfrom, TargetFrom: tfrom,
	}, false)
}

// DropRefs stages clearing every slot of holder's object that
// references target's object.
func (b *Batch) DropRefs(holder, target *BatchRef) {
	href, hfrom := b.arg(holder)
	tref, tfrom := b.arg(target)
	b.stage(wire.BatchOp{
		Op:         wire.OpRecord{Kind: wire.OpDropRefs, Holder: href.Obj, Target: tref},
		HolderFrom: hfrom, TargetFrom: tfrom,
	}, false)
}

// ClearSlot stages dropping one slot of holder's object.
func (b *Batch) ClearSlot(holder *BatchRef, slot int) {
	href, hfrom := b.arg(holder)
	b.stage(wire.BatchOp{
		Op:         wire.OpRecord{Kind: wire.OpClearSlot, Holder: href.Obj, Slot: slot},
		HolderFrom: hfrom,
	}, false)
}

// Commit applies the staged group: the whole batch is validated
// against a staged view first — a staging failure (nonexistent
// holder, foreign cluster, bad deferred reference, ...) rejects the
// batch with nothing journaled or applied — then journaled as one
// record and applied in order. Per-op failures after that point (the
// same failures the singleton methods can return after their journal
// append) do not undo earlier ops; the first such error is returned
// and the deferred refs of failed creates stay zero. Commit on a
// closed node returns ErrNodeClosed. Any Commit call — including one
// that failed — consumes the batch: a second call returns
// ErrBatchCommitted, and a rejected batch must be rebuilt, not
// retried. An empty batch commits trivially.
func (b *Batch) Commit() error {
	if b.committed {
		return ErrBatchCommitted
	}
	b.committed = true
	if b.err != nil {
		return b.err
	}
	if len(b.ops) == 0 {
		return nil
	}
	refs, err := b.n.applyBatch(b.ops)
	for i, br := range b.refs {
		if br != nil && i < len(refs) {
			br.ref = refs[i]
		}
	}
	return err
}

// applyBatch runs a staged op group on the node's runtime, behind the
// close gate.
func (n *Node) applyBatch(ops []wire.BatchOp) ([]Ref, error) {
	if err := n.gate.enter(); err != nil {
		return nil, err
	}
	defer n.gate.exit()
	return n.rt.ApplyBatch(ops)
}

// applyOne commits a one-element batch: the singleton mutator methods
// of Node are implemented as these, so both paths share one
// stage/journal/apply sequence and one set of semantics.
func (n *Node) applyOne(op wire.OpRecord) (Ref, error) {
	refs, err := n.applyBatch([]wire.BatchOp{{Op: op}})
	if err != nil {
		return NilRef, err
	}
	return refs[0], nil
}
