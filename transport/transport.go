package transport

import (
	"time"

	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// SiteID identifies one site (an independent address space).
type SiteID = ids.SiteID

// Payload is implemented by every message a Transport carries. The wire
// messages of the GGD protocol implement it; applications embedding
// causalgc may define additional payloads.
type Payload = netsim.Payload

// Application marks payloads that model reliable application traffic
// (mutator RPC); fault-injecting backends exempt them from loss and
// duplication.
type Application = netsim.Application

// Handler consumes a delivered payload on the transport's delivery
// context.
type Handler = netsim.Handler

// Transport moves payloads between sites. Implementations must deliver
// asynchronously (Send must not invoke a handler synchronously on the
// sending goroutine) and serialise deliveries per destination site.
type Transport = netsim.Network

// Drainer is an optional Transport capability: Drain blocks until the
// transport's locally queued frames have been handed off (written to
// the wire or delivered to local handlers, with no handler still
// running) or the timeout elapses, reporting whether it drained. It is
// a best-effort flush, not a quiescence proof — frames already in the
// OS, in flight, or queued at a peer process are invisible to it.
// Cluster.Run (and through it Settle) uses the capability instead of a
// blind sleep; the TCP backend implements it.
type Drainer interface {
	// Drain flushes the transport's local queues, bounded by timeout.
	Drain(timeout time.Duration) bool
}

// Faults configures fault injection for the in-memory backends.
type Faults = netsim.Faults

// Stats records per-kind message traffic: sends, deliveries, drops,
// duplications and approximate bytes. Safe for concurrent use.
type Stats = netsim.Stats

// KindStats is a copy of one payload kind's counters, as returned by
// Stats.Snapshot (the map form the monitor package exports per kind).
type KindStats = netsim.KindStats

// NewStats returns empty statistics, for custom Transport
// implementations.
func NewStats() *Stats { return netsim.NewStats() }

// FaultEligible reports whether fault injection applies to p: control
// payloads are eligible, Application payloads are not. Custom
// fault-injecting backends should consult it before dropping or
// duplicating.
func FaultEligible(p Payload) bool { return netsim.FaultEligible(p) }

// Deterministic is the seeded single-threaded simulator: messages queue
// until its Run/Step methods deliver them, pseudo-randomly but
// reproducibly. It is not safe for concurrent use.
type Deterministic = netsim.Sim

// NewDeterministic creates a deterministic in-memory transport with the
// given fault plan.
func NewDeterministic(f Faults) *Deterministic { return netsim.NewSim(f) }

// Async is the concurrent in-memory transport: one delivery goroutine per
// registered site and unbounded queues. Close joins all goroutines.
type Async = netsim.AsyncNetwork

// NewAsync creates a concurrent in-memory transport with the given fault
// plan.
func NewAsync(f Faults) *Async { return netsim.NewAsync(f) }
