package heap

import "errors"

// Sentinel errors returned (wrapped, with site/object context) by the heap
// and by the site runtime on top of it. Callers match them with errors.Is;
// the public causalgc package re-exports them.
var (
	// ErrNoSuchObject is returned when an operation names an object that
	// does not exist on this site (never created, or already reclaimed).
	ErrNoSuchObject = errors.New("no such object")
	// ErrNoSuchCluster is returned when an operation names a cluster
	// unknown to this site.
	ErrNoSuchCluster = errors.New("no such cluster")
	// ErrDuplicateObject is returned when a minted identity already exists
	// (a duplicated creation message).
	ErrDuplicateObject = errors.New("object already exists")
	// ErrForeignCluster is returned when an operation requires a cluster
	// owned by this site but was given a remote one.
	ErrForeignCluster = errors.New("cluster owned by another site")
	// ErrClusterRemoved is returned when an operation targets a cluster
	// already removed by global garbage detection.
	ErrClusterRemoved = errors.New("cluster removed by GGD")
	// ErrNilRef is returned when an operation is given an unset reference.
	ErrNilRef = errors.New("nil reference")
	// ErrBadSlot is returned for an out-of-range slot index.
	ErrBadSlot = errors.New("slot index out of range")
	// ErrRootCluster is returned for operations that are illegal on the
	// site's root cluster (it is alive by fiat and never removed).
	ErrRootCluster = errors.New("operation on root cluster")
)
