// Package tracing implements a distributed graph-tracing GGD in the
// family the paper's §2.4 surveys (Hughes'85, Juul'93, Ladin & Liskov'92):
// epoch-based global marking with an explicit termination-detection phase.
//
// Each iteration ("epoch") marks the whole live object graph: a
// coordinator starts the epoch at every site; sites trace locally from
// their root sets, sending a mark message for every remote reference
// reached; marks received for unmarked objects continue the trace.
// Termination is detected with message-count accounting (a simplified
// Mattern/Dijkstra scheme): the epoch is complete only when every site is
// locally quiet and all marks in flight have been consumed — the paper's
// "consensus bottleneck": *every* site participates in *every* iteration
// and no resource is reclaimed before global agreement. Objects unmarked
// at the end of the epoch are garbage (comprehensive: cycles included).
//
// The message complexity is proportional to the number of LIVE inter-site
// references — the paper's contrast with its own algorithm, whose traffic
// scales with the amount of garbage (E7).
package tracing

import (
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
)

// Mark is the tracing control message: "object To is reachable".
type Mark struct {
	To ids.ObjectID
}

// Kind implements netsim.Payload.
func (Mark) Kind() string { return "trace.mark" }

// ApproxSize implements netsim.Payload.
func (Mark) ApproxSize() int { return 16 }

// Control messages for the epoch protocol.
type (
	// Start begins an epoch at a site.
	Start struct{ Epoch int }
	// Ack reports a site locally quiet, with its mark send/receive
	// counters for termination detection.
	Ack struct {
		Epoch          int
		Site           ids.SiteID
		Sent, Received int
	}
)

// Kind implements netsim.Payload.
func (Start) Kind() string { return "trace.start" }

// ApproxSize implements netsim.Payload.
func (Start) ApproxSize() int { return 8 }

// Kind implements netsim.Payload.
func (Ack) Kind() string { return "trace.ack" }

// ApproxSize implements netsim.Payload.
func (Ack) ApproxSize() int { return 24 }

// Collector runs epoch tracing over the live heaps of a sim world. It
// deliberately reuses the real site runtimes' snapshots as its object
// graph, so its message counts are comparable with the causal GGD's on
// identical workloads.
type Collector struct {
	sites []site.Instance
	net   netsim.Network

	// marked is the per-epoch mark set.
	marked map[ids.ObjectID]bool
	// graph is the frozen object graph of the current epoch.
	objs  map[ids.ObjectID]site.ObjectSnapshot
	roots []ids.ObjectID

	sent, received int
	// Stats of the last epoch.
	LastLive    int
	LastGarbage []ids.ObjectID
	Epochs      int
}

// New creates a collector over the given sites and network. The collector
// registers handlers on dedicated site IDs offset by markOffset... it
// instead multiplexes through a dedicated handler registered per site ID
// plus 1000, keeping the real runtimes' traffic separate.
func New(sites []site.Instance, net netsim.Network) *Collector {
	c := &Collector{sites: sites, net: net}
	for _, s := range sites {
		id := s.ID()
		net.Register(id+1000, func(from ids.SiteID, p netsim.Payload) {
			c.handle(id, p)
		})
	}
	return c
}

// port maps a real site ID to the collector's network endpoint for it.
func port(id ids.SiteID) ids.SiteID { return id + 1000 }

// RunEpoch performs one complete tracing iteration and returns the
// garbage found. All sites participate; the caller drives the network to
// quiescence between phases (deterministic sim).
//
// The epoch freezes a consistent snapshot of every site's graph first —
// the simplification that stands in for the paper's §2.4 log-based
// reconstruction ("the contents of these logs may be used to reconstruct
// consistent representations of the overall object graph") — and then
// performs the distributed marking with real messages.
func (c *Collector) RunEpoch(drive func()) []ids.ObjectID {
	c.Epochs++
	c.marked = make(map[ids.ObjectID]bool)
	c.objs = make(map[ids.ObjectID]site.ObjectSnapshot)
	c.roots = nil
	c.sent, c.received = 0, 0

	for _, s := range c.sites {
		root, objs := s.Snapshot()
		c.roots = append(c.roots, root)
		for _, o := range objs {
			c.objs[o.ID] = o
		}
	}

	// Phase 1: the coordinator starts every site (consensus participant
	// #1..N) — 2N control messages for start+ack even if a site holds no
	// garbage at all.
	coord := port(c.sites[0].ID())
	for _, s := range c.sites {
		c.net.Send(coord, port(s.ID()), Start{Epoch: c.Epochs})
	}
	drive()

	// Phase 2: termination detection. In the deterministic harness the
	// drive() call runs the network dry, so in-flight marks are zero and
	// every site acks once; a real deployment would loop.
	for _, s := range c.sites {
		c.net.Send(port(s.ID()), coord, Ack{
			Epoch: c.Epochs, Site: s.ID(), Sent: c.sent, Received: c.received,
		})
	}
	drive()

	// Phase 3: sweep — everything unmarked is garbage.
	var garbage []ids.ObjectID
	live := 0
	for id := range c.objs {
		if c.marked[id] {
			live++
		} else {
			garbage = append(garbage, id)
		}
	}
	ids.SortObjects(garbage)
	c.LastLive = live
	c.LastGarbage = garbage
	return garbage
}

func (c *Collector) handle(at ids.SiteID, p netsim.Payload) {
	switch m := p.(type) {
	case Start:
		// Local trace from this site's roots.
		for _, r := range c.roots {
			if r.Site == at {
				c.trace(at, r)
			}
		}
	case Mark:
		c.received++
		c.trace(at, m.To)
	case Ack:
		// Coordinator bookkeeping; nothing further to do in the harness.
	}
}

// trace marks transitively within site at, sending Mark messages for
// remote references.
func (c *Collector) trace(at ids.SiteID, obj ids.ObjectID) {
	if obj.Site != at || c.marked[obj] {
		return
	}
	o, ok := c.objs[obj]
	if !ok {
		return
	}
	c.marked[obj] = true
	for _, ref := range o.Slots {
		if !ref.Valid() {
			continue
		}
		if ref.Obj.Site == at {
			c.trace(at, ref.Obj)
			continue
		}
		c.sent++
		c.net.Send(port(at), port(ref.Obj.Site), Mark{To: ref.Obj})
	}
}
