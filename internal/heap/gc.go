package heap

import "causalgc/internal/ids"

// CollectStats reports one local collection.
type CollectStats struct {
	// Marked counts objects found reachable.
	Marked int
	// Swept counts objects reclaimed.
	Swept int
	// Roots counts the root set used: local roots plus the entry objects
	// (global roots) of non-removed clusters (Fig 1).
	Roots int
}

// Collect runs one per-site mark-sweep collection (§2.1): the root set is
// the union of the site's local roots (the root cluster's objects) and the
// global roots (every entry object of a cluster not yet removed by GGD).
// Unreachable objects are reclaimed; their dropped references perform edge
// accounting, so collecting the last proxy for a remote cluster emits an
// edge-destruction notification through Hooks (§3.4: "an edge-destruction
// control message is sent by the local garbage collector when the proxy
// for that remote object is collected").
//
// Collection is independent of every other site — the decoupling of local
// garbage collection from global garbage detection that the paper's §2
// sets up.
func (h *Heap) Collect() CollectStats {
	var stats CollectStats

	// Mark.
	var stack []*Object
	push := func(o *Object) {
		if o != nil && !o.marked {
			o.marked = true
			stack = append(stack, o)
		}
	}
	if rc := h.clusters[h.rootClu]; rc != nil {
		for _, o := range rc.objects {
			push(o)
			stats.Roots++
		}
	}
	for _, c := range h.clusters {
		if c.removed || c.id == h.rootClu {
			continue
		}
		for id := range c.entries {
			push(h.objects[id])
			stats.Roots++
		}
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stats.Marked++
		for _, r := range o.slots {
			if r.Valid() && r.Obj.Site == h.site {
				push(h.objects[r.Obj])
			}
		}
	}

	// Sweep.
	var dead []*Object
	for _, o := range h.objects {
		if !o.marked {
			dead = append(dead, o)
		}
	}
	// Deterministic sweep order, so the destruction messages emitted by
	// edge accounting are reproducible under a fixed seed.
	sortObjectsByID(dead)
	for _, o := range dead {
		for i, r := range o.slots {
			if r.Valid() {
				o.slots[i] = NilRef
				h.refDropped(o, r)
			}
		}
		c := h.clusters[o.cluster]
		delete(c.objects, o.id)
		delete(c.entries, o.id)
		delete(h.objects, o.id)
		if h.track != nil {
			h.track(o.id, false)
		}
		// Shells of GGD-removed clusters are dropped once empty; live
		// cluster shells persist (their identity is still a GGD vertex).
		if c.removed && len(c.objects) == 0 {
			delete(h.clusters, c.id)
		}
		stats.Swept++
	}

	// Clear mark bits for the next cycle.
	for _, o := range h.objects {
		o.marked = false
	}
	return stats
}

// LocallyReachable reports whether obj is reachable from the current root
// set without running a collection (a read-only mark). Used by tests and
// the oracle.
func (h *Heap) LocallyReachable(obj ids.ObjectID) bool {
	seen := make(map[ids.ObjectID]struct{})
	var stack []ids.ObjectID
	push := func(id ids.ObjectID) {
		if _, ok := seen[id]; ok {
			return
		}
		if _, ok := h.objects[id]; !ok {
			return
		}
		seen[id] = struct{}{}
		stack = append(stack, id)
	}
	if rc := h.clusters[h.rootClu]; rc != nil {
		for id := range rc.objects {
			push(id)
		}
	}
	for _, c := range h.clusters {
		if c.removed || c.id == h.rootClu {
			continue
		}
		for id := range c.entries {
			push(id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == obj {
			return true
		}
		for _, r := range h.objects[id].slots {
			if r.Valid() && r.Obj.Site == h.site {
				push(r.Obj)
			}
		}
	}
	_, ok := seen[obj]
	return ok
}

func sortObjectsByID(os []*Object) {
	for i := 1; i < len(os); i++ {
		for j := i; j > 0 && os[j].id.Less(os[j-1].id); j-- {
			os[j], os[j-1] = os[j-1], os[j]
		}
	}
}
