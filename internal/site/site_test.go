package site_test

import (
	"sync"
	"testing"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
)

func twoSites(t *testing.T) (*netsim.Sim, *site.Runtime, *site.Runtime) {
	t.Helper()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s1 := site.New(1, net, site.DefaultOptions())
	s2 := site.New(2, net, site.DefaultOptions())
	return net, s1, s2
}

func run(t *testing.T, net *netsim.Sim) {
	t.Helper()
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestSiteNewLocal(t *testing.T) {
	_, s1, _ := twoSites(t)
	ref, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.HasObject(ref.Obj) {
		t.Fatal("object missing")
	}
	if s1.NumObjects() != 2 {
		t.Errorf("NumObjects = %d, want 2", s1.NumObjects())
	}
	if _, err := s1.NewLocal(ids.ObjectID{Site: 1, Seq: 99}); err == nil {
		t.Error("NewLocal with unknown holder must error")
	}
}

func TestSiteNewLocalIn(t *testing.T) {
	_, s1, _ := twoSites(t)
	cl, err := s1.NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	a, err := s1.NewLocalIn(s1.Root().Obj, cl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s1.NewLocalIn(s1.Root().Obj, cl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cluster != cl || b.Cluster != cl {
		t.Error("objects not in the requested cluster")
	}
	if _, err := s1.NewLocalIn(s1.Root().Obj, ids.ClusterID{Site: 9, Seq: 1}); err == nil {
		t.Error("foreign cluster must error")
	}
}

func TestSiteNewRemoteLifecycle(t *testing.T) {
	net, s1, s2 := twoSites(t)
	ref, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if !s2.HasObject(ref.Obj) {
		t.Fatal("remote object not created")
	}
	if _, err := s1.NewRemote(s1.Root().Obj, 1); err == nil {
		t.Error("NewRemote to self must error")
	}
	// Drop the only reference: GGD + local GC reclaim it.
	if err := s1.DropRefs(s1.Root().Obj, ref); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if s2.HasObject(ref.Obj) {
		t.Fatal("dropped remote object survived")
	}
	if !s2.ClusterRemoved(ref.Cluster) {
		t.Fatal("cluster not removed")
	}
	if s2.EngineStats().Removed != 1 {
		t.Errorf("engine Removed = %d", s2.EngineStats().Removed)
	}
}

func TestSiteSendRefValidation(t *testing.T) {
	net, s1, s2 := twoSites(t)
	ref, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	other, err := s2.NewLocal(s2.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	// s1's root does not hold `other`: sending it must fail.
	if err := s1.SendRef(s1.Root().Obj, ref, other); err == nil {
		t.Error("SendRef of a non-held reference must error")
	}
	// Unknown sender.
	if err := s1.SendRef(ids.ObjectID{Site: 1, Seq: 77}, ref, ref); err == nil {
		t.Error("SendRef from unknown object must error")
	}
	// Sending one's own reference is always legal.
	if err := s2.SendRef(ref.Obj, heap.Ref{Obj: s2.Root().Obj, Cluster: s2.Root().Cluster},
		heap.Ref{Obj: ref.Obj, Cluster: ref.Cluster}); err != nil {
		t.Errorf("self-reference send: %v", err)
	}
	run(t, net)
}

func TestSiteSendRefLocalDestination(t *testing.T) {
	net, s1, _ := twoSites(t)
	a, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	// Copy root's reference to a into b: a local third-party transfer;
	// no network message.
	base := net.Stats().TotalSent()
	if err := s1.SendRef(s1.Root().Obj, b, a); err != nil {
		t.Fatal(err)
	}
	if net.Stats().TotalSent() != base {
		t.Error("local SendRef sent a message")
	}
	// Now a survives dropping the root edge (held by b).
	if err := s1.DropRefs(s1.Root().Obj, a); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if !s1.HasObject(a.Obj) {
		t.Fatal("locally held object collected (UNSAFE)")
	}
	// Dropping b kills both.
	if err := s1.DropRefs(s1.Root().Obj, b); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	s1.Collect()
	if s1.HasObject(a.Obj) || s1.HasObject(b.Obj) {
		t.Fatal("garbage chain survived")
	}
}

func TestSiteClearSlot(t *testing.T) {
	net, s1, _ := twoSites(t)
	ref, err := s1.NewLocal(s1.Root().Obj)
	if err != nil {
		t.Fatal(err)
	}
	// The root's slot 0 holds ref.
	if err := s1.ClearSlot(s1.Root().Obj, 0); err != nil {
		t.Fatal(err)
	}
	run(t, net)
	if s1.HasObject(ref.Obj) {
		t.Fatal("cleared object survived")
	}
}

func TestSiteConcurrentMutators(t *testing.T) {
	// The Runtime must be safe under concurrent mutator calls (async
	// network + goroutines).
	net := netsim.NewAsync(netsim.Faults{Seed: 1})
	defer net.Close()
	s1 := site.New(1, net, site.DefaultOptions())
	s2 := site.New(2, net, site.DefaultOptions())
	_ = s2

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ref, err := s1.NewRemote(s1.Root().Obj, 2)
				if err != nil {
					errs <- err
					return
				}
				if err := s1.DropRefs(s1.Root().Obj, ref); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	net.Quiesce()
}

func TestSiteRefreshIsSafeNoop(t *testing.T) {
	net, s1, s2 := twoSites(t)
	ref, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	s1.Refresh()
	s2.Refresh()
	run(t, net)
	if !s2.HasObject(ref.Obj) {
		t.Fatal("refresh collected a live object")
	}
}

func TestSiteLogIntrospection(t *testing.T) {
	net, s1, s2 := twoSites(t)
	ref, err := s1.NewRemote(s1.Root().Obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	run(t, net)
	l := s2.LogSnapshot(ref.Cluster)
	if l == nil {
		t.Fatal("no log for live cluster")
	}
	if got := l.Own().Get(s1.Root().Cluster); !got.Live() {
		t.Errorf("creator stamp = %v, want live", got)
	}
	if s2.Clock(ref.Cluster) != 0 {
		t.Errorf("fresh cluster clock = %d, want 0", s2.Clock(ref.Cluster))
	}
	if s1.LogSnapshot(ref.Cluster) != nil {
		t.Error("foreign cluster has a local log")
	}
}
