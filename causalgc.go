package causalgc

import (
	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/oracle"
	"causalgc/internal/site"
	"causalgc/internal/vclock"
)

// SiteID identifies one site. Numbering starts at 1; zero is "no site".
type SiteID = ids.SiteID

// NoSite is the zero SiteID.
const NoSite = ids.NoSite

// ObjectID identifies a heap object anywhere in the system.
type ObjectID = ids.ObjectID

// ClusterID identifies a vertex of the global root graph: a group of
// objects collected as a unit (at the default granularity, every object
// is its own cluster).
type ClusterID = ids.ClusterID

// Ref names a reference target: the object and the cluster it belongs
// to. Node methods accept and return Refs.
type Ref = heap.Ref

// NilRef is the empty reference.
var NilRef = heap.NilRef

// CollectStats reports one local mark-sweep collection.
type CollectStats = heap.CollectStats

// EngineStats counts GGD engine activity on one node.
type EngineStats = core.Stats

// EngineOptions tune the GGD engine. The zero value is the sound
// production configuration; the Unsafe fields reproduce the paper's
// literal (racy) removal guard for ablation studies, and RemoveObserver
// exposes each removed process's final log for tracing.
type EngineOptions = core.Options

// Log is the two-dimensional dependency-vector log a global root keeps;
// exposed read-only for diagnostics (Node.LogSnapshot, RemoveObserver).
type Log = vclock.Log

// Report is the verdict of a global reachability oracle over a set of
// nodes: live count, undetected garbage, and dangling references (safety
// violations). See Cluster.Check.
type Report = oracle.Report

// Observer receives node lifecycle events: cluster removals decided by
// GGD and local collections. Callbacks run with the node's internal lock
// held — they must be fast and must not call back into the Node.
type Observer = site.Observer

// AckObserver is an optional extension of Observer: an Observer that
// also implements it receives acknowledged-retirement events — frames
// retired exactly by a peer's cumulative FrameAck, and frames dropped
// at a hard-cap backstop (tolerated loss that would otherwise be
// silent). Same callback rules as Observer.
type AckObserver = site.AckObserver

// FanoutObserver composes observers into one: every lifecycle event is
// forwarded to each non-nil child in order, and AckObserver retirement
// events reach the children that implement that extension. It is the
// adapter WithMonitor uses internally so a monitor's recorder and a
// user observer share the observer slot; use it directly to stack
// several user observers.
func FanoutObserver(obs ...Observer) Observer { return site.Fanout(obs...) }

// FrameStats counts a node's acknowledged-retirement activity: the
// outbox gauge and its backstop evictions, FrameAck traffic, retired
// frames, damper suppressions and floor advisories. See Node.FrameStats.
type FrameStats = site.FrameStats

// Stream identifies one acknowledged-retirement stream between a pair
// of sites (DESIGN.md §3.2); AckObserver callbacks name the stream a
// frame belonged to.
type Stream = core.Stream

// The retirement streams: retained outbound mutator frames, journaled
// edge-asserts, destroyed-edge bundles, and retained finalisation
// bundles of removed clusters.
const (
	StreamMut     = core.StreamMut
	StreamAssert  = core.StreamAssert
	StreamDestroy = core.StreamDestroy
	StreamLegacy  = core.StreamLegacy
)

// Check runs the global reachability oracle over the given nodes: ground
// truth no real site can compute, for tests and demos. All nodes of the
// system must be passed, and the system should be quiescent for a
// meaningful liveness verdict.
func Check(nodes ...*Node) Report {
	rts := make([]oracle.Site, len(nodes))
	for i, n := range nodes {
		rts[i] = n.rt
	}
	return oracle.Check(rts...)
}
