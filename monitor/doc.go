// Package monitor is the observability surface of causalgc: a per-node
// metrics registry (Monitor) that snapshots every statistics surface the
// system already keeps, a bounded structured event trace fed by the
// Observer/AckObserver hooks, and an HTTP server exposing both in
// Prometheus text format and JSON.
//
// A Monitor attaches to one node and reads through closures (Sources),
// so a snapshot always reflects the node's live counters; it also plugs
// into the node's observer slot — composed with any user observer by the
// site-level fanout — to record removals, collections, retirements and
// backstop evictions into a fixed-depth ring with sequence numbers and
// wall-clock stamps. Wiring is one option: causalgc.WithMonitor hands a
// Monitor to a Node, causalgc.WithMetricsAddr additionally serves it
// (one Server per Node, or one per Cluster covering all its nodes), and
// cmd/causalgc-node exposes the same via -metrics-addr. The
// cmd/causalgc-soak harness is the reference consumer: it polls
// /metrics during a long fault-injected run and asserts the steady-state
// invariants the paper's scalability argument promises.
//
// # Metrics reference
//
// Every sample carries a site="s<N>" label; causalgc_net_* add
// kind="<payload>" and causalgc_resends_total adds stream=. Sources:
// ENG = engine core.Stats, FRM = site FrameStats, DEP = site Depths
// gauges, COL = accumulated heap.CollectStats, WAL = persist.Stats
// (persistent nodes only), NET = transport Stats, ORA = oracle via
// Monitor.SetResidual (test deployments only), TRC = the monitor's own
// ring.
//
//	causalgc_uptime_seconds            gauge    —    seconds since Attach
//	causalgc_objects                   gauge    heap live heap objects
//	causalgc_clusters_removed_total    counter  ENG  clusters removed as global garbage
//	causalgc_evaluations_total         counter  ENG  GGD closure computations
//	causalgc_propagations_sent_total   counter  ENG  dependency vectors sent
//	causalgc_destroys_sent_total       counter  ENG  edge-destruction messages sent
//	causalgc_asserts_sent_total        counter  ENG  edge-asserts sent
//	causalgc_resends_total{stream}     counter  ENG/FRM refresh re-sends: assert, destroy, legacy, outbox
//	causalgc_resends_suppressed_total{layer} counter ENG/FRM re-sends the damper held back
//	causalgc_rows_retired_total        counter  ENG  rows retired by cumulative acks
//	causalgc_backstop_drops_total{table} counter ENG/FRM hard-cap losses: assert_journal, legacy, outbox
//	causalgc_hints_expired_total       counter  ENG  introduction hints expired
//	causalgc_stale_deliveries_total    counter  ENG  messages to removed/unknown processes
//	causalgc_acks_sent_total           counter  FRM  FrameAcks sent
//	causalgc_acks_received_total       counter  FRM  FrameAcks received
//	causalgc_frames_retired_total      counter  FRM  outbox frames retired by acks
//	causalgc_advances_sent_total       counter  FRM  StreamAdvance advisories sent
//	causalgc_outbox_depth              gauge    DEP  unacknowledged mutator frames retained
//	causalgc_assert_journal_depth      gauge    DEP  un-acknowledged edge-asserts journaled
//	causalgc_destroy_bundles_depth     gauge    DEP  destroyed-edge bundles tracked
//	causalgc_legacy_bundles_depth      gauge    DEP  finalisation bundles retained
//	causalgc_pending_refs_depth        gauge    DEP  buffered reference transfers
//	causalgc_pending_deliveries_depth  gauge    DEP  control messages buffered pre-registration
//	causalgc_collections_total         counter  COL  mark-sweep collections observed
//	causalgc_collect_marked_total      counter  COL  objects marked, summed
//	causalgc_collect_swept_total       counter  COL  objects reclaimed, summed
//	causalgc_wal_appends_total         counter  WAL  records appended
//	causalgc_wal_syncs_total           counter  WAL  fsyncs issued
//	causalgc_wal_fsync_seconds_total   counter  WAL  total time in fsync
//	causalgc_wal_fsync_max_seconds     gauge    WAL  slowest single fsync
//	causalgc_wal_snapshots_total       counter  WAL  snapshots written
//	causalgc_wal_recovered_records     gauge    WAL  records recovered at open
//	causalgc_wal_discarded_tail_bytes  gauge    WAL  torn tail discarded at open
//	causalgc_net_sent_total{kind}      counter  NET  sends by payload kind
//	causalgc_net_delivered_total{kind} counter  NET  deliveries by payload kind
//	causalgc_net_dropped_total{kind}   counter  NET  losses by payload kind
//	causalgc_net_duplicated_total{kind} counter NET  duplicated deliveries by kind
//	causalgc_net_bytes_total{kind}     counter  NET  approximate payload bytes by kind
//	causalgc_residual_garbage          gauge    ORA  unreclaimed garbage objects (absent in production)
//	causalgc_trace_recorded_total      counter  TRC  events ever recorded
//	causalgc_trace_dropped_total       counter  TRC  events overwritten off the ring
//
// Counters restart with the node session they come from (a recovered
// node re-attaches and its ENG/FRM/WAL counters begin again); Prometheus
// rate() handles the resets as usual. The depth gauges are the
// boundedness story: under a steady workload with periodic Refresh,
// everything but causalgc_destroy_bundles_depth must return to zero at
// quiescence, and the backstop counters must stay flat.
package monitor
