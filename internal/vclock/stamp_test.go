package vclock

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate lets testing/quick build interesting stamps: small sequence
// numbers so that collisions (equal Seq, different Eps) actually occur.
func (Stamp) Generate(r *rand.Rand, _ int) reflect.Value {
	s := Stamp{Seq: uint64(r.Intn(6)), Eps: r.Intn(2) == 0}
	if s.Seq == 0 {
		s.Eps = false // canonical zero
	}
	return reflect.ValueOf(s)
}

func TestStampDead(t *testing.T) {
	tests := []struct {
		s    Stamp
		dead bool
	}{
		{Zero, true},
		{At(1), false},
		{At(99), false},
		{Eps(1), true},
		{Eps(0), true},
	}
	for _, tt := range tests {
		if got := tt.s.Dead(); got != tt.dead {
			t.Errorf("%v.Dead() = %t, want %t", tt.s, got, tt.dead)
		}
		if got := tt.s.Live(); got == tt.dead {
			t.Errorf("%v.Live() = %t, want %t", tt.s, got, !tt.dead)
		}
	}
}

func TestStampLess(t *testing.T) {
	tests := []struct {
		a, b Stamp
		less bool
	}{
		{Zero, At(1), true},
		{At(1), Zero, false},
		{At(1), At(2), true},
		{At(2), At(1), false},
		{At(3), Eps(3), true},  // destruction supersedes same-seq creation
		{Eps(3), At(3), false}, //
		{Eps(3), At(4), true},  // later creation supersedes destruction
		{At(4), Eps(3), false},
		{At(3), At(3), false}, // irreflexive
		{Eps(3), Eps(3), false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.less {
			t.Errorf("%v.Less(%v) = %t, want %t", tt.a, tt.b, got, tt.less)
		}
	}
}

func TestStampMergeBasics(t *testing.T) {
	if got := At(2).Merge(Eps(3)); got != Eps(3) {
		t.Errorf("At(2).Merge(Eps(3)) = %v, want Ē3", got)
	}
	if got := Eps(3).Merge(At(4)); got != At(4) {
		t.Errorf("Eps(3).Merge(At(4)) = %v, want 4", got)
	}
	if got := At(3).Merge(Eps(3)); got != Eps(3) {
		t.Errorf("At(3).Merge(Eps(3)) = %v, want Ē3 (destruction wins ties)", got)
	}
}

func TestStampMergeProperties(t *testing.T) {
	commutative := func(a, b Stamp) bool { return a.Merge(b) == b.Merge(a) }
	associative := func(a, b, c Stamp) bool {
		return a.Merge(b).Merge(c) == a.Merge(b.Merge(c))
	}
	idempotent := func(a Stamp) bool { return a.Merge(a) == a }
	monotone := func(a, b Stamp) bool {
		m := a.Merge(b)
		return !m.Less(a) && !m.Less(b)
	}
	for name, f := range map[string]interface{}{
		"commutative": commutative,
		"associative": associative,
		"idempotent":  idempotent,
		"monotone":    monotone,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("Merge %s: %v", name, err)
		}
	}
}

func TestStampJoinPath(t *testing.T) {
	tests := []struct {
		a, b, want Stamp
	}{
		{At(1), Eps(9), At(1)}, // live path survives a destroyed parallel path
		{Eps(9), At(1), At(1)},
		{At(1), At(3), At(3)},
		{Eps(2), Eps(5), Eps(5)},
		{Zero, Eps(5), Eps(5)},
		{Zero, At(5), At(5)},
		{Zero, Zero, Zero},
	}
	for _, tt := range tests {
		if got := tt.a.JoinPath(tt.b); got != tt.want {
			t.Errorf("%v.JoinPath(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestStampJoinPathProperties(t *testing.T) {
	commutative := func(a, b Stamp) bool { return a.JoinPath(b) == b.JoinPath(a) }
	associative := func(a, b, c Stamp) bool {
		return a.JoinPath(b).JoinPath(c) == a.JoinPath(b.JoinPath(c))
	}
	idempotent := func(a Stamp) bool { return a.JoinPath(a) == a }
	liveDominates := func(a, b Stamp) bool {
		j := a.JoinPath(b)
		if a.Live() || b.Live() {
			return j.Live()
		}
		return j.Dead()
	}
	for name, f := range map[string]interface{}{
		"commutative":   commutative,
		"associative":   associative,
		"idempotent":    idempotent,
		"liveDominates": liveDominates,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("JoinPath %s: %v", name, err)
		}
	}
}

func TestStampString(t *testing.T) {
	tests := []struct {
		s    Stamp
		want string
	}{
		{Zero, "0"},
		{At(17), "17"},
		{Eps(17), "Ē17"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
