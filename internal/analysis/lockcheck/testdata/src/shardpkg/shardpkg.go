// Package shardpkg seeds *ShardLocked violations and compliant forms
// for the per-shard mutex convention.
package shardpkg

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type engine struct {
	mu     sync.Mutex
	shards []*shard
}

// commitShardLocked requires the owning shard's mu held.
func (s *shard) commitShardLocked() { s.n++ }

// Commit is compliant: it takes the owning lock in its own body.
func (s *shard) Commit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitShardLocked()
}

// flushShardLocked is compliant: same receiver, so the Locked suffix
// already promises the owning mutex.
func (s *shard) flushShardLocked() { s.commitShardLocked() }

// applyLocked is compliant: a plain *Locked method on the shard itself
// also speaks for the owning mutex.
func (s *shard) applyLocked() { s.commitShardLocked() }

// CommitAll is compliant: each shard's lock is taken before its body
// runs and dropped before the next shard is entered.
func (e *engine) CommitAll() {
	for _, s := range e.shards {
		s.mu.Lock()
		s.commitShardLocked()
		s.mu.Unlock()
	}
}

// Sequential is compliant: the first shard's lock is released before
// the second shard is entered.
func (e *engine) Sequential(a, b *shard) {
	a.mu.Lock()
	a.commitShardLocked()
	a.mu.Unlock()
	b.mu.Lock()
	b.commitShardLocked()
	b.mu.Unlock()
}

// WrongLock holds a lock — so the base rule is satisfied — but not the
// owning shard's, and enters the shard while still holding it.
func (e *engine) WrongLock(s *shard) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s.commitShardLocked() // want "without holding s.mu" "while holding e.mu"
}

// Handoff enters shard b while still holding shard a's lock.
func (e *engine) Handoff(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.commitShardLocked() // want "while holding a.mu"
}

// Rogue neither ends in Locked nor takes any lock.
func (e *engine) Rogue(s *shard) {
	s.commitShardLocked() // want "which neither ends in Locked" "without holding s.mu"
}

// pokeShardLocked reaches into a sibling under its own lock.
func (s *shard) pokeShardLocked(other *shard) {
	other.commitShardLocked() // want "without holding other.mu" "while holding s.mu"
}

// mergeShardLocked grabs a sibling's lock while its suffix says the
// owning shard's lock is already held — the deadlock-order violation.
func (s *shard) mergeShardLocked(other *shard) {
	other.mu.Lock() // want "mergeShardLocked acquires other.mu"
	other.n += s.n
	other.mu.Unlock()
}

// drainAllLocked is the audited stop-the-world composer: the AllLocked
// suffix promises every shard's lock is held.
func (e *engine) drainAllLocked() {
	for _, s := range e.shards {
		s.commitShardLocked()
	}
}

// Audited is exempt via the directive.
func (e *engine) Audited(s *shard) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s.commitShardLocked() //causalgc:allow-shard-locked-call dispatch map pins s before publication
}

// Spawn is compliant: the closure is created under the owning lock and
// inherits it.
func (s *shard) Spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	func() { s.commitShardLocked() }()
}

// SpawnRogue creates the closure before taking any lock.
func (s *shard) SpawnRogue() {
	go func() {
		s.commitShardLocked() // want "which neither ends in Locked" "without holding s.mu"
	}()
}

// ByIndex is compliant: index expressions name the owner too.
func (e *engine) ByIndex(i int) {
	e.shards[i].mu.Lock()
	e.shards[i].commitShardLocked()
	e.shards[i].mu.Unlock()
}
