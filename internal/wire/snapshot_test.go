package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/vclock"
)

func sampleImage() *SiteImage {
	cl2 := ids.ClusterID{Site: 2, Seq: 7}
	cl3 := ids.ClusterID{Site: 3, Seq: 9}
	root := ids.ClusterID{Site: 2, Seq: 1, Root: true}
	obj := ids.ObjectID{Site: 2, Seq: 4}
	return &SiteImage{
		Site:     2,
		Mint:     13,
		Removals: 1,
		Heap: heap.Image{
			Site:        2,
			RootCluster: root,
			RootObject:  ids.ObjectID{Site: 2, Seq: 1},
			NextObj:     5,
			NextClu:     8,
			Objects: []ObjectImageAlias{
				{ID: ids.ObjectID{Site: 2, Seq: 1}, Cluster: root},
				{ID: obj, Cluster: cl2, Slots: []heap.Ref{{Obj: ids.ObjectID{Site: 3, Seq: 2}, Cluster: cl3}}},
			},
			Clusters: []heap.ClusterImage{
				{ID: root, Entries: []ids.ObjectID{{Site: 2, Seq: 1}}},
				{ID: cl2, Entries: []ids.ObjectID{obj}, Removed: false},
			},
			Edges: []heap.EdgeImage{{From: cl2, To: cl3, Count: 1}},
		},
		Engine: core.EngineImage{
			Procs: []core.ProcImage{{
				ID:     cl2,
				Clock:  17,
				Active: true,
				Acq:    []ids.ClusterID{cl3},
				Log: vclock.LogImage{
					Own:         vclock.Vector{root: vclock.At(3), cl3: vclock.Eps(5)},
					HintPending: map[ids.ClusterID]vclock.Vector{cl3: {root: vclock.At(2)}},
					HintCleared: map[ids.ClusterID]vclock.Vector{cl3: {root: vclock.At(1)}},
					VRows: map[ids.ClusterID]vclock.VRowImage{
						cl3: {Auth: vclock.Vector{cl2: vclock.At(9)}, HintCols: []ids.ClusterID{root}, Confirmed: true},
					},
					OBs: map[ids.ClusterID]vclock.OBImage{
						cl3: {Auth: vclock.Vector{cl2: vclock.At(9)}, Hints: vclock.Vector{root: vclock.At(4)}, Processed: vclock.Vector{root: vclock.At(2)}},
					},
				},
			}},
			Tombstones: map[ids.ClusterID]uint64{{Site: 2, Seq: 3}: 21},
			Pending: []core.PendingImage{{
				To: cl2, From: cl3, Kind: 1,
				Destroy: core.DestroyMsg{Auth: vclock.Vector{cl3: vclock.Eps(6)}},
			}},
			Asserts: []core.AssertRowImage{
				{Holder: cl2, Target: cl3, Intro: root, Seq: 11, Stamp: 16},
				{Holder: ids.ClusterID{Site: 2, Seq: 3}, Target: cl3, Intro: root, Seq: 12, Stamp: 0},
			},
			Legacy: []core.LegacyImage{{
				From: ids.ClusterID{Site: 2, Seq: 3}, To: cl3,
				M: core.DestroyMsg{
					Auth:      vclock.Vector{{Site: 2, Seq: 3}: vclock.Eps(20)},
					Processed: vclock.Vector{root: vclock.At(11)},
				},
			}},
		},
		PendingRefs: []PendingRefImage{{
			Holder: ids.ObjectID{Site: 2, Seq: 99}, Target: heap.Ref{Obj: obj, Cluster: cl2}, Intro: cl3, IntroSeq: 11,
		}},
		SeenIntro: []IntroImage{{Intro: cl3, Seq: 11}},
		Outbox: []FrameImage{
			{To: 3, Payload: Create{Creator: cl2, Stamp: 17, Obj: ids.ObjectID{Site: 3, Seq: 40}, Cluster: ids.ClusterID{Site: 3, Seq: 40}}},
			{To: 3, Payload: RefTransfer{FromCluster: cl2, IntroSeq: 12, ToObj: ids.ObjectID{Site: 3, Seq: 2}, ToCluster: cl3, Target: heap.Ref{Obj: obj, Cluster: cl2}}},
		},
	}
}

// ObjectImageAlias keeps the sample readable while exercising the real
// type.
type ObjectImageAlias = heap.ObjectImage

func TestSnapshotRoundTrip(t *testing.T) {
	img := sampleImage()
	data, err := EncodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != SnapshotVersion || got.Site != 2 || got.Mint != 13 || got.Removals != 1 {
		t.Fatalf("header fields: %+v", got)
	}
	if len(got.Heap.Objects) != 2 || got.Heap.NextClu != 8 || got.Heap.Objects[1].Slots[0] != img.Heap.Objects[1].Slots[0] {
		t.Fatalf("heap image mismatch: %+v", got.Heap)
	}
	if len(got.Engine.Procs) != 1 {
		t.Fatalf("engine procs: %+v", got.Engine.Procs)
	}
	p := got.Engine.Procs[0]
	if p.Clock != 17 || !p.Active || len(p.Acq) != 1 {
		t.Fatalf("proc mismatch: %+v", p)
	}
	if !p.Log.Own.Equal(img.Engine.Procs[0].Log.Own) {
		t.Fatalf("own vector mismatch: %v vs %v", p.Log.Own, img.Engine.Procs[0].Log.Own)
	}
	row := p.Log.VRows[ids.ClusterID{Site: 3, Seq: 9}]
	if !row.Confirmed || !row.Auth.Equal(vclock.Vector{{Site: 2, Seq: 7}: vclock.At(9)}) {
		t.Fatalf("vrow mismatch: %+v", row)
	}
	if len(got.Engine.Pending) != 1 || got.Engine.Pending[0].Kind != 1 {
		t.Fatalf("pending mismatch: %+v", got.Engine.Pending)
	}
	if got.Engine.Tombstones[ids.ClusterID{Site: 2, Seq: 3}] != 21 {
		t.Fatalf("tombstones mismatch: %+v", got.Engine.Tombstones)
	}
	if len(got.SeenIntro) != 1 || got.SeenIntro[0].Seq != 11 {
		t.Fatalf("seenIntro mismatch: %+v", got.SeenIntro)
	}
	if len(got.Outbox) != 2 {
		t.Fatalf("outbox mismatch: %+v", got.Outbox)
	}
	if c, ok := got.Outbox[0].Payload.(Create); !ok || c.Stamp != 17 {
		t.Fatalf("outbox[0] payload mismatch: %#v", got.Outbox[0].Payload)
	}
	if r, ok := got.Outbox[1].Payload.(RefTransfer); !ok || r.IntroSeq != 12 || !r.ToCluster.Valid() {
		t.Fatalf("outbox[1] payload mismatch: %#v", got.Outbox[1].Payload)
	}
	if len(got.Engine.Asserts) != 2 || got.Engine.Asserts[0] != img.Engine.Asserts[0] ||
		got.Engine.Asserts[1].Stamp != 0 {
		t.Fatalf("assert journal mismatch: %+v", got.Engine.Asserts)
	}
	if len(got.Engine.Legacy) != 1 ||
		!got.Engine.Legacy[0].M.Processed.Equal(img.Engine.Legacy[0].M.Processed) {
		t.Fatalf("legacy bundles mismatch: %+v", got.Engine.Legacy)
	}
}

func TestRecordRoundTripHintAck(t *testing.T) {
	rec := &WALRecord{Deliver: &DeliverRecord{From: 3, Payload: HintAck{
		From: ids.ClusterID{Site: 3, Seq: 9},
		To:   ids.ClusterID{Site: 2, Seq: 7},
		M:    core.AckMsg{Intro: ids.ClusterID{Site: 1, Seq: 1, Root: true}, IntroSeq: 4, Stamp: 5},
	}}}
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := got.Deliver.Payload.(HintAck)
	if !ok {
		t.Fatalf("payload = %#v, want HintAck", got.Deliver.Payload)
	}
	if ack != rec.Deliver.Payload.(HintAck) {
		t.Fatalf("round trip mismatch: %+v != %+v", ack, rec.Deliver.Payload)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cl2 := ids.ClusterID{Site: 2, Seq: 7}
	recs := []*WALRecord{
		{Op: &OpRecord{Kind: OpNewRemote, Holder: ids.ObjectID{Site: 1, Seq: 1}, Site: 2}},
		{Op: &OpRecord{Kind: OpSendRef, Holder: ids.ObjectID{Site: 1, Seq: 2},
			To:     heap.Ref{Obj: ids.ObjectID{Site: 3, Seq: 1}, Cluster: ids.ClusterID{Site: 3, Seq: 1}},
			Target: heap.Ref{Obj: ids.ObjectID{Site: 2, Seq: 4}, Cluster: cl2}}},
		{Op: &OpRecord{Kind: OpClearSlot, Holder: ids.ObjectID{Site: 1, Seq: 1}, Slot: 3}},
		{Op: &OpRecord{Kind: OpCollect}},
		{Deliver: &DeliverRecord{From: 3, Payload: Assert{From: ids.ClusterID{Site: 3, Seq: 2}, To: cl2, M: coreAssert()}}},
		{Deliver: &DeliverRecord{From: 1, Payload: Create{Creator: ids.ClusterID{Site: 1, Seq: 1, Root: true}, Stamp: 2, Obj: ids.ObjectID{Site: 2, Seq: 9}, Cluster: ids.ClusterID{Site: 2, Seq: 9}}}},
	}
	for i, rec := range recs {
		data, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		got, err := DecodeRecord(data)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		switch {
		case rec.Op != nil:
			if got.Op == nil || *got.Op != *rec.Op {
				t.Fatalf("record %d: got %+v want %+v", i, got.Op, rec.Op)
			}
		case rec.Deliver != nil:
			if got.Deliver == nil || got.Deliver.From != rec.Deliver.From {
				t.Fatalf("record %d: got %+v want %+v", i, got.Deliver, rec.Deliver)
			}
			if got.Deliver.Payload.Kind() != rec.Deliver.Payload.Kind() {
				t.Fatalf("record %d: payload kind %q want %q", i, got.Deliver.Payload.Kind(), rec.Deliver.Payload.Kind())
			}
		}
	}
}

func coreAssert() (m core.AssertMsg) {
	m.Stamp = 5
	m.Intro = ids.ClusterID{Site: 1, Seq: 1, Root: true}
	m.IntroSeq = 4
	return m
}

func TestRecordValidation(t *testing.T) {
	if _, err := EncodeRecord(&WALRecord{}); err == nil {
		t.Error("empty record encoded")
	}
	if _, err := EncodeRecord(&WALRecord{Op: &OpRecord{Kind: OpCollect}, Deliver: &DeliverRecord{From: 1, Payload: Create{}}}); err == nil {
		t.Error("double record encoded")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	img := sampleImage()
	snap, err := EncodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(snap[:len(snap)/2]); err == nil {
		t.Error("truncated snapshot decoded")
	}
	rec, err := EncodeRecord(&WALRecord{Op: &OpRecord{Kind: OpCollect}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecord(rec[:len(rec)-1]); err == nil {
		t.Error("truncated record decoded")
	}
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("empty snapshot decoded")
	}
}

// TestSnapshotV2MigratesForward: a version-2 image (no retirement
// protocol state) decodes under the v3 codec with every new field zero
// — exactly the pre-protocol state — and is stamped forward. Versions
// outside the supported window still fail loudly.
func TestSnapshotV2MigratesForward(t *testing.T) {
	img := sampleImage()
	img.Version = 2
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if got.Version != SnapshotVersion {
		t.Errorf("migrated Version = %d, want %d", got.Version, SnapshotVersion)
	}
	if got.Site != img.Site || got.Mint != img.Mint {
		t.Errorf("migration lost base fields: %+v", got)
	}
	if got.Epoch != 0 || len(got.SendStreams) != 0 || len(got.RecvStreams) != 0 || len(got.PeerEpochs) != 0 {
		t.Errorf("v2 migration fabricated retirement state: %+v", got)
	}
	for _, bad := range []int{0, 1, SnapshotVersion + 1} {
		img.Version = bad
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(img); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeSnapshot(buf.Bytes()); err == nil {
			t.Errorf("version %d accepted", bad)
		}
	}
}

// TestSnapshotRoundTripStreams: the v3 retirement state survives an
// encode/decode round trip byte-exactly.
func TestSnapshotRoundTripStreams(t *testing.T) {
	img := sampleImage()
	img.Epoch = 4
	img.SendStreams = []SendStreamImage{
		{Peer: 3, Kind: core.StreamMut, NextSeq: 17, AckedTo: 15},
		{Peer: 3, Kind: core.StreamAssert, NextSeq: 5, AckedTo: 5},
	}
	img.RecvStreams = []RecvStreamImage{
		{Peer: 4, Kind: core.StreamDestroy, Watermark: 9, Pending: []uint64{11, 12}},
	}
	img.PeerEpochs = []PeerEpochImage{{Peer: 3, Epoch: 2}}
	img.Frames = FrameStatsImage{AcksSent: 7, OutboxEvicted: 1, FramesRetired: 12}
	img.Outbox = []FrameImage{{To: 3, Seq: 16, Payload: Create{Creator: ids.ClusterID{Site: 2, Seq: 7}, Stamp: 3, Seq: 16}}}
	data, err := EncodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.SendStreams, img.SendStreams) ||
		!reflect.DeepEqual(got.RecvStreams, img.RecvStreams) ||
		!reflect.DeepEqual(got.PeerEpochs, img.PeerEpochs) ||
		got.Frames != img.Frames || got.Epoch != img.Epoch {
		t.Fatalf("retirement state did not round-trip:\n got %+v\nwant %+v", got, img)
	}
	if len(got.Outbox) != 1 || got.Outbox[0].Seq != 16 {
		t.Fatalf("outbox seq lost: %+v", got.Outbox)
	}
}
