// Package causalgc is the public API of the causalgc distributed garbage
// collector: a reproduction-grown implementation of comprehensive Global
// Garbage Detection (GGD) by tracking causal dependencies of relevant
// mutator events (Louboutin & Cahill, ICDCS 1997). It detects and
// reclaims all distributed garbage — cycles spanning any number of sites
// included — without stop-the-world phases or global consensus, and
// tolerates loss, duplication and reordering of its control messages.
//
// # Model
//
// The system is a set of sites, each an independent address space with
// its own heap, local mark-sweep collector and GGD engine. Objects are
// containers of reference slots; references may cross site boundaries.
// Applications drive the mutator API of Node: create objects locally or
// on remote sites, copy held references to other objects (including
// third-party transfers), and drop them. Everything else — lazy
// log-keeping, dependency-vector propagation, garbage detection and
// reclamation — happens underneath.
//
// # Quickstart
//
// A Node is one site; a Cluster assembles several over a shared
// transport. The default Cluster transport is the deterministic
// in-memory simulator, which makes runs reproducible:
//
//	c := causalgc.NewCluster(3)
//	defer c.Close()
//	n1 := c.Node(1)
//	a, _ := n1.NewRemote(n1.Root().Obj, 2) // object on site 2
//	c.Run()                                // deliver messages
//	b, _ := c.Node(2).NewRemote(a.Obj, 3)  // object on site 3
//	c.Run()
//	c.Node(2).SendRef(a.Obj, b, a)         // cycle a ⇄ b across sites
//	c.Run()
//	n1.DropRefs(n1.Root().Obj, a)          // now {a,b} is distributed garbage
//	c.Settle()                             // GGD detects and reclaims it
//
// The same engine runs over real sockets: build each Node in its own
// process with WithTransport(tcp.New(...)) — see transport/tcp and
// cmd/causalgc-node.
//
// # Structure
//
// Public packages: causalgc (Node, Cluster, workloads, oracle checks),
// causalgc/transport (the Transport interface and in-memory backends),
// causalgc/transport/tcp (the socket backend) and causalgc/eval (the
// experiment harness reproducing the paper's evaluation). The protocol
// internals live under internal/ — see DESIGN.md for the algorithm
// reconstruction and README.md for the package map.
package causalgc

import (
	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/oracle"
	"causalgc/internal/site"
	"causalgc/internal/vclock"
)

// SiteID identifies one site. Numbering starts at 1; zero is "no site".
type SiteID = ids.SiteID

// NoSite is the zero SiteID.
const NoSite = ids.NoSite

// ObjectID identifies a heap object anywhere in the system.
type ObjectID = ids.ObjectID

// ClusterID identifies a vertex of the global root graph: a group of
// objects collected as a unit (at the default granularity, every object
// is its own cluster).
type ClusterID = ids.ClusterID

// Ref names a reference target: the object and the cluster it belongs
// to. Node methods accept and return Refs.
type Ref = heap.Ref

// NilRef is the empty reference.
var NilRef = heap.NilRef

// CollectStats reports one local mark-sweep collection.
type CollectStats = heap.CollectStats

// EngineStats counts GGD engine activity on one node.
type EngineStats = core.Stats

// EngineOptions tune the GGD engine. The zero value is the sound
// production configuration; the Unsafe fields reproduce the paper's
// literal (racy) removal guard for ablation studies, and RemoveObserver
// exposes each removed process's final log for tracing.
type EngineOptions = core.Options

// Log is the two-dimensional dependency-vector log a global root keeps;
// exposed read-only for diagnostics (Node.LogSnapshot, RemoveObserver).
type Log = vclock.Log

// Report is the verdict of a global reachability oracle over a set of
// nodes: live count, undetected garbage, and dangling references (safety
// violations). See Cluster.Check.
type Report = oracle.Report

// Observer receives node lifecycle events: cluster removals decided by
// GGD and local collections. Callbacks run with the node's internal lock
// held — they must be fast and must not call back into the Node.
type Observer = site.Observer

// Check runs the global reachability oracle over the given nodes: ground
// truth no real site can compute, for tests and demos. All nodes of the
// system must be passed, and the system should be quiescent for a
// meaningful liveness verdict.
func Check(nodes ...*Node) Report {
	rts := make([]*site.Runtime, len(nodes))
	for i, n := range nodes {
		rts[i] = n.rt
	}
	return oracle.Check(rts...)
}
