package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func reopen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func appendAll(t *testing.T, s *Store, recs ...[]byte) {
	t.Helper()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func wantWAL(t *testing.T, s *Store, want ...[]byte) {
	t.Helper()
	got := s.WAL()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	recs := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	appendAll(t, s, recs...)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir, Options{})
	defer r.Close()
	if r.Snapshot() != nil {
		t.Fatal("fresh store recovered a snapshot")
	}
	wantWAL(t, r, recs...)
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	appendAll(t, s, []byte("pre-1"), []byte("pre-2"))
	if err := s.WriteSnapshot([]byte("image-1")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, []byte("post-1"))
	s.Close()

	r := reopen(t, dir, Options{})
	defer r.Close()
	if got := r.Snapshot(); string(got) != "image-1" {
		t.Fatalf("snapshot = %q, want image-1", got)
	}
	wantWAL(t, r, []byte("post-1"))
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{SegmentBytes: 64})
	var recs [][]byte
	for i := 0; i < 20; i++ {
		recs = append(recs, []byte(fmt.Sprintf("record-%02d-padding-padding", i)))
	}
	appendAll(t, s, recs...)
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation, found %d segments", len(segs))
	}
	r := reopen(t, dir, Options{})
	defer r.Close()
	wantWAL(t, r, recs...)
}

func TestAppendAfterRecoveryStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	appendAll(t, s, []byte("a"))
	s.Close()

	r := reopen(t, dir, Options{})
	appendAll(t, r, []byte("b"))
	r.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 2 {
		t.Fatalf("expected 2 segments (no reuse after recovery), found %d", len(segs))
	}
	rr := reopen(t, dir, Options{})
	defer rr.Close()
	wantWAL(t, rr, []byte("a"), []byte("b"))
}

// lastSegment returns the path of the newest WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	last := segs[0]
	for _, s := range segs[1:] {
		if s > last {
			last = s
		}
	}
	return last
}

func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	appendAll(t, s, []byte("kept-1"), []byte("kept-2"), []byte("torn-victim"))
	s.Close()

	// Chop bytes off the segment, simulating a crash mid-append.
	seg := lastSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, buf[:len(buf)-5], 0o666); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir, Options{})
	defer r.Close()
	wantWAL(t, r, []byte("kept-1"), []byte("kept-2"))
	if st := r.Stats(); st.DiscardedTailBytes == 0 {
		t.Error("discarded tail not recorded in stats")
	}
}

// TestTornTailSurvivesSecondCrash: the torn tail must be physically
// trimmed at recovery, or the segment — no longer "last" once new
// appends rotate past it — would read as interior corruption on the
// restart after next, permanently bricking the store.
func TestTornTailSurvivesSecondCrash(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	appendAll(t, s, []byte("kept-1"), []byte("torn"))
	s.Close()

	seg := lastSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, buf[:len(buf)-5], 0o666); err != nil {
		t.Fatal(err)
	}

	// First restart discards the tail and appends into a new segment.
	r := reopen(t, dir, Options{})
	appendAll(t, r, []byte("after-crash"))
	r.Close()

	// Second restart: the once-torn segment is now interior and must
	// read clean.
	rr := reopen(t, dir, Options{})
	defer rr.Close()
	wantWAL(t, rr, []byte("kept-1"), []byte("after-crash"))
}

// TestHeaderlessTornSegmentRemoved: a crash right after segment
// creation (not even a full header) must not poison later recoveries.
func TestHeaderlessTornSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	appendAll(t, s, []byte("kept"))
	s.Close()
	seg := lastSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, segName(0, 2))
	if err := os.WriteFile(torn, buf[:3], 0o666); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir, Options{})
	appendAll(t, r, []byte("later"))
	r.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Error("headerless torn segment not removed at recovery")
	}

	rr := reopen(t, dir, Options{})
	defer rr.Close()
	wantWAL(t, rr, []byte("kept"), []byte("later"))
}

func TestCorruptCRCInTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	appendAll(t, s, []byte("kept"), []byte("flipped"))
	s.Close()

	seg := lastSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff // flip a bit in the last record's payload
	if err := os.WriteFile(seg, buf, 0o666); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir, Options{})
	defer r.Close()
	wantWAL(t, r, []byte("kept"))
}

func TestCorruptInteriorSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{SegmentBytes: 32})
	appendAll(t, s, []byte("seg1-record-padding"), []byte("seg2-record-padding"), []byte("seg3-record-padding"))
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(segs))
	}
	first := segs[0]
	for _, sg := range segs {
		if sg < first {
			first = sg
		}
	}
	buf, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(first, buf, 0o666); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over interior corruption: want ErrCorrupt, got %v", err)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	if err := s.WriteSnapshot([]byte("the-image")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	buf, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(snaps[0], buf, 0o666); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt snapshot: want ErrCorrupt, got %v", err)
	}
}

func TestUncommittedSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	appendAll(t, s, []byte("survives"))
	s.Close()

	// A crash mid-snapshot leaves a .tmp; recovery must ignore and
	// remove it.
	tmp := filepath.Join(dir, snapName(1)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial garbage"), 0o666); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir, Options{})
	defer r.Close()
	if r.Snapshot() != nil {
		t.Fatal("recovered state from an uncommitted snapshot")
	}
	wantWAL(t, r, []byte("survives"))
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("tmp snapshot not cleaned up")
	}
}

func TestStaleGenerationIgnored(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	appendAll(t, s, []byte("old-gen"))
	if err := s.WriteSnapshot([]byte("image")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, []byte("new-gen"))
	s.Close()

	// Resurrect a stale pre-snapshot segment, as if the post-commit
	// cleanup had crashed: recovery must not replay it.
	stale := filepath.Join(dir, segName(0, 1))
	f, err := os.Create(stale)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(walMagic)
	f.Write([]byte{0, 0, 0, 1})
	f.Close()

	r := reopen(t, dir, Options{})
	defer r.Close()
	if got := r.Snapshot(); string(got) != "image" {
		t.Fatalf("snapshot = %q", got)
	}
	wantWAL(t, r, []byte("new-gen"))
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale generation segment not garbage-collected")
	}
}

func TestMultipleSnapshots(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		appendAll(t, s, []byte(fmt.Sprintf("r%d", i)))
		if err := s.WriteSnapshot([]byte(fmt.Sprintf("image-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("old snapshots not pruned: %v", snaps)
	}
	if !strings.HasSuffix(snaps[0], snapName(3)) {
		t.Fatalf("kept wrong snapshot: %v", snaps)
	}
	r := reopen(t, dir, Options{})
	defer r.Close()
	if got := r.Snapshot(); string(got) != "image-3" {
		t.Fatalf("snapshot = %q", got)
	}
	wantWAL(t, r)
}

func TestClosedStoreErrors(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	s.Close()
	if err := s.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close: want ErrClosed, got %v", err)
	}
	if err := s.WriteSnapshot([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("WriteSnapshot after Close: want ErrClosed, got %v", err)
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	dir := t.TempDir()
	// A wide window: nothing but the very first append (lastSync is the
	// zero time) should sync during the burst.
	s := reopen(t, dir, Options{GroupCommit: time.Hour})
	const n = 64
	var recs [][]byte
	for i := 0; i < n; i++ {
		recs = append(recs, []byte(fmt.Sprintf("rec-%03d", i)))
	}
	appendAll(t, s, recs...)
	st := s.Stats()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	if st.Syncs >= n/2 {
		t.Errorf("Syncs = %d: group commit did not batch (appends %d)", st.Syncs, n)
	}
	// Flush drains the deferred window on demand.
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Every fsync that happened was timed: the latency aggregation is
	// live under group commit.
	st = s.Stats()
	if st.Syncs > 0 && (st.SyncNanos <= 0 || st.SyncMaxNanos <= 0) {
		t.Errorf("fsync latency not aggregated: Syncs=%d SyncNanos=%d SyncMaxNanos=%d",
			st.Syncs, st.SyncNanos, st.SyncMaxNanos)
	}
	if st.SyncMaxNanos > st.SyncNanos {
		t.Errorf("SyncMaxNanos=%d exceeds total SyncNanos=%d", st.SyncMaxNanos, st.SyncNanos)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Every record is durable after a clean close.
	s2 := reopen(t, dir, Options{GroupCommit: time.Hour})
	defer s2.Close()
	wantWAL(t, s2, recs...)
}

func TestGroupCommitWindowElapses(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{GroupCommit: time.Nanosecond})
	defer s.Close()
	appendAll(t, s, []byte("a"), []byte("b"), []byte("c"))
	// With a degenerate window every append syncs — group commit
	// degrades to per-record durability, never below it.
	if st := s.Stats(); st.Syncs != st.Appends {
		t.Errorf("Syncs = %d, Appends = %d: elapsed window did not sync", st.Syncs, st.Appends)
	} else if st.SyncNanos <= 0 || st.SyncMaxNanos <= 0 {
		t.Errorf("per-record fsyncs not timed: SyncNanos=%d SyncMaxNanos=%d",
			st.SyncNanos, st.SyncMaxNanos)
	}
}

func TestGroupCommitIdleTailFlushed(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{GroupCommit: 200 * time.Millisecond})
	defer s.Close()
	// The first append syncs (fresh store, window trivially elapsed);
	// the second lands inside the window and stays deferred.
	appendAll(t, s, []byte("head"), []byte("tail"))
	base := s.Stats().Syncs
	// No further appends: the background flusher must sync the deferred
	// tail within roughly one window (generous deadline for CI).
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Syncs == base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.Syncs == base {
		t.Fatalf("idle deferred tail never synced (Syncs=%d)", st.Syncs)
	}
}

func TestGroupCommitRotationFlushes(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation mid-stream; sealed segments are read
	// strictly on recovery, so rotation must flush the deferred window.
	s := reopen(t, dir, Options{GroupCommit: time.Hour, SegmentBytes: 64})
	var recs [][]byte
	for i := 0; i < 16; i++ {
		recs = append(recs, []byte(fmt.Sprintf("record-%05d", i)))
	}
	appendAll(t, s, recs...)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := reopen(t, dir, Options{})
	defer s2.Close()
	wantWAL(t, s2, recs...)
}
