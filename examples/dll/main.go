// dll reproduces the paper's §4 comparison: messages to collect a
// detached doubly-linked list of k elements, for the causal-dependency
// algorithm (paper's removal guard and the sound guard) versus Schelvis's
// eager timestamp packets.
//
//	go run ./examples/dll
package main

import (
	"fmt"
	"log"

	"causalgc/internal/baseline/schelvis"
	"causalgc/internal/ids"
	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

func main() {
	fmt.Println("§4: messages to collect a detached k-element doubly-linked list")
	fmt.Printf("%6s %22s %14s %10s\n", "k", "causal(paper-guard)", "causal(sound)", "schelvis")
	for _, k := range []int{4, 8, 16, 32, 64} {
		fmt.Printf("%6d %22d %14d %10d\n", k, causal(k, true), causal(k, false), schelvisCost(k))
	}
	fmt.Println("\npaper-guard reproduces the O(k) claim; the sound guard pays O(k²)")
	fmt.Println("for all-pairs knowledge inside the subcycles; Schelvis is O(k²)")
	fmt.Println("with a larger growth rate (see EXPERIMENTS.md, E6).")
}

func causal(k int, paperGuard bool) int {
	opts := site.DefaultOptions()
	opts.Engine.UnsafeSkipConfirmation = paperGuard
	w := sim.NewWorld(k+1, netsim.Faults{Seed: 1}, opts)
	dll, err := mutator.BuildDLL(w, k)
	if err != nil {
		log.Fatal(err)
	}
	base := w.Net().Stats().TotalSent()
	if err := dll.Detach(); err != nil {
		log.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		log.Fatal(err)
	}
	if rep := w.Check(); !rep.Clean() {
		log.Fatalf("k=%d not clean: %v", k, rep)
	}
	return w.Net().Stats().TotalSent() - base
}

func schelvisCost(k int) int {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	dets := make([]*schelvis.Detector, k+1)
	for j := 0; j <= k; j++ {
		dets[j] = schelvis.New(ids.SiteID(j+1), net, k+2, nil)
	}
	root := ids.ClusterID{Site: 1, Seq: 1, Root: true}
	dets[0].AddVertex(root)
	elems := make([]ids.ClusterID, k)
	for j := 0; j < k; j++ {
		elems[j] = ids.ClusterID{Site: ids.SiteID(j + 2), Seq: 1}
		dets[j+1].AddVertex(elems[j])
		dets[0].CreateEdge(root, elems[j])
	}
	for j := 0; j+1 < k; j++ {
		dets[j+1].CreateEdge(elems[j], elems[j+1])
		dets[j+2].CreateEdge(elems[j+1], elems[j])
	}
	run(net)
	for _, d := range dets {
		d.Kick()
	}
	run(net)
	base := net.Stats().TotalSent()
	for _, e := range elems {
		dets[0].DestroyEdge(root, e)
	}
	run(net)
	return net.Stats().TotalSent() - base
}

func run(net *netsim.Sim) {
	if _, err := net.Run(0); err != nil {
		log.Fatal(err)
	}
}
