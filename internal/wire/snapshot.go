// Snapshot and WAL record types of the durability subsystem: the typed
// layer between the site runtime and the byte-oriented persist.Store.
//
// A SiteImage is the full durable image of one site — heap, engine,
// runtime bookkeeping and the bounded outbox of unconfirmed mutator
// frames. A WALRecord is one relevant event appended between
// snapshots: either a mutator operation (OpRecord) or an incoming
// message delivery (DeliverRecord). Replaying the records against the
// image deterministically reconstructs the site (see internal/site and
// DESIGN.md §5).
//
// Encoding is gob: the same codec the TCP backend uses for frames, so
// a snapshot can embed any payload a transport can carry.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
)

// SnapshotVersion is bumped when SiteImage changes incompatibly; a
// recovery over a mismatching version fails rather than misdecodes.
// Version 2 added the hint-resolution protocol's durable state (the
// engine's assert re-send journal and retained finalisation bundles,
// RefTransfer.ToCluster inside stored frames).
const SnapshotVersion = 2

// SiteImage is the full durable state of one site at a quiescent point.
type SiteImage struct {
	Version int
	Site    ids.SiteID
	// Mint numbers identities created on behalf of other sites.
	Mint uint64
	// Removals counts GGD removals since the last collection (non-zero
	// only when AutoCollect is off).
	Removals int
	Heap     heap.Image
	Engine   core.EngineImage
	// PendingRefs are buffered reference transfers awaiting their
	// holder's creation message.
	PendingRefs []PendingRefImage
	// SeenIntro is the receiver-side dedup record of processed reference
	// transfers, keyed by (introducing cluster, forwarding seq): what
	// makes re-sent mutator frames idempotent after a crash.
	SeenIntro []IntroImage
	// Outbox holds recent outbound mutator frames (bounded); recovery
	// re-sends them, and receivers dedup via their own SeenIntro state.
	Outbox []FrameImage
}

// PendingRefImage is one buffered reference transfer.
type PendingRefImage struct {
	Holder   ids.ObjectID
	Target   heap.Ref
	Intro    ids.ClusterID
	IntroSeq uint64
}

// IntroImage identifies one processed introduction.
type IntroImage struct {
	Intro ids.ClusterID
	Seq   uint64
}

// FrameImage is one outbound frame: destination site plus payload.
type FrameImage struct {
	To      ids.SiteID
	Payload netsim.Payload
}

// WALRecord is one durable event. Exactly one field is set.
type WALRecord struct {
	Op      *OpRecord
	Deliver *DeliverRecord
}

// OpKind enumerates journalled mutator operations.
type OpKind uint8

// The journalled mutator operations. Collect and Refresh are included
// because both bump engine clocks (sweep-triggered edge destructions,
// removal cascades): every clock-advancing entry point must be in the
// WAL or replay would re-issue already-used stamps for new events.
const (
	OpNewLocal OpKind = iota + 1
	OpNewLocalIn
	OpNewCluster
	OpNewRemote
	OpSendRef
	OpAddRef
	OpDropRefs
	OpClearSlot
	OpCollect
	OpRefresh
)

// String names the op kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpNewLocal:
		return "NewLocal"
	case OpNewLocalIn:
		return "NewLocalIn"
	case OpNewCluster:
		return "NewCluster"
	case OpNewRemote:
		return "NewRemote"
	case OpSendRef:
		return "SendRef"
	case OpAddRef:
		return "AddRef"
	case OpDropRefs:
		return "DropRefs"
	case OpClearSlot:
		return "ClearSlot"
	case OpCollect:
		return "Collect"
	case OpRefresh:
		return "Refresh"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// OpRecord is one mutator operation with its arguments. Results (minted
// identities) are not recorded: they are deterministic functions of the
// restored counters, so replay re-mints them identically.
type OpRecord struct {
	Kind   OpKind
	Holder ids.ObjectID  // NewLocal, NewLocalIn, NewRemote, SendRef (sender), AddRef, DropRefs, ClearSlot
	Site   ids.SiteID    // NewRemote target site
	Clu    ids.ClusterID // NewLocalIn cluster
	To     heap.Ref      // SendRef destination
	Target heap.Ref      // SendRef, AddRef, DropRefs target
	Slot   int           // ClearSlot index
}

// DeliverRecord is one incoming message delivery.
type DeliverRecord struct {
	From    ids.SiteID
	Payload netsim.Payload
}

func init() {
	// The concrete payload types carried behind netsim.Payload fields.
	// gob.Register tolerates re-registration of identical types, so this
	// coexists with transport/tcp's registrations.
	gob.Register(Create{})
	gob.Register(RefTransfer{})
	gob.Register(Destroy{})
	gob.Register(Assert{})
	gob.Register(HintAck{})
	gob.Register(Propagate{})
}

// EncodeSnapshot renders a SiteImage for persist.Store.WriteSnapshot.
func EncodeSnapshot(img *SiteImage) ([]byte, error) {
	img.Version = SnapshotVersion
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("wire: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses a snapshot body.
func DecodeSnapshot(data []byte) (*SiteImage, error) {
	var img SiteImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("wire: decode snapshot: %w", err)
	}
	if img.Version != SnapshotVersion {
		return nil, fmt.Errorf("wire: snapshot version %d, want %d", img.Version, SnapshotVersion)
	}
	return &img, nil
}

// EncodeRecord renders a WALRecord for persist.Store.Append.
func EncodeRecord(rec *WALRecord) ([]byte, error) {
	if (rec.Op == nil) == (rec.Deliver == nil) {
		return nil, fmt.Errorf("wire: record must set exactly one of Op/Deliver")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("wire: encode record: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRecord parses one WAL record.
func DecodeRecord(data []byte) (*WALRecord, error) {
	var rec WALRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("wire: decode record: %w", err)
	}
	if (rec.Op == nil) == (rec.Deliver == nil) {
		return nil, fmt.Errorf("wire: record sets neither or both of Op/Deliver")
	}
	return &rec, nil
}
