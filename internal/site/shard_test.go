package site

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"sync"
	"testing"

	"causalgc/internal/core"
	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/wire"
	"causalgc/persist"
)

// mustRef wraps a (Ref, error) mutator result, failing the test on error.
func mustRef(t *testing.T) func(heap.Ref, error) heap.Ref {
	return func(ref heap.Ref, err error) heap.Ref {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return ref
	}
}

// settleSharded runs Collect+Refresh cycles until the live object
// count stops changing (cross-shard GGD cascades take a few rounds of
// assert/destroy exchange through the handoff queues).
func settleSharded(t *testing.T, s *Sharded, net *netsim.Sim) {
	t.Helper()
	prev := -1
	for i := 0; i < 8; i++ {
		if _, err := s.Collect(); err != nil {
			t.Fatal(err)
		}
		if err := s.Refresh(); err != nil {
			t.Fatal(err)
		}
		if net != nil {
			if _, err := net.Run(0); err != nil {
				t.Fatal(err)
			}
		}
		if n := s.NumObjects(); n == prev {
			return
		} else {
			prev = n
		}
	}
}

// TestShardedLifecycle drives the full cross-shard mutator surface on
// a volatile 4-shard site: spread placement, cross-shard reference
// transfer, and GGD reclamation across the shard boundary.
func TestShardedLifecycle(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s := NewSharded(1, net, DefaultOptions(), 4)
	root := s.Root().Obj

	a := mustRef(t)(s.NewLocal(root)) // rr → shard 0
	b := mustRef(t)(s.NewLocal(root)) // rr → shard 1
	if got := s.clusterShardIdx(b.Cluster); got != 1 {
		t.Fatalf("second root cluster placed on shard %d, want 1", got)
	}
	if !s.HasObject(a.Obj) || !s.HasObject(b.Obj) {
		t.Fatal("cross-shard creations missing")
	}
	if s.NumObjects() != 3 {
		t.Fatalf("NumObjects = %d, want 3", s.NumObjects())
	}

	// Cross-shard edge: b (shard 1) acquires a reference to a (shard 0).
	if err := s.SendRef(root, b, a); err != nil {
		t.Fatal(err)
	}
	// Root drops a: still live via b's slot.
	if err := s.DropRefs(root, a); err != nil {
		t.Fatal(err)
	}
	settleSharded(t, s, nil)
	if !s.HasObject(a.Obj) {
		t.Fatal("a reclaimed while b still holds it")
	}
	// Root drops b: the whole chain is garbage; the cascade crosses the
	// shard boundary (b's removal destroys its edge to a).
	if err := s.DropRefs(root, b); err != nil {
		t.Fatal(err)
	}
	settleSharded(t, s, nil)
	if s.NumObjects() != 1 {
		t.Fatalf("NumObjects = %d after dropping the chain, want 1 (root)", s.NumObjects())
	}
	if !s.ClusterRemoved(a.Cluster) || !s.ClusterRemoved(b.Cluster) {
		t.Error("GGD did not remove both clusters")
	}
	if d := s.HandoffDepth(); d != 0 {
		t.Errorf("handoff depth = %d at quiescence, want 0", d)
	}
}

// TestShardedRemotePeer checks the sharded site against an ordinary
// unsharded remote peer: remote creation, transfer, reclamation.
func TestShardedRemotePeer(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s := NewSharded(1, net, DefaultOptions(), 3)
	peer := New(2, net, DefaultOptions())
	root := s.Root().Obj

	a := mustRef(t)(s.NewLocal(root)) // shard 0
	b := mustRef(t)(s.NewLocal(root)) // shard 1
	rem := mustRef(t)(s.NewRemote(b.Obj, 2))
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if !peer.HasObject(rem.Obj) {
		t.Fatal("remote object not created at peer")
	}
	// Third-party transfer from a sharded holder: root hands a to b
	// across the shard boundary, then b forwards it to the remote
	// object.
	if err := s.SendRef(root, b, a); err != nil {
		t.Fatal(err)
	}
	if err := s.SendRef(b.Obj, rem, a); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	// Drop everything: the remote chain unwinds across both sites.
	if err := s.DropRefs(root, a); err != nil {
		t.Fatal(err)
	}
	if err := s.DropRefs(root, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		settleSharded(t, s, net)
		if _, err := peer.Collect(); err != nil {
			t.Fatal(err)
		}
		if err := peer.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(0); err != nil {
			t.Fatal(err)
		}
		if s.NumObjects() == 1 && peer.NumObjects() == 1 {
			break
		}
	}
	if s.NumObjects() != 1 {
		t.Errorf("sharded site: NumObjects = %d, want 1", s.NumObjects())
	}
	if peer.NumObjects() != 1 {
		t.Errorf("peer: NumObjects = %d, want 1", peer.NumObjects())
	}
}

// TestShardedSoloEquivalence runs one deterministic single-threaded
// script against a 1-shard and a 4-shard site: the shared identity
// mint must produce identical references, and the final heaps must
// match object for object.
func TestShardedSoloEquivalence(t *testing.T) {
	script := func(s *Sharded) (refs []heap.Ref, _ *Sharded) {
		root := s.Root().Obj
		a := mustRef(t)(s.NewLocal(root))
		b := mustRef(t)(s.NewLocal(root))
		c := mustRef(t)(s.NewLocal(root))
		cl, err := s.NewCluster()
		if err != nil {
			t.Fatal(err)
		}
		d := mustRef(t)(s.NewLocalIn(root, cl))
		if err := s.SendRef(root, a, b); err != nil { // a acquires b
			t.Fatal(err)
		}
		if err := s.SendRef(root, b, c); err != nil { // b acquires c
			t.Fatal(err)
		}
		if err := s.SendRef(root, d, a); err != nil { // d acquires a
			t.Fatal(err)
		}
		if err := s.DropRefs(root, c); err != nil { // c lives via b
			t.Fatal(err)
		}
		if err := s.DropRefs(root, b); err != nil { // b lives via a
			t.Fatal(err)
		}
		settleSharded(t, s, nil)
		return []heap.Ref{a, b, c, d}, s
	}

	netA := netsim.NewSim(netsim.Faults{Seed: 1})
	refsA, solo := script(NewSharded(1, netA, DefaultOptions(), 1))
	netB := netsim.NewSim(netsim.Faults{Seed: 1})
	refsB, striped := script(NewSharded(1, netB, DefaultOptions(), 4))

	if !reflect.DeepEqual(refsA, refsB) {
		t.Fatalf("minted refs diverge:\n 1-shard: %v\n 4-shard: %v", refsA, refsB)
	}
	rootA, objsA := solo.Snapshot()
	rootB, objsB := striped.Snapshot()
	if rootA != rootB {
		t.Fatalf("roots diverge: %v vs %v", rootA, rootB)
	}
	if !reflect.DeepEqual(objsA, objsB) {
		t.Fatalf("heaps diverge:\n 1-shard: %+v\n 4-shard: %+v", objsA, objsB)
	}
}

// openShardPersist opens a journal under dir.
func openShardPersist(t *testing.T, dir string, every int) *Persist {
	t.Helper()
	p, err := OpenPersist(dir, PersistOptions{SnapshotEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShardedRecoveryDeterminism kills a 3-shard site twice and checks
// every recovery replays the shard-tagged WAL to the same state: the
// ordered-handoff guarantee (each shard's deliveries replay in its
// journal order) made observable.
func TestShardedRecoveryDeterminism(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openShardPersist(t, dir, 3)
	s, err := RecoverSharded(1, net, DefaultOptions(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root().Obj
	a := mustRef(t)(s.NewLocal(root))
	b := mustRef(t)(s.NewLocal(root))
	if err := s.SendRef(root, a, b); err != nil {
		t.Fatal(err)
	}
	cl, err := s.NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	_ = mustRef(t)(s.NewLocalIn(root, cl))
	if err := s.DropRefs(root, b); err != nil {
		t.Fatal(err)
	}
	settleSharded(t, s, nil)
	wantRoot, wantObjs := s.Snapshot()

	for round := 1; round <= 2; round++ {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		net.Unregister(1)
		net.DropPendingTo(1)
		p = openShardPersist(t, dir, 3)
		s, err = RecoverSharded(1, net, DefaultOptions(), p, 3)
		if err != nil {
			t.Fatalf("recovery %d: %v", round, err)
		}
		if got := s.ShardCount(); got != 3 {
			t.Fatalf("recovery %d: shard count %d, want 3 (sticky)", round, got)
		}
		gotRoot, gotObjs := s.Snapshot()
		if gotRoot != wantRoot || !reflect.DeepEqual(gotObjs, wantObjs) {
			t.Fatalf("recovery %d diverged:\n want %+v\n got  %+v", round, wantObjs, gotObjs)
		}
	}
}

// TestShardCrashMidHandoff strands a cross-shard creation in the
// handoff queue (the executing shard journaled and enqueued it, the
// owning shard never saw it) and crashes: recovery must finish the
// creation through the outbox re-send path, exactly like a lost
// network frame.
func TestShardCrashMidHandoff(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openShardPersist(t, dir, 1000)
	s, err := RecoverSharded(1, net, DefaultOptions(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root().Obj
	_ = mustRef(t)(s.NewLocal(root)) // rr → shard 0 (local, drained)

	// Bypass Sharded: the shard Runtime journals the op and enqueues
	// the Create for shard 1, but nothing drains the queue — the frame
	// is in flight when the site dies.
	r0 := s.shards[0]
	ref, err := r0.NewLocal(root) // rr → shard 1: cross-shard create
	if err != nil {
		t.Fatal(err)
	}
	if got := s.clusterShardIdx(ref.Cluster); got != 1 {
		t.Fatalf("cluster placed on shard %d, want 1", got)
	}
	if s.HandoffDepth() == 0 {
		t.Fatal("expected the creation frame stranded in the handoff queue")
	}
	if s.shards[1].HasObject(ref.Obj) {
		t.Fatal("object materialised without a drain")
	}
	if err := p.Close(); err != nil { // crash: queue contents are volatile
		t.Fatal(err)
	}
	net.Unregister(1)

	p2 := openShardPersist(t, dir, 1000)
	s2, err := RecoverSharded(1, net, DefaultOptions(), p2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.HasObject(ref.Obj) {
		t.Fatal("stranded cross-shard creation not recovered")
	}
	if got := s2.clusterShardIdx(ref.Cluster); got != 1 {
		t.Errorf("recovered cluster routed to shard %d, want 1", got)
	}
	if !s2.shards[1].HasObject(ref.Obj) {
		t.Error("recovered object not on its owning shard")
	}
	if d := s2.HandoffDepth(); d != 0 {
		t.Errorf("handoff depth = %d after recovery, want 0", d)
	}
}

// TestShardedMergedFloorNeverRegresses pins the ack-watermark-merge
// rule: a Refresh floor advisory must never exceed the smallest
// sequence ANY shard still retains toward the peer — one shard
// retaining nothing must not advance the floor past a sibling's
// unacknowledged frame (the peer would retire it undelivered).
func TestShardedMergedFloorNeverRegresses(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openShardPersist(t, dir, 1000)
	s, err := RecoverSharded(1, net, DefaultOptions(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var advances []wire.StreamAdvance
	net.Register(2, func(from ids.SiteID, pl netsim.Payload) {
		if adv, ok := pl.(wire.StreamAdvance); ok && adv.Stream == core.StreamMut {
			advances = append(advances, adv)
		}
	})
	root := s.Root().Obj
	a := mustRef(t)(s.NewLocal(root)) // shard 0
	b := mustRef(t)(s.NewLocal(root)) // shard 1
	if got := s.clusterShardIdx(b.Cluster); got != 1 {
		t.Fatalf("b placed on shard %d, want 1", got)
	}
	_ = mustRef(t)(s.NewRemote(a.Obj, 2)) // mut seq 1 to peer, retained by shard 0
	_ = mustRef(t)(s.NewRemote(b.Obj, 2)) // mut seq 2 to peer, retained by shard 1

	// Shard 1's frame is retired through another path (simulated);
	// shard 0 still retains seq 1 unacknowledged.
	r1 := s.shards[1]
	r1.mu.Lock()
	r1.outbox = nil
	r1.mu.Unlock()

	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, adv := range advances {
		if adv.Floor > 1 {
			t.Fatalf("floor advisory %d past sibling's retained seq 1", adv.Floor)
		}
	}

	// Once no shard retains anything, the merged floor advances past
	// the abandoned gap (seq 1 was never acknowledged).
	r0 := s.shards[0]
	r0.mu.Lock()
	r0.outbox = nil
	r0.mu.Unlock()
	advances = nil
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(advances) == 0 {
		t.Fatal("no floor advisory once nothing is retained")
	}
	for _, adv := range advances {
		if adv.Floor != 3 {
			t.Errorf("floor = %d, want 3 (one past the last assigned seq)", adv.Floor)
		}
	}
}

// TestSnapshotV3Migrates writes a v3-versioned unsharded image and
// recovers it through both constructors: the sticky shard count of a
// legacy image is 1 regardless of the requested stripe width, and the
// state survives the version bump (the migration test referenced from
// the wire package's version pin).
func TestSnapshotV3Migrates(t *testing.T) {
	// Build a genuine unsharded image.
	netA := netsim.NewSim(netsim.Faults{Seed: 1})
	dirA := t.TempDir()
	pA := openShardPersist(t, dirA, 1000)
	r, err := Recover(1, netA, DefaultOptions(), pA)
	if err != nil {
		t.Fatal(err)
	}
	ref := mustRef(t)(r.NewLocal(r.Root().Obj))
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := pA.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen the store to read the checkpoint back (Store.Snapshot
	// reflects what was recovered at Open, not same-session writes).
	stA, err := persist.Open(dirA, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := wire.DecodeSnapshot(stA.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-encode it as version 3 (the pre-shard format: no Shards,
	// ShardExtra, PlaceRR — all zero on an unsharded image anyway).
	img.Version = 3
	img.Shards = 0
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatal(err)
	}
	dirB := t.TempDir()
	st, err := persist.Open(dirB, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// RecoverSharded migrates it forward; the shard count stays 1.
	netB := netsim.NewSim(netsim.Faults{Seed: 1})
	pB := openShardPersist(t, dirB, 1000)
	s, err := RecoverSharded(1, netB, DefaultOptions(), pB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ShardCount(); got != 1 {
		t.Errorf("ShardCount = %d, want 1 (sticky legacy image)", got)
	}
	if !s.HasObject(ref.Obj) {
		t.Error("v3 state lost in migration")
	}
	if err := pB.Close(); err != nil {
		t.Fatal(err)
	}

	// The unsharded Recover accepts the same v3 image.
	netC := netsim.NewSim(netsim.Faults{Seed: 1})
	pC := openShardPersist(t, dirB, 1000)
	r2, err := Recover(1, netC, DefaultOptions(), pC)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.HasObject(ref.Obj) {
		t.Error("v3 state lost in unsharded recovery")
	}
}

// TestRecoverRejectsShardedImage: a journal written by a >1-shard site
// must be refused by the unsharded Recover with a pointer to
// RecoverSharded.
func TestRecoverRejectsShardedImage(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openShardPersist(t, dir, 1000)
	s, err := RecoverSharded(1, net, DefaultOptions(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = mustRef(t)(s.NewLocal(s.Root().Obj))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	net.Unregister(1)

	p2 := openShardPersist(t, dir, 1000)
	if _, err := Recover(1, net, DefaultOptions(), p2); err == nil {
		t.Fatal("Recover accepted a 3-shard journal")
	} else if !strings.Contains(err.Error(), "RecoverSharded") {
		t.Errorf("error %q does not point to RecoverSharded", err)
	}
}

// TestRecoverRejectsShardTaggedWAL: the snapshot guard above never
// fires when a multi-shard site crashes before its first checkpoint
// (no snapshot exists) — the shard-tagged WAL tail itself must be
// refused, or its cross-shard creations would replay into a single
// runtime as self-addressed network frames and double-apply.
func TestRecoverRejectsShardTaggedWAL(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openShardPersist(t, dir, 1<<20) // never due: crash precedes the first snapshot
	s, err := RecoverSharded(1, net, DefaultOptions(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root().Obj
	_ = mustRef(t)(s.NewLocal(root))  // rr → shard 0
	b := mustRef(t)(s.NewLocal(root)) // rr → shard 1
	if got := s.clusterShardIdx(b.Cluster); got != 1 {
		t.Fatalf("b placed on shard %d, want 1", got)
	}
	// Executes on b's shard: the journal gains a Shard=1 record.
	_ = mustRef(t)(s.NewLocalIn(b.Obj, b.Cluster))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	net.Unregister(1)

	p2 := openShardPersist(t, dir, 1<<20)
	if _, err := Recover(1, net, DefaultOptions(), p2); err == nil {
		t.Fatal("Recover accepted a shard-tagged WAL with no snapshot")
	} else if !strings.Contains(err.Error(), "RecoverSharded") {
		t.Errorf("error %q does not point to RecoverSharded", err)
	}
	// The same journal recovers fine through the sharded path.
	s2, err := RecoverSharded(1, net, DefaultOptions(), p2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.HasObject(b.Obj) {
		t.Error("state lost across the refused-then-sharded recovery")
	}
}

// TestShardedHasObjectRoutingLag: when the objMap routing entry lags (a
// restore or sweep race), HasObject must scan every shard before
// reporting absence — an object live on shard >0 is not a false
// negative.
func TestShardedHasObjectRoutingLag(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s := NewSharded(1, net, DefaultOptions(), 3)
	root := s.Root().Obj
	_ = mustRef(t)(s.NewLocal(root))  // rr → shard 0
	b := mustRef(t)(s.NewLocal(root)) // rr → shard 1
	if got := s.clusterShardIdx(b.Cluster); got != 1 {
		t.Fatalf("b placed on shard %d, want 1", got)
	}
	s.objMap.Delete(b.Obj) // simulate the lagging routing entry
	if !s.HasObject(b.Obj) {
		t.Fatal("HasObject false negative for a live object on shard 1")
	}
	if s.HasObject(ids.ObjectID{Site: 1, Seq: 1 << 40}) {
		t.Fatal("HasObject true for a phantom object")
	}
}

// TestShardedAckCountedOncePerDelivery: a FrameAck fans out to every
// shard (retirement is per shard) but the site-level counter must tick
// once per network delivery, not once per shard.
func TestShardedAckCountedOncePerDelivery(t *testing.T) {
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	s := NewSharded(1, net, DefaultOptions(), 4)
	root := s.Root().Obj
	a := mustRef(t)(s.NewLocal(root))
	_ = mustRef(t)(s.NewRemote(a.Obj, 2)) // opens the mut stream toward peer 2
	before := s.FrameStats().AcksReceived
	s.handleNet(2, wire.FrameAck{Stream: core.StreamMut, Seq: 1})
	if got := s.FrameStats().AcksReceived - before; got != 1 {
		t.Fatalf("one FrameAck counted %d times across %d shards, want 1", got, s.ShardCount())
	}
}

// TestCheckpointAllSkipsWhenNotDue: two drainers racing past
// maybeCheckpoint's unlocked Due check serialise on ckptMu; the loser
// must skip the redundant stop-the-world snapshot the winner just took.
func TestCheckpointAllSkipsWhenNotDue(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewSim(netsim.Faults{Seed: 1})
	p := openShardPersist(t, dir, 4)
	s, err := RecoverSharded(1, net, DefaultOptions(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root().Obj
	for i := 0; i < 6; i++ {
		_ = mustRef(t)(s.NewLocal(root))
	}
	base := p.Store().Stats().Snapshots
	if base == 0 {
		t.Fatal("expected at least one due checkpoint after 6 appends at SnapshotEvery=4")
	}
	// The losing racer: it observed Due before ckptMu, the winner
	// snapshotted meanwhile and reset the record count.
	if err := s.checkpointAll(true); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Snapshots; got != base {
		t.Fatalf("redundant stop-the-world snapshot: %d → %d", base, got)
	}
	// The unconditional path (public Checkpoint, recovery) still
	// snapshots on demand.
	if err := s.checkpointAll(false); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Snapshots; got != base+1 {
		t.Fatalf("forced checkpoint skipped: snapshots %d, want %d", got, base+1)
	}
}

// outboxFramesTo maps every retained mutator frame toward peer to the
// object its Create payload carries, across all shards. A sequence
// bound to two different payloads (or two frames sharing a sequence)
// fails the test via the count check at the call site.
func outboxFramesTo(s *Sharded, peer ids.SiteID) (map[uint64]ids.ObjectID, int) {
	out := make(map[uint64]ids.ObjectID)
	n := 0
	for _, r := range s.shards {
		r.mu.Lock()
		for _, f := range r.outbox {
			if f.to != peer {
				continue
			}
			if c, ok := f.p.(wire.Create); ok {
				n++
				out[f.seq] = c.Obj
			}
		}
		r.mu.Unlock()
	}
	return out, n
}

// TestShardedConcurrentSeqReplayExact pins the stream-sequence
// pre-mint contract under real concurrency: shards committing remote
// creations toward the same peer draw from the shared per-(peer,
// stream) counter, and the WAL append order need not match the draw
// order. Replay must still bind every rebuilt outbox frame to the
// sequence the live run sent — a rebind would let a journaled FrameAck
// retire a frame the peer never received, losing it permanently.
func TestShardedConcurrentSeqReplayExact(t *testing.T) {
	dir := t.TempDir()
	net := netsim.NewAsync(netsim.Faults{Seed: 7})
	defer net.Close()
	p := openShardPersist(t, dir, 1<<20) // no snapshot: pure WAL replay
	const shards = 4
	s, err := RecoverSharded(1, net, DefaultOptions(), p, shards)
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root().Obj
	// One anchor per shard (rr placement spreads the root's children),
	// so the workers commit on distinct shard locks.
	anchors := make([]heap.Ref, shards)
	for i := range anchors {
		anchors[i] = mustRef(t)(s.NewLocal(root))
	}
	// Peer 2 is never registered: the async transport drops every frame
	// toward it, so all of them stay retained in the shards' outboxes.
	const perWorker = 32
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(holder ids.ObjectID) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.NewRemote(holder, 2); err != nil {
					t.Error(err)
					return
				}
			}
		}(anchors[w].Obj)
	}
	wg.Wait()
	net.Quiesce()
	if t.Failed() {
		t.Fatal("worker commit failed")
	}

	want, n := outboxFramesTo(s, 2)
	if n != shards*perWorker || len(want) != n {
		t.Fatalf("retained %d frames / %d distinct seqs toward the peer, want %d of each",
			n, len(want), shards*perWorker)
	}
	if err := p.Close(); err != nil { // crash
		t.Fatal(err)
	}

	p2 := openShardPersist(t, dir, 1<<20)
	s2, err := RecoverSharded(1, net, DefaultOptions(), p2, shards)
	if err != nil {
		t.Fatal(err)
	}
	got, n2 := outboxFramesTo(s2, 2)
	if n2 != len(got) {
		t.Fatalf("recovery rebound %d frames onto %d seqs: duplicate sequences", n2, len(got))
	}
	if !reflect.DeepEqual(want, got) {
		for seq, obj := range want {
			if got[seq] != obj {
				t.Errorf("seq %d: live frame carried %v, replay rebound it to %v", seq, obj, got[seq])
			}
		}
		t.Fatalf("replay rebound outbox sequences (%d live vs %d recovered rows)", len(want), len(got))
	}
}
