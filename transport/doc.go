// Package transport is the public network substrate of causalgc: the
// Transport interface every backend implements, the payload contracts the
// wire messages satisfy, and the two in-memory backends (a deterministic
// single-threaded simulator and a concurrent channel network). A real
// TCP socket backend lives in the transport/tcp subpackage; all three run
// the same GGD engine unchanged.
//
// The deterministic backend is the right choice for tests, benchmarks and
// reproducible experiments: message scheduling is driven by a seed, so a
// run is replayable. The async backend exercises real concurrency inside
// one process. The tcp backend connects separate processes.
//
// Custom substrates implement Transport directly. Delivery must be
// asynchronous with respect to Send (a site's handler may send while
// handling a delivery, and sites hold their own locks while doing both),
// per-destination delivery should be serialised, and the GGD control
// plane tolerates loss, duplication and reordering — only payloads
// implementing Application (the mutator's own messages) need reliable
// delivery.
package transport
