package sim

import (
	"math/rand"
	"testing"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/site"
	"causalgc/internal/wire"
)

// This file is the batched-vs-singleton equivalence lane (ISSUE 5): the
// SAME seeded mutator op stream is executed twice — once through the
// singleton entry points (one lock/journal/frame set per op) and once
// grouped into ApplyBatch commits (one lock, one journal append, one
// envelope per peer per group) — under message drops, duplication,
// reordering and a kill-and-restart crash. The two runs must mint
// identical references, never violate safety, and converge to the same
// oracle verdict (clean) once the network heals.

// Argument selectors of the symbolic plan: a plan references objects it
// will create by pool index (creations of earlier groups) or by
// deferred in-group index, so one plan replays against either
// execution mode.
const (
	selNone     = iota
	selRoot     // the acting site's root object
	selSiteRoot // another site's root object
	selPool     // a pooled reference from an earlier group
	selGroup    // deferred: the result of an earlier op of this group
)

type batchArgSel struct {
	kind int
	pool int        // selPool: pool index
	grp  int        // selGroup: 1-based op index
	site ids.SiteID // selSiteRoot
}

type batchPlanOp struct {
	kind            wire.OpKind
	holder, to, tgt batchArgSel
	site            ids.SiteID // NewRemote target site
}

type batchPlanGroup struct {
	site           ids.SiteID
	ops            []batchPlanOp
	steps          int        // messages to deliver after the group
	crash, restart ids.SiteID // fault events before the group (0: none)
}

// makeBatchPlan generates a seeded symbolic op stream. Bookkeeping is
// conservative — holders are always the acting root, targets are only
// references the acting root provably still holds — so every group
// stages cleanly in both modes and the two executions stay
// op-for-op identical.
func makeBatchPlan(seed int64, sites, rounds int) []batchPlanGroup {
	rng := rand.New(rand.NewSource(seed))
	type entry struct {
		owner   ids.SiteID // the root that holds it
		objSite ids.SiteID // where the object lives
		alive   bool
	}
	var pool []entry
	crashed := ids.NoSite
	plan := make([]batchPlanGroup, 0, rounds)
	for round := 0; round < rounds; round++ {
		g := batchPlanGroup{steps: rng.Intn(30)}
		if round == rounds/3 {
			crashed = ids.SiteID(1 + rng.Intn(sites))
			g.crash = crashed
		}
		if round == rounds/3+3 {
			g.restart = crashed
			crashed = ids.NoSite
		}
		s := ids.SiteID(1 + rng.Intn(sites))
		for s == crashed {
			s = ids.SiteID(1 + rng.Intn(sites))
		}
		g.site = s
		// Only entries that existed before this group may be referenced
		// by pool index; this group's own creates are referenced with
		// deferred in-group indices (the executor's pool grows after the
		// group commits).
		poolBase := len(pool)
		owned := func() []int {
			var out []int
			for i, e := range pool[:poolBase] {
				if e.alive && e.owner == s {
					out = append(out, i)
				}
			}
			return out
		}
		otherSite := func() ids.SiteID {
			x := ids.SiteID(1 + rng.Intn(sites))
			for x == s {
				x = ids.SiteID(1 + rng.Intn(sites))
			}
			return x
		}
		var groupCreates []int // 0-based in-group op indices that create
		k := 1 + rng.Intn(6)
		for i := 0; i < k; i++ {
			newLocal := func() {
				g.ops = append(g.ops, batchPlanOp{kind: wire.OpNewLocal, holder: batchArgSel{kind: selRoot}})
				pool = append(pool, entry{owner: s, objSite: s, alive: true})
				groupCreates = append(groupCreates, len(g.ops)-1)
			}
			// pickTarget chooses something root s still holds: an earlier
			// create of this group (deferred) or a pooled owned entry.
			pickTarget := func() (batchArgSel, bool) {
				if len(groupCreates) > 0 && rng.Intn(2) == 0 {
					return batchArgSel{kind: selGroup, grp: groupCreates[rng.Intn(len(groupCreates))] + 1}, true
				}
				if ow := owned(); len(ow) > 0 {
					return batchArgSel{kind: selPool, pool: ow[rng.Intn(len(ow))]}, true
				}
				return batchArgSel{}, false
			}
			switch roll := rng.Intn(100); {
			case roll < 30:
				newLocal()
			case roll < 50: // NewRemote
				x := otherSite()
				g.ops = append(g.ops, batchPlanOp{kind: wire.OpNewRemote, holder: batchArgSel{kind: selRoot}, site: x})
				pool = append(pool, entry{owner: s, objSite: x, alive: true})
				groupCreates = append(groupCreates, len(g.ops)-1)
			case roll < 72: // SendRef
				tgt, ok := pickTarget()
				if !ok {
					newLocal()
					continue
				}
				var to batchArgSel
				switch rng.Intn(3) {
				case 0: // another site's root
					to = batchArgSel{kind: selSiteRoot, site: otherSite()}
				case 1: // a locally created pooled object (exists now)
					local := -1
					for _, i := range owned() {
						if pool[i].objSite == s {
							local = i
							break
						}
					}
					if local >= 0 {
						to = batchArgSel{kind: selPool, pool: local}
					} else {
						to = batchArgSel{kind: selSiteRoot, site: otherSite()}
					}
				default: // a deferred in-group create (possibly remote)
					if len(groupCreates) > 0 {
						to = batchArgSel{kind: selGroup, grp: groupCreates[rng.Intn(len(groupCreates))] + 1}
					} else {
						to = batchArgSel{kind: selSiteRoot, site: otherSite()}
					}
				}
				g.ops = append(g.ops, batchPlanOp{kind: wire.OpSendRef, holder: batchArgSel{kind: selRoot}, to: to, tgt: tgt})
			case roll < 82: // AddRef
				tgt, ok := pickTarget()
				if !ok {
					newLocal()
					continue
				}
				g.ops = append(g.ops, batchPlanOp{kind: wire.OpAddRef, holder: batchArgSel{kind: selRoot}, tgt: tgt})
			default: // DropRefs of an owned pooled entry
				ow := owned()
				if len(ow) == 0 {
					newLocal()
					continue
				}
				i := ow[rng.Intn(len(ow))]
				pool[i].alive = false
				g.ops = append(g.ops, batchPlanOp{kind: wire.OpDropRefs, holder: batchArgSel{kind: selRoot}, tgt: batchArgSel{kind: selPool, pool: i}})
			}
		}
		plan = append(plan, g)
	}
	return plan
}

// execBatchPlan runs one plan against a fresh durable world in either
// mode and returns the final pooled references (for cross-mode
// comparison) and the world for verdicts.
func execBatchPlan(t *testing.T, plan []batchPlanGroup, seed int64, sites int, dir string, batched bool) (*World, []heap.Ref) {
	return execPlanSharded(t, plan, seed, sites, dir, batched, 0)
}

// execPlanSharded is execBatchPlan over sites striped into the given
// number of lock shards (0: plain unsharded runtimes).
func execPlanSharded(t *testing.T, plan []batchPlanGroup, seed int64, sites int, dir string, batched bool, shards int) (*World, []heap.Ref) {
	t.Helper()
	faults := netsim.Faults{Seed: seed, DropProb: 0.15, DupProb: 0.05, Reorder: true}
	var w *World
	var err error
	if shards > 0 {
		w, err = NewDurableShardedWorld(sites, faults, site.DefaultOptions(), dir, 32, shards)
	} else {
		w, err = NewDurableWorld(sites, faults, site.DefaultOptions(), dir, 32)
	}
	if err != nil {
		t.Fatal(err)
	}
	var pool []heap.Ref
	crashed := false
	for gi, g := range plan {
		if g.crash != ids.NoSite {
			if err := w.Crash(g.crash); err != nil {
				t.Fatalf("group %d: crash: %v", gi, err)
			}
			crashed = true
		}
		if g.restart != ids.NoSite {
			if err := w.Restart(g.restart); err != nil {
				t.Fatalf("group %d: restart: %v", gi, err)
			}
			crashed = false
		}
		rt := w.Site(g.site)
		root := rt.Root()
		groupRefs := make([]heap.Ref, len(g.ops))
		resolve := func(sel batchArgSel) (heap.Ref, int) {
			switch sel.kind {
			case selRoot:
				return root, 0
			case selSiteRoot:
				return w.Site(sel.site).Root(), 0
			case selPool:
				return pool[sel.pool], 0
			case selGroup:
				return heap.NilRef, sel.grp
			}
			return heap.NilRef, 0
		}
		ops := make([]wire.BatchOp, len(g.ops))
		for i, po := range g.ops {
			op := wire.BatchOp{Op: wire.OpRecord{Kind: po.kind, Site: po.site}}
			var ref heap.Ref
			ref, op.HolderFrom = resolve(po.holder)
			op.Op.Holder = ref.Obj
			op.Op.To, op.ToFrom = resolve(po.to)
			op.Op.Target, op.TargetFrom = resolve(po.tgt)
			ops[i] = op
		}
		if batched {
			refs, err := rt.ApplyBatch(ops)
			if err != nil {
				t.Fatalf("group %d (site %v): batched commit: %v", gi, g.site, err)
			}
			copy(groupRefs, refs)
		} else {
			for i, bop := range ops {
				op := bop.Op
				if bop.HolderFrom > 0 {
					op.Holder = groupRefs[bop.HolderFrom-1].Obj
				}
				if bop.ToFrom > 0 {
					op.To = groupRefs[bop.ToFrom-1]
				}
				if bop.TargetFrom > 0 {
					op.Target = groupRefs[bop.TargetFrom-1]
				}
				var err error
				switch op.Kind {
				case wire.OpNewLocal:
					groupRefs[i], err = rt.NewLocal(op.Holder)
				case wire.OpNewRemote:
					groupRefs[i], err = rt.NewRemote(op.Holder, op.Site)
				case wire.OpSendRef:
					err = rt.SendRef(op.Holder, op.To, op.Target)
				case wire.OpAddRef:
					err = rt.AddRef(op.Holder, op.Target)
				case wire.OpDropRefs:
					err = rt.DropRefs(op.Holder, op.Target)
				}
				if err != nil {
					t.Fatalf("group %d op %d (site %v): singleton %v: %v", gi, i, g.site, op.Kind, err)
				}
			}
		}
		// Pool appends mirror the plan's: one entry per create op, in
		// op order.
		for i, po := range g.ops {
			if po.kind == wire.OpNewLocal || po.kind == wire.OpNewRemote {
				pool = append(pool, groupRefs[i])
			}
		}
		for i := 0; i < g.steps && w.Step(); i++ {
		}
		// Safety is only meaningful at drained points (an in-flight
		// creation legitimately looks dangling): periodically drain —
		// with one refresh round to re-ship mutator frames a crash
		// window dropped — and check. Identical in both modes.
		if gi%7 == 6 && !crashed {
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
			if err := w.RefreshAll(); err != nil {
				t.Fatal(err)
			}
			if rep := w.Check(); !rep.Safe() {
				t.Fatalf("group %d: SAFETY VIOLATION (batched=%v): %v", gi, batched, rep)
			}
		}
	}
	// Heal and converge: faults off, refresh (re-ships anything lost,
	// including mutator frames dropped at a crashed site) and settle
	// until clean.
	w.Net().SetDropProb(0)
	w.Net().SetDupProb(0)
	if err := w.Settle(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		if err := w.Settle(); err != nil {
			t.Fatal(err)
		}
		rep := w.Check()
		if !rep.Safe() {
			t.Fatalf("SAFETY VIOLATION while healing (batched=%v, round %d): %v", batched, r, rep)
		}
		if rep.Clean() {
			break
		}
	}
	return w, pool
}

// TestBatchSingletonEquivalence runs the seeded fuzz lane across
// several seeds: identical minted references and identical (clean)
// oracle verdicts in both modes, zero violations.
func TestBatchSingletonEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	const sites, rounds = 4, 30
	for _, seed := range seeds {
		plan := makeBatchPlan(seed, sites, rounds)
		ws, poolS := execBatchPlan(t, plan, seed, sites, t.TempDir(), false)
		wb, poolB := execBatchPlan(t, plan, seed, sites, t.TempDir(), true)
		if len(poolS) != len(poolB) {
			t.Fatalf("seed %d: pool sizes diverge: singleton %d, batched %d", seed, len(poolS), len(poolB))
		}
		for i := range poolS {
			if poolS[i] != poolB[i] {
				t.Fatalf("seed %d: pool[%d] diverges: singleton %v, batched %v", seed, i, poolS[i], poolB[i])
			}
		}
		repS, repB := ws.Check(), wb.Check()
		if !repS.Clean() || !repB.Clean() {
			t.Fatalf("seed %d: verdicts diverge from clean: singleton %v, batched %v", seed, repS, repB)
		}
		if repS.Live != repB.Live {
			t.Fatalf("seed %d: live counts diverge: singleton %d, batched %d", seed, repS.Live, repB.Live)
		}
		t.Logf("seed %d: both modes clean with %d live objects", seed, repS.Live)
		ws.Close()
		wb.Close()
	}
}
