package core

import (
	"fmt"

	"causalgc/internal/ids"
	"causalgc/internal/vclock"
)

// EngineImage is the serialisable form of an Engine, used by the
// durability subsystem's snapshots. It may only be taken at a quiescent
// point (empty inbox): the site runtime snapshots after settling, so
// every queued GGD delivery has been processed. Pre-registration
// buffered deliveries (reordered control messages that raced ahead of
// their target's creation) are part of the image.
type EngineImage struct {
	Procs      []ProcImage
	Tombstones map[ids.ClusterID]uint64
	Pending    []PendingImage
	// Asserts is the re-send journal of un-acknowledged edge-asserts:
	// losing it to a crash would silently re-open the hint leak, so it
	// is part of the durable image, stream sequences included (a
	// recovered re-send must fill the same receiver-side gap).
	Asserts []AssertRowImage
	// Destroys tracks the acknowledgement state of destroyed-edge
	// bundles: losing an acked flag only costs redundant re-sends, but
	// losing a stream sequence would orphan the receiver's watermark, so
	// both are durable.
	Destroys []DestroyImage
	// Legacy holds the retained finalisation destroy bundles of removed
	// processes, in retention order.
	Legacy []LegacyImage
	Stats  Stats
}

// AssertRowImage is one journaled edge-assert awaiting acknowledgement.
type AssertRowImage struct {
	Holder, Target, Intro ids.ClusterID
	Seq                   uint64
	Stamp                 uint64
	// StreamSeq is the row's sequence in the assert retirement stream to
	// Target's site (zero if the row predates its first send).
	StreamSeq uint64
}

// DestroyImage is the retirement state of one destroyed remote edge's
// Ē bundle.
type DestroyImage struct {
	Holder, Target ids.ClusterID
	// Seq is the bundle's sequence in the destroy retirement stream.
	Seq uint64
	// Acked records that the target site acknowledged the bundle:
	// Refresh stops re-shipping it.
	Acked bool
}

// LegacyImage is one retained finalisation destroy bundle.
type LegacyImage struct {
	From, To ids.ClusterID
	M        DestroyMsg
	// Seq is the bundle's sequence in the legacy retirement stream.
	Seq uint64
}

// ProcImage is one process's state.
type ProcImage struct {
	ID     ids.ClusterID
	Clock  uint64
	Active bool
	Acq    []ids.ClusterID
	Log    vclock.LogImage
}

// PendingImage is one buffered pre-registration delivery. Seq and Stream
// carry the delivery's retirement-stream identity so a replayed buffer
// settles identically.
type PendingImage struct {
	To, From ids.ClusterID
	Kind     int
	Destroy  DestroyMsg
	Prop     Propagation
	Assert   AssertMsg
	Seq      uint64
	Stream   uint8
	// Settled marks a delivery whose settlement was already reported to
	// the sender; it survives restore so the eviction guard holds across
	// recovery.
	Settled bool
}

// Export renders the engine as an image sharing no state with it. It
// fails if deliveries are still queued (the caller must Drain first):
// snapshotting mid-cascade would bake a half-processed inbox into the
// image.
func (e *Engine) Export() (EngineImage, error) {
	if len(e.inbox) > 0 {
		return EngineImage{}, fmt.Errorf("core %v: export with %d queued deliveries", e.site, len(e.inbox))
	}
	img := EngineImage{
		Tombstones: make(map[ids.ClusterID]uint64, len(e.tombstone)),
		Stats:      e.stats,
	}
	for _, id := range e.Processes() {
		p := e.procs[id]
		img.Procs = append(img.Procs, ProcImage{
			ID:     p.id,
			Clock:  p.clock,
			Active: p.active,
			Acq:    p.acq.Sorted(),
			Log:    p.log.Export(),
		})
	}
	for cl, clock := range e.tombstone {
		img.Tombstones[cl] = clock
	}
	var pendingTo []ids.ClusterID
	for to := range e.pending {
		pendingTo = append(pendingTo, to)
	}
	ids.SortClusters(pendingTo)
	for _, to := range pendingTo {
		for _, d := range e.pending[to] {
			img.Pending = append(img.Pending, PendingImage{
				To: d.to, From: d.from, Kind: int(d.kind),
				Destroy: cloneDestroy(d.destroy), Prop: cloneProp(d.prop), Assert: d.assert,
				Seq: d.seq, Stream: uint8(d.stream), Settled: d.settled,
			})
		}
	}
	rows := make([]assertRow, 0, len(e.asserts))
	for row := range e.asserts {
		rows = append(rows, row)
	}
	sortAssertRows(rows)
	for _, row := range rows {
		st := e.asserts[row]
		img.Asserts = append(img.Asserts, AssertRowImage{
			Holder: row.holder, Target: row.target, Intro: row.intro,
			Seq: row.seq, Stamp: st.stamp, StreamSeq: st.seq,
		})
	}
	edges := make([]edgeKey, 0, len(e.destroys))
	for ek := range e.destroys {
		edges = append(edges, ek)
	}
	sortEdgeKeys(edges)
	for _, ek := range edges {
		st := e.destroys[ek]
		img.Destroys = append(img.Destroys, DestroyImage{
			Holder: ek.holder, Target: ek.target, Seq: st.seq, Acked: st.acked,
		})
	}
	for _, l := range e.legacy {
		img.Legacy = append(img.Legacy, LegacyImage{From: l.from, To: l.to, M: cloneDestroy(l.m), Seq: l.seq})
	}
	return img, nil
}

// sortEdgeKeys orders tracked edges deterministically for export.
func sortEdgeKeys(edges []edgeKey) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edgeKeyLess(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

func edgeKeyLess(a, b edgeKey) bool {
	if a.holder != b.holder {
		return a.holder.Less(b.holder)
	}
	return a.target.Less(b.target)
}

// Restore rebuilds an engine from an image. The callbacks mirror New;
// the image is not retained. Re-send dampers are deliberately reset: a
// recovered site re-ships everything once so peers re-converge.
func Restore(site ids.SiteID, send Sender, onRemove func(ids.ClusterID), opts Options, img EngineImage) (*Engine, error) {
	e := New(site, send, onRemove, opts)
	e.stats = img.Stats
	for _, pi := range img.Procs {
		if pi.ID.Site != site {
			return nil, fmt.Errorf("core %v: restore foreign process %v", site, pi.ID)
		}
		e.procs[pi.ID] = &process{
			id:     pi.ID,
			clock:  pi.Clock,
			active: pi.Active,
			log:    vclock.RestoreLog(pi.ID, pi.Log),
			acq:    ids.NewClusterSet(pi.Acq...),
		}
	}
	for cl, clock := range img.Tombstones {
		e.tombstone[cl] = clock
	}
	for _, di := range img.Pending {
		e.pending[di.To] = append(e.pending[di.To], delivery{
			to: di.To, from: di.From, kind: deliveryKind(di.Kind),
			destroy: cloneDestroy(di.Destroy), prop: cloneProp(di.Prop), assert: di.Assert,
			seq: di.Seq, stream: Stream(di.Stream), settled: di.Settled,
		})
	}
	for _, ai := range img.Asserts {
		e.asserts[assertRow{holder: ai.Holder, target: ai.Target, intro: ai.Intro, seq: ai.Seq}] = &assertState{
			stamp: ai.Stamp, seq: ai.StreamSeq,
		}
	}
	for _, di := range img.Destroys {
		e.destroys[edgeKey{holder: di.Holder, target: di.Target}] = &destroyState{
			seq: di.Seq, acked: di.Acked,
		}
	}
	for _, li := range img.Legacy {
		e.legacy = append(e.legacy, &legacyDestroy{from: li.From, to: li.To, m: cloneDestroy(li.M), seq: li.Seq})
	}
	return e, nil
}

func cloneDestroy(m DestroyMsg) DestroyMsg {
	return DestroyMsg{Auth: cloneVec(m.Auth), Hints: cloneVec(m.Hints), Processed: cloneVec(m.Processed)}
}

func cloneVec(v vclock.Vector) vclock.Vector {
	if v == nil {
		return nil
	}
	return v.Clone()
}
