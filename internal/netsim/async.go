package netsim

import (
	"math/rand"
	"sync"
	"time"

	"causalgc/internal/ids"
)

// AsyncNetwork is the concurrent in-memory network: one delivery goroutine
// per registered site, unbounded per-site queues (a handler may send while
// handling without deadlocking), and the same fault plan as Sim minus
// reordering (goroutine scheduling provides natural nondeterminism).
//
// All goroutines are owned by the network and joined by Close.
type AsyncNetwork struct {
	mu     sync.Mutex
	eps    map[ids.SiteID]*asyncEndpoint
	rng    *rand.Rand
	faults Faults
	stats  *Stats
	closed bool
	wg     sync.WaitGroup
}

type asyncEndpoint struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []asyncMsg
	busy   int // messages dequeued whose handler has not returned yet
	closed bool
	h      Handler
}

type asyncMsg struct {
	from ids.SiteID
	p    Payload
}

// NewAsync creates a concurrent network with the given fault plan.
func NewAsync(f Faults) *AsyncNetwork {
	return &AsyncNetwork{
		eps:    make(map[ids.SiteID]*asyncEndpoint),
		rng:    rand.New(rand.NewSource(f.Seed)),
		faults: f,
		stats:  NewStats(),
	}
}

var _ Network = (*AsyncNetwork)(nil)

// Register installs the handler for a site and starts its delivery
// goroutine. Registering after Close is a no-op.
func (n *AsyncNetwork) Register(site ids.SiteID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	if _, ok := n.eps[site]; ok {
		n.eps[site].setHandler(h)
		return
	}
	ep := &asyncEndpoint{h: h}
	ep.cond = sync.NewCond(&ep.mu)
	n.eps[site] = ep
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ep.pump(n.stats)
	}()
}

func (ep *asyncEndpoint) setHandler(h Handler) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.h = h
}

func (ep *asyncEndpoint) pump(stats *Stats) {
	for {
		ep.mu.Lock()
		for len(ep.queue) == 0 && !ep.closed {
			ep.cond.Wait()
		}
		if len(ep.queue) == 0 && ep.closed {
			ep.mu.Unlock()
			return
		}
		m := ep.queue[0]
		ep.queue = ep.queue[1:]
		ep.busy++
		h := ep.h
		ep.mu.Unlock()

		stats.RecordDelivered(m.p)
		h(m.from, m.p)

		ep.mu.Lock()
		ep.busy--
		ep.mu.Unlock()
	}
}

func (ep *asyncEndpoint) enqueue(m asyncMsg) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return false
	}
	ep.queue = append(ep.queue, m)
	ep.cond.Signal()
	return true
}

// Stats returns the delivery statistics.
func (n *AsyncNetwork) Stats() *Stats { return n.stats }

// Send queues p for delivery, applying the fault plan.
func (n *AsyncNetwork) Send(from, to ids.SiteID, p Payload) {
	n.stats.RecordSent(p)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.stats.RecordDropped(p)
		return
	}
	ep := n.eps[to]
	drop := false
	dup := false
	if FaultEligible(p) {
		if n.faults.Partitioned != nil && n.faults.Partitioned(from, to) {
			drop = true
		} else {
			if n.faults.DropProb > 0 && n.rng.Float64() < n.faults.DropProb {
				drop = true
			}
			if kp := n.faults.DropKindProb[p.Kind()]; !drop && kp > 0 && n.rng.Float64() < kp {
				drop = true
			}
			if !drop && n.faults.DupProb > 0 && n.rng.Float64() < n.faults.DupProb {
				dup = true
			}
		}
	}
	n.mu.Unlock()

	if drop || ep == nil {
		n.stats.RecordDropped(p)
		return
	}
	if !ep.enqueue(asyncMsg{from: from, p: p}) {
		n.stats.RecordDropped(p)
		return
	}
	if dup {
		n.stats.RecordDuplicated(p)
		if !ep.enqueue(asyncMsg{from: from, p: p}) {
			n.stats.RecordDropped(p)
		}
	}
}

// Quiesce blocks until every queue is empty and every in-flight handler
// has returned. Because a handler can only create new work by sending
// (which re-fills a queue before the handler returns and is therefore
// observed), an idle verdict is stable: messages sent after Quiesce
// returns come from outside the network.
func (n *AsyncNetwork) Quiesce() {
	for !n.idle() {
		time.Sleep(50 * time.Microsecond)
	}
}

// Drain blocks until every queue is empty and every in-flight handler
// has returned, or the timeout elapses; it reports whether the network
// went idle. It is the bounded form of Quiesce, satisfying the public
// transport.Drainer capability.
func (n *AsyncNetwork) Drain(timeout time.Duration) bool {
	// The bound is a polling budget, not a wall-clock deadline: the
	// loop gives up after sleeping for timeout in total, so no clock
	// read is needed (determcheck forbids them in this package) and
	// the budget is immune to clock steps. Under scheduler pressure
	// the sleeps oversleep, which only ever lengthens the grace.
	const poll = 50 * time.Microsecond
	for waited := time.Duration(0); ; waited += poll {
		if n.idle() {
			return true
		}
		if waited >= timeout {
			return false
		}
		time.Sleep(poll)
	}
}

func (n *AsyncNetwork) idle() bool {
	n.mu.Lock()
	eps := make([]*asyncEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		busy := len(ep.queue) > 0 || ep.busy > 0
		ep.mu.Unlock()
		if busy {
			return false
		}
	}
	return true
}

// Close stops all delivery goroutines after their queues drain and joins
// them. Sends after Close are dropped.
func (n *AsyncNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*asyncEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.mu.Unlock()

	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
	n.wg.Wait()
}
