package doccheck_test

import (
	"testing"

	"causalgc/internal/analysis/analysistest"
	"causalgc/internal/analysis/doccheck"
)

// TestDocCheck proves the ported doclint rules: package doc, exported
// funcs, methods on exported receivers, types and var/const specs
// (documented groups and trailing line comments count; unexported
// receivers are exempt), with the scope restricted to the lint set.
func TestDocCheck(t *testing.T) {
	a := doccheck.New(doccheck.Config{Packages: []string{"docpkg", "nodocpkg"}})
	analysistest.Run(t, "testdata", a, "docpkg", "nodocpkg")
}
