package nodocpkg // want "package nodocpkg has no package doc comment"

// A is fine.
var A int
