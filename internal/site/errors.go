package site

import "errors"

// Sentinel errors for illegal mutator operations, wrapped with site and
// object context by the Runtime methods. Heap-level conditions reuse the
// heap package sentinels (heap.ErrNoSuchObject, ...); callers match both
// with errors.Is. The public causalgc package re-exports all of them.
var (
	// ErrNotHolder is returned by SendRef when the sending object does not
	// currently hold the reference it is asked to copy.
	ErrNotHolder = errors.New("object does not hold the reference")
	// ErrRemoteSelf is returned by NewRemote when the target site is the
	// caller's own site (use NewLocal).
	ErrRemoteSelf = errors.New("remote creation targets own site")
	// ErrNoSite is returned by NewRemote when the target is the zero
	// SiteID: a creation addressed to "no site" could never be
	// delivered, leaving a permanently dangling reference.
	ErrNoSite = errors.New("remote creation targets the zero site")
	// ErrBatchRef is returned by ApplyBatch when a staged op defers an
	// argument to a batch index that is out of range or does not name a
	// create operation.
	ErrBatchRef = errors.New("bad batch reference")
)
