// causalgc-sim runs causalgc scenarios from the command line and prints
// oracle verdicts and message statistics. It programs exclusively
// against the public API: a Cluster over the deterministic transport and
// the public workload builders.
//
// Usage:
//
//	causalgc-sim -scenario paper                 # Fig 3/8 cycle
//	causalgc-sim -scenario ring  -k 16           # k-element distributed ring
//	causalgc-sim -scenario dll   -k 16           # doubly-linked list (§4)
//	causalgc-sim -scenario churn -ops 1000 -sites 8 -drop 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"causalgc"
	"causalgc/transport"
)

func main() {
	scenario := flag.String("scenario", "paper", "paper | ring | dll | churn")
	k := flag.Int("k", 8, "structure size for ring/dll")
	ops := flag.Int("ops", 500, "operations for churn")
	sites := flag.Int("sites", 6, "sites for churn")
	seed := flag.Int64("seed", 1, "deterministic seed")
	drop := flag.Float64("drop", 0, "GGD control-message drop probability")
	flag.Parse()
	if err := run(*scenario, *k, *ops, *sites, *seed, *drop); err != nil {
		fmt.Fprintln(os.Stderr, "causalgc-sim:", err)
		os.Exit(1)
	}
}

func newCluster(n int, seed int64, drop float64) *causalgc.Cluster {
	det := transport.NewDeterministic(transport.Faults{Seed: seed, DropProb: drop, Reorder: drop > 0})
	return causalgc.NewCluster(n, causalgc.WithTransport(det))
}

func run(scenario string, k, ops, sites int, seed int64, drop float64) error {
	switch scenario {
	case "paper":
		c := newCluster(4, seed, drop)
		sc, err := causalgc.BuildPaperScenario(c)
		if err != nil {
			return err
		}
		if err := sc.DropRootEdge(); err != nil {
			return err
		}
		return report(c)
	case "ring":
		c := newCluster(k+1, seed, drop)
		ring, err := causalgc.BuildRing(c, k)
		if err != nil {
			return err
		}
		if err := ring.DetachRing(); err != nil {
			return err
		}
		return report(c)
	case "dll":
		c := newCluster(k+1, seed, drop)
		dll, err := causalgc.BuildDLL(c, k)
		if err != nil {
			return err
		}
		if err := dll.Detach(); err != nil {
			return err
		}
		return report(c)
	case "churn":
		c := newCluster(sites, seed, drop)
		stats, err := causalgc.Churn(c, causalgc.ChurnConfig{Seed: seed * 7, Ops: ops, StepsBetweenOps: 3})
		if err != nil {
			return err
		}
		fmt.Printf("workload: %+v\n", stats)
		return report(c)
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
}

func report(c *causalgc.Cluster) error {
	if err := c.Settle(); err != nil {
		return err
	}
	rep := c.Check()
	fmt.Printf("oracle: %v (safe=%v clean=%v), %d objects remain\n",
		rep, rep.Safe(), rep.Clean(), c.TotalObjects())
	fmt.Printf("traffic:\n%s", c.Transport().Stats())
	if !rep.Safe() {
		return fmt.Errorf("SAFETY VIOLATION")
	}
	return nil
}
